package repro

// The benchmark harness: one benchmark per table and figure in the paper's
// evaluation, plus the ablation benches DESIGN.md calls out and a few
// microbenchmarks of the hot paths. Each table/figure benchmark runs the
// corresponding experiments.* runner (at reduced-but-representative sizes
// so `go test -bench=.` completes in minutes) and reports the headline
// quantity as a custom metric, so the paper-shape numbers appear directly
// in benchmark output.

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"net/http"
	"time"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/experiments"
	"repro/internal/healthsim"
	"repro/internal/learn"
	"repro/internal/netlb"
	"repro/internal/ope"
	"repro/internal/policy"
	"repro/internal/resp"
	"repro/internal/stats"
)

// BenchmarkFig1DataRequirement regenerates Fig. 1 (data needed to evaluate
// K policies, CB vs A/B). Metric: the A/B-over-CB cost ratio at K=10^6.
func BenchmarkFig1DataRequirement(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1(experiments.DefaultFig1Params())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.K == 1e6 {
				ratio = row.Ratio
			}
		}
	}
	b.ReportMetric(ratio, "AB/CB@K=1e6")
}

// BenchmarkFig2TheoreticalAccuracy regenerates Fig. 2 (Eq. 1 error vs N for
// several ε). Metric: the ε=0.04 error at N=1.7M.
func BenchmarkFig2TheoreticalAccuracy(b *testing.B) {
	var err04 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(experiments.DefaultFig2Params())
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range res.Series {
			if s.Eps != 0.04 {
				continue
			}
			for j, n := range res.Params.Ns {
				if n == 1.7e6 {
					err04 = s.Errors[j]
				}
			}
		}
	}
	b.ReportMetric(err04, "err@eps.04,N1.7M")
}

// BenchmarkFig3IPSError regenerates Fig. 3 (ips error vs test-set size on
// machine health) at 120 resimulations per point. Metrics: the paper's
// N=3500 median and 95th-percentile relative errors.
func BenchmarkFig3IPSError(b *testing.B) {
	p := experiments.DefaultFig3Params()
	p.Resims = 120
	p.TestNs = []int{500, 2000, 3500}
	var med, p95 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(p)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.TestN == 3500 {
				med, p95 = row.MedianRelErr, row.P95RelErr
			}
		}
	}
	b.ReportMetric(med, "median-relerr@3500")
	b.ReportMetric(p95, "p95-relerr@3500")
}

// BenchmarkFig4Convergence regenerates Fig. 4 (CB training convergence).
// Metrics: the relative gap to the full-feedback baseline at N=2000 and
// N=10000 (paper: within 20% and 15%).
func BenchmarkFig4Convergence(b *testing.B) {
	var gap2k, gap10k float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(experiments.DefaultFig4Params())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			switch row.N {
			case 2000:
				gap2k = row.RelGap
			case 10000:
				gap10k = row.RelGap
			}
		}
	}
	b.ReportMetric(gap2k, "gap@2k")
	b.ReportMetric(gap10k, "gap@10k")
}

// BenchmarkTable2LoadBalancing regenerates Table 2 (off-policy vs online
// latency of LB policies). Metric: the send-to-1 online/offline breakage
// factor (paper: 0.70/0.31 ≈ 2.3×).
func BenchmarkTable2LoadBalancing(b *testing.B) {
	p := experiments.DefaultTable2Params()
	p.Config.NumRequests = 15000
	p.Config.Warmup = 1500
	var breakage float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(p)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Policy == "Send to 1" {
				breakage = row.Online / row.Offline
			}
		}
	}
	b.ReportMetric(breakage, "sendto1-online/offline")
}

// BenchmarkTable3Caching regenerates Table 3 (eviction-policy hitrates).
// Metric: the freq/size advantage over random in percentage points
// (paper: 58.9 − 48.5 ≈ 10.4).
func BenchmarkTable3Caching(b *testing.B) {
	p := experiments.DefaultTable3Params()
	p.Requests = 30000
	var adv float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(p)
		if err != nil {
			b.Fatal(err)
		}
		var random, fs float64
		for _, row := range res.Rows {
			switch row.Policy {
			case "Random":
				random = row.HitRate
			case "Freq/size":
				fs = row.HitRate
			}
		}
		adv = 100 * (fs - random)
	}
	b.ReportMetric(adv, "freqsize-adv-pts")
}

// BenchmarkFig6Hierarchy regenerates Fig. 6 (hierarchical vs flat action
// spaces). Metric: flat-over-hierarchical Eq. 1 error ratio.
func BenchmarkFig6Hierarchy(b *testing.B) {
	p := experiments.DefaultFig6Params()
	p.Config.NumRequests = 10000
	p.Config.Warmup = 1000
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(p)
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.Levels.FlatError / res.Levels.HierarchicalError
	}
	b.ReportMetric(ratio, "flat/hier-error")
}

// BenchmarkEq1Verification measures the simultaneous-evaluation sweep:
// every policy in a stump class evaluated on one log, with the worst-case
// error checked against the Eq. 1 envelope. Metric: max |err| at the
// largest N.
func BenchmarkEq1Verification(b *testing.B) {
	p := experiments.DefaultEq1Params()
	p.Ns = []int{8000}
	var maxErr float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Eq1(p)
		if err != nil {
			b.Fatal(err)
		}
		maxErr = res.Rows[len(res.Rows)-1].MaxAbsErr
	}
	b.ReportMetric(maxErr, "max-err@8k")
}

// BenchmarkAblationEstimators compares IPS/clip/SNIPS/DM/DR accuracy.
func BenchmarkAblationEstimators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationEstimators(int64(i+1), 10000, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPropensity compares propensity-inference methods.
func BenchmarkAblationPropensity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPropensity(int64(i+1), 10000, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationExploration measures chaos-driven coverage.
func BenchmarkAblationExploration(b *testing.B) {
	var longest float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationExploration(int64(i+1), 10000, 0)
		if err != nil {
			b.Fatal(err)
		}
		longest = float64(res.Chaos.LongestRun)
	}
	b.ReportMetric(longest, "chaos-longest-run")
}

// BenchmarkAblationSampleWidth sweeps the Redis-style eviction sample size.
func BenchmarkAblationSampleWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSampleWidth(int64(i+1), 20000, []int{2, 5, 10}, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContinuousLoop measures the §3 deploy-harvest-retrain loop.
// Metric: latency improvement from round 0 to the final round.
func BenchmarkContinuousLoop(b *testing.B) {
	p := experiments.DefaultContinuousParams()
	p.Rounds = 3
	p.Config.NumRequests = 8000
	p.Config.Warmup = 800
	var improvement float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Continuous(p)
		if err != nil {
			b.Fatal(err)
		}
		first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
		improvement = (first.OnlineLatency - last.OnlineLatency) / first.OnlineLatency
	}
	b.ReportMetric(improvement, "latency-improvement")
}

// BenchmarkDriftAdaptation measures the §5 A2-violation study. Metric: the
// incremental learner's downtime advantage over the frozen policy after
// the environment changes.
func BenchmarkDriftAdaptation(b *testing.B) {
	p := experiments.DefaultDriftParams()
	p.PhaseN = 4000
	var adv float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Drift(p)
		if err != nil {
			b.Fatal(err)
		}
		adv = res.StaticPhase2 - res.IncrementalPhase2
	}
	b.ReportMetric(adv, "downtime-saved-min")
}

// BenchmarkHarvestAllParallel measures the deterministic replicate
// scheduler's wall-clock scaling on the two heaviest replicate loops —
// fig3's resimulations and table2's candidate deployments — at workers =
// 1 (the legacy serial path), 2, and NumCPU. The outputs are identical at
// every worker count (TestSeedEquivalenceSerialVsParallel pins that), so
// the only thing varying here is wall-clock.
func BenchmarkHarvestAllParallel(b *testing.B) {
	seen := map[int]bool{}
	for _, w := range []int{1, 2, 4, runtime.NumCPU()} {
		if seen[w] {
			continue
		}
		seen[w] = true
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			fig3 := experiments.DefaultFig3Params()
			fig3.Resims = 200
			fig3.TestNs = []int{500, 2000, 3500}
			fig3.Workers = w
			t2 := experiments.DefaultTable2Params()
			t2.Config.NumRequests = 15000
			t2.Config.Warmup = 1500
			t2.Workers = w
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig3(fig3); err != nil {
					b.Fatal(err)
				}
				if _, err := experiments.Table2(t2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- microbenchmarks of the hot paths ---

// benchDataset builds a reusable exploration dataset.
func benchDataset(n int) core.Dataset {
	r := stats.NewRand(1)
	ds := make(core.Dataset, n)
	for i := range ds {
		ds[i] = core.Datapoint{
			Context:    core.Context{Features: core.Vector{r.Float64(), r.Float64()}, NumActions: 8},
			Action:     core.Action(r.Intn(8)),
			Reward:     r.Float64(),
			Propensity: 1.0 / 8,
		}
	}
	return ds
}

// BenchmarkIPSEstimate measures raw estimator throughput.
func BenchmarkIPSEstimate(b *testing.B) {
	ds := benchDataset(100000)
	pol := policy.Constant{A: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (ope.IPS{}).Estimate(pol, ds); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(ds)))
}

// BenchmarkSNIPSEstimate measures the self-normalized variant.
func BenchmarkSNIPSEstimate(b *testing.B) {
	ds := benchDataset(100000)
	pol := policy.Constant{A: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (ope.SNIPS{}).Estimate(pol, ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRewardModelFit measures ridge training on bandit data.
func BenchmarkRewardModelFit(b *testing.B) {
	ds := benchDataset(20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := learn.FitRewardModel(ds, learn.FitOptions{NumActions: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheOps measures Get/Set throughput under eviction pressure.
func BenchmarkCacheOps(b *testing.B) {
	w := cachesim.DefaultBigSmall()
	cfg := cachesim.Config{MaxBytes: w.TotalBytes() / 2, SampleSize: 10}
	c, err := cachesim.New(cfg, cachesim.RandomEvictor{R: stats.NewRand(1)}, stats.NewRand(2))
	if err != nil {
		b.Fatal(err)
	}
	r := stats.NewRand(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Advance(float64(i))
		req := w.Draw(r)
		if !c.Get(req.Key) {
			if err := c.Set(req.Key, req.Size); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkDESEvents measures simulator event throughput.
func BenchmarkDESEvents(b *testing.B) {
	var sim des.Simulator
	for i := 0; i < b.N; i++ {
		if _, err := sim.After(float64(i%64), func() {}); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 {
			for sim.Step() {
			}
		}
	}
	for sim.Step() {
	}
}

// BenchmarkHealthsimGenerate measures full-feedback episode generation.
func BenchmarkHealthsimGenerate(b *testing.B) {
	gen, err := healthsim.NewGenerator(stats.NewRand(1), healthsim.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds := gen.Generate(1000)
		if len(ds) != 1000 {
			b.Fatal("bad generate")
		}
	}
}

// BenchmarkDatasetJSONL measures dataset serialization round-trips.
func BenchmarkDatasetJSONL(b *testing.B) {
	ds := benchDataset(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ds.WriteJSONL(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRESPGetSet measures request/reply throughput of the cache
// server over a real loopback TCP connection.
func BenchmarkRESPGetSet(b *testing.B) {
	cli, closeAll, err := startRESP(1 << 20)
	if err != nil {
		b.Fatal(err)
	}
	defer closeAll()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := "bench-key-" + string(rune('a'+i%16))
		if err := cli.Set(key, "0123456789abcdef"); err != nil {
			b.Fatal(err)
		}
		if _, _, err := cli.Get(key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRESPPipelined measures the same workload batched 32 commands
// per round trip.
func BenchmarkRESPPipelined(b *testing.B) {
	cli, closeAll, err := startRESP(1 << 20)
	if err != nil {
		b.Fatal(err)
	}
	defer closeAll()
	b.ResetTimer()
	for i := 0; i < b.N; i += 32 {
		pipe := cli.Pipeline()
		for j := 0; j < 32; j++ {
			pipe.Queue("SET", "bench-key", "0123456789abcdef")
		}
		if _, err := pipe.Exec(); err != nil {
			b.Fatal(err)
		}
	}
}

// startRESP brings up a cache server on loopback for the benches.
func startRESP(maxBytes int64) (*resp.Client, func(), error) {
	var srv *resp.Server
	cache, err := cachesim.New(cachesim.Config{
		MaxBytes:   maxBytes,
		SampleSize: 5,
		OnEvict:    func(key string) { srv.OnEvict(key) },
	}, cachesim.RandomEvictor{R: stats.NewRand(1)}, stats.NewRand(2))
	if err != nil {
		return nil, nil, err
	}
	srv, err = resp.NewServer(cache)
	if err != nil {
		return nil, nil, err
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	cli, err := resp.Dial(addr.String(), 2*time.Second)
	if err != nil {
		srv.Close()
		return nil, nil, err
	}
	return cli, func() { cli.Close(); srv.Close() }, nil
}

// BenchmarkProxyRequest measures end-to-end latency through the HTTP
// reverse proxy to a fast backend on loopback.
func BenchmarkProxyRequest(b *testing.B) {
	backend, err := netlb.StartBackend(0, time.Microsecond, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer backend.Close()
	backend2, err := netlb.StartBackend(1, time.Microsecond, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer backend2.Close()
	proxy, err := netlb.NewProxy([]string{backend.Addr(), backend2.Addr()},
		policy.UniformRandom{R: stats.NewRand(1)}, stats.NewRand(2), io.Discard)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := proxy.Start(); err != nil {
		b.Fatal(err)
	}
	defer proxy.Close()
	client := &http.Client{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(proxy.URL() + "/bench")
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}
