package repro

// End-to-end harvestd test: a live netlb topology (real backends, real
// reverse proxy, real HTTP load) logs randomized routing decisions to an
// access log; harvestd tails that log as it grows and estimates a candidate
// policy counterfactually; the candidate is then actually deployed on an
// identical topology and the measured value must fall inside the reported
// 95% confidence interval — the paper's harvest → estimate → deploy →
// verify loop, across process-like boundaries (files, sockets, HTTP).

import (
	"encoding/json"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harvestd"
	"repro/internal/harvester"
	"repro/internal/lbsim"
	"repro/internal/netlb"
	"repro/internal/policy"
	"repro/internal/stats"
)

// runNetLB serves n requests through a fresh 2-backend topology under the
// given routing policy, writing the access log to path, and returns the
// number of completed requests.
func runNetLB(t *testing.T, path string, pol core.Policy, n int, seed int64) int {
	t.Helper()
	r := stats.NewRand(seed)
	addrs := make([]string, 2)
	for i := range addrs {
		base := time.Duration(float64(4*time.Millisecond) * (1 + 0.5*float64(i)))
		be, err := netlb.StartBackend(i, base, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		defer be.Close()
		addrs[i] = be.Addr()
	}
	logF, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer logF.Close()
	proxy, err := netlb.NewProxy(addrs, pol, stats.Split(r), logF)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proxy.Start(); err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	res, err := netlb.GenerateLoad(proxy.URL(), n, 250, stats.Split(r))
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors > 0 {
		t.Fatalf("%d load errors", res.Errors)
	}
	return len(res.Latencies)
}

// meanLoggedRT averages the proxy-measured request time over an access log —
// the same reward signal harvestd folds, so the deployed run's value is in
// identical units.
func meanLoggedRT(t *testing.T, path string) float64 {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	entries, err := harvester.ScavengeNginx(f)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	var n int
	for _, e := range entries {
		if e.Status >= 200 && e.Status <= 299 {
			sum += e.RequestTime
			n++
		}
	}
	if n == 0 {
		t.Fatal("empty ground-truth log")
	}
	return sum / float64(n)
}

func TestE2EHarvestdEstimatesLiveNetLB(t *testing.T) {
	if testing.Short() {
		t.Skip("live netlb topology in -short mode")
	}
	dir := t.TempDir()
	exploreLog := filepath.Join(dir, "explore.log")
	// The access log must exist before harvestd starts tailing it.
	if f, err := os.Create(exploreLog); err != nil {
		t.Fatal(err)
	} else {
		f.Close()
	}

	// Start harvestd tailing the (still empty) log, evaluating the
	// least-loaded candidate against the uniform-random logging policy.
	reg, err := harvestd.NewRegistry(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("leastloaded", lbsim.LeastLoaded{}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("uniform", policy.UniformRandom{}); err != nil {
		t.Fatal(err)
	}
	d, err := harvestd.New(harvestd.Config{
		Workers: 2, Clip: 10, Addr: "127.0.0.1:0",
	}, reg)
	if err != nil {
		t.Fatal(err)
	}
	d.AddSource(&harvestd.NginxSource{
		Path: exploreLog, Follow: true, Poll: 5 * time.Millisecond,
	})
	ctx := t.Context()
	if err := d.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(ctx)

	// Drive real load through a uniformly-randomized proxy while harvestd
	// tails its log live.
	const requests = 600
	completed := runNetLB(t, exploreLog, policy.UniformRandom{R: stats.NewRand(31)}, requests, 32)

	// Scrape the API until the tail catches up with the load.
	var est harvestd.PolicyEstimate
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(d.URL() + "/estimates?policy=leastloaded")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&est)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if est.N == int64(completed) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("harvested %d of %d requests", est.N, completed)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Ground truth: actually deploy the candidate on an identical topology.
	truthLog := filepath.Join(dir, "truth.log")
	runNetLB(t, truthLog, lbsim.LeastLoaded{}, requests, 33)
	truth := meanLoggedRT(t, truthLog)

	// The counterfactual estimate's reported 95% empirical-Bernstein
	// interval must contain the deployed value.
	if !est.IPS.EBOK {
		t.Fatalf("no EB interval: %+v", est.IPS)
	}
	if truth < est.IPS.EBLo || truth > est.IPS.EBHi {
		t.Errorf("deployed value %.6f outside 95%% CI [%.6f, %.6f] (point %.6f)",
			truth, est.IPS.EBLo, est.IPS.EBHi, est.IPS.Value)
	}
	// And the point estimates themselves should be close: SNIPS is the
	// low-variance one.
	if rel := math.Abs(est.SNIPS.Value-truth) / truth; rel > 0.25 {
		t.Errorf("SNIPS %.6f vs deployed %.6f (%.0f%% off)", est.SNIPS.Value, truth, 100*rel)
	}
	// Sanity: least-loaded should not look worse than the logging policy.
	var unif harvestd.PolicyEstimate
	resp, err := http.Get(d.URL() + "/estimates?policy=uniform")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&unif); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if est.SNIPS.Value > unif.SNIPS.Value*1.05 {
		t.Errorf("least-loaded %.6f should not be slower than uniform %.6f",
			est.SNIPS.Value, unif.SNIPS.Value)
	}
}
