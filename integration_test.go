package repro

// Integration smoke tests: each runs one scenario's full §3 pipeline —
// scavenge from a live(ly simulated) system, infer propensities, evaluate
// and optimize offline, then verify online — crossing every package
// boundary the corresponding example crosses, in-process.

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/harvester"
	"repro/internal/healthsim"
	"repro/internal/lbsim"
	"repro/internal/learn"
	"repro/internal/ope"
	"repro/internal/policy"
	"repro/internal/stats"
)

func TestIntegrationMachineHealthPipeline(t *testing.T) {
	root := stats.NewRand(1)
	gen, err := healthsim.NewGenerator(stats.Split(root), healthsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	train := gen.Generate(6000)
	test := gen.Generate(3000)
	expl := learn.SimulateExploration(stats.Split(root), train)

	// Step 2 alternative: re-infer the (uniform) propensities by
	// regression and confirm the estimate is unaffected.
	inferred, err := (harvester.LogisticPropensity{}).Infer(expl)
	if err != nil {
		t.Fatal(err)
	}
	pol := core.PolicyFunc(func(*core.Context) core.Action { return 3 })
	norm := healthsim.NormalizeRewards(expl, gen.MaxPossibleDowntime())
	normInferred := healthsim.NormalizeRewards(inferred, gen.MaxPossibleDowntime())
	a, err := (ope.IPS{}).Estimate(pol, norm)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (ope.IPS{}).Estimate(pol, normInferred)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Value-b.Value) > 0.05 {
		t.Errorf("inferred-propensity estimate %v drifted from known %v", b.Value, a.Value)
	}

	// Step 3: optimize and verify on ground truth.
	model, err := learn.FitRewardModel(expl, learn.FitOptions{NumActions: healthsim.NumWaitActions})
	if err != nil {
		t.Fatal(err)
	}
	cb := -test.MeanReward(model.GreedyPolicy(false))
	def := -test.MeanReward(healthsim.DefaultPolicy())
	if cb >= def {
		t.Errorf("CB downtime %v should beat default %v", cb, def)
	}
}

func TestIntegrationLoadBalancingPipeline(t *testing.T) {
	cfg := lbsim.Table2Config()
	cfg.NumRequests = 12000
	cfg.Warmup = 1200
	root := stats.NewRand(2)
	logRun, err := lbsim.Run(cfg, policy.UniformRandom{R: stats.Split(root)}, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip the exploration data through JSONL (the storage format).
	var buf strings.Builder
	if err := logRun.Exploration.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	ds, err := core.ReadJSONL(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	cb, err := lbsim.FitCBPolicy(ds)
	if err != nil {
		t.Fatal(err)
	}
	online, err := lbsim.Run(cfg, cb, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if online.MeanLatency >= logRun.MeanLatency {
		t.Errorf("CB %v should beat the random logging run %v", online.MeanLatency, logRun.MeanLatency)
	}
}

func TestIntegrationCachingPipeline(t *testing.T) {
	w := cachesim.DefaultBigSmall()
	cfg := cachesim.Table3CacheConfig(w)
	root := stats.NewRand(5)
	c, err := cachesim.New(cfg, cachesim.RandomEvictor{R: stats.Split(root)}, stats.Split(root))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cachesim.Replay(c, w, stats.Split(root), 25000); err != nil {
		t.Fatal(err)
	}
	// Round-trip the logs through the text format before harvesting.
	var logFile strings.Builder
	if err := harvester.WriteCacheLogs(&logFile, c.AccessLog(), c.EvictionLog()); err != nil {
		t.Fatal(err)
	}
	accesses, evictions, err := harvester.ScavengeCacheLogs(strings.NewReader(logFile.String()))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := harvester.HarvestEvictions(evictions, accesses, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	model, err := learn.FitRewardModel(ds, learn.FitOptions{Lambda: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	// Deploy the learned evictor and the winning heuristic.
	quiet := cfg
	quiet.LogAccesses, quiet.LogEvictions = false, false
	cbCache, err := cachesim.New(quiet, cachesim.CBEvictor{Model: model}, stats.Split(root))
	if err != nil {
		t.Fatal(err)
	}
	cbHR, err := cachesim.Replay(cbCache, w, stats.Split(root), 25000)
	if err != nil {
		t.Fatal(err)
	}
	fsCache, err := cachesim.New(quiet, cachesim.FreqSizeEvictor{}, stats.Split(root))
	if err != nil {
		t.Fatal(err)
	}
	fsHR, err := cachesim.Replay(fsCache, w, stats.Split(root), 25000)
	if err != nil {
		t.Fatal(err)
	}
	if cbHR >= fsHR {
		t.Errorf("greedy CB %v must lose to size-aware %v (the Table 3 lesson)", cbHR, fsHR)
	}
}
