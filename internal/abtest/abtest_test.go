package abtest

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/ope"
	"repro/internal/policy"
	"repro/internal/stats"
)

func twoVariants() []core.Policy {
	return []core.Policy{policy.Constant{A: 0}, policy.Constant{A: 1}}
}

func TestNewValidation(t *testing.T) {
	r := stats.NewRand(1)
	if _, err := New(twoVariants()[:1], nil, r); err == nil {
		t.Error("single variant should fail")
	}
	if _, err := New(twoVariants(), nil, nil); err == nil {
		t.Error("nil rand should fail")
	}
	if _, err := New(twoVariants(), []string{"only-one"}, r); err == nil {
		t.Error("name count mismatch should fail")
	}
}

func TestAssignSplitsEvenly(t *testing.T) {
	e, err := New(twoVariants(), nil, stats.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	counts := [2]int{}
	for i := 0; i < 100000; i++ {
		counts[e.Assign()]++
	}
	frac := float64(counts[0]) / 100000
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("split = %v", frac)
	}
}

func TestRecordAndResults(t *testing.T) {
	e, err := New(twoVariants(), []string{"ctrl", "treat"}, stats.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := e.Record(0, 1.0); err != nil {
			t.Fatal(err)
		}
		if err := e.Record(1, 2.0); err != nil {
			t.Fatal(err)
		}
	}
	res := e.Results(0.05)
	if res[0].Name != "ctrl" || res[1].Name != "treat" {
		t.Errorf("names: %+v", res)
	}
	if res[0].Mean != 1 || res[1].Mean != 2 {
		t.Errorf("means: %+v", res)
	}
	if res[0].N != 100 {
		t.Errorf("N = %d", res[0].N)
	}
	if err := e.Record(5, 1); err == nil {
		t.Error("out-of-range variant should fail")
	}
}

func TestCompareDetectsDifference(t *testing.T) {
	e, err := New(twoVariants(), nil, stats.NewRand(4))
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRand(5)
	for i := 0; i < 2000; i++ {
		_ = e.Record(0, r.NormFloat64())
		_ = e.Record(1, r.NormFloat64()+0.3)
	}
	z, p, err := e.Compare(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.001 || z >= 0 {
		t.Errorf("z=%v p=%v, expected clear detection", z, p)
	}
	if _, _, err := e.Compare(0, 9); err == nil {
		t.Error("out-of-range compare should fail")
	}
}

func TestSimulateAndBest(t *testing.T) {
	e, err := New(twoVariants(), nil, stats.NewRand(6))
	if err != nil {
		t.Fatal(err)
	}
	// Environment: action 1 earns 1, action 0 earns 0 (plus noise).
	envR := stats.NewRand(7)
	env := func(p core.Policy, i int) float64 {
		ctx := &core.Context{NumActions: 2}
		return float64(p.Act(ctx)) + envR.NormFloat64()*0.1
	}
	if err := e.Simulate(env, 2000); err != nil {
		t.Fatal(err)
	}
	best, err := e.Best(false)
	if err != nil {
		t.Fatal(err)
	}
	if best != 1 {
		t.Errorf("best = %d, want 1", best)
	}
	worst, err := e.Best(true)
	if err != nil {
		t.Fatal(err)
	}
	if worst != 0 {
		t.Errorf("worst = %d, want 0", worst)
	}
}

func TestSimulateValidation(t *testing.T) {
	e, _ := New(twoVariants(), nil, stats.NewRand(8))
	if err := e.Simulate(nil, 10); err == nil {
		t.Error("nil env should fail")
	}
	if err := e.Simulate(func(core.Policy, int) float64 { return 0 }, 0); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := e.Best(false); err == nil {
		t.Error("Best with no data should fail")
	}
}

func TestABDataCostExceedsCBCost(t *testing.T) {
	// The Fig. 1 story told through this package and ope: to separate K
	// policies to the same precision, the A/B experiment needs far more
	// total traffic than off-policy evaluation of the same K policies on
	// shared exploration data.
	for _, k := range []float64{10, 1e3, 1e6} {
		ab := ope.ABRequiredN(1, k, 0.01, 0.05)
		cb := ope.Eq1RequiredN(2, 0.04, k, 0.01, 0.05)
		if ab <= cb {
			t.Errorf("K=%g: A/B cost %g should exceed CB cost %g", k, ab, cb)
		}
	}
}

func TestEmpiricalABConfidenceMatchesVariantCount(t *testing.T) {
	// With fixed total traffic, adding variants shrinks per-variant N and
	// widens CIs — the "only 100% of traffic to share" constraint.
	run := func(k int) float64 {
		variants := make([]core.Policy, k)
		for i := range variants {
			variants[i] = policy.Constant{A: core.Action(i % 2)}
		}
		e, err := New(variants, nil, stats.NewRand(9))
		if err != nil {
			t.Fatal(err)
		}
		envR := stats.NewRand(10)
		env := func(p core.Policy, i int) float64 { return envR.NormFloat64() }
		if err := e.Simulate(env, 10000); err != nil {
			t.Fatal(err)
		}
		res := e.Results(0.05)
		width := 0.0
		for _, vs := range res {
			width += vs.CI.Width()
		}
		return width / float64(len(res))
	}
	if w2, w20 := run(2), run(20); w20 <= w2 {
		t.Errorf("mean CI width with 20 variants (%v) should exceed 2 variants (%v)", w20, w2)
	}
}
