// Package abtest implements the randomized controlled experiment baseline
// the paper compares against (Fig. 1): K policy variants each deployed on a
// slice of live traffic, with per-variant statistics and two-sample tests.
// Its key property — and the reason contextual bandits beat it — is that a
// datapoint collected under variant i says nothing about variant j, so the
// data cost grows linearly in K while off-policy evaluation's grows
// logarithmically (ope.Eq1RequiredN vs ope.ABRequiredN).
package abtest

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/stats"
)

// Experiment is a running A/B/n test over policy variants.
type Experiment struct {
	variants []core.Policy
	names    []string
	r        *rand.Rand
	rewards  [][]float64
}

// New builds an experiment. names may be nil (variants get index names).
func New(variants []core.Policy, names []string, r *rand.Rand) (*Experiment, error) {
	if len(variants) < 2 {
		return nil, fmt.Errorf("abtest: need at least 2 variants, got %d", len(variants))
	}
	if r == nil {
		return nil, fmt.Errorf("abtest: nil rand")
	}
	if names == nil {
		names = make([]string, len(variants))
		for i := range names {
			names[i] = fmt.Sprintf("variant-%d", i)
		}
	}
	if len(names) != len(variants) {
		return nil, fmt.Errorf("abtest: %d names for %d variants", len(names), len(variants))
	}
	return &Experiment{
		variants: variants,
		names:    names,
		r:        r,
		rewards:  make([][]float64, len(variants)),
	}, nil
}

// Assign returns the variant index for the next interaction (uniform
// traffic split — note this randomizes over *policies*, not actions, which
// is exactly why the data cannot be reused across variants).
func (e *Experiment) Assign() int { return e.r.Intn(len(e.variants)) }

// Policy returns variant i's policy.
func (e *Experiment) Policy(i int) core.Policy { return e.variants[i] }

// Record stores an observed reward for variant i.
func (e *Experiment) Record(i int, reward float64) error {
	if i < 0 || i >= len(e.rewards) {
		return fmt.Errorf("abtest: variant %d out of range", i)
	}
	e.rewards[i] = append(e.rewards[i], reward)
	return nil
}

// VariantStats summarizes one arm.
type VariantStats struct {
	Name string
	N    int
	Mean float64
	CI   stats.Interval
}

// Results returns per-variant statistics with 1-delta normal CIs.
func (e *Experiment) Results(delta float64) []VariantStats {
	out := make([]VariantStats, len(e.variants))
	for i := range e.variants {
		xs := e.rewards[i]
		m := stats.Mean(xs)
		r := stats.NormalApproxRadius(stats.StdErr(xs), delta)
		if len(xs) < 2 {
			r = 0
		}
		out[i] = VariantStats{
			Name: e.names[i],
			N:    len(xs),
			Mean: m,
			CI:   stats.Interval{Point: m, Lo: m - r, Hi: m + r},
		}
	}
	return out
}

// Compare runs a two-sample z-test between variants i and j, returning the
// z statistic and two-sided p-value.
func (e *Experiment) Compare(i, j int) (z, p float64, err error) {
	if i < 0 || i >= len(e.rewards) || j < 0 || j >= len(e.rewards) {
		return 0, 0, fmt.Errorf("abtest: compare %d vs %d out of range", i, j)
	}
	return stats.TwoSampleZ(e.rewards[i], e.rewards[j])
}

// Environment is a simulatable world: given a policy and an interaction
// index, it produces a reward. The healthsim and lbsim substrates provide
// these for experiment code.
type Environment func(p core.Policy, i int) float64

// Simulate runs n interactions through the experiment against env,
// assigning each interaction to one variant (the A/B protocol: a variant
// only learns from its own traffic).
func (e *Experiment) Simulate(env Environment, n int) error {
	if env == nil {
		return fmt.Errorf("abtest: nil environment")
	}
	if n <= 0 {
		return fmt.Errorf("abtest: n=%d", n)
	}
	for i := 0; i < n; i++ {
		v := e.Assign()
		if err := e.Record(v, env(e.variants[v], i)); err != nil {
			return err
		}
	}
	return nil
}

// Best returns the index of the variant with the highest (or lowest, when
// minimize) mean, or an error if any variant has no data.
func (e *Experiment) Best(minimize bool) (int, error) {
	best := -1
	var bestMean float64
	for i, xs := range e.rewards {
		if len(xs) == 0 {
			return 0, fmt.Errorf("abtest: variant %d (%s) has no data", i, e.names[i])
		}
		m := stats.Mean(xs)
		if best == -1 || (minimize && m < bestMean) || (!minimize && m > bestMean) {
			best, bestMean = i, m
		}
	}
	return best, nil
}
