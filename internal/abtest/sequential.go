package abtest

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Sequential is an anytime-valid two-arm monitor: unlike a fixed-horizon
// z-test, its confidence radius remains valid at *every* sample size
// simultaneously, so the experimenter may peek after each observation and
// stop the moment the arms separate — without inflating the false-positive
// rate. Real experimentation platforms need exactly this ("experiments
// also need to run long enough...", §1); naive repeated z-tests do not.
//
// The construction is a doubling-epoch union bound: within epoch k
// (n ∈ [2^k, 2^{k+1})), each arm's mean is covered by a Hoeffding interval
// at level δ_k = δ / (2·(k+1)·(k+2)); Σ_k δ_k ≤ δ/2 per arm. Radii are
// computed at the epoch floor (conservative for every n in the epoch).
//
// Because the monitor's state is nothing but per-arm sums, sums of squares,
// and counts, a batch of n observations folds in exactly as n individual
// Add calls would (AddBatch) — which is what lets a rollout controller that
// only sees aggregate estimator increments drive the monitor as if it had
// seen every underlying datapoint.
type Sequential struct {
	lo, hi float64
	delta  float64
	eb     bool
	sums   [2]float64
	sumSqs [2]float64
	counts [2]int
}

// NewSequential builds a monitor for rewards bounded in [lo, hi] with
// overall error probability delta, using range-based Hoeffding radii.
func NewSequential(lo, hi, delta float64) (*Sequential, error) {
	if hi <= lo {
		return nil, fmt.Errorf("abtest: reward range [%v, %v]", lo, hi)
	}
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("abtest: delta %v out of (0,1)", delta)
	}
	return &Sequential{lo: lo, hi: hi, delta: delta}, nil
}

// NewSequentialEB builds a monitor whose per-epoch radii use the
// empirical-Bernstein bound (Mnih et al.'s EBStop construction on the same
// doubling-epoch grid) instead of Hoeffding: the radius scales with the
// arms' observed variance rather than the full reward range, so streams
// whose rewards occupy a narrow slice of a wide worst-case range — IPS
// terms bounded by clip·r_max but concentrated near the mean — separate
// orders of magnitude sooner. The [lo, hi] range still bounds individual
// rewards (it feeds the Bernstein range term and input validation).
func NewSequentialEB(lo, hi, delta float64) (*Sequential, error) {
	s, err := NewSequential(lo, hi, delta)
	if err != nil {
		return nil, err
	}
	s.eb = true
	return s, nil
}

// Add records a reward for arm 0 or 1.
func (s *Sequential) Add(arm int, reward float64) error {
	if arm < 0 || arm > 1 {
		return fmt.Errorf("abtest: arm %d", arm)
	}
	if reward < s.lo || reward > s.hi || math.IsNaN(reward) {
		return fmt.Errorf("abtest: reward %v outside [%v, %v]", reward, s.lo, s.hi)
	}
	s.sums[arm] += reward
	s.sumSqs[arm] += reward * reward
	s.counts[arm]++
	return nil
}

// AddBatch folds n observations whose sum and sum of squares are given,
// without seeing them individually. The caller asserts that each underlying
// observation lies in [lo, hi]; the monitor can only verify the batch mean.
// Because the monitor's state is exactly (sum, sum of squares, count), the
// resulting decisions are identical to n individual Add calls — peeking
// only at batch boundaries, a subset of peeking at every observation, so
// the anytime guarantee is preserved.
func (s *Sequential) AddBatch(arm, n int, sum, sumSq float64) error {
	if arm < 0 || arm > 1 {
		return fmt.Errorf("abtest: arm %d", arm)
	}
	if n < 0 {
		return fmt.Errorf("abtest: batch size %d", n)
	}
	if n == 0 {
		return nil
	}
	mean := sum / float64(n)
	if mean < s.lo || mean > s.hi || math.IsNaN(mean) {
		return fmt.Errorf("abtest: batch mean %v outside [%v, %v]", mean, s.lo, s.hi)
	}
	if math.IsNaN(sumSq) || math.IsInf(sumSq, 0) || sumSq < 0 {
		return fmt.Errorf("abtest: batch sum of squares %v", sumSq)
	}
	s.sums[arm] += sum
	s.sumSqs[arm] += sumSq
	s.counts[arm] += n
	return nil
}

// N returns the per-arm observation counts.
func (s *Sequential) N() (n0, n1 int) { return s.counts[0], s.counts[1] }

// radius returns the anytime-valid confidence radius for an arm with n
// observations. In EB mode the Hoeffding radius still caps the result: with
// few samples the variance estimate is untrustworthy and the Bernstein
// range term can exceed the plain range bound.
func (s *Sequential) radius(arm, n int) float64 {
	if n < 1 {
		return math.Inf(1)
	}
	epoch := int(math.Floor(math.Log2(float64(n))))
	floor := math.Pow(2, float64(epoch))
	deltaK := s.delta / (2 * float64(epoch+1) * float64(epoch+2))
	r := stats.HoeffdingRadius(int(floor), s.lo, s.hi, deltaK)
	if s.eb && n >= 2 {
		nf := float64(n)
		mean := s.sums[arm] / nf
		v := (s.sumSqs[arm] - nf*mean*mean) / (nf - 1)
		if v < 0 {
			v = 0
		}
		if rb := stats.EmpiricalBernsteinRadius(int(floor), v, s.hi-s.lo, deltaK); rb < r {
			r = rb
		}
	}
	return r
}

// Intervals returns the current anytime-valid interval per arm.
func (s *Sequential) Intervals() [2]stats.Interval {
	var out [2]stats.Interval
	for arm := 0; arm < 2; arm++ {
		mean := 0.0
		if s.counts[arm] > 0 {
			mean = s.sums[arm] / float64(s.counts[arm])
		}
		r := s.radius(arm, s.counts[arm])
		out[arm] = stats.Interval{Point: mean, Lo: mean - r, Hi: mean + r}
	}
	return out
}

// SequentialState is the monitor's complete serializable state, for
// checkpointing a rollout controller mid-flight. Restoring it reproduces
// the monitor exactly: decisions after a restore are byte-identical to an
// uninterrupted run.
type SequentialState struct {
	Lo     float64    `json:"lo"`
	Hi     float64    `json:"hi"`
	Delta  float64    `json:"delta"`
	EB     bool       `json:"eb"`
	Sums   [2]float64 `json:"sums"`
	SumSqs [2]float64 `json:"sum_sqs"`
	Counts [2]int64   `json:"counts"`
}

// State exports the monitor for checkpointing.
func (s *Sequential) State() SequentialState {
	return SequentialState{
		Lo: s.lo, Hi: s.hi, Delta: s.delta, EB: s.eb,
		Sums:   s.sums,
		SumSqs: s.sumSqs,
		Counts: [2]int64{int64(s.counts[0]), int64(s.counts[1])},
	}
}

// RestoreSequential rebuilds a monitor from exported state, validating the
// parameters and the accumulated sums (a corrupt checkpoint must not
// resurrect an invalid monitor).
func RestoreSequential(st SequentialState) (*Sequential, error) {
	s, err := NewSequential(st.Lo, st.Hi, st.Delta)
	if err != nil {
		return nil, err
	}
	s.eb = st.EB
	for arm := 0; arm < 2; arm++ {
		if st.Counts[arm] < 0 {
			return nil, fmt.Errorf("abtest: restored count %d for arm %d", st.Counts[arm], arm)
		}
		if err := s.AddBatch(arm, int(st.Counts[arm]), st.Sums[arm], st.SumSqs[arm]); err != nil {
			return nil, fmt.Errorf("abtest: restoring arm %d: %w", arm, err)
		}
	}
	return s, nil
}

// Decided reports whether the arms have separated, and if so which arm is
// better (higher mean). Safe to call after every Add.
func (s *Sequential) Decided() (winner int, done bool) {
	iv := s.Intervals()
	if iv[0].Lo > iv[1].Hi {
		return 0, true
	}
	if iv[1].Lo > iv[0].Hi {
		return 1, true
	}
	return 0, false
}
