package abtest

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Sequential is an anytime-valid two-arm monitor: unlike a fixed-horizon
// z-test, its confidence radius remains valid at *every* sample size
// simultaneously, so the experimenter may peek after each observation and
// stop the moment the arms separate — without inflating the false-positive
// rate. Real experimentation platforms need exactly this ("experiments
// also need to run long enough...", §1); naive repeated z-tests do not.
//
// The construction is a doubling-epoch union bound: within epoch k
// (n ∈ [2^k, 2^{k+1})), each arm's mean is covered by a Hoeffding interval
// at level δ_k = δ / (2·(k+1)·(k+2)); Σ_k δ_k ≤ δ/2 per arm. Radii are
// computed at the epoch floor (conservative for every n in the epoch).
type Sequential struct {
	lo, hi float64
	delta  float64
	sums   [2]float64
	counts [2]int
}

// NewSequential builds a monitor for rewards bounded in [lo, hi] with
// overall error probability delta.
func NewSequential(lo, hi, delta float64) (*Sequential, error) {
	if hi <= lo {
		return nil, fmt.Errorf("abtest: reward range [%v, %v]", lo, hi)
	}
	if delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("abtest: delta %v out of (0,1)", delta)
	}
	return &Sequential{lo: lo, hi: hi, delta: delta}, nil
}

// Add records a reward for arm 0 or 1.
func (s *Sequential) Add(arm int, reward float64) error {
	if arm < 0 || arm > 1 {
		return fmt.Errorf("abtest: arm %d", arm)
	}
	if reward < s.lo || reward > s.hi || math.IsNaN(reward) {
		return fmt.Errorf("abtest: reward %v outside [%v, %v]", reward, s.lo, s.hi)
	}
	s.sums[arm] += reward
	s.counts[arm]++
	return nil
}

// N returns the per-arm observation counts.
func (s *Sequential) N() (n0, n1 int) { return s.counts[0], s.counts[1] }

// radius returns the anytime-valid confidence radius for an arm with n
// observations.
func (s *Sequential) radius(n int) float64 {
	if n < 1 {
		return math.Inf(1)
	}
	epoch := int(math.Floor(math.Log2(float64(n))))
	floor := math.Pow(2, float64(epoch))
	deltaK := s.delta / (2 * float64(epoch+1) * float64(epoch+2))
	return stats.HoeffdingRadius(int(floor), s.lo, s.hi, deltaK)
}

// Intervals returns the current anytime-valid interval per arm.
func (s *Sequential) Intervals() [2]stats.Interval {
	var out [2]stats.Interval
	for arm := 0; arm < 2; arm++ {
		mean := 0.0
		if s.counts[arm] > 0 {
			mean = s.sums[arm] / float64(s.counts[arm])
		}
		r := s.radius(s.counts[arm])
		out[arm] = stats.Interval{Point: mean, Lo: mean - r, Hi: mean + r}
	}
	return out
}

// Decided reports whether the arms have separated, and if so which arm is
// better (higher mean). Safe to call after every Add.
func (s *Sequential) Decided() (winner int, done bool) {
	iv := s.Intervals()
	if iv[0].Lo > iv[1].Hi {
		return 0, true
	}
	if iv[1].Lo > iv[0].Hi {
		return 1, true
	}
	return 0, false
}
