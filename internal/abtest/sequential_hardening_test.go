package abtest

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/stats"
)

// dyadicRewards draws rewards from the grid {0, 1/64, ..., 1}: every value
// and every partial sum is exactly representable in binary floating point,
// so reordering or rebatching the stream must leave the monitor's state
// bit-identical — no "close enough" tolerance hiding a real order
// dependence.
func dyadicRewards(seed int64, n int) []float64 {
	r := stats.NewRand(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(r.Intn(65)) / 64
	}
	return out
}

// TestSequentialPermutationInvariance is the property the rollout
// controller leans on: the monitor's decisions are a function of
// (sum, sum of squares, count) only, so any seeded shuffle of the same
// observation multiset must land in the identical state with the identical
// verdict.
func TestSequentialPermutationInvariance(t *testing.T) {
	for _, mode := range []struct {
		name string
		mk   func() (*Sequential, error)
	}{
		{"hoeffding", func() (*Sequential, error) { return NewSequential(0, 1, 0.05) }},
		{"eb", func() (*Sequential, error) { return NewSequentialEB(0, 1, 0.05) }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			rewards0 := dyadicRewards(11, 500)
			rewards1 := dyadicRewards(12, 500)

			ref, err := mode.mk()
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range rewards0 {
				_ = ref.Add(0, v)
			}
			for _, v := range rewards1 {
				_ = ref.Add(1, v)
			}
			refState := ref.State()
			refWinner, refDone := ref.Decided()

			for seed := int64(0); seed < 8; seed++ {
				s, err := mode.mk()
				if err != nil {
					t.Fatal(err)
				}
				p0 := append([]float64(nil), rewards0...)
				p1 := append([]float64(nil), rewards1...)
				r := stats.NewRand(seed + 40)
				r.Shuffle(len(p0), func(i, j int) { p0[i], p0[j] = p0[j], p0[i] })
				r.Shuffle(len(p1), func(i, j int) { p1[i], p1[j] = p1[j], p1[i] })
				// Interleave the arms differently per seed, too.
				for i := 0; i < len(p0); i++ {
					if seed%2 == 0 {
						_ = s.Add(0, p0[i])
						_ = s.Add(1, p1[i])
					} else {
						_ = s.Add(1, p1[i])
						_ = s.Add(0, p0[i])
					}
				}
				if got := s.State(); !reflect.DeepEqual(got, refState) {
					t.Fatalf("seed %d: shuffled state %+v != reference %+v", seed, got, refState)
				}
				if w, d := s.Decided(); w != refWinner || d != refDone {
					t.Fatalf("seed %d: shuffled verdict (%d,%t) != reference (%d,%t)", seed, w, d, refWinner, refDone)
				}
			}
		})
	}
}

// TestSequentialAddBatchEquivalence feeds the same stream once as
// individual Adds and once as arbitrary seeded batch splits: states,
// intervals, and verdicts must match exactly. This is the contract that
// lets rolloutd drive the monitor from aggregate estimator increments.
func TestSequentialAddBatchEquivalence(t *testing.T) {
	rewards := dyadicRewards(21, 600)

	single, err := NewSequentialEB(0, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range rewards {
		_ = single.Add(i%2, v)
	}

	for seed := int64(0); seed < 4; seed++ {
		batched, err := NewSequentialEB(0, 1, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		r := stats.NewRand(seed + 70)
		// Walk each arm's subsequence in order, cutting it into random-size
		// batches and folding each with AddBatch.
		for arm := 0; arm < 2; arm++ {
			var armRewards []float64
			for i, v := range rewards {
				if i%2 == arm {
					armRewards = append(armRewards, v)
				}
			}
			for len(armRewards) > 0 {
				k := 1 + r.Intn(len(armRewards))
				var sum, sumSq float64
				for _, v := range armRewards[:k] {
					sum += v
					sumSq += v * v
				}
				if err := batched.AddBatch(arm, k, sum, sumSq); err != nil {
					t.Fatal(err)
				}
				armRewards = armRewards[k:]
			}
		}
		if got, want := batched.State(), single.State(); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: batched state %+v != single-Add state %+v", seed, got, want)
		}
		if got, want := batched.Intervals(), single.Intervals(); got != want {
			t.Fatalf("seed %d: batched intervals %v != %v", seed, got, want)
		}
		bw, bd := batched.Decided()
		sw, sd := single.Decided()
		if bw != sw || bd != sd {
			t.Fatalf("seed %d: batched verdict (%d,%t) != (%d,%t)", seed, bw, bd, sw, sd)
		}
	}
}

// TestSequentialDecidedBoundary pins Decided's strict-separation semantics
// with zero-variance arms: both arms get n=4096 constant-valued samples, so
// the EB radius is a pure function of n and the verdict flips exactly when
// the mean gap crosses the combined radius.
func TestSequentialDecidedBoundary(t *testing.T) {
	// Probe the radius at the exact configuration the table uses.
	probe, err := NewSequentialEB(0, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4096
	const m0 = 0.25
	if err := probe.AddBatch(0, n, m0*n, m0*m0*n); err != nil {
		t.Fatal(err)
	}
	r := probe.radius(0, n)
	if r <= 0 || r > 0.1 {
		t.Fatalf("zero-variance radius at n=%d is %v, expected small positive", n, r)
	}

	cases := []struct {
		name       string
		m1         float64
		wantDone   bool
		wantWinner int
	}{
		{"equal means", m0, false, 0},
		{"gap just under 2r", m0 + 2*r - 1e-9, false, 0},
		{"gap just over 2r", m0 + 2*r + 1e-9, true, 1},
		{"wide gap, arm 1 wins", m0 + 0.5, true, 1},
		{"wide gap, arm 0 wins", m0 - 0.2, true, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewSequentialEB(0, 1, 0.05)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.AddBatch(0, n, m0*n, m0*m0*n); err != nil {
				t.Fatal(err)
			}
			if err := s.AddBatch(1, n, tc.m1*n, tc.m1*tc.m1*n); err != nil {
				t.Fatal(err)
			}
			winner, done := s.Decided()
			if done != tc.wantDone {
				t.Fatalf("Decided done=%t, want %t (gap %v, radius %v)", done, tc.wantDone, tc.m1-m0, r)
			}
			if done && winner != tc.wantWinner {
				t.Fatalf("winner %d, want %d", winner, tc.wantWinner)
			}
		})
	}

	// One empty arm keeps the monitor undecided no matter how lopsided the
	// other arm looks: an unobserved arm has an infinite interval.
	s, err := NewSequentialEB(0, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddBatch(0, n, 0.9*n, 0.81*n); err != nil {
		t.Fatal(err)
	}
	if _, done := s.Decided(); done {
		t.Fatal("decided with an empty arm")
	}
}

// TestSequentialRadiusMonotone checks the anytime-valid radius never widens
// as evidence accumulates, in both modes: across each doubling-epoch
// boundary the shrinking 1/√n term must beat the shrinking per-epoch δ_k,
// and within an epoch the radius is constant by construction.
func TestSequentialRadiusMonotone(t *testing.T) {
	for _, mode := range []struct {
		name string
		mk   func() (*Sequential, error)
	}{
		{"hoeffding", func() (*Sequential, error) { return NewSequential(0, 1, 0.05) }},
		{"eb", func() (*Sequential, error) { return NewSequentialEB(0, 1, 0.05) }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			s, err := mode.mk()
			if err != nil {
				t.Fatal(err)
			}
			// Give the EB branch a fixed, moderate variance to work with.
			if err := s.AddBatch(0, 64, 0.5*64, (0.01+0.25)*64); err != nil {
				t.Fatal(err)
			}
			if !math.IsInf(s.radius(0, 0), 1) {
				t.Error("radius with no observations should be infinite")
			}
			prev := s.radius(0, 1)
			for n := 2; n <= 1<<20; n *= 2 {
				cur := s.radius(0, n)
				if !(cur < prev) {
					t.Fatalf("radius at epoch floor n=%d is %v, not below previous %v", n, cur, prev)
				}
				// Hoeffding radii are constant within an epoch (floor and
				// δ_k fix them); EB radii also fold in the variance estimate
				// at the probed n, so only check constancy in Hoeffding mode.
				if mode.name == "hoeffding" {
					if mid := s.radius(0, n+n/2); mid != cur {
						t.Fatalf("radius varies within epoch: n=%d gives %v, n=%d gives %v", n, cur, n+n/2, mid)
					}
				}
				prev = cur
			}
		})
	}

	// EB never exceeds Hoeffding at the same n: it is defined as the min.
	h, err := NewSequential(0, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewSequentialEB(0, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddBatch(0, 1024, 0.5*1024, (0.001+0.25)*1024); err != nil {
		t.Fatal(err)
	}
	if eb, ho := e.radius(0, 1024), h.radius(0, 1024); eb > ho {
		t.Errorf("EB radius %v exceeds Hoeffding %v", eb, ho)
	}
}

// TestSequentialStateRoundTrip restores a mid-flight monitor and checks the
// rebuilt one is indistinguishable; then feeds both the same continuation
// and requires identical verdicts — the property the rollout checkpoint
// relies on.
func TestSequentialStateRoundTrip(t *testing.T) {
	s, err := NewSequentialEB(0, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range dyadicRewards(31, 400) {
		_ = s.Add(i%2, v)
	}
	st := s.State()
	restored, err := RestoreSequential(st)
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.State(); !reflect.DeepEqual(got, st) {
		t.Fatalf("round-trip state %+v != %+v", got, st)
	}
	if got, want := restored.Intervals(), s.Intervals(); got != want {
		t.Fatalf("round-trip intervals %v != %v", got, want)
	}
	for i, v := range dyadicRewards(32, 200) {
		_ = s.Add(i%2, v)
		_ = restored.Add(i%2, v)
	}
	sw, sd := s.Decided()
	rw, rd := restored.Decided()
	if sw != rw || sd != rd {
		t.Fatalf("continuation verdicts diverge: (%d,%t) vs (%d,%t)", sw, sd, rw, rd)
	}
}

// TestRestoreSequentialRejectsCorruptState: a checkpoint that decodes but
// encodes an impossible monitor must not come back to life.
func TestRestoreSequentialRejectsCorruptState(t *testing.T) {
	valid := SequentialState{Lo: 0, Hi: 1, Delta: 0.05, Sums: [2]float64{50, 60}, SumSqs: [2]float64{30, 40}, Counts: [2]int64{100, 100}}
	if _, err := RestoreSequential(valid); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}
	corrupt := []struct {
		name   string
		mutate func(*SequentialState)
	}{
		{"inverted range", func(st *SequentialState) { st.Lo, st.Hi = st.Hi, st.Lo }},
		{"delta zero", func(st *SequentialState) { st.Delta = 0 }},
		{"negative count", func(st *SequentialState) { st.Counts[1] = -5 }},
		{"mean out of range", func(st *SequentialState) { st.Sums[0] = 500 }},
		{"NaN sum of squares", func(st *SequentialState) { st.SumSqs[0] = math.NaN() }},
		{"negative sum of squares", func(st *SequentialState) { st.SumSqs[1] = -1 }},
	}
	for _, tc := range corrupt {
		t.Run(tc.name, func(t *testing.T) {
			st := valid
			tc.mutate(&st)
			if _, err := RestoreSequential(st); err == nil {
				t.Fatal("corrupt state restored without error")
			}
		})
	}
}
