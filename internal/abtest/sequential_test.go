package abtest

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/stats"
)

func TestNewSequentialValidation(t *testing.T) {
	if _, err := NewSequential(1, 0, 0.05); err == nil {
		t.Error("hi<=lo should fail")
	}
	if _, err := NewSequential(0, 1, 0); err == nil {
		t.Error("delta=0 should fail")
	}
	if _, err := NewSequential(0, 1, 1); err == nil {
		t.Error("delta=1 should fail")
	}
}

func TestSequentialAddValidation(t *testing.T) {
	s, err := NewSequential(0, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(2, 0.5); err == nil {
		t.Error("arm out of range should fail")
	}
	if err := s.Add(0, 1.5); err == nil {
		t.Error("reward out of range should fail")
	}
	if err := s.Add(0, math.NaN()); err == nil {
		t.Error("NaN reward should fail")
	}
}

func TestSequentialStopsAndPicksWinner(t *testing.T) {
	s, err := NewSequential(0, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRand(1)
	// Arm 1 is better by 0.3.
	stopped := false
	var winner int
	for i := 0; i < 200000 && !stopped; i++ {
		if err := s.Add(0, 0.3+r.Float64()*0.2); err != nil {
			t.Fatal(err)
		}
		if err := s.Add(1, 0.6+r.Float64()*0.2); err != nil {
			t.Fatal(err)
		}
		winner, stopped = s.Decided()
	}
	if !stopped {
		t.Fatal("monitor never separated a 0.3 gap")
	}
	if winner != 1 {
		t.Errorf("winner = %d, want 1", winner)
	}
	n0, n1 := s.N()
	if n0 == 0 || n1 == 0 {
		t.Error("counts missing")
	}
	// A 0.3 gap on [0,1] rewards should resolve within a few hundred
	// samples per arm even with the anytime-valid penalty.
	if n0 > 2000 {
		t.Errorf("stopping time %d implausibly large", n0)
	}
}

func TestSequentialFalsePositiveRateUnderNull(t *testing.T) {
	// Identical arms, continuous peeking: across many replications, the
	// monitor must (almost) never declare a winner. δ=0.1, 200 runs of
	// 3000 peeks each → expect ≤ ~20 false stops at the bound; our
	// conservative construction should produce far fewer.
	falseStops := 0
	const runs = 200
	for rep := 0; rep < runs; rep++ {
		s, err := NewSequential(0, 1, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		r := stats.NewRand(int64(rep + 100))
		for i := 0; i < 3000; i++ {
			_ = s.Add(0, r.Float64())
			_ = s.Add(1, r.Float64())
			if _, done := s.Decided(); done {
				falseStops++
				break
			}
		}
	}
	if falseStops > runs/10 {
		t.Errorf("false stop rate %d/%d exceeds delta", falseStops, runs)
	}
}

func TestSequentialIntervalsShrink(t *testing.T) {
	s, err := NewSequential(0, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRand(2)
	var w100, w10000 float64
	for i := 0; i < 10000; i++ {
		_ = s.Add(0, r.Float64())
		if i == 99 {
			w100 = s.Intervals()[0].Width()
		}
	}
	w10000 = s.Intervals()[0].Width()
	if !(w10000 < w100/3) {
		t.Errorf("interval should shrink substantially: %v → %v", w100, w10000)
	}
	// Empty arm has an infinite interval.
	if !math.IsInf(s.Intervals()[1].Width(), 1) {
		t.Error("empty arm should have infinite interval")
	}
}

// ExampleSequential shows peeking-safe A/B monitoring: check after every
// observation and stop the moment the arms separate — the error guarantee
// survives the continuous peeking.
func ExampleSequential() {
	s, err := NewSequential(0, 1, 0.05)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	r := stats.NewRand(9)
	for i := 1; ; i++ {
		_ = s.Add(0, 0.3+0.2*r.Float64()) // control
		_ = s.Add(1, 0.7+0.2*r.Float64()) // treatment: clearly better
		if winner, done := s.Decided(); done {
			fmt.Printf("winner: arm %d after %d observations per arm\n", winner, i)
			return
		}
	}
	// Output:
	// winner: arm 1 after 128 observations per arm
}
