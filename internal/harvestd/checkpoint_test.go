package harvestd

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// runDaemonOverDataset starts a daemon with the given checkpoint path, feeds
// it a JSONL source, waits until TotalN reaches expectTotal (restored
// baseline plus the fresh datapoints), and shuts it down cleanly.
func runDaemonOverDataset(t *testing.T, path string, n int, seed int64, expectTotal int64) []PolicyEstimate {
	t.Helper()
	ds := testDataset(n, seed)
	var buf strings.Builder
	if err := ds.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	reg := newTestRegistry(t, 2)
	d, err := New(Config{Workers: 2, Clip: 10, CheckpointPath: path}, reg)
	if err != nil {
		t.Fatal(err)
	}
	d.AddSource(&JSONLSource{R: strings.NewReader(buf.String())})
	if err := d.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "folds", func() bool {
		return reg.TotalN() == expectTotal
	})
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	return d.Estimates()
}

func TestCheckpointResumeRestoresIdenticalState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	est1 := runDaemonOverDataset(t, path, 300, 61, 300)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("shutdown left no checkpoint: %v", err)
	}

	// A fresh daemon restoring from the checkpoint must report byte-identical
	// estimator state — same n, same means, same intervals.
	reg2 := newTestRegistry(t, 2)
	d2, err := New(Config{Workers: 2, Clip: 10, CheckpointPath: path}, reg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	est2 := d2.Estimates()
	if !reflect.DeepEqual(est1, est2) {
		t.Errorf("restored estimates differ:\nbefore %+v\nafter  %+v", est1, est2)
	}
	if err := d2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// No stray temp files from the atomic write protocol.
	matches, err := filepath.Glob(filepath.Join(filepath.Dir(path), "*.tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("leftover temp files: %v", matches)
	}
}

func TestCheckpointResumeThenContinueIngesting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	runDaemonOverDataset(t, path, 200, 62, 200)
	// Second run over a different dataset resumes on top of the restored 200.
	est := runDaemonOverDataset(t, path, 150, 63, 350)
	for _, pe := range est {
		if pe.N != 350 {
			t.Errorf("%s n = %d after resume+ingest, want 350", pe.Policy, pe.N)
		}
	}
	// And a third cold read sees the combined state persisted again.
	reg := newTestRegistry(t, 2)
	d, err := New(Config{Workers: 2, Clip: 10, CheckpointPath: path}, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(context.Background())
	if got := reg.TotalN(); got != 350 {
		t.Errorf("persisted n = %d, want 350", got)
	}
}

func TestCheckpointLoadErrors(t *testing.T) {
	dir := t.TempDir()

	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := newTestRegistry(t, 1)
	d, err := New(Config{Workers: 1, CheckpointPath: corrupt}, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(context.Background()); err == nil {
		d.Shutdown(context.Background())
		t.Fatal("corrupt checkpoint should fail startup")
	}

	versioned := filepath.Join(dir, "versioned.json")
	if err := os.WriteFile(versioned, []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	reg2 := newTestRegistry(t, 1)
	d2, err := New(Config{Workers: 1, CheckpointPath: versioned}, reg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Start(context.Background()); err == nil || !strings.Contains(err.Error(), "version") {
		if err == nil {
			d2.Shutdown(context.Background())
		}
		t.Fatalf("version mismatch error = %v", err)
	}

	// Missing file is a cold start, not an error.
	reg3 := newTestRegistry(t, 1)
	d3, err := New(Config{Workers: 1, CheckpointPath: filepath.Join(dir, "absent.json")}, reg3)
	if err != nil {
		t.Fatal(err)
	}
	if err := d3.Start(context.Background()); err != nil {
		t.Fatalf("cold start: %v", err)
	}
	d3.Shutdown(context.Background())
}

func TestCheckpointTimer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	reg := newTestRegistry(t, 1)
	d, err := New(Config{
		Workers:            1,
		CheckpointPath:     path,
		CheckpointInterval: 10 * time.Millisecond,
	}, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(context.Background())
	waitFor(t, 5*time.Second, "timer checkpoint", func() bool {
		return d.ctr.checkpoints.Load() >= 2
	})
	if _, err := os.Stat(path); err != nil {
		t.Errorf("no checkpoint file: %v", err)
	}
}
