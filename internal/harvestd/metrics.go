package harvestd

import "repro/internal/obs"

// Metric help strings, shared between registration and scrape-time updates
// (the obs registry enforces that help text never changes for a name).
const (
	helpPolicyN          = "datapoints folded into the policy's estimators"
	helpPolicyMatchRate  = "fraction of datapoints on which the policy put positive probability"
	helpPolicyMean       = "current off-policy point estimate"
	helpPolicyStderr     = "standard error of the off-policy estimate"
	helpPolicyESS        = "Kish effective sample size (sum w)^2 / sum w^2"
	helpPolicyESSFrac    = "effective sample size as a fraction of n"
	helpPolicyMeanWeight = "mean importance weight (approximately 1 when calibrated)"
	helpPolicyMaxWeight  = "largest single importance weight folded"
	helpPolicyClipFrac   = "fraction of datapoints whose weight hit the clip cap"
	helpPolicyFloorFrac  = "fraction of datapoints logged below the propensity floor"
)

// initMetrics builds the daemon's obs registry. The ingestion hot path
// keeps writing plain atomics (see counters); the registry reads them
// through scrape-time functions, so instrumenting costs the pipeline
// nothing.
func (d *Daemon) initMetrics() {
	r := obs.NewRegistry()
	r.GaugeFunc("harvestd_uptime_seconds", "seconds since the daemon started", func() float64 {
		return d.cfg.Clock.Now().Sub(d.start).Seconds()
	})
	r.CounterFunc("harvestd_lines_total", "raw input lines or records seen", d.ctr.lines.Load)
	r.CounterFunc("harvestd_parse_errors_total", "unparseable input lines", d.ctr.parseErrors.Load)
	r.CounterFunc("harvestd_rejected_total", "parsed lines carrying no usable datapoint", d.ctr.rejected.Load)
	r.CounterFunc("harvestd_harvested_total", "datapoints reconstructed from derived records (cache eviction joins)", d.ctr.harvested.Load)
	r.CounterFunc("harvestd_ingested_total", "datapoints enqueued for folding", d.ctr.ingested.Load)
	r.CounterFunc("harvestd_folded_total", "datapoints folded into estimators", d.ctr.folded.Load)
	r.CounterFunc("harvestd_checkpoints_total", "successful checkpoint writes", d.ctr.checkpoints.Load)
	r.CounterFunc("harvestd_policy_eval_panics_total", "policy evaluations skipped after a panic", d.reg.EvalPanics)
	r.GaugeFunc("harvestd_ingest_rate_lines_per_second", "lines seen per second of uptime", func() float64 {
		uptime := d.cfg.Clock.Now().Sub(d.start).Seconds()
		if uptime <= 0 {
			return 0
		}
		return float64(d.ctr.lines.Load()) / uptime
	})
	r.GaugeFunc("harvestd_queue_depth", "batches waiting in the ingestion queue", func() float64 {
		return float64(len(d.queue))
	})
	r.GaugeFunc("harvestd_queue_capacity", "ingestion queue capacity in batches", func() float64 {
		return float64(cap(d.queue))
	})
	r.GaugeFunc("harvestd_workers", "ingestion worker count", func() float64 {
		return float64(d.cfg.Workers)
	})
	r.GaugeFunc("harvestd_sources", "configured log sources", func() float64 {
		return float64(len(d.sources))
	})
	r.GaugeFunc("harvestd_watermark_seq", "min across sources of the max folded record sequence (-1 before any sequenced fold)", func() float64 {
		return float64(d.FreshnessNow().WatermarkSeq)
	})
	r.GaugeFunc("harvestd_watermark_age_seconds", "seconds since the estimators last absorbed a batch (-1 never)", func() float64 {
		return d.FreshnessNow().WatermarkAgeSeconds
	})
	r.GaugeFunc("harvestd_freshness_behind", "records enqueued but not yet folded, across sources", func() float64 {
		return float64(d.FreshnessNow().Behind)
	})
	obs.RegisterGoRuntime(r)
	d.obsReg = r
}

// updatePolicyMetrics refreshes the per-policy gauge series from the
// estimator shards. Called at scrape time: policy series appear on the
// first scrape after registration and track the merged state from then on.
func (d *Daemon) updatePolicyMetrics() {
	ests := d.reg.Estimates(d.cfg.Delta)
	diags := d.reg.Diagnostics()
	for i, pe := range ests {
		r := d.obsReg
		r.Gauge("harvestd_policy_n", helpPolicyN, "policy", pe.Policy).Set(float64(pe.N))
		r.Gauge("harvestd_policy_match_rate", helpPolicyMatchRate, "policy", pe.Policy).Set(pe.MatchRate)
		for _, est := range []struct {
			name string
			ev   EstimatorValue
		}{
			{"ips", pe.IPS},
			{"clipped_ips", pe.ClippedIPS},
			{"snips", pe.SNIPS},
		} {
			labels := []string{"policy", pe.Policy, "estimator", est.name}
			r.Gauge("harvestd_policy_mean", helpPolicyMean, labels...).Set(est.ev.Value)
			r.Gauge("harvestd_policy_stderr", helpPolicyStderr, labels...).Set(est.ev.StdErr)
		}
		dg := diags[i]
		r.Gauge("harvestd_policy_ess", helpPolicyESS, "policy", pe.Policy).Set(dg.ESS)
		r.Gauge("harvestd_policy_ess_fraction", helpPolicyESSFrac, "policy", pe.Policy).Set(dg.ESSFraction)
		r.Gauge("harvestd_policy_mean_weight", helpPolicyMeanWeight, "policy", pe.Policy).Set(dg.MeanWeight)
		r.Gauge("harvestd_policy_max_weight", helpPolicyMaxWeight, "policy", pe.Policy).Set(dg.MaxWeight)
		r.Gauge("harvestd_policy_clip_fraction", helpPolicyClipFrac, "policy", pe.Policy).Set(dg.ClipFraction)
		r.Gauge("harvestd_policy_floor_fraction", helpPolicyFloorFrac, "policy", pe.Policy).Set(dg.FloorFraction)
	}
}
