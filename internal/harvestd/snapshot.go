package harvestd

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// SnapshotVersion guards the shard-snapshot wire schema. The aggregation
// tier refuses snapshots from a different version rather than merging state
// it might misread.
const SnapshotVersion = 1

// SnapshotCounters mirrors the daemon's ingestion counters on the wire, so
// the aggregation tier can report fleet-wide pipeline totals (and spot a
// shard whose parse-error rate exploded) without scraping Prometheus text.
type SnapshotCounters struct {
	Lines       int64 `json:"lines"`
	ParseErrors int64 `json:"parse_errors"`
	Rejected    int64 `json:"rejected"`
	Ingested    int64 `json:"ingested"`
	Folded      int64 `json:"folded"`
}

// Add accumulates another shard's counters (the aggregator's fleet totals).
func (c *SnapshotCounters) Add(o SnapshotCounters) {
	c.Lines += o.Lines
	c.ParseErrors += o.ParseErrors
	c.Rejected += o.Rejected
	c.Ingested += o.Ingested
	c.Folded += o.Folded
}

// StateSnapshot is the wire unit of federation: one shard's complete
// estimator state — every policy's merged Accum plus the ingestion counters
// and estimator settings — as served at GET /snapshot and pulled by the
// aggregation tier. Because an Accum is a bag of order-insensitive running
// sums, merging decoded snapshots from N shards reproduces exactly the state
// a single daemon would have built over the union of their traffic.
type StateSnapshot struct {
	Version int    `json:"version"`
	ShardID string `json:"shard_id"`
	// Seq increments on every snapshot the daemon takes; a regression
	// (smaller Seq than previously observed) tells the aggregator the shard
	// restarted.
	Seq        int64            `json:"seq"`
	Clip       float64          `json:"clip"`
	Floor      float64          `json:"floor"`
	EvalPanics int64            `json:"eval_panics"`
	Counters   SnapshotCounters `json:"counters"`
	Policies   map[string]Accum `json:"policies"`
}

// StateSnapshot captures the daemon's current estimator state for the
// federation wire. Callable at any time while the daemon runs; the counters
// and per-policy accumulators are each internally consistent (per-shard
// locks), though a concurrently folding datapoint may land between two
// policies' reads — harmless, since every snapshot is superseded by the
// next pull.
func (d *Daemon) StateSnapshot() StateSnapshot {
	id := d.cfg.ShardID
	if id == "" {
		if addr := d.Addr(); addr != "" {
			id = addr
		} else {
			id = "harvestd"
		}
	}
	return StateSnapshot{
		Version: SnapshotVersion,
		ShardID: id,
		Seq:     d.snapSeq.Add(1),
		Clip:    d.reg.Clip(),
		Floor:   d.reg.PropensityFloor(),
		Counters: SnapshotCounters{
			Lines:       d.ctr.lines.Load(),
			ParseErrors: d.ctr.parseErrors.Load(),
			Rejected:    d.ctr.rejected.Load(),
			Ingested:    d.ctr.ingested.Load(),
			Folded:      d.ctr.folded.Load(),
		},
		EvalPanics: d.reg.EvalPanics(),
		Policies:   d.reg.exportState(),
	}
}

// floats lists every float field of an Accum in a fixed order, for
// finiteness validation and bit-exact comparison. Keep in sync with the
// struct: the round-trip tests count fields reflectively to catch drift.
func (a *Accum) floats() [16]float64 {
	return [...]float64{
		a.SumW, a.SumWSq, a.MaxW,
		a.SumWR, a.SumWRSq, a.SumW2R, a.SumW2R2,
		a.SumCW, a.SumCWR, a.SumCWRSq,
		a.MinTerm, a.MaxTerm, a.MinCTerm, a.MaxCTerm, a.MinR, a.MaxR,
	}
}

// accumFinite rejects accumulators carrying NaN or ±Inf: JSON cannot encode
// them, and an aggregator must never merge poisoned state. The guarded
// importance-weight path upstream makes this unreachable in practice; the
// check turns "impossible" into "loud" at the fleet boundary.
func accumFinite(name string, a *Accum) error {
	for _, v := range a.floats() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("harvestd: policy %q accumulator carries non-finite state", name)
		}
	}
	return nil
}

// Validate checks a snapshot's structural invariants: supported version and
// finite, non-negative accumulator state.
func (s *StateSnapshot) Validate() error {
	if s.Version != SnapshotVersion {
		return fmt.Errorf("harvestd: snapshot version %d, want %d", s.Version, SnapshotVersion)
	}
	for name, acc := range s.Policies {
		if name == "" {
			return fmt.Errorf("harvestd: snapshot carries an unnamed policy")
		}
		if acc.N < 0 || acc.Matches < 0 || acc.Matches > acc.N {
			return fmt.Errorf("harvestd: policy %q has inconsistent counts n=%d matches=%d",
				name, acc.N, acc.Matches)
		}
		if err := accumFinite(name, &acc); err != nil {
			return err
		}
	}
	return nil
}

// EncodeSnapshot writes the snapshot's wire form: one JSON object with
// policies in sorted-key order (encoding/json sorts map keys), so encoding
// the same state twice yields byte-identical output. Go's float formatting
// uses the shortest decimal that parses back to the same float64, which
// makes the encode→decode round trip bit-exact — the property the
// round-trip tests pin down.
func EncodeSnapshot(w io.Writer, s *StateSnapshot) error {
	if err := s.Validate(); err != nil {
		return fmt.Errorf("encoding snapshot: %w", err)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("harvestd: encoding snapshot: %w", err)
	}
	return nil
}

// DecodeSnapshot parses and validates one wire snapshot.
func DecodeSnapshot(r io.Reader) (*StateSnapshot, error) {
	var s StateSnapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("harvestd: decoding snapshot: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("decoding snapshot: %w", err)
	}
	return &s, nil
}
