package harvestd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/harvester"
	"repro/internal/harvester/binrec"
)

// handler builds the daemon's stdlib-only HTTP API:
//
//	GET  /healthz    liveness + uptime
//	GET  /policies   registered policies with sample counts
//	GET  /estimates  per-policy IPS/clipped/SNIPS estimates with intervals
//	                 (?policy=name filters, ?delta=0.01 overrides confidence)
//	GET  /metrics    Prometheus text (obs registry, deterministic order):
//	                 ingest counters, queue depth, per-policy estimates and
//	                 estimator-health gauges, Go runtime stats
//	GET  /diagnostics estimator-health JSON: per-policy ESS, weight tails,
//	                 clip and propensity-floor fractions
//	GET  /snapshot   this shard's complete estimator state on the
//	                 federation wire (see StateSnapshot), for harvestagg
//	GET  /freshness  pipeline watermarks: per-source ingest/fold sequence
//	                 high-water marks, queue backlog, ingest→fold lag
//	                 quantiles (see FreshnessReport), for harvestagg and
//	                 fleetwatch
//	POST /ingest     push raw log data (?format=nginx|jsonl|bin), for smoke
//	                 tests and push-based producers; bin takes the binrec
//	                 binary stream and ingests whole decoded segments
//	POST /checkpoint force a checkpoint now
func (d *Daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", d.handleHealthz)
	mux.HandleFunc("/policies", d.handlePolicies)
	mux.HandleFunc("/estimates", d.handleEstimates)
	mux.HandleFunc("/metrics", d.handleMetrics)
	mux.HandleFunc("/diagnostics", d.handleDiagnostics)
	mux.HandleFunc("/snapshot", d.handleSnapshot)
	mux.HandleFunc("/freshness", d.handleFreshness)
	mux.HandleFunc("/ingest", d.handleIngest)
	mux.HandleFunc("/checkpoint", d.handleCheckpoint)
	return mux
}

// handleSnapshot serves the shard's estimator state to the aggregation
// tier. Encoding failures (non-finite accumulator state) are a 500: better
// for the aggregator to keep the shard's previous snapshot than to merge a
// poisoned one.
func (d *Daemon) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	sp := d.cfg.Tracer.Start("snapshot", d.root, nil)
	defer sp.End()
	snap := d.StateSnapshot()
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, &snap); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
}

// handleFreshness serves the shard's pipeline watermarks (FreshnessReport)
// to the aggregation tier and the fleet watcher.
func (d *Daemon) handleFreshness(w http.ResponseWriter, r *http.Request) {
	sp := d.cfg.Tracer.Start("freshness", d.root, nil)
	defer sp.End()
	writeJSON(w, d.FreshnessNow())
}

func (d *Daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	uptime := d.cfg.Clock.Now().Sub(d.start)
	fmt.Fprintf(w, "ok uptime=%s\n", uptime.Round(time.Millisecond))
}

// policyInfo is one row of /policies.
type policyInfo struct {
	Name      string  `json:"name"`
	N         int64   `json:"n"`
	MatchRate float64 `json:"match_rate"`
}

func (d *Daemon) handlePolicies(w http.ResponseWriter, r *http.Request) {
	ests := d.reg.Estimates(d.cfg.Delta)
	out := make([]policyInfo, len(ests))
	for i, pe := range ests {
		out[i] = policyInfo{Name: pe.Policy, N: pe.N, MatchRate: pe.MatchRate}
	}
	writeJSON(w, out)
}

func (d *Daemon) handleEstimates(w http.ResponseWriter, r *http.Request) {
	sp := d.cfg.Tracer.Start("estimate", d.root, nil)
	defer sp.End()
	delta := d.cfg.Delta
	if s := r.URL.Query().Get("delta"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 || v >= 1 {
			http.Error(w, fmt.Sprintf("bad delta %q", s), http.StatusBadRequest)
			return
		}
		delta = v
	}
	if name := r.URL.Query().Get("policy"); name != "" {
		pe, ok := d.reg.Estimate(name, delta)
		if !ok {
			http.Error(w, fmt.Sprintf("unknown policy %q", name), http.StatusNotFound)
			return
		}
		writeJSON(w, pe)
		return
	}
	writeJSON(w, d.reg.Estimates(delta))
}

// handleIngest accepts newline-delimited log data and pushes it through the
// regular ingestion pipeline. Malformed lines are counted, not fatal — a
// live endpoint must not die because one producer hiccupped.
func (d *Daemon) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "nginx"
	}
	if format != "nginx" && format != "jsonl" && format != "bin" {
		http.Error(w, fmt.Sprintf("unknown format %q", format), http.StatusBadRequest)
		return
	}
	sp := d.cfg.Tracer.Start("ingest/http", d.root, map[string]any{"format": format})
	defer sp.End()
	var lines, ingested, rejected, parseErrors int64
	defer func() {
		sp.SetAttr("lines", lines)
		sp.SetAttr("ingested", ingested)
	}()
	if format == "bin" {
		d.handleIngestBin(w, r, &lines, &ingested, &rejected)
		return
	}
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, core.ScanBufferSize), core.MaxRecordBytes)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		lines++
		d.ctr.lines.Add(1)
		switch format {
		case "nginx":
			e, err := harvester.ParseNginxLine(line)
			if err != nil {
				parseErrors++
				d.ctr.parseErrors.Add(1)
				continue
			}
			dp, ok, err := harvester.EntryToTypedDatapoint(e, 1)
			if err != nil {
				parseErrors++
				d.ctr.parseErrors.Add(1)
				continue
			}
			if !ok {
				rejected++
				d.ctr.rejected.Add(1)
				continue
			}
			// Per-request line number; the freshness watermark is a max, so
			// interleaved pushes stay monotone.
			dp.Seq = lines
			if err := d.Ingest(dp); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			ingested++
		case "jsonl":
			if err := d.ingestJSONLLine(line); err != nil {
				rejected++
				d.ctr.rejected.Add(1)
				continue
			}
			ingested++
		}
	}
	if err := sc.Err(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]int64{
		"lines": lines, "ingested": ingested,
		"rejected": rejected, "parse_errors": parseErrors,
	})
}

// handleIngestBin streams a binrec binary body through the batched ingest
// path: whole decoded segments go to the worker queue in one channel send,
// and the two decode arenas ping-pong through a free list so a sustained
// push allocates nothing per record. Invalid points are tallied for the
// response here but counted into harvestd_rejected_total by the fold
// workers, which validate every queued point exactly once.
func (d *Daemon) handleIngestBin(w http.ResponseWriter, r *http.Request, lines, ingested, rejected *int64) {
	ctx := r.Context()
	sink := d.sinkFor(pushSourceName)
	free := make(chan *binrec.Batch, 2)
	free <- new(binrec.Batch)
	free <- new(binrec.Batch)
	dec := binrec.NewDecoder(r.Body)
	for {
		var b *binrec.Batch
		select {
		case b = <-free:
		case <-ctx.Done():
			http.Error(w, ctx.Err().Error(), http.StatusServiceUnavailable)
			return
		}
		err := dec.Next(b)
		if err == io.EOF {
			break
		}
		if err != nil {
			d.ctr.parseErrors.Add(1)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		n := len(b.Points)
		*lines += int64(n)
		sink.Lines(n)
		for i := range b.Points {
			if b.Points[i].Validate() != nil {
				*rejected++
			}
		}
		bb := b
		if err := sink.EmitBatch(ctx, bb.Points, func() { free <- bb }); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		*ingested += int64(n)
	}
	writeJSON(w, map[string]int64{
		"lines": *lines, "ingested": *ingested,
		"rejected": *rejected, "parse_errors": 0,
	})
}

// ingestJSONLLine parses one JSONL datapoint and offers it to the queue.
func (d *Daemon) ingestJSONLLine(line string) error {
	var dp core.Datapoint
	found := false
	if err := core.ReadJSONLFunc(strings.NewReader(line), func(x core.Datapoint) error {
		dp, found = x, true
		return nil
	}); err != nil {
		return err
	}
	if !found || dp.Validate() != nil {
		return fmt.Errorf("harvestd: invalid datapoint line")
	}
	return d.Ingest(dp)
}

func (d *Daemon) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if d.cfg.CheckpointPath == "" {
		http.Error(w, "checkpointing disabled", http.StatusConflict)
		return
	}
	if err := d.Checkpoint(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "checkpointed to %s\n", d.cfg.CheckpointPath)
}

// handleMetrics serves the obs registry as Prometheus text. Static series
// (counters, queue gauges, Go runtime) are registered once in initMetrics
// and read through scrape-time functions; the per-policy estimator series
// are refreshed here from the merged shards. The registry renders families
// and series in sorted order, so two scrapes of the same state are
// byte-identical — the fix for the map-iteration nondeterminism the
// hand-rolled renderer had.
func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	d.updatePolicyMetrics()
	d.obsReg.Handler().ServeHTTP(w, r)
}

// DiagnosticsReport is the /diagnostics payload: the estimator-health view
// of every policy plus the pipeline settings that shape it.
type DiagnosticsReport struct {
	UptimeSeconds   float64             `json:"uptime_seconds"`
	Clip            float64             `json:"clip"`
	PropensityFloor float64             `json:"propensity_floor"`
	Delta           float64             `json:"delta"`
	QueueDepth      int                 `json:"queue_depth"`
	QueueCapacity   int                 `json:"queue_capacity"`
	Workers         int                 `json:"workers"`
	EvalPanics      int64               `json:"eval_panics"`
	Policies        []PolicyDiagnostics `json:"policies"`
}

// handleDiagnostics reports per-policy estimator health as JSON: effective
// sample size, importance-weight tails, clip and propensity-floor
// fractions — the §4 "estimator error" warning signs, computed from the
// same running sums as the estimates so the two views cannot diverge.
func (d *Daemon) handleDiagnostics(w http.ResponseWriter, r *http.Request) {
	sp := d.cfg.Tracer.Start("diagnostics", d.root, nil)
	defer sp.End()
	writeJSON(w, DiagnosticsReport{
		UptimeSeconds:   d.cfg.Clock.Now().Sub(d.start).Seconds(),
		Clip:            d.reg.Clip(),
		PropensityFloor: d.reg.PropensityFloor(),
		Delta:           d.cfg.Delta,
		QueueDepth:      len(d.queue),
		QueueCapacity:   cap(d.queue),
		Workers:         d.cfg.Workers,
		EvalPanics:      d.reg.EvalPanics(),
		Policies:        d.reg.Diagnostics(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}
