package harvestd

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/harvester"
)

// handler builds the daemon's stdlib-only HTTP API:
//
//	GET  /healthz    liveness + uptime
//	GET  /policies   registered policies with sample counts
//	GET  /estimates  per-policy IPS/clipped/SNIPS estimates with intervals
//	                 (?policy=name filters, ?delta=0.01 overrides confidence)
//	GET  /metrics    Prometheus-style text: ingest counters, queue depth,
//	                 per-policy n/mean/stderr, Go runtime stats
//	POST /ingest     push raw log lines (?format=nginx|jsonl), for smoke
//	                 tests and push-based producers
//	POST /checkpoint force a checkpoint now
func (d *Daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", d.handleHealthz)
	mux.HandleFunc("/policies", d.handlePolicies)
	mux.HandleFunc("/estimates", d.handleEstimates)
	mux.HandleFunc("/metrics", d.handleMetrics)
	mux.HandleFunc("/ingest", d.handleIngest)
	mux.HandleFunc("/checkpoint", d.handleCheckpoint)
	return mux
}

func (d *Daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok uptime=%s\n", time.Since(d.start).Round(time.Millisecond))
}

// policyInfo is one row of /policies.
type policyInfo struct {
	Name      string  `json:"name"`
	N         int64   `json:"n"`
	MatchRate float64 `json:"match_rate"`
}

func (d *Daemon) handlePolicies(w http.ResponseWriter, r *http.Request) {
	ests := d.reg.Estimates(d.cfg.Delta)
	out := make([]policyInfo, len(ests))
	for i, pe := range ests {
		out[i] = policyInfo{Name: pe.Policy, N: pe.N, MatchRate: pe.MatchRate}
	}
	writeJSON(w, out)
}

func (d *Daemon) handleEstimates(w http.ResponseWriter, r *http.Request) {
	delta := d.cfg.Delta
	if s := r.URL.Query().Get("delta"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 || v >= 1 {
			http.Error(w, fmt.Sprintf("bad delta %q", s), http.StatusBadRequest)
			return
		}
		delta = v
	}
	if name := r.URL.Query().Get("policy"); name != "" {
		pe, ok := d.reg.Estimate(name, delta)
		if !ok {
			http.Error(w, fmt.Sprintf("unknown policy %q", name), http.StatusNotFound)
			return
		}
		writeJSON(w, pe)
		return
	}
	writeJSON(w, d.reg.Estimates(delta))
}

// handleIngest accepts newline-delimited log data and pushes it through the
// regular ingestion pipeline. Malformed lines are counted, not fatal — a
// live endpoint must not die because one producer hiccupped.
func (d *Daemon) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "nginx"
	}
	if format != "nginx" && format != "jsonl" {
		http.Error(w, fmt.Sprintf("unknown format %q", format), http.StatusBadRequest)
		return
	}
	var lines, ingested, rejected, parseErrors int64
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		lines++
		d.ctr.lines.Add(1)
		switch format {
		case "nginx":
			e, err := harvester.ParseNginxLine(line)
			if err != nil {
				parseErrors++
				d.ctr.parseErrors.Add(1)
				continue
			}
			dp, ok, err := entryToDatapoint(e, 1)
			if err != nil {
				parseErrors++
				d.ctr.parseErrors.Add(1)
				continue
			}
			if !ok {
				rejected++
				d.ctr.rejected.Add(1)
				continue
			}
			if err := d.Ingest(dp); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			ingested++
		case "jsonl":
			if err := d.ingestJSONLLine(line); err != nil {
				rejected++
				d.ctr.rejected.Add(1)
				continue
			}
			ingested++
		}
	}
	if err := sc.Err(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]int64{
		"lines": lines, "ingested": ingested,
		"rejected": rejected, "parse_errors": parseErrors,
	})
}

// ingestJSONLLine parses one JSONL datapoint and offers it to the queue.
func (d *Daemon) ingestJSONLLine(line string) error {
	var dp core.Datapoint
	found := false
	if err := core.ReadJSONLFunc(strings.NewReader(line), func(x core.Datapoint) error {
		dp, found = x, true
		return nil
	}); err != nil {
		return err
	}
	if !found || dp.Validate() != nil {
		return fmt.Errorf("harvestd: invalid datapoint line")
	}
	return d.Ingest(dp)
}

func (d *Daemon) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if d.cfg.CheckpointPath == "" {
		http.Error(w, "checkpointing disabled", http.StatusConflict)
		return
	}
	if err := d.Checkpoint(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "checkpointed to %s\n", d.cfg.CheckpointPath)
}

// handleMetrics renders Prometheus-style text metrics: stream counters,
// queue pressure, per-policy estimator state, and Go runtime stats.
func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	uptime := time.Since(d.start).Seconds()
	lines := d.ctr.lines.Load()
	fmt.Fprintf(&b, "harvestd_uptime_seconds %g\n", uptime)
	fmt.Fprintf(&b, "harvestd_lines_total %d\n", lines)
	fmt.Fprintf(&b, "harvestd_parse_errors_total %d\n", d.ctr.parseErrors.Load())
	fmt.Fprintf(&b, "harvestd_rejected_total %d\n", d.ctr.rejected.Load())
	fmt.Fprintf(&b, "harvestd_ingested_total %d\n", d.ctr.ingested.Load())
	fmt.Fprintf(&b, "harvestd_folded_total %d\n", d.ctr.folded.Load())
	fmt.Fprintf(&b, "harvestd_checkpoints_total %d\n", d.ctr.checkpoints.Load())
	rate := 0.0
	if uptime > 0 {
		rate = float64(lines) / uptime
	}
	fmt.Fprintf(&b, "harvestd_ingest_rate_lines_per_second %g\n", rate)
	fmt.Fprintf(&b, "harvestd_queue_depth %d\n", len(d.queue))
	fmt.Fprintf(&b, "harvestd_queue_capacity %d\n", cap(d.queue))
	fmt.Fprintf(&b, "harvestd_workers %d\n", d.cfg.Workers)
	fmt.Fprintf(&b, "harvestd_sources %d\n", len(d.sources))
	fmt.Fprintf(&b, "harvestd_policy_eval_panics_total %d\n", d.reg.EvalPanics())

	for _, pe := range d.reg.Estimates(d.cfg.Delta) {
		l := fmt.Sprintf("policy=%q", pe.Policy)
		fmt.Fprintf(&b, "harvestd_policy_n{%s} %d\n", l, pe.N)
		fmt.Fprintf(&b, "harvestd_policy_match_rate{%s} %g\n", l, pe.MatchRate)
		for est, ev := range map[string]EstimatorValue{
			"ips": pe.IPS, "clipped_ips": pe.ClippedIPS, "snips": pe.SNIPS,
		} {
			fmt.Fprintf(&b, "harvestd_policy_mean{%s,estimator=%q} %g\n", l, est, ev.Value)
			fmt.Fprintf(&b, "harvestd_policy_stderr{%s,estimator=%q} %g\n", l, est, ev.StdErr)
		}
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(&b, "go_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(&b, "go_heap_alloc_bytes %d\n", ms.HeapAlloc)
	fmt.Fprintf(&b, "go_total_alloc_bytes %d\n", ms.TotalAlloc)
	fmt.Fprintf(&b, "go_gc_runs_total %d\n", ms.NumGC)
	_, _ = w.Write([]byte(b.String()))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}
