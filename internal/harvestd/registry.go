package harvestd

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Registry is the daemon's set of named candidate policies, each with
// sharded estimator state. The write path is designed for the ingestion hot
// loop: worker i folds only into shard i of every policy, so concurrent
// workers never contend on a lock; the read path (API scrapes, checkpoints)
// briefly locks each shard and merges. Shard numShards is reserved for
// state restored from a checkpoint.
type Registry struct {
	numShards int
	clip      float64
	floor     float64 // propensity floor for diagnostics (<= 0 disables)

	mu      sync.RWMutex // guards entries/names (registration vs. iteration)
	entries map[string]*regEntry
	names   []string

	evalPanics atomic.Int64 // policy evaluations recovered from a panic
}

// DefaultPropensityFloor is the logged-propensity threshold below which a
// datapoint is counted as a floor hit in the estimator-health diagnostics:
// a weight of 1/0.001 = 1000 from a single sample is exactly the kind of
// tail that makes an IPS interval untrustworthy.
const DefaultPropensityFloor = 1e-3

type regEntry struct {
	name   string
	policy core.Policy
	shards []*shard
}

type shard struct {
	mu  sync.Mutex
	acc Accum
}

// NewRegistry creates a registry sharded for the given number of ingestion
// workers. clip > 0 caps importance weights for the clipped-IPS estimator
// (clip <= 0 leaves it identical to plain IPS).
func NewRegistry(workers int, clip float64) (*Registry, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("harvestd: registry needs >= 1 worker shard, got %d", workers)
	}
	return &Registry{
		numShards: workers,
		clip:      clip,
		floor:     DefaultPropensityFloor,
		entries:   make(map[string]*regEntry),
	}, nil
}

// NumShards returns the number of worker shards (excluding the restore shard).
func (g *Registry) NumShards() int { return g.numShards }

// Clip returns the importance-weight cap (0 = unclipped).
func (g *Registry) Clip() float64 { return g.clip }

// SetPropensityFloor overrides the diagnostics propensity floor (<= 0
// disables floor accounting). Call before ingestion starts.
func (g *Registry) SetPropensityFloor(f float64) { g.floor = f }

// PropensityFloor returns the diagnostics propensity floor.
func (g *Registry) PropensityFloor() float64 { return g.floor }

// Register adds a named candidate policy. Registering while ingestion is
// running is safe; the new policy starts estimating from the next datapoint.
func (g *Registry) Register(name string, pol core.Policy) error {
	if name == "" {
		return fmt.Errorf("harvestd: empty policy name")
	}
	if pol == nil {
		return fmt.Errorf("harvestd: nil policy %q", name)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.entries[name]; dup {
		return fmt.Errorf("harvestd: duplicate policy %q", name)
	}
	// One shard per worker plus the checkpoint-restore shard.
	shards := make([]*shard, g.numShards+1)
	for i := range shards {
		shards[i] = &shard{}
	}
	g.entries[name] = &regEntry{name: name, policy: pol, shards: shards}
	g.names = append(g.names, name)
	sort.Strings(g.names)
	return nil
}

// Names returns the registered policy names, sorted.
func (g *Registry) Names() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append([]string(nil), g.names...)
}

// Fold scores one datapoint under every registered policy and accumulates
// into the worker's own shard. The caller must have validated the datapoint
// (in particular Propensity > 0). A policy that panics on the datapoint —
// typically a context shape it cannot read, e.g. an LB policy fed
// cache-eviction data — is skipped for that datapoint and counted in
// EvalPanics; one bad pairing must not kill a continuously running daemon.
func (g *Registry) Fold(worker int, d *core.Datapoint) {
	if worker < 0 || worker >= g.numShards {
		worker = 0
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, e := range g.entries {
		pi, err := safeActionProb(e.policy, &d.Context, d.Action)
		if err != nil {
			g.evalPanics.Add(1)
			continue
		}
		sh := e.shards[worker]
		sh.mu.Lock()
		sh.acc.Fold(pi, d.Propensity, d.Reward, g.clip, g.floor)
		sh.mu.Unlock()
	}
}

// EvalPanics reports how many policy evaluations were skipped because the
// policy panicked on a datapoint.
func (g *Registry) EvalPanics() int64 { return g.evalPanics.Load() }

// safeActionProb evaluates π(a|x), converting a panic inside the policy
// into an error.
func safeActionProb(pol core.Policy, x *core.Context, a core.Action) (pi float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("harvestd: policy panicked: %v", r)
		}
	}()
	return core.ActionProb(pol, x, a), nil
}

// merged returns the cross-shard aggregate for one entry.
func (e *regEntry) merged() Accum {
	var total Accum
	for _, sh := range e.shards {
		sh.mu.Lock()
		acc := sh.acc
		sh.mu.Unlock()
		total.Merge(&acc)
	}
	return total
}

// Estimate reports one policy's current estimate at confidence 1−delta.
func (g *Registry) Estimate(name string, delta float64) (PolicyEstimate, bool) {
	g.mu.RLock()
	e, ok := g.entries[name]
	g.mu.RUnlock()
	if !ok {
		return PolicyEstimate{}, false
	}
	acc := e.merged()
	return acc.Estimate(name, delta), true
}

// Estimates reports every policy's current estimate, sorted by name.
func (g *Registry) Estimates(delta float64) []PolicyEstimate {
	g.mu.RLock()
	entries := make([]*regEntry, 0, len(g.names))
	for _, name := range g.names {
		entries = append(entries, g.entries[name])
	}
	g.mu.RUnlock()
	out := make([]PolicyEstimate, len(entries))
	for i, e := range entries {
		acc := e.merged()
		out[i] = acc.Estimate(e.name, delta)
	}
	return out
}

// Diagnostics reports every policy's estimator-health view, sorted by
// name — the /diagnostics read path.
func (g *Registry) Diagnostics() []PolicyDiagnostics {
	g.mu.RLock()
	entries := make([]*regEntry, 0, len(g.names))
	for _, name := range g.names {
		entries = append(entries, g.entries[name])
	}
	g.mu.RUnlock()
	out := make([]PolicyDiagnostics, len(entries))
	for i, e := range entries {
		acc := e.merged()
		out[i] = acc.Diagnostics(e.name)
	}
	return out
}

// TotalN returns the datapoint count folded into the first policy (every
// policy sees the same stream, so any entry serves); 0 with no policies.
func (g *Registry) TotalN() int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if len(g.names) == 0 {
		return 0
	}
	acc := g.entries[g.names[0]].merged()
	return acc.N
}

// exportState snapshots the merged accumulator of every policy, for
// checkpointing.
func (g *Registry) exportState() map[string]Accum {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make(map[string]Accum, len(g.entries))
	for name, e := range g.entries {
		out[name] = e.merged()
	}
	return out
}

// restoreState loads checkpointed accumulators into each policy's reserved
// restore shard, replacing whatever a previous restore put there. Policies
// in the snapshot but not registered are ignored (a registry may shrink
// across restarts); registered policies missing from the snapshot resume
// from zero. It returns the number of policies restored.
func (g *Registry) restoreState(snap map[string]Accum) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	restored := 0
	for name, acc := range snap {
		e, ok := g.entries[name]
		if !ok {
			continue
		}
		sh := e.shards[g.numShards]
		sh.mu.Lock()
		sh.acc = acc
		sh.mu.Unlock()
		restored++
	}
	return restored
}
