package harvestd

import (
	"bytes"
	"context"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/stats"
)

// accumBitsEqual compares two accumulators bit-for-bit: integer fields by
// value, float fields by IEEE-754 bit pattern (so +0 vs −0 or a single-ULP
// drift fails, which plain == would let through for signed zeros).
func accumBitsEqual(a, b *Accum) bool {
	if a.N != b.N || a.Matches != b.Matches || a.Clipped != b.Clipped || a.FloorHits != b.FloorHits {
		return false
	}
	af, bf := a.floats(), b.floats()
	for i := range af {
		if math.Float64bits(af[i]) != math.Float64bits(bf[i]) {
			return false
		}
	}
	return true
}

// TestAccumFloatsCoversEveryField guards the floats() helper against struct
// drift: if someone adds a float field to Accum without listing it, the
// finiteness gate and the bit-exactness tests would silently skip it.
func TestAccumFloatsCoversEveryField(t *testing.T) {
	typ := reflect.TypeOf(Accum{})
	floatFields := 0
	for i := 0; i < typ.NumField(); i++ {
		if typ.Field(i).Type.Kind() == reflect.Float64 {
			floatFields++
		}
	}
	var a Accum
	if got := len(a.floats()); got != floatFields {
		t.Fatalf("Accum has %d float64 fields but floats() lists %d — update snapshot.go", floatFields, got)
	}
}

// randomAccum builds an accumulator by folding n random datapoints — every
// realizable field pattern, including clip hits and floor hits.
func randomAccum(seed int64, n int) Accum {
	r := stats.NewRand(seed)
	var a Accum
	for i := 0; i < n; i++ {
		pi := r.Float64()
		if r.Intn(4) == 0 {
			pi = 0 // no-match datapoints
		}
		p := 0.05 + 0.95*r.Float64()
		if r.Intn(8) == 0 {
			p = 5e-4 // below the default floor
		}
		reward := -2 + 4*r.Float64()
		a.Fold(pi, p, reward, 3.0, DefaultPropensityFloor)
	}
	return a
}

// TestSnapshotRoundTripExact: encode → decode must reproduce every
// accumulator bit-for-bit, across many random accumulators, so a merged
// estimate computed from wire snapshots can never drift from one computed
// in-process.
func TestSnapshotRoundTripExact(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		s := StateSnapshot{
			Version: SnapshotVersion,
			ShardID: "shard-a",
			Seq:     seed,
			Clip:    3.0,
			Floor:   DefaultPropensityFloor,
			Counters: SnapshotCounters{
				Lines: 100 + seed, ParseErrors: 1, Rejected: 2, Ingested: 97, Folded: 97,
			},
			Policies: map[string]Accum{
				"uniform":     randomAccum(seed, 200),
				"leastloaded": randomAccum(seed+1000, 137),
				"empty":       {},
			},
		}
		var buf bytes.Buffer
		if err := EncodeSnapshot(&buf, &s); err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		got, err := DecodeSnapshot(&buf)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if got.ShardID != s.ShardID || got.Seq != s.Seq || got.Counters != s.Counters ||
			got.Clip != s.Clip || got.Floor != s.Floor {
			t.Fatalf("seed %d: envelope drifted: %+v vs %+v", seed, got, s)
		}
		if len(got.Policies) != len(s.Policies) {
			t.Fatalf("seed %d: %d policies, want %d", seed, len(got.Policies), len(s.Policies))
		}
		for name, want := range s.Policies {
			dec := got.Policies[name]
			if !accumBitsEqual(&dec, &want) {
				t.Fatalf("seed %d: policy %q not bit-identical after round trip:\n got %+v\nwant %+v",
					seed, name, dec, want)
			}
		}
	}
}

// TestSnapshotWireMergeMatchesInProcess: the federation invariant. Folding
// shard B's state into shard A via the wire (encode→decode→Merge) must be
// bit-identical to merging the same in-memory accumulators directly — the
// wire adds exactly nothing.
func TestSnapshotWireMergeMatchesInProcess(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		a1, a2 := randomAccum(seed, 151), randomAccum(seed+5000, 149)

		// In-process merge.
		direct := a1
		direct.Merge(&a2)

		// Over-the-wire merge.
		s := StateSnapshot{Version: SnapshotVersion, Policies: map[string]Accum{"p": a2}}
		var buf bytes.Buffer
		if err := EncodeSnapshot(&buf, &s); err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		dec, err := DecodeSnapshot(&buf)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		viaWire := a1
		decAcc := dec.Policies["p"]
		viaWire.Merge(&decAcc)

		if !accumBitsEqual(&direct, &viaWire) {
			t.Fatalf("seed %d: wire merge diverged from in-process merge:\n wire   %+v\n direct %+v",
				seed, viaWire, direct)
		}
		// And the derived estimates (all three estimators) agree exactly.
		de, we := direct.Estimate("p", 0.05), viaWire.Estimate("p", 0.05)
		if de != we {
			t.Fatalf("seed %d: estimates diverged: %+v vs %+v", seed, de, we)
		}
		dd, wd := direct.Diagnostics("p"), viaWire.Diagnostics("p")
		if dd != wd {
			t.Fatalf("seed %d: diagnostics diverged: %+v vs %+v", seed, dd, wd)
		}
	}
}

// TestSnapshotGoldenBytes pins the exact wire bytes of a fixed snapshot:
// any schema or encoding change (field rename, float formatting, key
// order) must be deliberate, because it breaks mixed-version fleets.
func TestSnapshotGoldenBytes(t *testing.T) {
	var acc Accum
	acc.Fold(0.5, 0.25, 1.5, 3.0, 1e-3)  // w=2, term=3
	acc.Fold(1.0, 0.25, -0.5, 3.0, 1e-3) // w=4 → clipped to 3
	s := StateSnapshot{
		Version:  SnapshotVersion,
		ShardID:  "golden",
		Seq:      7,
		Clip:     3,
		Floor:    0.001,
		Counters: SnapshotCounters{Lines: 2, Ingested: 2, Folded: 2},
		Policies: map[string]Accum{"p": acc},
	}
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, &s); err != nil {
		t.Fatal(err)
	}
	const want = `{"version":1,"shard_id":"golden","seq":7,"clip":3,"floor":0.001,"eval_panics":0,"counters":{"lines":2,"parse_errors":0,"rejected":0,"ingested":2,"folded":2},"policies":{"p":{"n":2,"matches":2,"sum_w":6,"sum_w_sq":20,"max_w":4,"sum_wr":1,"sum_wr_sq":13,"sum_w2r":-2,"sum_w2r2":13,"sum_cw":5,"sum_cwr":1.5,"sum_cwr_sq":11.25,"min_term":-2,"max_term":3,"min_cterm":-1.5,"max_cterm":3,"min_r":-0.5,"max_r":1.5,"clipped":1,"floor_hits":0}}}` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("golden wire bytes drifted:\n got  %s\n want %s", got, want)
	}
}

// TestSnapshotRejectsPoisonedState: non-finite accumulator state must not
// cross the fleet boundary in either direction.
func TestSnapshotRejectsPoisonedState(t *testing.T) {
	bad := randomAccum(1, 10)
	bad.SumW = math.Inf(1)
	s := StateSnapshot{Version: SnapshotVersion, Policies: map[string]Accum{"p": bad}}
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, &s); err == nil {
		t.Fatal("encoded a snapshot carrying +Inf")
	}
	// Hand-crafted wire bytes with inconsistent counts must not decode.
	if _, err := DecodeSnapshot(strings.NewReader(
		`{"version":1,"policies":{"p":{"n":1,"matches":2}}}`)); err == nil {
		t.Fatal("decoded a snapshot with matches > n")
	}
	// Wrong version must not decode.
	if _, err := DecodeSnapshot(strings.NewReader(`{"version":99,"policies":{}}`)); err == nil {
		t.Fatal("decoded a version-99 snapshot")
	}
}

// TestDaemonStateSnapshot drives a daemon in-process and checks the
// snapshot reflects its state and the seq increments per call.
func TestDaemonStateSnapshot(t *testing.T) {
	reg := newTestRegistry(t, 1)
	d, err := New(Config{Workers: 1, ShardID: "shard-7"}, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(context.Background())
	for _, dp := range testDataset(5, 33) {
		if err := d.Ingest(dp); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "folds", func() bool { return d.ctr.folded.Load() == 5 })
	s1 := d.StateSnapshot()
	s2 := d.StateSnapshot()
	if s1.ShardID != "shard-7" || s2.Seq != s1.Seq+1 {
		t.Fatalf("snapshot envelope: %+v then %+v", s1, s2)
	}
	if s1.Counters.Folded != 5 || s1.Policies["leastloaded"].N != 5 {
		t.Fatalf("snapshot state: counters=%+v policies=%+v", s1.Counters, s1.Policies)
	}
	if err := EncodeSnapshot(io.Discard, &s1); err != nil {
		t.Fatalf("live snapshot failed validation: %v", err)
	}
}
