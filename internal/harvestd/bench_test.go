package harvestd

// Benchmarks for the federation-relevant hot paths: folding one datapoint
// (per-line ingest cost), merging accumulators (the aggregation tier's unit
// of work), registry fan-out (one datapoint scored under every candidate),
// and snapshot encode/decode (the per-pull wire cost). `make bench` runs
// these and emits BENCH_harvestd.json for CI trend tracking.

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/lbsim"
	"repro/internal/stats"
)

// benchDatapoints fabricates n valid datapoints for fold benchmarks.
func benchDatapoints(n int) []core.Datapoint {
	r := stats.NewRand(1)
	ds := make([]core.Datapoint, n)
	for i := range ds {
		conns := []int{r.Intn(8), r.Intn(8)}
		ds[i] = core.Datapoint{
			Context:    lbsim.BuildContext(conns, 0, 1),
			Action:     core.Action(r.Intn(2)),
			Reward:     0.002 + 0.003*r.Float64(),
			Propensity: 0.5,
		}
	}
	return ds
}

func BenchmarkAccumFold(b *testing.B) {
	r := stats.NewRand(1)
	pis := make([]float64, 1024)
	rewards := make([]float64, 1024)
	for i := range pis {
		pis[i] = r.Float64()
		rewards[i] = r.Float64()
	}
	var acc Accum
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % 1024
		acc.Fold(pis[k], 0.5, rewards[k], 3.0, DefaultPropensityFloor)
	}
}

func BenchmarkAccumMerge(b *testing.B) {
	src := randomAccum(7, 1000)
	var dst Accum
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Merge(&src)
	}
}

// BenchmarkRegistryFold measures the full per-datapoint ingest cost: one
// datapoint scored and folded under three registered candidates.
func BenchmarkRegistryFold(b *testing.B) {
	reg, err := NewRegistry(1, 10)
	if err != nil {
		b.Fatal(err)
	}
	if err := reg.Register("always-0", constantAction(0)); err != nil {
		b.Fatal(err)
	}
	if err := reg.Register("always-1", constantAction(1)); err != nil {
		b.Fatal(err)
	}
	if err := reg.Register("leastloaded", lbsim.LeastLoaded{}); err != nil {
		b.Fatal(err)
	}
	ds := benchDatapoints(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.Fold(0, &ds[i%len(ds)])
	}
}

// constantAction is a minimal deterministic policy for benchmarks.
type constantAction core.Action

func (c constantAction) Act(*core.Context) core.Action { return core.Action(c) }

func benchSnapshot() *StateSnapshot {
	return &StateSnapshot{
		Version: SnapshotVersion,
		ShardID: "bench",
		Seq:     1,
		Clip:    3.0,
		Floor:   DefaultPropensityFloor,
		Counters: SnapshotCounters{
			Lines: 3000, Ingested: 3000, Folded: 3000,
		},
		Policies: map[string]Accum{
			"always-0":    randomAccum(1, 1000),
			"always-1":    randomAccum(2, 1000),
			"leastloaded": randomAccum(3, 1000),
		},
	}
}

func BenchmarkSnapshotEncode(b *testing.B) {
	s := benchSnapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := EncodeSnapshot(io.Discard, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotDecode(b *testing.B) {
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, benchSnapshot()); err != nil {
		b.Fatal(err)
	}
	wire := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeSnapshot(bytes.NewReader(wire)); err != nil {
			b.Fatal(err)
		}
	}
}
