package harvestd

import (
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// FreshnessVersion is the wire-format version of FreshnessReport /
// SourceFreshness — the pipeline-watermark payload served on /freshness
// and merged by the aggregation tier. Bump it whenever either struct's
// field set changes (enforced by harvestlint's wirecompat rule).
const FreshnessVersion = 1

// SourceFreshness is one source's pipeline-watermark view: how much the
// source has ingested, how much of that the fold workers have absorbed,
// the max record sequence number seen on each side of the queue, and the
// ingest→fold lag distribution. Sequence watermarks are -1 until the
// source emits a record carrying a Seq.
type SourceFreshness struct {
	Source string `json:"source"`
	// Ingested / Folded count datapoints that entered the queue and
	// datapoints folded into estimators; Behind is their difference — the
	// records sitting in the queue right now.
	Ingested int64 `json:"ingested"`
	Folded   int64 `json:"folded"`
	Behind   int64 `json:"behind"`
	// MaxSeqIngested / MaxSeqFolded are the high-water record sequence
	// numbers on each side of the queue (-1 before any sequenced record).
	MaxSeqIngested int64 `json:"max_seq_ingested"`
	MaxSeqFolded   int64 `json:"max_seq_folded"`
	// LastIngestUnixMilli / LastFoldUnixMilli are the injected clock's time
	// of the most recent enqueue and fold (0 = never).
	LastIngestUnixMilli int64 `json:"last_ingest_unix_milli"`
	LastFoldUnixMilli   int64 `json:"last_fold_unix_milli"`
	// Lag* summarize the ingest→fold latency histogram: one sample per
	// folded batch (every record in a batch shares its enqueue timestamp).
	LagP50Seconds float64 `json:"lag_p50_seconds"`
	LagP99Seconds float64 `json:"lag_p99_seconds"`
	LagCount      uint64  `json:"lag_count"`
	LagSumSeconds float64 `json:"lag_sum_seconds"`
}

// FreshnessReport is the /freshness payload: the shard's pipeline
// watermarks. WatermarkSeq is the min across sources of MaxSeqFolded (the
// estimate provably reflects every sequenced record up to it);
// WatermarkAgeSeconds is how long ago the estimators last absorbed
// anything (-1 = never); Behind totals queued-but-unfolded records.
// The aggregation tier (internal/fleet) and rolloutd's watermark gate both
// read the top-level WatermarkAgeSeconds/Behind pair, so the fleet-level
// merge deliberately renders the same field names.
type FreshnessReport struct {
	Version             int               `json:"version"`
	ShardID             string            `json:"shard_id"`
	TimeUnixMilli       int64             `json:"time_unix_milli"`
	WatermarkSeq        int64             `json:"watermark_seq"`
	WatermarkAgeSeconds float64           `json:"watermark_age_seconds"`
	Behind              int64             `json:"behind"`
	QueueDepth          int               `json:"queue_depth"`
	QueueCapacity       int               `json:"queue_capacity"`
	Sources             []SourceFreshness `json:"sources"`
}

const helpIngestFoldLag = "ingest-to-fold latency per folded batch"

// sourceStats is the per-source watermark accumulator behind /freshness.
// Writers are the enqueue paths (before the batch is handed to the queue,
// while the producer still owns the slice) and the fold workers; all
// fields are atomics, so neither path takes a lock.
type sourceStats struct {
	name           string
	ingested       atomic.Int64
	folded         atomic.Int64
	maxSeqIngested atomic.Int64 // -1 until a sequenced record arrives
	maxSeqFolded   atomic.Int64
	lastIngestNano atomic.Int64 // injected-clock UnixNano; 0 = never
	lastFoldNano   atomic.Int64
	lag            *obs.Histogram
}

func newSourceStats(name string, reg *obs.Registry) *sourceStats {
	st := &sourceStats{name: name}
	st.maxSeqIngested.Store(-1)
	st.maxSeqFolded.Store(-1)
	st.lag = reg.Histogram("harvestd_ingest_fold_lag_seconds", helpIngestFoldLag,
		obs.DefLatencyBuckets(), "source", name)
	return st
}

// atomicMax raises a to at least v (CAS loop; no-op when v is not larger).
func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// noteIngested records a batch entering the queue. maxSeq was computed by
// the caller before the enqueue, while it still owned the points.
func (s *sourceStats) noteIngested(n int, maxSeq int64, at time.Time) {
	s.ingested.Add(int64(n))
	atomicMax(&s.maxSeqIngested, maxSeq)
	atomicMax(&s.lastIngestNano, at.UnixNano())
}

// noteFolded records a batch's folded points leaving the queue.
func (s *sourceStats) noteFolded(n int, maxSeq int64, at time.Time, lagSeconds float64) {
	if n > 0 {
		s.folded.Add(int64(n))
		atomicMax(&s.maxSeqFolded, maxSeq)
	}
	atomicMax(&s.lastFoldNano, at.UnixNano())
	s.lag.Observe(lagSeconds)
}

// maxBatchSeq is the enqueue-side scan for the high-water Seq of a batch.
// It runs before the channel send — after it, ownership of pts transfers
// to the fold workers and the producer must not touch the slice.
func maxBatchSeq(pts []core.Datapoint) int64 {
	maxSeq := int64(-1)
	for i := range pts {
		if pts[i].Seq > maxSeq {
			maxSeq = pts[i].Seq
		}
	}
	return maxSeq
}

// sinkFor returns the ingestion sink bound to the named source's stats,
// creating the stats (and their lag histogram series) on first use.
func (d *Daemon) sinkFor(name string) *Sink {
	d.srcStatsMu.Lock()
	st, ok := d.srcStats[name]
	if !ok {
		st = newSourceStats(name, d.obsReg)
		d.srcStats[name] = st
	}
	d.srcStatsMu.Unlock()
	return &Sink{d: d, src: st}
}

// FreshnessNow assembles the current pipeline-watermark report. Sources
// render in name order, so two calls against unchanged state are
// byte-identical through the JSON encoder.
func (d *Daemon) FreshnessNow() FreshnessReport {
	now := d.cfg.Clock.Now()
	d.srcStatsMu.Lock()
	stats := make([]*sourceStats, 0, len(d.srcStats))
	for _, st := range d.srcStats {
		stats = append(stats, st)
	}
	d.srcStatsMu.Unlock()
	sort.Slice(stats, func(i, j int) bool { return stats[i].name < stats[j].name })

	id := d.cfg.ShardID
	if id == "" {
		if addr := d.Addr(); addr != "" {
			id = addr
		} else {
			id = "harvestd"
		}
	}
	rep := FreshnessReport{
		Version:             FreshnessVersion,
		ShardID:             id,
		TimeUnixMilli:       now.UnixMilli(),
		WatermarkSeq:        -1,
		WatermarkAgeSeconds: -1,
		QueueDepth:          len(d.queue),
		QueueCapacity:       cap(d.queue),
		Sources:             make([]SourceFreshness, 0, len(stats)),
	}
	var lastFoldNano int64
	for _, st := range stats {
		snap := st.lag.Snapshot()
		sf := SourceFreshness{
			Source:         st.name,
			Ingested:       st.ingested.Load(),
			Folded:         st.folded.Load(),
			MaxSeqIngested: st.maxSeqIngested.Load(),
			MaxSeqFolded:   st.maxSeqFolded.Load(),
			LagCount:       snap.Count,
			LagSumSeconds:  snap.Sum,
		}
		sf.Behind = sf.Ingested - sf.Folded
		if ns := st.lastIngestNano.Load(); ns != 0 {
			sf.LastIngestUnixMilli = ns / int64(time.Millisecond)
		}
		if ns := st.lastFoldNano.Load(); ns != 0 {
			sf.LastFoldUnixMilli = ns / int64(time.Millisecond)
			if ns > lastFoldNano {
				lastFoldNano = ns
			}
		}
		if snap.Count > 0 {
			// Quantile of an empty snapshot is NaN, which the JSON encoder
			// rejects — the zero default stands for "no samples yet".
			sf.LagP50Seconds = snap.Quantile(0.5)
			sf.LagP99Seconds = snap.Quantile(0.99)
		}
		rep.Behind += sf.Behind
		if sf.MaxSeqFolded >= 0 &&
			(rep.WatermarkSeq < 0 || sf.MaxSeqFolded < rep.WatermarkSeq) {
			rep.WatermarkSeq = sf.MaxSeqFolded
		}
		rep.Sources = append(rep.Sources, sf)
	}
	if lastFoldNano != 0 {
		rep.WatermarkAgeSeconds = now.Sub(time.Unix(0, lastFoldNano)).Seconds()
	}
	return rep
}
