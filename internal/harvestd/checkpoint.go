package harvestd

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// checkpointVersion guards the on-disk schema.
const checkpointVersion = 1

// checkpointFile is the daemon's durable state: every policy's merged
// accumulator plus the stream counters, so a restarted daemon reports
// continuous metrics and identical estimates (n, mean, intervals).
type checkpointFile struct {
	Version     int              `json:"version"`
	SavedAt     time.Time        `json:"saved_at"`
	Lines       int64            `json:"lines"`
	ParseErrors int64            `json:"parse_errors"`
	Rejected    int64            `json:"rejected"`
	Ingested    int64            `json:"ingested"`
	Folded      int64            `json:"folded"`
	Policies    map[string]Accum `json:"policies"`
}

// Checkpoint atomically persists the current estimator state: marshal to a
// temp file in the checkpoint's directory, fsync, then rename over the
// destination — a crash mid-write leaves the previous checkpoint intact.
func (d *Daemon) Checkpoint() error {
	path := d.cfg.CheckpointPath
	if path == "" {
		return fmt.Errorf("harvestd: checkpointing disabled")
	}
	ck := checkpointFile{
		Version:     checkpointVersion,
		SavedAt:     time.Now().UTC(),
		Lines:       d.ctr.lines.Load(),
		ParseErrors: d.ctr.parseErrors.Load(),
		Rejected:    d.ctr.rejected.Load(),
		Ingested:    d.ctr.ingested.Load(),
		Folded:      d.ctr.folded.Load(),
		Policies:    d.reg.exportState(),
	}
	blob, err := json.MarshalIndent(&ck, "", " ")
	if err != nil {
		return fmt.Errorf("harvestd: encoding checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("harvestd: checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(blob); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return fmt.Errorf("harvestd: writing checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return fmt.Errorf("harvestd: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("harvestd: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("harvestd: publishing checkpoint: %w", err)
	}
	d.ctr.checkpoints.Add(1)
	d.cfg.Tracer.Event("checkpoint", d.root, map[string]any{"folded": ck.Folded})
	return nil
}

// loadCheckpoint restores estimator state and counters from the checkpoint
// file, returning how many policies were restored. A missing file returns
// os.ErrNotExist (the caller treats it as a cold start).
func (d *Daemon) loadCheckpoint() (int, error) {
	blob, err := os.ReadFile(d.cfg.CheckpointPath)
	if err != nil {
		return 0, err
	}
	var ck checkpointFile
	if err := json.Unmarshal(blob, &ck); err != nil {
		return 0, fmt.Errorf("harvestd: corrupt checkpoint %s: %w", d.cfg.CheckpointPath, err)
	}
	if ck.Version != checkpointVersion {
		return 0, fmt.Errorf("harvestd: checkpoint %s has version %d, want %d",
			d.cfg.CheckpointPath, ck.Version, checkpointVersion)
	}
	restored := d.reg.restoreState(ck.Policies)
	d.ctr.lines.Store(ck.Lines)
	d.ctr.parseErrors.Store(ck.ParseErrors)
	d.ctr.rejected.Store(ck.Rejected)
	d.ctr.ingested.Store(ck.Ingested)
	d.ctr.folded.Store(ck.Folded)
	return restored, nil
}
