package harvestd

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cachesim"
	"repro/internal/harvester"
)

// startSourceDaemon wires one source into a 2-worker daemon and starts it.
func startSourceDaemon(t *testing.T, src Source) (*Daemon, *Registry) {
	t.Helper()
	reg := newTestRegistry(t, 2)
	d, err := New(Config{Workers: 2, Clip: 10}, reg)
	if err != nil {
		t.Fatal(err)
	}
	d.AddSource(src)
	if err := d.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	return d, reg
}

// TestNginxSourceFollowTail exercises the tail -f path: the daemon keeps
// harvesting lines appended to a live log file until shutdown.
func TestNginxSourceFollowTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "access.log")
	if err := os.WriteFile(path, []byte(genNginxLog(40, 71)), 0o644); err != nil {
		t.Fatal(err)
	}
	d, reg := startSourceDaemon(t, &NginxSource{
		Path: path, Follow: true, Poll: 2 * time.Millisecond,
	})
	defer d.Shutdown(context.Background())

	waitFor(t, 10*time.Second, "initial lines", func() bool { return reg.TotalN() == 40 })

	// Append more lines as a live server would.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(genNginxLog(25, 72)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "appended lines", func() bool { return reg.TotalN() == 65 })
	if errs := d.SourceErrors(); len(errs) != 0 {
		t.Fatalf("source errors: %v", errs)
	}
}

// TestNginxSourceTolerantVsStrict: the same corrupt log is survivable in the
// default (live-tail) mode and fatal in Strict (batch-backfill) mode.
func TestNginxSourceTolerantVsStrict(t *testing.T) {
	logText := genNginxLog(10, 73) + "not an access line\n" + genNginxLog(5, 74)

	d, reg := startSourceDaemon(t, &NginxSource{R: strings.NewReader(logText)})
	waitFor(t, 10*time.Second, "tolerant harvest", func() bool { return reg.TotalN() == 15 })
	if errs := d.SourceErrors(); len(errs) != 0 {
		t.Fatalf("tolerant mode must not fail the source: %v", errs)
	}
	waitFor(t, 5*time.Second, "parse error counted", func() bool {
		return d.ctr.parseErrors.Load() == 1
	})
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	d2, _ := startSourceDaemon(t, &NginxSource{R: strings.NewReader(logText), Strict: true})
	waitFor(t, 10*time.Second, "strict failure", func() bool {
		return len(d2.SourceErrors()) == 1
	})
	if err := d2.SourceErrors()[0]; !strings.Contains(err.Error(), "line 11") {
		t.Errorf("strict error %q should name line 11", err)
	}
	if err := d2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestSourceMissingFile(t *testing.T) {
	d, _ := startSourceDaemon(t, &NginxSource{Path: filepath.Join(t.TempDir(), "no-such.log")})
	defer d.Shutdown(context.Background())
	waitFor(t, 5*time.Second, "open failure", func() bool {
		return len(d.SourceErrors()) == 1
	})
}

// TestCacheLogSource round-trips a hand-built decision log through the
// WriteCacheLogs format and harvests one datapoint per eviction.
func TestCacheLogSource(t *testing.T) {
	accesses := []cachesim.AccessRecord{
		{Time: 1, Key: "a", Size: 10, Hit: false},
		{Time: 2, Key: "b", Size: 10, Hit: false},
		{Time: 5, Key: "a", Size: 10, Hit: true}, // "a" comes back: small gap
	}
	evictions := []cachesim.EvictionRecord{
		{
			Time:       3,
			Chosen:     0,
			Propensity: 0.5,
			Candidates: []cachesim.Candidate{
				{Key: "a", Size: 10, LastAccess: 1, Frequency: 1, InsertedAt: 1},
				{Key: "b", Size: 10, LastAccess: 2, Frequency: 1, InsertedAt: 2},
			},
		},
		{
			Time:       4,
			Chosen:     1,
			Propensity: 0.5,
			Candidates: []cachesim.Candidate{
				{Key: "a", Size: 10, LastAccess: 1, Frequency: 1, InsertedAt: 1},
				{Key: "b", Size: 10, LastAccess: 2, Frequency: 1, InsertedAt: 2},
			},
		},
	}
	var buf strings.Builder
	if err := harvester.WriteCacheLogs(&buf, accesses, evictions); err != nil {
		t.Fatal(err)
	}

	d, reg := startSourceDaemon(t, &CacheLogSource{R: strings.NewReader(buf.String()), Horizon: 100})
	defer d.Shutdown(context.Background())
	waitFor(t, 10*time.Second, "evictions harvested", func() bool {
		return reg.TotalN() == int64(len(evictions))
	})
	if errs := d.SourceErrors(); len(errs) != 0 {
		t.Fatalf("source errors: %v", errs)
	}

	// Eviction contexts carry per-candidate ActionFeatures only; the LB
	// policy in the registry panics on them and must be skipped (counted),
	// not crash the daemon.
	waitFor(t, 5*time.Second, "panics counted", func() bool {
		return reg.EvalPanics() == int64(len(evictions))
	})
	ll, ok := reg.Estimate("leastloaded", 0.05)
	if !ok || ll.N != 0 {
		t.Errorf("leastloaded folded %d eviction datapoints, want 0", ll.N)
	}
	if c0, _ := reg.Estimate("always-0", 0.05); c0.N != int64(len(evictions)) {
		t.Errorf("always-0 n = %d, want %d", c0.N, len(evictions))
	}
}
