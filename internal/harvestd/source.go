package harvestd

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/harvester"
	"repro/internal/lbsim"
)

// A Source feeds exploration datapoints into the daemon's ingestion
// pipeline. Run reads until the input is exhausted (or, when following a
// growing file, until ctx is cancelled), reporting lines, parse failures,
// and rejections through the sink. Run returning a non-nil error marks the
// source failed; the daemon keeps serving the other sources.
type Source interface {
	// Name identifies the source in metrics and logs.
	Name() string
	// Run streams the source into the sink.
	Run(ctx context.Context, sink *Sink) error
}

// Sink is the ingestion funnel handed to sources: it counts the stream's
// vital signs and offers datapoints to the worker queue with backpressure.
type Sink struct {
	d *Daemon
}

// Line records one raw input line (or record) seen.
func (s *Sink) Line() { s.d.ctr.lines.Add(1) }

// ParseError records a line that could not be parsed.
func (s *Sink) ParseError() { s.d.ctr.parseErrors.Add(1) }

// Rejected records a well-formed line that carried no usable datapoint
// (failed request, missing propensity, out-of-range type, ...).
func (s *Sink) Rejected() { s.d.ctr.rejected.Add(1) }

// Emit offers one datapoint to the bounded worker queue, blocking for
// backpressure; it fails only when ctx is cancelled first.
func (s *Sink) Emit(ctx context.Context, d core.Datapoint) error {
	select {
	case s.d.queue <- d:
		s.d.ctr.ingested.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// tailReader turns a file into a follow-forever reader (tail -f): on EOF it
// polls for appended data until ctx is cancelled, then reports io.EOF so
// downstream scanners terminate cleanly.
type tailReader struct {
	ctx  context.Context
	r    io.Reader
	poll time.Duration
}

func (t *tailReader) Read(p []byte) (int, error) {
	for {
		n, err := t.r.Read(p)
		if n > 0 {
			return n, nil
		}
		if err != nil && err != io.EOF {
			return 0, err
		}
		select {
		case <-t.ctx.Done():
			return 0, io.EOF
		case <-time.After(t.poll):
		}
	}
}

// openSource resolves a path-or-reader pair: an explicit reader wins (for
// tests and in-process wiring); otherwise the path is opened.
func openSource(path string, r io.Reader) (io.Reader, func() error, error) {
	if r != nil {
		return r, func() error { return nil }, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// NginxSource tails a netlb/Nginx-style access log and harvests a
// ⟨x, a, r, p⟩ datapoint per successful request, exactly as
// harvester.NginxToTypedDataset does in batch: context from the logged
// per-upstream connection counts, action = the upstream, reward = request
// time, propensity from the log.
type NginxSource struct {
	// Path is the log file; R overrides it with an in-process reader.
	Path string
	R    io.Reader
	// Follow keeps reading as the file grows (tail -f) until shutdown.
	Follow bool
	// NumTypes > 1 harvests typed routing contexts (netlb's type= field).
	NumTypes int
	// Strict aborts on the first malformed line instead of counting it —
	// the right mode for batch backfills where silent loss would bias the
	// estimate; live tails default to tolerant.
	Strict bool
	// Poll is the follow-mode poll interval (default 50ms).
	Poll time.Duration
}

// Name implements Source.
func (s *NginxSource) Name() string {
	if s.Path != "" {
		return "nginx:" + s.Path
	}
	return "nginx:<reader>"
}

// Run implements Source.
func (s *NginxSource) Run(ctx context.Context, sink *Sink) error {
	r, closer, err := openSource(s.Path, s.R)
	if err != nil {
		return fmt.Errorf("harvestd: %s: %w", s.Name(), err)
	}
	defer func() { _ = closer() }() // read-only source; close error unactionable
	if s.Follow {
		poll := s.Poll
		if poll <= 0 {
			poll = 50 * time.Millisecond
		}
		r = &tailReader{ctx: ctx, r: r, poll: poll}
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	lineNo := 0
	for sc.Scan() {
		if ctx.Err() != nil {
			return nil // shutdown mid-file, not a source failure
		}
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		sink.Line()
		e, err := harvester.ParseNginxLine(line)
		if err != nil {
			if s.Strict {
				return fmt.Errorf("harvestd: %s line %d: %w", s.Name(), lineNo, err)
			}
			sink.ParseError()
			continue
		}
		d, ok, err := entryToDatapoint(e, s.NumTypes)
		if err != nil {
			if s.Strict {
				return fmt.Errorf("harvestd: %s line %d: %w", s.Name(), lineNo, err)
			}
			sink.ParseError()
			continue
		}
		if !ok {
			sink.Rejected()
			continue
		}
		if err := sink.Emit(ctx, d); err != nil {
			return nil // shutdown, not a source failure
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("harvestd: %s: %w", s.Name(), err)
	}
	return nil
}

// entryToDatapoint converts one parsed access entry into exploration data,
// mirroring harvester.NginxToTypedDataset's per-entry logic: non-2xx,
// propensity-free, or type-out-of-range entries are skipped (ok=false); an
// upstream index inconsistent with the logged connection vector is an error.
func entryToDatapoint(e *harvester.AccessEntry, numTypes int) (core.Datapoint, bool, error) {
	if e.Status < 200 || e.Status > 299 || e.Upstream < 0 || len(e.Conns) == 0 || e.Propensity <= 0 {
		return core.Datapoint{}, false, nil
	}
	if e.Upstream >= len(e.Conns) {
		return core.Datapoint{}, false, fmt.Errorf("upstream %d with %d conns", e.Upstream, len(e.Conns))
	}
	reqType := 0
	if numTypes > 1 {
		if e.Type < 0 || e.Type >= numTypes {
			return core.Datapoint{}, false, nil
		}
		reqType = e.Type
	} else {
		numTypes = 1
	}
	return core.Datapoint{
		Context:    lbsim.BuildContext(e.Conns, reqType, numTypes),
		Action:     core.Action(e.Upstream),
		Reward:     e.RequestTime,
		Propensity: e.Propensity,
	}, true, nil
}

// JSONLSource streams a core JSONL exploration dataset. Datasets are
// machine-written, so malformed lines abort (they signal corruption, not
// noise) — except for a partial trailing line racing shutdown in follow
// mode, which is counted as a parse error instead.
type JSONLSource struct {
	Path string
	R    io.Reader
	// Follow keeps reading as the file grows.
	Follow bool
	// Poll is the follow-mode poll interval (default 50ms).
	Poll time.Duration
}

// Name implements Source.
func (s *JSONLSource) Name() string {
	if s.Path != "" {
		return "jsonl:" + s.Path
	}
	return "jsonl:<reader>"
}

// Run implements Source.
func (s *JSONLSource) Run(ctx context.Context, sink *Sink) error {
	r, closer, err := openSource(s.Path, s.R)
	if err != nil {
		return fmt.Errorf("harvestd: %s: %w", s.Name(), err)
	}
	defer func() { _ = closer() }() // read-only source; close error unactionable
	if s.Follow {
		poll := s.Poll
		if poll <= 0 {
			poll = 50 * time.Millisecond
		}
		r = &tailReader{ctx: ctx, r: r, poll: poll}
	}
	err = core.ReadJSONLFunc(r, func(d core.Datapoint) error {
		sink.Line()
		if d.Validate() != nil {
			sink.Rejected()
			return nil
		}
		return sink.Emit(ctx, d)
	})
	switch {
	case err == nil:
		return nil
	case ctx.Err() != nil:
		// Shutdown mid-line: a truncated tail is expected, not corruption.
		sink.ParseError()
		return nil
	default:
		return fmt.Errorf("harvestd: %s: %w", s.Name(), err)
	}
}

// CacheLogSource harvests a cache decision log (harvester/cachelog format).
// Reward reconstruction needs the paper's look-ahead join over the access
// log, so this source reads the file fully before emitting — it suits
// periodic batch ingestion of rotated logs rather than live tailing.
type CacheLogSource struct {
	Path string
	R    io.Reader
	// Horizon caps time-to-next-access when the evicted item never returns.
	Horizon float64
}

// Name implements Source.
func (s *CacheLogSource) Name() string {
	if s.Path != "" {
		return "cachelog:" + s.Path
	}
	return "cachelog:<reader>"
}

// Run implements Source.
func (s *CacheLogSource) Run(ctx context.Context, sink *Sink) error {
	r, closer, err := openSource(s.Path, s.R)
	if err != nil {
		return fmt.Errorf("harvestd: %s: %w", s.Name(), err)
	}
	defer func() { _ = closer() }() // read-only source; close error unactionable
	accesses, evictions, err := harvester.ScavengeCacheLogs(r)
	if err != nil {
		return fmt.Errorf("harvestd: %s: %w", s.Name(), err)
	}
	for range accesses {
		sink.Line()
	}
	horizon := s.Horizon
	if horizon <= 0 {
		horizon = 2000
	}
	ds, err := harvester.HarvestEvictions(evictions, accesses, horizon)
	if err != nil {
		if err == core.ErrNoData {
			return nil
		}
		return fmt.Errorf("harvestd: %s: %w", s.Name(), err)
	}
	for i := range ds {
		sink.Line()
		if ds[i].Validate() != nil {
			sink.Rejected()
			continue
		}
		if err := sink.Emit(ctx, ds[i]); err != nil {
			return nil
		}
	}
	return nil
}
