package harvestd

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/harvester"
	"repro/internal/harvester/binrec"
)

// A Source feeds exploration datapoints into the daemon's ingestion
// pipeline. Run reads until the input is exhausted (or, when following a
// growing file, until ctx is cancelled), reporting lines, parse failures,
// and rejections through the sink. Run returning a non-nil error marks the
// source failed; the daemon keeps serving the other sources.
type Source interface {
	// Name identifies the source in metrics and logs.
	Name() string
	// Run streams the source into the sink.
	Run(ctx context.Context, sink *Sink) error
}

// Sink is the ingestion funnel handed to sources: it counts the stream's
// vital signs and offers datapoints to the worker queue with backpressure.
// Each sink is bound to one source's freshness stats (see sinkFor), so the
// /freshness watermarks attribute every batch to the source that fed it.
type Sink struct {
	d   *Daemon
	src *sourceStats
}

// Line records one raw input line (or record) seen.
func (s *Sink) Line() { s.d.ctr.lines.Add(1) }

// Lines records n raw input lines (or records) seen at once — the batch
// counterpart of Line for sources that ingest whole segments.
func (s *Sink) Lines(n int) { s.d.ctr.lines.Add(int64(n)) }

// ParseError records a line that could not be parsed.
func (s *Sink) ParseError() { s.d.ctr.parseErrors.Add(1) }

// Rejected records a well-formed line that carried no usable datapoint
// (failed request, missing propensity, out-of-range type, ...).
func (s *Sink) Rejected() { s.d.ctr.rejected.Add(1) }

// Harvested records n datapoints reconstructed from derived records — the
// cache source's look-ahead join produces one datapoint per eviction, which
// is not the same thing as an input line; keeping the counters separate is
// what keeps harvestd_lines_total meaning "raw input lines seen".
func (s *Sink) Harvested(n int) { s.d.ctr.harvested.Add(int64(n)) }

// Emit offers one datapoint to the bounded worker queue, blocking for
// backpressure; it fails only when ctx is cancelled first.
func (s *Sink) Emit(ctx context.Context, d core.Datapoint) error {
	return s.d.enqueue(ctx, []core.Datapoint{d}, nil, s.src)
}

// EmitBatch offers a whole slice of datapoints to the worker queue in one
// channel operation — the binary ingest hot path. Ownership of pts
// transfers to the daemon until free runs (after the batch is folded);
// sources recycling decode buffers pass a free that returns the batch to
// their pool, and must not touch pts before it fires. free may be nil.
func (s *Sink) EmitBatch(ctx context.Context, pts []core.Datapoint, free func()) error {
	if len(pts) == 0 {
		if free != nil {
			free()
		}
		return nil
	}
	return s.d.enqueue(ctx, pts, free, s.src)
}

// tailReader turns a file into a follow-forever reader (tail -f): on EOF it
// polls for appended data until ctx is cancelled, then reports io.EOF so
// downstream scanners terminate cleanly.
type tailReader struct {
	ctx   context.Context
	r     io.Reader
	poll  time.Duration
	timer *time.Timer // reused across polls; a per-poll time.After leaks a timer allocation every interval
}

func (t *tailReader) Read(p []byte) (int, error) {
	for {
		n, err := t.r.Read(p)
		if n > 0 {
			return n, nil
		}
		if err != nil && err != io.EOF {
			return 0, err
		}
		if t.timer == nil {
			t.timer = time.NewTimer(t.poll)
		} else {
			t.timer.Reset(t.poll)
		}
		select {
		case <-t.ctx.Done():
			if !t.timer.Stop() {
				<-t.timer.C
			}
			return 0, io.EOF
		case <-t.timer.C:
		}
	}
}

// openSource resolves a path-or-reader pair: an explicit reader wins (for
// tests and in-process wiring); otherwise the path is opened.
func openSource(path string, r io.Reader) (io.Reader, func() error, error) {
	if r != nil {
		return r, func() error { return nil }, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// NginxSource tails a netlb/Nginx-style access log and harvests a
// ⟨x, a, r, p⟩ datapoint per successful request, exactly as
// harvester.NginxToTypedDataset does in batch: context from the logged
// per-upstream connection counts, action = the upstream, reward = request
// time, propensity from the log.
type NginxSource struct {
	// Path is the log file; R overrides it with an in-process reader.
	Path string
	R    io.Reader
	// Follow keeps reading as the file grows (tail -f) until shutdown.
	Follow bool
	// NumTypes > 1 harvests typed routing contexts (netlb's type= field).
	NumTypes int
	// Strict aborts on the first malformed line instead of counting it —
	// the right mode for batch backfills where silent loss would bias the
	// estimate; live tails default to tolerant.
	Strict bool
	// Poll is the follow-mode poll interval (default 50ms).
	Poll time.Duration
}

// Name implements Source.
func (s *NginxSource) Name() string {
	if s.Path != "" {
		return "nginx:" + s.Path
	}
	return "nginx:<reader>"
}

// Run implements Source.
func (s *NginxSource) Run(ctx context.Context, sink *Sink) error {
	r, closer, err := openSource(s.Path, s.R)
	if err != nil {
		return fmt.Errorf("harvestd: %s: %w", s.Name(), err)
	}
	defer func() { _ = closer() }() // read-only source; close error unactionable
	if s.Follow {
		poll := s.Poll
		if poll <= 0 {
			poll = 50 * time.Millisecond
		}
		r = &tailReader{ctx: ctx, r: r, poll: poll}
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, core.ScanBufferSize), core.MaxRecordBytes)
	lineNo := 0
	for sc.Scan() {
		if ctx.Err() != nil {
			return nil // shutdown mid-file, not a source failure
		}
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		sink.Line()
		e, err := harvester.ParseNginxLine(line)
		if err != nil {
			if s.Strict {
				// A shutdown racing a live append can hand the scanner a torn
				// final line; that is clean termination, not corrupt input.
				if ctx.Err() != nil {
					sink.ParseError()
					return nil
				}
				return fmt.Errorf("harvestd: %s line %d: %w", s.Name(), lineNo, err)
			}
			sink.ParseError()
			continue
		}
		d, ok, err := harvester.EntryToTypedDatapoint(e, s.NumTypes)
		if err != nil {
			if s.Strict {
				if ctx.Err() != nil {
					sink.ParseError()
					return nil
				}
				return fmt.Errorf("harvestd: %s line %d: %w", s.Name(), lineNo, err)
			}
			sink.ParseError()
			continue
		}
		if !ok {
			sink.Rejected()
			continue
		}
		// Access-log lines carry no explicit sequence number; the line
		// number is the natural per-file one, and it feeds the /freshness
		// ingest/fold watermarks.
		d.Seq = int64(lineNo)
		if err := sink.Emit(ctx, d); err != nil {
			return nil // shutdown, not a source failure
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("harvestd: %s: %w", s.Name(), err)
	}
	return nil
}

// JSONLSource streams a core JSONL exploration dataset. Datasets are
// machine-written, so malformed lines abort (they signal corruption, not
// noise) — except for a partial trailing line racing shutdown in follow
// mode, which is counted as a parse error instead.
type JSONLSource struct {
	Path string
	R    io.Reader
	// Follow keeps reading as the file grows.
	Follow bool
	// Poll is the follow-mode poll interval (default 50ms).
	Poll time.Duration
}

// Name implements Source.
func (s *JSONLSource) Name() string {
	if s.Path != "" {
		return "jsonl:" + s.Path
	}
	return "jsonl:<reader>"
}

// Run implements Source.
func (s *JSONLSource) Run(ctx context.Context, sink *Sink) error {
	r, closer, err := openSource(s.Path, s.R)
	if err != nil {
		return fmt.Errorf("harvestd: %s: %w", s.Name(), err)
	}
	defer func() { _ = closer() }() // read-only source; close error unactionable
	if s.Follow {
		poll := s.Poll
		if poll <= 0 {
			poll = 50 * time.Millisecond
		}
		r = &tailReader{ctx: ctx, r: r, poll: poll}
	}
	err = core.ReadJSONLFunc(r, func(d core.Datapoint) error {
		sink.Line()
		if d.Validate() != nil {
			sink.Rejected()
			return nil
		}
		return sink.Emit(ctx, d)
	})
	switch {
	case err == nil:
		return nil
	case ctx.Err() != nil:
		// Shutdown mid-line: a truncated tail is expected, not corruption.
		sink.ParseError()
		return nil
	default:
		return fmt.Errorf("harvestd: %s: %w", s.Name(), err)
	}
}

// CacheLogSource harvests a cache decision log (harvester/cachelog format).
// Reward reconstruction needs the paper's look-ahead join over the access
// log, so this source reads the file fully before emitting — it suits
// periodic batch ingestion of rotated logs rather than live tailing.
type CacheLogSource struct {
	Path string
	R    io.Reader
	// Horizon caps time-to-next-access when the evicted item never returns.
	Horizon float64
}

// Name implements Source.
func (s *CacheLogSource) Name() string {
	if s.Path != "" {
		return "cachelog:" + s.Path
	}
	return "cachelog:<reader>"
}

// ctxReader aborts a blocking read pipeline when ctx is cancelled. It checks
// between Reads rather than interrupting one — fine for file and in-memory
// inputs, where individual Reads return promptly.
type ctxReader struct {
	ctx context.Context
	r   io.Reader
}

func (c *ctxReader) Read(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.r.Read(p)
}

// Run implements Source.
func (s *CacheLogSource) Run(ctx context.Context, sink *Sink) error {
	r, closer, err := openSource(s.Path, s.R)
	if err != nil {
		return fmt.Errorf("harvestd: %s: %w", s.Name(), err)
	}
	defer func() { _ = closer() }() // read-only source; close error unactionable
	accesses, evictions, err := harvester.ScavengeCacheLogs(&ctxReader{ctx: ctx, r: r})
	if err != nil {
		if ctx.Err() != nil {
			return nil // shutdown mid-scan, not a source failure
		}
		return fmt.Errorf("harvestd: %s: %w", s.Name(), err)
	}
	// Every scavenged line — accesses and eviction decisions alike — is one
	// raw input line. Harvested datapoints are counted separately below;
	// counting them under lines too would double-book each eviction.
	sink.Lines(len(accesses) + len(evictions))
	if ctx.Err() != nil {
		return nil
	}
	horizon := s.Horizon
	if horizon <= 0 {
		horizon = 2000
	}
	ds, err := harvester.HarvestEvictions(evictions, accesses, horizon)
	if err != nil {
		if err == core.ErrNoData {
			return nil
		}
		return fmt.Errorf("harvestd: %s: %w", s.Name(), err)
	}
	sink.Harvested(len(ds))
	for i := range ds {
		if ctx.Err() != nil {
			return nil
		}
		if ds[i].Validate() != nil {
			sink.Rejected()
			continue
		}
		if err := sink.Emit(ctx, ds[i]); err != nil {
			return nil
		}
	}
	return nil
}

// BinSource streams a binrec binary harvest-record file — the bulk-transport
// ingest path. Decoded segments are handed to the daemon whole via
// Sink.EmitBatch, and decode buffers cycle through a small free list so the
// steady state allocates nothing per record: the decoder arena that a batch
// was decoded into is returned by the worker's free callback once folded.
//
// Binary files are machine-written, so corruption aborts the source — except
// a torn trailing segment racing shutdown in follow mode, which is counted
// as a parse error, mirroring JSONLSource's truncated-tail handling.
type BinSource struct {
	Path string
	R    io.Reader
	// Follow keeps reading as the file grows (tail -f) until shutdown.
	Follow bool
	// Poll is the follow-mode poll interval (default 50ms).
	Poll time.Duration
}

// Name implements Source.
func (s *BinSource) Name() string {
	if s.Path != "" {
		return "bin:" + s.Path
	}
	return "bin:<reader>"
}

// binFreeListDepth bounds in-flight decode batches per binary source: deep
// enough to keep decode ahead of fold, small enough that a stalled worker
// pins only a few arenas.
const binFreeListDepth = 4

// Run implements Source.
func (s *BinSource) Run(ctx context.Context, sink *Sink) error {
	r, closer, err := openSource(s.Path, s.R)
	if err != nil {
		return fmt.Errorf("harvestd: %s: %w", s.Name(), err)
	}
	defer func() { _ = closer() }() // read-only source; close error unactionable
	if s.Follow {
		poll := s.Poll
		if poll <= 0 {
			poll = 50 * time.Millisecond
		}
		r = &tailReader{ctx: ctx, r: r, poll: poll}
	}
	free := make(chan *binrec.Batch, binFreeListDepth)
	for i := 0; i < binFreeListDepth; i++ {
		//lint:ignore ctxloop priming a buffered free list; capacity equals the trip count, sends never block
		free <- new(binrec.Batch)
	}
	dec := binrec.NewDecoder(r)
	for {
		var b *binrec.Batch
		select {
		case b = <-free:
		case <-ctx.Done():
			return nil
		}
		err := dec.Next(b)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			if ctx.Err() != nil && errors.Is(err, io.ErrUnexpectedEOF) {
				// Shutdown mid-segment: a torn tail is expected, not corruption.
				sink.ParseError()
				return nil
			}
			return fmt.Errorf("harvestd: %s: %w", s.Name(), err)
		}
		sink.Lines(len(b.Points))
		bb := b
		if err := sink.EmitBatch(ctx, bb.Points, func() { free <- bb }); err != nil {
			return nil // shutdown, not a source failure
		}
	}
}
