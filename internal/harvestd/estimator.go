package harvestd

import (
	"math"

	"repro/internal/core"
	"repro/internal/stats"
)

// Accum holds the sufficient statistics for three importance-weighted
// estimators of one candidate policy — plain IPS, clipped IPS, and SNIPS —
// over a stream of ⟨x, a, r, p⟩ datapoints. Unlike the estimators in
// package ope it never sees the data twice: everything the read path needs
// (point estimates, standard errors, normal and empirical-Bernstein
// intervals) is derived from these running sums, so an Accum is also the
// unit of sharding (one per ingestion worker, merged on read) and of
// checkpointing (all fields are exported and JSON-serializable).
type Accum struct {
	// N counts folded datapoints; Matches those on which the candidate put
	// positive probability.
	N       int64 `json:"n"`
	Matches int64 `json:"matches"`

	// Importance-weight sums: w = π(a|x)/p.
	SumW   float64 `json:"sum_w"`
	SumWSq float64 `json:"sum_w_sq"`
	MaxW   float64 `json:"max_w"`

	// IPS term sums: term = w·r.
	SumWR   float64 `json:"sum_wr"`
	SumWRSq float64 `json:"sum_wr_sq"`
	// SumW2R / SumW2R2 accumulate w²r and w²r² for the SNIPS delta-method
	// variance.
	SumW2R  float64 `json:"sum_w2r"`
	SumW2R2 float64 `json:"sum_w2r2"`

	// Clipped-IPS term sums: cterm = min(w, clip)·r.
	SumCW    float64 `json:"sum_cw"`
	SumCWR   float64 `json:"sum_cwr"`
	SumCWRSq float64 `json:"sum_cwr_sq"`

	// Observed ranges, for empirical-Bernstein interval widths.
	MinTerm  float64 `json:"min_term"`
	MaxTerm  float64 `json:"max_term"`
	MinCTerm float64 `json:"min_cterm"`
	MaxCTerm float64 `json:"max_cterm"`
	MinR     float64 `json:"min_r"`
	MaxR     float64 `json:"max_r"`

	// Estimator-health tallies (absent from pre-observability checkpoints,
	// which resume with zeros): Clipped counts datapoints whose importance
	// weight exceeded the clip cap, FloorHits those whose logged propensity
	// fell below the configured floor — the §4 "estimator error" warning
	// signs /diagnostics reports.
	Clipped   int64 `json:"clipped"`
	FloorHits int64 `json:"floor_hits"`
}

// Fold adds one datapoint given the candidate's probability pi of the
// logged action, the logged propensity p > 0, and the reward r. clip <= 0
// disables clipping (the clipped estimator then coincides with plain IPS);
// floor <= 0 disables propensity-floor accounting. A datapoint with
// non-positive propensity is dropped: the sources validate upstream, and
// folding one would poison every running sum with ±Inf.
func (a *Accum) Fold(pi, p, r, clip, floor float64) {
	w, ok := core.ImportanceWeight(pi, p)
	if !ok {
		return
	}
	if floor > 0 && p < floor {
		a.FloorHits++
	}
	term := w * r
	cw := w
	if clip > 0 && cw > clip {
		cw = clip
		a.Clipped++
	}
	cterm := cw * r
	if a.N == 0 {
		a.MinTerm, a.MaxTerm = term, term
		a.MinCTerm, a.MaxCTerm = cterm, cterm
		a.MinR, a.MaxR = r, r
	} else {
		a.MinTerm = math.Min(a.MinTerm, term)
		a.MaxTerm = math.Max(a.MaxTerm, term)
		a.MinCTerm = math.Min(a.MinCTerm, cterm)
		a.MaxCTerm = math.Max(a.MaxCTerm, cterm)
		a.MinR = math.Min(a.MinR, r)
		a.MaxR = math.Max(a.MaxR, r)
	}
	a.N++
	if pi > 0 {
		a.Matches++
	}
	a.SumW += w
	a.SumWSq += w * w
	a.MaxW = math.Max(a.MaxW, w)
	a.SumWR += term
	a.SumWRSq += term * term
	a.SumW2R += w * w * r
	a.SumW2R2 += w * w * r * r
	a.SumCW += cw
	a.SumCWR += cterm
	a.SumCWRSq += cterm * cterm
}

// Merge folds another accumulator into a (the parallel reduction of the
// sharded design). Merging an empty accumulator is a no-op.
func (a *Accum) Merge(o *Accum) {
	if o.N == 0 {
		return
	}
	if a.N == 0 {
		*a = *o
		return
	}
	a.MinTerm = math.Min(a.MinTerm, o.MinTerm)
	a.MaxTerm = math.Max(a.MaxTerm, o.MaxTerm)
	a.MinCTerm = math.Min(a.MinCTerm, o.MinCTerm)
	a.MaxCTerm = math.Max(a.MaxCTerm, o.MaxCTerm)
	a.MinR = math.Min(a.MinR, o.MinR)
	a.MaxR = math.Max(a.MaxR, o.MaxR)
	a.N += o.N
	a.Matches += o.Matches
	a.SumW += o.SumW
	a.SumWSq += o.SumWSq
	a.MaxW = math.Max(a.MaxW, o.MaxW)
	a.SumWR += o.SumWR
	a.SumWRSq += o.SumWRSq
	a.SumW2R += o.SumW2R
	a.SumW2R2 += o.SumW2R2
	a.SumCW += o.SumCW
	a.SumCWR += o.SumCWR
	a.SumCWRSq += o.SumCWRSq
	a.Clipped += o.Clipped
	a.FloorHits += o.FloorHits
}

// EstimatorValue is one estimator's view of a policy: point estimate,
// standard error, a normal-approximation 1−delta interval [Lo, Hi], and —
// when computable — a Maurer–Pontil empirical-Bernstein 1−delta interval
// [EBLo, EBHi] over the observed term range. EBOK reports whether the
// Bernstein interval is available (it needs n ≥ 2 and a positive observed
// range; for SNIPS it is never emitted because the self-normalized estimate
// is not a sample mean of i.i.d. terms).
type EstimatorValue struct {
	Value  float64 `json:"value"`
	StdErr float64 `json:"stderr"`
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
	EBLo   float64 `json:"eb_lo,omitempty"`
	EBHi   float64 `json:"eb_hi,omitempty"`
	EBOK   bool    `json:"eb_ok"`
}

// PolicyEstimate is the full per-policy report served by the API.
type PolicyEstimate struct {
	Policy     string         `json:"policy"`
	N          int64          `json:"n"`
	MatchRate  float64        `json:"match_rate"`
	IPS        EstimatorValue `json:"ips"`
	ClippedIPS EstimatorValue `json:"clipped_ips"`
	SNIPS      EstimatorValue `json:"snips"`
}

// Estimate derives all three estimators at confidence 1−delta.
func (a *Accum) Estimate(name string, delta float64) PolicyEstimate {
	pe := PolicyEstimate{Policy: name, N: a.N}
	if a.N == 0 {
		return pe
	}
	nf := float64(a.N)
	pe.MatchRate = float64(a.Matches) / nf

	pe.IPS = meanValue(a.SumWR, a.SumWRSq, a.N, a.MaxTerm-a.MinTerm, delta)
	pe.ClippedIPS = meanValue(a.SumCWR, a.SumCWRSq, a.N, a.MaxCTerm-a.MinCTerm, delta)

	// SNIPS: v = Σwr / Σw with the delta-method standard error used by
	// ope.SNIPS: se = sqrt(Var(wr − vw)/n)/w̄. The residual sum expands to
	// Σw²r² − 2vΣw²r + v²Σw² (the residuals have zero mean by construction),
	// so the running sums suffice — no second pass over the data.
	if a.SumW > 0 {
		v := a.SumWR / a.SumW
		pe.SNIPS = EstimatorValue{Value: v}
		if a.N >= 2 {
			ss := a.SumW2R2 - 2*v*a.SumW2R + v*v*a.SumWSq
			if ss < 0 {
				ss = 0
			}
			pe.SNIPS.StdErr = math.Sqrt(ss*nf/(nf-1)) / a.SumW
		}
		pe.SNIPS.Lo, pe.SNIPS.Hi = normalCI(v, pe.SNIPS.StdErr, delta)
	}
	return pe
}

// PolicyDiagnostics is one policy's estimator-health report: the runtime
// properties that decide whether the policy's confidence interval can be
// trusted, derived from the same running sums as the estimates themselves
// so the two views can never disagree about the data they describe.
type PolicyDiagnostics struct {
	Policy    string  `json:"policy"`
	N         int64   `json:"n"`
	Matches   int64   `json:"matches"`
	MatchRate float64 `json:"match_rate"`
	// ESS is Kish's effective sample size (Σw)²/Σw²: how many "full value"
	// datapoints the importance-weighted estimate is really built on.
	// ESSFraction (= ESS/N) near 1 means the candidate stays close to the
	// logging policy; near 0 means a few huge weights dominate and the
	// nominal N wildly overstates the evidence.
	ESS         float64 `json:"ess"`
	ESSFraction float64 `json:"ess_fraction"`
	// MeanWeight is Σw/N (≈1 for a well-calibrated candidate/log pair);
	// MaxWeight is the largest single importance weight folded.
	MeanWeight float64 `json:"mean_weight"`
	MaxWeight  float64 `json:"max_weight"`
	// ClippedN / ClipFraction count datapoints whose weight hit the clip
	// cap — the bias the clipped-IPS estimate traded for variance.
	ClippedN     int64   `json:"clipped_n"`
	ClipFraction float64 `json:"clip_fraction"`
	// FloorHits / FloorFraction count datapoints logged with a propensity
	// below the configured floor — the SAYER-style warning that the logging
	// policy barely explored those actions.
	FloorHits     int64   `json:"floor_hits"`
	FloorFraction float64 `json:"floor_fraction"`
}

// Diagnostics derives the estimator-health view of the accumulator.
func (a *Accum) Diagnostics(name string) PolicyDiagnostics {
	d := PolicyDiagnostics{
		Policy:    name,
		N:         a.N,
		Matches:   a.Matches,
		MaxWeight: a.MaxW,
		ClippedN:  a.Clipped,
		FloorHits: a.FloorHits,
	}
	if a.N == 0 {
		return d
	}
	nf := float64(a.N)
	d.MatchRate = float64(a.Matches) / nf
	d.MeanWeight = a.SumW / nf
	if a.SumWSq > 0 {
		d.ESS = a.SumW * a.SumW / a.SumWSq
	}
	d.ESSFraction = d.ESS / nf
	d.ClipFraction = float64(a.Clipped) / nf
	d.FloorFraction = float64(a.FloorHits) / nf
	return d
}

// meanValue builds the EstimatorValue of a plain sample mean from its term
// sums: mean, stderr, normal CI, and an empirical-Bernstein CI over the
// observed term range.
func meanValue(sum, sumSq float64, n int64, rangeWidth, delta float64) EstimatorValue {
	nf := float64(n)
	mean := sum / nf
	ev := EstimatorValue{Value: mean}
	if n < 2 {
		ev.Lo, ev.Hi = mean, mean
		return ev
	}
	variance := (sumSq - nf*mean*mean) / (nf - 1)
	if variance < 0 {
		variance = 0
	}
	ev.StdErr = math.Sqrt(variance / nf)
	ev.Lo, ev.Hi = normalCI(mean, ev.StdErr, delta)
	if r := stats.EmpiricalBernsteinRadius(int(n), variance, rangeWidth, delta); !math.IsInf(r, 0) && !math.IsNaN(r) {
		ev.EBLo, ev.EBHi, ev.EBOK = mean-r, mean+r, true
	}
	return ev
}

// normalCI returns the 1−delta normal-approximation interval, collapsing to
// the point when the standard error is zero (so JSON never carries ±Inf).
func normalCI(v, se, delta float64) (lo, hi float64) {
	if se <= 0 {
		return v, v
	}
	r := stats.NormalApproxRadius(se, delta)
	if math.IsInf(r, 0) || math.IsNaN(r) {
		return v, v
	}
	return v - r, v + r
}
