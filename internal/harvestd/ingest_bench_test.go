package harvestd

// End-to-end ingest benchmarks: one op pushes ingestBenchRecords records
// from an in-memory source through parse/decode, the worker queue, and the
// estimator fold, waiting until the last record lands. These are the
// numbers behind the binary format's reason to exist — `make bench` emits
// them into BENCH_harvestd.json, where IngestBin's records/s is expected to
// hold at least 5x IngestJSONL's.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/harvester/binrec"
	"repro/internal/lbsim"
	"repro/internal/policy"
)

const ingestBenchRecords = 4096

// benchDaemon builds a running 2-worker daemon with the standard candidate
// set and no attached sources; the benchmark drives Source.Run directly.
func benchDaemon(b *testing.B) *Daemon {
	b.Helper()
	reg, err := NewRegistry(2, 10)
	if err != nil {
		b.Fatal(err)
	}
	for a := 0; a < 2; a++ {
		if err := reg.Register(fmt.Sprintf("always-%d", a), policy.Constant{A: core.Action(a)}); err != nil {
			b.Fatal(err)
		}
	}
	if err := reg.Register("leastloaded", lbsim.LeastLoaded{}); err != nil {
		b.Fatal(err)
	}
	d, err := New(Config{Workers: 2, Clip: 10}, reg)
	if err != nil {
		b.Fatal(err)
	}
	if err := d.Start(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = d.Shutdown(context.Background()) })
	return d
}

// benchIngest runs the wire bytes through makeSrc once per op and blocks
// until every record of the op has been folded.
func benchIngest(b *testing.B, d *Daemon, wire []byte, makeSrc func(io.Reader) Source) {
	b.Helper()
	ctx := context.Background()
	sink := &Sink{d: d}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := makeSrc(bytes.NewReader(wire))
		if err := src.Run(ctx, sink); err != nil {
			b.Fatal(err)
		}
		target := int64(i+1) * ingestBenchRecords
		for d.ctr.folded.Load() < target {
			runtime.Gosched()
		}
	}
	b.StopTimer()
	if got := d.ctr.folded.Load(); got != int64(b.N)*ingestBenchRecords {
		b.Fatalf("folded %d records, want %d", got, int64(b.N)*ingestBenchRecords)
	}
	b.ReportMetric(float64(ingestBenchRecords)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

func BenchmarkIngestNginx(b *testing.B) {
	wire := []byte(genNginxLog(ingestBenchRecords, 1))
	benchIngest(b, benchDaemon(b), wire, func(r io.Reader) Source {
		return &NginxSource{R: r}
	})
}

func BenchmarkIngestJSONL(b *testing.B) {
	ds := benchDatapoints(ingestBenchRecords)
	var buf bytes.Buffer
	w := core.NewJSONLWriter(&buf)
	for i := range ds {
		if err := w.Write(&ds[i]); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	benchIngest(b, benchDaemon(b), buf.Bytes(), func(r io.Reader) Source {
		return &JSONLSource{R: r}
	})
}

// BenchmarkIngestBin is the tentpole's end-to-end number: binary decode into
// pooled batches, whole segments per queue send, zero per-record heap
// allocations on the decode side.
func BenchmarkIngestBin(b *testing.B) {
	ds := benchDatapoints(ingestBenchRecords)
	var buf bytes.Buffer
	enc, err := binrec.NewEncoder(&buf)
	if err != nil {
		b.Fatal(err)
	}
	for i := range ds {
		if err := enc.Write(&ds[i]); err != nil {
			b.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		b.Fatal(err)
	}
	benchIngest(b, benchDaemon(b), buf.Bytes(), func(r io.Reader) Source {
		return &BinSource{R: r}
	})
}
