package harvestd

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harvester"
	"repro/internal/lbsim"
	"repro/internal/policy"
	"repro/internal/stats"
)

// genNginxLog fabricates a netlb-style access log of n randomized-routing
// requests over two upstreams.
func genNginxLog(n int, seed int64) string {
	r := stats.NewRand(seed)
	var b strings.Builder
	for i := 0; i < n; i++ {
		conns := []int{r.Intn(8), r.Intn(8)}
		up := r.Intn(2)
		rt := 0.002 + 0.0005*float64(conns[up]) + 0.001*r.Float64()
		fmt.Fprintf(&b,
			"127.0.0.1:%d - - [06/Jul/2026:10:30:00 +0000] \"GET /r/%d HTTP/1.1\" 200 42 \"-\" \"t\" rt=%.6f upstream=%d conns=%d|%d prop=0.500000\n",
			1000+i, i, rt, up, conns[0], conns[1])
	}
	return b.String()
}

// newTestRegistry builds the standard candidate set used across tests.
func newTestRegistry(t *testing.T, workers int) *Registry {
	t.Helper()
	reg, err := NewRegistry(workers, 10)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 2; a++ {
		if err := reg.Register(fmt.Sprintf("always-%d", a), policy.Constant{A: core.Action(a)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.Register("leastloaded", lbsim.LeastLoaded{}); err != nil {
		t.Fatal(err)
	}
	return reg
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestDaemonIngestsConcurrentSources(t *testing.T) {
	logText := genNginxLog(500, 21)
	jsonlDS := testDataset(400, 22)
	var jsonlBuf strings.Builder
	if err := jsonlDS.WriteJSONL(&jsonlBuf); err != nil {
		t.Fatal(err)
	}

	reg := newTestRegistry(t, 4)
	d, err := New(Config{Workers: 4, QueueSize: 64, Clip: 10}, reg)
	if err != nil {
		t.Fatal(err)
	}
	d.AddSource(&NginxSource{R: strings.NewReader(logText)})
	d.AddSource(&JSONLSource{R: strings.NewReader(jsonlBuf.String())})
	if err := d.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(context.Background())

	// The nginx log harvests all 500 lines (all 2xx with propensities);
	// the JSONL set contributes 400 more.
	waitFor(t, 10*time.Second, "ingest to complete", func() bool {
		return reg.TotalN() == 900
	})
	if errs := d.SourceErrors(); len(errs) != 0 {
		t.Fatalf("source errors: %v", errs)
	}

	// The daemon's estimate must agree exactly (modulo FP summation order)
	// with folding the same multiset of datapoints directly.
	entries, err := harvester.ScavengeNginx(strings.NewReader(logText))
	if err != nil {
		t.Fatal(err)
	}
	nginxDS, skipped, err := harvester.NginxToDataset(entries)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("generator produced %d skippable lines", skipped)
	}
	all := append(append(core.Dataset{}, nginxDS...), jsonlDS...)
	pol := lbsim.LeastLoaded{}
	want := foldAll(t, all, pol, 10).Estimate("leastloaded", 0.05)
	got, ok := reg.Estimate("leastloaded", 0.05)
	if !ok {
		t.Fatal("leastloaded not registered")
	}
	if got.N != want.N {
		t.Fatalf("n = %d, want %d", got.N, want.N)
	}
	if math.Abs(got.IPS.Value-want.IPS.Value) > 1e-9 ||
		math.Abs(got.SNIPS.Value-want.SNIPS.Value) > 1e-9 ||
		math.Abs(got.ClippedIPS.Value-want.ClippedIPS.Value) > 1e-9 {
		t.Errorf("daemon estimate %+v != direct fold %+v", got, want)
	}
}

func TestDaemonShutdownDrainsInFlight(t *testing.T) {
	reg := newTestRegistry(t, 2)
	d, err := New(Config{Workers: 2, QueueSize: 256}, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	ds := testDataset(200, 31)
	for i := range ds {
		if err := d.Ingest(ds[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Shutdown must fold everything still queued before returning.
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := reg.TotalN(); got != 200 {
		t.Errorf("drained %d of 200 datapoints", got)
	}
	if err := d.Ingest(ds[0]); err == nil {
		t.Error("ingest after shutdown should fail")
	}
}

func TestDaemonRejectsInvalidDatapoints(t *testing.T) {
	reg := newTestRegistry(t, 1)
	d, err := New(Config{Workers: 1}, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(context.Background())
	bad := core.Datapoint{ // propensity out of range
		Context:    lbsim.BuildContext([]int{1, 2}, 0, 1),
		Action:     0,
		Reward:     1,
		Propensity: 1.5,
	}
	if err := d.Ingest(bad); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "rejection", func() bool {
		return d.ctr.rejected.Load() == 1
	})
	if reg.TotalN() != 0 {
		t.Error("invalid datapoint must not reach the estimators")
	}
}

// TestDaemonConcurrentIngestAndScrape is the package's -race workout: ≥4
// ingestion workers fold while writers hammer Ingest, a goroutine registers
// policies mid-stream, and readers scrape the live HTTP API.
func TestDaemonConcurrentIngestAndScrape(t *testing.T) {
	reg := newTestRegistry(t, 4)
	d, err := New(Config{Workers: 4, QueueSize: 128, Addr: "127.0.0.1:0"}, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	base := d.URL()

	const writers, perWriter = 4, 250
	ds := testDataset(1000, 41)
	var wg sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := d.Ingest(ds[wr*perWriter+i]); err != nil {
					t.Errorf("ingest: %v", err)
					return
				}
			}
		}(wr)
	}
	// Register a policy while ingestion is in full swing.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := reg.Register("latecomer", policy.Constant{A: 0}); err != nil {
			t.Errorf("register: %v", err)
		}
	}()
	// Scrape the API concurrently.
	for sc := 0; sc < 2; sc++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				for _, path := range []string{"/estimates", "/metrics", "/policies", "/healthz"} {
					resp, err := http.Get(base + path)
					if err != nil {
						t.Errorf("GET %s: %v", path, err)
						return
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	waitFor(t, 10*time.Second, "all folds", func() bool {
		return reg.TotalN() == writers*perWriter
	})
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The latecomer saw only a suffix of the stream.
	late, ok := reg.Estimate("latecomer", 0.05)
	if !ok {
		t.Fatal("latecomer missing")
	}
	if late.N > int64(writers*perWriter) {
		t.Errorf("latecomer n = %d", late.N)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, nil); err == nil {
		t.Error("nil registry should fail")
	}
	reg, err := NewRegistry(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Workers: 8}, reg); err == nil {
		t.Error("more workers than shards should fail")
	}
	if _, err := NewRegistry(0, 0); err == nil {
		t.Error("zero shards should fail")
	}
}

func TestRegistryValidation(t *testing.T) {
	reg, err := NewRegistry(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("", policy.Constant{A: 0}); err == nil {
		t.Error("empty name should fail")
	}
	if err := reg.Register("p", nil); err == nil {
		t.Error("nil policy should fail")
	}
	if err := reg.Register("p", policy.Constant{A: 0}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("p", policy.Constant{A: 1}); err == nil {
		t.Error("duplicate name should fail")
	}
	if _, ok := reg.Estimate("nope", 0.05); ok {
		t.Error("unknown policy should report !ok")
	}
	if names := reg.Names(); len(names) != 1 || names[0] != "p" {
		t.Errorf("names = %v", names)
	}
}
