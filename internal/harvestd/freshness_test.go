package harvestd

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/harvester"
	"repro/internal/obs"
)

// TestFreshnessMatchesOfflineRecompute is the acceptance check for the
// pipeline watermarks: feed a known log through a fixed-clock daemon,
// recompute the watermarks offline from the same records, and require the
// /freshness report to agree exactly. Under a fixed clock every
// ingest→fold lag is exactly zero, so the histogram sum must be zero and
// the quantiles must sit inside the first bucket.
func TestFreshnessMatchesOfflineRecompute(t *testing.T) {
	const n = 120
	logText := genNginxLog(n, 7)

	// Offline recompute: the per-line harvest the source performs, done by
	// hand. Every valid line yields one datapoint whose Seq is its 1-based
	// line number.
	var wantFolded, wantMaxSeq int64
	for i, line := range strings.Split(strings.TrimSpace(logText), "\n") {
		e, err := harvester.ParseNginxLine(line)
		if err != nil {
			continue
		}
		if _, ok, err := harvester.EntryToTypedDatapoint(e, 1); err == nil && ok {
			wantFolded++
			wantMaxSeq = int64(i + 1)
		}
	}
	if wantFolded == 0 {
		t.Fatal("offline recompute harvested nothing")
	}

	reg := newTestRegistry(t, 2)
	d, err := New(Config{Workers: 2, Clock: &obs.FixedClock{T: time.Unix(5000, 0)}}, reg)
	if err != nil {
		t.Fatal(err)
	}
	d.AddSource(&NginxSource{R: strings.NewReader(logText)})
	if err := d.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Shutdown(context.Background()) })
	waitFor(t, 10*time.Second, "folds", func() bool { return d.ctr.folded.Load() == wantFolded })

	rep := d.FreshnessNow()
	if rep.Version != FreshnessVersion {
		t.Errorf("version = %d, want %d", rep.Version, FreshnessVersion)
	}
	if len(rep.Sources) != 1 {
		t.Fatalf("sources = %d, want 1 (%+v)", len(rep.Sources), rep.Sources)
	}
	sf := rep.Sources[0]
	if sf.Source != "nginx:<reader>" {
		t.Errorf("source = %q", sf.Source)
	}
	if sf.Ingested != wantFolded || sf.Folded != wantFolded || sf.Behind != 0 {
		t.Errorf("ingested/folded/behind = %d/%d/%d, want %d/%d/0",
			sf.Ingested, sf.Folded, sf.Behind, wantFolded, wantFolded)
	}
	if sf.MaxSeqIngested != wantMaxSeq || sf.MaxSeqFolded != wantMaxSeq {
		t.Errorf("max seq ingested/folded = %d/%d, want %d",
			sf.MaxSeqIngested, sf.MaxSeqFolded, wantMaxSeq)
	}
	// The nginx source emits one-point batches, so lag samples == folds;
	// the fixed clock pins every lag to zero.
	if sf.LagCount != uint64(wantFolded) {
		t.Errorf("lag count = %d, want %d", sf.LagCount, wantFolded)
	}
	if sf.LagSumSeconds != 0 {
		t.Errorf("lag sum = %v, want 0", sf.LagSumSeconds)
	}
	if firstBucket := obs.DefLatencyBuckets()[0]; sf.LagP50Seconds > firstBucket || sf.LagP99Seconds > firstBucket {
		t.Errorf("lag quantiles p50=%v p99=%v exceed the first bucket %v",
			sf.LagP50Seconds, sf.LagP99Seconds, firstBucket)
	}
	if ms := time.Unix(5000, 0).UnixMilli(); sf.LastIngestUnixMilli != ms || sf.LastFoldUnixMilli != ms {
		t.Errorf("last ingest/fold = %d/%d, want %d", sf.LastIngestUnixMilli, sf.LastFoldUnixMilli, ms)
	}
	if rep.WatermarkSeq != wantMaxSeq {
		t.Errorf("watermark seq = %d, want %d", rep.WatermarkSeq, wantMaxSeq)
	}
	if rep.WatermarkAgeSeconds != 0 {
		t.Errorf("watermark age = %v, want 0 under a fixed clock", rep.WatermarkAgeSeconds)
	}
	if rep.Behind != 0 {
		t.Errorf("behind = %d, want 0 after drain", rep.Behind)
	}
}

// TestFreshnessEndpoint exercises the HTTP surface: the /freshness payload
// decodes back into a FreshnessReport, the push path appears as its own
// source, and two reads of unchanged state are byte-identical.
func TestFreshnessEndpoint(t *testing.T) {
	d, srv := startTestDaemon(t, Config{Clock: &obs.FixedClock{T: time.Unix(1000, 0)}})
	logText := genNginxLog(40, 9)
	for _, line := range strings.Split(strings.TrimSpace(logText), "\n") {
		e, err := harvester.ParseNginxLine(line)
		if err != nil {
			t.Fatal(err)
		}
		dp, ok, err := harvester.EntryToTypedDatapoint(e, 1)
		if err != nil || !ok {
			t.Fatalf("line unusable: %v", err)
		}
		if err := d.Ingest(dp); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "folds", func() bool { return d.ctr.folded.Load() == 40 })

	code, body := get(t, srv.URL+"/freshness")
	if code != 200 {
		t.Fatalf("freshness = %d", code)
	}
	var rep FreshnessReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("bad freshness JSON: %v\n%s", err, body)
	}
	if rep.Version != FreshnessVersion || rep.ShardID == "" {
		t.Errorf("version/shard = %d/%q", rep.Version, rep.ShardID)
	}
	if len(rep.Sources) != 1 || rep.Sources[0].Source != pushSourceName {
		t.Fatalf("sources = %+v, want one %q source", rep.Sources, pushSourceName)
	}
	if got := rep.Sources[0].Folded; got != 40 {
		t.Errorf("push folded = %d, want 40", got)
	}
	if _, again := get(t, srv.URL+"/freshness"); again != body {
		t.Errorf("freshness not byte-stable:\n%s\nvs\n%s", body, again)
	}
}
