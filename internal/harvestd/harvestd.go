// Package harvestd is the continuous harvesting daemon: the paper's
// footnote that "off-policy evaluation may incrementally update; it just
// does not intervene in a live (online) system" turned into a long-running
// service. It tails exploration-log sources (netlb access logs, cache
// decision logs, core JSONL datasets) through concurrent ingestion workers
// feeding a bounded queue, maintains a registry of candidate policies with
// sharded per-policy incremental estimators (IPS, clipped IPS, SNIPS, with
// normal and empirical-Bernstein intervals), serves live estimates over a
// small stdlib-only HTTP API, and checkpoints estimator state atomically so
// a restart resumes exactly where it left off.
//
// Data flow:
//
//	sources ──emit──▶ bounded queue ──▶ workers ──fold──▶ policy shards
//	                                                          │merge
//	HTTP /estimates /metrics ◀── read path ◀──────────────────┘
//	checkpoint (timer + shutdown) ◀── exportState
package harvestd

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Config tunes the daemon. The zero value is usable: defaults fill in.
type Config struct {
	// Workers is the number of concurrent ingestion workers (and estimator
	// shards). Default: GOMAXPROCS capped at 8.
	Workers int
	// QueueSize bounds the ingestion queue, measured in batches (a text
	// source emits one-datapoint batches; the binary source emits whole
	// decoded segments). Backpressure, default 4096.
	QueueSize int
	// Clip caps importance weights for the clipped-IPS estimator. Default
	// 10; <= 0 disables clipping.
	Clip float64
	// Delta is the default interval failure probability. Default 0.05.
	Delta float64
	// Addr is the HTTP listen address. Empty disables the API (tests can
	// still drive the daemon in-process); "127.0.0.1:0" picks a free port.
	Addr string
	// CheckpointPath enables checkpointing to this file; empty disables.
	CheckpointPath string
	// CheckpointInterval is the timer between checkpoints. Default 30s.
	CheckpointInterval time.Duration
	// PropensityFloor overrides the registry's diagnostics propensity floor
	// (0 keeps the registry default; negative disables floor accounting).
	PropensityFloor float64
	// ShardID names this daemon in fleet snapshots (GET /snapshot). Empty
	// falls back to the listen address, so a fleet of flag-identical shards
	// still reports distinct identities.
	ShardID string
	// Clock supplies timestamps for uptime, rates, and trace spans. Default
	// wall clock; tests inject obs.FixedClock for byte-stable /metrics.
	Clock obs.Clock
	// Tracer receives structured spans for the ingest→parse→fold→estimate
	// pipeline; nil disables tracing.
	Tracer *obs.Tracer
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers > 8 {
			c.Workers = 8
		}
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 4096
	}
	if c.Delta <= 0 || c.Delta >= 1 {
		c.Delta = 0.05
	}
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = 30 * time.Second
	}
	if c.Clock == nil {
		c.Clock = obs.WallClock()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// counters are the daemon's atomic vital signs, exposed via /metrics.
type counters struct {
	lines       atomic.Int64 // raw input lines/records seen
	parseErrors atomic.Int64 // unparseable lines
	rejected    atomic.Int64 // parsed but unusable (non-2xx, no propensity, ...)
	harvested   atomic.Int64 // datapoints reconstructed from derived records (cache-eviction joins)
	ingested    atomic.Int64 // datapoints enqueued
	folded      atomic.Int64 // datapoints folded into estimators
	checkpoints atomic.Int64 // successful checkpoint writes
}

// ingestBatch is the worker queue's unit: a slice of datapoints plus an
// optional release hook. Batching is what lets the binary ingest path hand
// a whole decoded segment to a worker in one channel operation instead of
// one send per record — at millions of records/sec the per-send
// synchronization would otherwise dominate. free (when non-nil) runs after
// the batch is folded, returning pooled decode buffers to the producing
// source; until then the source must not touch the slice. src and at feed
// the /freshness watermarks: which source enqueued the batch, and when.
type ingestBatch struct {
	pts  []core.Datapoint
	free func()
	src  *sourceStats
	at   time.Time
}

// Daemon is one running harvestd instance.
type Daemon struct {
	cfg     Config
	reg     *Registry
	queue   chan ingestBatch
	ctr     counters
	snapSeq atomic.Int64 // /snapshot sequence, for shard-restart detection
	start   time.Time
	obsReg  *obs.Registry
	root    *obs.Span // pipeline root span (nil without a tracer)

	sources []Source

	srcStatsMu sync.Mutex // guards the srcStats map (not the stats themselves)
	srcStats   map[string]*sourceStats

	stateMu  sync.RWMutex // guards running/draining transitions vs. Ingest
	running  bool
	draining bool

	srcCtx    context.Context
	srcCancel context.CancelFunc
	srcWG     sync.WaitGroup
	workerWG  sync.WaitGroup
	ckptDone  chan struct{}

	errMu   sync.Mutex
	srcErrs []error

	ln  net.Listener
	srv *http.Server
}

// New builds a daemon over a registry. The registry must have at least as
// many shards as the daemon has workers.
func New(cfg Config, reg *Registry) (*Daemon, error) {
	if reg == nil {
		return nil, fmt.Errorf("harvestd: nil registry")
	}
	cfg.fillDefaults()
	if reg.NumShards() < cfg.Workers {
		return nil, fmt.Errorf("harvestd: registry has %d shards for %d workers",
			reg.NumShards(), cfg.Workers)
	}
	if cfg.PropensityFloor != 0 {
		floor := cfg.PropensityFloor
		if floor < 0 {
			floor = 0
		}
		reg.SetPropensityFloor(floor)
	}
	d := &Daemon{
		cfg:      cfg,
		reg:      reg,
		queue:    make(chan ingestBatch, cfg.QueueSize),
		srcStats: make(map[string]*sourceStats),
	}
	d.initMetrics()
	return d, nil
}

// Registry returns the daemon's policy registry.
func (d *Daemon) Registry() *Registry { return d.reg }

// Metrics returns the daemon's obs registry (for composing extra
// instruments onto the same /metrics page).
func (d *Daemon) Metrics() *obs.Registry { return d.obsReg }

// AddSource wires a source; call before Start.
func (d *Daemon) AddSource(s Source) {
	d.sources = append(d.sources, s)
}

// Start resumes from the checkpoint (when one exists), launches the
// ingestion workers, sources, checkpoint timer, and HTTP API, then returns.
// The daemon runs until Shutdown.
func (d *Daemon) Start(ctx context.Context) error {
	d.stateMu.Lock()
	defer d.stateMu.Unlock()
	if d.running {
		return fmt.Errorf("harvestd: already started")
	}

	if d.cfg.CheckpointPath != "" {
		n, err := d.loadCheckpoint()
		switch {
		case err == nil:
			d.cfg.Logf("harvestd: resumed %d policies from %s", n, d.cfg.CheckpointPath)
		case os.IsNotExist(err):
			// First run: nothing to resume.
		default:
			return fmt.Errorf("harvestd: loading checkpoint: %w", err)
		}
	}

	// Listen before spawning anything so a bad address fails cleanly.
	if d.cfg.Addr != "" {
		ln, err := net.Listen("tcp", d.cfg.Addr)
		if err != nil {
			return fmt.Errorf("harvestd: listen %s: %w", d.cfg.Addr, err)
		}
		d.ln = ln
	}

	d.start = d.cfg.Clock.Now()
	d.srcCtx, d.srcCancel = context.WithCancel(ctx)
	d.root = d.cfg.Tracer.Start("harvestd/run", nil,
		map[string]any{"workers": d.cfg.Workers, "sources": len(d.sources)})

	for i := 0; i < d.cfg.Workers; i++ {
		d.workerWG.Add(1)
		go d.worker(i)
	}

	for _, s := range d.sources {
		d.srcWG.Add(1)
		sink := d.sinkFor(s.Name())
		go func(s Source, sink *Sink) {
			defer d.srcWG.Done()
			sp := d.cfg.Tracer.Start("source/"+s.Name(), d.root, nil)
			defer sp.End()
			if err := s.Run(d.srcCtx, sink); err != nil {
				sp.SetAttr("error", err.Error())
				d.cfg.Logf("harvestd: source %s failed: %v", s.Name(), err)
				d.errMu.Lock()
				d.srcErrs = append(d.srcErrs, err)
				d.errMu.Unlock()
			}
		}(s, sink)
	}

	d.ckptDone = make(chan struct{})
	if d.cfg.CheckpointPath != "" {
		go d.checkpointLoop()
	} else {
		close(d.ckptDone)
	}

	if d.ln != nil {
		d.srv = &http.Server{Handler: d.handler()}
		go func(srv *http.Server, ln net.Listener) { _ = srv.Serve(ln) }(d.srv, d.ln)
		d.cfg.Logf("harvestd: serving on http://%s", d.ln.Addr())
	}

	d.running = true
	return nil
}

// Addr returns the API's host:port (empty when the API is disabled or the
// daemon has not started).
func (d *Daemon) Addr() string {
	d.stateMu.RLock()
	defer d.stateMu.RUnlock()
	if d.ln == nil {
		return ""
	}
	return d.ln.Addr().String()
}

// URL returns the API's base URL (after Start).
func (d *Daemon) URL() string { return "http://" + d.Addr() }

// worker drains the queue, folding each datapoint into its own shard of
// every registered policy. One span covers the worker's whole life (fold
// stage of the pipeline); per-datapoint spans would dwarf the work traced.
func (d *Daemon) worker(id int) {
	defer d.workerWG.Done()
	sp := d.cfg.Tracer.Start("fold/worker", d.root, map[string]any{"id": id})
	var folded int64
	defer func() {
		sp.SetAttr("folded", folded)
		sp.End()
	}()
	for bt := range d.queue {
		nFolded, maxSeq := 0, int64(-1)
		for i := range bt.pts {
			dp := &bt.pts[i]
			if dp.Validate() != nil {
				d.ctr.rejected.Add(1)
				continue
			}
			d.reg.Fold(id, dp)
			d.ctr.folded.Add(1)
			folded++
			nFolded++
			if dp.Seq > maxSeq {
				maxSeq = dp.Seq
			}
		}
		if bt.free != nil {
			bt.free()
		}
		if bt.src != nil {
			now := d.cfg.Clock.Now()
			bt.src.noteFolded(nFolded, maxSeq, now, now.Sub(bt.at).Seconds())
		}
	}
}

// enqueue is the single entry to the worker queue: it stamps the batch
// with the source's stats and the injected clock, scans the high-water Seq
// while the producer still owns the points, and blocks for backpressure.
// On ctx cancellation the batch is released unsent.
func (d *Daemon) enqueue(ctx context.Context, pts []core.Datapoint, free func(), src *sourceStats) error {
	at := d.cfg.Clock.Now()
	maxSeq := maxBatchSeq(pts)
	select {
	case d.queue <- ingestBatch{pts: pts, free: free, src: src, at: at}:
		d.ctr.ingested.Add(int64(len(pts)))
		if src != nil {
			src.noteIngested(len(pts), maxSeq, at)
		}
		return nil
	case <-ctx.Done():
		if free != nil {
			free()
		}
		return ctx.Err()
	}
}

// pushSourceName labels datapoints arriving outside a configured Source —
// the /ingest endpoint and in-process Ingest calls — in /freshness and the
// lag histogram.
const pushSourceName = "push"

// Ingest offers one datapoint directly to the pipeline (the /ingest
// endpoint and in-process wiring use this). It blocks for backpressure and
// fails once shutdown has begun.
func (d *Daemon) Ingest(dp core.Datapoint) error {
	d.stateMu.RLock()
	defer d.stateMu.RUnlock()
	if !d.running || d.draining {
		return fmt.Errorf("harvestd: not accepting data")
	}
	sink := d.sinkFor(pushSourceName)
	if err := d.enqueue(d.srcCtx, []core.Datapoint{dp}, nil, sink.src); err != nil {
		return fmt.Errorf("harvestd: shutting down")
	}
	return nil
}

// checkpointLoop writes checkpoints on a timer until shutdown.
func (d *Daemon) checkpointLoop() {
	defer close(d.ckptDone)
	t := time.NewTicker(d.cfg.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := d.Checkpoint(); err != nil {
				d.cfg.Logf("harvestd: checkpoint failed: %v", err)
			}
		case <-d.srcCtx.Done():
			return
		}
	}
}

// SourceErrors returns errors from sources that failed so far.
func (d *Daemon) SourceErrors() []error {
	d.errMu.Lock()
	defer d.errMu.Unlock()
	return append([]error(nil), d.srcErrs...)
}

// Estimates reports every policy's current estimate at the daemon's
// default confidence.
func (d *Daemon) Estimates() []PolicyEstimate {
	return d.reg.Estimates(d.cfg.Delta)
}

// Shutdown drains and stops the daemon: sources stop first, the API stops
// accepting writes, in-flight queue items are folded, a final checkpoint is
// written, and the HTTP listener closes. It is the SIGTERM path — after it
// returns, estimator state is durably on disk (when checkpointing is on).
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.stateMu.Lock()
	if !d.running {
		d.stateMu.Unlock()
		return nil
	}
	d.draining = true
	d.stateMu.Unlock()

	// 1. Stop the producers: cancel sources and wait them out; stop the
	// HTTP server so no /ingest handler is mid-Emit (readers also stop —
	// estimates are frozen from here, which keeps the final checkpoint
	// authoritative).
	d.srcCancel()
	d.srcWG.Wait()
	var srvErr error
	if d.srv != nil {
		srvErr = d.srv.Shutdown(ctx)
	}

	// 2. Drain: close the queue and let the workers fold what's in flight.
	close(d.queue)
	d.workerWG.Wait()
	<-d.ckptDone

	// 3. Persist the drained state.
	var ckptErr error
	if d.cfg.CheckpointPath != "" {
		ckptErr = d.Checkpoint()
	}

	d.stateMu.Lock()
	d.running = false
	d.stateMu.Unlock()
	d.root.End()

	if ckptErr != nil {
		return fmt.Errorf("harvestd: final checkpoint: %w", ckptErr)
	}
	return srvErr
}
