package harvestd

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/lbsim"
	"repro/internal/ope"
	"repro/internal/stats"
)

// testDataset builds a randomized-LB exploration set.
func testDataset(n int, seed int64) core.Dataset {
	r := stats.NewRand(seed)
	ds := make(core.Dataset, n)
	for i := range ds {
		conns := []int{r.Intn(10), r.Intn(10), r.Intn(10)}
		a := core.Action(r.Intn(3))
		p := 1.0 / 3
		if r.Intn(4) == 0 { // occasional skew so clipping has bite
			p = 0.05
		}
		ds[i] = core.Datapoint{
			Context:    lbsim.BuildContext(conns, 0, 1),
			Action:     a,
			Reward:     0.1 + 0.01*float64(conns[a]) + 0.02*r.Float64(),
			Propensity: p,
		}
	}
	return ds
}

func foldAll(t *testing.T, ds core.Dataset, pol core.Policy, clip float64) *Accum {
	t.Helper()
	var acc Accum
	for i := range ds {
		pi := core.ActionProb(pol, &ds[i].Context, ds[i].Action)
		acc.Fold(pi, ds[i].Propensity, ds[i].Reward, clip, 0)
	}
	return &acc
}

func TestAccumAgreesWithBatchEstimators(t *testing.T) {
	ds := testDataset(4000, 11)
	pol := lbsim.LeastLoaded{}
	const clip = 5.0
	acc := foldAll(t, ds, pol, clip)
	pe := acc.Estimate("p", 0.05)

	ips, err := (ope.IPS{}).Estimate(pol, ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pe.IPS.Value-ips.Value) > 1e-9 || math.Abs(pe.IPS.StdErr-ips.StdErr) > 1e-9 {
		t.Errorf("ips %v±%v != batch %v±%v", pe.IPS.Value, pe.IPS.StdErr, ips.Value, ips.StdErr)
	}
	clipped, err := (ope.ClippedIPS{Max: clip}).Estimate(pol, ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pe.ClippedIPS.Value-clipped.Value) > 1e-9 || math.Abs(pe.ClippedIPS.StdErr-clipped.StdErr) > 1e-9 {
		t.Errorf("clipped %v±%v != batch %v±%v",
			pe.ClippedIPS.Value, pe.ClippedIPS.StdErr, clipped.Value, clipped.StdErr)
	}
	snips, err := (ope.SNIPS{}).Estimate(pol, ds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pe.SNIPS.Value-snips.Value) > 1e-9 || math.Abs(pe.SNIPS.StdErr-snips.StdErr) > 1e-6 {
		t.Errorf("snips %v±%v != batch %v±%v", pe.SNIPS.Value, pe.SNIPS.StdErr, snips.Value, snips.StdErr)
	}
	if pe.N != int64(len(ds)) {
		t.Errorf("n = %d", pe.N)
	}
	if pe.MatchRate <= 0 || pe.MatchRate > 1 {
		t.Errorf("match rate = %v", pe.MatchRate)
	}
}

func TestAccumMergeEqualsSingleStream(t *testing.T) {
	ds := testDataset(3000, 12)
	pol := lbsim.LeastLoaded{}
	whole := foldAll(t, ds, pol, 5)
	shards := make([]Accum, 4)
	for i := range ds {
		pi := core.ActionProb(pol, &ds[i].Context, ds[i].Action)
		shards[i%4].Fold(pi, ds[i].Propensity, ds[i].Reward, 5, 0)
	}
	var merged Accum
	for i := range shards {
		merged.Merge(&shards[i])
	}
	a, b := whole.Estimate("p", 0.05), merged.Estimate("p", 0.05)
	if a.N != b.N ||
		math.Abs(a.IPS.Value-b.IPS.Value) > 1e-9 ||
		math.Abs(a.IPS.StdErr-b.IPS.StdErr) > 1e-9 ||
		math.Abs(a.ClippedIPS.Value-b.ClippedIPS.Value) > 1e-9 ||
		math.Abs(a.SNIPS.Value-b.SNIPS.Value) > 1e-9 ||
		math.Abs(a.SNIPS.StdErr-b.SNIPS.StdErr) > 1e-9 {
		t.Errorf("merged %+v != whole %+v", b, a)
	}
	// Range tracking must merge too (EB width depends on it).
	if whole.MaxTerm != merged.MaxTerm || whole.MinTerm != merged.MinTerm {
		t.Errorf("term range lost in merge")
	}
}

func TestAccumIntervalsContainTruthOnSyntheticData(t *testing.T) {
	// Uniform logging over 2 actions, reward depends only on the action:
	// r = 1 for action 0, 0 for action 1. The value of always-0 is exactly 1.
	r := stats.NewRand(9)
	var acc Accum
	for i := 0; i < 5000; i++ {
		a := core.Action(r.Intn(2))
		reward := 0.0
		if a == 0 {
			reward = 1 + 0.1*r.NormFloat64() // noisy but centered on 1
		}
		pi := 0.0
		if a == 0 {
			pi = 1
		}
		acc.Fold(pi, 0.5, reward, 0, 0)
	}
	pe := acc.Estimate("always-0", 0.05)
	if !(pe.IPS.Lo <= 1 && 1 <= pe.IPS.Hi) {
		t.Errorf("normal CI [%v, %v] misses truth 1", pe.IPS.Lo, pe.IPS.Hi)
	}
	if !pe.IPS.EBOK {
		t.Fatalf("EB interval should be available: %+v", pe.IPS)
	}
	if !(pe.IPS.EBLo <= 1 && 1 <= pe.IPS.EBHi) {
		t.Errorf("EB interval [%v, %v] misses truth 1", pe.IPS.EBLo, pe.IPS.EBHi)
	}
	// Bernstein is the conservative one.
	if pe.IPS.EBHi-pe.IPS.EBLo < pe.IPS.Hi-pe.IPS.Lo {
		t.Errorf("EB interval narrower than normal: eb=%v normal=%v",
			pe.IPS.EBHi-pe.IPS.EBLo, pe.IPS.Hi-pe.IPS.Lo)
	}
	// SNIPS ≈ 1 as well (self-normalization over w ∈ {0,2}).
	if math.Abs(pe.SNIPS.Value-1) > 0.02 {
		t.Errorf("snips = %v, want ≈1", pe.SNIPS.Value)
	}
}

// TestAccumDiagnosticsAgreeWithOfflineRecompute folds a skewed dataset and
// checks every diagnostics field against a direct second pass over the raw
// weights — the acceptance check that /diagnostics reports the same
// estimator health an offline audit would compute.
func TestAccumDiagnosticsAgreeWithOfflineRecompute(t *testing.T) {
	ds := testDataset(4000, 21)
	pol := lbsim.LeastLoaded{}
	const (
		clip  = 5.0
		floor = 0.1 // above the 0.05 skewed propensities, so floor hits occur
	)
	var acc Accum
	for i := range ds {
		pi := core.ActionProb(pol, &ds[i].Context, ds[i].Action)
		acc.Fold(pi, ds[i].Propensity, ds[i].Reward, clip, floor)
	}
	diag := acc.Diagnostics("p")

	// Offline recompute from the raw data.
	var (
		n, matches, clipped, floorHits int64
		sumW, sumWSq, maxW             float64
	)
	for i := range ds {
		pi := core.ActionProb(pol, &ds[i].Context, ds[i].Action)
		w, ok := core.ImportanceWeight(pi, ds[i].Propensity)
		if !ok {
			continue
		}
		n++
		if pi > 0 {
			matches++
		}
		if ds[i].Propensity < floor {
			floorHits++
		}
		if w > clip {
			clipped++
		}
		sumW += w
		sumWSq += w * w
		maxW = math.Max(maxW, w)
	}
	if n == 0 || clipped == 0 || floorHits == 0 {
		t.Fatalf("degenerate dataset: n=%d clipped=%d floorHits=%d", n, clipped, floorHits)
	}
	ess := sumW * sumW / sumWSq
	nf := float64(n)
	if diag.N != n || diag.Matches != matches {
		t.Errorf("n/matches = %d/%d, want %d/%d", diag.N, diag.Matches, n, matches)
	}
	if math.Abs(diag.ESS-ess) > 1e-9 {
		t.Errorf("ess = %v, want %v", diag.ESS, ess)
	}
	if math.Abs(diag.ESSFraction-ess/nf) > 1e-12 {
		t.Errorf("ess fraction = %v, want %v", diag.ESSFraction, ess/nf)
	}
	if diag.MaxWeight != maxW {
		t.Errorf("max weight = %v, want %v", diag.MaxWeight, maxW)
	}
	if math.Abs(diag.MeanWeight-sumW/nf) > 1e-12 {
		t.Errorf("mean weight = %v, want %v", diag.MeanWeight, sumW/nf)
	}
	if diag.ClippedN != clipped || math.Abs(diag.ClipFraction-float64(clipped)/nf) > 1e-12 {
		t.Errorf("clipped = %d (%v), want %d (%v)",
			diag.ClippedN, diag.ClipFraction, clipped, float64(clipped)/nf)
	}
	if diag.FloorHits != floorHits || math.Abs(diag.FloorFraction-float64(floorHits)/nf) > 1e-12 {
		t.Errorf("floor hits = %d (%v), want %d (%v)",
			diag.FloorHits, diag.FloorFraction, floorHits, float64(floorHits)/nf)
	}

	// Diagnostics must survive sharding exactly (same sums, same merge).
	shards := make([]Accum, 3)
	for i := range ds {
		pi := core.ActionProb(pol, &ds[i].Context, ds[i].Action)
		shards[i%3].Fold(pi, ds[i].Propensity, ds[i].Reward, clip, floor)
	}
	var merged Accum
	for i := range shards {
		merged.Merge(&shards[i])
	}
	md := merged.Diagnostics("p")
	if md.ClippedN != diag.ClippedN || md.FloorHits != diag.FloorHits ||
		math.Abs(md.ESS-diag.ESS) > 1e-9 || md.MaxWeight != diag.MaxWeight {
		t.Errorf("sharded diagnostics %+v != single-stream %+v", md, diag)
	}

	var empty Accum
	ed := empty.Diagnostics("e")
	if ed.N != 0 || ed.ESS != 0 || ed.ESSFraction != 0 {
		t.Errorf("empty diagnostics = %+v", ed)
	}
}

func TestAccumEmptyAndSingleton(t *testing.T) {
	var acc Accum
	pe := acc.Estimate("p", 0.05)
	if pe.N != 0 || pe.IPS.Value != 0 || pe.IPS.EBOK {
		t.Errorf("empty estimate = %+v", pe)
	}
	acc.Fold(1, 0.5, 3, 0, 0)
	pe = acc.Estimate("p", 0.05)
	if pe.N != 1 || pe.IPS.Value != 6 {
		t.Errorf("singleton = %+v", pe)
	}
	if pe.IPS.Lo != pe.IPS.Hi {
		t.Errorf("singleton CI should collapse to the point: %+v", pe.IPS)
	}
	if pe.IPS.EBOK {
		t.Error("EB interval needs n >= 2")
	}
}
