package harvestd

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harvester"
	"repro/internal/lbsim"
	"repro/internal/obs"
	"repro/internal/policy"
)

// startTestDaemon brings up a daemon (no listener) and an httptest server
// over its handler, both cleaned up with the test.
func startTestDaemon(t *testing.T, cfg Config) (*Daemon, *httptest.Server) {
	t.Helper()
	reg := newTestRegistry(t, 2)
	cfg.Workers = 2
	d, err := New(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Shutdown(context.Background()) })
	srv := httptest.NewServer(d.handler())
	t.Cleanup(srv.Close)
	return d, srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerHealthz(t *testing.T) {
	_, srv := startTestDaemon(t, Config{})
	code, body := get(t, srv.URL+"/healthz")
	if code != 200 || !strings.HasPrefix(body, "ok") {
		t.Errorf("healthz = %d %q", code, body)
	}
}

func TestServerIngestAndEstimates(t *testing.T) {
	d, srv := startTestDaemon(t, Config{})
	logText := genNginxLog(100, 51)

	resp, err := http.Post(srv.URL+"/ingest?format=nginx", "text/plain", strings.NewReader(logText))
	if err != nil {
		t.Fatal(err)
	}
	var summary map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&summary); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if summary["ingested"] != 100 || summary["lines"] != 100 {
		t.Fatalf("ingest summary = %v", summary)
	}

	waitFor(t, 10*time.Second, "folds", func() bool { return d.reg.TotalN() == 100 })

	// Full listing.
	code, body := get(t, srv.URL+"/estimates")
	if code != 200 {
		t.Fatalf("estimates = %d", code)
	}
	var ests []PolicyEstimate
	if err := json.Unmarshal([]byte(body), &ests); err != nil {
		t.Fatalf("bad estimates JSON: %v\n%s", err, body)
	}
	if len(ests) != 3 {
		t.Fatalf("got %d estimates", len(ests))
	}
	for _, pe := range ests {
		if pe.N != 100 {
			t.Errorf("%s n = %d", pe.Policy, pe.N)
		}
		if pe.IPS.Lo > pe.IPS.Value || pe.IPS.Hi < pe.IPS.Value {
			t.Errorf("%s interval [%v,%v] excludes point %v", pe.Policy, pe.IPS.Lo, pe.IPS.Hi, pe.IPS.Value)
		}
	}

	// Single-policy filter with a custom delta widens the interval.
	code, body = get(t, srv.URL+"/estimates?policy=always-0&delta=0.001")
	if code != 200 {
		t.Fatalf("filtered estimates = %d", code)
	}
	var one PolicyEstimate
	if err := json.Unmarshal([]byte(body), &one); err != nil {
		t.Fatal(err)
	}
	wide := one.IPS.Hi - one.IPS.Lo
	narrow := ests[0].IPS.Hi - ests[0].IPS.Lo
	if one.Policy != "always-0" || wide <= narrow {
		t.Errorf("delta=0.001 interval %v should exceed default %v", wide, narrow)
	}

	if code, _ := get(t, srv.URL+"/estimates?policy=nope"); code != 404 {
		t.Errorf("unknown policy = %d, want 404", code)
	}
	if code, _ := get(t, srv.URL+"/estimates?delta=2"); code != 400 {
		t.Errorf("bad delta = %d, want 400", code)
	}
}

func TestServerIngestJSONLAndRejects(t *testing.T) {
	d, srv := startTestDaemon(t, Config{})
	ds := testDataset(50, 52)
	var buf strings.Builder
	if err := ds.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String() + "this is not json\n"
	resp, err := http.Post(srv.URL+"/ingest?format=jsonl", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var summary map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&summary); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if summary["ingested"] != 50 || summary["rejected"] != 1 {
		t.Fatalf("summary = %v", summary)
	}
	waitFor(t, 10*time.Second, "folds", func() bool { return d.reg.TotalN() == 50 })

	resp, err = http.Post(srv.URL+"/ingest?format=martian", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("unknown format = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /ingest = %d, want 405", resp.StatusCode)
	}
}

func TestServerMetrics(t *testing.T) {
	d, srv := startTestDaemon(t, Config{})
	logText := genNginxLog(20, 53)
	resp, err := http.Post(srv.URL+"/ingest", "text/plain",
		strings.NewReader(logText+"garbage line\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitFor(t, 10*time.Second, "folds", func() bool { return d.reg.TotalN() == 20 })

	code, body := get(t, srv.URL+"/metrics")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE harvestd_lines_total counter",
		"# HELP harvestd_lines_total",
		"harvestd_lines_total 21",
		"harvestd_parse_errors_total 1",
		"harvestd_folded_total 20",
		"harvestd_ingested_total 20",
		"harvestd_queue_capacity",
		"harvestd_ingest_rate_lines_per_second",
		"# TYPE harvestd_policy_ess gauge",
		`harvestd_policy_n{policy="always-0"} 20`,
		`harvestd_policy_ess{policy="always-0"}`,
		`harvestd_policy_max_weight{policy="leastloaded"} 2`,
		`harvestd_policy_clip_fraction{policy="always-0"} 0`,
		`harvestd_policy_mean{estimator="ips",policy="leastloaded"}`,
		"go_goroutines",
		"go_heap_alloc_bytes",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// stripVolatile drops the go_* runtime series, whose values legitimately
// change between scrapes; everything else must be byte-stable under a
// fixed clock.
func stripVolatile(body string) string {
	var keep []string
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "go_") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// TestServerMetricsDeterministic is the regression test for the old
// hand-rolled renderer's map-iteration bug: with a fixed clock, two
// consecutive scrapes of unchanged estimator state must be byte-identical,
// including the per-policy per-estimator series that used to come out in
// random order.
func TestServerMetricsDeterministic(t *testing.T) {
	d, srv := startTestDaemon(t, Config{Clock: &obs.FixedClock{T: time.Unix(1000, 0)}})
	resp, err := http.Post(srv.URL+"/ingest", "text/plain", strings.NewReader(genNginxLog(30, 54)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitFor(t, 10*time.Second, "folds", func() bool { return d.reg.TotalN() == 30 })

	code, first := get(t, srv.URL+"/metrics")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	for i := 0; i < 5; i++ {
		_, again := get(t, srv.URL+"/metrics")
		if stripVolatile(again) != stripVolatile(first) {
			t.Fatalf("render %d differs:\n--- first ---\n%s\n--- again ---\n%s",
				i, stripVolatile(first), stripVolatile(again))
		}
	}
	// The estimator label values must appear in sorted order within the
	// family — the specific instability the old renderer had.
	idx := func(s string) int { return strings.Index(first, s) }
	ci, ips, sn := idx(`estimator="clipped_ips"`), idx(`estimator="ips"`), idx(`estimator="snips"`)
	if ci < 0 || ips < 0 || sn < 0 || !(ci < ips && ips < sn) {
		t.Errorf("estimator series out of sorted order: clipped_ips@%d ips@%d snips@%d", ci, ips, sn)
	}
}

// TestServerDiagnostics checks the /diagnostics endpoint against an
// offline recompute: an independent single-threaded fold over the same log
// lines must agree with the live sharded daemon on every health field.
func TestServerDiagnostics(t *testing.T) {
	d, srv := startTestDaemon(t, Config{})
	logText := genNginxLog(80, 55)
	resp, err := http.Post(srv.URL+"/ingest", "text/plain", strings.NewReader(logText))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitFor(t, 10*time.Second, "folds", func() bool { return d.reg.TotalN() == 80 })

	code, body := get(t, srv.URL+"/diagnostics")
	if code != 200 {
		t.Fatalf("diagnostics = %d", code)
	}
	var rep DiagnosticsReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("bad diagnostics JSON: %v\n%s", err, body)
	}
	if rep.Clip != d.reg.Clip() || rep.PropensityFloor != d.reg.PropensityFloor() {
		t.Errorf("settings = clip %v floor %v", rep.Clip, rep.PropensityFloor)
	}
	if len(rep.Policies) != 3 {
		t.Fatalf("got %d policies", len(rep.Policies))
	}

	// Offline recompute: re-parse the raw log and fold single-threaded.
	offline := map[string]*Accum{}
	for _, name := range d.reg.Names() {
		offline[name] = &Accum{}
	}
	pols := map[string]core.Policy{
		"always-0":    policy.Constant{A: core.Action(0)},
		"always-1":    policy.Constant{A: core.Action(1)},
		"leastloaded": lbsim.LeastLoaded{},
	}
	for _, line := range strings.Split(strings.TrimSpace(logText), "\n") {
		e, err := harvester.ParseNginxLine(line)
		if err != nil {
			t.Fatal(err)
		}
		dp, ok, err := harvester.EntryToTypedDatapoint(e, 1)
		if err != nil || !ok {
			t.Fatalf("line rejected: %v", err)
		}
		for name, pol := range pols {
			pi := core.ActionProb(pol, &dp.Context, dp.Action)
			offline[name].Fold(pi, dp.Propensity, dp.Reward, d.reg.Clip(), d.reg.PropensityFloor())
		}
	}
	for _, got := range rep.Policies {
		want := offline[got.Policy].Diagnostics(got.Policy)
		if got.N != want.N || got.Matches != want.Matches ||
			got.ClippedN != want.ClippedN || got.FloorHits != want.FloorHits {
			t.Errorf("%s counts: got %+v want %+v", got.Policy, got, want)
		}
		for _, f := range []struct {
			name     string
			got, exp float64
		}{
			{"ess", got.ESS, want.ESS},
			{"ess_fraction", got.ESSFraction, want.ESSFraction},
			{"mean_weight", got.MeanWeight, want.MeanWeight},
			{"max_weight", got.MaxWeight, want.MaxWeight},
			{"clip_fraction", got.ClipFraction, want.ClipFraction},
			{"floor_fraction", got.FloorFraction, want.FloorFraction},
		} {
			if math.Abs(f.got-f.exp) > 1e-9 {
				t.Errorf("%s %s = %v, offline recompute %v", got.Policy, f.name, f.got, f.exp)
			}
		}
	}
	// Sanity on the uniform-logging log: mean weight ≈ match_rate / 0.5.
	for _, pd := range rep.Policies {
		if pd.N != 80 {
			t.Errorf("%s n = %d", pd.Policy, pd.N)
		}
		if math.Abs(pd.MeanWeight-2*pd.MatchRate) > 1e-9 {
			t.Errorf("%s mean weight %v vs match rate %v", pd.Policy, pd.MeanWeight, pd.MatchRate)
		}
	}
}

func TestServerCheckpointEndpoint(t *testing.T) {
	// Disabled checkpointing → 409.
	_, srv := startTestDaemon(t, Config{})
	resp, err := http.Post(srv.URL+"/checkpoint", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("checkpoint without path = %d, want 409", resp.StatusCode)
	}

	// Enabled → file appears.
	path := t.TempDir() + "/ck.json"
	_, srv2 := startTestDaemon(t, Config{CheckpointPath: path})
	resp, err = http.Post(srv2.URL+"/checkpoint", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("checkpoint = %d", resp.StatusCode)
	}
	if code, _ := get(t, srv2.URL+"/checkpoint"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /checkpoint = %d, want 405", code)
	}
}
