package harvestd

// BinSource tests plus regression tests for the ingestion-path bug sweep:
// cache-log metrics double-accounting, cache-log ctx deafness, the per-poll
// timer allocation in tailReader, and strict+follow shutdown classification.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/harvester"
	"repro/internal/harvester/binrec"
)

// writeBinFile encodes ds into a fresh binrec file; segBytes > 0 lowers the
// segment-seal threshold so even short fixtures span multiple segments.
func writeBinFile(t *testing.T, path string, ds []core.Datapoint, segBytes int) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := binrec.NewEncoder(f)
	if err != nil {
		t.Fatal(err)
	}
	if segBytes > 0 {
		enc.SegmentBytes = segBytes
	}
	for i := range ds {
		if err := enc.Write(&ds[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBinSourceIngest streams a multi-segment binary file through the
// batched ingest path and checks every counter agrees with the dataset.
func TestBinSourceIngest(t *testing.T) {
	ds := benchDatapoints(100)
	for i := range ds {
		ds[i].Seq = int64(i)
	}
	path := filepath.Join(t.TempDir(), "records.bin")
	writeBinFile(t, path, ds, 256) // force many segments
	d, reg := startSourceDaemon(t, &BinSource{Path: path})
	defer d.Shutdown(context.Background())

	waitFor(t, 10*time.Second, "records folded", func() bool { return reg.TotalN() == 100 })
	if errs := d.SourceErrors(); len(errs) != 0 {
		t.Fatalf("source errors: %v", errs)
	}
	if got := d.ctr.lines.Load(); got != 100 {
		t.Errorf("lines = %d, want 100", got)
	}
	if got := d.ctr.ingested.Load(); got != 100 {
		t.Errorf("ingested = %d, want 100", got)
	}
	if got := d.ctr.rejected.Load(); got != 0 {
		t.Errorf("rejected = %d, want 0", got)
	}
	if c0, _ := reg.Estimate("always-0", 0.05); c0.N != 100 {
		t.Errorf("always-0 n = %d, want 100", c0.N)
	}
}

// TestBinSourceMatchesJSONL: the same dataset ingested through the binary
// path and the JSONL path must produce identical estimates — the codec is a
// transport, not a transform.
func TestBinSourceMatchesJSONL(t *testing.T) {
	ds := benchDatapoints(200)
	for i := range ds {
		ds[i].Seq = int64(i)
	}

	var bin bytes.Buffer
	enc, err := binrec.NewEncoder(&bin)
	if err != nil {
		t.Fatal(err)
	}
	enc.SegmentBytes = 512
	for i := range ds {
		if err := enc.Write(&ds[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	var jsonl bytes.Buffer
	jw := core.NewJSONLWriter(&jsonl)
	for i := range ds {
		if err := jw.Write(&ds[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}

	// One worker per daemon: fold order is then source order on both paths,
	// so the estimates must agree bit-for-bit (float summation is not
	// associative across shards).
	start := func(src Source) (*Daemon, *Registry) {
		t.Helper()
		reg := newTestRegistry(t, 1)
		d, err := New(Config{Workers: 1, Clip: 10}, reg)
		if err != nil {
			t.Fatal(err)
		}
		d.AddSource(src)
		if err := d.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		return d, reg
	}
	dBin, regBin := start(&BinSource{R: bytes.NewReader(bin.Bytes())})
	dJSON, regJSON := start(&JSONLSource{R: bytes.NewReader(jsonl.Bytes())})
	defer dBin.Shutdown(context.Background())
	defer dJSON.Shutdown(context.Background())
	waitFor(t, 10*time.Second, "both folded", func() bool {
		return regBin.TotalN() == 200 && regJSON.TotalN() == 200
	})
	for _, name := range regBin.Names() {
		eb, _ := regBin.Estimate(name, 0.05)
		ej, _ := regJSON.Estimate(name, 0.05)
		if eb.IPS.Value != ej.IPS.Value || eb.SNIPS.Value != ej.SNIPS.Value {
			t.Errorf("%s: bin %v/%v vs jsonl %v/%v", name,
				eb.IPS.Value, eb.SNIPS.Value, ej.IPS.Value, ej.SNIPS.Value)
		}
	}
}

// TestBinSourceFollowAppend exercises tail -f over a binary file: segments
// appended by a live writer (append framing, no duplicate header) are
// decoded and folded until shutdown.
func TestBinSourceFollowAppend(t *testing.T) {
	ds := benchDatapoints(60)
	path := filepath.Join(t.TempDir(), "records.bin")
	writeBinFile(t, path, ds[:40], 0)

	d, reg := startSourceDaemon(t, &BinSource{Path: path, Follow: true, Poll: 2 * time.Millisecond})
	defer d.Shutdown(context.Background())
	waitFor(t, 10*time.Second, "initial records", func() bool { return reg.TotalN() == 40 })

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	enc := binrec.NewAppendEncoder(f)
	for i := 40; i < 60; i++ {
		if err := enc.Write(&ds[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "appended records", func() bool { return reg.TotalN() == 60 })
	if errs := d.SourceErrors(); len(errs) != 0 {
		t.Fatalf("source errors: %v", errs)
	}
}

// TestBinSourceTornTailShutdown: shutting down a follow-mode binary source
// mid-segment (a writer was interrupted) is clean termination — counted as
// one parse error, never a source failure.
func TestBinSourceTornTailShutdown(t *testing.T) {
	ds := benchDatapoints(40)
	path := filepath.Join(t.TempDir(), "records.bin")
	writeBinFile(t, path, ds[:30], 0)

	// Append a torn segment: marker and length present, final payload bytes
	// missing — a writer interrupted mid-append.
	var seg bytes.Buffer
	enc := binrec.NewAppendEncoder(&seg)
	for i := 30; i < 40; i++ {
		if err := enc.Write(&ds[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(seg.Bytes()[:seg.Len()-3]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	d, reg := startSourceDaemon(t, &BinSource{Path: path, Follow: true, Poll: 2 * time.Millisecond})
	waitFor(t, 10*time.Second, "intact prefix folded", func() bool { return reg.TotalN() == 30 })
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if errs := d.SourceErrors(); len(errs) != 0 {
		t.Fatalf("torn tail at shutdown misclassified as source failure: %v", errs)
	}
	if got := d.ctr.parseErrors.Load(); got != 1 {
		t.Errorf("parse errors = %d, want 1 (the torn tail)", got)
	}
}

// TestBinSourceCorruption: a flipped payload byte in batch mode is a hard
// source failure (binary files are machine-written; corruption must not be
// silently skipped).
func TestBinSourceCorruption(t *testing.T) {
	ds := benchDatapoints(20)
	var buf bytes.Buffer
	enc, err := binrec.NewEncoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds {
		if err := enc.Write(&ds[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	wire[len(wire)-5] ^= 0xff // inside the single segment's payload

	d, _ := startSourceDaemon(t, &BinSource{R: bytes.NewReader(wire)})
	defer d.Shutdown(context.Background())
	waitFor(t, 10*time.Second, "corruption detected", func() bool {
		return len(d.SourceErrors()) == 1
	})
	if err := d.SourceErrors()[0]; !strings.Contains(err.Error(), "binrec") {
		t.Errorf("error %q should come from the binrec decoder", err)
	}
}

// TestCacheLogSourceCounters pins the metrics fix: every scavenged line
// (accesses and eviction decisions) is counted under lines exactly once,
// and reconstructed datapoints are counted under harvested — previously
// eviction datapoints were double-booked as input lines while the eviction
// lines themselves went uncounted.
func TestCacheLogSourceCounters(t *testing.T) {
	accesses := []cachesim.AccessRecord{
		{Time: 1, Key: "a", Size: 10, Hit: false},
		{Time: 2, Key: "b", Size: 10, Hit: false},
		{Time: 5, Key: "a", Size: 10, Hit: true},
	}
	evictions := []cachesim.EvictionRecord{{
		Time:       3,
		Chosen:     0,
		Propensity: 0.5,
		Candidates: []cachesim.Candidate{
			{Key: "a", Size: 10, LastAccess: 1, Frequency: 1, InsertedAt: 1},
			{Key: "b", Size: 10, LastAccess: 2, Frequency: 1, InsertedAt: 2},
		},
	}}
	var buf strings.Builder
	if err := harvester.WriteCacheLogs(&buf, accesses, evictions); err != nil {
		t.Fatal(err)
	}
	d, reg := startSourceDaemon(t, &CacheLogSource{R: strings.NewReader(buf.String()), Horizon: 100})
	defer d.Shutdown(context.Background())
	waitFor(t, 10*time.Second, "eviction harvested", func() bool { return reg.TotalN() == 1 })

	if got, want := d.ctr.lines.Load(), int64(len(accesses)+len(evictions)); got != want {
		t.Errorf("lines = %d, want %d (each scavenged line once)", got, want)
	}
	if got := d.ctr.harvested.Load(); got != 1 {
		t.Errorf("harvested = %d, want 1", got)
	}
	if got := d.ctr.ingested.Load(); got != 1 {
		t.Errorf("ingested = %d, want 1", got)
	}
}

// endlessAccessLog emits valid cache-log access lines forever, cancelling
// ctx after the first read so a ctx-deaf scavenge would spin unbounded.
type endlessAccessLog struct {
	cancel context.CancelFunc
	n      int
}

func (e *endlessAccessLog) Read(p []byte) (int, error) {
	if e.cancel != nil {
		e.cancel()
		e.cancel = nil
	}
	e.n++
	line := fmt.Sprintf("A %d %q 10 0\n", e.n, "k")
	return copy(p, line), nil
}

// TestCacheLogSourceCancellation pins the ctx fix: Run on an unbounded
// input must return promptly (and cleanly) once ctx is cancelled —
// previously the source ignored ctx entirely and read to EOF.
func TestCacheLogSourceCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reg := newTestRegistry(t, 2)
	d, err := New(Config{Workers: 2, Clip: 10}, reg)
	if err != nil {
		t.Fatal(err)
	}
	src := &CacheLogSource{R: &endlessAccessLog{cancel: cancel}, Horizon: 100}
	done := make(chan error, 1)
	go func() { done <- src.Run(ctx, &Sink{d: d}) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("cancelled run must not report a source failure: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("CacheLogSource.Run ignored ctx cancellation")
	}
}

// eofThenData returns io.EOF eofs times before each byte of data, forcing a
// deterministic number of tail polls without goroutines.
type eofThenData struct{ eofs int }

func (r *eofThenData) Read(p []byte) (int, error) {
	if r.eofs > 0 {
		r.eofs--
		return 0, nil // a reader may legally return 0, nil; tailReader polls
	}
	r.eofs = 3
	p[0] = 'x'
	return 1, nil
}

// TestTailReaderReusesTimer pins the poll-timer fix: every poll iteration
// used to allocate a fresh runtime timer via time.After; the reader must
// now create one timer and Reset it.
func TestTailReaderReusesTimer(t *testing.T) {
	tr := &tailReader{ctx: context.Background(), r: &eofThenData{eofs: 3}, poll: time.Microsecond}
	p := make([]byte, 16)

	if _, err := tr.Read(p); err != nil { // polls 3 times before data lands
		t.Fatal(err)
	}
	first := tr.timer
	if first == nil {
		t.Fatal("polling read did not create the reusable timer")
	}
	if _, err := tr.Read(p); err != nil { // 3 more polls
		t.Fatal(err)
	}
	if tr.timer != first {
		t.Error("tailReader allocated a new timer instead of reusing the first")
	}
}

// TestNginxSourceStrictFollowShutdown: cancelling a strict follow-mode
// source whose file ends in a torn line is clean shutdown, not a strict
// parse failure — the tail was cut by the writer racing us, not corrupt.
func TestNginxSourceStrictFollowShutdown(t *testing.T) {
	logText := genNginxLog(20, 81)
	torn := logText + logText[:len(logText)/40] // partial final line, no newline
	path := filepath.Join(t.TempDir(), "access.log")
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	d, reg := startSourceDaemon(t, &NginxSource{
		Path: path, Follow: true, Strict: true, Poll: 2 * time.Millisecond,
	})
	waitFor(t, 10*time.Second, "complete lines folded", func() bool { return reg.TotalN() == 20 })
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if errs := d.SourceErrors(); len(errs) != 0 {
		t.Fatalf("shutdown misclassified as strict parse failure: %v", errs)
	}
}

// TestNginxSourceOverLimitLine: a line beyond core.MaxRecordBytes fails the
// source with the scanner's token-too-long error (satellite of the shared
// scan-limit unification; the limit used to be a private 8 MiB literal).
func TestNginxSourceOverLimitLine(t *testing.T) {
	huge := strings.Repeat("x", 16*1024*1024+1) + "\n"
	d, _ := startSourceDaemon(t, &NginxSource{R: strings.NewReader(huge)})
	defer d.Shutdown(context.Background())
	waitFor(t, 10*time.Second, "over-limit failure", func() bool {
		return len(d.SourceErrors()) == 1
	})
	if err := d.SourceErrors()[0]; !strings.Contains(err.Error(), "token too long") {
		t.Errorf("error %q should be the scanner limit", err)
	}
}

// TestJSONLSourceOverLimitLine: same guard on the JSONL path, which reads
// through core.ReadJSONLFunc's shared limit.
func TestJSONLSourceOverLimitLine(t *testing.T) {
	huge := strings.Repeat("x", 16*1024*1024+1) + "\n"
	d, _ := startSourceDaemon(t, &JSONLSource{R: strings.NewReader(huge)})
	defer d.Shutdown(context.Background())
	waitFor(t, 10*time.Second, "over-limit failure", func() bool {
		return len(d.SourceErrors()) == 1
	})
	if err := d.SourceErrors()[0]; !strings.Contains(err.Error(), "token too long") {
		t.Errorf("error %q should be the scanner limit", err)
	}
}
