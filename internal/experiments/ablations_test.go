package experiments

import (
	"bytes"
	"testing"
)

func TestAblationEstimators(t *testing.T) {
	res, err := AblationEstimators(1, 6000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]EstimatorAblationRow{}
	for _, r := range res.Rows {
		byName[r.Estimator] = r
	}
	// DR with a fitted model should have lower stderr than plain IPS, and
	// clipping must cut variance too (that is its purpose).
	if byName["dr"].StdErr >= byName["ips"].StdErr {
		t.Errorf("dr stderr %v should beat ips %v", byName["dr"].StdErr, byName["ips"].StdErr)
	}
	if byName["ips-clip25"].StdErr >= byName["ips"].StdErr {
		t.Errorf("clipping should cut stderr: %v vs %v", byName["ips-clip25"].StdErr, byName["ips"].StdErr)
	}
	// Everything should land within a plausible error band of the truth
	// (clipping is allowed a little extra: it trades bias for variance).
	for _, r := range res.Rows {
		limit := 0.1
		if r.Estimator == "ips-clip25" {
			limit = 0.15
		}
		if r.AbsErr > limit {
			t.Errorf("%s error %v implausibly large", r.Estimator, r.AbsErr)
		}
	}
	var buf bytes.Buffer
	if _, err := res.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := AblationEstimators(1, 0, 1); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestAblationPropensity(t *testing.T) {
	res, err := AblationPropensity(2, 6000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		// True propensities are uniform (1/9): every inference method
		// should land close to the reference estimate.
		if r.AbsErr > 0.05 {
			t.Errorf("%s |Δips| = %v, want small", r.Method, r.AbsErr)
		}
	}
	// "known" is exact by construction.
	if res.Rows[0].Method != "known" || res.Rows[0].AbsErr != 0 {
		t.Errorf("known method should be exact: %+v", res.Rows[0])
	}
	var buf bytes.Buffer
	if _, err := res.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := AblationPropensity(2, 0, 1); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestAblationExploration(t *testing.T) {
	res, err := AblationExploration(3, 6000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chaos.LongestRun <= res.Plain.LongestRun {
		t.Errorf("chaos longest run %d should exceed plain %d",
			res.Chaos.LongestRun, res.Plain.LongestRun)
	}
	var buf bytes.Buffer
	if _, err := res.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := AblationExploration(3, 0, 1); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestAblationSampleWidth(t *testing.T) {
	res, err := AblationSampleWidth(4, 30000, []int{2, 5, 10}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Wider samples give the policy more leverage: hitrate should be
	// monotone (weakly) in width for the freq/size policy.
	if res.Rows[2].FreqSizeHitRate <= res.Rows[0].FreqSizeHitRate {
		t.Errorf("width 10 hitrate %v should exceed width 2 %v",
			res.Rows[2].FreqSizeHitRate, res.Rows[0].FreqSizeHitRate)
	}
	for _, r := range res.Rows {
		if r.EvictionsLogged == 0 {
			t.Errorf("width %d logged no evictions", r.SampleSize)
		}
	}
	var buf bytes.Buffer
	if _, err := res.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := AblationSampleWidth(4, 0, []int{5}, 1); err == nil {
		t.Error("requests=0 should fail")
	}
	if _, err := AblationSampleWidth(4, 100, []int{0}, 1); err == nil {
		t.Error("width=0 should fail")
	}
}
