package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/healthsim"
	"repro/internal/lbsim"
	"repro/internal/learn"
	"repro/internal/policy"
	"repro/internal/stats"
)

// ContinuousParams configures the continuous-optimization loop of §3:
// "we may want to repeat steps 1-3 to continuously optimize the system."
// Each round deploys the current policy (wrapped in ε-greedy so its traffic
// stays harvestable), harvests the round's exploration data, retrains, and
// deploys the improvement.
type ContinuousParams struct {
	Seed   int64
	Rounds int
	// Epsilon keeps every action explored in deployed rounds.
	Epsilon float64
	// Config is the load-balancing deployment.
	Config lbsim.Config
}

// DefaultContinuousParams runs five rounds on the Table 2 setup.
func DefaultContinuousParams() ContinuousParams {
	cfg := lbsim.Table2Config()
	cfg.NumRequests = 15000
	cfg.Warmup = 1500
	return ContinuousParams{Seed: 1, Rounds: 5, Epsilon: 0.2, Config: cfg}
}

// ContinuousRow is one deploy-harvest-retrain round.
type ContinuousRow struct {
	Round int
	// OnlineLatency is the deployed policy's measured mean latency this
	// round (including its ε exploration overhead).
	OnlineLatency float64
	// DataSoFar counts cumulative harvested datapoints.
	DataSoFar int
}

// ContinuousResult is the loop's trajectory.
type ContinuousResult struct {
	Params ContinuousParams
	Rows   []ContinuousRow
}

// Continuous runs the loop: round 0 deploys uniform random (the paper's
// harvestable heuristic); each later round deploys the CB policy trained on
// all data harvested so far, wrapped in ε-greedy.
func Continuous(p ContinuousParams) (*ContinuousResult, error) {
	if p.Rounds < 2 {
		return nil, fmt.Errorf("experiments: continuous needs ≥2 rounds")
	}
	if p.Epsilon <= 0 || p.Epsilon >= 1 {
		return nil, fmt.Errorf("experiments: continuous epsilon %v", p.Epsilon)
	}
	if err := p.Config.Validate(); err != nil {
		return nil, err
	}
	root := stats.NewRand(p.Seed)
	var all core.Dataset
	var current core.Policy = policy.UniformRandom{R: stats.Split(root)}
	res := &ContinuousResult{Params: p}
	for round := 0; round < p.Rounds; round++ {
		run, err := lbsim.Run(p.Config, current, root.Int63(), true)
		if err != nil {
			return nil, fmt.Errorf("experiments: continuous round %d: %w", round, err)
		}
		all = append(all, run.Exploration...)
		res.Rows = append(res.Rows, ContinuousRow{
			Round:         round,
			OnlineLatency: run.MeanLatency,
			DataSoFar:     len(all),
		})
		cb, err := lbsim.FitCBPolicy(all)
		if err != nil {
			return nil, fmt.Errorf("experiments: continuous retrain %d: %w", round, err)
		}
		current = &policy.EpsilonGreedy{Base: cb, Epsilon: p.Epsilon, R: stats.Split(root)}
	}
	return res, nil
}

// WriteTo renders the loop trajectory.
func (r *ContinuousResult) WriteTo(w io.Writer) (int64, error) {
	var total int64
	c, err := fmt.Fprintf(w, "Continuous optimization loop (§3 steps 1-3 repeated, eps=%.2g)\n%-8s %-16s %s\n",
		r.Params.Epsilon, "round", "online latency", "cumulative data")
	total += int64(c)
	if err != nil {
		return total, err
	}
	for _, row := range r.Rows {
		c, err := fmt.Fprintf(w, "%-8d %-16.3f %d\n", row.Round, row.OnlineLatency, row.DataSoFar)
		total += int64(c)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// DriftParams configures the A2-violation study of §5: "A2 is violated,
// for example, when the workload or environment changes. Like prior work,
// we can address this by using incremental learning algorithms that
// continuously update the policy."
type DriftParams struct {
	Seed int64
	// PhaseN episodes are drawn per phase; the environment changes
	// between phases (reboot costs collapse, shifting optimal waits).
	PhaseN int
	// Before/After are the two environment configurations.
	Before, After healthsim.Config
}

// DefaultDriftParams shifts from expensive reboots (waiting pays) to cheap
// reboots (waiting wastes).
func DefaultDriftParams() DriftParams {
	before := healthsim.DefaultConfig()
	after := healthsim.DefaultConfig()
	after.RebootBase = 1
	after.RebootPerSKU = 0.2
	return DriftParams{Seed: 1, PhaseN: 8000, Before: before, After: after}
}

// DriftResult compares a frozen policy against an incremental learner
// across the environment change.
type DriftResult struct {
	Params DriftParams
	// StaticPhase1/2: mean downtime of the phase-1-trained frozen policy
	// in each phase. IncrementalPhase2: the continuously-updated
	// learner's phase-2 downtime. OraclePhase2: a policy trained purely
	// on phase-2 data (the adaptation ceiling).
	StaticPhase1, StaticPhase2, IncrementalPhase2, OraclePhase2 float64
}

// Drift runs the study: train on phase 1, then let the world change; the
// frozen policy degrades while the incremental learner keeps updating
// through phase 2 and recovers most of the gap.
func Drift(p DriftParams) (*DriftResult, error) {
	if p.PhaseN <= 0 {
		return nil, fmt.Errorf("experiments: drift PhaseN %d", p.PhaseN)
	}
	root := stats.NewRand(p.Seed)
	gen1, err := healthsim.NewGenerator(stats.Split(root), p.Before)
	if err != nil {
		return nil, err
	}
	gen2, err := healthsim.NewGenerator(stats.Split(root), p.After)
	if err != nil {
		return nil, err
	}
	phase1 := gen1.Generate(p.PhaseN)
	phase2 := gen2.Generate(p.PhaseN)
	test2 := gen2.Generate(p.PhaseN / 2)

	// The incremental learner interacts through both phases.
	eg, err := learn.NewEpochGreedy(stats.Split(root), learn.EpochGreedyOptions{
		NumActions: healthsim.NumWaitActions,
		Dim:        gen1.Dim(),
		C:          2,
	})
	if err != nil {
		return nil, err
	}
	interact := func(ds learn.FullFeedbackDataset) error {
		for i := range ds {
			row := &ds[i]
			dist := eg.Distribution(&row.Context)
			a := eg.Act(&row.Context)
			if err := eg.Update(core.Datapoint{
				Context:    row.Context,
				Action:     a,
				Reward:     row.Rewards[a],
				Propensity: dist[a],
			}); err != nil {
				return err
			}
		}
		return nil
	}
	if err := interact(phase1); err != nil {
		return nil, err
	}

	// The static policy: batch CB on phase-1 exploration, then frozen.
	expl1 := learn.SimulateExploration(stats.Split(root), phase1)
	staticModel, err := learn.FitRewardModel(expl1, learn.FitOptions{NumActions: healthsim.NumWaitActions})
	if err != nil {
		return nil, err
	}
	static := staticModel.GreedyPolicy(false)

	res := &DriftResult{Params: p}
	test1 := gen1.Generate(p.PhaseN / 2)
	res.StaticPhase1 = -test1.MeanReward(static)

	// The world changes; the incremental learner keeps updating.
	if err := interact(phase2); err != nil {
		return nil, err
	}
	res.StaticPhase2 = -test2.MeanReward(static)
	res.IncrementalPhase2 = -test2.MeanReward(eg.GreedyPolicy())

	// Adaptation ceiling: batch CB trained purely on phase-2 data.
	expl2 := learn.SimulateExploration(stats.Split(root), phase2)
	oracleModel, err := learn.FitRewardModel(expl2, learn.FitOptions{NumActions: healthsim.NumWaitActions})
	if err != nil {
		return nil, err
	}
	res.OraclePhase2 = -test2.MeanReward(oracleModel.GreedyPolicy(false))
	return res, nil
}

// WriteTo renders the drift comparison.
func (r *DriftResult) WriteTo(w io.Writer) (int64, error) {
	s := fmt.Sprintf("A2 violation (environment drift): mean downtime in minutes\n"+
		"%-34s %.3f\n%-34s %.3f\n%-34s %.3f\n%-34s %.3f\n",
		"static policy, before drift", r.StaticPhase1,
		"static policy, after drift", r.StaticPhase2,
		"incremental learner, after drift", r.IncrementalPhase2,
		"phase-2-only oracle", r.OraclePhase2)
	n, err := io.WriteString(w, s)
	return int64(n), err
}
