package experiments

import (
	"fmt"
	"io"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/lbsim"
	"repro/internal/ope"
	"repro/internal/parallel"
	"repro/internal/policy"
)

// LongTermParams configures the §5 capstone: fixing the Table 2 blind spot
// with the two remedies the paper proposes — richer exploration (chaos
// outages make the system's failover produce long single-server runs) and
// sequence-level estimators (trajectory importance sampling reweights
// whole windows of decisions rather than single requests).
type LongTermParams struct {
	Seed int64
	// N is the number of logged requests; Horizon the trajectory window
	// length (the "twenty times in a row" scale of §5).
	N, Horizon int
	// Outages is the number of staggered chaos outages injected.
	Outages int
	// Workers bounds the scheduler's concurrency: 1 runs the serial path,
	// <1 selects runtime.NumCPU(). Results are identical for every value —
	// the two collection passes use fixed seeds and the per-request IPS
	// folds sharded accumulators in index order.
	Workers int
	// Config is the Fig. 5 deployment.
	Config lbsim.Config
}

// DefaultLongTermParams uses 20-request windows — the paper's own example
// scale ("almost never choose the same server twenty times in a row").
func DefaultLongTermParams() LongTermParams {
	return LongTermParams{
		Seed: 1, N: 40000, Horizon: 20, Outages: 10,
		Config: lbsim.TwoServerFig5(),
	}
}

// LongTermResult compares per-request IPS against trajectory-level
// estimators on the same chaos-harvested log, with sustained-deployment
// truth for reference.
type LongTermResult struct {
	Params LongTermParams
	// PlainIPS is the per-request estimate of send-to-1's latency (the
	// misleading Table 2 number). TrajIS / PDIS are per-step values from
	// the window-level estimators. Matched counts window-level matches.
	PlainIPS, TrajIS, PDIS float64
	TrajMatched            int
	// Truth is send-to-1's sustained per-request latency measured in the
	// same world (all traffic concentrated on server 1's queue model).
	Truth float64
}

// LongTerm runs the experiment: harvest a chaos-injected request stream,
// group it into fixed windows as trajectories, and evaluate "send to
// server 1 for a whole window" with sequence estimators.
func LongTerm(p LongTermParams) (*LongTermResult, error) {
	if p.N <= 0 || p.Horizon <= 1 || p.Outages <= 0 {
		return nil, fmt.Errorf("experiments: longterm params %+v", p)
	}
	if err := p.Config.Validate(); err != nil {
		return nil, err
	}
	// The chaos-harvested log and the sustained-deployment truth run are
	// independently seeded simulations, so they run as two scheduler tasks.
	var ds core.Dataset
	var truth float64
	err := parallel.Do(p.Workers,
		func() error {
			// Chaos-harvested log: outages on random servers concentrate
			// traffic.
			sched := chaos.RandomSchedule(p.Seed+1, len(p.Config.Servers), p.N, p.Outages, p.N/(2*p.Outages))
			var err error
			ds, err = chaos.Collect(p.Config, sched, p.N, p.Seed)
			if err != nil {
				return fmt.Errorf("experiments: longterm collect: %w", err)
			}
			return nil
		},
		func() error {
			// Truth in the same world: a permanent outage of every other
			// server forces all traffic through server 1's queue — the
			// sustained send-to-1 state the candidate would create.
			truthSched := make(chaos.Schedule, 0, len(p.Config.Servers)-1)
			for s := 1; s < len(p.Config.Servers); s++ {
				truthSched = append(truthSched, chaos.Outage{Server: s, Start: 0, End: p.N})
			}
			truthDS, err := chaos.Collect(p.Config, truthSched, p.N, p.Seed+2)
			if err != nil {
				return fmt.Errorf("experiments: longterm truth: %w", err)
			}
			// Skip the warmup third so the queue is in its sustained state.
			warm := truthDS[len(truthDS)/3:]
			for i := range warm {
				truth += warm[i].Reward
			}
			truth /= float64(len(warm))
			return nil
		},
	)
	if err != nil {
		return nil, err
	}
	// Group consecutive requests into fixed windows (trajectories).
	for i := range ds {
		ds[i].Tag = fmt.Sprintf("w%06d", ds[i].Seq/int64(p.Horizon))
	}
	candidate := policy.Constant{A: 0}

	// Per-request IPS over the full log, folded from per-shard harvester
	// accumulators merged in index order — identical to the serial estimate
	// for every worker count.
	plainSnap, err := parallel.ShardedIPS(p.Workers, candidate, ds)
	if err != nil {
		return nil, err
	}
	trajs := core.SplitTrajectories(ds)
	tis, err := (ope.TrajectoryIS{Gamma: 1}).EstimateTrajectories(candidate, trajs)
	if err != nil {
		return nil, err
	}

	h := float64(p.Horizon)
	// Plain trajectory IS divides by ALL windows, most of which cannot
	// match a 20-step constant sequence, so report the self-normalized
	// per-step value (ΣwG / h·Σw) — the SNIPS of sequences — which is
	// directly comparable to a per-request latency.
	trajPerStep := selfNormalizedPerStep(candidate, trajs, h, false)
	pdisPerStep := selfNormalizedPerStep(candidate, trajs, h, true)
	return &LongTermResult{
		Params:      p,
		PlainIPS:    plainSnap.Mean,
		TrajIS:      trajPerStep,
		PDIS:        pdisPerStep,
		TrajMatched: tis.Matches,
		Truth:       truth,
	}, nil
}

// selfNormalizedPerStep computes the weighted per-step return over
// trajectories: Σ w_i G_i / (h · Σ w_i), with per-decision weighting when
// perDecision is set (each step's reward weighted by its own prefix ratio,
// normalized by the prefix-weight sums).
func selfNormalizedPerStep(candidate core.Policy, trajs []core.Trajectory, h float64, perDecision bool) float64 {
	num, den := 0.0, 0.0
	for _, tr := range trajs {
		w := 1.0
		for j := range tr {
			d := &tr[j]
			// Simulation propensities are positive by construction; a
			// malformed step zeroes the trajectory weight, dropping it.
			rho, _ := core.ImportanceWeight(core.ActionProb(candidate, &d.Context, d.Action), d.Propensity)
			w *= rho
			if perDecision {
				num += w * d.Reward
				den += w
				if w == 0 {
					break
				}
				continue
			}
			if w == 0 {
				break
			}
		}
		if !perDecision && w > 0 {
			num += w * tr.Return(1)
			den += w * h
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// WriteTo renders the comparison.
func (r *LongTermResult) WriteTo(w io.Writer) (int64, error) {
	s := fmt.Sprintf(
		"Long-term effects (§5): evaluating sustained send-to-1 from chaos-harvested data\n"+
			"%-42s %.3fs   ← misleading (A1 violation)\n"+
			"%-42s %.3fs   (%d matched windows of %d)\n"+
			"%-42s %.3fs\n"+
			"%-42s %.3fs\n",
		"per-request ips", r.PlainIPS,
		"trajectory IS (per step, self-normalized)", r.TrajIS, r.TrajMatched, r.Params.Horizon,
		"per-decision IS (per step)", r.PDIS,
		"sustained deployment truth", r.Truth)
	n, err := io.WriteString(w, s)
	return int64(n), err
}
