package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/lbsim"
	"repro/internal/ope"
	"repro/internal/parallel"
	"repro/internal/policy"
	"repro/internal/stats"
)

// ZipfContrastParams configures the workload-contrast study: Table 3's
// result (only size-aware eviction wins) is a property of the *big/small*
// workload, not of caching per se. On a uniform-size Zipf workload the
// frequency/size policy degenerates to LFU, and recency/frequency policies
// beat random — showing the paper's "long-term opportunity cost" failure is
// about sizes, not about CB being generally bad at caching.
type ZipfContrastParams struct {
	Seed     int64
	Requests int
	// NumKeys/Exponent parameterize the Zipf popularity; CacheShare is
	// the budget as a fraction of the working set.
	NumKeys    int
	Exponent   float64
	CacheShare float64
	// Workers bounds the candidate scheduler's concurrency: 1 runs the
	// serial path, <1 selects runtime.NumCPU(). Results are identical for
	// every value — each candidate's RNGs derive from a (seed, index)
	// substream.
	Workers int
}

// DefaultZipfContrastParams uses a classic 1.0-exponent Zipf.
func DefaultZipfContrastParams() ZipfContrastParams {
	return ZipfContrastParams{
		Seed: 1, Requests: 60000,
		NumKeys: 2000, Exponent: 1.0, CacheShare: 0.2,
	}
}

// ZipfContrastResult is the per-policy hitrate table.
type ZipfContrastResult struct {
	Params ZipfContrastParams
	Rows   []Table3Row // reuse the (policy, hitrate) row shape
}

// ZipfContrast runs every eviction policy on the Zipf workload.
func ZipfContrast(p ZipfContrastParams) (*ZipfContrastResult, error) {
	if p.Requests <= 0 || p.NumKeys <= 0 || p.Exponent <= 0 || p.CacheShare <= 0 || p.CacheShare > 1 {
		return nil, fmt.Errorf("experiments: zipf params %+v", p)
	}
	w := &cachesim.ZipfWorkload{NumKeys: p.NumKeys, Size: 100, Exponent: p.Exponent}
	// Validate also precomputes the CDF, so the concurrent replays below
	// share the workload read-only.
	if err := w.Validate(); err != nil {
		return nil, err
	}
	budget := int64(float64(p.NumKeys) * 100 * p.CacheShare)
	res := &ZipfContrastResult{Params: p}
	// Evictors are constructed inside the scheduler from per-index
	// substreams (RandomEvictor carries its own RNG).
	cands := []struct {
		name string
		ev   func(r *rand.Rand) cachesim.Evictor
	}{
		{"Random", func(r *rand.Rand) cachesim.Evictor { return cachesim.RandomEvictor{R: stats.Split(r)} }},
		{"LRU", func(*rand.Rand) cachesim.Evictor { return cachesim.LRUEvictor{} }},
		{"LFU", func(*rand.Rand) cachesim.Evictor { return cachesim.LFUEvictor{} }},
		{"Freq/size", func(*rand.Rand) cachesim.Evictor { return cachesim.FreqSizeEvictor{} }},
	}
	res.Rows = make([]Table3Row, len(cands))
	err := parallel.ForSeeded(p.Workers, len(cands), p.Seed, func(i int, r *rand.Rand) error {
		cand := cands[i]
		c, err := cachesim.New(cachesim.Config{MaxBytes: budget, SampleSize: 10}, cand.ev(r), stats.Split(r))
		if err != nil {
			return err
		}
		hr, err := cachesim.Replay(c, w, stats.Split(r), p.Requests)
		if err != nil {
			return fmt.Errorf("experiments: zipf %s: %w", cand.name, err)
		}
		res.Rows[i] = Table3Row{Policy: cand.name, HitRate: hr}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// WriteTo renders the contrast table.
func (r *ZipfContrastResult) WriteTo(w io.Writer) (int64, error) {
	var total int64
	c, err := fmt.Fprintf(w, "Workload contrast: eviction hitrates on uniform-size Zipf(%.2g) keys\n%-12s %s\n",
		r.Params.Exponent, "Policy", "Hit rate")
	total += int64(c)
	if err != nil {
		return total, err
	}
	for _, row := range r.Rows {
		c, err := fmt.Fprintf(w, "%-12s %.1f%%\n", row.Policy, 100*row.HitRate)
		total += int64(c)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// P99Params configures the tail-latency study: Table 1 casts load
// balancing's true reward as "[-] 99th percentile latency", with
// per-request latency as the CB proxy. This experiment estimates each
// policy's p99 *offline* with the weighted-quantile estimator and compares
// against the deployed p99 — the same shape as Table 2, but at the tail,
// where the send-to-1 breakage is even more violent.
type P99Params struct {
	Seed   int64
	Config lbsim.Config
	// Workers bounds the candidate scheduler's concurrency: 1 runs the
	// serial path, <1 selects runtime.NumCPU(). Results are identical for
	// every value — each candidate's policy RNG and online deployment seed
	// derive from a (seed, index) substream.
	Workers int
}

// DefaultP99Params uses the Fig. 5 setup.
func DefaultP99Params() P99Params {
	cfg := lbsim.TwoServerFig5()
	cfg.NumRequests = 30000
	cfg.Warmup = 3000
	return P99Params{Seed: 1, Config: cfg}
}

// P99Row is one policy's offline and online p99.
type P99Row struct {
	Policy             string
	OfflineP99, Online float64
}

// P99Result is the table.
type P99Result struct {
	Params P99Params
	Rows   []P99Row
}

// P99 runs the experiment.
func P99(p P99Params) (*P99Result, error) {
	if err := p.Config.Validate(); err != nil {
		return nil, err
	}
	root := stats.NewRand(p.Seed)
	logRun, err := lbsim.Run(p.Config, policy.UniformRandom{R: stats.Split(root)}, root.Int63(), true)
	if err != nil {
		return nil, fmt.Errorf("experiments: p99 exploration: %w", err)
	}
	res := &P99Result{Params: p}
	cands := []struct {
		name string
		pol  func(r *rand.Rand) core.Policy
	}{
		{"Random", func(r *rand.Rand) core.Policy { return policy.UniformRandom{R: stats.Split(r)} }},
		{"Least loaded", func(*rand.Rand) core.Policy { return lbsim.LeastLoaded{} }},
		{"Send to 1", func(*rand.Rand) core.Policy { return policy.Constant{A: 0} }},
	}
	res.Rows = make([]P99Row, len(cands))
	base := root.Int63()
	err = parallel.ForSeeded(p.Workers, len(cands), base, func(i int, r *rand.Rand) error {
		cand := cands[i]
		pol := cand.pol(r)
		est, err := (ope.QuantileIPS{Q: 0.99}).Estimate(pol, logRun.Exploration)
		if err != nil {
			return fmt.Errorf("experiments: p99 offline %s: %w", cand.name, err)
		}
		online, err := lbsim.Run(p.Config, pol, r.Int63(), false)
		if err != nil {
			return fmt.Errorf("experiments: p99 online %s: %w", cand.name, err)
		}
		res.Rows[i] = P99Row{
			Policy:     cand.name,
			OfflineP99: est.Value,
			Online:     online.P99Latency,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// WriteTo renders the table.
func (r *P99Result) WriteTo(w io.Writer) (int64, error) {
	var total int64
	c, err := fmt.Fprintf(w, "Tail latency: offline weighted-quantile p99 vs deployed p99\n%-14s %-16s %s\n",
		"Policy", "offline p99 (s)", "online p99 (s)")
	total += int64(c)
	if err != nil {
		return total, err
	}
	for _, row := range r.Rows {
		c, err := fmt.Fprintf(w, "%-14s %-16.3f %.3f\n", row.Policy, row.OfflineP99, row.Online)
		total += int64(c)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
