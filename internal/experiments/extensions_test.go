package experiments

import (
	"bytes"
	"testing"
)

func TestContinuousLoopImproves(t *testing.T) {
	p := DefaultContinuousParams()
	p.Rounds = 4
	res, err := Continuous(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	// Round 0 deploys uniform random; later rounds deploy trained CB.
	// The loop should cut latency substantially and data accumulates.
	if last.OnlineLatency >= first.OnlineLatency*0.9 {
		t.Errorf("loop should improve latency: %v → %v", first.OnlineLatency, last.OnlineLatency)
	}
	if last.DataSoFar <= first.DataSoFar {
		t.Errorf("data should accumulate: %d → %d", first.DataSoFar, last.DataSoFar)
	}
	// Improvement should persist: the final round must remain better
	// than round 0 (no collapse from training on self-collected data —
	// the ε-greedy wrapper keeps the data usable).
	for _, row := range res.Rows[1:] {
		if row.OnlineLatency >= first.OnlineLatency {
			t.Errorf("round %d regressed to %v (round 0: %v)", row.Round, row.OnlineLatency, first.OnlineLatency)
		}
	}
	var buf bytes.Buffer
	if _, err := res.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestContinuousValidation(t *testing.T) {
	p := DefaultContinuousParams()
	p.Rounds = 1
	if _, err := Continuous(p); err == nil {
		t.Error("rounds<2 should fail")
	}
	p = DefaultContinuousParams()
	p.Epsilon = 0
	if _, err := Continuous(p); err == nil {
		t.Error("epsilon=0 should fail")
	}
	p = DefaultContinuousParams()
	p.Config.ArrivalRate = 0
	if _, err := Continuous(p); err == nil {
		t.Error("bad config should fail")
	}
}

func TestDriftIncrementalAdapts(t *testing.T) {
	res, err := Drift(DefaultDriftParams())
	if err != nil {
		t.Fatal(err)
	}
	// The frozen policy must degrade relative to what phase 2 allows: the
	// incremental learner should clearly beat it after the drift.
	if res.IncrementalPhase2 >= res.StaticPhase2 {
		t.Errorf("incremental %v should beat static %v after drift",
			res.IncrementalPhase2, res.StaticPhase2)
	}
	// And land within 15%% of the phase-2-only oracle.
	if res.IncrementalPhase2 > res.OraclePhase2*1.15 {
		t.Errorf("incremental %v too far from oracle %v", res.IncrementalPhase2, res.OraclePhase2)
	}
	// Sanity: downtime after the drift (cheap reboots) is lower across
	// the board than before it.
	if res.StaticPhase1 <= res.OraclePhase2 {
		t.Errorf("phase-1 downtime %v should exceed phase-2 oracle %v (cheaper reboots)",
			res.StaticPhase1, res.OraclePhase2)
	}
	var buf bytes.Buffer
	if _, err := res.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestDriftValidation(t *testing.T) {
	p := DefaultDriftParams()
	p.PhaseN = 0
	if _, err := Drift(p); err == nil {
		t.Error("PhaseN=0 should fail")
	}
}

func TestRolloutRevealsBiasProgressively(t *testing.T) {
	res, err := Rollout(DefaultRolloutParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	first := res.Rows[0]
	last := res.Rows[len(res.Rows)-1]
	// Share 0 (pure counterfactual): the misleading low estimate.
	if first.Estimate >= res.TrueDeployed*0.7 {
		t.Errorf("0%%-share estimate %v should badly undershoot truth %v",
			first.Estimate, res.TrueDeployed)
	}
	// Share 1 (full deployment): the estimate equals the observed value.
	if d := abs(last.Estimate-res.TrueDeployed) / res.TrueDeployed; d > 0.1 {
		t.Errorf("100%%-share estimate %v should match truth %v", last.Estimate, res.TrueDeployed)
	}
	// Estimates rise monotonically with exposure (each step surfaces more
	// of the feedback effect).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Estimate <= res.Rows[i-1].Estimate {
			t.Errorf("estimate should rise with share: %v → %v at share %v",
				res.Rows[i-1].Estimate, res.Rows[i].Estimate, res.Rows[i].Share)
		}
	}
	var buf bytes.Buffer
	if _, err := res.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRolloutValidation(t *testing.T) {
	p := DefaultRolloutParams()
	p.Shares = nil
	if _, err := Rollout(p); err == nil {
		t.Error("no shares should fail")
	}
	p = DefaultRolloutParams()
	p.Shares = []float64{2}
	if _, err := Rollout(p); err == nil {
		t.Error("share>1 should fail")
	}
	p = DefaultRolloutParams()
	p.Config.NumRequests = 0
	if _, err := Rollout(p); err == nil {
		t.Error("bad config should fail")
	}
}

func TestLongTermEstimatorsFixTable2BlindSpot(t *testing.T) {
	res, err := LongTerm(DefaultLongTermParams())
	if err != nil {
		t.Fatal(err)
	}
	// Per-request IPS undershoots the sustained truth badly (the Table 2
	// failure)...
	if res.PlainIPS >= res.Truth*0.8 {
		t.Errorf("plain ips %v should badly undershoot truth %v", res.PlainIPS, res.Truth)
	}
	// ...while the window-level estimator, fed chaos-created runs, lands
	// much closer: at least halving the gap.
	gapIPS := res.Truth - res.PlainIPS
	gapTraj := res.Truth - res.TrajIS
	if gapTraj < 0 {
		gapTraj = -gapTraj
	}
	if gapTraj > gapIPS/2 {
		t.Errorf("trajectory IS gap %v should halve the ips gap %v (traj=%v truth=%v)",
			gapTraj, gapIPS, res.TrajIS, res.Truth)
	}
	if res.TrajMatched == 0 {
		t.Error("chaos should create matched windows")
	}
	var buf bytes.Buffer
	if _, err := res.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestLongTermValidation(t *testing.T) {
	p := DefaultLongTermParams()
	p.Horizon = 1
	if _, err := LongTerm(p); err == nil {
		t.Error("horizon<=1 should fail")
	}
	p = DefaultLongTermParams()
	p.N = 0
	if _, err := LongTerm(p); err == nil {
		t.Error("N=0 should fail")
	}
}
