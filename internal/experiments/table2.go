package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/lbsim"
	"repro/internal/ope"
	"repro/internal/parallel"
	"repro/internal/policy"
	"repro/internal/stats"
)

// Table2Params configures the Table 2 experiment: mean request latency of
// load-balancing policies, off-policy estimate vs online deployment, on the
// Fig. 5 two-server setup.
type Table2Params struct {
	Seed int64
	// Config is the simulated deployment (Table2Config by default: the
	// Fig. 5 latency model plus request types, which give the CB policy
	// its edge over least-loaded).
	Config lbsim.Config
	// Workers bounds the candidate scheduler's concurrency: 1 runs the
	// serial path, <1 selects runtime.NumCPU(). Results are identical for
	// every value — each candidate's policy RNG and online deployment seed
	// derive from a (seed, index) substream.
	Workers int
}

// DefaultTable2Params returns the paper-shaped configuration.
func DefaultTable2Params() Table2Params {
	return Table2Params{Seed: 1, Config: lbsim.Table2Config()}
}

// Table2Row is one policy's offline and online numbers.
type Table2Row struct {
	Policy  string
	Offline float64 // ips estimate on exploration data (seconds)
	Online  float64 // deployed mean latency (seconds)
}

// Table2Result is the table.
type Table2Result struct {
	Params Table2Params
	Rows   []Table2Row
}

// Table2 runs the experiment: collect exploration data under uniform-random
// routing (the deployed randomized heuristic), evaluate each candidate
// policy offline with ips, then deploy each policy and measure it online.
func Table2(p Table2Params) (*Table2Result, error) {
	if err := p.Config.Validate(); err != nil {
		return nil, err
	}
	root := stats.NewRand(p.Seed)
	logging := policy.UniformRandom{R: stats.Split(root)}
	logRun, err := lbsim.Run(p.Config, logging, root.Int63(), true)
	if err != nil {
		return nil, fmt.Errorf("experiments: table2 exploration run: %w", err)
	}
	cbPolicy, err := lbsim.FitCBPolicy(logRun.Exploration)
	if err != nil {
		return nil, fmt.Errorf("experiments: table2 CB training: %w", err)
	}
	// Candidates are constructed inside the scheduler from per-index
	// substreams, so a stochastic policy's RNG never depends on how the
	// other candidates consumed a shared root.
	candidates := []struct {
		name string
		pol  func(r *rand.Rand) core.Policy
	}{
		{"Random", func(r *rand.Rand) core.Policy { return policy.UniformRandom{R: stats.Split(r)} }},
		{"Least loaded", func(*rand.Rand) core.Policy { return lbsim.LeastLoaded{} }},
		{"Send to 1", func(*rand.Rand) core.Policy { return policy.Constant{A: 0} }},
		{"CB policy", func(*rand.Rand) core.Policy { return cbPolicy }},
	}
	res := &Table2Result{Params: p}
	res.Rows = make([]Table2Row, len(candidates))
	base := root.Int63()
	err = parallel.ForSeeded(p.Workers, len(candidates), base, func(i int, r *rand.Rand) error {
		cand := candidates[i]
		pol := cand.pol(r)
		est, err := (ope.IPS{}).Estimate(pol, logRun.Exploration)
		if err != nil {
			return fmt.Errorf("experiments: table2 offline %s: %w", cand.name, err)
		}
		online, err := lbsim.Run(p.Config, pol, r.Int63(), false)
		if err != nil {
			return fmt.Errorf("experiments: table2 online %s: %w", cand.name, err)
		}
		res.Rows[i] = Table2Row{
			Policy:  cand.name,
			Offline: est.Value,
			Online:  online.MeanLatency,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// WriteTo renders the table in the paper's layout.
func (r *Table2Result) WriteTo(w io.Writer) (int64, error) {
	var total int64
	c, err := fmt.Fprintf(w, "Table 2: mean request latency of load balancing policies\n%-14s %-24s %s\n",
		"Policy", "Off-policy evaluation", "Online evaluation")
	total += int64(c)
	if err != nil {
		return total, err
	}
	for _, row := range r.Rows {
		c, err := fmt.Fprintf(w, "%-14s %-24s %.2fs\n", row.Policy, fmt.Sprintf("%.2fs", row.Offline), row.Online)
		total += int64(c)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
