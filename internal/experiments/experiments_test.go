package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestFig1Shape(t *testing.T) {
	res, err := Fig1(DefaultFig1Params())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// CB's requirement grows ~logarithmically; A/B's ~linearly in K. The
	// advantage ratio must therefore grow monotonically with K.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Ratio <= res.Rows[i-1].Ratio {
			t.Errorf("advantage ratio not growing at K=%g: %v <= %v",
				res.Rows[i].K, res.Rows[i].Ratio, res.Rows[i-1].Ratio)
		}
		if res.Rows[i].NCB < res.Rows[i-1].NCB {
			t.Errorf("CB requirement should be monotone in K")
		}
	}
	// At K = 10^6 the A/B cost must be overwhelming (≥1000× CB's).
	for _, row := range res.Rows {
		if row.K == 1e6 && row.Ratio < 1e3 {
			t.Errorf("K=1e6 advantage = %v, want ≥1000x", row.Ratio)
		}
	}
	var buf bytes.Buffer
	if _, err := res.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig 1") {
		t.Error("render missing header")
	}
}

func TestFig1Validation(t *testing.T) {
	if _, err := Fig1(Fig1Params{}); err == nil {
		t.Error("empty Ks should fail")
	}
	p := DefaultFig1Params()
	p.Ks = []float64{0.5}
	if _, err := Fig1(p); err == nil {
		t.Error("K<1 should fail")
	}
}

func TestFig2Shape(t *testing.T) {
	res, err := Fig2(DefaultFig2Params())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		for i := 1; i < len(s.Errors); i++ {
			if s.Errors[i] >= s.Errors[i-1] {
				t.Errorf("eps=%v: error not decreasing in N", s.Eps)
			}
		}
	}
	// Higher ε gives lower error at fixed N (curves ordered).
	for i := 1; i < len(res.Series); i++ {
		if res.Series[i].Errors[0] >= res.Series[i-1].Errors[0] {
			t.Errorf("higher eps should reduce error")
		}
	}
	// Paper's diminishing returns: increasing N from 1.7M to 3.4M improves
	// accuracy by less than 0.01 (for the ε=0.04 curve).
	var e04 Fig2Series
	for _, s := range res.Series {
		if s.Eps == 0.04 {
			e04 = s
		}
	}
	p := res.Params
	var i17, i34 = -1, -1
	for i, n := range p.Ns {
		if n == 1.7e6 {
			i17 = i
		}
		if n == 3.4e6 {
			i34 = i
		}
	}
	if i17 < 0 || i34 < 0 {
		t.Fatal("grid must contain 1.7M and 3.4M")
	}
	if improvement := e04.Errors[i17] - e04.Errors[i34]; improvement >= 0.01 || improvement <= 0 {
		t.Errorf("1.7M→3.4M improvement = %v, want in (0, 0.01)", improvement)
	}
	var buf bytes.Buffer
	if _, err := res.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig2Validation(t *testing.T) {
	if _, err := Fig2(Fig2Params{}); err == nil {
		t.Error("empty params should fail")
	}
	p := DefaultFig2Params()
	p.Epsilons = []float64{2}
	if _, err := Fig2(p); err == nil {
		t.Error("eps>1 should fail")
	}
}

func TestFig3Shape(t *testing.T) {
	p := DefaultFig3Params()
	p.Resims = 120 // keep the test quick; the CLI uses 1000
	p.TestNs = []int{250, 1000, 3500, 7000}
	res, err := Fig3(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Error percentiles must shrink with N.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].P95RelErr >= res.Rows[i-1].P95RelErr {
			t.Errorf("p95 error not shrinking: %v → %v at N=%d",
				res.Rows[i-1].P95RelErr, res.Rows[i].P95RelErr, res.Rows[i].TestN)
		}
	}
	// The paper's 3500-point claim: p95 below 20%, median single-digit-ish.
	for _, row := range res.Rows {
		if row.TestN == 3500 {
			if row.P95RelErr >= 0.20 {
				t.Errorf("N=3500 p95 rel err = %v, want < 0.20", row.P95RelErr)
			}
			if row.MedianRelErr >= 0.12 {
				t.Errorf("N=3500 median rel err = %v, want < 0.12", row.MedianRelErr)
			}
		}
	}
	var buf bytes.Buffer
	if _, err := res.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig3Validation(t *testing.T) {
	p := DefaultFig3Params()
	p.Resims = 0
	if _, err := Fig3(p); err == nil {
		t.Error("resims=0 should fail")
	}
	p = DefaultFig3Params()
	p.TestNs = []int{0}
	if _, err := Fig3(p); err == nil {
		t.Error("testN=0 should fail")
	}
}

func TestFig4Shape(t *testing.T) {
	res, err := Fig4(DefaultFig4Params())
	if err != nil {
		t.Fatal(err)
	}
	// The full-feedback baseline must beat the default policy and lose to
	// the omniscient bound.
	if res.FullFeedbackDowntime >= res.DefaultDowntime {
		t.Errorf("full-feedback %v should beat default %v", res.FullFeedbackDowntime, res.DefaultDowntime)
	}
	if res.FullFeedbackDowntime < res.OptimalDowntime {
		t.Errorf("full-feedback %v beats omniscient %v — impossible", res.FullFeedbackDowntime, res.OptimalDowntime)
	}
	// Paper claims: within 20% of full feedback by 2000 points, within 15%
	// by 10000, and the gap shrinks along the curve.
	for _, row := range res.Rows {
		if row.N == 2000 && row.RelGap >= 0.20 {
			t.Errorf("N=2000 gap = %v, want < 0.20", row.RelGap)
		}
		if row.N == 10000 && row.RelGap >= 0.15 {
			t.Errorf("N=10000 gap = %v, want < 0.15", row.RelGap)
		}
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.RelGap >= first.RelGap {
		t.Errorf("gap should shrink: %v → %v", first.RelGap, last.RelGap)
	}
	var buf bytes.Buffer
	if _, err := res.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig4Validation(t *testing.T) {
	p := DefaultFig4Params()
	p.Checkpoints = []int{20000}
	if _, err := Fig4(p); err == nil {
		t.Error("checkpoint beyond budget should fail")
	}
	p = DefaultFig4Params()
	p.ExplorationN = 0
	if _, err := Fig4(p); err == nil {
		t.Error("zero budget should fail")
	}
}

func TestTable2Shape(t *testing.T) {
	res, err := Table2(DefaultTable2Params())
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]Table2Row{}
	for _, r := range res.Rows {
		rows[r.Policy] = r
	}
	random, ll, send1, cb := rows["Random"], rows["Least loaded"], rows["Send to 1"], rows["CB policy"]

	// Row 1: random's offline estimate matches its online value closely
	// (evaluating the logging policy itself is easy).
	if rel := abs(random.Offline-random.Online) / random.Online; rel > 0.05 {
		t.Errorf("random offline %v vs online %v (rel %v)", random.Offline, random.Online, rel)
	}
	// Row 3: send-to-1 offline looks better than random, but online is
	// far worse — the paper's breakage (0.31 vs 0.70).
	if send1.Offline >= random.Online {
		t.Errorf("send-to-1 offline %v should look better than random %v", send1.Offline, random.Online)
	}
	if send1.Online < 1.7*send1.Offline {
		t.Errorf("send-to-1 online %v should be ≫ offline %v", send1.Online, send1.Offline)
	}
	// Rows 2/4: CB beats least loaded online; both beat random.
	if cb.Online >= ll.Online {
		t.Errorf("CB online %v should beat least-loaded %v", cb.Online, ll.Online)
	}
	if ll.Online >= random.Online {
		t.Errorf("least-loaded %v should beat random %v", ll.Online, random.Online)
	}
	var buf bytes.Buffer
	if _, err := res.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Send to 1") {
		t.Error("render missing rows")
	}
}

func TestTable2Validation(t *testing.T) {
	p := DefaultTable2Params()
	p.Config.ArrivalRate = 0
	if _, err := Table2(p); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestTable3Shape(t *testing.T) {
	res, err := Table3(DefaultTable3Params())
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]float64{}
	for _, r := range res.Rows {
		rows[r.Policy] = r.HitRate
	}
	random, lru, lfu, cb, fs := rows["Random"], rows["LRU"], rows["LFU"], rows["CB policy"], rows["Freq/size"]
	// Paper Table 3 shape: only the size-aware policy beats random, by
	// ~10 points; LFU clearly lags; LRU ≈ random; CB does not beat random.
	if fs < random+0.05 {
		t.Errorf("freq/size %v should beat random %v by ≥5 points", fs, random)
	}
	if lfu >= random {
		t.Errorf("LFU %v should lag random %v", lfu, random)
	}
	if abs(lru-random) > 0.05 {
		t.Errorf("LRU %v should be within 5 points of random %v", lru, random)
	}
	if cb > random+0.03 {
		t.Errorf("CB %v should not beat random %v", cb, random)
	}
	if cb >= fs {
		t.Errorf("CB %v must lose to the size-aware policy %v", cb, fs)
	}
	var buf bytes.Buffer
	if _, err := res.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTable3Validation(t *testing.T) {
	p := DefaultTable3Params()
	p.Requests = 0
	if _, err := Table3(p); err == nil {
		t.Error("requests=0 should fail")
	}
	p = DefaultTable3Params()
	p.Workload.NumLarge = 0
	if _, err := Table3(p); err == nil {
		t.Error("invalid workload should fail")
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := Fig6(DefaultFig6Params())
	if err != nil {
		t.Fatal(err)
	}
	le := res.Levels
	if le.HierarchicalError >= le.FlatError {
		t.Errorf("hierarchy %v should beat flat %v", le.HierarchicalError, le.FlatError)
	}
	if le.EdgeEps <= le.FlatEps || le.ClusterEps <= le.FlatEps {
		t.Errorf("per-level eps should exceed flat eps: %v/%v vs %v",
			le.EdgeEps, le.ClusterEps, le.FlatEps)
	}
	// The deployed two-level CB should beat the all-random harvesting run.
	if res.CBLatency >= res.MeanLatency {
		t.Errorf("hierarchical CB %v should beat random %v", res.CBLatency, res.MeanLatency)
	}
	var buf bytes.Buffer
	if _, err := res.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestEq1EmpiricalVerification(t *testing.T) {
	p := DefaultEq1Params()
	p.Ns = []int{2000, 8000} // keep the test quick; CLI runs the full sweep
	res, err := Eq1(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// The theoretical envelope must hold for (almost) every member of
		// the class — allow a handful of boundary violations.
		if row.Violations > row.ClassSize/100 {
			t.Errorf("N=%d: %d/%d class members exceed the Eq.1 bound",
				row.N, row.Violations, row.ClassSize)
		}
		if row.MaxAbsErr <= row.MeanAbsErr {
			t.Errorf("max err %v should exceed mean err %v", row.MaxAbsErr, row.MeanAbsErr)
		}
		if row.Eps != 1.0/9 {
			t.Errorf("eps = %v, want 1/9", row.Eps)
		}
	}
	// Worst-case error shrinks with N (the √N law over the whole class).
	if res.Rows[1].MaxAbsErr >= res.Rows[0].MaxAbsErr {
		t.Errorf("max err should shrink with N: %v → %v",
			res.Rows[0].MaxAbsErr, res.Rows[1].MaxAbsErr)
	}
	var buf bytes.Buffer
	if _, err := res.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestEq1Validation(t *testing.T) {
	p := DefaultEq1Params()
	p.Ns = nil
	if _, err := Eq1(p); err == nil {
		t.Error("empty Ns should fail")
	}
	p = DefaultEq1Params()
	p.Ns = []int{0}
	if _, err := Eq1(p); err == nil {
		t.Error("N=0 should fail")
	}
}
