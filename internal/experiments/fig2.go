package experiments

import (
	"fmt"
	"io"

	"repro/internal/ope"
	"repro/internal/parallel"
)

// Fig2Params configures the Fig. 2 theoretical-accuracy curves: Eq. 1 error
// versus N for several exploration levels ε, over a policy class of size K.
type Fig2Params struct {
	// Epsilons are the exploration curves to draw (the paper shows the
	// ε = 0.04 "Azure edge proxy over 25 clusters" example among them).
	Epsilons []float64
	// Ns is the x-axis grid of exploration datapoints.
	Ns []float64
	// K is the policy-class size (paper: 10^6); C, Delta as in Eq. 1.
	K, C, Delta float64
	// Workers bounds the scheduler's concurrency: 1 runs the serial path,
	// <1 selects runtime.NumCPU(). Results are identical for every value.
	Workers int
}

// DefaultFig2Params mirrors the paper: K = 10^6, δ = 0.05, N up to several
// million with the diminishing-returns region visible.
func DefaultFig2Params() Fig2Params {
	ns := []float64{1e4, 2.5e4, 5e4, 1e5, 2.5e5, 5e5, 8.5e5, 1.7e6, 3.4e6, 5e6}
	return Fig2Params{
		Epsilons: []float64{0.01, 0.02, 0.04, 0.1},
		Ns:       ns,
		K:        1e6,
		C:        2,
		Delta:    0.05,
	}
}

// Fig2Series is one ε curve.
type Fig2Series struct {
	Eps    float64
	Errors []float64 // parallel to Params.Ns
}

// Fig2Result is the family of curves.
type Fig2Result struct {
	Params Fig2Params
	Series []Fig2Series
}

// Fig2 computes the figure.
func Fig2(p Fig2Params) (*Fig2Result, error) {
	if len(p.Epsilons) == 0 || len(p.Ns) == 0 {
		return nil, fmt.Errorf("experiments: fig2 needs epsilons and Ns")
	}
	res := &Fig2Result{Params: p}
	for _, eps := range p.Epsilons {
		if eps <= 0 || eps > 1 {
			return nil, fmt.Errorf("experiments: fig2 eps=%v", eps)
		}
	}
	res.Series = make([]Fig2Series, len(p.Epsilons))
	if err := parallel.For(p.Workers, len(p.Epsilons), func(idx int) error {
		eps := p.Epsilons[idx]
		s := Fig2Series{Eps: eps, Errors: make([]float64, len(p.Ns))}
		for i, n := range p.Ns {
			s.Errors[i] = ope.Eq1Error(p.C, eps, n, p.K, p.Delta)
		}
		res.Series[idx] = s
		return nil
	}); err != nil {
		return nil, err
	}
	return res, nil
}

// WriteTo renders the curves as a table (one column per ε).
func (r *Fig2Result) WriteTo(w io.Writer) (int64, error) {
	var total int64
	c, err := fmt.Fprintf(w, "Fig 2: theoretical accuracy over %g policies (C=%g, delta=%g)\n%-12s",
		r.Params.K, r.Params.C, r.Params.Delta, "N")
	total += int64(c)
	if err != nil {
		return total, err
	}
	for _, s := range r.Series {
		c, err := fmt.Fprintf(w, " err(eps=%.3g)", s.Eps)
		total += int64(c)
		if err != nil {
			return total, err
		}
	}
	c, err = fmt.Fprintln(w)
	total += int64(c)
	if err != nil {
		return total, err
	}
	for i, n := range r.Params.Ns {
		c, err := fmt.Fprintf(w, "%-12.4g", n)
		total += int64(c)
		if err != nil {
			return total, err
		}
		for _, s := range r.Series {
			c, err := fmt.Fprintf(w, " %-13.4f", s.Errors[i])
			total += int64(c)
			if err != nil {
				return total, err
			}
		}
		c, err = fmt.Fprintln(w)
		total += int64(c)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
