package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/healthsim"
	"repro/internal/learn"
	"repro/internal/ope"
	"repro/internal/parallel"
	"repro/internal/policy"
	"repro/internal/stats"
)

// Eq1Params configures the empirical verification of the paper's Eq. 1:
// evaluate an entire policy class Π simultaneously on one exploration log
// and check that the worst-case estimation error over the class stays
// under the theoretical envelope sqrt(C/(εN)·log(K/δ)).
type Eq1Params struct {
	Seed int64
	// Ns is the sweep of exploration-data sizes.
	Ns []int
	// Cuts discretizes the stump class (class size =
	// features · len(Cuts) · actions²).
	Cuts []float64
	// Delta is the simultaneous failure probability; C the Eq. 1
	// constant used for the reported envelope.
	Delta, C float64
	// Workers bounds the per-policy scheduler's concurrency: 1 runs the
	// serial path, <1 selects runtime.NumCPU(). Results are identical for
	// every value — evaluating one policy is a pure function of the shared
	// exploration log.
	Workers int
	// Config is the machine-health generative model.
	Config healthsim.Config
}

// DefaultEq1Params evaluates a ~3.2k-policy stump class (10 features × 4
// cuts × 9² action pairs) on up to 56k exploration points.
func DefaultEq1Params() Eq1Params {
	return Eq1Params{
		Seed:   1,
		Ns:     []int{3500, 14000, 56000},
		Cuts:   []float64{0.25, 0.5, 0.75, 1},
		Delta:  0.05,
		C:      2,
		Config: healthsim.DefaultConfig(),
	}
}

// Eq1Row is one N's worst-case-over-the-class measurement.
type Eq1Row struct {
	N int
	// ClassSize is |Π|; Eps the minimum logged propensity.
	ClassSize int
	Eps       float64
	// MaxAbsErr is max over Π of |ips(π) − truth(π)| on the normalized
	// reward scale; MeanAbsErr the average; Bound the Eq. 1 envelope.
	MaxAbsErr, MeanAbsErr, Bound float64
	// Violations counts class members whose error exceeds the bound
	// (expected ≈ 0 at delta=0.05 with a sane C).
	Violations int
}

// Eq1Result is the sweep.
type Eq1Result struct {
	Params Eq1Params
	Rows   []Eq1Row
}

// Eq1 runs the verification: for each N, simulate exploration on a fresh
// population, compute the exact full-feedback value and the ips estimate of
// every policy in the stump class, and compare the worst error with the
// bound. This is the "simultaneously evaluate K policies" capability of §4
// measured end to end rather than assumed.
func Eq1(p Eq1Params) (*Eq1Result, error) {
	if len(p.Ns) == 0 || len(p.Cuts) == 0 {
		return nil, fmt.Errorf("experiments: eq1 params %+v", p)
	}
	root := stats.NewRand(p.Seed)
	gen, err := healthsim.NewGenerator(stats.Split(root), p.Config)
	if err != nil {
		return nil, err
	}
	maxDown := gen.MaxPossibleDowntime()
	class := policy.StumpClass{
		NumFeatures: gen.Dim(),
		Cuts:        p.Cuts,
		NumActions:  healthsim.NumWaitActions,
	}
	res := &Eq1Result{Params: p}
	for _, n := range p.Ns {
		if n <= 0 {
			return nil, fmt.Errorf("experiments: eq1 N=%d", n)
		}
		full := gen.Generate(n)
		expl := healthsim.NormalizeRewards(learn.SimulateExploration(stats.Split(root), full), maxDown)
		eps := expl.MinPropensity()
		bound := ope.Eq1Error(p.C, eps, float64(n), float64(class.Size()), p.Delta)

		// Precompute per-row normalized reward lookups for ground truth.
		truthOf := func(pol core.Policy) float64 {
			t := 0.0
			for i := range full {
				row := &full[i]
				d := -row.Rewards[pol.Act(&row.Context)]
				t += 1 - math.Min(d, maxDown)/maxDown
			}
			return t / float64(len(full))
		}

		row := Eq1Row{N: n, ClassSize: class.Size(), Eps: eps, Bound: bound}
		// Materialize the class so the per-policy evaluations (each a pure
		// function of the shared log) can run on the scheduler; max/sum
		// reductions then fold serially in enumeration order.
		pols := make([]core.Policy, 0, class.Size())
		class.Enumerate(func(idx int, pol core.Policy) bool {
			pols = append(pols, pol)
			return true
		})
		errs := make([]float64, len(pols))
		if err := parallel.For(p.Workers, len(pols), func(idx int) error {
			est, err := (ope.IPS{}).Estimate(pols[idx], expl)
			if err != nil {
				return err
			}
			errs[idx] = math.Abs(est.Value - truthOf(pols[idx]))
			return nil
		}); err != nil {
			return nil, fmt.Errorf("experiments: eq1 N=%d: %w", n, err)
		}
		sumErr := 0.0
		for _, e := range errs {
			sumErr += e
			if e > row.MaxAbsErr {
				row.MaxAbsErr = e
			}
			if e > bound {
				row.Violations++
			}
		}
		row.MeanAbsErr = sumErr / float64(class.Size())
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// WriteTo renders the verification table.
func (r *Eq1Result) WriteTo(w io.Writer) (int64, error) {
	var total int64
	c, err := fmt.Fprintf(w, "Eq. 1 empirical verification: max ips error over a %d-policy class (delta=%g)\n%-8s %-8s %-12s %-12s %-12s %s\n",
		r.Rows[0].ClassSize, r.Params.Delta, "N", "eps", "mean |err|", "max |err|", "Eq.1 bound", "violations")
	total += int64(c)
	if err != nil {
		return total, err
	}
	for _, row := range r.Rows {
		c, err := fmt.Fprintf(w, "%-8d %-8.4f %-12.4f %-12.4f %-12.4f %d\n",
			row.N, row.Eps, row.MeanAbsErr, row.MaxAbsErr, row.Bound, row.Violations)
		total += int64(c)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
