package experiments

import (
	"fmt"
	"io"

	"repro/internal/healthsim"
	"repro/internal/learn"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// Fig4Params configures the Fig. 4 experiment: convergence of CB training
// on machine-health exploration data, relative to the idealized
// full-feedback supervised model.
type Fig4Params struct {
	Seed int64
	// ExplorationN is the total simulated exploration budget (paper:
	// 10,000); Checkpoints are the learning-curve x-axis.
	ExplorationN int
	Checkpoints  []int
	// TestN sizes the held-out full-feedback evaluation set.
	TestN int
	// Workers bounds the replicate scheduler's concurrency: 1 runs the
	// serial path, <1 selects runtime.NumCPU(). Results are identical for
	// every value — each checkpoint's model fit is a pure function of the
	// shared exploration prefix.
	Workers int
	// Config is the machine-health generative model.
	Config healthsim.Config
}

// DefaultFig4Params mirrors the paper: 10,000 exploration datapoints with
// the 2,000-point "within 20%" checkpoint on the curve.
func DefaultFig4Params() Fig4Params {
	return Fig4Params{
		Seed:         1,
		ExplorationN: 10000,
		Checkpoints:  []int{250, 500, 1000, 2000, 4000, 7000, 10000},
		TestN:        6000,
		Config:       healthsim.DefaultConfig(),
	}
}

// Fig4Row is one learning-curve checkpoint.
type Fig4Row struct {
	N int
	// CBDowntime is the mean test downtime (minutes) of the CB policy
	// trained on the first N exploration datapoints.
	CBDowntime float64
	// RelGap is (CBDowntime − FullFeedbackDowntime)/FullFeedbackDowntime —
	// the paper's "within 15% of a policy trained using supervised
	// learning on the full feedback dataset".
	RelGap float64
}

// Fig4Result is the learning curve plus its baselines.
type Fig4Result struct {
	Params Fig4Params
	Rows   []Fig4Row
	// FullFeedbackDowntime is the idealized supervised baseline;
	// DefaultDowntime is the deployed max-wait policy; OptimalDowntime
	// the omniscient lower bound.
	FullFeedbackDowntime, DefaultDowntime, OptimalDowntime float64
}

// Fig4 runs the experiment.
func Fig4(p Fig4Params) (*Fig4Result, error) {
	if p.ExplorationN <= 0 || len(p.Checkpoints) == 0 || p.TestN <= 0 {
		return nil, fmt.Errorf("experiments: fig4 params %+v", p)
	}
	root := stats.NewRand(p.Seed)
	gen, err := healthsim.NewGenerator(stats.Split(root), p.Config)
	if err != nil {
		return nil, err
	}
	train := gen.Generate(p.ExplorationN)
	test := gen.Generate(p.TestN)
	expl := learn.SimulateExploration(stats.Split(root), train)

	// The idealized baseline: supervised learning on full feedback.
	ffModel, err := learn.FitFullFeedback(train, 0)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig4 full-feedback baseline: %w", err)
	}
	res := &Fig4Result{
		Params:               p,
		FullFeedbackDowntime: -test.MeanReward(ffModel.GreedyPolicy(false)),
		DefaultDowntime:      -test.MeanReward(healthsim.DefaultPolicy()),
		OptimalDowntime:      -test.OptimalMeanReward(false),
	}

	for _, n := range p.Checkpoints {
		if n <= 0 || n > p.ExplorationN {
			return nil, fmt.Errorf("experiments: fig4 checkpoint %d out of (0,%d]", n, p.ExplorationN)
		}
	}
	// Each checkpoint fit is deterministic given the exploration prefix, so
	// the scheduler only has to keep the rows in checkpoint order.
	res.Rows = make([]Fig4Row, len(p.Checkpoints))
	err = parallel.For(p.Workers, len(p.Checkpoints), func(idx int) error {
		n := p.Checkpoints[idx]
		model, err := learn.FitRewardModel(expl[:n], learn.FitOptions{NumActions: healthsim.NumWaitActions})
		if err != nil {
			return fmt.Errorf("experiments: fig4 checkpoint %d: %w", n, err)
		}
		cb := -test.MeanReward(model.GreedyPolicy(false))
		res.Rows[idx] = Fig4Row{
			N:          n,
			CBDowntime: cb,
			RelGap:     (cb - res.FullFeedbackDowntime) / res.FullFeedbackDowntime,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// WriteTo renders the learning curve.
func (r *Fig4Result) WriteTo(w io.Writer) (int64, error) {
	var total int64
	c, err := fmt.Fprintf(w, "Fig 4: CB training convergence on machine health\nfull-feedback baseline: %.3f min | default (max wait): %.3f min | omniscient: %.3f min\n%-8s %-16s %s\n",
		r.FullFeedbackDowntime, r.DefaultDowntime, r.OptimalDowntime,
		"N", "CB downtime", "gap vs full-feedback")
	total += int64(c)
	if err != nil {
		return total, err
	}
	for _, row := range r.Rows {
		c, err := fmt.Fprintf(w, "%-8d %-16.3f %+.1f%%\n", row.N, row.CBDowntime, 100*row.RelGap)
		total += int64(c)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
