// Package experiments regenerates every table and figure in the evaluation
// of "Harvesting Randomness to Optimize Distributed Systems" (HotNets
// 2017). Each experiment is a pure function from a parameter struct to a
// typed result that renders the same rows/series the paper reports; the
// cmd/harvest CLI and the repository's benchmarks both call these runners.
package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/ope"
	"repro/internal/parallel"
)

// Fig1Params configures the Fig. 1 data-requirement comparison ("the amount
// of data N required to simultaneously evaluate K policies, using typical
// constants").
type Fig1Params struct {
	// Ks are the policy-class sizes to sweep.
	Ks []float64
	// Eps is the exploration minimum propensity for the CB estimator.
	Eps float64
	// C is Eq. 1's constant; CAB the A/B bound's constant.
	C, CAB float64
	// Delta is the failure probability; TargetErr the CI size to reach.
	Delta, TargetErr float64
	// Workers bounds the scheduler's concurrency: 1 runs the serial path,
	// <1 selects runtime.NumCPU(). Results are identical for every value.
	Workers int
}

// DefaultFig1Params mirrors the paper's "typical constants" caption
// (δ = 0.01; ε = 0.04 as in the Azure edge-proxy example; target error
// 0.05 for rewards in [0,1]).
func DefaultFig1Params() Fig1Params {
	ks := make([]float64, 0, 10)
	for e := 0; e <= 9; e++ {
		ks = append(ks, math.Pow(10, float64(e)))
	}
	return Fig1Params{
		Ks: ks, Eps: 0.04, C: 2, CAB: 1, Delta: 0.01, TargetErr: 0.05,
	}
}

// Fig1Row is one point of the figure.
type Fig1Row struct {
	K     float64
	NCB   float64 // datapoints needed by off-policy evaluation (Eq. 1)
	NAB   float64 // datapoints needed by A/B testing
	Ratio float64 // NAB / NCB: the exponential advantage
}

// Fig1Result is the full sweep.
type Fig1Result struct {
	Params Fig1Params
	Rows   []Fig1Row
}

// Fig1 computes the figure.
func Fig1(p Fig1Params) (*Fig1Result, error) {
	if len(p.Ks) == 0 {
		return nil, fmt.Errorf("experiments: fig1 needs at least one K")
	}
	res := &Fig1Result{Params: p}
	for _, k := range p.Ks {
		if k < 1 {
			return nil, fmt.Errorf("experiments: fig1 K=%v < 1", k)
		}
	}
	res.Rows = make([]Fig1Row, len(p.Ks))
	if err := parallel.For(p.Workers, len(p.Ks), func(i int) error {
		k := p.Ks[i]
		ncb := ope.Eq1RequiredN(p.C, p.Eps, k, p.Delta, p.TargetErr)
		nab := ope.ABRequiredN(p.CAB, k, p.Delta, p.TargetErr)
		res.Rows[i] = Fig1Row{K: k, NCB: ncb, NAB: nab, Ratio: nab / ncb}
		return nil
	}); err != nil {
		return nil, err
	}
	return res, nil
}

// WriteTo renders the figure as a table.
func (r *Fig1Result) WriteTo(w io.Writer) (int64, error) {
	var n int64
	c, err := fmt.Fprintf(w, "Fig 1: data required to evaluate K policies (eps=%.3g, delta=%.2g, err=%.2g)\n%-12s %-14s %-14s %s\n",
		r.Params.Eps, r.Params.Delta, r.Params.TargetErr, "K", "N (CB)", "N (A/B)", "A/B / CB")
	n += int64(c)
	if err != nil {
		return n, err
	}
	for _, row := range r.Rows {
		c, err := fmt.Fprintf(w, "%-12.3g %-14.4g %-14.4g %.3gx\n", row.K, row.NCB, row.NAB, row.Ratio)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
