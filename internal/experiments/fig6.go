package experiments

import (
	"fmt"
	"io"

	"repro/internal/frontdoor"
)

// Fig6Params configures the Fig. 6 experiment: the hierarchical Front Door
// architecture's effect on exploration coverage and Eq. 1 evaluation error,
// versus a flat design over all servers.
type Fig6Params struct {
	Seed   int64
	Config frontdoor.Config
	// K is the policy-class size to bound; C/Delta as in Eq. 1.
	K, C, Delta float64
	// Workers bounds the per-endpoint training scheduler's concurrency:
	// 1 runs the serial path, <1 selects runtime.NumCPU(). Results are
	// identical for every value.
	Workers int
}

// DefaultFig6Params uses the 4×5 deployment and the Fig. 2 class size.
func DefaultFig6Params() Fig6Params {
	return Fig6Params{
		Seed:   1,
		Config: frontdoor.DefaultConfig(),
		K:      1e6,
		C:      2,
		Delta:  0.05,
	}
}

// Fig6Result reports per-level and flat statistics, plus the online
// latency of the hierarchical CB policies trained from the harvested data
// and deployed at both levels ("allowing us to apply our methodology to
// both levels if desired").
type Fig6Result struct {
	Params      Fig6Params
	Levels      frontdoor.LevelErrors
	MeanLatency float64
	// CBLatency is the deployed two-level CB policy's mean latency;
	// MeanLatency above is the all-random harvesting run's.
	CBLatency float64
}

// Fig6 runs the hierarchy simulation, computes the level errors, then
// trains CB policies at both levels and deploys them.
func Fig6(p Fig6Params) (*Fig6Result, error) {
	res, err := frontdoor.Run(p.Config, p.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig6: %w", err)
	}
	edge, clusters, err := frontdoor.TrainHierarchicalParallel(res, len(p.Config.Clusters), p.Workers)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig6 training: %w", err)
	}
	deployed, err := frontdoor.RunWithPolicies(p.Config, edge, clusters, p.Seed+1)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig6 deployment: %w", err)
	}
	return &Fig6Result{
		Params:      p,
		Levels:      res.Errors(p.C, p.K, p.Delta),
		MeanLatency: res.MeanLatency,
		CBLatency:   deployed.MeanLatency,
	}, nil
}

// WriteTo renders the comparison.
func (r *Fig6Result) WriteTo(w io.Writer) (int64, error) {
	le := r.Levels
	s := fmt.Sprintf(
		"Fig 6: hierarchical Front Door vs flat action space (N=%d, K=%g, delta=%g)\n"+
			"%-22s %-10s %s\n"+
			"%-22s %-10.3f %.4f\n"+
			"%-22s %-10.3f %.4f\n"+
			"%-22s %-10s %.4f\n"+
			"%-22s %-10.3f %.4f\n",
		le.N, r.Params.K, r.Params.Delta,
		"level", "eps", "Eq.1 error",
		"edge (endpoints)", le.EdgeEps, le.EdgeError,
		"cluster (servers)", le.ClusterEps, le.ClusterError,
		"hierarchical total", "-", le.HierarchicalError,
		"flat (all servers)", le.FlatEps, le.FlatError)
	s += fmt.Sprintf("deployed: all-random %.3fs → two-level CB %.3fs\n",
		r.MeanLatency, r.CBLatency)
	n, err := io.WriteString(w, s)
	return int64(n), err
}
