package experiments

import (
	"fmt"
	"reflect"
	"testing"
)

// TestSeedEquivalenceSerialVsParallel is the PR's correctness criterion:
// for every experiment runner, Workers=1 (the legacy serial path) and
// Workers=8 must produce identical output for the same seed. Each case
// runs at reduced-but-representative sizes, zeroes the Workers field of
// the embedded params (the only intentional difference), and compares the
// full result structs with reflect.DeepEqual. The whole suite runs under
// -race in CI, so it doubles as the scheduler's data-race probe.
func TestSeedEquivalenceSerialVsParallel(t *testing.T) {
	cases := []struct {
		name string
		run  func(seed int64, workers int) (any, error)
	}{
		{"fig1", func(seed int64, w int) (any, error) {
			p := DefaultFig1Params()
			p.Workers = w
			res, err := Fig1(p)
			if err != nil {
				return nil, err
			}
			res.Params.Workers = 0
			return res, nil
		}},
		{"fig2", func(seed int64, w int) (any, error) {
			p := DefaultFig2Params()
			p.Workers = w
			res, err := Fig2(p)
			if err != nil {
				return nil, err
			}
			res.Params.Workers = 0
			return res, nil
		}},
		{"fig3", func(seed int64, w int) (any, error) {
			p := DefaultFig3Params()
			p.Seed = seed
			p.TrainN = 2000
			p.TestNs = []int{250, 500}
			p.Resims = 24
			p.Workers = w
			res, err := Fig3(p)
			if err != nil {
				return nil, err
			}
			res.Params.Workers = 0
			return res, nil
		}},
		{"fig4", func(seed int64, w int) (any, error) {
			p := DefaultFig4Params()
			p.Seed = seed
			p.ExplorationN = 2000
			p.Checkpoints = []int{250, 1000, 2000}
			p.TestN = 1000
			p.Workers = w
			res, err := Fig4(p)
			if err != nil {
				return nil, err
			}
			res.Params.Workers = 0
			return res, nil
		}},
		{"table2", func(seed int64, w int) (any, error) {
			p := DefaultTable2Params()
			p.Seed = seed
			p.Config.NumRequests = 4000
			p.Config.Warmup = 400
			p.Workers = w
			res, err := Table2(p)
			if err != nil {
				return nil, err
			}
			res.Params.Workers = 0
			return res, nil
		}},
		{"table3", func(seed int64, w int) (any, error) {
			p := DefaultTable3Params()
			p.Seed = seed
			p.Requests = 8000
			p.Workers = w
			res, err := Table3(p)
			if err != nil {
				return nil, err
			}
			res.Params.Workers = 0
			return res, nil
		}},
		{"fig6", func(seed int64, w int) (any, error) {
			p := DefaultFig6Params()
			p.Seed = seed
			p.Config.NumRequests = 8000
			p.Config.Warmup = 1000
			p.Workers = w
			res, err := Fig6(p)
			if err != nil {
				return nil, err
			}
			res.Params.Workers = 0
			return res, nil
		}},
		{"eq1", func(seed int64, w int) (any, error) {
			p := DefaultEq1Params()
			p.Seed = seed
			p.Ns = []int{1500}
			p.Cuts = []float64{0.5}
			p.Workers = w
			res, err := Eq1(p)
			if err != nil {
				return nil, err
			}
			res.Params.Workers = 0
			return res, nil
		}},
		{"rollout", func(seed int64, w int) (any, error) {
			p := DefaultRolloutParams()
			p.Seed = seed
			p.Config.NumRequests = 5000
			p.Config.Warmup = 500
			p.Shares = []float64{0, 0.5, 1}
			p.Workers = w
			res, err := Rollout(p)
			if err != nil {
				return nil, err
			}
			res.Params.Workers = 0
			return res, nil
		}},
		{"zipf", func(seed int64, w int) (any, error) {
			p := DefaultZipfContrastParams()
			p.Seed = seed
			p.Requests = 8000
			p.Workers = w
			res, err := ZipfContrast(p)
			if err != nil {
				return nil, err
			}
			res.Params.Workers = 0
			return res, nil
		}},
		{"p99", func(seed int64, w int) (any, error) {
			p := DefaultP99Params()
			p.Seed = seed
			p.Config.NumRequests = 6000
			p.Config.Warmup = 600
			p.Workers = w
			res, err := P99(p)
			if err != nil {
				return nil, err
			}
			res.Params.Workers = 0
			return res, nil
		}},
		{"longterm", func(seed int64, w int) (any, error) {
			p := DefaultLongTermParams()
			p.Seed = seed
			p.N = 6000
			p.Outages = 4
			p.Workers = w
			res, err := LongTerm(p)
			if err != nil {
				return nil, err
			}
			res.Params.Workers = 0
			return res, nil
		}},
		{"ablate-estimators", func(seed int64, w int) (any, error) {
			return AblationEstimators(seed, 2000, w)
		}},
		{"ablate-propensity", func(seed int64, w int) (any, error) {
			return AblationPropensity(seed, 2000, w)
		}},
		{"ablate-exploration", func(seed int64, w int) (any, error) {
			return AblationExploration(seed, 2000, w)
		}},
		{"ablate-samplewidth", func(seed int64, w int) (any, error) {
			return AblationSampleWidth(seed, 8000, []int{2, 5, 10}, w)
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			for _, seed := range []int64{1, 2, 3} {
				serial, err := c.run(seed, 1)
				if err != nil {
					t.Fatalf("seed %d workers=1: %v", seed, err)
				}
				par, err := c.run(seed, 8)
				if err != nil {
					t.Fatalf("seed %d workers=8: %v", seed, err)
				}
				if !reflect.DeepEqual(serial, par) {
					t.Errorf("seed %d: workers=8 result differs from serial\nserial: %s\nparallel: %s",
						seed, render(serial), render(par))
				}
			}
		})
	}
}

// render formats a result for the failure message.
func render(v any) string {
	return fmt.Sprintf("%+v", v)
}
