package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/lbsim"
	"repro/internal/ope"
	"repro/internal/parallel"
	"repro/internal/policy"
	"repro/internal/stats"
)

// RolloutParams configures the staged-rollout study: deploy the tempting
// send-to-1 policy on an increasing share of traffic (blended with the
// incumbent random policy) and watch its off-policy estimate converge to
// its true deployed value as the rollout proceeds.
//
// This connects the paper's introduction (staged rollouts as the status
// quo) with its §5 failure mode: under the A1 violation the 0%-share
// estimate is misleading (Table 2's 0.31 vs 0.70), and the *reason* staged
// rollouts exist is precisely that partial exposure starts to surface the
// feedback effects that counterfactual evaluation cannot see.
type RolloutParams struct {
	Seed   int64
	Shares []float64
	Config lbsim.Config
	// Workers bounds the per-share scheduler's concurrency: 1 runs the
	// serial path, <1 selects runtime.NumCPU(). Results are identical for
	// every value — each share's blend RNGs and run seed derive from a
	// (seed, index) substream.
	Workers int
}

// DefaultRolloutParams sweeps five exposure levels on the Fig. 5 setup.
func DefaultRolloutParams() RolloutParams {
	cfg := lbsim.TwoServerFig5()
	cfg.NumRequests = 20000
	cfg.Warmup = 2000
	return RolloutParams{
		Seed:   1,
		Shares: []float64{0, 0.25, 0.5, 0.75, 1},
		Config: cfg,
	}
}

// RolloutRow is one exposure level.
type RolloutRow struct {
	Share float64
	// Estimate is the IPS estimate of the *fully deployed* candidate from
	// this blend's exploration data; BlendLatency the blend's own online
	// mean latency.
	Estimate, BlendLatency float64
	// Matches counts datapoints usable for the candidate.
	Matches int
}

// RolloutResult is the sweep plus the candidate's true deployed value.
type RolloutResult struct {
	Params RolloutParams
	Rows   []RolloutRow
	// TrueDeployed is send-to-1's actual mean latency at 100%.
	TrueDeployed float64
}

// Rollout runs the sweep.
func Rollout(p RolloutParams) (*RolloutResult, error) {
	if len(p.Shares) == 0 {
		return nil, fmt.Errorf("experiments: rollout needs shares")
	}
	if err := p.Config.Validate(); err != nil {
		return nil, err
	}
	root := stats.NewRand(p.Seed)
	candidate := policy.Constant{A: 0}
	deployed, err := lbsim.Run(p.Config, candidate, root.Int63(), false)
	if err != nil {
		return nil, fmt.Errorf("experiments: rollout full deployment: %w", err)
	}
	res := &RolloutResult{Params: p, TrueDeployed: deployed.MeanLatency}
	res.Rows = make([]RolloutRow, len(p.Shares))
	base := root.Int63()
	err = parallel.ForSeeded(p.Workers, len(p.Shares), base, func(i int, r *rand.Rand) error {
		share := p.Shares[i]
		blend, err := policy.NewBlend(candidate, policy.UniformRandom{R: stats.Split(r)}, share, stats.Split(r))
		if err != nil {
			return fmt.Errorf("experiments: rollout share %v: %w", share, err)
		}
		run, err := lbsim.Run(p.Config, blend, r.Int63(), true)
		if err != nil {
			return fmt.Errorf("experiments: rollout share %v: %w", share, err)
		}
		est, err := (ope.IPS{}).Estimate(candidate, run.Exploration)
		if err != nil {
			return fmt.Errorf("experiments: rollout share %v ips: %w", share, err)
		}
		res.Rows[i] = RolloutRow{
			Share:        share,
			Estimate:     est.Value,
			BlendLatency: run.MeanLatency,
			Matches:      est.Matches,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// WriteTo renders the sweep.
func (r *RolloutResult) WriteTo(w io.Writer) (int64, error) {
	var total int64
	c, err := fmt.Fprintf(w, "Staged rollout of send-to-1 (true deployed latency %.3fs)\n%-8s %-18s %-16s %s\n",
		r.TrueDeployed, "share", "ips estimate (s)", "blend online (s)", "matches")
	total += int64(c)
	if err != nil {
		return total, err
	}
	for _, row := range r.Rows {
		c, err := fmt.Fprintf(w, "%-8.2f %-18.3f %-16.3f %d\n",
			row.Share, row.Estimate, row.BlendLatency, row.Matches)
		total += int64(c)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
