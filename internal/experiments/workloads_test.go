package experiments

import (
	"bytes"
	"testing"
)

func TestZipfContrastFlipsTable3(t *testing.T) {
	res, err := ZipfContrast(DefaultZipfContrastParams())
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]float64{}
	for _, r := range res.Rows {
		rows[r.Policy] = r.HitRate
	}
	// On uniform sizes, recency/frequency carry real signal: LRU and LFU
	// should beat random, and freq/size (≡ LFU here) should match LFU.
	if rows["LRU"] <= rows["Random"] {
		t.Errorf("zipf: LRU %v should beat random %v", rows["LRU"], rows["Random"])
	}
	if rows["LFU"] <= rows["Random"] {
		t.Errorf("zipf: LFU %v should beat random %v", rows["LFU"], rows["Random"])
	}
	if d := abs(rows["Freq/size"] - rows["LFU"]); d > 0.02 {
		t.Errorf("zipf: freq/size %v should coincide with LFU %v (uniform sizes)", rows["Freq/size"], rows["LFU"])
	}
	var buf bytes.Buffer
	if _, err := res.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestZipfContrastValidation(t *testing.T) {
	p := DefaultZipfContrastParams()
	p.Requests = 0
	if _, err := ZipfContrast(p); err == nil {
		t.Error("requests=0 should fail")
	}
	p = DefaultZipfContrastParams()
	p.CacheShare = 2
	if _, err := ZipfContrast(p); err == nil {
		t.Error("share>1 should fail")
	}
}

func TestP99Shape(t *testing.T) {
	res, err := P99(DefaultP99Params())
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]P99Row{}
	for _, r := range res.Rows {
		rows[r.Policy] = r
	}
	random, send1 := rows["Random"], rows["Send to 1"]
	// The logging policy's own tail evaluates correctly.
	if d := abs(random.OfflineP99-random.Online) / random.Online; d > 0.15 {
		t.Errorf("random offline p99 %v vs online %v", random.OfflineP99, random.Online)
	}
	// Send-to-1's tail breaks at least as hard as its mean did.
	if send1.Online < 1.5*send1.OfflineP99 {
		t.Errorf("send-to-1 online p99 %v should dwarf offline %v", send1.Online, send1.OfflineP99)
	}
	var buf bytes.Buffer
	if _, err := res.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestP99Validation(t *testing.T) {
	p := DefaultP99Params()
	p.Config.ArrivalRate = 0
	if _, err := P99(p); err == nil {
		t.Error("bad config should fail")
	}
}
