package experiments

import (
	"fmt"
	"io"
	"math"

	"math/rand"
	"repro/internal/cachesim"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/harvester"
	"repro/internal/healthsim"

	"repro/internal/lbsim"
	"repro/internal/learn"
	"repro/internal/ope"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// EstimatorAblationRow compares one estimator's accuracy on the
// machine-health scenario.
type EstimatorAblationRow struct {
	Estimator string
	// AbsErr is |estimate − truth| on the normalized reward scale;
	// StdErr the estimator's own reported standard error.
	AbsErr, StdErr float64
}

// EstimatorAblationResult holds the comparison (DESIGN.md: "clipping /
// self-normalization in IPS").
type EstimatorAblationResult struct {
	Rows  []EstimatorAblationRow
	Truth float64
}

// AblationEstimators evaluates IPS, clipped IPS, SNIPS, DM, and DR on the
// same healthsim exploration data against full-feedback ground truth.
// workers bounds the per-estimator scheduler's concurrency (1 = serial,
// <1 = runtime.NumCPU()); results are identical for every value.
func AblationEstimators(seed int64, n, workers int) (*EstimatorAblationResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("experiments: ablation n=%d", n)
	}
	root := stats.NewRand(seed)
	gen, err := healthsim.NewGenerator(stats.Split(root), healthsim.DefaultConfig())
	if err != nil {
		return nil, err
	}
	maxDown := gen.MaxPossibleDowntime()
	test := gen.Generate(n)
	// Skewed logging (ε-greedy around the deployed max-wait default) so
	// importance weights vary and clipping/self-normalization actually
	// trade something; uniform logging would make every weight equal.
	expl := healthsim.NormalizeRewards(simulateSkewedExploration(stats.Split(root), test, 0.2), maxDown)

	// Candidate policy: a mid-wait stump to make matching nontrivial.
	pol := core.PolicyFunc(func(ctx *core.Context) core.Action {
		if ctx.Features[len(ctx.Features)-2] > 0.4 { // prior-failure share
			return 0
		}
		return 4
	})
	truth := 0.0
	for i := range test {
		row := &test[i]
		d := -row.Rewards[pol.Act(&row.Context)]
		truth += 1 - math.Min(d, maxDown)/maxDown
	}
	truth /= float64(len(test))

	model, err := learn.FitRewardModel(expl, learn.FitOptions{NumActions: healthsim.NumWaitActions})
	if err != nil {
		return nil, err
	}
	ests := []ope.Estimator{
		ope.IPS{},
		ope.ClippedIPS{Max: 25},
		ope.SNIPS{},
		ope.DirectMethod{Model: model},
		ope.DoublyRobust{Model: model},
	}
	res := &EstimatorAblationResult{Truth: truth}
	res.Rows = make([]EstimatorAblationRow, len(ests))
	if err := parallel.For(workers, len(ests), func(i int) error {
		e := ests[i]
		est, err := e.Estimate(pol, expl)
		if err != nil {
			return fmt.Errorf("experiments: ablation %s: %w", e.Name(), err)
		}
		res.Rows[i] = EstimatorAblationRow{
			Estimator: e.Name(),
			AbsErr:    math.Abs(est.Value - truth),
			StdErr:    est.StdErr,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return res, nil
}

// WriteTo renders the estimator ablation.
func (r *EstimatorAblationResult) WriteTo(w io.Writer) (int64, error) {
	var total int64
	c, err := fmt.Fprintf(w, "Ablation: estimators on machine health (truth=%.4f)\n%-12s %-10s %s\n",
		r.Truth, "estimator", "|err|", "stderr")
	total += int64(c)
	if err != nil {
		return total, err
	}
	for _, row := range r.Rows {
		c, err := fmt.Fprintf(w, "%-12s %-10.4f %.4f\n", row.Estimator, row.AbsErr, row.StdErr)
		total += int64(c)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// PropensityAblationRow compares one propensity-inference method.
type PropensityAblationRow struct {
	Method string
	// AbsErr is the IPS error (vs the true-propensity IPS estimate) after
	// re-inferring propensities with this method.
	AbsErr float64
}

// PropensityAblationResult holds the step-2 comparison.
type PropensityAblationResult struct {
	Rows      []PropensityAblationRow
	Reference float64
}

// AblationPropensity measures how each §3-step-2 inference method affects
// the final IPS estimate on healthsim data (whose true propensities are
// uniform, so "known" is exact). workers bounds the per-method scheduler's
// concurrency (1 = serial, <1 = runtime.NumCPU()); results are identical
// for every value.
func AblationPropensity(seed int64, n, workers int) (*PropensityAblationResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("experiments: ablation n=%d", n)
	}
	root := stats.NewRand(seed)
	gen, err := healthsim.NewGenerator(stats.Split(root), healthsim.DefaultConfig())
	if err != nil {
		return nil, err
	}
	test := gen.Generate(n)
	expl := healthsim.NormalizeRewards(
		learn.SimulateExploration(stats.Split(root), test), gen.MaxPossibleDowntime())
	pol := core.PolicyFunc(func(ctx *core.Context) core.Action { return 3 })
	ref, err := (ope.IPS{}).Estimate(pol, expl)
	if err != nil {
		return nil, err
	}
	res := &PropensityAblationResult{Reference: ref.Value}
	infs := []harvester.PropensityInferrer{
		harvester.KnownPropensity{},
		harvester.EmpiricalPropensity{},
		harvester.LogisticPropensity{},
	}
	res.Rows = make([]PropensityAblationRow, len(infs))
	if err := parallel.For(workers, len(infs), func(i int) error {
		inf := infs[i]
		ds, err := inf.Infer(expl)
		if err != nil {
			return fmt.Errorf("experiments: ablation %s: %w", inf.Name(), err)
		}
		est, err := (ope.IPS{}).Estimate(pol, ds)
		if err != nil {
			return fmt.Errorf("experiments: ablation %s ips: %w", inf.Name(), err)
		}
		res.Rows[i] = PropensityAblationRow{
			Method: inf.Name(),
			AbsErr: math.Abs(est.Value - ref.Value),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return res, nil
}

// WriteTo renders the propensity ablation.
func (r *PropensityAblationResult) WriteTo(w io.Writer) (int64, error) {
	var total int64
	c, err := fmt.Fprintf(w, "Ablation: propensity inference (reference ips=%.4f)\n%-12s %s\n",
		r.Reference, "method", "|Δips|")
	total += int64(c)
	if err != nil {
		return total, err
	}
	for _, row := range r.Rows {
		c, err := fmt.Fprintf(w, "%-12s %.4f\n", row.Method, row.AbsErr)
		total += int64(c)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ExplorationAblationResult compares sequence coverage with and without
// chaos-style failure injection (§5 exploration coverage).
type ExplorationAblationResult struct {
	Plain, Chaos chaos.Coverage
}

// AblationExploration measures run-length coverage on the Fig. 5 setup.
// workers bounds the scheduler's concurrency (1 = serial, <1 =
// runtime.NumCPU()); results are identical for every value — the plain and
// chaotic collection passes are already seeded independently.
func AblationExploration(seed int64, n, workers int) (*ExplorationAblationResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("experiments: ablation n=%d", n)
	}
	cfg := lbsim.TwoServerFig5()
	res := &ExplorationAblationResult{}
	err := parallel.Do(workers,
		func() error {
			plain, err := chaos.Collect(cfg, nil, n, seed)
			if err != nil {
				return err
			}
			res.Plain, err = chaos.MeasureCoverage(plain, 20)
			return err
		},
		func() error {
			sched := chaos.RandomSchedule(seed+1, len(cfg.Servers), n, 6, n/20)
			chaotic, err := chaos.Collect(cfg, sched, n, seed)
			if err != nil {
				return err
			}
			res.Chaos, err = chaos.MeasureCoverage(chaotic, 20)
			return err
		},
	)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// WriteTo renders the coverage comparison.
func (r *ExplorationAblationResult) WriteTo(w io.Writer) (int64, error) {
	s := fmt.Sprintf("Ablation: exploration coverage (uniform random vs + chaos)\n%-10s %-14s %-14s %s\n%-10s %-14d %-14d %.2f\n%-10s %-14d %-14d %.2f\n",
		"source", "longest run", "runs ≥ 20", "max window share",
		"plain", r.Plain.LongestRun, r.Plain.RunsAtLeast[20], r.Plain.ActionShareMax,
		"chaos", r.Chaos.LongestRun, r.Chaos.RunsAtLeast[20], r.Chaos.ActionShareMax)
	n, err := io.WriteString(w, s)
	return int64(n), err
}

// SampleWidthRow is one Redis maxmemory-samples setting.
type SampleWidthRow struct {
	SampleSize int
	// FreqSizeHitRate is the winning policy's hitrate at this width;
	// EvictionLogged the number of logged decisions (data volume).
	FreqSizeHitRate float64
	EvictionsLogged int
}

// SampleWidthResult sweeps the eviction sample width.
type SampleWidthResult struct {
	Rows []SampleWidthRow
}

// AblationSampleWidth sweeps the candidate sample size (the paper's "reduce
// the action space and data collection by considering only a random
// subsample of the items"). workers bounds the per-width scheduler's
// concurrency (1 = serial, <1 = runtime.NumCPU()); results are identical
// for every value — each width's cache and replay RNGs derive from a
// (seed, index) substream.
func AblationSampleWidth(seed int64, requests int, widths []int, workers int) (*SampleWidthResult, error) {
	if requests <= 0 || len(widths) == 0 {
		return nil, fmt.Errorf("experiments: ablation requests=%d widths=%v", requests, widths)
	}
	for _, width := range widths {
		if width <= 0 {
			return nil, fmt.Errorf("experiments: sample width %d", width)
		}
	}
	w := cachesim.DefaultBigSmall()
	res := &SampleWidthResult{Rows: make([]SampleWidthRow, len(widths))}
	err := parallel.ForSeeded(workers, len(widths), seed, func(i int, r *rand.Rand) error {
		cfg := cachesim.Table3CacheConfig(w)
		cfg.SampleSize = widths[i]
		c, err := cachesim.New(cfg, cachesim.FreqSizeEvictor{}, stats.Split(r))
		if err != nil {
			return err
		}
		hr, err := cachesim.Replay(c, w, stats.Split(r), requests)
		if err != nil {
			return err
		}
		res.Rows[i] = SampleWidthRow{
			SampleSize:      widths[i],
			FreqSizeHitRate: hr,
			EvictionsLogged: len(c.EvictionLog()),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// WriteTo renders the sweep.
func (r *SampleWidthResult) WriteTo(w io.Writer) (int64, error) {
	var total int64
	c, err := fmt.Fprintf(w, "Ablation: eviction sample width\n%-8s %-12s %s\n", "width", "hitrate", "evictions logged")
	total += int64(c)
	if err != nil {
		return total, err
	}
	for _, row := range r.Rows {
		c, err := fmt.Fprintf(w, "%-8d %-12.3f %d\n", row.SampleSize, row.FreqSizeHitRate, row.EvictionsLogged)
		total += int64(c)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// simulateSkewedExploration reveals one action per full-feedback row under
// an ε-greedy-around-the-default logging policy whose ε itself varies per
// decision in [epsLo, 1] (as successive deployments with different
// exploration budgets would produce). The varying ε gives the importance
// weights a continuous tail, so clipping trades real variance against real
// bias. Exact propensities are recorded.
func simulateSkewedExploration(r *rand.Rand, ds learn.FullFeedbackDataset, epsLo float64) core.Dataset {
	out := make(core.Dataset, len(ds))
	for i := range ds {
		row := &ds[i]
		k := row.Context.NumActions
		def := core.Action(k - 1)
		eps := epsLo + (1-epsLo)*r.Float64()
		var a core.Action
		if r.Float64() < eps {
			a = core.Action(r.Intn(k))
		} else {
			a = def
		}
		p := eps / float64(k)
		if a == def {
			p += 1 - eps
		}
		out[i] = core.Datapoint{
			Context:    row.Context,
			Action:     a,
			Reward:     row.Rewards[a],
			Propensity: p,
			Seq:        int64(i),
		}
	}
	return out
}
