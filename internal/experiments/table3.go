package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/cachesim"
	"repro/internal/harvester"
	"repro/internal/learn"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// Table3Params configures the Table 3 experiment: hitrates of cache
// eviction policies on the big/small item workload.
type Table3Params struct {
	Seed int64
	// Requests per replay run.
	Requests int
	// Workload is the big/small mix; CacheBytes/SampleSize override the
	// Table3CacheConfig defaults when non-zero.
	Workload   cachesim.BigSmallWorkload
	CacheBytes int64
	SampleSize int
	// Horizon caps the look-ahead reward for CB training.
	Horizon float64
	// Workers bounds the candidate scheduler's concurrency: 1 runs the
	// serial path, <1 selects runtime.NumCPU(). Results are identical for
	// every value — each candidate's cache and replay RNGs derive from a
	// (seed, index) substream.
	Workers int
}

// DefaultTable3Params returns the paper-shaped configuration.
func DefaultTable3Params() Table3Params {
	return Table3Params{
		Seed:     1,
		Requests: 60000,
		Workload: cachesim.DefaultBigSmall(),
		Horizon:  2000,
	}
}

// Table3Row is one eviction policy's hitrate.
type Table3Row struct {
	Policy  string
	HitRate float64
}

// Table3Result is the table.
type Table3Result struct {
	Params Table3Params
	Rows   []Table3Row
}

// cacheConfig materializes the run configuration.
func (p *Table3Params) cacheConfig(logs bool) (cachesim.Config, error) {
	if err := p.Workload.Validate(); err != nil {
		return cachesim.Config{}, err
	}
	cfg := cachesim.Table3CacheConfig(p.Workload)
	if p.CacheBytes > 0 {
		cfg.MaxBytes = p.CacheBytes
	}
	if p.SampleSize > 0 {
		cfg.SampleSize = p.SampleSize
	}
	cfg.LogAccesses, cfg.LogEvictions = logs, logs
	return cfg, nil
}

// Table3 runs the experiment: collect exploration data under random
// eviction (which also yields the Random row), harvest ⟨x,a,r,p⟩ with
// look-ahead rewards, train the CB eviction model, then measure every
// policy online.
func Table3(p Table3Params) (*Table3Result, error) {
	if p.Requests <= 0 || p.Horizon <= 0 {
		return nil, fmt.Errorf("experiments: table3 params %+v", p)
	}
	root := stats.NewRand(p.Seed)

	// Exploration run (doubles as the Random row).
	logCfg, err := p.cacheConfig(true)
	if err != nil {
		return nil, err
	}
	randomCache, err := cachesim.New(logCfg, cachesim.RandomEvictor{R: stats.Split(root)}, stats.Split(root))
	if err != nil {
		return nil, err
	}
	randomHR, err := cachesim.Replay(randomCache, p.Workload, stats.Split(root), p.Requests)
	if err != nil {
		return nil, fmt.Errorf("experiments: table3 exploration replay: %w", err)
	}
	expl, err := harvester.HarvestEvictions(randomCache.EvictionLog(), randomCache.AccessLog(), p.Horizon)
	if err != nil {
		return nil, fmt.Errorf("experiments: table3 harvest: %w", err)
	}
	model, err := learn.FitRewardModel(expl, learn.FitOptions{Lambda: 1e-3})
	if err != nil {
		return nil, fmt.Errorf("experiments: table3 CB training: %w", err)
	}

	res := &Table3Result{Params: p}
	runCfg, err := p.cacheConfig(false)
	if err != nil {
		return nil, err
	}
	// Each candidate's cache sampling and replay draws come from its own
	// (seed, index) substream, so the rows are invariant to worker count
	// and to the other candidates' RNG consumption.
	cands := []struct {
		name string
		ev   cachesim.Evictor
	}{
		{"LRU", cachesim.LRUEvictor{}},
		{"LFU", cachesim.LFUEvictor{}},
		{"CB policy", cachesim.CBEvictor{Model: model}},
		{"Freq/size", cachesim.FreqSizeEvictor{}},
	}
	res.Rows = make([]Table3Row, 1+len(cands))
	res.Rows[0] = Table3Row{Policy: "Random", HitRate: randomHR}
	base := root.Int63()
	err = parallel.ForSeeded(p.Workers, len(cands), base, func(i int, r *rand.Rand) error {
		cand := cands[i]
		c, err := cachesim.New(runCfg, cand.ev, stats.Split(r))
		if err != nil {
			return err
		}
		hr, err := cachesim.Replay(c, p.Workload, stats.Split(r), p.Requests)
		if err != nil {
			return fmt.Errorf("experiments: table3 %s replay: %w", cand.name, err)
		}
		res.Rows[i+1] = Table3Row{Policy: cand.name, HitRate: hr}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// WriteTo renders the table in the paper's layout.
func (r *Table3Result) WriteTo(w io.Writer) (int64, error) {
	var total int64
	c, err := fmt.Fprintf(w, "Table 3: hitrates of cache eviction policies (big/small workload)\n%-12s %s\n", "Policy", "Hit rate")
	total += int64(c)
	if err != nil {
		return total, err
	}
	for _, row := range r.Rows {
		c, err := fmt.Fprintf(w, "%-12s %.1f%%\n", row.Policy, 100*row.HitRate)
		total += int64(c)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
