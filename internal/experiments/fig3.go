package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/healthsim"
	"repro/internal/learn"
	"repro/internal/ope"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// Fig3Params configures the Fig. 3 experiment: the error of the ips
// estimator (relative to full-feedback ground truth) on a trained policy,
// as the test set grows, with 5th/95th percentiles over many
// partial-information simulations.
type Fig3Params struct {
	// Seed drives everything (population, training, resimulations).
	Seed int64
	// TrainN is the number of episodes used to train the evaluated policy.
	TrainN int
	// TestNs is the x-axis: test-set sizes.
	TestNs []int
	// Resims is the number of partial-information simulations per size
	// (paper: 1000).
	Resims int
	// Workers bounds the replicate scheduler's concurrency: 1 runs the
	// serial path, <1 selects runtime.NumCPU(). Results are identical for
	// every value — each resimulation draws from a (seed, index) substream.
	Workers int
	// Config is the machine-health generative model.
	Config healthsim.Config
}

// DefaultFig3Params mirrors the paper's setup (the 3500-point midpoint is
// where the paper quotes "error below 20% with median error at 8%").
func DefaultFig3Params() Fig3Params {
	return Fig3Params{
		Seed:   1,
		TrainN: 8000,
		TestNs: []int{250, 500, 1000, 2000, 3500, 7000, 14000},
		Resims: 1000,
		Config: healthsim.DefaultConfig(),
	}
}

// Fig3Row is one test-set size's error distribution.
type Fig3Row struct {
	TestN int
	// MedianRelErr / P5RelErr / P95RelErr describe |ips − truth|/|truth|
	// over the resimulations (P95 is the top of the paper's error bars,
	// i.e. δ = 0.05).
	MedianRelErr, P5RelErr, P95RelErr float64
	// Truth is the policy's ground-truth normalized reward on the test set.
	Truth float64
}

// Fig3Result is the full curve.
type Fig3Result struct {
	Params Fig3Params
	Rows   []Fig3Row
}

// Fig3 runs the experiment: train a CB policy on simulated exploration
// data, then repeatedly re-simulate exploration on fresh test sets and
// measure how far the ips estimate lands from the full-feedback truth.
func Fig3(p Fig3Params) (*Fig3Result, error) {
	if p.TrainN <= 0 || len(p.TestNs) == 0 || p.Resims <= 0 {
		return nil, fmt.Errorf("experiments: fig3 params %+v", p)
	}
	root := stats.NewRand(p.Seed)
	gen, err := healthsim.NewGenerator(stats.Split(root), p.Config)
	if err != nil {
		return nil, err
	}
	maxDown := gen.MaxPossibleDowntime()

	// Train the policy the paper evaluates: CB on simulated exploration.
	train := gen.Generate(p.TrainN)
	expl := learn.SimulateExploration(stats.Split(root), train)
	model, err := learn.FitRewardModel(expl, learn.FitOptions{NumActions: healthsim.NumWaitActions})
	if err != nil {
		return nil, fmt.Errorf("experiments: fig3 training: %w", err)
	}
	policy := model.GreedyPolicy(false)

	res := &Fig3Result{Params: p}
	for _, testN := range p.TestNs {
		if testN <= 0 {
			return nil, fmt.Errorf("experiments: fig3 testN=%d", testN)
		}
		test := gen.Generate(testN)
		// Ground truth on the normalized [0,1] reward scale.
		truth := 0.0
		for i := range test {
			row := &test[i]
			d := -row.Rewards[policy.Act(&row.Context)]
			truth += 1 - math.Min(d, maxDown)/maxDown
		}
		truth /= float64(len(test))

		// One root draw per test size seeds this size's substream family;
		// each resimulation then derives its own RNG from (base, rep), so
		// no replicate's stream depends on another's consumption (the old
		// shared simR) or on goroutine scheduling.
		relErrs := make([]float64, p.Resims)
		base := root.Int63()
		err := parallel.ForSeeded(p.Workers, p.Resims, base, func(rep int, r *rand.Rand) error {
			explTest := learn.SimulateExploration(r, test)
			norm := healthsim.NormalizeRewards(explTest, maxDown)
			est, err := (ope.IPS{}).Estimate(policy, norm)
			if err != nil {
				return fmt.Errorf("experiments: fig3 resim %d: %w", rep, err)
			}
			relErrs[rep] = math.Abs(est.Value-truth) / truth
			return nil
		})
		if err != nil {
			return nil, err
		}
		qs, err := stats.QuantilesSorted(relErrs, 0.05, 0.5, 0.95)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig3Row{
			TestN:        testN,
			P5RelErr:     qs[0],
			MedianRelErr: qs[1],
			P95RelErr:    qs[2],
			Truth:        truth,
		})
	}
	return res, nil
}

// WriteTo renders the curve.
func (r *Fig3Result) WriteTo(w io.Writer) (int64, error) {
	var total int64
	c, err := fmt.Fprintf(w, "Fig 3: ips estimator error vs ground truth (machine health, %d resims)\n%-8s %-12s %-12s %-12s\n",
		r.Params.Resims, "N", "p5 rel-err", "median", "p95 rel-err")
	total += int64(c)
	if err != nil {
		return total, err
	}
	for _, row := range r.Rows {
		c, err := fmt.Fprintf(w, "%-8d %-12.4f %-12.4f %-12.4f\n",
			row.TestN, row.P5RelErr, row.MedianRelErr, row.P95RelErr)
		total += int64(c)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
