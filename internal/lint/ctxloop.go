package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// CtxLoop flags blocking channel operations and sleeps inside loops that
// have a cancellable context in scope but never consult it — the
// CacheLogSource bug class: a source goroutine parked on `out <- dp` (or
// a poll sleep) outlives its context forever because cancellation is
// never observed. A loop is deaf when its header and body contain no use
// of any in-scope context object at all; one mention (ctx.Done() in a
// select, ctx.Err() in the condition, ctx passed to the blocking call)
// silences the loop.
//
// In-scope contexts are function parameters of type context.Context and
// locals derived from context.WithCancel/WithDeadline/WithTimeout/
// WithValue, including those captured by nested function literals.
// Locals created from context.Background() or context.TODO() are exempt:
// they cannot be cancelled, so there is nothing to consult (the
// examples' poll loops are deliberate).
//
// Range over a channel is exempt — that is the close-based shutdown
// idiom, terminated by the sender. The suggested fix wraps a bare send
// or receive statement in a select with a <-ctx.Done() case.
var CtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc:  "blocking channel ops or sleeps in loops that never consult an in-scope context",
	Run:  runCtxLoop,
}

func runCtxLoop(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxLoopScan(pass, fd.Type, fd.Body, nil)
		}
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// ctxLoopScan analyzes one function body given the contexts inherited
// from enclosing functions (closure capture), then recurses into nested
// function literals with the extended set.
func ctxLoopScan(pass *Pass, ft *ast.FuncType, body *ast.BlockStmt, inherited []types.Object) {
	ctxs := append([]types.Object(nil), inherited...)
	if ft != nil && ft.Params != nil {
		for _, field := range ft.Params.List {
			for _, nm := range field.Names {
				if obj := pass.Info.Defs[nm]; obj != nil && isContextType(obj.Type()) {
					ctxs = append(ctxs, obj)
				}
			}
		}
	}
	// Derived cancellable locals: ctx, cancel := context.WithTimeout(...).
	// Background()/TODO() locals are deliberately not collected.
	inspectShallow(body, func(n ast.Node, _ []ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgPath, name, isPkg := pkgFuncCall(pass.Info, sel)
		if !isPkg || pkgPath != "context" {
			return true
		}
		switch name {
		case "WithCancel", "WithDeadline", "WithTimeout", "WithValue", "WithCancelCause":
		default:
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj != nil && isContextType(obj.Type()) {
				ctxs = append(ctxs, obj)
			}
		}
		return true
	})

	// Check each loop whose body is directly in this function, and recurse
	// into function literals with the accumulated context set.
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				ctxLoopScan(pass, n.Type, n.Body, ctxs)
				return false
			case *ast.ForStmt:
				ctxLoopCheck(pass, n, n.Body, ft, ctxs)
			case *ast.RangeStmt:
				ctxLoopCheck(pass, n, n.Body, ft, ctxs)
			}
			return true
		})
	}
	walk(body)
}

// ctxLoopCheck reports blocking operations in one loop when no in-scope
// context is consulted anywhere in the loop. Nested loops are not
// descended into — each gets its own check — but they do count toward
// the consultation scan, and so do nested function literals: a ctx use
// anywhere inside the loop means cancellation was considered.
func ctxLoopCheck(pass *Pass, loop ast.Node, body *ast.BlockStmt, ft *ast.FuncType, ctxs []types.Object) {
	if len(ctxs) == 0 {
		return
	}
	if loopConsultsCtx(pass, loop, ctxs) {
		return
	}
	ctxName := consultName(ctxs)
	for _, op := range blockingOps(pass, body) {
		fixes := ctxSelectFix(pass, op, ft, ctxName)
		suffix := ""
		if fixes == nil {
			suffix = fmt.Sprintf(" (add a select case on <-%s.Done())", ctxName)
		}
		pass.ReportFix(op.pos, fixes,
			"%s inside loop but in-scope context %q is never consulted; cancellation cannot stop this loop%s",
			op.what, ctxName, suffix)
	}
}

// loopConsultsCtx reports whether any identifier anywhere in the loop
// (header and body, including nested literals) resolves to one of the
// in-scope context objects.
func loopConsultsCtx(pass *Pass, loop ast.Node, ctxs []types.Object) bool {
	set := make(map[types.Object]bool, len(ctxs))
	for _, o := range ctxs {
		set[o] = true
	}
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil && set[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// consultName picks the context variable to name in messages and fixes:
// the one literally called ctx when present, else the first in scope.
func consultName(ctxs []types.Object) string {
	for _, o := range ctxs {
		if o.Name() == "ctx" {
			return "ctx"
		}
	}
	return ctxs[0].Name()
}

// blockingOp is one blocking statement found in a loop body.
type blockingOp struct {
	pos  token.Pos
	what string
	// stmt is the whole statement when it can be select-wrapped (a bare
	// send or a bare receive expression statement); nil otherwise.
	stmt ast.Stmt
	// comm is the rendered communication clause for the fix.
	comm string
}

// blockingOps scans a loop body for blocking channel operations and
// sleeps, skipping nested function literals, nested loops (checked
// separately), and select statements (a select is already multiplexing;
// whether it includes ctx is the consultation scan's question).
func blockingOps(pass *Pass, body *ast.BlockStmt) []blockingOp {
	var ops []blockingOp
	inspectShallow(body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt:
			return false
		case *ast.SendStmt:
			ops = append(ops, blockingOp{
				pos:  n.Arrow,
				what: fmt.Sprintf("blocking send on %s", types.ExprString(n.Chan)),
				stmt: n,
				comm: renderNode(pass, n),
			})
			return false
		case *ast.UnaryExpr:
			if n.Op != token.ARROW {
				return true
			}
			op := blockingOp{
				pos:  n.OpPos,
				what: fmt.Sprintf("blocking receive from %s", types.ExprString(n.X)),
			}
			// Only a bare `<-ch` statement can be select-wrapped; a
			// receive with assignment would move the variable into the
			// case's scope.
			if len(stack) > 0 {
				if es, ok := stack[len(stack)-1].(*ast.ExprStmt); ok && unparen(es.X) == n {
					op.stmt = es
					op.comm = renderNode(pass, n)
				}
			}
			ops = append(ops, op)
			return false
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if pkgPath, name, isPkg := pkgFuncCall(pass.Info, sel); isPkg &&
					pkgPath == "time" && name == "Sleep" {
					ops = append(ops, blockingOp{pos: n.Pos(), what: "time.Sleep"})
				}
			}
		}
		return true
	})
	return ops
}

// renderNode prints a node back to source text.
func renderNode(pass *Pass, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pass.Fset, n); err != nil {
		return ""
	}
	return buf.String()
}

// ctxSelectFix wraps a bare send/receive statement in a select that also
// watches ctx.Done(). Only built when the enclosing function's return
// shape admits a mechanical early return: no results (plain return) or a
// single error (return ctx.Err()).
func ctxSelectFix(pass *Pass, op blockingOp, ft *ast.FuncType, ctxName string) []TextEdit {
	if op.stmt == nil || op.comm == "" {
		return nil
	}
	ret := ""
	switch {
	case ft == nil || ft.Results == nil || len(ft.Results.List) == 0:
		ret = "return"
	case len(ft.Results.List) == 1 && len(ft.Results.List[0].Names) <= 1 &&
		types.ExprString(ft.Results.List[0].Type) == "error":
		ret = fmt.Sprintf("return %s.Err()", ctxName)
	default:
		return nil
	}
	text := fmt.Sprintf("select {\ncase %s:\ncase <-%s.Done():\n%s\n}", op.comm, ctxName, ret)
	return []TextEdit{pass.edit(op.stmt.Pos(), op.stmt.End(), text)}
}
