package lint

import (
	"go/ast"
)

// walltimeDeterministic lists the discrete-event / simulation packages
// whose clocks must be virtual. A time.Now inside one of them couples the
// simulation to the host scheduler, so paired-seed runs stop being
// bit-identical and resimulation-based estimates drift.
var walltimeDeterministic = map[string]bool{
	"repro/internal/des":       true,
	"repro/internal/healthsim": true,
	"repro/internal/cachesim":  true,
	"repro/internal/lbsim":     true,
}

// walltimeBanned is the set of wall-clock readers flagged inside
// deterministic packages. Duration arithmetic and time.Time values remain
// fine; only sampling the host clock is banned.
var walltimeBanned = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// WallTime flags wall-clock reads inside the deterministic simulation
// packages; simulations must advance their own virtual clock.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "time.Now/time.Since inside deterministic simulation packages",
	Run:  runWallTime,
}

func runWallTime(pass *Pass) {
	if !walltimeDeterministic[pass.Pkg.Path()] {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, name, ok := pkgFuncCall(pass.Info, sel)
			if !ok || pkgPath != "time" || !walltimeBanned[name] {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"time.%s reads the wall clock inside deterministic simulation package %s; advance the simulation's virtual clock instead",
				name, pass.Pkg.Path())
			return true
		})
	}
}
