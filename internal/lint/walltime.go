package lint

import (
	"go/ast"
)

// walltimeDeterministic lists the discrete-event / simulation packages
// whose clocks must be virtual. A time.Now inside one of them couples the
// simulation to the host scheduler, so paired-seed runs stop being
// bit-identical and resimulation-based estimates drift.
var walltimeDeterministic = map[string]bool{
	"repro/internal/des":       true,
	"repro/internal/healthsim": true,
	"repro/internal/cachesim":  true,
	"repro/internal/lbsim":     true,
}

// walltimeObsPkg is the observability layer, which follows a different
// walltime discipline: time flows through an injected Clock so the tracer
// can run on virtual time in simulations, and the only sanctioned host
// clock read is the WallClock constructor path. A stray time.Now anywhere
// else in the package would silently pin telemetry to the host clock.
const walltimeObsPkg = "repro/internal/obs"

// walltimeBanned is the set of wall-clock readers flagged inside
// deterministic packages. Duration arithmetic and time.Time values remain
// fine; only sampling the host clock is banned.
var walltimeBanned = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// WallTime flags wall-clock reads inside the deterministic simulation
// packages; simulations must advance their own virtual clock. In
// repro/internal/obs it enforces clock injection instead: host clock reads
// outside the WallClock constructor path are flagged.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "time.Now/time.Since inside deterministic simulation packages, or outside the sanctioned WallClock path in internal/obs",
	Run:  runWallTime,
}

func runWallTime(pass *Pass) {
	obsMode := pass.Pkg.Path() == walltimeObsPkg
	if !obsMode && !walltimeDeterministic[pass.Pkg.Path()] {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if obsMode && walltimeObsExempt(decl) {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pkgPath, name, ok := pkgFuncCall(pass.Info, sel)
				if !ok || pkgPath != "time" || !walltimeBanned[name] {
					return true
				}
				if obsMode {
					pass.Reportf(sel.Sel.Pos(),
						"time.%s reads the host clock inside %s; time must flow through an injected Clock (only the WallClock constructor path may read it)",
						name, walltimeObsPkg)
					return true
				}
				pass.Reportf(sel.Sel.Pos(),
					"time.%s reads the wall clock inside deterministic simulation package %s; advance the simulation's virtual clock instead",
					name, pass.Pkg.Path())
				return true
			})
		}
	}
}

// walltimeObsExempt reports whether decl is part of internal/obs's
// sanctioned wall-clock constructor path: the WallClock function itself or
// a method on its concrete wallClock type.
func walltimeObsExempt(decl ast.Decl) bool {
	fn, ok := decl.(*ast.FuncDecl)
	if !ok {
		return false
	}
	if fn.Recv == nil {
		return fn.Name.Name == "WallClock"
	}
	for _, field := range fn.Recv.List {
		t := field.Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok && id.Name == "wallClock" {
			return true
		}
	}
	return false
}
