package lint

import (
	"go/ast"
)

// rawrandApproved lists the packages allowed to construct math/rand
// generators directly: the seeded RNG plumbing every experiment threads,
// and the deterministic replicate scheduler, which materializes one
// generator per (rootSeed, replicateIndex) substream — seed-threaded by
// construction. Everywhere else, rand.New hides a seed from the logs and
// breaks paired-seed reproducibility.
var rawrandApproved = map[string]bool{
	"repro/internal/stats":    true,
	"repro/internal/parallel": true,
}

// rawrandGlobal lists the math/rand (and math/rand/v2) top-level functions
// that draw from the process-global source. The global source is never
// acceptable: its draws are unlogged, unseeded, and shared across
// goroutines, so no propensity can be attributed to them.
var rawrandGlobal = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 spellings.
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "Uint": true, "UintN": true, "Uint32N": true, "Uint64N": true,
}

// RawRand flags randomness that escapes the seeded RNG plumbing: any use
// of a math/rand global-source function, and any rand.New outside
// repro/internal/stats. Fix by threading a *rand.Rand from stats.NewRand
// or stats.Split.
var RawRand = &Analyzer{
	Name: "rawrand",
	Doc:  "math/rand global-source calls and rand.New outside repro/internal/stats",
	Run:  runRawRand,
}

func runRawRand(pass *Pass) {
	approved := rawrandApproved[pass.Pkg.Path()]
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, name, ok := pkgFuncCall(pass.Info, sel)
			if !ok || (pkgPath != "math/rand" && pkgPath != "math/rand/v2") {
				return true
			}
			switch {
			case rawrandGlobal[name]:
				pass.Reportf(sel.Sel.Pos(),
					"%s.%s draws from the process-global source; thread a seeded *rand.Rand (repro/internal/stats.NewRand/Split) instead",
					pkgPath, name)
			case name == "New" && !approved:
				pass.Reportf(sel.Sel.Pos(),
					"rand.New outside the approved RNG plumbing; construct generators with repro/internal/stats.NewRand or stats.Split so every stream is seed-threaded")
			}
			return true
		})
	}
}
