package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags statements in internal/... packages that call a function
// returning an error and throw the result away. A dropped error in the
// harvesting pipeline usually means a datapoint silently vanished or a
// checkpoint silently failed — both corrupt estimates without crashing.
// Explicit discards (`_ = f()`) are allowed: they are visible in review.
// Deferred Close/Flush/Sync and the fmt print family are allowlisted as
// idioms whose errors are conventionally unactionable.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "discarded error returns in internal/... packages",
	Run:  runErrDrop,
}

// errDropDeferAllowed lists method/function names whose deferred error is
// conventionally dropped.
var errDropDeferAllowed = map[string]bool{
	"Close": true,
	"Flush": true,
	"Sync":  true,
}

func runErrDrop(pass *Pass) {
	path := pass.Pkg.Path()
	if !strings.Contains(path, "internal/") {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDroppedCall(pass, call, false)
				}
			case *ast.DeferStmt:
				checkDroppedCall(pass, n.Call, true)
				return false // the call itself is handled; skip re-visiting
			}
			return true
		})
	}
}

func checkDroppedCall(pass *Pass, call *ast.CallExpr, deferred bool) {
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	if !returnsError(pass.Info, call) {
		return
	}
	name := calleeName(call)
	if isFmtPrint(pass.Info, call) {
		return
	}
	if isInfallibleWriter(pass.Info, call) {
		return
	}
	if deferred {
		if errDropDeferAllowed[lastSelector(name)] {
			return
		}
		pass.Reportf(call.Pos(),
			"deferred call to %s discards its error; handle it in a deferred closure or //lint:ignore with a reason", name)
		return
	}
	pass.Reportf(call.Pos(),
		"result of %s contains an error that is discarded; handle it or assign it explicitly", name)
}

// returnsError reports whether the call's result type is error or a tuple
// containing an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errType)
	}
}

// isFmtPrint reports whether the call resolves to one of fmt's print
// functions, whose error results are conventionally ignored.
func isFmtPrint(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgPath, name, ok := pkgFuncCall(info, sel)
	if !ok || pkgPath != "fmt" {
		return false
	}
	switch name {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
		return true
	}
	return false
}

// isInfallibleWriter reports whether the call is a method on
// bytes.Buffer or strings.Builder, whose Write* methods are documented to
// always return a nil error (they grow the buffer or panic on overflow).
func isInfallibleWriter(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "bytes.Buffer", "strings.Builder":
		return true
	}
	return false
}

// calleeName renders the called expression for the message.
func calleeName(call *ast.CallExpr) string {
	return types.ExprString(call.Fun)
}

// lastSelector returns the final dotted component of a rendered callee.
func lastSelector(name string) string {
	if i := strings.LastIndex(name, "."); i >= 0 {
		return name[i+1:]
	}
	return name
}
