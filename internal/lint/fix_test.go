package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// runFixPass loads the package at dir, runs the fixable analyzers, and
// applies suggested fixes, returning how many were applied.
func runFixPass(t *testing.T, dir string) int {
	t.Helper()
	pkg, err := LoadDir(dir, "repro/internal/fixture")
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	findings := RunPackage(pkg, []*Analyzer{DetOrder, CtxLoop})
	applied, err := ApplyFixes(findings)
	if err != nil {
		t.Fatalf("applying fixes: %v", err)
	}
	return applied
}

// TestApplyFixesIdempotent applies -fix twice to the fixdemo fixture: the
// first pass must rewrite both loops (sort-keys-before-range with the
// "sort" import inserted, and the ctx select wrap), the second must be a
// byte-for-byte no-op, and the result must match fixdemo.go.golden.
func TestApplyFixesIdempotent(t *testing.T) {
	src := filepath.Join("testdata", "src", "fixdemo", "fixdemo.go")
	orig, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	work := filepath.Join(dir, "fixdemo.go")
	if err := os.WriteFile(work, orig, 0o644); err != nil {
		t.Fatal(err)
	}

	if applied := runFixPass(t, dir); applied != 2 {
		t.Errorf("first pass applied %d fixes, want 2", applied)
	}
	once, err := os.ReadFile(work)
	if err != nil {
		t.Fatal(err)
	}

	if applied := runFixPass(t, dir); applied != 0 {
		t.Errorf("second pass applied fixes; -fix is not idempotent")
	}
	twice, err := os.ReadFile(work)
	if err != nil {
		t.Fatal(err)
	}
	if string(once) != string(twice) {
		t.Errorf("-fix twice != once:\nfirst:\n%s\nsecond:\n%s", once, twice)
	}

	golden := filepath.Join("testdata", "src", "fixdemo", "fixdemo.go.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(once) != string(want) {
		t.Errorf("fixed output differs from %s:\ngot:\n%s\nwant:\n%s", golden, once, want)
	}

	// The fixed tree must be clean: the analyzers stop firing after their
	// own fixes.
	pkg, err := LoadDir(dir, "repro/internal/fixture")
	if err != nil {
		t.Fatal(err)
	}
	if findings := RunPackage(pkg, []*Analyzer{DetOrder, CtxLoop}); len(findings) != 0 {
		t.Errorf("findings survive their own fixes: %v", findings)
	}
}
