package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"sort"
	"strings"
)

// Baseline support: a committed file of known findings that are reported
// but do not fail the build, so a new analyzer can land strict while its
// legacy findings are burned down. Keys deliberately omit line numbers —
// unrelated edits must not invalidate the baseline — and are counted as
// a multiset: a baseline entry appearing twice absorbs two findings with
// that key, no more.

// BaselineKey is the stable identity of a finding: relative file path,
// analyzer, and message (no line/column).
func BaselineKey(f Finding, rel func(string) string) string {
	return fmt.Sprintf("%s: [%s] %s", rel(f.Pos.Filename), f.Analyzer, f.Message)
}

// ParseBaseline reads a baseline file: one key per line, blank lines and
// #-comments ignored. Returns the key multiset.
func ParseBaseline(data []byte) map[string]int {
	base := make(map[string]int)
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		base[line]++
	}
	return base
}

// FormatBaseline renders the findings as a baseline file, sorted.
func FormatBaseline(findings []Finding, rel func(string) string) []byte {
	keys := make([]string, 0, len(findings))
	for _, f := range findings {
		keys = append(keys, BaselineKey(f, rel))
	}
	sort.Strings(keys)
	var b bytes.Buffer
	b.WriteString("# harvestlint baseline — known findings that do not fail the build.\n")
	b.WriteString("# Burn this file down to empty; never add to it to dodge a real bug.\n")
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// FilterBaseline splits findings into new (not absorbed by the baseline)
// and baselined, and reports stale baseline keys that matched nothing —
// entries to delete now that their finding is fixed.
func FilterBaseline(findings []Finding, base map[string]int, rel func(string) string) (fresh, baselined []Finding, stale []string) {
	remaining := make(map[string]int, len(base))
	for k, n := range base {
		remaining[k] = n
	}
	for _, f := range findings {
		k := BaselineKey(f, rel)
		if remaining[k] > 0 {
			remaining[k]--
			baselined = append(baselined, f)
			continue
		}
		fresh = append(fresh, f)
	}
	for k, n := range remaining {
		for ; n > 0; n-- {
			stale = append(stale, k)
		}
	}
	sort.Strings(stale)
	return fresh, baselined, stale
}
