package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// DetOrder flags `for range` over a map whose body performs an
// order-sensitive operation without sorted keys. Go randomizes map
// iteration order per run, so a map-ordered loop that writes serialized
// output (the PR 4 /metrics bug), folds into a shared float accumulator,
// or merges estimator state produces byte-different output across
// replicas — exactly the nondeterminism the federation tier's
// byte-identical merge guarantees forbid.
//
// Order-insensitive bodies stay silent: merging into a target indexed by
// the range key (per-key state is independent of visit order), integer
// counting (addition over int is commutative and exact), collecting keys
// for a later sort, and appends to a slice that is sorted after the loop.
//
// The suggested fix is the sanctioned pattern: collect the keys, sort
// them, range over the sorted slice, and read the map per key.
var DetOrder = &Analyzer{
	Name: "detorder",
	Doc:  "map iteration whose body writes serialized output or folds order-sensitive state without sorted keys",
	Run:  runDetOrder,
}

// detorderWriters is the serialized-output call set: anything writing
// bytes in loop order.
var detorderWriters = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Marshal": true,
}

// detorderMergers matches accumulator-merge and estimator-fold calls.
func detorderMerger(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "merge") || strings.Contains(lower, "fold") ||
		name == "Add" || name == "AddState"
}

func runDetOrder(pass *Pass) {
	for _, file := range pass.Files {
		walkWithStack(file, func(stack []ast.Node, n ast.Node) {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return
			}
			tv, ok := pass.Info.Types[rs.X]
			if !ok || tv.Type == nil {
				return
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return
			}
			sink := findOrderSink(pass, rs, stack)
			if sink == nil {
				return
			}
			fixes := detorderFix(pass, file, rs, stack)
			suffix := ""
			if fixes == nil {
				suffix = " (sort the keys first and range over them)"
			}
			pass.ReportFix(rs.For, fixes,
				"map iteration order reaches %s; iterating %s unsorted makes the output nondeterministic%s",
				sink.what, types.ExprString(rs.X), suffix)
		})
	}
}

// orderSink describes the order-sensitive operation that justified the
// finding.
type orderSink struct {
	pos  token.Pos
	what string
}

// findOrderSink scans the loop body (not descending into nested function
// literals) for the first order-sensitive operation.
func findOrderSink(pass *Pass, rs *ast.RangeStmt, stack []ast.Node) *orderSink {
	keyed := keyedObjects(pass, rs)
	// safeCalls holds calls already justified by their assignment context:
	// an append whose result lands in per-key state is order-insensitive
	// even though the call itself looks like an unsorted append.
	safeCalls := make(map[*ast.CallExpr]bool)
	var sink *orderSink
	inspectShallow(rs.Body, func(n ast.Node, _ []ast.Node) bool {
		if sink != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Track locals derived from keyed values (merged := m[name]).
			recordKeyedLocals(pass, n, keyed)
			markKeyedAppends(pass, n, keyed, safeCalls)
			if s := orderSensitiveAssign(pass, rs, n, keyed); s != nil {
				sink = s
			}
		case *ast.CallExpr:
			if safeCalls[n] {
				return true
			}
			if s := orderSensitiveCall(pass, rs, n, keyed, stack); s != nil {
				sink = s
			}
		}
		return true
	})
	return sink
}

// markKeyedAppends records append calls whose result is assigned to
// per-key state (dst.Structs[k] = append(..., v...)): the append's
// visit order is keyed away, so the call must not be flagged when the
// walk reaches it. Assignment statements are visited before their
// children, so the set is populated in time.
func markKeyedAppends(pass *Pass, as *ast.AssignStmt, keyed map[types.Object]bool, safe map[*ast.CallExpr]bool) {
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		call, ok := unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, isID := call.Fun.(*ast.Ident); !isID || id.Name != "append" {
			continue
		}
		if lhsIsKeyed(pass.Info, as.Lhs[i], keyed) {
			safe[call] = true
		}
	}
}

// keyedObjects seeds the per-key value set: the range key and value
// variables themselves.
func keyedObjects(pass *Pass, rs *ast.RangeStmt) map[types.Object]bool {
	keyed := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.Defs[id]; obj != nil {
				keyed[obj] = true
			} else if obj := pass.Info.Uses[id]; obj != nil {
				keyed[obj] = true
			}
		}
	}
	return keyed
}

// recordKeyedLocals extends the keyed set through simple derivations: a
// local defined from an expression that mentions a keyed variable
// (merged := v.Merged[name]) is itself per-key state. Only := counts —
// a compound assignment like sum += v mixes per-key input into shared
// state, which is exactly what must stay flaggable.
func recordKeyedLocals(pass *Pass, as *ast.AssignStmt, keyed map[types.Object]bool) {
	if as.Tok != token.DEFINE {
		return
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		if mentionsObjects(pass.Info, as.Rhs[i], keyed) {
			if obj := pass.Info.Defs[id]; obj != nil {
				keyed[obj] = true
			} else if obj := pass.Info.Uses[id]; obj != nil {
				keyed[obj] = true
			}
		}
	}
}

// mentionsObjects reports whether any identifier under e resolves into
// the set.
func mentionsObjects(info *types.Info, e ast.Expr, set map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && set[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// orderSensitiveAssign flags floating-point compound accumulation into
// state that outlives the loop: sum += v over map values visits addends
// in random order, and float addition is not associative.
func orderSensitiveAssign(pass *Pass, rs *ast.RangeStmt, as *ast.AssignStmt, keyed map[types.Object]bool) *orderSink {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return nil
	}
	lhs := as.Lhs[0]
	if !isFloatTyped(pass.Info, lhs) {
		return nil
	}
	if lhsIsKeyed(pass.Info, lhs, keyed) {
		return nil
	}
	return &orderSink{pos: as.TokPos,
		what: fmt.Sprintf("float accumulation %s %s", types.ExprString(lhs), as.Tok)}
}

// lhsIsKeyed reports whether an assignment target is per-key state: the
// base is a keyed local, or the target is indexed by a keyed variable.
func lhsIsKeyed(info *types.Info, lhs ast.Expr, keyed map[types.Object]bool) bool {
	switch l := unparen(lhs).(type) {
	case *ast.Ident:
		obj := info.Uses[l]
		if obj == nil {
			obj = info.Defs[l]
		}
		return obj != nil && keyed[obj]
	case *ast.IndexExpr:
		return mentionsObjects(info, l.Index, keyed)
	case *ast.SelectorExpr:
		return lhsIsKeyed(info, l.X, keyed)
	}
	return false
}

// isFloatTyped reports whether the expression's type is floating point.
func isFloatTyped(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// orderSensitiveCall classifies calls in the loop body: serialized writes
// are always order-sensitive; merges/folds are safe only into per-key
// targets; appends are safe when collecting the key itself or when the
// destination slice is sorted after the loop.
func orderSensitiveCall(pass *Pass, rs *ast.RangeStmt, call *ast.CallExpr, keyed map[types.Object]bool, stack []ast.Node) *orderSink {
	// append(dst, x): order leaks into dst unless x is the bare key (the
	// collect-then-sort idiom) or dst is sorted after the loop.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) >= 2 {
		if keyOnlyArgs(pass.Info, call.Args[1:], keyed, rs) {
			return nil
		}
		if dst, ok := call.Args[0].(*ast.Ident); ok && sortedAfterLoop(pass, rs, dst, stack) {
			return nil
		}
		return &orderSink{pos: call.Pos(),
			what: fmt.Sprintf("append to %s (not sorted after the loop)", types.ExprString(call.Args[0]))}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		// Package-level fmt.Fprintf is also a selector; plain idents
		// (local helpers) are out of scope.
		return nil
	}
	name := sel.Sel.Name
	if pkgPath, fname, isPkg := pkgFuncCall(pass.Info, sel); isPkg {
		if (pkgPath == "fmt" || pkgPath == "encoding/json") && detorderWriters[fname] {
			return &orderSink{pos: call.Pos(), what: fmt.Sprintf("%s.%s", pkgPath, fname)}
		}
		return nil
	}
	// Method calls: receiver locality decides. A writer or merger on a
	// receiver created inside the loop body, or on per-key state, is safe.
	recv := sel.X
	if detorderWriters[name] || detorderMerger(name) {
		if lhsIsKeyed(pass.Info, recv, keyed) || declaredWithin(pass.Info, recv, rs.Body) {
			return nil
		}
		if detorderMerger(name) {
			// Integer bumps (counter.Add(1), atomic counters) are exact and
			// commutative: visit order cannot change the result.
			if allIntArgs(pass.Info, call.Args) {
				return nil
			}
			// A merge routed by the range key itself (hdr.Add(k, v),
			// dst.Set(k, ...)) writes per-key state — order-insensitive
			// across keys even though the receiver is shared.
			if len(call.Args) > 0 && isRangeKey(pass.Info, call.Args[0], rs) {
				return nil
			}
			// Keyed arguments into a keyed target were handled above; a
			// merge whose *arguments* are all per-key but whose target is
			// shared is still order-sensitive for floats — but integer
			// counter bumps are exact. Only float-bearing merges matter;
			// without visibility into the callee, stay conservative and
			// flag shared-target merges.
			return &orderSink{pos: call.Pos(),
				what: fmt.Sprintf("order-sensitive merge %s.%s", types.ExprString(recv), name)}
		}
		return &orderSink{pos: call.Pos(),
			what: fmt.Sprintf("serialized write %s.%s", types.ExprString(recv), name)}
	}
	return nil
}

// allIntArgs reports whether every argument is integer-typed (and there
// is at least one).
func allIntArgs(info *types.Info, args []ast.Expr) bool {
	if len(args) == 0 {
		return false
	}
	for _, a := range args {
		tv, ok := info.Types[a]
		if !ok || tv.Type == nil {
			return false
		}
		b, isBasic := tv.Type.Underlying().(*types.Basic)
		if !isBasic || b.Info()&types.IsInteger == 0 {
			return false
		}
	}
	return true
}

// isRangeKey reports whether the expression is exactly the range
// statement's key variable.
func isRangeKey(info *types.Info, e ast.Expr, rs *ast.RangeStmt) bool {
	keyID, ok := rs.Key.(*ast.Ident)
	if !ok || keyID.Name == "_" {
		return false
	}
	keyObj := info.Defs[keyID]
	if keyObj == nil {
		keyObj = info.Uses[keyID]
	}
	id, ok := unparen(e).(*ast.Ident)
	return ok && keyObj != nil && info.Uses[id] == keyObj
}

// keyOnlyArgs reports whether every appended value is exactly the range
// key variable.
func keyOnlyArgs(info *types.Info, args []ast.Expr, keyed map[types.Object]bool, rs *ast.RangeStmt) bool {
	keyID, ok := rs.Key.(*ast.Ident)
	if !ok || keyID.Name == "_" {
		return false
	}
	keyObj := info.Defs[keyID]
	if keyObj == nil {
		keyObj = info.Uses[keyID]
	}
	for _, a := range args {
		id, isID := unparen(a).(*ast.Ident)
		if !isID {
			return false
		}
		obj := info.Uses[id]
		if obj == nil || obj != keyObj {
			return false
		}
	}
	return true
}

// declaredWithin reports whether the expression's base identifier is
// declared inside the given node's source range (per-iteration state).
func declaredWithin(info *types.Info, e ast.Expr, within ast.Node) bool {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		// x.y.Write: walk to the base.
		if sel, isSel := unparen(e).(*ast.SelectorExpr); isSel {
			return declaredWithin(info, sel.X, within)
		}
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	return obj != nil && obj.Pos() >= within.Pos() && obj.Pos() <= within.End()
}

// sortedAfterLoop reports whether a sort call mentioning dst appears
// after the range statement in an enclosing block — the collect-rows,
// sort-later idiom.
func sortedAfterLoop(pass *Pass, rs *ast.RangeStmt, dst *ast.Ident, stack []ast.Node) bool {
	dstObj := pass.Info.Uses[dst]
	if dstObj == nil {
		return false
	}
	for i := len(stack) - 1; i >= 0; i-- {
		block, ok := stack[i].(*ast.BlockStmt)
		if !ok {
			continue
		}
		for _, stmt := range block.List {
			if stmt.Pos() <= rs.End() {
				continue
			}
			found := false
			ast.Inspect(stmt, func(n ast.Node) bool {
				call, isCall := n.(*ast.CallExpr)
				if !isCall {
					return true
				}
				sel, isSel := call.Fun.(*ast.SelectorExpr)
				if !isSel {
					return true
				}
				pkgPath, name, isPkg := pkgFuncCall(pass.Info, sel)
				if !isPkg || (pkgPath != "sort" && pkgPath != "slices") || !strings.Contains(name, "Sort") && !sortFuncName(name) {
					return true
				}
				for _, a := range call.Args {
					if mentionsObjects(pass.Info, a, map[types.Object]bool{dstObj: true}) {
						found = true
					}
				}
				return !found
			})
			if found {
				return true
			}
		}
	}
	return false
}

// sortFuncName matches the sort package's typed convenience sorters.
func sortFuncName(name string) bool {
	switch name {
	case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
		return true
	}
	return false
}

// detorderFix builds the sort-keys-before-range rewrite when it is safely
// mechanical: `for k[, v] := range m` with an ident key over a pure map
// expression whose key type has an obvious sorter, and a fresh name for
// the key slice. Returns nil when any condition fails (the finding is
// still reported, fix-less).
func detorderFix(pass *Pass, file *ast.File, rs *ast.RangeStmt, stack []ast.Node) []TextEdit {
	if rs.Tok != token.DEFINE {
		return nil
	}
	keyID, ok := rs.Key.(*ast.Ident)
	if !ok || keyID.Name == "_" {
		return nil
	}
	var valID *ast.Ident
	if rs.Value != nil {
		valID, ok = rs.Value.(*ast.Ident)
		if !ok {
			return nil
		}
		if valID.Name == "_" {
			valID = nil
		}
	}
	if !isPureExpr(rs.X) {
		return nil
	}
	tv, ok := pass.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return nil
	}
	mt, ok := tv.Type.Underlying().(*types.Map)
	if !ok {
		return nil
	}
	kb, ok := mt.Key().Underlying().(*types.Basic)
	if !ok {
		return nil
	}
	var sorter string
	switch {
	case kb.Info()&types.IsString != 0:
		sorter = "sort.Strings"
	case kb.Kind() == types.Int:
		sorter = "sort.Ints"
	default:
		return nil
	}
	keyType := types.TypeString(mt.Key(), func(p *types.Package) string {
		if p == pass.Pkg {
			return ""
		}
		return p.Name()
	})
	sliceName := keyID.Name + "s"
	if identInUse(file, sliceName) {
		sliceName = keyID.Name + "Sorted"
		if identInUse(file, sliceName) {
			return nil
		}
	}
	mapText := types.ExprString(rs.X)
	var b strings.Builder
	fmt.Fprintf(&b, "%s := make([]%s, 0, len(%s))\n", sliceName, keyType, mapText)
	fmt.Fprintf(&b, "for %s := range %s {\n", keyID.Name, mapText)
	fmt.Fprintf(&b, "%s = append(%s, %s)\n", sliceName, sliceName, keyID.Name)
	fmt.Fprintf(&b, "}\n")
	fmt.Fprintf(&b, "%s(%s)\n", sorter, sliceName)
	fmt.Fprintf(&b, "for _, %s := range %s {\n", keyID.Name, sliceName)
	if valID != nil {
		fmt.Fprintf(&b, "%s := %s[%s]\n", valID.Name, mapText, keyID.Name)
	}
	edits := []TextEdit{pass.edit(rs.For, rs.Body.Lbrace+1, b.String())}
	if imp := addImportEdit(pass, file, "sort"); imp != nil {
		edits = append(edits, *imp)
	} else if !importsPackage(file, "sort") {
		return nil
	}
	return edits
}

// isPureExpr reports whether re-evaluating the expression is free of side
// effects: identifiers, selections, and indexing with pure parts.
func isPureExpr(e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return isPureExpr(e.X)
	case *ast.IndexExpr:
		return isPureExpr(e.X) && isPureExpr(e.Index)
	case *ast.BasicLit:
		return true
	case *ast.StarExpr:
		return isPureExpr(e.X)
	}
	return false
}

// identInUse reports whether the name occurs anywhere in the file — a
// deliberately coarse freshness check for generated variable names.
func identInUse(file *ast.File, name string) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// importsPackage reports whether the file already imports the path.
func importsPackage(file *ast.File, path string) bool {
	for _, imp := range file.Imports {
		if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == path {
			return true
		}
	}
	return false
}

// addImportEdit builds an edit inserting the import into the file's first
// grouped import block, alphabetically among its existing specs. Returns
// nil when the import is already present or there is no grouped block to
// extend (single-line import declarations are left alone — no fix).
func addImportEdit(pass *Pass, file *ast.File, path string) *TextEdit {
	if importsPackage(file, path) {
		return nil
	}
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT || !gd.Lparen.IsValid() || len(gd.Specs) == 0 {
			continue
		}
		// Insert before the first spec that sorts after path, staying in
		// the first (standard-library) group.
		for _, spec := range gd.Specs {
			is := spec.(*ast.ImportSpec)
			p, err := strconv.Unquote(is.Path.Value)
			if err != nil {
				continue
			}
			if p > path {
				e := pass.edit(is.Pos(), is.Pos(), strconv.Quote(path)+"\n")
				return &e
			}
		}
		last := gd.Specs[len(gd.Specs)-1].(*ast.ImportSpec)
		e := pass.edit(last.End(), last.End(), "\n"+strconv.Quote(path))
		return &e
	}
	return nil
}
