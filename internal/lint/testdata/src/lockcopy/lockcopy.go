// Package fixture exercises the lockcopy analyzer: structs containing a
// sync.Mutex, sync.RWMutex or sync.WaitGroup (directly, embedded, or in an
// array) must travel as pointers.
package fixture

import "sync"

// Guarded couples a mutex with the data it protects.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Wrapper embeds a lock-bearing struct.
type Wrapper struct {
	Guarded
	tag string
}

// Deep buries a WaitGroup inside an array field.
type Deep struct {
	wgs [2]sync.WaitGroup
}

func byValueParam(g Guarded) int { // want "passes Guarded by value"
	return g.n
}

func byValueReturn() Guarded { // want "returns Guarded by value"
	return Guarded{}
}

func embedded(w Wrapper) string { // want "passes Wrapper by value"
	return w.tag
}

func deep(d Deep) int { // want "passes Deep by value"
	return len(d.wgs)
}

func (g Guarded) valueReceiver() int { // want "receiver Guarded by value"
	return g.n
}

func literal() func(Guarded) int {
	return func(g Guarded) int { // want "passes Guarded by value"
		return g.n
	}
}

func pointerParam(g *Guarded) int { return g.n }

func (g *Guarded) pointerReceiver() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// slices and pointers share the original lock: clean.
func viaSlice(gs []Guarded) int { return len(gs) }

//lint:ignore lockcopy fixture demonstrates suppression
func suppressed(g Guarded) int {
	return g.n
}
