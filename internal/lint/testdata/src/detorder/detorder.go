// Package fixture exercises the detorder analyzer: ranging over a map is
// fine until the body does something the iteration order can leak into.
//
// Regression notes — each flagged shape below was found (and fixed) in
// tree when the analyzer first ran:
//   - printUnsorted is the quickstart example's candidate-scoring loop,
//     which printed estimates in random order (and the PR 4 /metrics bug
//     before it);
//   - sharedMerge is the fleet-aggregator shape the keyed-merge exemption
//     (keyedMerge below) exists to distinguish;
//   - the unknown-analyzer error loop in cmd/harvestlint reported a
//     nondeterministic name when several were unknown.
package fixture

import (
	"fmt"
	"sort"
	"strings"
)

// Acc mirrors an order-sensitive float accumulator.
type Acc struct{ Sum float64 }

// Merge folds floats — order-sensitive across keys.
func (a *Acc) Merge(b *Acc) { a.Sum += b.Sum }

// Counter mirrors an integer metric counter.
type Counter struct{ n int64 }

// Add bumps the counter — exact and commutative.
func (c *Counter) Add(d int64) { c.n += d }

// Header mirrors http.Header's key-routed Add.
type Header map[string][]string

// Add appends v under key k.
func (h Header) Add(k, v string) { h[k] = append(h[k], v) }

func printUnsorted(m map[string]int) {
	for k, v := range m { // want "fmt.Printf"
		fmt.Printf("%s=%d\n", k, v)
	}
}

func floatFold(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m { // want "float accumulation"
		sum += v
	}
	return sum
}

// intCount is clean: integer addition is exact and commutative.
func intCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// keyedWrite is clean: per-key writes are independent of visit order.
func keyedWrite(src, dst map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

// keyedMerge is the fleet-aggregator idiom: the merge target is indexed
// by the range key, so each key's fold is self-contained.
func keyedMerge(snap map[string]Acc, dst map[string]Acc) {
	for name, acc := range snap {
		merged := dst[name]
		merged.Merge(&acc)
		dst[name] = merged
	}
}

func sharedMerge(snap map[string]Acc) Acc {
	var grand Acc
	for _, acc := range snap { // want "order-sensitive merge"
		grand.Merge(&acc)
	}
	return grand
}

// counterBump is clean: Add with integer arguments is a counter, not a
// float fold.
func counterBump(m map[string]int, c *Counter) {
	for _, v := range m {
		c.Add(int64(v))
	}
}

// headerCopy is clean: Add routed by the range key writes per-key state
// (the reverse-proxy response-header copy).
func headerCopy(src, dst Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// collectThenSort is the sanctioned pattern the suggested fix produces.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func appendValues(m map[string]int) []int {
	var vals []int
	for _, v := range m { // want "append to vals"
		vals = append(vals, v)
	}
	return vals
}

// appendThenSort is clean: the destination is sorted after the loop.
func appendThenSort(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Ints(vals)
	return vals
}

// keyedAppend is clean: the append result lands in per-key state.
func keyedAppend(src map[string][]string, dst map[string][]string) {
	for k, vs := range src {
		dst[k] = append(dst[k], vs...)
	}
}

// loopLocalWriter is clean: the builder lives one iteration.
func loopLocalWriter(m map[string]int) int {
	total := 0
	for k := range m {
		var b strings.Builder
		b.WriteString(k)
		total += b.Len()
	}
	return total
}

func sharedWriter(m map[string]int, b *strings.Builder) {
	for k := range m { // want "serialized write"
		b.WriteString(k)
	}
}

// suppressed shows the escape hatch with a mandatory reason.
func suppressed(m map[string]int) {
	//lint:ignore detorder debug dump, order irrelevant to the reader
	for k := range m {
		fmt.Println(k)
	}
}
