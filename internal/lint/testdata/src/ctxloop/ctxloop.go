// Package fixture exercises the ctxloop analyzer: a loop that can block
// (channel send/receive, sleep) while a cancellable context sits in scope
// unconsulted outlives its cancellation forever.
//
// Regression notes: deafSend is the CacheLogSource bug (PR 6) — a source
// goroutine parked on `out <- dp` after its consumer left; the buffered
// free-list priming loop in the binary source keeps a reasoned
// //lint:ignore instead (capacity equals trip count, sends never block).
package fixture

import (
	"context"
	"time"
)

func deafSend(ctx context.Context, out chan int) {
	for i := 0; i < 10; i++ {
		out <- i // want "blocking send"
	}
}

func deafRecv(ctx context.Context, in chan int) {
	for {
		<-in // want "blocking receive"
	}
}

func deafRecvAssign(ctx context.Context, in chan int) int {
	total := 0
	for {
		v := <-in // want "blocking receive"
		if v < 0 {
			return total
		}
		total += v
	}
}

func deafSleep(ctx context.Context, poll func() bool) {
	for poll() {
		time.Sleep(time.Second) // want "time.Sleep"
	}
}

// selectConsulted is the sanctioned shape: every blocking point races
// ctx.Done().
func selectConsulted(ctx context.Context, out chan int) error {
	for i := 0; ; i++ {
		select {
		case out <- i:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// condConsulted consults in the loop condition — also accepted.
func condConsulted(ctx context.Context, out chan int) {
	for ctx.Err() == nil {
		out <- 1
	}
}

// passedConsulted hands ctx to the body; cancellation was considered.
func passedConsulted(ctx context.Context, work func(context.Context) bool, out chan int) {
	for work(ctx) {
		out <- 1
	}
}

// rangeChannel is the close-based shutdown idiom: the sender terminates
// the loop by closing the channel, no context needed.
func rangeChannel(ctx context.Context, in chan int) int {
	s := 0
	for v := range in {
		s += v
	}
	_ = ctx.Err()
	return s
}

// backgroundOnly has no cancellable context in scope: Background cannot
// be cancelled, so there is nothing to consult (the examples' poll loops).
func backgroundOnly(out chan int) {
	ctx := context.Background()
	_ = ctx
	for i := 0; i < 3; i++ {
		out <- i
	}
}

// derived pins WithTimeout locals joining the in-scope set.
func derived(parent context.Context, out chan int) {
	ctx, cancel := context.WithTimeout(parent, time.Second)
	defer cancel()
	for {
		out <- 1 // want "blocking send"
	}
	_ = ctx
}

// captured pins closure capture: the goroutine inherits ctx from the
// enclosing function.
func captured(ctx context.Context, out chan int) {
	go func() {
		for {
			out <- 1 // want "blocking send"
		}
	}()
}

// suppressed shows the escape hatch with a mandatory reason.
func suppressed(ctx context.Context, out chan int) {
	for i := 0; i < 4; i++ {
		//lint:ignore ctxloop priming a buffered channel; capacity equals trip count
		out <- i
	}
}
