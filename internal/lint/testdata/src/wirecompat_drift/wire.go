// Package harvestd is the drift variant of the wirecompat fixture: the
// test builds the lock from these definitions, then perturbs the locked
// StateSnapshot field set and the locked SnapshotVersion value, modelling
// a snapshot struct edit that never bumped the version. Both watched
// symbols must then fail against the lock.
package harvestd

// SnapshotVersion guards the snapshot schema.
const SnapshotVersion = 1 // want "records 2"

// SnapshotCounters mirrors the ingest counter block.
type SnapshotCounters struct {
	Lines int64 `json:"lines"`
}

// Accum mirrors the estimator accumulator.
type Accum struct {
	N    int64   `json:"n"`
	SumW float64 `json:"sum_w"`
}

// StateSnapshot mirrors the versioned shard snapshot.
type StateSnapshot struct { // want "field set differs"
	Version  int              `json:"version"`
	Counters SnapshotCounters `json:"counters"`
	Policies map[string]Accum `json:"policies"`
}

// FreshnessVersion guards the freshness-report schema (not perturbed by
// the drift test; it must stay clean while the snapshot symbols fail).
const FreshnessVersion = 1

// SourceFreshness mirrors one source's watermark row.
type SourceFreshness struct {
	Source       string `json:"source"`
	WatermarkSeq int64  `json:"watermark_seq"`
}

// FreshnessReport mirrors the versioned /freshness payload.
type FreshnessReport struct {
	Version int               `json:"version"`
	Sources []SourceFreshness `json:"sources"`
}
