// Package fixture holds malformed suppression directives: both must be
// reported so a typo can never silently disable a check.
package fixture

import "errors"

func work() error { return errors.New("boom") }

func malformed() {
	//lint:ignore errdrop
	work()
}

func unknown() {
	//lint:ignore nosuch some reason
	work()
}
