// Package fixture exercises the walltime analyzer. The golden test loads
// it twice: under repro/internal/des the wall-clock reads below are
// flagged; under a non-simulation import path the analyzer stays silent.
package fixture

import "time"

// Clock is the virtual clock a deterministic simulation must advance.
type Clock struct{ now time.Time }

func wall() time.Time {
	return time.Now() // want "wall clock"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "wall clock"
}

func remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want "wall clock"
}

// step advances the virtual clock: duration arithmetic is always fine.
func step(c *Clock, dt time.Duration) time.Time {
	c.now = c.now.Add(dt)
	return c.now
}

func suppressed() time.Time {
	//lint:ignore walltime fixture demonstrates suppression
	return time.Now()
}
