// Package fixture is loaded under the approved import path
// repro/internal/parallel: the replicate scheduler constructs one
// generator per (rootSeed, index) substream, so rand.New passes here —
// but the global source stays banned even inside the scheduler.
package fixture

import "math/rand"

func substreamRNG(seed int64, index int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(index))) // clean: approved package
}

func stillGlobal() float64 {
	return rand.Float64() // want "global source"
}
