// Package fixture exercises the proptaint analyzer: a sampled propensity
// must reach the log verbatim — no arithmetic, clamping, or conditional
// overwrite between the draw and the Datapoint.Propensity field.
package fixture

// Action mirrors core.Action.
type Action int

// Datapoint mirrors the logged record: the Propensity field is the sink.
type Datapoint struct {
	Action     Action
	Propensity float64
}

// Sample mirrors a policy sampler returning an action-propensity pair.
func Sample(dist []float64) (Action, float64) { return 0, dist[0] }

// SampleProb mirrors a sampler returning only the drawn probability.
func SampleProb(dist []float64) float64 { return dist[0] }

// Categorical mirrors stats.Categorical: draws an index into dist.
func Categorical(dist []float64) int { return 0 }

// Distribution mirrors a policy's Distribution method result.
func Distribution(n int) []float64 { return make([]float64, n) }

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// cleanFlow is the sanctioned pattern: draw, read the distribution entry,
// log it untouched.
func cleanFlow(log func(Datapoint)) {
	dist := Distribution(3)
	i := Categorical(dist)
	p := dist[i]
	log(Datapoint{Action: Action(i), Propensity: p})
}

func compoundRewrite() float64 {
	_, p := Sample([]float64{0.5, 0.5})
	p *= 0.5 // want "rewritten"
	return p
}

func incRewrite() float64 {
	p := SampleProb([]float64{1})
	p++ // want "rewritten"
	return p
}

func recompute() float64 {
	_, p := Sample([]float64{0.5, 0.5})
	p = p / 2 // want "recomputed from arithmetic"
	return p
}

func clampCall() float64 {
	_, p := Sample([]float64{0.5, 0.5})
	p = clamp(p, 0.01, 1) // want "clamped through"
	return p
}

// branchClamp is the clamp spelled as control flow — the shape that
// motivated tracking the enclosing condition, not just call names.
func branchClamp() float64 {
	p := SampleProb([]float64{1})
	if p < 0.01 {
		p = 0.01 // want "branch conditioned on itself"
	}
	return p
}

// drawnIndexTaint pins the Categorical/Distribution pair: dist[i] is a
// sampled propensity even though no call named Sample appears.
func drawnIndexTaint() float64 {
	dist := Distribution(3)
	i := Categorical(dist)
	p := dist[i]
	p = p * 0.9 // want "recomputed from arithmetic"
	return p
}

func sinkArithmetic(d *Datapoint, p float64) {
	d.Propensity = p / 2 // want "arithmetic"
}

func sinkClamp(d *Datapoint, prob float64) {
	d.Propensity = clamp(prob, 0.01, 1) // want "clamped value"
}

// sinkConstant is exempt: a compile-time constant propensity is the
// known-uniform-logger idiom (quickstart's 1.0/3), exact by construction.
func sinkConstant(d *Datapoint) {
	d.Propensity = 1.0 / 3
}

func compositeSink(p float64) Datapoint {
	return Datapoint{Propensity: p * 0.9} // want "arithmetic"
}

// suppressed shows the escape hatch: the directive must carry a reason.
func suppressed() float64 {
	_, p := Sample([]float64{0.5, 0.5})
	//lint:ignore proptaint paired-seed replay divides out the same factor on both sides
	p = p / 2
	return p
}
