// Package fixture exercises the walltime analyzer's internal/obs mode: the
// golden test loads it as repro/internal/obs, where only the WallClock
// constructor path may read the host clock — everything else must take an
// injected Clock.
package fixture

import "time"

// Clock is the injected time source.
type Clock interface{ Now() time.Time }

// WallClock is the sanctioned constructor: exempt by name.
func WallClock() Clock {
	_ = time.Now() // ok: inside the constructor itself
	return wallClock{}
}

type wallClock struct{}

// Now is the one sanctioned host-clock read: exempt by receiver type.
func (wallClock) Now() time.Time { return time.Now() }

// Span models a traced operation; durations must come from the injected
// clock, not from sampling the host clock at End.
type Span struct {
	clock Clock
	start time.Time
}

func (s *Span) end() time.Duration {
	return time.Since(s.start) // want "host clock"
}

func (s *Span) endInjected() time.Duration {
	return s.clock.Now().Sub(s.start) // ok: injected clock
}

func stamp() time.Time {
	return time.Now() // want "host clock"
}

func deadline(d time.Time) time.Duration {
	return time.Until(d) // want "host clock"
}

func suppressed() time.Time {
	//lint:ignore walltime fixture demonstrates suppression
	return time.Now()
}
