// Package fixture exercises the errdrop analyzer. The golden test loads
// it under repro/internal/fixture (where discards are flagged) and again
// under a non-internal path (where the analyzer stays silent).
package fixture

import (
	"errors"
	"fmt"
	"os"
)

func work() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

type resource struct{}

func (resource) Close() error { return nil }
func (resource) Flush() error { return nil }
func (resource) Send() error  { return nil }

func dropped() {
	work() // want "discarded"
}

func droppedPair() {
	pair() // want "discarded"
}

func viaFuncValue(f func() error) {
	f() // want "discarded"
}

func deferredOther(r resource) {
	defer r.Send() // want "deferred"
}

// deferredClose uses the allowlisted defer idioms: clean.
func deferredClose(r resource) {
	defer r.Close()
	defer r.Flush()
}

// explicit discards are visible in review: clean.
func explicit() {
	_ = work()
	_, _ = pair()
}

func handled() error {
	if err := work(); err != nil {
		return err
	}
	return nil
}

// printed uses the fmt allowlist: clean.
func printed(n int) {
	fmt.Println("n =", n)
	fmt.Fprintf(os.Stderr, "%d\n", n)
}

func suppressed() {
	//lint:ignore errdrop fixture demonstrates suppression
	work()
}
