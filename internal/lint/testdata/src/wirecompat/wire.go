// Package harvestd is a miniature of the real snapshot wire surface,
// loaded under the watched import path repro/internal/harvestd. The clean
// test locks exactly these shapes; the drift test (wirecompat_drift)
// perturbs the lock and asserts the analyzer fires.
package harvestd

// SnapshotVersion guards the snapshot schema.
const SnapshotVersion = 1

// SnapshotCounters mirrors the ingest counter block.
type SnapshotCounters struct {
	Lines int64 `json:"lines"`
}

// Accum mirrors the estimator accumulator.
type Accum struct {
	N    int64   `json:"n"`
	SumW float64 `json:"sum_w"`
}

// StateSnapshot mirrors the versioned shard snapshot.
type StateSnapshot struct {
	Version  int              `json:"version"`
	Counters SnapshotCounters `json:"counters"`
	Policies map[string]Accum `json:"policies"`
}

// FreshnessVersion guards the freshness-report schema.
const FreshnessVersion = 1

// SourceFreshness mirrors one source's watermark row.
type SourceFreshness struct {
	Source       string `json:"source"`
	WatermarkSeq int64  `json:"watermark_seq"`
}

// FreshnessReport mirrors the versioned /freshness payload.
type FreshnessReport struct {
	Version int               `json:"version"`
	Sources []SourceFreshness `json:"sources"`
}
