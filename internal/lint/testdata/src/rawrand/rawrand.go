// Package fixture exercises the rawrand analyzer: global-source calls and
// out-of-plumbing constructors are flagged; threaded generators and
// suppressed lines are not.
package fixture

import (
	"math/rand"
)

func global() int {
	return rand.Intn(10) // want "global source"
}

func globalFloat() float64 {
	rand.Seed(42)         // want "global source"
	return rand.Float64() // want "global source"
}

func construct(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want "outside the approved RNG plumbing"
}

func suppressed(seed int64) *rand.Rand {
	//lint:ignore rawrand fixture demonstrates suppression
	return rand.New(rand.NewSource(seed))
}

// threaded consumes a seeded generator the way the repo expects: clean.
func threaded(r *rand.Rand) float64 {
	return r.Float64()
}
