// Package fixture exercises the propdiv analyzer: divisions by
// propensity-like names must be dominated by a positivity guard or a
// clip-style call.
package fixture

import (
	"errors"
	"math"
)

var errBadProp = errors.New("bad propensity")

func unguarded(pi, p float64) float64 {
	return pi / p // want "positivity guard"
}

func unguardedField(pi float64, d struct{ Propensity float64 }) float64 {
	return pi / d.Propensity // want "positivity guard"
}

func unguardedAssign(x, weight float64) float64 {
	x /= weight // want "positivity guard"
	return x
}

func enclosingIf(pi, p float64) float64 {
	if p > 0 {
		return pi / p // clean: dominated by the enclosing check
	}
	return 0
}

func earlyExit(pi, p float64) (float64, error) {
	if !(p > 0) {
		return 0, errBadProp
	}
	return pi / p, nil // clean: early-exit guard above
}

func nestedGuard(pis []float64, p float64) float64 {
	if !(p > 0) {
		return 0
	}
	s := 0.0
	for _, pi := range pis {
		if pi > 0 {
			s += pi / p // clean: outer-block guard dominates
		}
	}
	return s
}

func clipped(pi, prob float64) float64 {
	return pi / math.Max(prob, 1e-6) // clean: clip-style denominator
}

func reassigned(pi, w float64) float64 {
	w = math.Max(w, 1e-6)
	return pi / w // clean: reassigned through a clip-style call
}

func loopGuard(ps []float64) float64 {
	s := 0.0
	for _, p := range ps {
		if p <= 0 {
			continue
		}
		s += 1 / p // clean: continue-guard above
	}
	return s
}

// intWeight is histogram arithmetic, not an IPS path: integer division by
// a weight-named value stays silent.
func intWeight(total, weight int) int {
	return total / weight
}

func unrelated(sum, n float64) float64 {
	return sum / n // clean: denominator is not propensity-like
}

func suppressed(pi, p float64) float64 {
	//lint:ignore propdiv fixture demonstrates suppression
	return pi / p
}
