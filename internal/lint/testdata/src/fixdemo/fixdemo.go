// Package fixture drives the autofix machinery end to end: the first
// loop takes the detorder sort-keys-before-range rewrite (including the
// "sort" import insertion), the second takes the ctxloop select wrap
// returning ctx.Err(). The test applies fixes twice and asserts the
// second pass is a no-op (idempotence), comparing against
// fixdemo.go.golden.
package fixture

import (
	"context"
	"fmt"
)

func emit(ctx context.Context, out chan int, m map[string]int) error {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
	for i := 0; i < 8; i++ {
		out <- i
	}
	return nil
}
