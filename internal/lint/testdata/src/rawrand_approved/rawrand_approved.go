// Package fixture is loaded under the approved import path
// repro/internal/stats: constructing generators is the plumbing's job, so
// rand.New passes here, but the global source stays banned everywhere.
package fixture

import "math/rand"

func newSeeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // clean: approved package
}

func stillGlobal() int {
	return rand.Intn(3) // want "global source"
}
