// Package lint is a repo-specific static analyzer enforcing the two
// invariants this reproduction's credibility rests on, plus a few general
// hygiene checks. Off-policy estimates are only unbiased when (1) every
// random draw flows through the seeded, logged RNG plumbing in
// repro/internal/stats (an unseeded math/rand call silently destroys
// paired-seed reproducibility), and (2) no IPS/SNIPS hot path divides by an
// unguarded propensity (§2 and §4 of the paper). The compiler checks
// neither, so harvestlint does.
//
// The driver is built only on the standard library's go/parser, go/ast,
// go/types and go/token — no golang.org/x/tools dependency — and runs a
// registry of analyzers over every package in the module:
//
//   - rawrand:  math/rand global-source calls and rand.New outside the
//     approved repro/internal/stats plumbing
//   - propdiv:  divisions by propensity/weight/probability-named
//     expressions not dominated by a positivity guard or clip
//   - walltime: time.Now/time.Since inside deterministic simulation
//     packages (des, healthsim, cachesim, lbsim)
//   - lockcopy: functions passing or returning by value a struct that
//     contains a sync.Mutex, sync.RWMutex or sync.WaitGroup
//   - errdrop:  discarded error returns in internal/... packages
//
// and four dataflow-aware invariant analyses (DESIGN.md §11):
//
//   - proptaint:  arithmetic, clamping, or branch rewrites applied to a
//     sampled propensity between the sampler draw and the logged
//     Datapoint.Propensity field — the bug class that silently biases IPS
//   - detorder:   `for range` over a map whose body writes serialized
//     output or folds into an order-sensitive accumulator without sorted
//     keys (the nondeterministic /metrics bug class)
//   - wirecompat: versioned wire-struct field sets diffed against
//     lint/wire.lock, so schema drift always rides with a version bump
//   - ctxloop:    blocking channel operations or sleeps inside loops that
//     never consult an in-scope context (the CacheLogSource bug class)
//
// Findings of detorder and ctxloop carry mechanical suggested fixes
// (sort-keys-before-range, ctx select wrap) applied by harvestlint -fix.
//
// Any finding can be suppressed with a directive comment on the same line
// or the line above:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; a directive without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Finding is one analyzer hit, rendered as "file:line:col: [name] message".
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Fixes holds the suggested mechanical edit for this finding, if the
	// analyzer could construct one. All edits of one finding are applied
	// together (harvestlint -fix) or not at all.
	Fixes []TextEdit
}

// TextEdit is one byte-range replacement of a suggested fix, resolved to
// file offsets so it can be applied without re-parsing.
type TextEdit struct {
	// Filename, Start and End delimit the half-open byte range to replace.
	Filename   string
	Start, End int
	// New is the replacement text. The result is gofmt'ed after applying,
	// so edits need not reproduce surrounding indentation exactly.
	New string
}

// String renders the finding in the canonical output format.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one registered check. Run reports findings through the pass.
type Analyzer struct {
	// Name is the identifier used in output and in //lint:ignore directives.
	Name string
	// Doc is a one-line description shown by harvestlint -list.
	Doc string
	// Run inspects the package and calls pass.Reportf for each finding.
	Run func(*Pass)
}

// All returns the full analyzer registry in output order.
func All() []*Analyzer {
	return []*Analyzer{RawRand, PropDiv, WallTime, LockCopy, ErrDrop,
		PropTaint, DetOrder, WireCompat, CtxLoop}
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportFix(pos, nil, format, args...)
}

// ReportFix records a finding at pos carrying a suggested fix. A nil or
// empty edit list degrades to a plain finding.
func (p *Pass) ReportFix(pos token.Pos, fixes []TextEdit, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Fixes:    fixes,
	})
}

// edit builds a TextEdit replacing the source range [start, end) with new
// text, resolving token positions through the pass's file set.
func (p *Pass) edit(start, end token.Pos, newText string) TextEdit {
	s, e := p.Fset.Position(start), p.Fset.Position(end)
	return TextEdit{Filename: s.Filename, Start: s.Offset, End: e.Offset, New: newText}
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos      token.Position
	analyzer string
	reason   string
}

// parseIgnores extracts //lint:ignore directives from a file. Malformed
// directives (missing analyzer name or reason) are reported as findings of
// the pseudo-analyzer "lint" so they cannot silently suppress nothing.
func parseIgnores(fset *token.FileSet, file *ast.File, known map[string]bool) (dirs []ignoreDirective, bad []Finding) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				continue // block comments are not directives
			}
			text, ok = strings.CutPrefix(strings.TrimLeft(text, " \t"), "lint:ignore")
			if !ok {
				continue
			}
			fields := strings.Fields(text)
			pos := fset.Position(c.Pos())
			if len(fields) < 2 {
				bad = append(bad, Finding{Pos: pos, Analyzer: "lint",
					Message: "malformed //lint:ignore directive: need \"//lint:ignore <analyzer> <reason>\""})
				continue
			}
			if !known[fields[0]] {
				bad = append(bad, Finding{Pos: pos, Analyzer: "lint",
					Message: fmt.Sprintf("//lint:ignore names unknown analyzer %q", fields[0])})
				continue
			}
			dirs = append(dirs, ignoreDirective{pos: pos, analyzer: fields[0], reason: strings.Join(fields[1:], " ")})
		}
	}
	return dirs, bad
}

// RunPackage runs the analyzers over one loaded package and returns the
// surviving (non-suppressed) findings sorted by position.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Finding {
	// Directives are validated against the full registry, not the selected
	// subset: running with -only must not misreport a suppression of an
	// unselected analyzer as unknown.
	known := make(map[string]bool, len(analyzers))
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			findings: &findings,
		}
		a.Run(pass)
	}

	// Apply suppression: a directive for analyzer X at line L silences X's
	// findings on line L (trailing comment) and line L+1 (standalone
	// comment above the offending statement).
	suppressed := make(map[string]bool) // "file:line:analyzer"
	var out []Finding
	for _, file := range pkg.Files {
		dirs, bad := parseIgnores(pkg.Fset, file, known)
		out = append(out, bad...)
		for _, d := range dirs {
			suppressed[fmt.Sprintf("%s:%d:%s", d.pos.Filename, d.pos.Line, d.analyzer)] = true
			suppressed[fmt.Sprintf("%s:%d:%s", d.pos.Filename, d.pos.Line+1, d.analyzer)] = true
		}
	}
	for _, f := range findings {
		if suppressed[fmt.Sprintf("%s:%d:%s", f.Pos.Filename, f.Pos.Line, f.Analyzer)] {
			continue
		}
		out = append(out, f)
	}
	Sort(out)
	return out
}

// Sort orders findings by file, line, column, then analyzer name.
func Sort(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// walkWithStack traverses the file calling fn with the ancestor stack
// (outermost first, not including n itself) for every node. Analyzers that
// need dominance context (propdiv) use this instead of ast.Inspect.
func walkWithStack(file *ast.File, fn func(stack []ast.Node, n ast.Node)) {
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		fn(stack, n)
		stack = append(stack, n)
		return true
	})
}

// pkgFuncCall resolves a call/selector of the form pkgname.Func where
// pkgname is an imported package identifier, returning the imported
// package's path and the selected name. ok is false for method calls,
// locals, and non-selector expressions.
func pkgFuncCall(info *types.Info, sel *ast.SelectorExpr) (pkgPath, name string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// identLike matches a rendered expression occurrence on identifier
// boundaries: the characters on both sides must not extend the expression
// (letters, digits, underscore, or a selector dot).
var identBoundary = regexp.MustCompile(`[A-Za-z0-9_.]`)

// mentionsExpr reports whether the rendered expression hay mentions the
// rendered expression needle on clean token boundaries. It is the textual
// core of the propdiv dominance heuristic.
func mentionsExpr(hay, needle string) bool {
	if needle == "" {
		return false
	}
	for i := 0; ; {
		j := strings.Index(hay[i:], needle)
		if j < 0 {
			return false
		}
		j += i
		before := j == 0 || !identBoundary.MatchString(hay[j-1:j])
		end := j + len(needle)
		after := end == len(hay) || !identBoundary.MatchString(hay[end:end+1])
		if before && after {
			return true
		}
		i = j + 1
	}
}
