package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PropDiv flags divisions whose denominator is a propensity-, weight- or
// probability-named expression unless the division is dominated by a
// positivity guard or the denominator flows through a clip-style call.
// IPS-family estimators divide by logged propensities on every datapoint;
// one unguarded p = 0 silently poisons an estimate with ±Inf, so every
// such division must either sit under an explicit `p > 0` check, follow an
// early-exit guard, or route through core.ImportanceWeight.
var PropDiv = &Analyzer{
	Name: "propdiv",
	Doc:  "division by a propensity-like expression without a dominating positivity guard or clip",
	Run:  runPropDiv,
}

// propDivName reports whether an expression's base name looks like a
// propensity, importance weight, or probability. Bare p and w are the
// repo's conventional spellings in estimator hot loops.
func propDivName(name string) bool {
	if name == "" {
		return false
	}
	lower := strings.ToLower(name)
	if lower == "p" || lower == "w" {
		return true
	}
	for _, sub := range []string{"prop", "prob", "weight", "pscore"} {
		if strings.Contains(lower, sub) {
			return true
		}
	}
	return false
}

// guardishName reports whether a called function's name implies the result
// is already positivity-protected (clipped, clamped, floored, ...).
func guardishName(name string) bool {
	lower := strings.ToLower(name)
	for _, sub := range []string{"clip", "clamp", "max", "floor", "safe", "guard", "positive"} {
		if strings.Contains(lower, sub) {
			return true
		}
	}
	return false
}

// baseName extracts the name propdiv matches against: the final selector
// component, the indexed base, or the called function's name.
func baseName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.IndexExpr:
		return baseName(e.X)
	case *ast.ParenExpr:
		return baseName(e.X)
	case *ast.StarExpr:
		return baseName(e.X)
	case *ast.CallExpr:
		return baseName(e.Fun)
	case *ast.UnaryExpr:
		return baseName(e.X)
	}
	return ""
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func runPropDiv(pass *Pass) {
	for _, file := range pass.Files {
		walkWithStack(file, func(stack []ast.Node, n ast.Node) {
			var denom ast.Expr
			var pos token.Pos
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.QUO {
					return
				}
				denom, pos = unparen(n.Y), n.OpPos
			case *ast.AssignStmt:
				if n.Tok != token.QUO_ASSIGN || len(n.Rhs) != 1 {
					return
				}
				denom, pos = unparen(n.Rhs[0]), n.TokPos
			default:
				return
			}
			name := baseName(denom)
			if !propDivName(name) {
				return
			}
			if !isFloatish(pass.Info, denom) {
				return
			}
			if _, isCall := denom.(*ast.CallExpr); isCall && guardishName(name) {
				return
			}
			denomText := types.ExprString(denom)
			if dominatedByGuard(stack, denomText) {
				return
			}
			pass.Reportf(pos,
				"division by propensity-like expression %q is not dominated by a positivity guard or clip; check %s > 0 first or route through core.ImportanceWeight",
				denomText, denomText)
		})
	}
}

// isFloatish reports whether the expression has floating-point type (or no
// recorded type, in which case propdiv stays conservative and keeps the
// candidate). Propensities, weights and probabilities are always floats;
// integer divisions named "weight" are histogram arithmetic, not IPS.
func isFloatish(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return true
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&types.IsFloat != 0 || b.Kind() == types.UntypedFloat
}

// dominatedByGuard applies the positivity-dominance heuristic: the
// division is considered safe when (a) an enclosing if statement's
// condition mentions the denominator, or (b) an earlier statement in any
// enclosing block is an if that mentions the denominator and ends by
// leaving the function or loop (an early-exit guard), or (c) an earlier
// statement in any enclosing block reassigns the denominator through a
// clip-style call.
func dominatedByGuard(stack []ast.Node, denomText string) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.IfStmt:
			// Inside the body or else of `if ... p ... { }`. Being in the
			// condition itself (e.g. `if pi/p > 1`) does not count.
			inCond := i+1 < len(stack) && stack[i+1] == anc.Cond
			if !inCond && mentionsExpr(types.ExprString(anc.Cond), denomText) {
				return true
			}
		case *ast.BlockStmt:
			if precededByGuard(anc.List, stack, i, denomText) {
				return true
			}
		case *ast.CaseClause:
			if precededByGuard(anc.Body, stack, i, denomText) {
				return true
			}
		case *ast.FuncDecl, *ast.FuncLit:
			// Dominance does not cross function boundaries: a guard in the
			// enclosing function says nothing about a closure that may run
			// later.
			return false
		}
	}
	return false
}

// precededByGuard scans the statements of an enclosing block that execute
// strictly before the one leading to the division.
func precededByGuard(stmts []ast.Stmt, stack []ast.Node, depth int, denomText string) bool {
	if depth+1 >= len(stack) {
		return false
	}
	var upto int = -1
	for idx, s := range stmts {
		if s == stack[depth+1] {
			upto = idx
			break
		}
	}
	for idx := 0; idx < upto; idx++ {
		switch s := stmts[idx].(type) {
		case *ast.IfStmt:
			if mentionsExpr(types.ExprString(s.Cond), denomText) && terminates(s.Body) {
				return true
			}
		case *ast.AssignStmt:
			for li, lhs := range s.Lhs {
				if types.ExprString(lhs) != denomText || li >= len(s.Rhs) {
					continue
				}
				if call, ok := unparen(s.Rhs[li]).(*ast.CallExpr); ok && guardishName(baseName(call.Fun)) {
					return true
				}
			}
		}
	}
	return false
}

// terminates reports whether a block always leaves the surrounding
// function or loop iteration: its last statement is a return, branch,
// panic, or fatal-exit call.
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return last.Tok == token.BREAK || last.Tok == token.CONTINUE || last.Tok == token.GOTO
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		switch fn := types.ExprString(call.Fun); {
		case fn == "panic", fn == "os.Exit":
			return true
		case strings.HasSuffix(fn, ".Fatal"), strings.HasSuffix(fn, ".Fatalf"):
			return true
		}
	}
	return false
}
