package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestPropTaintGolden(t *testing.T) {
	runGolden(t, "proptaint", "repro/internal/fixture", PropTaint)
}

func TestDetOrderGolden(t *testing.T) {
	runGolden(t, "detorder", "repro/internal/fixture", DetOrder)
}

func TestCtxLoopGolden(t *testing.T) {
	runGolden(t, "ctxloop", "repro/internal/fixture", CtxLoop)
}

// TestWireCompatClean locks exactly the fixture's live shapes: the
// analyzer must stay silent.
func TestWireCompatClean(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "wirecompat"), "repro/internal/harvestd")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	SetWireLock(WireEntries(pkg))
	defer SetWireLock(nil)
	if findings := RunPackage(pkg, []*Analyzer{WireCompat}); len(findings) != 0 {
		t.Errorf("wirecompat fired on a matching lock: %v", findings)
	}
}

// TestWireCompatDriftGolden is the schema-edit-without-bump scenario: the
// lock records one more StateSnapshot field than the live struct has (as
// if a field was deleted in code) and a bumped version the code does not
// carry. Both watched symbols must fail.
func TestWireCompatDriftGolden(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "wirecompat_drift"), "repro/internal/harvestd")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	lock := WireEntries(pkg)
	key := "repro/internal/harvestd.StateSnapshot"
	lock.Structs[key] = append(lock.Structs[key], "Deprecated bool")
	lock.Consts["repro/internal/harvestd.SnapshotVersion"] = "2"
	SetWireLock(lock)
	defer SetWireLock(nil)
	runGolden(t, "wirecompat_drift", "repro/internal/harvestd", WireCompat)
}

// TestWireCompatMissingLock pins the fail-closed behavior: with no lock
// loaded, watched packages report instead of silently passing.
func TestWireCompatMissingLock(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "wirecompat"), "repro/internal/harvestd")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	SetWireLock(nil)
	findings := RunPackage(pkg, []*Analyzer{WireCompat})
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "not loaded") {
		t.Errorf("expected one not-loaded finding, got %v", findings)
	}
}

// TestWireCompatUnwatchedPackage pins the scoping: the same structs under
// an unwatched import path are nobody's business.
func TestWireCompatUnwatchedPackage(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "wirecompat"), "repro/internal/elsewhere")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	SetWireLock(nil)
	if findings := RunPackage(pkg, []*Analyzer{WireCompat}); len(findings) != 0 {
		t.Errorf("wirecompat fired outside its watch list: %v", findings)
	}
}
