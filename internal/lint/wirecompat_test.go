package lint

import (
	"reflect"
	"strings"
	"testing"
)

func sampleLock() *WireLock {
	l := NewWireLock()
	l.Consts["repro/internal/harvestd.SnapshotVersion"] = "1"
	l.Consts["repro/internal/harvester/binrec.Version"] = "3"
	l.Structs["repro/internal/harvestd.StateSnapshot"] = []string{
		"Version int `json:\"version\"`",
		"Policies map[string]repro/internal/harvestd.Accum `json:\"policies\"`",
	}
	l.Structs["repro/internal/core.Datapoint"] = []string{
		"Reward float64",
		"Propensity float64",
	}
	return l
}

// TestWireLockRoundTrip pins Format/Parse as exact inverses.
func TestWireLockRoundTrip(t *testing.T) {
	l := sampleLock()
	data := FormatWireLock(l)
	back, err := ParseWireLock(data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !reflect.DeepEqual(l, back) {
		t.Errorf("round trip mismatch:\nbefore %#v\nafter  %#v", l, back)
	}
	// Format is deterministic byte for byte.
	if again := FormatWireLock(back); string(again) != string(data) {
		t.Errorf("format not deterministic:\n%s\nvs\n%s", data, again)
	}
}

func TestParseWireLockErrors(t *testing.T) {
	cases := []struct{ name, in, wantErr string }{
		{"bad const", "const x by 2\n", "malformed const"},
		{"bad struct header", "struct Foo\n", "malformed struct header"},
		{"unterminated", "struct a.B {\n\tF int\n", "unterminated struct"},
		{"garbage", "wat\n", "unrecognized line"},
	}
	for _, c := range cases {
		if _, err := ParseWireLock([]byte(c.in)); err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.wantErr)
		}
	}
}

// TestCheckWireBump pins the deliberate-bump rule: a struct edit without
// its guarding constant moving refuses regeneration; with the bump it is
// accepted; structs outside the guard map regenerate freely.
func TestCheckWireBump(t *testing.T) {
	old := sampleLock()

	// Field change, version untouched: refused.
	next := sampleLock()
	next.Structs["repro/internal/harvestd.StateSnapshot"][0] = "Version int8 `json:\"version\"`"
	if bad := CheckWireBump(old, next); len(bad) != 1 || bad[0] != "repro/internal/harvestd.StateSnapshot" {
		t.Errorf("unbumped edit: bad = %v, want the snapshot struct", bad)
	}

	// Same change riding with a version bump: accepted.
	next.Consts["repro/internal/harvestd.SnapshotVersion"] = "2"
	if bad := CheckWireBump(old, next); len(bad) != 0 {
		t.Errorf("bumped edit refused: %v", bad)
	}

	// Datapoint is guarded by the binrec version.
	next = sampleLock()
	next.Structs["repro/internal/core.Datapoint"] = append(
		next.Structs["repro/internal/core.Datapoint"], "Tag string")
	if bad := CheckWireBump(old, next); len(bad) != 1 || bad[0] != "repro/internal/core.Datapoint" {
		t.Errorf("unbumped datapoint edit: bad = %v", bad)
	}
	next.Consts["repro/internal/harvester/binrec.Version"] = "4"
	if bad := CheckWireBump(old, next); len(bad) != 0 {
		t.Errorf("bumped datapoint edit refused: %v", bad)
	}

	// A brand-new struct (not in the old lock) is never refused.
	next = sampleLock()
	next.Structs["repro/internal/harvester.EstimatorState"] = []string{"N int"}
	if bad := CheckWireBump(old, next); len(bad) != 0 {
		t.Errorf("new struct refused: %v", bad)
	}

	// No old lock at all: first generation is free.
	if bad := CheckWireBump(nil, next); bad != nil {
		t.Errorf("first generation refused: %v", bad)
	}
}

// TestBaselineFilter pins multiset semantics and stale reporting.
func TestBaselineFilter(t *testing.T) {
	rel := func(s string) string { return s }
	findings := []Finding{
		{Analyzer: "detorder", Message: "m1"},
		{Analyzer: "detorder", Message: "m1"},
		{Analyzer: "ctxloop", Message: "m2"},
	}
	findings[0].Pos.Filename = "a.go"
	findings[1].Pos.Filename = "a.go"
	findings[2].Pos.Filename = "b.go"

	base := ParseBaseline([]byte("# comment\na.go: [detorder] m1\nc.go: [propdiv] gone\n"))
	fresh, baselined, stale := FilterBaseline(findings, base, rel)
	if len(fresh) != 2 {
		t.Errorf("fresh = %v, want 2 entries (one duplicate absorbed)", fresh)
	}
	if len(baselined) != 1 {
		t.Errorf("baselined = %v, want 1", baselined)
	}
	if len(stale) != 1 || !strings.Contains(stale[0], "c.go") {
		t.Errorf("stale = %v, want the c.go entry", stale)
	}
}
