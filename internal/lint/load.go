package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked module package, ready for
// analysis.
type Package struct {
	// Path is the import path ("repro/internal/ope").
	Path string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Fset is the file set shared by every package of one load.
	Fset *token.FileSet
	// Files holds the parsed non-test source files, sorted by file name.
	Files []*ast.File
	// Types and Info are the type-checker outputs.
	Types *types.Package
	Info  *types.Info
}

// loader resolves module-internal imports from source and everything else
// (the standard library) through the compiler's source importer, so the
// whole module type-checks without export data and without x/tools.
type loader struct {
	fset    *token.FileSet
	modPath string
	root    string
	dirs    map[string]string // import path → absolute dir
	pkgs    map[string]*Package
	loading map[string]bool // import-cycle detection
	std     types.ImporterFrom
}

// FindModuleRoot walks up from dir to the nearest directory containing a
// go.mod file.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			rest = strings.Trim(rest, `"`)
			if rest != "" {
				return rest, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// LoadModule parses and type-checks every package under the module rooted
// at root (skipping testdata, vendor, hidden and underscore directories,
// and _test.go files) and returns them sorted by import path.
func LoadModule(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		modPath: mod,
		root:    root,
		dirs:    make(map[string]string),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
	if err := ld.discover(); err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(ld.dirs))
	for p := range ld.dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := ld.load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// discover maps every package directory under the module root to its
// import path.
func (ld *loader) discover() error {
	return filepath.WalkDir(ld.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != ld.root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		srcs, err := sourceFiles(path)
		if err != nil {
			return err
		}
		if len(srcs) == 0 {
			return nil
		}
		rel, err := filepath.Rel(ld.root, path)
		if err != nil {
			return err
		}
		imp := ld.modPath
		if rel != "." {
			imp = ld.modPath + "/" + filepath.ToSlash(rel)
		}
		ld.dirs[imp] = path
		return nil
	})
}

// sourceFiles lists the non-test .go files of a directory, sorted.
func sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var srcs []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		srcs = append(srcs, filepath.Join(dir, name))
	}
	sort.Strings(srcs)
	return srcs, nil
}

// Import implements types.Importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	return ld.ImportFrom(path, ld.root, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths resolve
// from source under the module root; everything else goes to the standard
// library's source importer.
func (ld *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "C" {
		return nil, fmt.Errorf("lint: cgo is not supported")
	}
	if path == ld.modPath || strings.HasPrefix(path, ld.modPath+"/") {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.std.ImportFrom(path, dir, mode)
}

// load parses and type-checks one module package, memoized.
func (ld *loader) load(path string) (*Package, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	dir, ok := ld.dirs[path]
	if !ok {
		return nil, fmt.Errorf("lint: no package %s under %s", path, ld.root)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)
	pkg, err := checkDir(ld.fset, dir, path, ld)
	if err != nil {
		return nil, err
	}
	ld.pkgs[path] = pkg
	return pkg, nil
}

// LoadDir parses and type-checks a single directory as the package
// pkgPath, resolving all imports (standard library only) from source. The
// golden-file tests use it to load fixtures under any import path, so
// path-conditional analyzers (walltime, errdrop, the rawrand exemption)
// can be exercised without real module layout.
func LoadDir(dir, pkgPath string) (*Package, error) {
	fset := token.NewFileSet()
	return checkDir(fset, dir, pkgPath, importer.ForCompiler(fset, "source", nil))
}

// checkDir does the shared parse + type-check of one directory.
func checkDir(fset *token.FileSet, dir, pkgPath string, imp types.Importer) (*Package, error) {
	srcs, err := sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(srcs) == 0 {
		return nil, fmt.Errorf("lint: no Go source files in %s", dir)
	}
	files := make([]*ast.File, 0, len(srcs))
	name := ""
	for _, src := range srcs {
		f, err := parser.ParseFile(fset, src, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if name == "" {
			name = f.Name.Name
		} else if f.Name.Name != name {
			return nil, fmt.Errorf("lint: %s contains packages %s and %s", dir, name, f.Name.Name)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", pkgPath, err)
	}
	return &Package{Path: pkgPath, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
