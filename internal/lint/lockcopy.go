package lint

import (
	"go/ast"
	"go/types"
)

// LockCopy flags functions that pass or return by value any struct
// containing a sync.Mutex, sync.RWMutex, or sync.WaitGroup (directly, via
// an embedded struct, or inside an array). Copying a held lock decouples
// the copy from the original and turns mutual exclusion into a silent
// no-op — the sharded accumulators and registries here all synchronize
// with embedded mutexes, so they must only travel as pointers.
var LockCopy = &Analyzer{
	Name: "lockcopy",
	Doc:  "struct containing sync.Mutex/RWMutex/WaitGroup passed or returned by value",
	Run:  runLockCopy,
}

var lockTypeNames = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"WaitGroup": true,
}

// findLock returns the name of a lock type reachable from t by value
// ("sync.Mutex", ...), or "" if none.
func findLock(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	t = types.Unalias(t)
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypeNames[obj.Name()] {
			return "sync." + obj.Name()
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lock := findLock(u.Field(i).Type(), seen); lock != "" {
				return lock
			}
		}
	case *types.Array:
		return findLock(u.Elem(), seen)
	}
	return ""
}

func runLockCopy(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var recv *ast.FieldList
			var what string
			switch n := n.(type) {
			case *ast.FuncDecl:
				ftype, recv, what = n.Type, n.Recv, n.Name.Name
			case *ast.FuncLit:
				ftype, what = n.Type, "func literal"
			default:
				return true
			}
			check := func(fl *ast.FieldList, role string) {
				if fl == nil {
					return
				}
				for _, field := range fl.List {
					t := pass.fieldType(field)
					if t == nil {
						continue
					}
					if lock := findLock(t, make(map[types.Type]bool)); lock != "" {
						pass.Reportf(field.Type.Pos(),
							"%s %s %s by value: %s contains %s; use a pointer",
							what, role, types.ExprString(field.Type), t, lock)
					}
				}
			}
			check(recv, "has receiver")
			check(ftype.Params, "passes")
			check(ftype.Results, "returns")
			return true
		})
	}
}

// fieldType resolves the declared type of a field list entry.
func (p *Pass) fieldType(field *ast.Field) types.Type {
	if tv, ok := p.Info.Types[field.Type]; ok && tv.Type != nil {
		return tv.Type
	}
	for _, name := range field.Names {
		if obj := p.Info.Defs[name]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}
