package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// want is one expectation parsed from a fixture's `// want "regex"`
// comment: the analyzer must report a finding on that line whose message
// matches the regex. Several quoted regexes on one line mean several
// findings.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants extracts expectations from every fixture file of a loaded
// package by scanning its comments.
func parseWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					if rest[0] != '"' {
						t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
					}
					end := strings.Index(rest[1:], `"`)
					if end < 0 {
						t.Fatalf("%s:%d: unterminated want regex", pos.Filename, pos.Line)
					}
					quoted := rest[:end+2]
					rest = strings.TrimSpace(rest[end+2:])
					raw, err := strconv.Unquote(quoted)
					if err != nil {
						t.Fatalf("%s:%d: bad want regex %s: %v", pos.Filename, pos.Line, quoted, err)
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want regex %s: %v", pos.Filename, pos.Line, quoted, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// runGolden loads testdata/src/<dir> as the package pkgPath, runs one
// analyzer through the full driver (so //lint:ignore suppression is
// active), and diffs the findings against the fixture's want comments.
func runGolden(t *testing.T, dir, pkgPath string, a *Analyzer) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", dir), pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	wants := parseWants(t, pkg)
	findings := RunPackage(pkg, []*Analyzer{a})

	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected a [%s] finding matching %q, got none", w.file, w.line, a.Name, w.re)
		}
	}
}

func TestRawRandGolden(t *testing.T) {
	runGolden(t, "rawrand", "repro/internal/fixture", RawRand)
}

// TestRawRandApprovedPackage loads the same kind of constructor calls
// under the approved import path: rand.New must pass there while the
// global-source functions stay flagged.
func TestRawRandApprovedPackage(t *testing.T) {
	runGolden(t, "rawrand_approved", "repro/internal/stats", RawRand)
}

// TestRawRandParallelPackage covers the second approved package, the
// deterministic replicate scheduler: rand.New passes under
// repro/internal/parallel, global-source calls do not.
func TestRawRandParallelPackage(t *testing.T) {
	runGolden(t, "rawrand_parallel", "repro/internal/parallel", RawRand)
}

func TestPropDivGolden(t *testing.T) {
	runGolden(t, "propdiv", "repro/internal/fixture", PropDiv)
}

func TestWallTimeGolden(t *testing.T) {
	runGolden(t, "walltime", "repro/internal/des", WallTime)
}

// TestWallTimeObsGolden loads the obs-mode fixture as repro/internal/obs,
// where clock injection is enforced: host-clock reads outside the
// WallClock constructor path are flagged, the constructor and the
// wallClock method are exempt.
func TestWallTimeObsGolden(t *testing.T) {
	runGolden(t, "obswalltime", "repro/internal/obs", WallTime)
}

// TestWallTimeObsFixtureElsewhere reuses the obs fixture under a plain
// import path, where none of its reads are the analyzer's business.
func TestWallTimeObsFixtureElsewhere(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "obswalltime"), "repro/internal/netlb2")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if findings := RunPackage(pkg, []*Analyzer{WallTime}); len(findings) != 0 {
		t.Errorf("walltime fired outside its scoped packages: %v", findings)
	}
}

// TestWallTimeNonSimPackage reuses the walltime fixture under a
// non-simulation import path, where wall-clock reads are legitimate: the
// analyzer must stay silent, so every want comment must fail — assert by
// running the raw analyzer and requiring zero findings.
func TestWallTimeNonSimPackage(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "walltime"), "repro/internal/netlb2")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if findings := RunPackage(pkg, []*Analyzer{WallTime}); len(findings) != 0 {
		t.Errorf("walltime fired outside deterministic packages: %v", findings)
	}
}

func TestLockCopyGolden(t *testing.T) {
	runGolden(t, "lockcopy", "repro/internal/fixture", LockCopy)
}

func TestErrDropGolden(t *testing.T) {
	runGolden(t, "errdrop", "repro/internal/fixture", ErrDrop)
}

// TestErrDropOutsideInternal reuses the errdrop fixture under a
// non-internal path; the analyzer is scoped to internal/... only.
func TestErrDropOutsideInternal(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "errdrop"), "repro/cmdfixture")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if findings := RunPackage(pkg, []*Analyzer{ErrDrop}); len(findings) != 0 {
		t.Errorf("errdrop fired outside internal/...: %v", findings)
	}
}

// TestMalformedIgnoreDirective checks that a reason-less or unknown-name
// //lint:ignore is itself reported, so directives can never silently rot.
func TestMalformedIgnoreDirective(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "badignore"), "repro/internal/fixture")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	findings := RunPackage(pkg, All())
	var msgs []string
	for _, f := range findings {
		msgs = append(msgs, fmt.Sprintf("[%s] %s", f.Analyzer, f.Message))
	}
	joined := strings.Join(msgs, "\n")
	if !strings.Contains(joined, "malformed //lint:ignore") {
		t.Errorf("missing malformed-directive finding in:\n%s", joined)
	}
	if !strings.Contains(joined, `unknown analyzer "nosuch"`) {
		t.Errorf("missing unknown-analyzer finding in:\n%s", joined)
	}
}

// TestSortOrder pins the deterministic output ordering.
func TestSortOrder(t *testing.T) {
	fs := []Finding{
		{Pos: token.Position{Filename: "b.go", Line: 1, Column: 1}, Analyzer: "rawrand"},
		{Pos: token.Position{Filename: "a.go", Line: 9, Column: 2}, Analyzer: "propdiv"},
		{Pos: token.Position{Filename: "a.go", Line: 9, Column: 2}, Analyzer: "errdrop"},
		{Pos: token.Position{Filename: "a.go", Line: 3, Column: 7}, Analyzer: "walltime"},
	}
	Sort(fs)
	got := ""
	for _, f := range fs {
		got += fmt.Sprintf("%s:%d:%s ", f.Pos.Filename, f.Pos.Line, f.Analyzer)
	}
	wantOrder := "a.go:3:walltime a.go:9:errdrop a.go:9:propdiv b.go:1:rawrand "
	if got != wantOrder {
		t.Errorf("sort order = %q, want %q", got, wantOrder)
	}
}

// TestMentionsExpr pins the token-boundary matching propdiv's dominance
// heuristic depends on: "p" must not match inside "pi".
func TestMentionsExpr(t *testing.T) {
	cases := []struct {
		hay, needle string
		want        bool
	}{
		{"!(d.Propensity > 0)", "d.Propensity", true},
		{"pi > 0", "p", false},
		{"p > 0", "p", true},
		{"p.Valid()", "p", false},
		{"weights[i] > 0", "weights[i]", true},
		{"x.p > 0", "p", false},
		{"w <= tau", "w", true},
		{"", "p", false},
		{"p > 0", "", false},
	}
	for _, c := range cases {
		if got := mentionsExpr(c.hay, c.needle); got != c.want {
			t.Errorf("mentionsExpr(%q, %q) = %v, want %v", c.hay, c.needle, got, c.want)
		}
	}
}
