package lint

import (
	"fmt"
	"go/format"
	"os"
	"sort"
)

// ApplyFixes applies the suggested edits carried by the findings to the
// files on disk and returns the number of findings fixed. A finding's
// edits are applied all-or-nothing; a finding whose edits would overlap
// an already-accepted edit is skipped (re-running the linter after the
// first -fix pass surfaces it again, now against the rewritten source).
// Identical edits from different findings (two loops in one file both
// inserting the same import) are deduplicated. Every touched file is run
// through gofmt, so edit text does not need exact indentation.
func ApplyFixes(findings []Finding) (int, error) {
	type span struct{ start, end int }
	accepted := make(map[string][]TextEdit)
	taken := make(map[string][]span)

	overlaps := func(file string, s, e int) bool {
		for _, sp := range taken[file] {
			if s < sp.end && sp.start < e {
				return true
			}
			// Two zero-width inserts at the same offset collide unless
			// identical (the identical case is deduplicated before this).
			if s == e && sp.start == sp.end && s == sp.start {
				return true
			}
		}
		return false
	}
	sameEdit := func(e TextEdit) bool {
		for _, a := range accepted[e.Filename] {
			if a == e {
				return true
			}
		}
		return false
	}

	applied := 0
	for _, f := range findings {
		if len(f.Fixes) == 0 {
			continue
		}
		fresh := make([]TextEdit, 0, len(f.Fixes))
		ok := true
		for _, e := range f.Fixes {
			if e.Start < 0 || e.End < e.Start {
				ok = false
				break
			}
			if sameEdit(e) {
				continue
			}
			if overlaps(e.Filename, e.Start, e.End) {
				ok = false
				break
			}
			fresh = append(fresh, e)
		}
		if !ok {
			continue
		}
		for _, e := range fresh {
			accepted[e.Filename] = append(accepted[e.Filename], e)
			taken[e.Filename] = append(taken[e.Filename], span{e.Start, e.End})
		}
		applied++
	}
	if applied == 0 {
		return 0, nil
	}

	files := make([]string, 0, len(accepted))
	for f := range accepted {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, file := range files {
		edits := accepted[file]
		// Apply back-to-front so earlier offsets stay valid.
		sort.Slice(edits, func(i, j int) bool { return edits[i].Start > edits[j].Start })
		src, err := os.ReadFile(file)
		if err != nil {
			return applied, fmt.Errorf("applying fixes: %w", err)
		}
		for _, e := range edits {
			if e.End > len(src) {
				return applied, fmt.Errorf("applying fixes: edit range [%d,%d) outside %s (len %d)", e.Start, e.End, file, len(src))
			}
			var out []byte
			out = append(out, src[:e.Start]...)
			out = append(out, e.New...)
			out = append(out, src[e.End:]...)
			src = out
		}
		formatted, err := format.Source(src)
		if err != nil {
			return applied, fmt.Errorf("applying fixes: %s does not gofmt after edits: %w", file, err)
		}
		info, err := os.Stat(file)
		mode := os.FileMode(0o644)
		if err == nil {
			mode = info.Mode().Perm()
		}
		if err := os.WriteFile(file, formatted, mode); err != nil {
			return applied, fmt.Errorf("applying fixes: %w", err)
		}
	}
	return applied, nil
}
