package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PropTaint tracks sampled propensities from the draw site to the logged
// Datapoint.Propensity field, intra-procedurally, and flags anything that
// rewrites the value in between. Eq. 1 of the paper is only unbiased when
// the logged propensity is *exactly* the probability the action was
// sampled with; a clamp, renormalization, or "helpful" floor between draw
// and log silently biases every IPS estimate built from that log, without
// crashing anything. Legitimate propensity *inference* (the harvester's
// PropensityInferrer implementations) recomputes the field wholesale and
// is out of scope: only values that demonstrably came from a sampler draw
// are tainted.
//
// Sources (taint introduction):
//   - calls whose name contains "Sample" or "Draw" — every float64 result
//     is a sampled propensity
//   - indexing a slice returned by a Distribution(...) call — dist[i] is
//     the propensity of action i
//   - indexing any slice with an index drawn by a Categorical(...) call —
//     the i := Categorical(r, dist); p := dist[i] idiom
//
// Violations:
//   - compound arithmetic on a tainted variable (p *= x, p /= n, ...)
//   - reassigning a tainted variable from arithmetic over itself
//     (p = p * scale) or from a clamp-style call (p = math.Max(p, floor))
//   - overwriting a tainted variable under a branch conditioned on itself
//     (if p < eps { p = eps }) — a clamp spelled as control flow
//   - assigning arithmetic or a clamp over propensity-like operands into a
//     Propensity field (d.Propensity = p/total, Datapoint{Propensity:
//     math.Max(p, 1e-3)}); compile-time constant expressions such as
//     1.0/3 stay exempt
var PropTaint = &Analyzer{
	Name: "proptaint",
	Doc:  "arithmetic, clamping, or branch rewrites between a sampler draw and the logged propensity",
	Run:  runPropTaint,
}

// samplerName reports whether a called function's name marks its float
// results as sampled propensities.
func samplerName(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "sample") || strings.Contains(lower, "draw")
}

// categoricalName matches index-samplers: functions that draw an index
// into the distribution slice they were given.
func categoricalName(name string) bool {
	return strings.Contains(strings.ToLower(name), "categorical")
}

// clampishName reports whether a call by this name rewrites its argument's
// value range (the clamp/floor/cap family). Max and Min cover math.Max,
// math.Min and the builtins.
func clampishName(name string) bool {
	lower := strings.ToLower(name)
	for _, sub := range []string{"clip", "clamp", "floor", "ceil", "max", "min", "abs", "bound"} {
		if strings.Contains(lower, sub) {
			return true
		}
	}
	return false
}

// propTaintState is the per-function taint state.
type propTaintState struct {
	pass *Pass
	// tainted maps a variable object to the position of its taint (the
	// draw). Violations are only reported at positions after the draw.
	tainted map[types.Object]token.Pos
	// distSlices holds variables assigned from a Distribution(...) call.
	distSlices map[types.Object]bool
	// drawnIdx holds variables assigned from a Categorical(...) call.
	drawnIdx map[types.Object]bool
}

func runPropTaint(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			// Keep descending after analyzing: inspectShallow skips nested
			// function literals, so each literal found deeper in the walk
			// gets its own independent analysis without double-reporting.
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					propTaintFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				propTaintFunc(pass, fn.Body)
			}
			return true
		})
	}
}

// propTaintFunc analyzes one function body: a first pass collects taint
// (draw sites), a second pass reports rewrites and tainted-sink
// violations. Nested function literals are analyzed separately — taint
// does not cross function boundaries.
func propTaintFunc(pass *Pass, body *ast.BlockStmt) {
	st := &propTaintState{
		pass:       pass,
		tainted:    make(map[types.Object]token.Pos),
		distSlices: make(map[types.Object]bool),
		drawnIdx:   make(map[types.Object]bool),
	}
	inspectShallow(body, st.collect)
	inspectShallow(body, st.check)
}

// inspectShallow walks the block like ast.Inspect but does not descend
// into nested function literals (they get their own analysis).
func inspectShallow(body *ast.BlockStmt, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		keep := fn(n, stack)
		stack = append(stack, n)
		if !keep {
			// Still push/pop symmetrically: ast.Inspect will not call us
			// with nil for a pruned subtree, so pop here.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// collect is the taint-introduction pass over assignment statements.
func (st *propTaintState) collect(n ast.Node, _ []ast.Node) bool {
	as, ok := n.(*ast.AssignStmt)
	if !ok || (as.Tok != token.DEFINE && as.Tok != token.ASSIGN) {
		return true
	}
	// Tuple form a, p := Sample(...): every float64 LHS is tainted.
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		if call, isCall := unparen(as.Rhs[0]).(*ast.CallExpr); isCall {
			name := baseName(call.Fun)
			if samplerName(name) {
				for _, lhs := range as.Lhs {
					if id, isID := lhs.(*ast.Ident); isID && st.floatVar(id) {
						st.taint(id, call.Pos())
					}
				}
			}
			if categoricalName(name) {
				for _, lhs := range as.Lhs {
					st.mark(lhs, st.drawnIdx)
				}
			}
		}
		return true
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		id, isID := lhs.(*ast.Ident)
		if !isID {
			continue
		}
		rhs := unparen(as.Rhs[i])
		switch r := rhs.(type) {
		case *ast.CallExpr:
			name := baseName(r.Fun)
			switch {
			case samplerName(name) && st.floatVar(id):
				st.taint(id, r.Pos())
			case categoricalName(name):
				st.mark(id, st.drawnIdx)
			case name == "Distribution":
				st.mark(id, st.distSlices)
			}
		case *ast.IndexExpr:
			if st.propIndex(r) && st.floatVar(id) {
				st.taint(id, r.Pos())
			}
		}
	}
	return true
}

// floatVar reports whether the identifier denotes a float-typed variable.
func (st *propTaintState) floatVar(id *ast.Ident) bool {
	obj := st.obj(id)
	if obj == nil {
		return false
	}
	b, ok := obj.Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// obj resolves an identifier to its object, through Defs or Uses.
func (st *propTaintState) obj(id *ast.Ident) types.Object {
	if o := st.pass.Info.Defs[id]; o != nil {
		return o
	}
	return st.pass.Info.Uses[id]
}

func (st *propTaintState) taint(id *ast.Ident, pos token.Pos) {
	if obj := st.obj(id); obj != nil {
		if _, seen := st.tainted[obj]; !seen {
			st.tainted[obj] = pos
		}
	}
}

func (st *propTaintState) mark(e ast.Expr, set map[types.Object]bool) {
	if id, ok := e.(*ast.Ident); ok {
		if obj := st.obj(id); obj != nil {
			set[obj] = true
		}
	}
}

// propIndex reports whether an index expression reads a sampled
// propensity: the slice came from Distribution(...), or the index was
// drawn by Categorical(...).
func (st *propTaintState) propIndex(ix *ast.IndexExpr) bool {
	if id, ok := unparen(ix.X).(*ast.Ident); ok {
		if obj := st.obj(id); obj != nil && st.distSlices[obj] {
			return true
		}
	}
	if id, ok := unparen(ix.Index).(*ast.Ident); ok {
		if obj := st.obj(id); obj != nil && st.drawnIdx[obj] {
			return true
		}
	}
	return false
}

// taintedIdent resolves e to a tainted variable's object, requiring the
// use to sit after the draw.
func (st *propTaintState) taintedIdent(e ast.Expr) (types.Object, bool) {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := st.obj(id)
	if obj == nil {
		return nil, false
	}
	pos, tainted := st.tainted[obj]
	if !tainted || e.Pos() <= pos {
		return nil, false
	}
	return obj, true
}

// mentionsTainted reports whether any identifier under e resolves to a
// tainted variable (used after its draw).
func (st *propTaintState) mentionsTainted(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := st.obj(id); obj != nil {
				if pos, tainted := st.tainted[obj]; tainted && id.Pos() > pos {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// check is the violation pass.
func (st *propTaintState) check(n ast.Node, stack []ast.Node) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		st.checkAssign(n, stack)
	case *ast.IncDecStmt:
		if obj, ok := st.taintedIdent(n.X); ok {
			st.pass.Reportf(n.Pos(),
				"sampled propensity %q is rewritten (%s) between draw and log; log the drawn probability verbatim",
				obj.Name(), n.Tok)
		}
	case *ast.CompositeLit:
		st.checkCompositeLit(n)
	}
	return true
}

func (st *propTaintState) checkAssign(as *ast.AssignStmt, stack []ast.Node) {
	// Compound arithmetic on a tainted variable: p *= x, p /= n, ...
	if as.Tok != token.DEFINE && as.Tok != token.ASSIGN {
		for _, lhs := range as.Lhs {
			if obj, ok := st.taintedIdent(lhs); ok {
				st.pass.Reportf(as.TokPos,
					"sampled propensity %q is rewritten (%s) between draw and log; log the drawn probability verbatim",
					obj.Name(), as.Tok)
			}
		}
		return
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		rhs := unparen(as.Rhs[i])
		// Sink: writing into a Propensity field.
		if sel, ok := lhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "Propensity" {
			st.checkSinkValue(rhs)
			continue
		}
		obj, tainted := st.taintedIdent(lhs)
		if !tainted {
			continue
		}
		switch r := rhs.(type) {
		case *ast.BinaryExpr:
			if st.mentionsTainted(r) {
				st.pass.Reportf(as.TokPos,
					"sampled propensity %q is recomputed from arithmetic over itself between draw and log; log the drawn probability verbatim",
					obj.Name())
				continue
			}
		case *ast.CallExpr:
			if clampishName(baseName(r.Fun)) && st.mentionsTainted(r) {
				st.pass.Reportf(as.TokPos,
					"sampled propensity %q is clamped through %s between draw and log; clamp the importance weight downstream instead",
					obj.Name(), types.ExprString(r.Fun))
				continue
			}
		}
		// Clamp spelled as control flow: overwriting p under a branch
		// conditioned on p itself (if p < eps { p = eps }).
		if cond := enclosingCondMentioning(stack, obj, st.pass.Info); cond != nil {
			st.pass.Reportf(as.TokPos,
				"sampled propensity %q is overwritten under a branch conditioned on itself (%s) — a clamp in control-flow clothing; log the drawn probability verbatim",
				obj.Name(), types.ExprString(cond))
		}
	}
}

// checkCompositeLit flags Propensity: fields of composite literals whose
// value rewrites a propensity.
func (st *propTaintState) checkCompositeLit(lit *ast.CompositeLit) {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Propensity" {
			continue
		}
		st.checkSinkValue(unparen(kv.Value))
	}
}

// checkSinkValue flags a value being logged as a propensity when it is
// arithmetic or a clamp over propensity-like operands. Compile-time
// constants (1.0/3 for a known uniform logger) are exact and exempt.
func (st *propTaintState) checkSinkValue(v ast.Expr) {
	if tv, ok := st.pass.Info.Types[v]; ok && tv.Value != nil {
		return
	}
	switch v := v.(type) {
	case *ast.BinaryExpr:
		if st.propensityish(v) {
			st.pass.Reportf(v.Pos(),
				"propensity field is assigned arithmetic %q instead of the sampled probability; compute the probability once at the draw and log it verbatim",
				types.ExprString(v))
		}
	case *ast.CallExpr:
		if clampishName(baseName(v.Fun)) && st.propensityish(v) {
			st.pass.Reportf(v.Pos(),
				"propensity field is assigned clamped value %q; log the sampled probability verbatim and clamp the importance weight downstream",
				types.ExprString(v))
		}
	}
}

// propensityish reports whether the expression involves a tainted variable
// or a propensity-named operand — the trigger for sink findings.
func (st *propTaintState) propensityish(e ast.Expr) bool {
	if st.mentionsTainted(e) {
		return true
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if propDivName(n.Name) {
				found = true
			}
		case *ast.SelectorExpr:
			if propDivName(n.Sel.Name) {
				found = true
			}
		}
		return !found
	})
	return found
}

// enclosingCondMentioning returns the condition of the innermost enclosing
// if/switch whose condition mentions obj, or nil.
func enclosingCondMentioning(stack []ast.Node, obj types.Object, info *types.Info) ast.Expr {
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		mentions := false
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			if id, isID := n.(*ast.Ident); isID {
				if info.Uses[id] == obj {
					mentions = true
				}
			}
			return !mentions
		})
		if mentions {
			return ifs.Cond
		}
	}
	return nil
}
