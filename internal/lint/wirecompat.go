package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// WireCompat diffs the field sets of the versioned wire structs against
// the committed lockfile internal/lint/wire.lock. The federation tier
// (StateSnapshot), the estimator codec (EstimatorState) and the binary
// record layout (binrec encodes core.Datapoint field by field) all
// promise that a version number fully determines the bytes on the wire;
// editing a struct without bumping its version silently breaks mixed-
// version fleets and archived checkpoints. The analyzer makes the drift
// loud: any difference between the live field set (names, types, tags,
// order) and the lock is a finding, and regenerating the lock refuses to
// absorb a field change whose wire-version constant did not move.
var WireCompat = &Analyzer{
	Name: "wirecompat",
	Doc:  "wire-struct field sets must match lint/wire.lock; schema changes require a version bump",
	Run:  runWireCompat,
}

// WireLockPath is the lockfile location relative to the module root.
const WireLockPath = "internal/lint/wire.lock"

// wireWatchItem is one watched wire symbol.
type wireWatchItem struct {
	pkg  string
	name string
	kind string // "struct" or "const"
}

// wireWatch is the watched wire surface: every struct whose encoded form
// crosses a process boundary, plus the version constants guarding them.
var wireWatch = []wireWatchItem{
	{"repro/internal/core", "Context", "struct"},
	{"repro/internal/core", "Datapoint", "struct"},
	{"repro/internal/harvestd", "Accum", "struct"},
	{"repro/internal/harvestd", "SnapshotCounters", "struct"},
	{"repro/internal/harvestd", "StateSnapshot", "struct"},
	{"repro/internal/harvester", "EstimatorState", "struct"},
	{"repro/internal/abtest", "SequentialState", "struct"},
	{"repro/internal/rollout", "Checkpoint", "struct"},
	{"repro/internal/rollout", "GateDecision", "struct"},
	{"repro/internal/rollout", "GateArm", "struct"},
	{"repro/internal/rollout", "GateCheck", "struct"},
	{"repro/internal/rollout", "StageTransition", "struct"},
	{"repro/internal/harvestd", "FreshnessReport", "struct"},
	{"repro/internal/harvestd", "SourceFreshness", "struct"},
	{"repro/internal/fleet", "FleetFreshness", "struct"},
	{"repro/internal/fleet", "ShardFreshness", "struct"},
	{"repro/internal/obswatch", "Incident", "struct"},
	{"repro/internal/harvestd", "SnapshotVersion", "const"},
	{"repro/internal/harvestd", "FreshnessVersion", "const"},
	{"repro/internal/harvester/binrec", "Version", "const"},
	{"repro/internal/rollout", "CheckpointVersion", "const"},
	{"repro/internal/obswatch", "IncidentVersion", "const"},
}

// wireVersionOf names the version constant that must move when a struct's
// field set changes. Structs without an entry (EstimatorState rides inside
// the versioned snapshot) regenerate freely; the lock diff still gates CI.
var wireVersionOf = map[string]string{
	"repro/internal/core.Context":              "repro/internal/harvester/binrec.Version",
	"repro/internal/core.Datapoint":            "repro/internal/harvester/binrec.Version",
	"repro/internal/harvestd.Accum":            "repro/internal/harvestd.SnapshotVersion",
	"repro/internal/harvestd.SnapshotCounters": "repro/internal/harvestd.SnapshotVersion",
	"repro/internal/harvestd.StateSnapshot":    "repro/internal/harvestd.SnapshotVersion",
	"repro/internal/abtest.SequentialState":    "repro/internal/rollout.CheckpointVersion",
	"repro/internal/rollout.Checkpoint":        "repro/internal/rollout.CheckpointVersion",
	"repro/internal/rollout.GateDecision":      "repro/internal/rollout.CheckpointVersion",
	"repro/internal/rollout.GateArm":           "repro/internal/rollout.CheckpointVersion",
	"repro/internal/rollout.GateCheck":         "repro/internal/rollout.CheckpointVersion",
	"repro/internal/rollout.StageTransition":   "repro/internal/rollout.CheckpointVersion",
	"repro/internal/harvestd.FreshnessReport":  "repro/internal/harvestd.FreshnessVersion",
	"repro/internal/harvestd.SourceFreshness":  "repro/internal/harvestd.FreshnessVersion",
	"repro/internal/fleet.FleetFreshness":      "repro/internal/harvestd.FreshnessVersion",
	"repro/internal/fleet.ShardFreshness":      "repro/internal/harvestd.FreshnessVersion",
	"repro/internal/obswatch.Incident":         "repro/internal/obswatch.IncidentVersion",
}

// WireLock is the parsed lockfile: fully-qualified symbol → recorded
// shape. Struct shapes are one line per field ("Name type `tag`"), consts
// record the constant's exact value.
type WireLock struct {
	Consts  map[string]string
	Structs map[string][]string
}

// NewWireLock returns an empty lock.
func NewWireLock() *WireLock {
	return &WireLock{Consts: map[string]string{}, Structs: map[string][]string{}}
}

// wireLock is the lock the analyzer checks against; nil means "not
// loaded" and is reported on every watched package so a deleted lockfile
// cannot silently disable the check.
var wireLock *WireLock

// SetWireLock installs the lock the wirecompat analyzer checks against
// (the driver parses it from WireLockPath; tests inject fixtures).
func SetWireLock(l *WireLock) { wireLock = l }

// CurrentWireLock returns the installed lock (nil when none is loaded).
func CurrentWireLock() *WireLock { return wireLock }

// ParseWireLock parses the lockfile format written by FormatWireLock.
func ParseWireLock(data []byte) (*WireLock, error) {
	l := NewWireLock()
	sc := bufio.NewScanner(bytes.NewReader(data))
	var structKey string
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		switch {
		case text == "" || strings.HasPrefix(text, "#"):
		case structKey != "" && text == "}":
			structKey = ""
		case structKey != "":
			l.Structs[structKey] = append(l.Structs[structKey], text)
		case strings.HasPrefix(text, "const "):
			rest := strings.TrimPrefix(text, "const ")
			key, val, ok := strings.Cut(rest, " = ")
			if !ok {
				return nil, fmt.Errorf("wire.lock line %d: malformed const entry %q", line, text)
			}
			l.Consts[key] = val
		case strings.HasPrefix(text, "struct "):
			rest := strings.TrimPrefix(text, "struct ")
			key, ok := strings.CutSuffix(rest, " {")
			if !ok {
				return nil, fmt.Errorf("wire.lock line %d: malformed struct header %q", line, text)
			}
			structKey = key
			l.Structs[structKey] = []string{}
		default:
			return nil, fmt.Errorf("wire.lock line %d: unrecognized line %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if structKey != "" {
		return nil, fmt.Errorf("wire.lock: unterminated struct block %q", structKey)
	}
	return l, nil
}

// FormatWireLock renders the lock deterministically.
func FormatWireLock(l *WireLock) []byte {
	var b bytes.Buffer
	b.WriteString("# harvestlint wire.lock — locked field sets of the versioned wire structs.\n")
	b.WriteString("# Regenerate with `make wirelock` (harvestlint -wirelock); do not edit by hand.\n")
	b.WriteString("# A diff here must ride with a bump of the guarding wire-version constant.\n")
	keys := make([]string, 0, len(l.Consts))
	for k := range l.Consts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "const %s = %s\n", k, l.Consts[k])
	}
	keys = keys[:0]
	for k := range l.Structs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "struct %s {\n", k)
		for _, f := range l.Structs[k] {
			fmt.Fprintf(&b, "\t%s\n", f)
		}
		b.WriteString("}\n")
	}
	return b.Bytes()
}

// wireFieldLines renders a struct's fields one per line: name, fully
// qualified type, and the raw tag when present. Field order is part of
// the shape — both codecs are order-sensitive.
func wireFieldLines(s *types.Struct, tagOf func(i int) string) []string {
	lines := make([]string, 0, s.NumFields())
	for i := 0; i < s.NumFields(); i++ {
		f := s.Field(i)
		line := f.Name() + " " + types.TypeString(f.Type(), nil)
		if tag := tagOf(i); tag != "" {
			line += " `" + tag + "`"
		}
		lines = append(lines, line)
	}
	return lines
}

// WireEntries extracts the watched wire shapes defined in one package.
func WireEntries(pkg *Package) *WireLock {
	out := NewWireLock()
	scope := pkg.Types.Scope()
	for _, item := range wireWatch {
		if item.pkg != pkg.Path {
			continue
		}
		obj := scope.Lookup(item.name)
		if obj == nil {
			continue
		}
		key := item.pkg + "." + item.name
		switch item.kind {
		case "const":
			c, ok := obj.(*types.Const)
			if !ok {
				continue
			}
			out.Consts[key] = c.Val().ExactString()
		case "struct":
			s, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			out.Structs[key] = wireFieldLines(s, func(i int) string { return s.Tag(i) })
		}
	}
	return out
}

// MergeWireLock folds src's entries into dst (for whole-module lock
// generation).
func MergeWireLock(dst, src *WireLock) {
	for k, v := range src.Consts {
		dst.Consts[k] = v
	}
	for k, v := range src.Structs {
		dst.Structs[k] = append([]string(nil), v...)
	}
}

// CheckWireBump enforces the deliberate-bump rule during regeneration:
// for every struct whose shape changed between old and next, the guarding
// version constant must have changed too. It returns the offending struct
// keys, sorted.
func CheckWireBump(old, next *WireLock) []string {
	if old == nil {
		return nil
	}
	var bad []string
	for key, fields := range next.Structs {
		oldFields, had := old.Structs[key]
		if !had || equalLines(oldFields, fields) {
			continue
		}
		verKey, guarded := wireVersionOf[key]
		if !guarded {
			continue
		}
		if old.Consts[verKey] == next.Consts[verKey] {
			bad = append(bad, key)
		}
	}
	sort.Strings(bad)
	return bad
}

func equalLines(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// watchedInPackage lists the watch items for one import path.
func watchedInPackage(path string) []wireWatchItem {
	var items []wireWatchItem
	for _, item := range wireWatch {
		if item.pkg == path {
			items = append(items, item)
		}
	}
	return items
}

func runWireCompat(pass *Pass) {
	items := watchedInPackage(pass.Pkg.Path())
	if len(items) == 0 {
		return
	}
	pkgPos := pass.Files[0].Name.Pos()
	if wireLock == nil {
		pass.Reportf(pkgPos,
			"package %s defines watched wire structs but %s is not loaded; regenerate it with harvestlint -wirelock",
			pass.Pkg.Path(), WireLockPath)
		return
	}
	live := WireEntries(&Package{Path: pass.Pkg.Path(), Types: pass.Pkg})
	for _, item := range items {
		key := item.pkg + "." + item.name
		pos := declPos(pass, item.name, pkgPos)
		switch item.kind {
		case "const":
			val, found := live.Consts[key]
			if !found {
				pass.Reportf(pkgPos, "watched wire-version constant %s not found in package", key)
				continue
			}
			locked, inLock := wireLock.Consts[key]
			if !inLock {
				pass.Reportf(pos, "wire-version constant %s is not recorded in %s; regenerate the lock (make wirelock)", key, WireLockPath)
				continue
			}
			if locked != val {
				pass.Reportf(pos,
					"wire-version constant %s = %s but %s records %s; regenerate the lock (make wirelock)",
					key, val, WireLockPath, locked)
			}
		case "struct":
			fields, found := live.Structs[key]
			if !found {
				pass.Reportf(pkgPos, "watched wire struct %s not found in package", key)
				continue
			}
			locked, inLock := wireLock.Structs[key]
			if !inLock {
				pass.Reportf(pos, "wire struct %s is not recorded in %s; regenerate the lock (make wirelock)", key, WireLockPath)
				continue
			}
			if !equalLines(locked, fields) {
				hint := "regenerate the lock (make wirelock)"
				if verKey, guarded := wireVersionOf[key]; guarded {
					hint = fmt.Sprintf("bump %s and regenerate the lock (make wirelock)", verKey)
				}
				pass.Reportf(pos,
					"wire struct %s field set differs from %s (%s); %s",
					key, WireLockPath, wireDiffSummary(locked, fields), hint)
			}
		}
	}
}

// declPos finds the position of a top-level declaration by name, falling
// back to the package clause.
func declPos(pass *Pass, name string, fallback token.Pos) token.Pos {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.Name == name {
						return s.Name.Pos()
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.Name == name {
							return n.Pos()
						}
					}
				}
			}
		}
	}
	return fallback
}

// wireDiffSummary gives a one-clause description of how the field sets
// differ, for actionable messages without dumping both lists.
func wireDiffSummary(locked, live []string) string {
	if len(locked) != len(live) {
		return fmt.Sprintf("%d fields locked, %d live", len(locked), len(live))
	}
	for i := range locked {
		if locked[i] != live[i] {
			return fmt.Sprintf("field %d: locked %q, live %q", i, locked[i], live[i])
		}
	}
	return "unknown difference"
}
