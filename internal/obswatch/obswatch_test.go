package obswatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestSeriesRing(t *testing.T) {
	s := NewSeries(4)
	if _, ok := s.Last(); ok {
		t.Fatal("empty series reported a last sample")
	}
	for i := 1; i <= 6; i++ {
		s.Append(int64(i), float64(i)*10)
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d, want 4", s.Len())
	}
	got := s.Samples()
	want := []Sample{{3, 30}, {4, 40}, {5, 50}, {6, 60}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("samples = %v, want %v", got, want)
	}
	last, ok := s.Last()
	if !ok || last != (Sample{6, 60}) {
		t.Fatalf("last = %v/%t, want {6 60}", last, ok)
	}
}

func TestParseProm(t *testing.T) {
	body := `# HELP x_total help text
# TYPE x_total counter
x_total 42
lat{backend="a b",q="0.5"} 1.25
bad_line_without_value
nan_metric NaN
inf_metric +Inf
empty

gauge_neg -3.5
`
	got := ParseProm([]byte(body))
	want := map[string]float64{
		"x_total":                    42,
		`lat{backend="a b",q="0.5"}`: 1.25,
		"gauge_neg":                  -3.5,
	}
	// NaN and ±Inf parse via ParseFloat but are dropped: they make no
	// useful alert input (comparisons with NaN are always false) and a
	// non-finite sample is unencodable in the /series JSON payload —
	// empty-histogram quantile gauges legitimately expose NaN.
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parsed = %v, want %v", got, want)
	}
}

func TestRuleValidation(t *testing.T) {
	if _, err := New(Config{
		Targets: []Target{{Kind: KindHarvestd, Name: "h", URL: "http://x"}},
		Rules:   []Rule{{Name: "bad", Kind: RuleMetricAbove}},
	}); err == nil {
		t.Fatal("metric rule without a metric name accepted")
	}
	if _, err := New(Config{
		Targets: []Target{{Name: "a", URL: "http://x"}, {Name: "a", URL: "http://y"}},
	}); err == nil {
		t.Fatal("duplicate target names accepted")
	}
	if _, err := New(Config{
		Targets: []Target{{Name: "h", URL: "http://x"}},
		Rules:   DefaultRules(RuleDefaults{}),
	}); err != nil {
		t.Fatalf("default rules rejected: %v", err)
	}
}

// scriptedTarget is a fake daemon whose surfaces replay whatever the test
// scripted for the current frame. An empty metrics body plays a 503 (the
// daemon is down); empty freshness/gates bodies play 404 (surface absent).
type scriptedTarget struct {
	mu        sync.Mutex
	metrics   string
	freshness string
	gates     string
	srv       *httptest.Server
}

func newScriptedTarget(t *testing.T) *scriptedTarget {
	t.Helper()
	st := &scriptedTarget{}
	st.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st.mu.Lock()
		defer st.mu.Unlock()
		switch r.URL.Path {
		case "/metrics":
			if st.metrics == "" {
				http.Error(w, "down", http.StatusServiceUnavailable)
				return
			}
			_, _ = w.Write([]byte(st.metrics))
		case "/freshness":
			if st.freshness == "" {
				http.NotFound(w, r)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(st.freshness))
		case "/gates":
			if st.gates == "" {
				http.NotFound(w, r)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(st.gates))
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(st.srv.Close)
	return st
}

func (st *scriptedTarget) set(metrics, freshness, gates string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.metrics, st.freshness, st.gates = metrics, freshness, gates
}

func aggMetrics(ess float64, n int) string {
	return fmt.Sprintf(`harvestagg_policy_ess_fraction{policy="cand"} %g
harvestagg_policy_n{policy="cand"} %d
harvestagg_shard_up{shard="s0"} 1
harvestagg_shard_staleness_seconds{shard="s0"} 0.25
`, ess, n)
}

func freshBody(age float64) string {
	return fmt.Sprintf(`{"watermark_age_seconds": %g, "behind": 0}`, age)
}

func gatesBody(outcomes ...string) string {
	rows := make([]map[string]string, len(outcomes))
	for i, o := range outcomes {
		rows[i] = map[string]string{"outcome": o}
	}
	b, _ := json.Marshal(rows)
	return string(b)
}

// simRules is the sim scenario's alert table: the defaults, with a 10s
// hysteresis window on the fleet ESS rule so the pending->firing path is
// exercised.
func simRules() []Rule {
	rules := DefaultRules(RuleDefaults{ESSFloor: 0.1, LagSLO: 30, StaleSLO: 15, FlapThreshold: 3})
	for i := range rules {
		if rules[i].Name == "fleet_ess_collapse" {
			rules[i].For = 10 * time.Second
		}
	}
	return rules
}

// playScript runs the scripted nine-frame scenario: an ESS collapse that
// burns through the hysteresis window and recovers, a freshness-lag SLO
// breach, a gate-flapping episode, and a target outage. One tick every 5
// simulated seconds.
func playScript(t *testing.T, w *Watcher, clk *obs.FixedClock, agg, ro *scriptedTarget) {
	t.Helper()
	roMetrics := "rolloutd_uptime_seconds 5\n"
	type frame struct {
		aggEss   float64
		freshAge float64
		roUp     bool
		gates    string
	}
	frames := []frame{
		{aggEss: 0.8, freshAge: 1, roUp: true, gates: gatesBody("promote", "promote")},
		{aggEss: 0.05, freshAge: 1, roUp: true, gates: gatesBody("promote", "promote")},
		{aggEss: 0.05, freshAge: 45, roUp: true, gates: gatesBody("promote", "promote")},
		{aggEss: 0.05, freshAge: 45, roUp: true, gates: gatesBody("promote", "promote")},
		{aggEss: 0.9, freshAge: 2, roUp: true, gates: gatesBody("promote", "promote")},
		{aggEss: 0.9, freshAge: 2, roUp: true, gates: gatesBody("promote", "hold", "promote", "hold")},
		{aggEss: 0.9, freshAge: 2, roUp: true, gates: gatesBody("hold", "hold", "hold", "hold")},
		{aggEss: 0.9, freshAge: 2, roUp: false},
		{aggEss: 0.9, freshAge: 2, roUp: true, gates: gatesBody("hold", "hold")},
	}
	for _, fr := range frames {
		agg.set(aggMetrics(fr.aggEss, 500), freshBody(fr.freshAge), "")
		if fr.roUp {
			ro.set(roMetrics, "", fr.gates)
		} else {
			ro.set("", "", "")
		}
		clk.Advance(5 * time.Second)
		w.Tick(context.Background())
	}
}

// TestWatcherSimDeterministic drives scripted frames through an injected
// clock and pins the full incident sequence — including an ESS-collapse
// open and resolve — then replays the identical script into a second
// watcher and demands byte-identical incident JSONL.
func TestWatcherSimDeterministic(t *testing.T) {
	agg := newScriptedTarget(t)
	ro := newScriptedTarget(t)

	run := func() (*Watcher, *obs.FixedClock, *bytes.Buffer) {
		var buf bytes.Buffer
		clk := &obs.FixedClock{T: time.Unix(2000000000, 0).UTC()}
		w, err := New(Config{
			Targets: []Target{
				{Kind: KindHarvestagg, Name: "agg", URL: agg.srv.URL},
				{Kind: KindRolloutd, Name: "ro", URL: ro.srv.URL},
			},
			Rules:     simRules(),
			SeriesCap: 32,
			IncidentW: &buf,
			Clock:     clk,
		})
		if err != nil {
			t.Fatal(err)
		}
		return w, clk, &buf
	}

	w, clk, buf := run()
	playScript(t, w, clk, agg, ro)

	var incidents []Incident
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	for dec.More() {
		var inc Incident
		if err := dec.Decode(&inc); err != nil {
			t.Fatalf("decoding incident log: %v", err)
		}
		incidents = append(incidents, inc)
	}
	type step struct{ state, rule, target string }
	want := []step{
		{"open", "freshness_lag", "agg"},      // frame 3: watermark age 45 > 30
		{"open", "fleet_ess_collapse", "agg"}, // frame 4: 10s hysteresis elapsed
		{"resolved", "fleet_ess_collapse", "agg"},
		{"resolved", "freshness_lag", "agg"}, // frame 5: both clear, rule order
		{"open", "gate_flap", "ro"},          // frame 6: 3 outcome changes
		{"resolved", "gate_flap", "ro"},      // frame 7: steady decisions
		{"open", "target_down", "ro"},        // frame 8: 503s
		{"resolved", "target_down", "ro"},    // frame 9: back up
	}
	if len(incidents) != len(want) {
		t.Fatalf("got %d incidents, want %d:\n%s", len(incidents), len(want), buf.String())
	}
	for i, inc := range incidents {
		if inc.Seq != int64(i+1) || inc.Version != IncidentVersion {
			t.Errorf("incident %d: seq=%d version=%d", i, inc.Seq, inc.Version)
		}
		if inc.State != want[i].state || inc.Rule != want[i].rule || inc.Target != want[i].target {
			t.Errorf("incident %d = %s/%s/%s, want %v", i, inc.State, inc.Rule, inc.Target, want[i])
		}
	}
	// The ESS resolve burned exactly one 5s frame; the freshness burn two.
	if incidents[2].DurationSeconds != 5 {
		t.Errorf("ess burn = %gs, want 5", incidents[2].DurationSeconds)
	}
	if incidents[3].DurationSeconds != 10 {
		t.Errorf("freshness burn = %gs, want 10", incidents[3].DurationSeconds)
	}
	if incidents[1].Value != 0.05 {
		t.Errorf("ess open value = %g, want 0.05", incidents[1].Value)
	}

	// Replaying the identical script must reproduce the incident log
	// byte for byte.
	w2, clk2, buf2 := run()
	playScript(t, w2, clk2, agg, ro)
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("incident logs differ between identical runs:\n--- run 1\n%s--- run 2\n%s",
			buf.String(), buf2.String())
	}
}

// TestWatcherEndpoints exercises the HTTP surface against a mid-burn
// scripted state: /alerts lists the firing instances sorted, /series
// retains the scraped samples, /status summarizes scrape health.
func TestWatcherEndpoints(t *testing.T) {
	agg := newScriptedTarget(t)
	ro := newScriptedTarget(t)
	var buf bytes.Buffer
	clk := &obs.FixedClock{T: time.Unix(2000000000, 0).UTC()}
	w, err := New(Config{
		Targets: []Target{
			{Kind: KindHarvestagg, Name: "agg", URL: agg.srv.URL},
			{Kind: KindRolloutd, Name: "ro", URL: ro.srv.URL},
		},
		Rules:     simRules(),
		SeriesCap: 32,
		IncidentW: &buf,
		Clock:     clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = w.Shutdown(ctx)
	})

	// Two frames: healthy, then ESS collapsed + freshness breached long
	// enough for the lag alert (For 0) to open.
	agg.set(aggMetrics(0.8, 500), freshBody(1), "")
	ro.set("rolloutd_uptime_seconds 5\n", "", gatesBody("promote"))
	clk.Advance(5 * time.Second)
	w.Tick(context.Background())
	agg.set(aggMetrics(0.05, 500), freshBody(45), "")
	clk.Advance(5 * time.Second)
	w.Tick(context.Background())

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(w.URL() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: HTTP %d", path, resp.StatusCode)
		}
		var sb bytes.Buffer
		if _, err := sb.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}

	var alerts []Alert
	if err := json.Unmarshal([]byte(get("/alerts")), &alerts); err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 2 {
		t.Fatalf("alerts = %+v, want ess pending + freshness firing", alerts)
	}
	if alerts[0].Rule != "fleet_ess_collapse" || alerts[0].State != "pending" {
		t.Errorf("alert 0 = %+v, want pending fleet_ess_collapse", alerts[0])
	}
	if alerts[1].Rule != "freshness_lag" || alerts[1].State != "firing" || alerts[1].Value != 45 {
		t.Errorf("alert 1 = %+v, want firing freshness_lag at 45", alerts[1])
	}

	var status Status
	if err := json.Unmarshal([]byte(get("/status")), &status); err != nil {
		t.Fatal(err)
	}
	if status.Ticks != 2 || status.AlertsPending != 1 || status.AlertsFiring != 1 || status.Incidents != 1 {
		t.Errorf("status = ticks %d pending %d firing %d incidents %d",
			status.Ticks, status.AlertsPending, status.AlertsFiring, status.Incidents)
	}
	if len(status.Targets) != 2 || !status.Targets[0].Up || status.Targets[0].Scrapes != 2 {
		t.Errorf("target rows = %+v", status.Targets)
	}

	var series map[string]map[string][]Sample
	if err := json.Unmarshal([]byte(get("/series?target=agg&prefix=watch_")), &series); err != nil {
		t.Fatal(err)
	}
	wm := series["agg"]["watch_watermark_age_seconds"]
	if len(wm) != 2 || wm[0].V != 1 || wm[1].V != 45 {
		t.Errorf("watermark series = %v, want [1 45]", wm)
	}
	if _, ok := series["agg"][`harvestagg_policy_ess_fraction{policy="cand"}`]; ok {
		t.Error("prefix filter leaked a non-watch series")
	}

	if body := get("/metrics"); !bytes.Contains([]byte(body), []byte("fleetwatch_alerts_firing 1")) {
		t.Errorf("watcher metrics missing firing gauge:\n%s", body)
	}
	if body := get("/healthz"); !bytes.Contains([]byte(body), []byte("targets=2/2 firing=1")) {
		t.Errorf("healthz = %q", body)
	}
}

// TestFlappingTargetByteStable flaps one target through three
// answer->503->answer cycles while concurrent readers hammer the API, and
// demands the alert open->resolve incident sequence come out byte-stable
// across two identical runs — the -race scrape-vs-serve exercise.
func TestFlappingTargetByteStable(t *testing.T) {
	target := newScriptedTarget(t)
	up := "lbd_uptime_seconds 1\n"

	run := func() *bytes.Buffer {
		var buf bytes.Buffer
		clk := &obs.FixedClock{T: time.Unix(2100000000, 0).UTC()}
		w, err := New(Config{
			Targets:   []Target{{Kind: KindLBD, Name: "lb", URL: target.srv.URL}},
			Rules:     []Rule{{Name: "target_down", Kind: RuleTargetDown}},
			IncidentW: &buf,
			Clock:     clk,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = w.Shutdown(ctx)
		}()

		stop := make(chan struct{})
		var readers sync.WaitGroup
		for i := 0; i < 3; i++ {
			readers.Add(1)
			go func() {
				defer readers.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					for _, p := range []string{"/alerts", "/status", "/metrics"} {
						resp, err := http.Get(w.URL() + p)
						if err == nil {
							_ = resp.Body.Close()
						}
					}
				}
			}()
		}
		for cycle := 0; cycle < 3; cycle++ {
			target.set(up, "", "")
			clk.Advance(time.Second)
			w.Tick(context.Background())
			target.set("", "", "")
			clk.Advance(time.Second)
			w.Tick(context.Background())
		}
		target.set(up, "", "")
		clk.Advance(time.Second)
		w.Tick(context.Background())
		close(stop)
		readers.Wait()
		return &buf
	}

	buf1 := run()
	var states []string
	dec := json.NewDecoder(bytes.NewReader(buf1.Bytes()))
	for dec.More() {
		var inc Incident
		if err := dec.Decode(&inc); err != nil {
			t.Fatal(err)
		}
		if inc.Rule != "target_down" || inc.Target != "lb" {
			t.Fatalf("unexpected incident %+v", inc)
		}
		states = append(states, inc.State)
	}
	want := []string{"open", "resolved", "open", "resolved", "open", "resolved"}
	if !reflect.DeepEqual(states, want) {
		t.Fatalf("incident states = %v, want %v", states, want)
	}

	buf2 := run()
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatalf("flap incident logs differ between identical runs:\n--- run 1\n%s--- run 2\n%s",
			buf1.String(), buf2.String())
	}
}
