package obswatch

import (
	"encoding/json"
	"time"
)

// IncidentVersion guards the incident record schema. The incident JSONL
// file is the watcher's durable pager history — tracecat summarizes it and
// CI archives it — so the struct is wire-locked and this constant must
// move with any field change.
const IncidentVersion = 1

// Incident is one alert transition, appended to the incident JSONL file
// at open and at resolve. The pair shares Seq-independent identity via
// (rule, target, series, opened_unix_milli).
type Incident struct {
	Version int `json:"version"`
	// Seq numbers records from 1 in write order.
	Seq int64 `json:"seq"`
	// State is "open" or "resolved".
	State  string `json:"state"`
	Rule   string `json:"rule"`
	Target string `json:"target"`
	Series string `json:"series"`
	// TimeUnixMilli stamps this transition; OpenedUnixMilli the alert's
	// open (so a resolved record self-describes its burn).
	TimeUnixMilli   int64 `json:"time_unix_milli"`
	OpenedUnixMilli int64 `json:"opened_unix_milli"`
	// DurationSeconds is how long the alert burned (resolved records only).
	DurationSeconds float64 `json:"duration_seconds,omitempty"`
	// Value and Detail capture the offending evidence at transition time.
	Value  float64 `json:"value"`
	Detail string  `json:"detail"`
}

// openLocked promotes an alert to firing and appends the open record.
// Called with w.mu held.
func (w *Watcher) openLocked(st *alertState, now time.Time) {
	st.firing = true
	st.openedAt = now
	w.appendIncidentLocked(Incident{
		Version: IncidentVersion,
		State:   "open",
		Rule:    st.rule.Name, Target: st.target, Series: st.series,
		TimeUnixMilli:   now.UnixMilli(),
		OpenedUnixMilli: now.UnixMilli(),
		Value:           st.value, Detail: st.detail,
	})
}

// resolveLocked appends the resolve record for a firing alert. Called
// with w.mu held; the caller removes the state.
func (w *Watcher) resolveLocked(st *alertState, now time.Time, value float64, detail string) {
	w.appendIncidentLocked(Incident{
		Version: IncidentVersion,
		State:   "resolved",
		Rule:    st.rule.Name, Target: st.target, Series: st.series,
		TimeUnixMilli:   now.UnixMilli(),
		OpenedUnixMilli: st.openedAt.UnixMilli(),
		DurationSeconds: now.Sub(st.openedAt).Seconds(),
		Value:           value, Detail: detail,
	})
}

// appendIncidentLocked assigns the next sequence number and writes one
// JSON line. Called with w.mu held.
func (w *Watcher) appendIncidentLocked(inc Incident) {
	w.incidentSeq++
	inc.Seq = w.incidentSeq
	w.met.incidents.Inc()
	w.cfg.Logf("fleetwatch: %s %s %s/%s: %s", inc.State, inc.Rule, inc.Target, inc.Series, inc.Detail)
	if w.cfg.IncidentW == nil {
		return
	}
	b, err := json.Marshal(inc)
	if err != nil {
		w.cfg.Logf("fleetwatch: encoding incident: %v", err)
		return
	}
	if _, err := w.cfg.IncidentW.Write(append(b, '\n')); err != nil {
		w.cfg.Logf("fleetwatch: writing incident: %v", err)
	}
}
