package obswatch

// Live kill-a-shard end-to-end test: a real harvestd shard behind a
// stable frontage, a real fleet aggregator pulling it, and a fleetwatch
// watcher on a real scrape loop. Killing the shard must burn a
// shard_stale alert open; reviving it on a fresh port must resolve it.
// Run under -race this also exercises the scrape loop against the live
// HTTP surfaces.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/harvestd"
	"repro/internal/lbsim"
	"repro/internal/policy"
	"repro/internal/stats"
)

// syncBuffer is a mutex-guarded bytes.Buffer: the watcher's scrape loop
// writes incidents concurrently with the test's final read.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// stableAddr is a fixed frontage for a daemon that can die and come back
// on another port (the aggregator's shard URL outlives the process).
type stableAddr struct {
	mu     sync.Mutex
	target string // live daemon base URL; "" = down
	srv    *httptest.Server
}

func newStableAddr(t *testing.T, target string) *stableAddr {
	t.Helper()
	sa := &stableAddr{target: target}
	sa.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sa.mu.Lock()
		target := sa.target
		sa.mu.Unlock()
		if target == "" {
			http.Error(w, "shard down", http.StatusBadGateway)
			return
		}
		resp, err := http.Get(target + r.URL.Path)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer func() { _ = resp.Body.Close() }()
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
	}))
	t.Cleanup(sa.srv.Close)
	return sa
}

func (sa *stableAddr) retarget(url string) {
	sa.mu.Lock()
	sa.target = url
	sa.mu.Unlock()
}

// startShard boots one harvestd with a couple of ingested datapoints.
func startShard(t *testing.T) *harvestd.Daemon {
	t.Helper()
	reg, err := harvestd.NewRegistry(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("always-0", policy.Constant{A: 0}); err != nil {
		t.Fatal(err)
	}
	d, err := harvestd.New(harvestd.Config{
		Workers: 1, Clip: 10, Delta: 0.05, Addr: "127.0.0.1:0", ShardID: "shard-a",
	}, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	r := stats.NewRand(7)
	for i := 0; i < 32; i++ {
		err := d.Ingest(core.Datapoint{
			Context:    lbsim.BuildContext([]int{r.Intn(4), r.Intn(4)}, 0, 1),
			Action:     core.Action(r.Intn(2)),
			Reward:     float64(r.Intn(1024)) / 1024,
			Propensity: 0.5,
			Seq:        int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestE2EKillShardAlertsAndResolves(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-daemon topology in -short mode")
	}

	shard := startShard(t)
	sa := newStableAddr(t, shard.URL())
	agg, err := fleet.New(fleet.Config{
		Shards:       []fleet.Shard{{Name: "shard-a", URL: sa.srv.URL}},
		PullInterval: 30 * time.Millisecond,
		PullTimeout:  time.Second,
		MaxBackoff:   60 * time.Millisecond,
		StaleAfter:   250 * time.Millisecond,
		Addr:         "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = agg.Shutdown(ctx)
	})
	// Don't start watching until the aggregator has pulled the shard once,
	// or the very first scrape round sees shard_up=0 and pages spuriously.
	waitUntil(t, 10*time.Second, "aggregator's first shard pull", func() bool {
		return agg.View().LiveShards == 1
	})

	incidents := &syncBuffer{}
	w, err := New(Config{
		Targets:  []Target{{Kind: KindHarvestagg, Name: "agg", URL: agg.URL()}},
		Rules:    DefaultRules(RuleDefaults{StaleSLO: 0.4}),
		Interval: 25 * time.Millisecond,
		// The ring must outlive the whole scenario at 25ms per sample.
		SeriesCap: 4096,
		IncidentW: incidents,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = w.Shutdown(ctx)
	})

	alertsNow := func() []Alert { return w.Alerts() }
	firing := func(rule string) func() bool {
		return func() bool {
			for _, a := range alertsNow() {
				if a.Rule == rule && a.State == "firing" {
					return true
				}
			}
			return false
		}
	}
	anyFiring := func() bool {
		for _, a := range alertsNow() {
			if a.State == "firing" {
				return true
			}
		}
		return false
	}

	// Healthy steady state: scrapes succeed and nothing fires.
	waitUntil(t, 5*time.Second, "first clean scrape rounds", func() bool {
		st := w.StatusNow()
		return st.Ticks >= 3 && len(st.Targets) == 1 && st.Targets[0].Up
	})
	if f := alertsNow(); len(f) != 0 {
		t.Fatalf("alerts on a healthy fleet: %+v", f)
	}

	// Kill the shard. The aggregator's staleness gauge climbs past the
	// SLO and fleetwatch opens shard_stale (and shard_down once the
	// aggregator drops the shard from the live set).
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := shard.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	sa.retarget("")
	waitUntil(t, 10*time.Second, "shard_stale to fire after shard kill", firing("shard_stale"))
	waitUntil(t, 10*time.Second, "shard_down to fire after shard kill", firing("shard_down"))

	// Revive the shard on a fresh port; both alerts must resolve.
	shard2 := startShard(t)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = shard2.Shutdown(ctx)
	})
	sa.retarget(shard2.URL())
	waitUntil(t, 10*time.Second, "alerts to resolve after revival", func() bool { return !anyFiring() })

	// The incident log tells the same story: shard_stale opened and then
	// resolved (interleaved with shard_down's pair).
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := w.Shutdown(ctx2); err != nil {
		t.Fatal(err)
	}
	var opened, resolved bool
	dec := json.NewDecoder(bytes.NewReader(incidents.Bytes()))
	for dec.More() {
		var inc Incident
		if err := dec.Decode(&inc); err != nil {
			t.Fatal(err)
		}
		if inc.Rule == "shard_stale" && inc.State == "open" {
			opened = true
		}
		if inc.Rule == "shard_stale" && inc.State == "resolved" {
			if !opened {
				t.Fatal("shard_stale resolved before opening")
			}
			resolved = true
		}
	}
	if !opened || !resolved {
		t.Fatalf("shard_stale open/resolved = %t/%t, want both:\n%s",
			opened, resolved, incidents.Bytes())
	}
}
