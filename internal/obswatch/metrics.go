package obswatch

import "repro/internal/obs"

// watchMetrics caches the watcher's own instrument handles.
type watchMetrics struct {
	scrapes      *obs.Counter
	scrapeErrors []*obs.Counter
	incidents    *obs.Counter
}

// initMetrics builds the watcher's own /metrics registry — the watcher
// watches the fleet, and whoever watches the watcher scrapes this.
func (w *Watcher) initMetrics() {
	r := obs.NewRegistry()
	r.GaugeFunc("fleetwatch_uptime_seconds", "seconds since the watcher started", func() float64 {
		return w.cfg.Clock.Now().Sub(w.start).Seconds()
	})
	r.GaugeFunc("fleetwatch_targets", "configured scrape targets", func() float64 {
		return float64(len(w.cfg.Targets))
	})
	r.GaugeFunc("fleetwatch_targets_up", "targets whose last scrape succeeded", func() float64 {
		w.mu.Lock()
		defer w.mu.Unlock()
		n := 0
		for i := range w.tstat {
			if w.tstat[i].up {
				n++
			}
		}
		return float64(n)
	})
	r.GaugeFunc("fleetwatch_rules", "alert rules in the table", func() float64 {
		return float64(len(w.cfg.Rules))
	})
	r.GaugeFunc("fleetwatch_series", "retained time series across targets", func() float64 {
		w.mu.Lock()
		defer w.mu.Unlock()
		n := 0
		for _, m := range w.series {
			n += len(m)
		}
		return float64(n)
	})
	r.GaugeFunc("fleetwatch_alerts_pending", "alert instances inside their hysteresis window", func() float64 {
		return float64(w.countAlerts(false))
	})
	r.GaugeFunc("fleetwatch_alerts_firing", "alert instances currently firing", func() float64 {
		return float64(w.countAlerts(true))
	})
	w.met.scrapes = r.Counter("fleetwatch_scrape_rounds_total", "completed scrape-and-evaluate rounds")
	w.met.incidents = r.Counter("fleetwatch_incidents_total", "incident records written (opens plus resolves)")
	w.met.scrapeErrors = make([]*obs.Counter, len(w.cfg.Targets))
	for i, t := range w.cfg.Targets {
		w.met.scrapeErrors[i] = r.Counter("fleetwatch_scrape_errors_total",
			"failed /metrics scrapes", "target", t.Name)
	}
	obs.RegisterGoRuntime(r)
	w.reg = r
}

// countAlerts tallies live alerts by firing state.
func (w *Watcher) countAlerts(firing bool) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, st := range w.alerts {
		if st.firing == firing {
			n++
		}
	}
	return n
}
