// Package obswatch is the fleet health watcher: it scrapes every OPE
// daemon's /metrics (plus /freshness on harvest surfaces and /gates on
// rollout controllers) on a fixed cadence, keeps bounded ring-buffer time
// series of everything it sees, and evaluates a declarative alert-rule
// table over the latest samples with for-duration hysteresis. Every alert
// transition (open, resolve) is appended as a versioned incident record to
// a JSONL file — the fleet's machine-readable pager history.
//
// The watcher is deterministic by construction: time flows through an
// injected obs.Clock, one scrape-and-evaluate round is the explicit Tick
// method (the background loop just calls it on a ticker), and targets,
// rules, and series are always walked in a canonical order — scripted
// frames through a fixed clock therefore produce byte-identical incident
// logs.
package obswatch

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Target kinds. The kind selects which endpoints are scraped beyond
// /metrics: harvest surfaces serve /freshness, rollout controllers /gates.
const (
	KindLBD        = "lbd"
	KindHarvestd   = "harvestd"
	KindHarvestagg = "harvestagg"
	KindRolloutd   = "rolloutd"
)

// Target is one daemon under watch.
type Target struct {
	// Kind is one of the Kind* constants ("" scrapes /metrics only).
	Kind string
	// Name keys the target's series and alerts; unique per watcher.
	Name string
	// URL is the daemon's base URL (no trailing slash).
	URL string
}

// hasFreshness reports whether the target's kind serves /freshness.
func (t Target) hasFreshness() bool {
	return t.Kind == KindHarvestd || t.Kind == KindHarvestagg
}

// Config parameterizes a Watcher.
type Config struct {
	// Targets are the daemons to scrape, in evaluation order.
	Targets []Target
	// Rules is the alert table; nil means no alerting (series only).
	Rules []Rule
	// Interval is the scrape period for the background loop; <= 0 disables
	// the loop entirely (tests then drive Tick by hand).
	Interval time.Duration
	// ScrapeTimeout bounds each HTTP fetch (default 5s).
	ScrapeTimeout time.Duration
	// SeriesCap is each ring buffer's sample capacity (default 512).
	SeriesCap int
	// FlapWindow is how many trailing gate decisions the flap detector
	// inspects on rolloutd targets (default 10).
	FlapWindow int
	// IncidentW receives one JSON line per alert transition; nil discards.
	IncidentW io.Writer
	// Addr is the HTTP API listen address; "" picks an ephemeral localhost
	// port.
	Addr string
	// Client is the scrape client (default: one with ScrapeTimeout).
	Client *http.Client
	// Clock supplies all timestamps (default wall clock).
	Clock obs.Clock
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// Watcher scrapes the fleet and maintains series + alert state.
type Watcher struct {
	cfg Config

	mu sync.Mutex
	// series is target name → series key → ring buffer. Keys are the raw
	// exposition series ("name" or `name{label="v"}`), plus the watcher's
	// own watch_* synthetics.
	series map[string]map[string]*Series
	// alerts is alert key (rule|target|series) → live state.
	alerts map[string]*alertState
	// tstat tracks per-target scrape health.
	tstat []targetStatus
	// incidentSeq numbers incident records from 1.
	incidentSeq int64
	ticks       int64

	start time.Time
	reg   *obs.Registry
	met   watchMetrics

	stateMu  sync.Mutex
	running  bool
	ln       net.Listener
	srv      *http.Server
	loopCtx  context.Context
	cancel   context.CancelFunc
	loopDone chan struct{}
}

// targetStatus is one target's scrape health, indexed like cfg.Targets.
type targetStatus struct {
	up            bool
	lastScrape    time.Time
	lastErr       string
	scrapes       int64
	scrapeErrors  int64
	seriesScraped int
}

// New validates the configuration and builds a stopped watcher.
func New(cfg Config) (*Watcher, error) {
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("obswatch: no targets")
	}
	seen := map[string]bool{}
	for i, t := range cfg.Targets {
		if t.Name == "" || t.URL == "" {
			return nil, fmt.Errorf("obswatch: target %d: name and URL required", i)
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("obswatch: duplicate target name %q", t.Name)
		}
		seen[t.Name] = true
		cfg.Targets[i].URL = strings.TrimSuffix(t.URL, "/")
	}
	for i, r := range cfg.Rules {
		if err := r.validate(); err != nil {
			return nil, fmt.Errorf("obswatch: rule %d (%s): %w", i, r.Name, err)
		}
	}
	if cfg.ScrapeTimeout <= 0 {
		cfg.ScrapeTimeout = 5 * time.Second
	}
	if cfg.SeriesCap <= 0 {
		cfg.SeriesCap = 512
	}
	if cfg.FlapWindow <= 0 {
		cfg.FlapWindow = 10
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: cfg.ScrapeTimeout}
	}
	if cfg.Clock == nil {
		cfg.Clock = obs.WallClock()
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	w := &Watcher{
		cfg:    cfg,
		series: make(map[string]map[string]*Series, len(cfg.Targets)),
		alerts: map[string]*alertState{},
		tstat:  make([]targetStatus, len(cfg.Targets)),
		start:  cfg.Clock.Now(),
	}
	for _, t := range cfg.Targets {
		w.series[t.Name] = map[string]*Series{}
	}
	w.initMetrics()
	return w, nil
}

// Start opens the listener and, when an interval is configured, launches
// the scrape loop. The first Tick runs immediately so /alerts and /series
// are populated as soon as the API is reachable.
func (w *Watcher) Start(ctx context.Context) error {
	w.stateMu.Lock()
	defer w.stateMu.Unlock()
	if w.running {
		return fmt.Errorf("obswatch: already started")
	}
	addr := w.cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obswatch: listen %s: %w", addr, err)
	}
	w.ln = ln
	w.srv = &http.Server{Handler: w.handler()}
	go func() { _ = w.srv.Serve(ln) }()

	w.loopCtx, w.cancel = context.WithCancel(context.WithoutCancel(ctx))
	w.loopDone = make(chan struct{})
	if w.cfg.Interval > 0 {
		go w.loop()
	} else {
		close(w.loopDone)
	}
	w.running = true
	w.cfg.Logf("fleetwatch: watching %d targets on http://%s", len(w.cfg.Targets), ln.Addr())
	return nil
}

// loop runs Tick every Interval until Shutdown.
func (w *Watcher) loop() {
	defer close(w.loopDone)
	w.Tick(w.loopCtx)
	t := time.NewTicker(w.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			w.Tick(w.loopCtx)
		case <-w.loopCtx.Done():
			return
		}
	}
}

// Addr returns the API's host:port (after Start).
func (w *Watcher) Addr() string {
	w.stateMu.Lock()
	defer w.stateMu.Unlock()
	if w.ln == nil {
		return ""
	}
	return w.ln.Addr().String()
}

// URL returns the API's base URL (after Start).
func (w *Watcher) URL() string { return "http://" + w.Addr() }

// Shutdown stops the loop and the HTTP server.
func (w *Watcher) Shutdown(ctx context.Context) error {
	w.stateMu.Lock()
	if !w.running {
		w.stateMu.Unlock()
		return nil
	}
	w.running = false
	w.stateMu.Unlock()
	w.cancel()
	<-w.loopDone
	return w.srv.Shutdown(ctx)
}

// Tick performs one scrape-and-evaluate round: every target is scraped in
// configuration order, samples land in the ring buffers, and the rule
// table runs against the fresh state. It is the unit the deterministic
// simulation tests drive directly.
func (w *Watcher) Tick(ctx context.Context) {
	now := w.cfg.Clock.Now()
	type scraped struct {
		up      bool
		errMsg  string
		samples map[string]float64
	}
	results := make([]scraped, len(w.cfg.Targets))
	for i, t := range w.cfg.Targets {
		samples, err := w.scrapeTarget(ctx, t)
		results[i] = scraped{up: err == nil, samples: samples}
		if err != nil {
			results[i].errMsg = err.Error()
			if ctx.Err() == nil {
				w.cfg.Logf("fleetwatch: scrape %s: %v", t.Name, err)
			}
		}
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	w.ticks++
	w.met.scrapes.Inc()
	for i, t := range w.cfg.Targets {
		res := results[i]
		st := &w.tstat[i]
		st.up = res.up
		st.lastScrape = now
		st.lastErr = res.errMsg
		st.scrapes++
		if !res.up {
			st.scrapeErrors++
			w.met.scrapeErrors[i].Inc()
		}
		st.seriesScraped = len(res.samples)
		up := 0.0
		if res.up {
			up = 1
		}
		w.appendSample(t.Name, "watch_up", now, up)
		// Sorted insertion order keeps first-seen series ordering (and so
		// /series output) identical run to run.
		keys := make([]string, 0, len(res.samples))
		for k := range res.samples {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			w.appendSample(t.Name, k, now, res.samples[k])
		}
	}
	w.evaluateLocked(now)
}

// appendSample appends one sample, creating the ring buffer on first use.
func (w *Watcher) appendSample(target, key string, at time.Time, v float64) {
	m := w.series[target]
	s := m[key]
	if s == nil {
		s = NewSeries(w.cfg.SeriesCap)
		m[key] = s
	}
	s.Append(at.UnixMilli(), v)
}

// scrapeTarget fetches one target's surfaces into a flat sample map. The
// /metrics scrape decides liveness; /freshness and /gates are additive
// evidence (a 404 — an older daemon — contributes nothing and is fine,
// any other failure only logs).
func (w *Watcher) scrapeTarget(ctx context.Context, t Target) (map[string]float64, error) {
	body, err := w.fetch(ctx, t.URL+"/metrics")
	if err != nil {
		return nil, err
	}
	samples := ParseProm(body)
	if t.hasFreshness() {
		if fr, err := w.fetchFreshness(ctx, t); err != nil {
			w.cfg.Logf("fleetwatch: freshness %s: %v", t.Name, err)
		} else if fr != nil {
			samples["watch_watermark_age_seconds"] = fr.WatermarkAgeSeconds
			samples["watch_freshness_behind"] = float64(fr.Behind)
		}
	}
	if t.Kind == KindRolloutd {
		if flaps, gates, err := w.fetchGateFlaps(ctx, t); err != nil {
			w.cfg.Logf("fleetwatch: gates %s: %v", t.Name, err)
		} else {
			samples["watch_gate_outcome_changes"] = float64(flaps)
			samples["watch_gate_decisions"] = float64(gates)
		}
	}
	return samples, nil
}

// fetch GETs one URL and returns the body (capped at 8 MiB).
func (w *Watcher) fetch(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("building request: %w", err)
	}
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 8<<20))
}

// watchFreshness is the slice of a /freshness payload the watcher keeps.
// Both harvestd and harvestagg render these fields at top level.
type watchFreshness struct {
	WatermarkAgeSeconds float64 `json:"watermark_age_seconds"`
	Behind              int64   `json:"behind"`
}

// fetchFreshness reads a harvest surface's watermark view; (nil, nil) on
// 404 (the daemon predates the endpoint).
func (w *Watcher) fetchFreshness(ctx context.Context, t Target) (*watchFreshness, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.URL+"/freshness", nil)
	if err != nil {
		return nil, fmt.Errorf("building request: %w", err)
	}
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/freshness: HTTP %d", resp.StatusCode)
	}
	var fr watchFreshness
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&fr); err != nil {
		return nil, fmt.Errorf("decoding /freshness: %w", err)
	}
	return &fr, nil
}

// fetchGateFlaps reads a rollout controller's decision log and counts
// outcome transitions inside the trailing FlapWindow decisions — the flap
// signal: a healthy gate holds, then promotes monotonically; a gate
// oscillating between outcomes is being whipsawed by noisy estimates.
func (w *Watcher) fetchGateFlaps(ctx context.Context, t Target) (flaps, total int, err error) {
	body, err := w.fetch(ctx, t.URL+"/gates")
	if err != nil {
		return 0, 0, err
	}
	var decisions []struct {
		Outcome string `json:"outcome"`
	}
	if err := json.Unmarshal(body, &decisions); err != nil {
		return 0, 0, fmt.Errorf("decoding /gates: %w", err)
	}
	start := 0
	if len(decisions) > w.cfg.FlapWindow {
		start = len(decisions) - w.cfg.FlapWindow
	}
	for i := start + 1; i < len(decisions); i++ {
		if decisions[i].Outcome != decisions[i-1].Outcome {
			flaps++
		}
	}
	return flaps, len(decisions), nil
}
