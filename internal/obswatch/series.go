package obswatch

// Sample is one scraped observation.
type Sample struct {
	// T is the sample time in unix milliseconds (from the injected clock).
	T int64 `json:"t"`
	// V is the scraped value.
	V float64 `json:"v"`
}

// Series is a fixed-capacity ring buffer of samples: appends are O(1) and
// memory per series is bounded no matter how long the watcher runs. The
// zero value is unusable; use NewSeries.
type Series struct {
	buf  []Sample
	head int // index of the oldest sample
	n    int
}

// NewSeries builds an empty series holding at most cap samples.
func NewSeries(capacity int) *Series {
	if capacity <= 0 {
		capacity = 1
	}
	return &Series{buf: make([]Sample, capacity)}
}

// Append pushes one sample, evicting the oldest when full.
func (s *Series) Append(t int64, v float64) {
	if s.n < len(s.buf) {
		s.buf[(s.head+s.n)%len(s.buf)] = Sample{T: t, V: v}
		s.n++
		return
	}
	s.buf[s.head] = Sample{T: t, V: v}
	s.head = (s.head + 1) % len(s.buf)
}

// Len returns the number of retained samples.
func (s *Series) Len() int { return s.n }

// Last returns the most recent sample; ok is false when empty.
func (s *Series) Last() (Sample, bool) {
	if s.n == 0 {
		return Sample{}, false
	}
	return s.buf[(s.head+s.n-1)%len(s.buf)], true
}

// Samples returns the retained samples, oldest first.
func (s *Series) Samples() []Sample {
	out := make([]Sample, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.buf[(s.head+i)%len(s.buf)]
	}
	return out
}
