package obswatch

import (
	"math"
	"strconv"
	"strings"
)

// ParseProm parses Prometheus text exposition into series key → value.
// Keys keep their label sets verbatim (`name{label="v"}`); comment and
// blank lines are skipped, as are unparsable values (+Inf/NaN never make
// useful alert inputs and would poison JSON output downstream).
func ParseProm(body []byte) map[string]float64 {
	out := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is everything after the last space; label values may
		// contain spaces, so splitting from the front is wrong.
		idx := strings.LastIndexByte(line, ' ')
		if idx <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		key := strings.TrimSpace(line[:idx])
		if key == "" {
			continue
		}
		out[key] = v
	}
	return out
}

// seriesBase returns the metric name of a series key, stripping any label
// set: `name{a="b"}` → `name`.
func seriesBase(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}
