package obswatch

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// RuleKind selects a rule's condition primitive.
type RuleKind string

// Rule kinds. Metric rules compare the latest sample of every matching
// series against the threshold; target_down watches scrape liveness
// itself. Richer signals (freshness lag, gate flapping) are metric rules
// over the watcher's own watch_* synthetic series.
const (
	RuleMetricAbove RuleKind = "metric_above"
	RuleMetricBelow RuleKind = "metric_below"
	RuleTargetDown  RuleKind = "target_down"
)

// Rule is one row of the declarative alert table. A rule fans out into
// one alert instance per (target, matching series) pair, each with its
// own hysteresis timer.
type Rule struct {
	// Name identifies the rule in alerts and incident records.
	Name string   `json:"name"`
	Kind RuleKind `json:"kind"`
	// TargetKind restricts the rule to targets of one kind ("" = all).
	TargetKind string `json:"target_kind,omitempty"`
	// Metric is the base series name metric rules watch (label sets fan
	// out into separate alert instances).
	Metric string `json:"metric,omitempty"`
	// Threshold is the comparison bound for metric rules.
	Threshold float64 `json:"threshold,omitempty"`
	// GuardMetric, when set, gates each series on a sibling series (same
	// label set) being > 0 — e.g. an ESS-fraction rule guarded on the
	// policy's sample count, so empty estimators don't page.
	GuardMetric string `json:"guard_metric,omitempty"`
	// For is the hysteresis window: the condition must hold continuously
	// this long before the alert opens (0 opens immediately).
	For time.Duration `json:"for,omitempty"`
}

func (r Rule) validate() error {
	if r.Name == "" {
		return fmt.Errorf("rule name required")
	}
	switch r.Kind {
	case RuleMetricAbove, RuleMetricBelow:
		if r.Metric == "" {
			return fmt.Errorf("metric rule needs a metric name")
		}
	case RuleTargetDown:
	default:
		return fmt.Errorf("unknown rule kind %q", r.Kind)
	}
	if r.For < 0 {
		return fmt.Errorf("negative for-duration")
	}
	return nil
}

// RuleDefaults parameterizes DefaultRules; zero values pick the defaults
// noted per field.
type RuleDefaults struct {
	// ESSFloor pages when a tracked policy's ESS fraction drops below it
	// (default 0.1).
	ESSFloor float64
	// ClipCeiling pages when a policy's clip fraction exceeds it
	// (default 0.4).
	ClipCeiling float64
	// LagSLO pages when a harvest surface's watermark age exceeds it, in
	// seconds (default 30).
	LagSLO float64
	// StaleSLO pages when a fleet shard's last successful pull is older
	// than it, in seconds (default 15).
	StaleSLO float64
	// FlapThreshold pages when a rollout controller's trailing decisions
	// change outcome at least this many times (default 3).
	FlapThreshold int
	// For is the shared hysteresis window (default 0: open immediately).
	For time.Duration
}

// DefaultRules builds the standard fleet alert table: scrape liveness for
// every target, estimator-health collapse on both harvest tiers, shard
// staleness/downness as seen by the aggregator, pipeline freshness SLOs,
// and rollout gate flapping.
func DefaultRules(d RuleDefaults) []Rule {
	if d.ESSFloor == 0 {
		d.ESSFloor = 0.1
	}
	if d.ClipCeiling == 0 {
		d.ClipCeiling = 0.4
	}
	if d.LagSLO == 0 {
		d.LagSLO = 30
	}
	if d.StaleSLO == 0 {
		d.StaleSLO = 15
	}
	if d.FlapThreshold == 0 {
		d.FlapThreshold = 3
	}
	// Metric rules compare strictly; an integer flap count fires at >=
	// FlapThreshold via a half-step-down threshold.
	flapThr := float64(d.FlapThreshold) - 0.5
	return []Rule{
		{Name: "target_down", Kind: RuleTargetDown, For: d.For},
		{Name: "ess_collapse", Kind: RuleMetricBelow, TargetKind: KindHarvestd,
			Metric: "harvestd_policy_ess_fraction", GuardMetric: "harvestd_policy_n",
			Threshold: d.ESSFloor, For: d.For},
		{Name: "fleet_ess_collapse", Kind: RuleMetricBelow, TargetKind: KindHarvestagg,
			Metric: "harvestagg_policy_ess_fraction", GuardMetric: "harvestagg_policy_n",
			Threshold: d.ESSFloor, For: d.For},
		{Name: "clip_ceiling", Kind: RuleMetricAbove, TargetKind: KindHarvestd,
			Metric: "harvestd_policy_clip_fraction", Threshold: d.ClipCeiling, For: d.For},
		{Name: "fleet_clip_ceiling", Kind: RuleMetricAbove, TargetKind: KindHarvestagg,
			Metric: "harvestagg_policy_clip_fraction", Threshold: d.ClipCeiling, For: d.For},
		{Name: "shard_stale", Kind: RuleMetricAbove, TargetKind: KindHarvestagg,
			Metric: "harvestagg_shard_staleness_seconds", Threshold: d.StaleSLO, For: d.For},
		{Name: "shard_down", Kind: RuleMetricBelow, TargetKind: KindHarvestagg,
			Metric: "harvestagg_shard_up", Threshold: 1, For: d.For},
		{Name: "freshness_lag", Kind: RuleMetricAbove,
			Metric: "watch_watermark_age_seconds", Threshold: d.LagSLO, For: d.For},
		{Name: "gate_flap", Kind: RuleMetricAbove, TargetKind: KindRolloutd,
			Metric: "watch_gate_outcome_changes", Threshold: flapThr, For: d.For},
	}
}

// alertState is one live alert instance's lifecycle state.
type alertState struct {
	rule   Rule
	target string
	series string
	// since is when the condition first became (continuously) true.
	since time.Time
	// firing flips once the condition has held for the rule's For window;
	// openedAt stamps that transition.
	firing   bool
	openedAt time.Time
	value    float64
	detail   string
}

// Alert is one row of the /alerts payload.
type Alert struct {
	Rule   string `json:"rule"`
	Target string `json:"target"`
	Series string `json:"series"`
	// State is "pending" (condition true, hysteresis running) or "firing".
	State           string  `json:"state"`
	SinceUnixMilli  int64   `json:"since_unix_milli"`
	OpenedUnixMilli int64   `json:"opened_unix_milli,omitempty"`
	Value           float64 `json:"value"`
	Detail          string  `json:"detail"`
}

// condEval is one evaluated condition instance.
type condEval struct {
	rule   Rule
	target string
	series string
	cond   bool
	value  float64
	detail string
}

func alertKey(rule, target, series string) string {
	return rule + "|" + target + "|" + series
}

// evaluateLocked runs the rule table against the latest samples and
// advances every alert's state machine, appending an incident record per
// open/resolve transition. Called with w.mu held, immediately after a
// scrape round stamped `now` — a series' condition is only evaluated when
// it was scraped this round (last sample time == now), and metric alerts
// on an unreachable target are frozen rather than resolved (no evidence
// either way; target_down covers the outage itself).
func (w *Watcher) evaluateLocked(now time.Time) {
	nowMilli := now.UnixMilli()
	var evals []condEval
	frozen := map[string]bool{}
	for _, rule := range w.cfg.Rules {
		for ti, t := range w.cfg.Targets {
			if rule.TargetKind != "" && rule.TargetKind != t.Kind {
				continue
			}
			if rule.Kind == RuleTargetDown {
				up := w.tstat[ti].up
				upVal := 0.0
				detail := fmt.Sprintf("scrape failed: %s", w.tstat[ti].lastErr)
				if up {
					upVal, detail = 1, "scrape ok"
				}
				evals = append(evals, condEval{rule: rule, target: t.Name,
					series: "watch_up", cond: !up, value: upVal, detail: detail})
				continue
			}
			if !w.tstat[ti].up {
				prefix := alertKey(rule.Name, t.Name, "")
				for k := range w.alerts {
					if strings.HasPrefix(k, prefix) {
						frozen[k] = true
					}
				}
				continue
			}
			series := w.series[t.Name]
			keys := make([]string, 0, 4)
			for k := range series {
				if seriesBase(k) == rule.Metric {
					keys = append(keys, k)
				}
			}
			sort.Strings(keys)
			for _, k := range keys {
				last, ok := series[k].Last()
				if !ok || last.T != nowMilli {
					continue
				}
				if rule.GuardMetric != "" && !w.guardPasses(series, rule, k, nowMilli) {
					continue
				}
				cond := last.V > rule.Threshold
				cmp := ">"
				if rule.Kind == RuleMetricBelow {
					cond = last.V < rule.Threshold
					cmp = "<"
				}
				evals = append(evals, condEval{rule: rule, target: t.Name, series: k,
					cond: cond, value: last.V,
					detail: fmt.Sprintf("%s = %g (alert when %s %g)", k, last.V, cmp, rule.Threshold)})
			}
		}
	}

	evaluated := map[string]bool{}
	for _, e := range evals {
		key := alertKey(e.rule.Name, e.target, e.series)
		evaluated[key] = true
		st := w.alerts[key]
		switch {
		case e.cond && st == nil:
			st = &alertState{rule: e.rule, target: e.target, series: e.series,
				since: now, value: e.value, detail: e.detail}
			w.alerts[key] = st
			if e.rule.For == 0 {
				w.openLocked(st, now)
			}
		case e.cond:
			st.value, st.detail = e.value, e.detail
			if !st.firing && now.Sub(st.since) >= e.rule.For {
				w.openLocked(st, now)
			}
		case st != nil:
			if st.firing {
				w.resolveLocked(st, now, e.value, e.detail)
			}
			delete(w.alerts, key)
		}
	}

	// Conditions that vanished (a series or its guard disappeared) read as
	// false — unless frozen above. Sorted for a deterministic incident
	// order.
	var gone []string
	for key := range w.alerts {
		if !evaluated[key] && !frozen[key] {
			gone = append(gone, key)
		}
	}
	sort.Strings(gone)
	for _, key := range gone {
		st := w.alerts[key]
		if st.firing {
			w.resolveLocked(st, now, st.value, st.detail+" (series gone)")
		}
		delete(w.alerts, key)
	}
}

// guardPasses checks a metric rule's guard: the sibling series with the
// guard metric's name and the watched series' label set must have been
// scraped this round with a positive value.
func (w *Watcher) guardPasses(series map[string]*Series, rule Rule, key string, nowMilli int64) bool {
	labels := ""
	if i := strings.IndexByte(key, '{'); i >= 0 {
		labels = key[i:]
	}
	g, ok := series[rule.GuardMetric+labels]
	if !ok {
		return false
	}
	last, ok := g.Last()
	return ok && last.T == nowMilli && last.V > 0
}

// Alerts returns the live alert instances, sorted by (rule, target,
// series) key.
func (w *Watcher) Alerts() []Alert {
	w.mu.Lock()
	defer w.mu.Unlock()
	keys := make([]string, 0, len(w.alerts))
	for k := range w.alerts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Alert, 0, len(keys))
	for _, k := range keys {
		st := w.alerts[k]
		a := Alert{
			Rule: st.rule.Name, Target: st.target, Series: st.series,
			State:          "pending",
			SinceUnixMilli: st.since.UnixMilli(),
			Value:          st.value, Detail: st.detail,
		}
		if st.firing {
			a.State = "firing"
			a.OpenedUnixMilli = st.openedAt.UnixMilli()
		}
		out = append(out, a)
	}
	return out
}
