package obswatch

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// handler builds the watcher's stdlib-only HTTP API:
//
//	GET /healthz  liveness + uptime + targets-up count
//	GET /status   scrape health per target, rule table, alert/incident tallies
//	GET /alerts   live alert instances (pending and firing), sorted
//	GET /series   retained time series (?target=NAME and ?prefix=P filter)
//	GET /metrics  the watcher's own Prometheus text
func (w *Watcher) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", w.handleHealthz)
	mux.HandleFunc("/status", w.handleStatus)
	mux.HandleFunc("/alerts", w.handleAlerts)
	mux.HandleFunc("/series", w.handleSeries)
	mux.HandleFunc("/metrics", func(rw http.ResponseWriter, r *http.Request) {
		w.reg.Handler().ServeHTTP(rw, r)
	})
	return mux
}

func (w *Watcher) handleHealthz(rw http.ResponseWriter, r *http.Request) {
	w.mu.Lock()
	up := 0
	for i := range w.tstat {
		if w.tstat[i].up {
			up++
		}
	}
	firing := 0
	for _, st := range w.alerts {
		if st.firing {
			firing++
		}
	}
	w.mu.Unlock()
	rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
	uptime := w.cfg.Clock.Now().Sub(w.start)
	fmt.Fprintf(rw, "ok uptime=%s targets=%d/%d firing=%d\n",
		uptime.Round(time.Millisecond), up, len(w.cfg.Targets), firing)
}

// TargetStatus is one target's row in the /status payload.
type TargetStatus struct {
	Name                string `json:"name"`
	Kind                string `json:"kind"`
	URL                 string `json:"url"`
	Up                  bool   `json:"up"`
	LastScrapeUnixMilli int64  `json:"last_scrape_unix_milli"`
	LastError           string `json:"last_error,omitempty"`
	Scrapes             int64  `json:"scrapes"`
	ScrapeErrors        int64  `json:"scrape_errors"`
	Series              int    `json:"series"`
}

// Status is the /status payload.
type Status struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	Ticks         int64          `json:"ticks"`
	Targets       []TargetStatus `json:"targets"`
	Rules         []Rule         `json:"rules"`
	AlertsPending int            `json:"alerts_pending"`
	AlertsFiring  int            `json:"alerts_firing"`
	Incidents     int64          `json:"incidents"`
}

// StatusNow assembles the current /status payload.
func (w *Watcher) StatusNow() Status {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := Status{
		UptimeSeconds: w.cfg.Clock.Now().Sub(w.start).Seconds(),
		Ticks:         w.ticks,
		Rules:         w.cfg.Rules,
		Incidents:     w.incidentSeq,
		Targets:       make([]TargetStatus, len(w.cfg.Targets)),
	}
	for i, t := range w.cfg.Targets {
		ts := &w.tstat[i]
		row := TargetStatus{
			Name: t.Name, Kind: t.Kind, URL: t.URL,
			Up:        ts.up,
			LastError: ts.lastErr,
			Scrapes:   ts.scrapes, ScrapeErrors: ts.scrapeErrors,
			Series: len(w.series[t.Name]),
		}
		if !ts.lastScrape.IsZero() {
			row.LastScrapeUnixMilli = ts.lastScrape.UnixMilli()
		}
		st.Targets[i] = row
	}
	for _, a := range w.alerts {
		if a.firing {
			st.AlertsFiring++
		} else {
			st.AlertsPending++
		}
	}
	return st
}

func (w *Watcher) handleStatus(rw http.ResponseWriter, r *http.Request) {
	writeJSON(rw, w.StatusNow())
}

func (w *Watcher) handleAlerts(rw http.ResponseWriter, r *http.Request) {
	writeJSON(rw, w.Alerts())
}

// handleSeries dumps the retained ring buffers as target → series →
// samples. Go's JSON encoder sorts map keys, so the payload is a pure
// function of the retained samples.
func (w *Watcher) handleSeries(rw http.ResponseWriter, r *http.Request) {
	targetFilter := r.URL.Query().Get("target")
	prefix := r.URL.Query().Get("prefix")
	w.mu.Lock()
	out := make(map[string]map[string][]Sample, len(w.series))
	for target, m := range w.series {
		if targetFilter != "" && target != targetFilter {
			continue
		}
		rows := make(map[string][]Sample)
		for key, s := range m {
			if prefix != "" && !strings.HasPrefix(key, prefix) {
				continue
			}
			rows[key] = s.Samples()
		}
		if len(rows) > 0 {
			out[target] = rows
		}
	}
	w.mu.Unlock()
	writeJSON(rw, out)
}

// writeJSON matches the other daemons' encoder settings (one-space
// indent), keeping fleet payloads visually uniform.
func writeJSON(rw http.ResponseWriter, v any) {
	rw.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(rw)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}
