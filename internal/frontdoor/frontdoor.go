// Package frontdoor models the hierarchical load-balancing architecture of
// Fig. 6 in "Harvesting Randomness to Optimize Distributed Systems"
// (HotNets 2017): an edge proxy (Azure Front Door) balances requests over a
// handful of service endpoints, and a standard load balancer inside each
// endpoint's cluster distributes them over local servers.
//
// The point of the figure is statistical, not architectural: a flat design
// choosing directly among E·S servers explores each action with probability
// 1/(E·S), while the hierarchy explores with probability 1/E at the edge
// and 1/S inside a cluster. Since the paper's Eq. 1 error scales as
// √(1/(εN)), the hierarchy needs dramatically less data per level — this
// package simulates both designs and measures exactly that.
package frontdoor

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/lbsim"
	"repro/internal/ope"
	"repro/internal/stats"
)

// Config describes a two-level deployment: Clusters[e][s] is server s of
// endpoint e.
type Config struct {
	Clusters [][]lbsim.ServerParams
	// ArrivalRate is the Poisson request rate into the edge.
	ArrivalRate float64
	// NumRequests / Warmup as in lbsim.
	NumRequests, Warmup int
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if len(c.Clusters) < 2 {
		return fmt.Errorf("frontdoor: need ≥2 endpoints, got %d", len(c.Clusters))
	}
	width := len(c.Clusters[0])
	for e, cl := range c.Clusters {
		if len(cl) < 2 {
			return fmt.Errorf("frontdoor: endpoint %d has %d servers, need ≥2", e, len(cl))
		}
		if len(cl) != width {
			return fmt.Errorf("frontdoor: ragged clusters (%d vs %d servers)", len(cl), width)
		}
		for s, sp := range cl {
			if sp.Base <= 0 || sp.Slope < 0 {
				return fmt.Errorf("frontdoor: server [%d][%d] params %+v", e, s, sp)
			}
		}
	}
	if c.ArrivalRate <= 0 || c.NumRequests <= 0 || c.Warmup < 0 || c.Warmup >= c.NumRequests {
		return fmt.Errorf("frontdoor: rate=%v n=%d warmup=%d", c.ArrivalRate, c.NumRequests, c.Warmup)
	}
	return nil
}

// DefaultConfig returns a 4-endpoint × 5-server deployment with mildly
// heterogeneous servers.
func DefaultConfig() Config {
	clusters := make([][]lbsim.ServerParams, 4)
	for e := range clusters {
		cl := make([]lbsim.ServerParams, 5)
		for s := range cl {
			cl[s] = lbsim.ServerParams{
				Base:  0.10 + 0.02*float64(e) + 0.01*float64(s),
				Slope: 0.004,
			}
		}
		clusters[e] = cl
	}
	return Config{
		Clusters:    clusters,
		ArrivalRate: 100,
		NumRequests: 30000,
		Warmup:      2000,
	}
}

// Result carries the harvested datasets and measured latency.
type Result struct {
	MeanLatency float64
	// EdgeData has one datapoint per request with the endpoint choice
	// (action space E); ClusterData has the within-cluster server choice
	// (action space S). FlatData has the combined choice (action space
	// E·S) from the same run, for the flat-design comparison.
	EdgeData, ClusterData, FlatData core.Dataset
}

// Run simulates uniform-random routing at both levels and harvests
// per-level and flat exploration logs from the same decisions.
func Run(cfg Config, seed int64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := len(cfg.Clusters)
	s := len(cfg.Clusters[0])
	var sim des.Simulator
	r := stats.NewRand(seed)
	conns := make([][]int, e)
	for i := range conns {
		conns[i] = make([]int, s)
	}
	var (
		res      Result
		latAccum stats.Welford
	)
	handle := func(i int) {
		// Edge decision: uniform over endpoints.
		endpoint := r.Intn(e)
		// Cluster decision: uniform over the endpoint's servers.
		server := r.Intn(s)
		sp := cfg.Clusters[endpoint][server]
		lat := sp.Base + sp.Slope*float64(conns[endpoint][server])
		conns[endpoint][server]++
		ep, sv := endpoint, server
		if _, err := sim.After(lat, func() { conns[ep][sv]-- }); err != nil {
			panic(err) // unreachable: lat > 0
		}
		if i < cfg.Warmup {
			return
		}
		latAccum.Add(lat)
		// Edge-level context: aggregate load per endpoint.
		edgeLoads := make([]int, e)
		for ei := range conns {
			total := 0
			for _, c := range conns[ei] {
				total += c
			}
			edgeLoads[ei] = total
		}
		edgeCtx := lbsim.BuildContext(edgeLoads, 0, 1)
		res.EdgeData = append(res.EdgeData, core.Datapoint{
			Context:    edgeCtx,
			Action:     core.Action(endpoint),
			Reward:     lat,
			Propensity: 1 / float64(e),
			Seq:        int64(i),
		})
		// Cluster-level context: the chosen endpoint's server loads.
		clusterCtx := lbsim.BuildContext(conns[endpoint], 0, 1)
		res.ClusterData = append(res.ClusterData, core.Datapoint{
			Context:    clusterCtx,
			Action:     core.Action(server),
			Reward:     lat,
			Propensity: 1 / float64(s),
			Seq:        int64(i),
			Tag:        fmt.Sprintf("ep%d", endpoint),
		})
		// Flat-design view: one decision over E·S actions.
		flat := make([]int, 0, e*s)
		for ei := range conns {
			flat = append(flat, conns[ei]...)
		}
		res.FlatData = append(res.FlatData, core.Datapoint{
			Context:    lbsim.BuildContext(flat, 0, 1),
			Action:     core.Action(endpoint*s + server),
			Reward:     lat,
			Propensity: 1 / float64(e*s),
			Seq:        int64(i),
		})
	}
	if _, err := des.NewPoissonArrivals(&sim, stats.Split(r), cfg.ArrivalRate, cfg.NumRequests, handle); err != nil {
		return nil, err
	}
	if err := sim.RunAll(cfg.NumRequests*4 + 16); err != nil {
		return nil, fmt.Errorf("frontdoor: %w", err)
	}
	res.MeanLatency = latAccum.Mean()
	return &res, nil
}

// LevelErrors compares the Eq. 1 evaluation error of the hierarchical and
// flat designs for a policy class of size K at confidence 1-delta, using
// the min propensities actually observed in the harvested data.
type LevelErrors struct {
	EdgeEps, ClusterEps, FlatEps       float64
	EdgeError, ClusterError, FlatError float64
	HierarchicalError                  float64
	N                                  int
}

// Errors computes LevelErrors for the run. C is Eq. 1's constant.
func (r *Result) Errors(c, k, delta float64) LevelErrors {
	n := float64(len(r.EdgeData))
	le := LevelErrors{
		EdgeEps:    r.EdgeData.MinPropensity(),
		ClusterEps: r.ClusterData.MinPropensity(),
		FlatEps:    r.FlatData.MinPropensity(),
		N:          len(r.EdgeData),
	}
	le.EdgeError = ope.Eq1Error(c, le.EdgeEps, n, k, delta)
	le.ClusterError = ope.Eq1Error(c, le.ClusterEps, n, k, delta)
	le.FlatError = ope.Eq1Error(c, le.FlatEps, n, k, delta)
	// A hierarchical policy's value decomposes into the two levels; the
	// combined uncertainty is conservatively the sum of the level errors.
	le.HierarchicalError = le.EdgeError + le.ClusterError
	return le
}
