package frontdoor

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/lbsim"
	"repro/internal/learn"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// PolicyResult measures a deployed hierarchical policy pair online.
type PolicyResult struct {
	MeanLatency float64
	// PerEndpoint counts post-warmup requests per endpoint.
	PerEndpoint []int
}

// RunWithPolicies deploys an edge policy (choosing an endpoint from the
// per-endpoint aggregate loads) and one per-cluster policy (choosing a
// server from the cluster's loads) and measures mean latency — applying
// the methodology "to both levels if desired" (Fig. 6). Stochastic
// policies are sampled with exact propensities; deterministic ones run
// as-is.
func RunWithPolicies(cfg Config, edge core.Policy, clusters []core.Policy, seed int64) (*PolicyResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if edge == nil {
		return nil, fmt.Errorf("frontdoor: nil edge policy")
	}
	e := len(cfg.Clusters)
	s := len(cfg.Clusters[0])
	if len(clusters) != e {
		return nil, fmt.Errorf("frontdoor: %d cluster policies for %d endpoints", len(clusters), e)
	}
	for i, cp := range clusters {
		if cp == nil {
			return nil, fmt.Errorf("frontdoor: nil cluster policy %d", i)
		}
	}
	var sim des.Simulator
	r := stats.NewRand(seed)
	conns := make([][]int, e)
	for i := range conns {
		conns[i] = make([]int, s)
	}
	perEndpoint := make([]int, e)
	var lat stats.Welford

	choose := func(pol core.Policy, ctx *core.Context) core.Action {
		if sp, ok := pol.(core.StochasticPolicy); ok {
			dist := sp.Distribution(ctx)
			if i := stats.Categorical(r, dist); i >= 0 {
				return core.Action(i)
			}
			return 0
		}
		a := pol.Act(ctx)
		if int(a) >= ctx.NumActions {
			a = core.Action(ctx.NumActions - 1)
		}
		return a
	}
	handle := func(i int) {
		edgeLoads := make([]int, e)
		for ei := range conns {
			total := 0
			for _, c := range conns[ei] {
				total += c
			}
			edgeLoads[ei] = total
		}
		edgeCtx := lbsim.BuildContext(edgeLoads, 0, 1)
		endpoint := int(choose(edge, &edgeCtx))
		clusterCtx := lbsim.BuildContext(conns[endpoint], 0, 1)
		server := int(choose(clusters[endpoint], &clusterCtx))
		sp := cfg.Clusters[endpoint][server]
		l := sp.Base + sp.Slope*float64(conns[endpoint][server])
		conns[endpoint][server]++
		ep, sv := endpoint, server
		if _, err := sim.After(l, func() { conns[ep][sv]-- }); err != nil {
			panic(err) // unreachable: l > 0
		}
		if i >= cfg.Warmup {
			lat.Add(l)
			perEndpoint[endpoint]++
		}
	}
	if _, err := des.NewPoissonArrivals(&sim, stats.Split(r), cfg.ArrivalRate, cfg.NumRequests, handle); err != nil {
		return nil, err
	}
	if err := sim.RunAll(cfg.NumRequests*4 + 16); err != nil {
		return nil, fmt.Errorf("frontdoor: %w", err)
	}
	return &PolicyResult{MeanLatency: lat.Mean(), PerEndpoint: perEndpoint}, nil
}

// TrainHierarchical fits CB policies at both levels from a harvested run:
// a shared linear latency model per level, played greedily (argmin). This
// is the optimization step of the methodology applied hierarchically.
func TrainHierarchical(res *Result, numEndpoints int) (edge core.Policy, clusters []core.Policy, err error) {
	return TrainHierarchicalParallel(res, numEndpoints, 1)
}

// TrainHierarchicalParallel is TrainHierarchical with the per-endpoint
// cluster-model fits running on the deterministic scheduler: each fit is a
// pure function of its endpoint's data, so the trained policies are
// identical for every worker count (1 = serial, <1 = runtime.NumCPU()).
func TrainHierarchicalParallel(res *Result, numEndpoints, workers int) (edge core.Policy, clusters []core.Policy, err error) {
	if res == nil || len(res.EdgeData) == 0 {
		return nil, nil, core.ErrNoData
	}
	edgeModel, err := learn.FitRewardModel(res.EdgeData, learn.FitOptions{Lambda: 1e-4})
	if err != nil {
		return nil, nil, fmt.Errorf("frontdoor: edge model: %w", err)
	}
	edge = edgeModel.GreedyPolicy(true) // latency is a cost

	clusters = make([]core.Policy, numEndpoints)
	byEndpoint := make(map[string]core.Dataset)
	for i := range res.ClusterData {
		d := res.ClusterData[i]
		byEndpoint[d.Tag] = append(byEndpoint[d.Tag], d)
	}
	err = parallel.For(workers, numEndpoints, func(ei int) error {
		tag := fmt.Sprintf("ep%d", ei)
		ds := byEndpoint[tag]
		if len(ds) == 0 {
			return fmt.Errorf("frontdoor: no cluster data for endpoint %d", ei)
		}
		m, err := learn.FitRewardModel(ds, learn.FitOptions{Lambda: 1e-4})
		if err != nil {
			return fmt.Errorf("frontdoor: cluster %d model: %w", ei, err)
		}
		clusters[ei] = m.GreedyPolicy(true)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return edge, clusters, nil
}
