package frontdoor

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/lbsim"
	"repro/internal/policy"
	"repro/internal/stats"
)

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.Clusters = bad.Clusters[:1]
	if err := bad.Validate(); err == nil {
		t.Error("single endpoint should fail")
	}
	bad = DefaultConfig()
	bad.Clusters[1] = bad.Clusters[1][:1]
	if err := bad.Validate(); err == nil {
		t.Error("single-server cluster should fail")
	}
	bad = DefaultConfig()
	bad.Clusters[1] = append(bad.Clusters[1], lbsim.ServerParams{Base: 0.1, Slope: 0.01})
	if err := bad.Validate(); err == nil {
		t.Error("ragged clusters should fail")
	}
	bad = DefaultConfig()
	bad.Clusters[0][0].Base = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero base should fail")
	}
	bad = DefaultConfig()
	bad.ArrivalRate = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero rate should fail")
	}
}

func TestRunHarvestsAllLevels(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumRequests = 6000
	cfg.Warmup = 1000
	res, err := Run(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantN := cfg.NumRequests - cfg.Warmup
	if len(res.EdgeData) != wantN || len(res.ClusterData) != wantN || len(res.FlatData) != wantN {
		t.Fatalf("dataset sizes %d/%d/%d, want %d",
			len(res.EdgeData), len(res.ClusterData), len(res.FlatData), wantN)
	}
	if err := res.EdgeData.Validate(); err != nil {
		t.Errorf("edge data: %v", err)
	}
	if err := res.ClusterData.Validate(); err != nil {
		t.Errorf("cluster data: %v", err)
	}
	if err := res.FlatData.Validate(); err != nil {
		t.Errorf("flat data: %v", err)
	}
	if p := res.EdgeData.MinPropensity(); p != 0.25 {
		t.Errorf("edge eps = %v, want 0.25", p)
	}
	if p := res.ClusterData.MinPropensity(); p != 0.2 {
		t.Errorf("cluster eps = %v, want 0.2", p)
	}
	if p := res.FlatData.MinPropensity(); p != 0.05 {
		t.Errorf("flat eps = %v, want 0.05", p)
	}
	if res.MeanLatency <= 0 {
		t.Errorf("mean latency = %v", res.MeanLatency)
	}
}

func TestFlatAndHierarchicalActionsAgree(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumRequests = 3000
	cfg.Warmup = 500
	res, err := Run(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := len(cfg.Clusters[0])
	for i := range res.FlatData {
		flat := int(res.FlatData[i].Action)
		edge := int(res.EdgeData[i].Action)
		cluster := int(res.ClusterData[i].Action)
		if flat != edge*s+cluster {
			t.Fatalf("datapoint %d: flat %d != %d*%d+%d", i, flat, edge, s, cluster)
		}
		if res.FlatData[i].Reward != res.EdgeData[i].Reward {
			t.Fatalf("rewards disagree at %d", i)
		}
	}
}

func TestHierarchyBeatsFlatOnEq1Error(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumRequests = 6000
	cfg.Warmup = 1000
	res, err := Run(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	le := res.Errors(2, 1e6, 0.05)
	if le.FlatError <= le.EdgeError || le.FlatError <= le.ClusterError {
		t.Errorf("flat error %v should exceed per-level errors %v/%v",
			le.FlatError, le.EdgeError, le.ClusterError)
	}
	if le.HierarchicalError >= le.FlatError {
		t.Errorf("hierarchical total %v should beat flat %v", le.HierarchicalError, le.FlatError)
	}
	// ε ratio: flat explores each of 20 actions at 1/20; edge at 1/4.
	// Error ratio should be √(ε_edge/ε_flat) = √5 per level.
	wantRatio := math.Sqrt(5)
	if got := le.FlatError / le.EdgeError; math.Abs(got-wantRatio) > 0.01 {
		t.Errorf("flat/edge error ratio = %v, want √5 ≈ %v", got, wantRatio)
	}
}

func TestClusterTrajectoriesTagged(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumRequests = 2000
	cfg.Warmup = 100
	res, err := Run(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	tags := map[string]bool{}
	for i := range res.ClusterData {
		tags[res.ClusterData[i].Tag] = true
	}
	if len(tags) != len(cfg.Clusters) {
		t.Errorf("saw %d endpoint tags, want %d", len(tags), len(cfg.Clusters))
	}
}

func TestRunWithPoliciesValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumRequests = 1000
	cfg.Warmup = 100
	uniform := func(seed int64) core.Policy {
		return policy.UniformRandom{R: stats.NewRand(seed)}
	}
	clusters := make([]core.Policy, len(cfg.Clusters))
	for i := range clusters {
		clusters[i] = uniform(int64(i))
	}
	if _, err := RunWithPolicies(cfg, nil, clusters, 1); err == nil {
		t.Error("nil edge policy should fail")
	}
	if _, err := RunWithPolicies(cfg, uniform(9), clusters[:1], 1); err == nil {
		t.Error("cluster policy count mismatch should fail")
	}
	clusters[2] = nil
	if _, err := RunWithPolicies(cfg, uniform(9), clusters, 1); err == nil {
		t.Error("nil cluster policy should fail")
	}
	bad := cfg
	bad.ArrivalRate = 0
	clusters[2] = uniform(2)
	if _, err := RunWithPolicies(bad, uniform(9), clusters, 1); err == nil {
		t.Error("bad config should fail")
	}
}

func TestHierarchicalCBBeatsRandomOnline(t *testing.T) {
	// Harvest under random routing, train CB at both levels, deploy, and
	// compare against all-random — applying the methodology at each level
	// of the Fig. 6 hierarchy.
	cfg := DefaultConfig()
	cfg.NumRequests = 20000
	cfg.Warmup = 2000
	harvested, err := Run(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	edge, clusters, err := TrainHierarchical(harvested, len(cfg.Clusters))
	if err != nil {
		t.Fatal(err)
	}
	cb, err := RunWithPolicies(cfg, edge, clusters, 6)
	if err != nil {
		t.Fatal(err)
	}
	randomClusters := make([]core.Policy, len(cfg.Clusters))
	for i := range randomClusters {
		randomClusters[i] = policy.UniformRandom{R: stats.NewRand(int64(100 + i))}
	}
	random, err := RunWithPolicies(cfg, policy.UniformRandom{R: stats.NewRand(7)}, randomClusters, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cb.MeanLatency >= random.MeanLatency {
		t.Errorf("hierarchical CB %v should beat random %v", cb.MeanLatency, random.MeanLatency)
	}
	total := 0
	for _, n := range cb.PerEndpoint {
		total += n
	}
	if total != cfg.NumRequests-cfg.Warmup {
		t.Errorf("per-endpoint counts sum to %d, want %d", total, cfg.NumRequests-cfg.Warmup)
	}
}

func TestTrainHierarchicalValidation(t *testing.T) {
	if _, _, err := TrainHierarchical(nil, 4); err == nil {
		t.Error("nil result should fail")
	}
	if _, _, err := TrainHierarchical(&Result{}, 4); err == nil {
		t.Error("empty result should fail")
	}
}
