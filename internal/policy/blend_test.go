package policy

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

func TestNewBlendValidation(t *testing.T) {
	r := stats.NewRand(1)
	if _, err := NewBlend(nil, Constant{A: 0}, 0.5, r); err == nil {
		t.Error("nil new policy should fail")
	}
	if _, err := NewBlend(Constant{A: 0}, nil, 0.5, r); err == nil {
		t.Error("nil old policy should fail")
	}
	if _, err := NewBlend(Constant{A: 0}, Constant{A: 1}, 1.5, r); err == nil {
		t.Error("share>1 should fail")
	}
	if _, err := NewBlend(Constant{A: 0}, Constant{A: 1}, -0.1, r); err == nil {
		t.Error("share<0 should fail")
	}
	if _, err := NewBlend(Constant{A: 0}, Constant{A: 1}, 0.5, nil); err == nil {
		t.Error("nil rand should fail")
	}
}

func TestBlendActFrequencies(t *testing.T) {
	b, err := NewBlend(Constant{A: 1}, Constant{A: 0}, 0.3, stats.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := &core.Context{NumActions: 2}
	hits := 0
	n := 100000
	for i := 0; i < n; i++ {
		if b.Act(ctx) == 1 {
			hits++
		}
	}
	if frac := float64(hits) / float64(n); math.Abs(frac-0.3) > 0.01 {
		t.Errorf("new-policy share = %v, want 0.3", frac)
	}
}

func TestBlendDistributionDeterministicPair(t *testing.T) {
	b, err := NewBlend(Constant{A: 2}, Constant{A: 0}, 0.25, stats.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx := &core.Context{NumActions: 3}
	d := b.Distribution(ctx)
	if math.Abs(d[2]-0.25) > 1e-12 || math.Abs(d[0]-0.75) > 1e-12 || d[1] != 0 {
		t.Errorf("distribution = %v", d)
	}
	if b.String() != "blend-25%" {
		t.Errorf("String = %q", b.String())
	}
}

func TestBlendDistributionStochasticPair(t *testing.T) {
	r := stats.NewRand(4)
	b, err := NewBlend(UniformRandom{R: stats.Split(r)}, Constant{A: 0}, 0.5, stats.Split(r))
	if err != nil {
		t.Fatal(err)
	}
	ctx := &core.Context{NumActions: 4}
	d := b.Distribution(ctx)
	// 0.5·uniform + 0.5·pointmass(0): p0 = 0.5·0.25 + 0.5, others 0.125.
	if math.Abs(d[0]-0.625) > 1e-12 {
		t.Errorf("p0 = %v, want 0.625", d[0])
	}
	for a := 1; a < 4; a++ {
		if math.Abs(d[a]-0.125) > 1e-12 {
			t.Errorf("p%d = %v, want 0.125", a, d[a])
		}
	}
	sum := 0.0
	for _, p := range d {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("sums to %v", sum)
	}
}

func TestBlendEdgesShares(t *testing.T) {
	r := stats.NewRand(5)
	full, err := NewBlend(Constant{A: 1}, Constant{A: 0}, 1, stats.Split(r))
	if err != nil {
		t.Fatal(err)
	}
	none, err := NewBlend(Constant{A: 1}, Constant{A: 0}, 0, stats.Split(r))
	if err != nil {
		t.Fatal(err)
	}
	ctx := &core.Context{NumActions: 2}
	for i := 0; i < 50; i++ {
		if full.Act(ctx) != 1 {
			t.Fatal("share=1 should always use the new policy")
		}
		if none.Act(ctx) != 0 {
			t.Fatal("share=0 should always use the old policy")
		}
	}
}
