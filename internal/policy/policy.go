// Package policy provides the concrete policy types used across the paper's
// scenarios: constants, uniform random, linear score policies, softmax,
// ε-greedy wrappers, decision stumps, and enumerable policy classes that the
// optimizer can search (the "tunable template" of §4 — decision trees,
// linear vectors — discretized onto a grid so a class of ~10^6 candidates
// can be enumerated or sampled).
package policy

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
)

// Constant always chooses the same action (e.g. Table 2's "send to 1").
type Constant struct {
	A core.Action
}

// Act implements core.Policy.
func (c Constant) Act(ctx *core.Context) core.Action {
	if int(c.A) >= ctx.NumActions {
		return core.Action(ctx.NumActions - 1)
	}
	return c.A
}

// Distribution implements core.StochasticPolicy (a point mass).
func (c Constant) Distribution(ctx *core.Context) []float64 {
	d := make([]float64, ctx.NumActions)
	d[c.Act(ctx)] = 1
	return d
}

// ActionProb implements core.ActionProber (allocation-free point mass).
func (c Constant) ActionProb(ctx *core.Context, a core.Action) float64 {
	if c.Act(ctx) == a {
		return 1
	}
	return 0
}

// String names the policy for experiment tables.
func (c Constant) String() string { return fmt.Sprintf("always-%d", c.A) }

// UniformRandom chooses uniformly among the eligible actions — the classic
// harvestable randomized heuristic (random load balancing, random eviction).
type UniformRandom struct {
	R *rand.Rand
}

// Act implements core.Policy.
func (u UniformRandom) Act(ctx *core.Context) core.Action {
	return core.Action(u.R.Intn(ctx.NumActions))
}

// Distribution implements core.StochasticPolicy.
func (u UniformRandom) Distribution(ctx *core.Context) []float64 {
	d := make([]float64, ctx.NumActions)
	p := 1 / float64(ctx.NumActions)
	for i := range d {
		d[i] = p
	}
	return d
}

// ActionProb implements core.ActionProber.
func (u UniformRandom) ActionProb(ctx *core.Context, a core.Action) float64 {
	if int(a) < 0 || int(a) >= ctx.NumActions {
		return 0
	}
	return 1 / float64(ctx.NumActions)
}

// String names the policy.
func (u UniformRandom) String() string { return "uniform-random" }

// Linear scores each action with a linear function of its features and
// plays the argmax. With per-action features a single weight vector is
// shared; with only shared context features a separate weight vector per
// action is used (a standard one-vs-all linearization).
type Linear struct {
	// Weights holds one row per action. If it has a single row, that row
	// is applied to each action's feature vector (requires per-action
	// features).
	Weights []core.Vector
	// Minimize flips the argmax to an argmin (for latency-like scores).
	Minimize bool
}

// Act implements core.Policy.
func (l *Linear) Act(ctx *core.Context) core.Action {
	best := core.Action(0)
	bestScore := math.Inf(-1)
	if l.Minimize {
		bestScore = math.Inf(1)
	}
	for a := 0; a < ctx.NumActions; a++ {
		s := l.Score(ctx, core.Action(a))
		if l.Minimize {
			if s < bestScore {
				bestScore, best = s, core.Action(a)
			}
		} else if s > bestScore {
			bestScore, best = s, core.Action(a)
		}
	}
	return best
}

// Score returns the linear score of action a in ctx.
func (l *Linear) Score(ctx *core.Context, a core.Action) float64 {
	w := l.weightsFor(a)
	return w.Dot(ctx.FeaturesFor(a))
}

func (l *Linear) weightsFor(a core.Action) core.Vector {
	if len(l.Weights) == 1 {
		return l.Weights[0]
	}
	if int(a) < len(l.Weights) {
		return l.Weights[a]
	}
	return nil
}

// String names the policy.
func (l *Linear) String() string { return fmt.Sprintf("linear-%dx", len(l.Weights)) }

// Softmax plays actions with probability proportional to exp(score/T),
// a smooth randomized wrapper over a Linear scorer. Temperature T → 0
// recovers the argmax; large T approaches uniform.
type Softmax struct {
	Scorer      *Linear
	Temperature float64
	R           *rand.Rand
}

// Distribution implements core.StochasticPolicy.
func (s *Softmax) Distribution(ctx *core.Context) []float64 {
	t := s.Temperature
	if t <= 0 {
		t = 1
	}
	scores := make([]float64, ctx.NumActions)
	maxS := math.Inf(-1)
	for a := range scores {
		v := s.Scorer.Score(ctx, core.Action(a))
		if s.Scorer.Minimize {
			v = -v
		}
		scores[a] = v / t
		if scores[a] > maxS {
			maxS = scores[a]
		}
	}
	total := 0.0
	for a := range scores {
		scores[a] = math.Exp(scores[a] - maxS)
		total += scores[a]
	}
	for a := range scores {
		scores[a] /= total
	}
	return scores
}

// Act implements core.Policy by sampling from the softmax distribution.
func (s *Softmax) Act(ctx *core.Context) core.Action {
	dist := s.Distribution(ctx)
	u := s.R.Float64()
	cum := 0.0
	for a, p := range dist {
		cum += p
		if u < cum {
			return core.Action(a)
		}
	}
	return core.Action(ctx.NumActions - 1)
}

// String names the policy.
func (s *Softmax) String() string { return fmt.Sprintf("softmax-T%.3g", s.Temperature) }

// EpsilonGreedy follows a base policy with probability 1-ε and explores
// uniformly with probability ε. This is the standard way to keep every
// action's propensity at least ε/K so harvested data stays usable (§4: a
// higher ε reduces the data required).
type EpsilonGreedy struct {
	Base    core.Policy
	Epsilon float64
	R       *rand.Rand
}

// Act implements core.Policy.
func (e *EpsilonGreedy) Act(ctx *core.Context) core.Action {
	if e.R.Float64() < e.Epsilon {
		return core.Action(e.R.Intn(ctx.NumActions))
	}
	return e.Base.Act(ctx)
}

// Distribution implements core.StochasticPolicy.
func (e *EpsilonGreedy) Distribution(ctx *core.Context) []float64 {
	k := ctx.NumActions
	d := make([]float64, k)
	for i := range d {
		d[i] = e.Epsilon / float64(k)
	}
	d[e.Base.Act(ctx)] += 1 - e.Epsilon
	return d
}

// ActionProb implements core.ActionProber.
func (e *EpsilonGreedy) ActionProb(ctx *core.Context, a core.Action) float64 {
	if int(a) < 0 || int(a) >= ctx.NumActions {
		return 0
	}
	p := e.Epsilon / float64(ctx.NumActions)
	if e.Base.Act(ctx) == a {
		p += 1 - e.Epsilon
	}
	return p
}

// MinPropensity returns the smallest probability this policy assigns to any
// action: ε/K.
func (e *EpsilonGreedy) MinPropensity(numActions int) float64 {
	return e.Epsilon / float64(numActions)
}

// String names the policy.
func (e *EpsilonGreedy) String() string { return fmt.Sprintf("eps-greedy-%.3g", e.Epsilon) }

// Stump is a one-feature decision stump: action Below when feature Idx is
// under Cut, else Above. Stumps are the simplest "decision tree" template
// from §4 and enumerate into large policy classes.
type Stump struct {
	Idx          int
	Cut          float64
	Below, Above core.Action
}

// Act implements core.Policy.
func (s Stump) Act(ctx *core.Context) core.Action {
	v := 0.0
	if s.Idx < len(ctx.Features) {
		v = ctx.Features[s.Idx]
	}
	a := s.Above
	if v < s.Cut {
		a = s.Below
	}
	if int(a) >= ctx.NumActions {
		return core.Action(ctx.NumActions - 1)
	}
	return a
}

// String names the policy.
func (s Stump) String() string {
	return fmt.Sprintf("stump[x%d<%.3g?%d:%d]", s.Idx, s.Cut, s.Below, s.Above)
}
