package policy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/stats"
)

func ctxWithActions(k int, feats ...float64) *core.Context {
	return &core.Context{Features: feats, NumActions: k}
}

func TestConstant(t *testing.T) {
	c := Constant{A: 2}
	ctx := ctxWithActions(4)
	if c.Act(ctx) != 2 {
		t.Error("constant should return its action")
	}
	d := c.Distribution(ctx)
	if d[2] != 1 || d[0] != 0 {
		t.Errorf("distribution = %v", d)
	}
	// Out-of-range constant clamps.
	small := ctxWithActions(2)
	if c.Act(small) != 1 {
		t.Errorf("clamp failed: %d", c.Act(small))
	}
	if c.String() == "" {
		t.Error("String empty")
	}
}

func TestUniformRandom(t *testing.T) {
	u := UniformRandom{R: stats.NewRand(1)}
	ctx := ctxWithActions(5)
	counts := make([]int, 5)
	for i := 0; i < 50000; i++ {
		counts[u.Act(ctx)]++
	}
	for a, c := range counts {
		frac := float64(c) / 50000
		if math.Abs(frac-0.2) > 0.02 {
			t.Errorf("action %d frequency %v, want 0.2", a, frac)
		}
	}
	d := u.Distribution(ctx)
	for _, p := range d {
		if p != 0.2 {
			t.Errorf("distribution %v", d)
		}
	}
}

func TestLinearPerActionWeights(t *testing.T) {
	// Separate weights per action on shared features.
	l := &Linear{Weights: []core.Vector{{1, 0}, {0, 1}}}
	if got := l.Act(&core.Context{Features: core.Vector{3, 1}, NumActions: 2}); got != 0 {
		t.Errorf("Act = %d, want 0", got)
	}
	if got := l.Act(&core.Context{Features: core.Vector{1, 3}, NumActions: 2}); got != 1 {
		t.Errorf("Act = %d, want 1", got)
	}
}

func TestLinearSharedWeightsOnActionFeatures(t *testing.T) {
	l := &Linear{Weights: []core.Vector{{1}}, Minimize: true}
	ctx := &core.Context{
		ActionFeatures: []core.Vector{{5}, {2}, {9}},
		NumActions:     3,
	}
	if got := l.Act(ctx); got != 1 {
		t.Errorf("argmin = %d, want 1", got)
	}
	l.Minimize = false
	if got := l.Act(ctx); got != 2 {
		t.Errorf("argmax = %d, want 2", got)
	}
}

func TestLinearMissingWeightsScoreZero(t *testing.T) {
	l := &Linear{Weights: []core.Vector{{1}, {1}}}
	ctx := &core.Context{Features: core.Vector{-5}, NumActions: 3}
	// Action 2 has no weights → score 0 beats the others' -5.
	if got := l.Act(ctx); got != 2 {
		t.Errorf("Act = %d, want 2", got)
	}
}

func TestSoftmaxDistribution(t *testing.T) {
	s := &Softmax{
		Scorer:      &Linear{Weights: []core.Vector{{1}}},
		Temperature: 1,
		R:           stats.NewRand(2),
	}
	ctx := &core.Context{
		ActionFeatures: []core.Vector{{0}, {1}},
		NumActions:     2,
	}
	d := s.Distribution(ctx)
	if math.Abs(d[0]+d[1]-1) > 1e-12 {
		t.Errorf("distribution should sum to 1: %v", d)
	}
	want := math.Exp(1) / (1 + math.Exp(1))
	if math.Abs(d[1]-want) > 1e-9 {
		t.Errorf("p(1) = %v, want %v", d[1], want)
	}
	// Minimize flips preference.
	s.Scorer.Minimize = true
	d = s.Distribution(ctx)
	if d[0] <= d[1] {
		t.Errorf("minimize should prefer lower score: %v", d)
	}
}

func TestSoftmaxTemperatureLimits(t *testing.T) {
	scorer := &Linear{Weights: []core.Vector{{1}}}
	ctx := &core.Context{ActionFeatures: []core.Vector{{0}, {10}}, NumActions: 2}
	cold := &Softmax{Scorer: scorer, Temperature: 0.01, R: stats.NewRand(3)}
	hot := &Softmax{Scorer: scorer, Temperature: 1000, R: stats.NewRand(3)}
	if d := cold.Distribution(ctx); d[1] < 0.999 {
		t.Errorf("cold softmax should be near-deterministic: %v", d)
	}
	if d := hot.Distribution(ctx); math.Abs(d[0]-0.5) > 0.01 {
		t.Errorf("hot softmax should be near-uniform: %v", d)
	}
	// Temperature <= 0 defaults to 1 rather than dividing by zero.
	def := &Softmax{Scorer: scorer, Temperature: 0, R: stats.NewRand(3)}
	if d := def.Distribution(ctx); math.IsNaN(d[0]) {
		t.Error("T=0 should not produce NaN")
	}
}

func TestSoftmaxActSamplesDistribution(t *testing.T) {
	s := &Softmax{
		Scorer:      &Linear{Weights: []core.Vector{{1}}},
		Temperature: 1,
		R:           stats.NewRand(4),
	}
	ctx := &core.Context{ActionFeatures: []core.Vector{{0}, {1}}, NumActions: 2}
	want := s.Distribution(ctx)
	n := 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Act(ctx) == 1 {
			hits++
		}
	}
	if math.Abs(float64(hits)/float64(n)-want[1]) > 0.01 {
		t.Errorf("empirical p(1) = %v, want %v", float64(hits)/float64(n), want[1])
	}
}

func TestEpsilonGreedy(t *testing.T) {
	e := &EpsilonGreedy{Base: Constant{A: 0}, Epsilon: 0.2, R: stats.NewRand(5)}
	ctx := ctxWithActions(4)
	d := e.Distribution(ctx)
	if math.Abs(d[0]-(0.8+0.05)) > 1e-12 {
		t.Errorf("p(base) = %v, want 0.85", d[0])
	}
	for a := 1; a < 4; a++ {
		if math.Abs(d[a]-0.05) > 1e-12 {
			t.Errorf("p(%d) = %v, want 0.05", a, d[a])
		}
	}
	if mp := e.MinPropensity(4); mp != 0.05 {
		t.Errorf("MinPropensity = %v", mp)
	}
	counts := make([]int, 4)
	for i := 0; i < 100000; i++ {
		counts[e.Act(ctx)]++
	}
	if math.Abs(float64(counts[0])/100000-0.85) > 0.01 {
		t.Errorf("empirical base rate = %v", float64(counts[0])/100000)
	}
}

func TestStump(t *testing.T) {
	s := Stump{Idx: 0, Cut: 0.5, Below: 1, Above: 3}
	if got := s.Act(ctxWithActions(4, 0.2)); got != 1 {
		t.Errorf("below: %d", got)
	}
	if got := s.Act(ctxWithActions(4, 0.8)); got != 3 {
		t.Errorf("above: %d", got)
	}
	// Missing feature treated as 0 → below branch.
	if got := s.Act(ctxWithActions(4)); got != 1 {
		t.Errorf("missing feature: %d", got)
	}
	// Out-of-range action clamps.
	if got := s.Act(ctxWithActions(2, 0.8)); got != 1 {
		t.Errorf("clamp: %d", got)
	}
	if s.String() == "" {
		t.Error("String empty")
	}
}

// Property: every policy's Distribution sums to 1 and matches Act support.
func TestDistributionsSumToOne(t *testing.T) {
	r := stats.NewRand(6)
	f := func(kRaw uint8, feat float64) bool {
		k := int(kRaw%6) + 2
		if math.IsNaN(feat) || math.IsInf(feat, 0) {
			feat = 0
		}
		ctx := &core.Context{Features: core.Vector{math.Mod(feat, 10)}, NumActions: k}
		pols := []core.StochasticPolicy{
			Constant{A: 1},
			UniformRandom{R: r},
			&EpsilonGreedy{Base: Constant{A: 0}, Epsilon: 0.3, R: r},
		}
		for _, p := range pols {
			d := p.Distribution(ctx)
			if len(d) != k {
				return false
			}
			sum := 0.0
			for _, v := range d {
				if v < 0 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: for every policy implementing both interfaces, ActionProb must
// agree exactly with the corresponding Distribution entry — the fast path
// must never drift from the reference.
func TestActionProberConsistency(t *testing.T) {
	r := stats.NewRand(77)
	pols := []interface {
		core.StochasticPolicy
		core.ActionProber
	}{
		Constant{A: 1},
		UniformRandom{R: r},
		&EpsilonGreedy{Base: Constant{A: 0}, Epsilon: 0.3, R: r},
	}
	for _, p := range pols {
		for k := 2; k <= 5; k++ {
			ctx := &core.Context{Features: core.Vector{0.5}, NumActions: k}
			dist := p.Distribution(ctx)
			for a := 0; a < k; a++ {
				if got := p.ActionProb(ctx, core.Action(a)); got != dist[a] {
					t.Errorf("%T k=%d a=%d: ActionProb %v != Distribution %v", p, k, a, got, dist[a])
				}
			}
			if got := p.ActionProb(ctx, core.Action(k+3)); got != 0 {
				t.Errorf("%T: out-of-range ActionProb = %v", p, got)
			}
		}
	}
}
