package policy

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func demoTree() *Tree {
	return &Tree{
		Idx: 0, Cut: 0.5,
		Below: &Tree{Leaf: true, Action: 1},
		Above: &Tree{
			Idx: 1, Cut: 2,
			Below: &Tree{Leaf: true, Action: 0},
			Above: &Tree{Leaf: true, Action: 2},
		},
	}
}

func TestTreeActBranches(t *testing.T) {
	tree := demoTree()
	cases := []struct {
		feats core.Vector
		want  core.Action
	}{
		{core.Vector{0.1, 0}, 1},
		{core.Vector{0.9, 1}, 0},
		{core.Vector{0.9, 5}, 2},
		{nil, 1}, // missing features read as zero
	}
	for _, c := range cases {
		ctx := &core.Context{Features: c.feats, NumActions: 3}
		if got := tree.Act(ctx); got != c.want {
			t.Errorf("Act(%v) = %d, want %d", c.feats, got, c.want)
		}
	}
	// Clamping when the leaf action exceeds the action set.
	small := &core.Context{Features: core.Vector{0.9, 5}, NumActions: 2}
	if got := tree.Act(small); got != 1 {
		t.Errorf("clamp = %d, want 1", got)
	}
	// Negative leaf actions clamp to 0.
	neg := &Tree{Leaf: true, Action: -2}
	if got := neg.Act(&core.Context{NumActions: 3}); got != 0 {
		t.Errorf("negative clamp = %d, want 0", got)
	}
}

func TestTreeValidateDepthLeaves(t *testing.T) {
	tree := demoTree()
	if err := tree.Validate(3); err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 2 {
		t.Errorf("Depth = %d", tree.Depth())
	}
	if tree.Leaves() != 3 {
		t.Errorf("Leaves = %d", tree.Leaves())
	}
	if !strings.Contains(tree.String(), "x0<0.5") {
		t.Errorf("String = %q", tree.String())
	}
	var nilTree *Tree
	if nilTree.Depth() != 0 || nilTree.Leaves() != 0 {
		t.Error("nil tree metrics should be 0")
	}
	if nilTree.String() != "<nil>" {
		t.Errorf("nil String = %q", nilTree.String())
	}
	if err := nilTree.Validate(2); err == nil {
		t.Error("nil tree should fail validation")
	}
	if err := (&Tree{Leaf: true, Action: 9}).Validate(3); err == nil {
		t.Error("leaf out of range should fail")
	}
	if err := (&Tree{Idx: 0, Below: &Tree{Leaf: true}}).Validate(3); err == nil {
		t.Error("missing child should fail")
	}
	if err := (&Tree{Idx: -1, Below: &Tree{Leaf: true}, Above: &Tree{Leaf: true}}).Validate(3); err == nil {
		t.Error("negative index should fail")
	}
	bad := demoTree()
	bad.Above.Above.Action = 7
	if err := bad.Validate(3); err == nil {
		t.Error("deep invalid leaf should fail")
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, s := range []string{
		UniformRandom{}.String(),
		(&Linear{Weights: []core.Vector{{1}}}).String(),
		(&Softmax{Temperature: 0.5}).String(),
		(&EpsilonGreedy{Epsilon: 0.1}).String(),
	} {
		if s == "" {
			t.Error("empty String()")
		}
	}
}
