package policy

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"repro/internal/core"
)

// DynamicBlend is a Blend whose share can be retuned while the policy is
// serving live traffic — the actuation target of a staged rollout
// controller. The share lives in an atomic word, so a controller goroutine
// may call SetShare concurrently with a proxy making routing decisions;
// every decision reads the share exactly once, keeping the action draw and
// the logged propensity consistent (the harvesting invariant: the logged
// distribution must be the one the action was drawn from).
//
// Like Blend, the rand source and the wrapped policies are not themselves
// synchronized — Act and Distribution must be serialized by the caller
// (netlb's proxy routes under its own lock), while SetShare may come from
// anywhere.
type DynamicBlend struct {
	// New receives the current share of decisions; Old the rest.
	New, Old core.Policy
	R        *rand.Rand

	shareBits atomic.Uint64
}

// NewDynamicBlend validates and builds a retunable staged rollout.
func NewDynamicBlend(newPol, oldPol core.Policy, share float64, r *rand.Rand) (*DynamicBlend, error) {
	if newPol == nil || oldPol == nil {
		return nil, fmt.Errorf("policy: blend needs both policies")
	}
	if r == nil {
		return nil, fmt.Errorf("policy: blend needs a rand source")
	}
	b := &DynamicBlend{New: newPol, Old: oldPol, R: r}
	if err := b.SetShare(share); err != nil {
		return nil, err
	}
	return b, nil
}

// Share returns the current rollout fraction.
func (b *DynamicBlend) Share() float64 {
	return math.Float64frombits(b.shareBits.Load())
}

// SetShare moves the rollout fraction. Safe to call concurrently with
// routing decisions.
func (b *DynamicBlend) SetShare(share float64) error {
	if math.IsNaN(share) || share < 0 || share > 1 {
		return fmt.Errorf("policy: blend share %v out of [0,1]", share)
	}
	b.shareBits.Store(math.Float64bits(share))
	return nil
}

// Act implements core.Policy.
func (b *DynamicBlend) Act(ctx *core.Context) core.Action {
	if b.R.Float64() < b.Share() {
		return b.New.Act(ctx)
	}
	return b.Old.Act(ctx)
}

// Distribution implements core.StochasticPolicy: the mixture at the share
// read once at call time.
func (b *DynamicBlend) Distribution(ctx *core.Context) []float64 {
	share := b.Share()
	d := make([]float64, ctx.NumActions)
	accumulate := func(p core.Policy, weight float64) {
		if weight == 0 {
			return
		}
		if sp, ok := p.(core.StochasticPolicy); ok {
			for a, pa := range sp.Distribution(ctx) {
				if a < len(d) {
					d[a] += weight * pa
				}
			}
			return
		}
		a := p.Act(ctx)
		if int(a) < len(d) {
			d[a] += weight
		}
	}
	accumulate(b.New, share)
	accumulate(b.Old, 1-share)
	return d
}

// String names the policy. The name is share-independent on purpose: the
// blend is the logging policy, and its identity must not change as the
// controller retunes the share mid-stream.
func (b *DynamicBlend) String() string { return "dynblend" }
