package policy

import (
	"fmt"

	"repro/internal/core"
)

// Tree is a binary decision tree over context features with actions at the
// leaves — the "decision trees" policy template of §4. Trees generalize
// Stump (a depth-1 tree) and stay cheap enough to run on the request path,
// unlike the deep models §6 rules out for systems decisions.
type Tree struct {
	// Leaf marks a terminal node; Action is its choice.
	Leaf   bool
	Action core.Action
	// Internal nodes route on Features[Idx] < Cut.
	Idx          int
	Cut          float64
	Below, Above *Tree
}

// Act implements core.Policy.
func (t *Tree) Act(ctx *core.Context) core.Action {
	node := t
	for !node.Leaf {
		v := 0.0
		if node.Idx < len(ctx.Features) {
			v = ctx.Features[node.Idx]
		}
		if v < node.Cut {
			node = node.Below
		} else {
			node = node.Above
		}
	}
	a := node.Action
	if int(a) >= ctx.NumActions {
		return core.Action(ctx.NumActions - 1)
	}
	if a < 0 {
		return 0
	}
	return a
}

// Validate checks structural sanity: every internal node has two children,
// every leaf action lies in [0, numActions), and feature indexes are
// non-negative.
func (t *Tree) Validate(numActions int) error {
	if t == nil {
		return fmt.Errorf("policy: nil tree node")
	}
	if t.Leaf {
		if t.Action < 0 || int(t.Action) >= numActions {
			return fmt.Errorf("policy: leaf action %d out of [0,%d)", t.Action, numActions)
		}
		return nil
	}
	if t.Idx < 0 {
		return fmt.Errorf("policy: negative feature index %d", t.Idx)
	}
	if t.Below == nil || t.Above == nil {
		return fmt.Errorf("policy: internal node missing children")
	}
	if err := t.Below.Validate(numActions); err != nil {
		return err
	}
	return t.Above.Validate(numActions)
}

// Depth returns the tree's height (a leaf has depth 0).
func (t *Tree) Depth() int {
	if t == nil || t.Leaf {
		return 0
	}
	b, a := t.Below.Depth(), t.Above.Depth()
	if a > b {
		b = a
	}
	return 1 + b
}

// Leaves returns the number of leaf nodes.
func (t *Tree) Leaves() int {
	if t == nil {
		return 0
	}
	if t.Leaf {
		return 1
	}
	return t.Below.Leaves() + t.Above.Leaves()
}

// String renders the tree as a nested expression.
func (t *Tree) String() string {
	if t == nil {
		return "<nil>"
	}
	if t.Leaf {
		return fmt.Sprintf("%d", t.Action)
	}
	return fmt.Sprintf("(x%d<%.3g ? %s : %s)", t.Idx, t.Cut, t.Below, t.Above)
}
