package policy

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
)

// Blend deploys a new policy on a fraction of traffic while the incumbent
// keeps the rest — the staged rollout of the paper's introduction, expressed
// as a single stochastic policy. Because Blend exposes its exact action
// distribution, the rollout's traffic remains fully harvestable: the data
// collected at 10% exposure already evaluates the candidate at 100% (that
// is the whole point of randomizing over actions instead of over policies).
type Blend struct {
	// New receives Share of decisions; Old the rest.
	New, Old core.Policy
	// Share is the rollout fraction in [0, 1].
	Share float64
	R     *rand.Rand
}

// NewBlend validates and builds a staged rollout.
func NewBlend(newPol, oldPol core.Policy, share float64, r *rand.Rand) (*Blend, error) {
	if newPol == nil || oldPol == nil {
		return nil, fmt.Errorf("policy: blend needs both policies")
	}
	if share < 0 || share > 1 {
		return nil, fmt.Errorf("policy: blend share %v out of [0,1]", share)
	}
	if r == nil {
		return nil, fmt.Errorf("policy: blend needs a rand source")
	}
	return &Blend{New: newPol, Old: oldPol, Share: share, R: r}, nil
}

// Act implements core.Policy.
func (b *Blend) Act(ctx *core.Context) core.Action {
	if b.R.Float64() < b.Share {
		return b.New.Act(ctx)
	}
	return b.Old.Act(ctx)
}

// Distribution implements core.StochasticPolicy: the Share-weighted mixture
// of the two policies' distributions (point masses for deterministic ones).
func (b *Blend) Distribution(ctx *core.Context) []float64 {
	d := make([]float64, ctx.NumActions)
	accumulate := func(p core.Policy, weight float64) {
		if weight == 0 {
			return
		}
		if sp, ok := p.(core.StochasticPolicy); ok {
			for a, pa := range sp.Distribution(ctx) {
				if a < len(d) {
					d[a] += weight * pa
				}
			}
			return
		}
		a := p.Act(ctx)
		if int(a) < len(d) {
			d[a] += weight
		}
	}
	accumulate(b.New, b.Share)
	accumulate(b.Old, 1-b.Share)
	return d
}

// String names the policy.
func (b *Blend) String() string { return fmt.Sprintf("blend-%.0f%%", 100*b.Share) }
