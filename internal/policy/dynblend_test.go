package policy

import (
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

func TestNewDynamicBlendValidation(t *testing.T) {
	r := stats.NewRand(1)
	if _, err := NewDynamicBlend(nil, Constant{A: 0}, 0.5, r); err == nil {
		t.Error("nil new policy should fail")
	}
	if _, err := NewDynamicBlend(Constant{A: 0}, nil, 0.5, r); err == nil {
		t.Error("nil old policy should fail")
	}
	if _, err := NewDynamicBlend(Constant{A: 0}, Constant{A: 1}, 1.5, r); err == nil {
		t.Error("share>1 should fail")
	}
	if _, err := NewDynamicBlend(Constant{A: 0}, Constant{A: 1}, 0.5, nil); err == nil {
		t.Error("nil rand should fail")
	}
	b, err := NewDynamicBlend(Constant{A: 0}, Constant{A: 1}, 0.5, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{-0.1, 1.1, math.NaN()} {
		if err := b.SetShare(bad); err == nil {
			t.Errorf("SetShare(%v) should fail", bad)
		}
	}
	if b.Share() != 0.5 {
		t.Errorf("share moved to %v after rejected updates", b.Share())
	}
}

// TestDynamicBlendRetune moves the share mid-stream and checks both the
// action frequencies and the logged distribution track it.
func TestDynamicBlendRetune(t *testing.T) {
	b, err := NewDynamicBlend(Constant{A: 1}, Constant{A: 0}, 0, stats.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := &core.Context{NumActions: 2}
	for i := 0; i < 200; i++ {
		if b.Act(ctx) != 0 {
			t.Fatal("share=0 must route everything to the old policy")
		}
	}
	if d := b.Distribution(ctx); d[0] != 1 || d[1] != 0 {
		t.Fatalf("shadow distribution = %v", d)
	}

	if err := b.SetShare(0.3); err != nil {
		t.Fatal(err)
	}
	hits, n := 0, 100000
	for i := 0; i < n; i++ {
		if b.Act(ctx) == 1 {
			hits++
		}
	}
	if frac := float64(hits) / float64(n); math.Abs(frac-0.3) > 0.01 {
		t.Errorf("new-policy share = %v, want 0.3", frac)
	}
	if d := b.Distribution(ctx); math.Abs(d[1]-0.3) > 1e-12 || math.Abs(d[0]-0.7) > 1e-12 {
		t.Errorf("canary distribution = %v", d)
	}

	if err := b.SetShare(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if b.Act(ctx) != 1 {
			t.Fatal("share=1 must route everything to the new policy")
		}
	}
	if b.String() != "dynblend" {
		t.Errorf("String = %q, want share-independent name", b.String())
	}
}

// TestDynamicBlendConcurrentRetune hammers SetShare from one goroutine
// while another makes routing decisions — the exact topology of a rollout
// controller actuating a live proxy. Run under -race this pins the atomic
// share handoff; semantically it checks every decision sees a valid share.
func TestDynamicBlendConcurrentRetune(t *testing.T) {
	b, err := NewDynamicBlend(Constant{A: 1}, Constant{A: 0}, 0, stats.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx := &core.Context{NumActions: 2}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		shares := []float64{0, 0.01, 0.05, 0.25, 1, 0}
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if err := b.SetShare(shares[i%len(shares)]); err != nil {
				t.Errorf("SetShare: %v", err)
				return
			}
		}
	}()
	// Act and Distribution are serialized (the proxy routes under its own
	// lock); only SetShare is concurrent.
	for i := 0; i < 50000; i++ {
		d := b.Distribution(ctx)
		if math.Abs(d[0]+d[1]-1) > 1e-12 {
			t.Fatalf("distribution %v does not sum to 1", d)
		}
		if a := b.Act(ctx); a != 0 && a != 1 {
			t.Fatalf("action %d out of range", a)
		}
	}
	close(done)
	wg.Wait()
}
