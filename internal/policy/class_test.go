package policy

import (
	"errors"
	"testing"

	"repro/internal/core"
)

func TestStumpClassSizeMatchesEnumeration(t *testing.T) {
	c := StumpClass{NumFeatures: 3, Cuts: []float64{0.25, 0.5, 0.75}, NumActions: 4}
	want := 3 * 3 * 4 * 4
	if c.Size() != want {
		t.Fatalf("Size = %d, want %d", c.Size(), want)
	}
	seen := 0
	lastIdx := -1
	c.Enumerate(func(idx int, p core.Policy) bool {
		if idx != lastIdx+1 {
			t.Fatalf("non-contiguous index %d after %d", idx, lastIdx)
		}
		lastIdx = idx
		seen++
		if _, ok := p.(Stump); !ok {
			t.Fatalf("member %d is %T, want Stump", idx, p)
		}
		return true
	})
	if seen != want {
		t.Errorf("enumerated %d, want %d", seen, want)
	}
}

func TestStumpClassEarlyStop(t *testing.T) {
	c := StumpClass{NumFeatures: 2, Cuts: []float64{0.5}, NumActions: 3}
	seen := 0
	c.Enumerate(func(idx int, p core.Policy) bool {
		seen++
		return seen < 5
	})
	if seen != 5 {
		t.Errorf("early stop visited %d, want 5", seen)
	}
}

func TestGridLinearClass(t *testing.T) {
	g := GridLinearClass{Dim: 3, Values: []float64{-1, 0, 1}}
	if g.Size() != 27 {
		t.Fatalf("Size = %d, want 27", g.Size())
	}
	seen := map[string]bool{}
	g.Enumerate(func(idx int, p core.Policy) bool {
		l := p.(*Linear)
		key := ""
		for _, v := range l.Weights[0] {
			key += string(rune('0' + int(v+1)))
		}
		if seen[key] {
			t.Fatalf("duplicate member %q", key)
		}
		seen[key] = true
		return true
	})
	if len(seen) != 27 {
		t.Errorf("enumerated %d distinct members, want 27", len(seen))
	}
}

func TestGridLinearClassDegenerate(t *testing.T) {
	g := GridLinearClass{Dim: 0, Values: []float64{1}}
	count := 0
	g.Enumerate(func(int, core.Policy) bool { count++; return true })
	if count != 0 {
		t.Errorf("Dim=0 should enumerate nothing, got %d", count)
	}
}

func TestConstantClass(t *testing.T) {
	c := ConstantClass{NumActions: 5}
	if c.Size() != 5 {
		t.Fatalf("Size = %d", c.Size())
	}
	var actions []core.Action
	c.Enumerate(func(idx int, p core.Policy) bool {
		actions = append(actions, p.(Constant).A)
		return true
	})
	for i, a := range actions {
		if int(a) != i {
			t.Errorf("member %d has action %d", i, a)
		}
	}
}

func TestSearchFindsBest(t *testing.T) {
	c := ConstantClass{NumActions: 10}
	// Score each constant policy by -(a-7)²: best at a=7.
	eval := func(p core.Policy) (float64, error) {
		a := float64(p.(Constant).A)
		return -(a - 7) * (a - 7), nil
	}
	res, err := Search(c, eval, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy.(Constant).A != 7 {
		t.Errorf("best = %v, want 7", res.Policy)
	}
	if res.Evaluated != 10 {
		t.Errorf("Evaluated = %d", res.Evaluated)
	}
	// Minimize finds the farthest.
	res, err = Search(c, eval, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy.(Constant).A != 0 {
		t.Errorf("worst = %v, want 0", res.Policy)
	}
}

func TestSearchPropagatesError(t *testing.T) {
	c := ConstantClass{NumActions: 3}
	boom := errors.New("boom")
	_, err := Search(c, func(core.Policy) (float64, error) { return 0, boom }, false)
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestSearchEmptyClass(t *testing.T) {
	c := ConstantClass{NumActions: 0}
	if _, err := Search(c, func(core.Policy) (float64, error) { return 0, nil }, false); err == nil {
		t.Error("empty class should error")
	}
}
