package policy

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Class is an enumerable set of candidate policies — the Π of §4 whose best
// member the optimizer searches for. Size reports |Π| (which may be huge);
// Enumerate visits members until the visitor returns false.
type Class interface {
	// Size returns the number of policies in the class.
	Size() int
	// Enumerate calls visit for each policy (with a stable index) until
	// visit returns false or the class is exhausted.
	Enumerate(visit func(idx int, p core.Policy) bool)
}

// StumpClass enumerates all decision stumps over a feature grid:
// every (feature index, cut point, below-action, above-action) combination.
// With f features, c cuts, and k actions the class has f·c·k² members —
// easily 10^6 with modest grids, matching the paper's Fig. 2 setting.
type StumpClass struct {
	NumFeatures int
	Cuts        []float64
	NumActions  int
}

// Size implements Class.
func (s StumpClass) Size() int {
	return s.NumFeatures * len(s.Cuts) * s.NumActions * s.NumActions
}

// Enumerate implements Class.
func (s StumpClass) Enumerate(visit func(int, core.Policy) bool) {
	idx := 0
	for f := 0; f < s.NumFeatures; f++ {
		for _, cut := range s.Cuts {
			for below := 0; below < s.NumActions; below++ {
				for above := 0; above < s.NumActions; above++ {
					p := Stump{Idx: f, Cut: cut, Below: core.Action(below), Above: core.Action(above)}
					if !visit(idx, p) {
						return
					}
					idx++
				}
			}
		}
	}
}

// GridLinearClass enumerates linear policies whose single shared weight
// vector (applied to per-action features) is drawn from a grid: each of Dim
// coordinates ranges over Values. The class has len(Values)^Dim members.
type GridLinearClass struct {
	Dim      int
	Values   []float64
	Minimize bool
}

// Size implements Class.
func (g GridLinearClass) Size() int {
	n := 1
	for i := 0; i < g.Dim; i++ {
		n *= len(g.Values)
	}
	return n
}

// Enumerate implements Class.
func (g GridLinearClass) Enumerate(visit func(int, core.Policy) bool) {
	if g.Dim == 0 || len(g.Values) == 0 {
		return
	}
	counters := make([]int, g.Dim)
	idx := 0
	for {
		w := make(core.Vector, g.Dim)
		for i, c := range counters {
			w[i] = g.Values[c]
		}
		p := &Linear{Weights: []core.Vector{w}, Minimize: g.Minimize}
		if !visit(idx, p) {
			return
		}
		idx++
		// Odometer increment.
		i := 0
		for ; i < g.Dim; i++ {
			counters[i]++
			if counters[i] < len(g.Values) {
				break
			}
			counters[i] = 0
		}
		if i == g.Dim {
			return
		}
	}
}

// ConstantClass is the K-member class of constant policies — the A/B
// baseline's natural comparison set.
type ConstantClass struct {
	NumActions int
}

// Size implements Class.
func (c ConstantClass) Size() int { return c.NumActions }

// Enumerate implements Class.
func (c ConstantClass) Enumerate(visit func(int, core.Policy) bool) {
	for a := 0; a < c.NumActions; a++ {
		if !visit(a, Constant{A: core.Action(a)}) {
			return
		}
	}
}

// Evaluator scores a policy against data; ope estimators satisfy this via a
// small adapter in the caller (kept abstract here to avoid an import cycle).
type Evaluator func(p core.Policy) (float64, error)

// SearchResult reports the best policy found in a class.
type SearchResult struct {
	Policy core.Policy
	Index  int
	Value  float64
	// Evaluated counts the class members actually scored.
	Evaluated int
}

// Search enumerates the class and returns the member with the highest score
// (or lowest, if minimize). This is the brute-force counterpart of the
// efficient oracle-based search the paper references [7]; our classes are
// sized so exhaustive search is tractable while exercising the same
// simultaneous-evaluation statistics.
func Search(class Class, eval Evaluator, minimize bool) (SearchResult, error) {
	best := SearchResult{Index: -1, Value: math.Inf(-1)}
	if minimize {
		best.Value = math.Inf(1)
	}
	var firstErr error
	class.Enumerate(func(idx int, p core.Policy) bool {
		v, err := eval(p)
		if err != nil {
			firstErr = fmt.Errorf("policy %d: %w", idx, err)
			return false
		}
		best.Evaluated++
		if (minimize && v < best.Value) || (!minimize && v > best.Value) {
			best.Policy, best.Index, best.Value = p, idx, v
		}
		return true
	})
	if firstErr != nil {
		return SearchResult{}, firstErr
	}
	if best.Index < 0 {
		return SearchResult{}, fmt.Errorf("policy: empty class")
	}
	return best, nil
}
