package des

import (
	"errors"
	"math/rand"
)

// ArrivalProcess generates a stream of arrival events on a Simulator.
// Each arrival invokes the handler with the arrival's index.
type ArrivalProcess struct {
	sim     *Simulator
	next    func() float64 // inter-arrival gap sampler
	handler func(i int)
	count   int
	limit   int
	stopped bool
}

// NewPoissonArrivals schedules arrivals with exponential inter-arrival gaps
// (rate = arrivals per unit virtual time), stopping after limit arrivals
// (limit <= 0 means unlimited; pair it with Simulator.Run's horizon).
func NewPoissonArrivals(sim *Simulator, r *rand.Rand, rate float64, limit int, handler func(i int)) (*ArrivalProcess, error) {
	if rate <= 0 {
		return nil, errors.New("des: arrival rate must be positive")
	}
	if handler == nil {
		return nil, errors.New("des: nil arrival handler")
	}
	p := &ArrivalProcess{
		sim:     sim,
		next:    func() float64 { return r.ExpFloat64() / rate },
		handler: handler,
		limit:   limit,
	}
	return p, p.schedule()
}

// NewUniformArrivals schedules arrivals with a fixed inter-arrival gap.
func NewUniformArrivals(sim *Simulator, gap float64, limit int, handler func(i int)) (*ArrivalProcess, error) {
	if gap <= 0 {
		return nil, errors.New("des: arrival gap must be positive")
	}
	if handler == nil {
		return nil, errors.New("des: nil arrival handler")
	}
	p := &ArrivalProcess{
		sim:     sim,
		next:    func() float64 { return gap },
		handler: handler,
		limit:   limit,
	}
	return p, p.schedule()
}

func (p *ArrivalProcess) schedule() error {
	_, err := p.sim.After(p.next(), p.fire)
	return err
}

func (p *ArrivalProcess) fire() {
	if p.stopped {
		return
	}
	i := p.count
	p.count++
	p.handler(i)
	if p.limit > 0 && p.count >= p.limit {
		return
	}
	// Scheduling from inside an event can't fail: delay >= 0.
	_ = mustEvent(p.sim.After(p.next(), p.fire))
}

// Stop halts the process; no further arrivals fire.
func (p *ArrivalProcess) Stop() { p.stopped = true }

// Count returns the number of arrivals generated so far.
func (p *ArrivalProcess) Count() int { return p.count }

func mustEvent(e *Event, err error) *Event {
	if err != nil {
		panic(err) // unreachable: non-negative delays never fail
	}
	return e
}
