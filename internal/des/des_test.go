package des

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	var s Simulator
	var order []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		if _, err := s.At(at, func() { order = append(order, at) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunAll(100); err != nil {
		t.Fatal(err)
	}
	if !sort.Float64sAreSorted(order) {
		t.Errorf("events out of order: %v", order)
	}
	if len(order) != 5 {
		t.Errorf("ran %d events, want 5", len(order))
	}
	if s.Now() != 5 {
		t.Errorf("clock = %v, want 5", s.Now())
	}
}

func TestEqualTimeEventsRunInScheduleOrder(t *testing.T) {
	var s Simulator
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := s.At(1.0, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunAll(100); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break broken: %v", order)
		}
	}
}

func TestSchedulePastFails(t *testing.T) {
	var s Simulator
	if _, err := s.At(5, func() { _ = 0 }); err != nil {
		t.Fatal(err)
	}
	s.Step()
	if _, err := s.At(1, func() {}); err == nil {
		t.Error("scheduling in the past should fail")
	}
	if _, err := s.After(-1, func() {}); err == nil {
		t.Error("negative delay should fail")
	}
	if _, err := s.At(10, nil); err == nil {
		t.Error("nil callback should fail")
	}
}

func TestCancel(t *testing.T) {
	var s Simulator
	fired := false
	e, err := s.At(1, func() { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	e.Cancel()
	if err := s.RunAll(10); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("canceled event fired")
	}
	e.Cancel() // double-cancel is a no-op
}

func TestRunHorizon(t *testing.T) {
	var s Simulator
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		if _, err := s.At(at, func() { fired = append(fired, at) }); err != nil {
			t.Fatal(err)
		}
	}
	n := s.Run(3)
	if n != 3 || len(fired) != 3 {
		t.Errorf("ran %d events (fired %v), want 3 incl. the one exactly at horizon", n, fired)
	}
	if s.Pending() != 2 {
		t.Errorf("pending = %d, want 2", s.Pending())
	}
	// Continue to the end.
	n = s.Run(math.Inf(1))
	if n != 2 {
		t.Errorf("second run executed %d, want 2", n)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	var s Simulator
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 5 {
			if _, err := s.After(1, chain); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := s.At(0, chain); err != nil {
		t.Fatal(err)
	}
	if err := s.RunAll(100); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("chain ran %d times, want 5", count)
	}
	if s.Now() != 4 {
		t.Errorf("clock = %v, want 4", s.Now())
	}
}

func TestRunAllBudget(t *testing.T) {
	var s Simulator
	var loop func()
	loop = func() { _ = mustEvent(s.After(1, loop)) }
	if _, err := s.At(0, loop); err != nil {
		t.Fatal(err)
	}
	if err := s.RunAll(50); err == nil {
		t.Error("budget exhaustion should be an error")
	}
}

func TestStepsCounter(t *testing.T) {
	var s Simulator
	for i := 0; i < 7; i++ {
		if _, err := s.At(float64(i), func() {}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunAll(100); err != nil {
		t.Fatal(err)
	}
	if s.Steps() != 7 {
		t.Errorf("Steps = %d, want 7", s.Steps())
	}
}

func TestPoissonArrivalRate(t *testing.T) {
	var s Simulator
	r := stats.NewRand(1)
	n := 0
	if _, err := NewPoissonArrivals(&s, r, 10.0, 0, func(int) { n++ }); err != nil {
		t.Fatal(err)
	}
	s.Run(1000)
	// Expect ~10*1000 = 10000 arrivals; Poisson sd ≈ 100.
	if n < 9500 || n > 10500 {
		t.Errorf("arrivals = %d, want ≈10000", n)
	}
}

func TestPoissonArrivalLimit(t *testing.T) {
	var s Simulator
	r := stats.NewRand(2)
	p, err := NewPoissonArrivals(&s, r, 100, 25, func(int) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunAll(1000); err != nil {
		t.Fatal(err)
	}
	if p.Count() != 25 {
		t.Errorf("Count = %d, want 25", p.Count())
	}
}

func TestUniformArrivals(t *testing.T) {
	var s Simulator
	var times []float64
	if _, err := NewUniformArrivals(&s, 2.0, 4, func(int) { times = append(times, s.Now()) }); err != nil {
		t.Fatal(err)
	}
	if err := s.RunAll(100); err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 4, 6, 8}
	if len(times) != 4 {
		t.Fatalf("times = %v", times)
	}
	for i := range want {
		if math.Abs(times[i]-want[i]) > 1e-12 {
			t.Errorf("arrival %d at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestArrivalStop(t *testing.T) {
	var s Simulator
	n := 0
	p, err := NewUniformArrivals(&s, 1, 0, func(i int) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.At(5.5, p.Stop); err != nil {
		t.Fatal(err)
	}
	s.Run(100)
	if n != 5 {
		t.Errorf("arrivals after stop: n = %d, want 5", n)
	}
}

func TestArrivalConstructorsValidate(t *testing.T) {
	var s Simulator
	r := stats.NewRand(1)
	if _, err := NewPoissonArrivals(&s, r, 0, 0, func(int) {}); err == nil {
		t.Error("rate=0 should fail")
	}
	if _, err := NewPoissonArrivals(&s, r, 1, 0, nil); err == nil {
		t.Error("nil handler should fail")
	}
	if _, err := NewUniformArrivals(&s, 0, 0, func(int) {}); err == nil {
		t.Error("gap=0 should fail")
	}
	if _, err := NewUniformArrivals(&s, 1, 0, nil); err == nil {
		t.Error("nil handler should fail")
	}
}

// Property: the virtual clock is monotone under any schedule of delays.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(delays []float64) bool {
		var s Simulator
		prev := -1.0
		ok := true
		for _, d := range delays {
			if math.IsNaN(d) || math.IsInf(d, 0) {
				continue
			}
			d = math.Abs(math.Mod(d, 1000))
			if _, err := s.After(d, func() {
				if s.Now() < prev {
					ok = false
				}
				prev = s.Now()
			}); err != nil {
				return false
			}
		}
		if err := s.RunAll(len(delays) + 1); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
