// Package des is a small discrete-event simulation engine. The load
// balancing and caching substrates run on top of it: a Simulator owns a
// virtual clock and an event heap, and actors schedule callbacks at future
// virtual times.
//
// The engine is single-goroutine by design — determinism matters more than
// parallelism for reproducing the paper's experiments. Given the same seed
// and the same schedule of events, a run is bit-for-bit repeatable.
package des

import (
	"container/heap"
	"errors"
	"fmt"
)

// Event is a callback scheduled to run at a virtual time.
type Event struct {
	at   float64
	seq  uint64 // tie-break so equal-time events run in schedule order
	fn   func()
	dead bool
	idx  int
}

// Time returns the virtual time at which the event fires.
func (e *Event) Time() float64 { return e.at }

// Cancel prevents a pending event from firing. Canceling an event that has
// already fired or was already canceled is a no-op.
func (e *Event) Cancel() { e.dead = true }

// eventHeap orders events by (time, sequence number).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	e.idx = -1
	return e
}

// Simulator owns the virtual clock and pending events. The zero value is
// ready to use, starting at time 0.
type Simulator struct {
	now    float64
	seq    uint64
	events eventHeap
	steps  uint64
}

// ErrPast is returned when scheduling an event before the current time.
var ErrPast = errors.New("des: cannot schedule event in the past")

// Now returns the current virtual time.
func (s *Simulator) Now() float64 { return s.now }

// Pending returns the number of events still queued (including canceled
// events that have not yet been popped).
func (s *Simulator) Pending() int { return len(s.events) }

// Steps returns the number of events executed so far.
func (s *Simulator) Steps() uint64 { return s.steps }

// At schedules fn to run at absolute virtual time t.
func (s *Simulator) At(t float64, fn func()) (*Event, error) {
	if t < s.now {
		return nil, fmt.Errorf("%w: t=%v now=%v", ErrPast, t, s.now)
	}
	if fn == nil {
		return nil, errors.New("des: nil event callback")
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	return e, nil
}

// After schedules fn to run d virtual time units from now.
func (s *Simulator) After(d float64, fn func()) (*Event, error) {
	if d < 0 {
		return nil, fmt.Errorf("%w: negative delay %v", ErrPast, d)
	}
	return s.At(s.now+d, fn)
}

// Step executes the single earliest pending event, advancing the clock to
// its time. It returns false when no events remain.
func (s *Simulator) Step() bool {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*Event)
		if e.dead {
			continue
		}
		s.now = e.at
		s.steps++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or the clock passes horizon.
// Events scheduled exactly at the horizon still run. It returns the number
// of events executed.
func (s *Simulator) Run(horizon float64) int {
	n := 0
	for len(s.events) > 0 {
		// Peek: heap root is the earliest event.
		next := s.events[0]
		if next.dead {
			heap.Pop(&s.events)
			continue
		}
		if next.at > horizon {
			break
		}
		s.Step()
		n++
	}
	return n
}

// RunAll executes events until the queue drains, with a step budget as a
// runaway guard. It returns an error if the budget is exhausted with events
// still pending.
func (s *Simulator) RunAll(maxSteps int) error {
	for i := 0; i < maxSteps; i++ {
		if !s.Step() {
			return nil
		}
	}
	if s.Pending() > 0 {
		return fmt.Errorf("des: step budget %d exhausted with %d events pending", maxSteps, s.Pending())
	}
	return nil
}
