package parallel

import (
	"sync"

	"repro/internal/obs"
)

// The package-level trace target. Experiment runners call For/ForSeeded/Do
// from deep inside their replicate loops with no spare parameter to thread a
// tracer through ~15 Params structs, so the batch-span hook is ambient
// state: the driver (cmd/harvest behind -trace) installs a tracer plus the
// current experiment's span, and every batch the scheduler runs while it is
// installed becomes a child span. A nil tracer — the default — keeps the
// scheduler span-free, and tracing never touches task execution or RNG
// derivation, so the reproducibility contract is unaffected.
var (
	traceMu     sync.Mutex
	traceTr     *obs.Tracer
	traceParent *obs.Span
)

// SetTrace installs the tracer and parent span under which For emits one
// "replicates" span per batch, returning a restore func that reinstates the
// previous target (call it when the traced region ends). SetTrace(nil, nil)
// disables batch spans.
func SetTrace(tr *obs.Tracer, parent *obs.Span) (restore func()) {
	traceMu.Lock()
	prevTr, prevParent := traceTr, traceParent
	traceTr, traceParent = tr, parent
	traceMu.Unlock()
	return func() {
		traceMu.Lock()
		traceTr, traceParent = prevTr, prevParent
		traceMu.Unlock()
	}
}

// traceStart opens a batch span under the installed target. With no tracer
// installed it returns a nil span, on which End is a no-op.
func traceStart(name string, attrs map[string]any) *obs.Span {
	traceMu.Lock()
	tr, parent := traceTr, traceParent
	traceMu.Unlock()
	return tr.Start(name, parent, attrs)
}
