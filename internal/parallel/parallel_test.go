package parallel

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/ope"
	"repro/internal/policy"
	"repro/internal/stats"
)

func TestResolve(t *testing.T) {
	if Resolve(1) != 1 || Resolve(7) != 7 {
		t.Error("explicit worker counts must pass through")
	}
	if Resolve(0) < 1 || Resolve(-3) < 1 {
		t.Error("non-positive workers must resolve to at least one")
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 16} {
		hits := make([]int, 100)
		if err := For(workers, len(hits), func(i int) error {
			hits[i]++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
	if err := For(4, 0, func(int) error { t.Error("n=0 must not run tasks"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		err := For(workers, 50, func(i int) error {
			if i == 7 || i == 31 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 7 failed" {
			t.Errorf("workers=%d: err = %v, want the lowest failing index", workers, err)
		}
	}
}

// TestForSeededWorkerInvariance pins the scheduler's core guarantee: the
// values produced at every index are identical for any worker count.
func TestForSeededWorkerInvariance(t *testing.T) {
	draw := func(workers int) []int64 {
		vals := make([]int64, 200)
		if err := ForSeeded(workers, len(vals), 42, func(i int, r *rand.Rand) error {
			vals[i] = r.Int63()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return vals
	}
	serial := draw(1)
	for _, workers := range []int{2, 4, 16} {
		if got := draw(workers); !reflect.DeepEqual(serial, got) {
			t.Errorf("workers=%d produced different replicate streams than serial", workers)
		}
	}
}

// TestForSeededReplicateIndependence is the regression test for the bug
// class the scheduler removed from the experiment runners: replicates that
// draw from one shared stream (fig3's old simR, candidates splitting a
// shared root) make replicate k's randomness depend on replicates 0..k-1.
// With substreams, replicate i's draws are invariant to how many other
// replicates the loop runs.
func TestForSeededReplicateIndependence(t *testing.T) {
	draw := func(n int) []int64 {
		vals := make([]int64, n)
		if err := ForSeeded(4, n, 7, func(i int, r *rand.Rand) error {
			vals[i] = r.Int63()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return vals
	}
	short, long := draw(3), draw(100)
	if !reflect.DeepEqual(short, long[:3]) {
		t.Error("replicate streams depend on the loop length — substream derivation broken")
	}
}

func TestForSeededMatchesSubstream(t *testing.T) {
	var got int64
	if err := ForSeeded(1, 3, 99, func(i int, r *rand.Rand) error {
		if i == 2 {
			got = r.Int63()
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if want := stats.Substream(99, 2).Int63(); got != want {
		t.Errorf("ForSeeded RNG diverges from stats.Substream: %d vs %d", got, want)
	}
}

func TestDo(t *testing.T) {
	a, b := 0, 0
	if err := Do(2, func() error { a = 1; return nil }, func() error { b = 2; return nil }); err != nil {
		t.Fatal(err)
	}
	if a != 1 || b != 2 {
		t.Errorf("tasks did not run: a=%d b=%d", a, b)
	}
	if err := Do(2, func() error { return nil }, func() error { return fmt.Errorf("boom") }); err == nil {
		t.Error("Do must propagate task errors")
	}
}

// shardedDataset builds exploration data spanning several shards.
func shardedDataset(n int) core.Dataset {
	r := stats.NewRand(3)
	ds := make(core.Dataset, n)
	for i := range ds {
		ds[i] = core.Datapoint{
			Context:    core.Context{Features: core.Vector{r.Float64()}, NumActions: 4},
			Action:     core.Action(r.Intn(4)),
			Reward:     r.Float64(),
			Propensity: 0.25,
		}
	}
	return ds
}

func TestShardedIPSWorkerInvariance(t *testing.T) {
	ds := shardedDataset(3*ipsShardSize + 517)
	pol := policy.Constant{A: 1}
	serial, err := ShardedIPS(1, pol, ds)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		snap, err := ShardedIPS(workers, pol, ds)
		if err != nil {
			t.Fatal(err)
		}
		if snap != serial {
			t.Errorf("workers=%d snapshot %+v differs from serial %+v", workers, snap, serial)
		}
	}
}

func TestShardedIPSAgreesWithOPE(t *testing.T) {
	ds := shardedDataset(2*ipsShardSize + 99)
	pol := policy.Constant{A: 1}
	snap, err := ShardedIPS(4, pol, ds)
	if err != nil {
		t.Fatal(err)
	}
	est, err := (ope.IPS{}).Estimate(pol, ds)
	if err != nil {
		t.Fatal(err)
	}
	if snap.N != len(ds) {
		t.Errorf("snapshot folded %d of %d datapoints", snap.N, len(ds))
	}
	if math.Abs(snap.Mean-est.Value) > 1e-9 {
		t.Errorf("sharded mean %v vs ope ips %v", snap.Mean, est.Value)
	}
}

func TestShardedIPSErrors(t *testing.T) {
	if _, err := ShardedIPS(2, policy.Constant{A: 0}, nil); err == nil {
		t.Error("empty dataset should fail")
	}
	bad := shardedDataset(10)
	bad[3].Propensity = 0
	if _, err := ShardedIPS(2, policy.Constant{A: 0}, bad); err == nil {
		t.Error("non-positive propensity should fail")
	}
}
