// Package parallel is the deterministic replicate scheduler the experiment
// runners execute on. Every experiment in this repository is a seeded
// stochastic simulation whose replicate loops (resimulations, candidate
// policies, sweep points) are independent given their RNG streams; this
// package runs those loops on a worker pool without surrendering the
// reproducibility contract:
//
//   - each replicate's randomness derives from (rootSeed, replicateIndex)
//     via stats.SubstreamSeed — a pure function, so a replicate's stream
//     never depends on goroutine scheduling or on how much other replicates
//     drew;
//   - each replicate writes only its own index-ordered slot, and reductions
//     happen serially in index order after the pool drains, so float
//     summation order is fixed;
//   - errors are reported by the lowest failing index, matching what a
//     serial loop that runs to completion would report.
//
// Together these make the worker count an observable no-op: for every
// runner, Workers=1 and Workers=N produce byte-identical results — the
// invariant the seed-equivalence suite in internal/experiments pins.
package parallel

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/harvester"
	"repro/internal/stats"
)

// Resolve maps a Workers parameter to a concrete worker count: values < 1
// select runtime.NumCPU() (the default for every experiment runner), 1 is
// the serial path, anything larger is taken as-is.
func Resolve(workers int) int {
	if workers < 1 {
		return runtime.NumCPU()
	}
	return workers
}

// For runs task(0) … task(n-1) on Resolve(workers) workers and waits for
// all of them. Tasks must be independent and write only state they own
// (typically slot i of a caller-allocated slice); the scheduler guarantees
// nothing about execution order. Every task runs even if another fails, so
// the returned error — the lowest failing index's — does not depend on
// scheduling. workers=1 executes inline with no goroutines.
func For(workers, n int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Resolve(workers)
	if w > n {
		w = n
	}
	sp := traceStart("replicates", map[string]any{"n": n, "workers": w})
	defer sp.End()
	if w == 1 {
		// Legacy serial path: same loop a pre-scheduler runner ran. It
		// still runs every task so the error choice matches the pool's.
		var firstErr error
		for i := 0; i < n; i++ {
			if err := task(i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = task(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForSeeded is For with each replicate handed its own seeded RNG, derived
// from (base, i) by stats.SubstreamSeed. This is the replicate-loop
// workhorse: the RNG is constructed inside the replicate (never shared, so
// no stream ever crosses a goroutine), and because the derivation is pure,
// replicate i draws the same stream whether the pool has 1 worker or 16 —
// and whether the loop runs 3 replicates or 3000.
func ForSeeded(workers, n int, base int64, task func(i int, r *rand.Rand) error) error {
	return For(workers, n, func(i int) error {
		// rand.New here (not stats.Substream) keeps this package free of a
		// stats round-trip in the hot loop; harvestlint grants internal/
		// parallel the same construction exemption as internal/stats.
		return task(i, rand.New(rand.NewSource(stats.SubstreamSeed(base, int64(i)))))
	})
}

// Do runs heterogeneous independent tasks (e.g. an experiment's two
// unrelated simulation passes) on the pool and waits for all of them.
func Do(workers int, tasks ...func() error) error {
	return For(workers, len(tasks), func(i int) error { return tasks[i]() })
}

// ipsShardSize fixes the shard boundaries of ShardedIPS as a function of
// the dataset length only. The worker count must never influence the
// sharding: merge order (and with it float summation order) is part of the
// reproducibility contract.
const ipsShardSize = 8192

// ShardedIPS estimates a candidate policy's value on exploration data by
// folding fixed-size dataset shards into per-shard harvester accumulators
// concurrently, then merging the shards in index order — the
// Snapshot/Merge machinery harvestd's sharded ingestion uses, applied to a
// batch dataset. The result is identical for every workers value: shard
// boundaries depend only on len(ds), each shard folds its datapoints in
// order, and the serial in-order merge fixes the reduction order.
func ShardedIPS(workers int, pol core.Policy, ds core.Dataset) (harvester.Snapshot, error) {
	if len(ds) == 0 {
		return harvester.Snapshot{}, core.ErrNoData
	}
	shards := (len(ds) + ipsShardSize - 1) / ipsShardSize
	ests := make([]*harvester.IncrementalEstimator, shards)
	err := For(workers, shards, func(i int) error {
		ie, err := harvester.NewIncrementalEstimator(pol)
		if err != nil {
			return err
		}
		lo := i * ipsShardSize
		hi := lo + ipsShardSize
		if hi > len(ds) {
			hi = len(ds)
		}
		for j := lo; j < hi; j++ {
			if err := ie.Add(ds[j]); err != nil {
				return fmt.Errorf("parallel: datapoint %d: %w", j, err)
			}
		}
		ests[i] = ie
		return nil
	})
	if err != nil {
		return harvester.Snapshot{}, err
	}
	merged := ests[0]
	for _, ie := range ests[1:] {
		if err := merged.Merge(ie); err != nil {
			return harvester.Snapshot{}, err
		}
	}
	return merged.Snapshot(), nil
}
