package harvester

import (
	"testing"

	"repro/internal/core"
	"repro/internal/lbsim"
	"repro/internal/stats"
)

// benchDataset builds a fixed exploration set for the estimator benchmarks.
func benchDataset(n int) core.Dataset {
	r := stats.NewRand(3)
	ds := make(core.Dataset, n)
	for i := range ds {
		conns := []int{r.Intn(10), r.Intn(10), r.Intn(10)}
		a := core.Action(r.Intn(3))
		ds[i] = core.Datapoint{
			Context:    lbsim.BuildContext(conns, 0, 1),
			Action:     a,
			Reward:     0.1 + 0.01*float64(conns[a]),
			Propensity: 1.0 / 3,
		}
	}
	return ds
}

// BenchmarkIncrementalEstimator measures the per-datapoint fold — the hot
// path of every ingestion worker in harvestd.
func BenchmarkIncrementalEstimator(b *testing.B) {
	ds := benchDataset(4096)
	ie, err := NewIncrementalEstimator(lbsim.LeastLoaded{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ie.Add(ds[i&4095]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalEstimatorSnapshot measures the read path a live API
// hits on every scrape.
func BenchmarkIncrementalEstimatorSnapshot(b *testing.B) {
	ds := benchDataset(4096)
	ie, err := NewIncrementalEstimator(lbsim.LeastLoaded{})
	if err != nil {
		b.Fatal(err)
	}
	for i := range ds {
		if err := ie.Add(ds[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := ie.Snapshot(); s.N == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

// BenchmarkIncrementalEstimatorMerge measures merging one worker shard into
// an aggregate — the per-read cost of the sharded design.
func BenchmarkIncrementalEstimatorMerge(b *testing.B) {
	ds := benchDataset(4096)
	pol := lbsim.LeastLoaded{}
	shard, err := NewIncrementalEstimator(pol)
	if err != nil {
		b.Fatal(err)
	}
	for i := range ds {
		if err := shard.Add(ds[i]); err != nil {
			b.Fatal(err)
		}
	}
	agg, err := NewIncrementalEstimator(pol)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := agg.Merge(shard); err != nil {
			b.Fatal(err)
		}
	}
}
