package binrec

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/core"
)

// FuzzBinRecDecode feeds arbitrary bytes to the decoder: it must terminate
// with io.EOF or a descriptive error — never panic, never allocate a buffer
// sized by an unvalidated length prefix. Valid streams are seeded so the
// fuzzer mutates real framing, not just garbage.
func FuzzBinRecDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(magic))
	for _, seed := range []int64{1, 2} {
		ds := randomDataset(seed, 8)
		var buf bytes.Buffer
		enc, err := NewEncoder(&buf)
		if err != nil {
			f.Fatal(err)
		}
		enc.SegmentBytes = 128
		for i := range ds {
			if err := enc.Write(&ds[i]); err != nil {
				f.Fatal(err)
			}
		}
		if err := enc.Flush(); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data))
		var b Batch
		records := 0
		for {
			err := dec.Next(&b)
			if err == io.EOF {
				return
			}
			if err != nil {
				return // rejected with context — the acceptable outcome
			}
			records += len(b.Points)
			if records > len(data) {
				t.Fatalf("%d records decoded from %d input bytes", records, len(data))
			}
			for i := range b.Points {
				_ = b.Points[i].Validate() // must not panic on any decoded point
			}
		}
	})
}

// FuzzBinRecRoundTrip mutates a scalar record through encode → decode →
// re-encode, checking byte-exactness of the second encoding.
func FuzzBinRecRoundTrip(f *testing.F) {
	f.Add(int64(2), uint8(0), 0.5, 0.25, int64(7), "t")
	f.Add(int64(5), uint8(4), -1.5, 1.0, int64(-9), "")
	f.Fuzz(func(t *testing.T, k int64, a uint8, reward, prop float64, seq int64, tag string) {
		if k < 1 || k > 64 {
			return
		}
		d := core.Datapoint{
			Context: core.Context{
				Features:   core.Vector{reward, prop, float64(seq)},
				NumActions: int(k),
			},
			Action:     core.Action(a),
			Reward:     reward,
			Propensity: prop,
			Seq:        seq,
			Tag:        tag,
		}
		var buf bytes.Buffer
		enc, err := NewEncoder(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.Write(&d); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		wire := buf.Bytes()

		dec := NewDecoder(bytes.NewReader(wire))
		var b Batch
		if err := dec.Next(&b); err != nil {
			t.Fatalf("decoding own encoding: %v", err)
		}
		if len(b.Points) != 1 {
			t.Fatalf("got %d points, want 1", len(b.Points))
		}
		var buf2 bytes.Buffer
		enc2, err := NewEncoder(&buf2)
		if err != nil {
			t.Fatal(err)
		}
		if err := enc2.Write(&b.Points[0]); err != nil {
			t.Fatal(err)
		}
		if err := enc2.Flush(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wire, buf2.Bytes()) {
			t.Fatalf("round trip not byte-exact:\n %x\n %x", wire, buf2.Bytes())
		}
	})
}
