package binrec

// Codec benchmarks, run by `make bench` into BENCH_harvestd.json. Each op
// processes one benchRecords-record dataset, so ns/op is the whole-dataset
// cost; the reported records/sec metric is the per-record throughput the
// ROADMAP's "millions of records per second per core" claim is measured by.

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/lbsim"
	"repro/internal/stats"
)

const benchRecords = 4096

// benchDataset mirrors the netlb ingest shape (the harvestd fold
// benchmarks use the same construction): 2-upstream contexts with
// per-action features.
func benchDataset(n int) core.Dataset {
	r := stats.NewRand(1)
	ds := make(core.Dataset, n)
	for i := range ds {
		conns := []int{r.Intn(8), r.Intn(8)}
		ds[i] = core.Datapoint{
			Context:    lbsim.BuildContext(conns, 0, 1),
			Action:     core.Action(r.Intn(2)),
			Reward:     0.002 + 0.003*r.Float64(),
			Propensity: 0.5,
			Seq:        int64(i),
			Tag:        "bench",
		}
	}
	return ds
}

func BenchmarkBinRecEncode(b *testing.B) {
	ds := benchDataset(benchRecords)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := NewEncoder(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for j := range ds {
			if err := enc.Write(&ds[j]); err != nil {
				b.Fatal(err)
			}
		}
		if err := enc.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchRecords)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkBinRecDecode is the tentpole number: the zero-alloc batch decode
// path over a reused Decoder and Batch. allocs/op must stay 0.
func BenchmarkBinRecDecode(b *testing.B) {
	ds := benchDataset(benchRecords)
	wire := encodeAll(b, ds, 0)
	dec := NewDecoder(bytes.NewReader(wire))
	r := bytes.NewReader(wire)
	var batch Batch
	total := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(wire)
		dec.Reset(r)
		for {
			err := dec.Next(&batch)
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			total += len(batch.Points)
		}
	}
	b.StopTimer()
	if total != b.N*benchRecords {
		b.Fatalf("decoded %d records, want %d", total, b.N*benchRecords)
	}
	b.ReportMetric(float64(benchRecords)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}
