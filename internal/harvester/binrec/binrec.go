// Package binrec implements the compact binary harvest-record format: the
// ⟨x, a, r, p, seq, tag⟩ exploration tuple encoded with varints and fixed
// 64-bit floats, length-prefixed per record, and bundled into CRC-guarded
// segments the way auklet's pack engine bundles small objects — because at
// millions of records per second the per-record overhead (JSON field names,
// reflection, one heap allocation per line) dominates the ingest cost.
//
// Wire layout (all integers unsigned LEB128 varints unless noted, floats
// IEEE-754 little-endian fixed64, Seq zigzag varint):
//
//	stream  := header segment*
//	header  := "HRVB" version(1 byte)
//	segment := 'S' count payloadLen crc32(4 bytes LE, IEEE, of payload) payload
//	payload := record*
//	record  := recLen rest                     // recLen = len(rest) in bytes
//	rest    := K A fixed64(R) fixed64(P) zigzag(Seq)
//	           tagLen tagBytes
//	           xLen fixed64*xLen               // shared features
//	           afRows { rowLen fixed64*rowLen }*afRows
//
// Segments are the append unit: a producer seals and appends whole
// segments, so concatenating two streams minus the second header is a valid
// stream, a torn tail is detected by the length prefix and CRC rather than
// misparsed, and a reader can skip a segment it has already folded. The
// version byte guards the record schema: decoders refuse a version they do
// not speak rather than misread state (same rule as the harvestd snapshot
// codec).
//
// The Decoder reads whole segments into caller-owned pooled buffers
// (Batch): after warm-up the decode hot path performs zero per-record heap
// allocations — feature vectors are carved from a reused arena and tag
// strings are interned. The price is an aliasing rule: every slice in a
// Batch is valid only until the next Next/Reset on that Batch.
package binrec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/core"
)

// Version is the record-schema version this package encodes and decodes.
const Version = 1

// magic identifies a binary harvest-record stream.
const magic = "HRVB"

// headerLen is len(magic) plus the version byte.
const headerLen = len(magic) + 1

// segMarker opens every segment.
const segMarker = 'S'

// MaxSegmentBytes bounds one segment's payload, sharing the repo-wide
// record bound: a corrupt length prefix must not make a decoder allocate
// gigabytes before the CRC check can catch it.
const MaxSegmentBytes = core.MaxRecordBytes

// DefaultSegmentBytes is the encoder's segment-seal threshold. 64 KiB keeps
// segments small enough to stream with low latency in follow mode while
// amortizing the framing overhead over ~1000 records.
const DefaultSegmentBytes = 64 * 1024

// MaxSegmentRecords bounds the record count claimed by one segment header;
// with a record costing at least 2 bytes on the wire, a count beyond the
// payload bound is structurally impossible and rejected early.
const MaxSegmentRecords = MaxSegmentBytes

// An Encoder writes datapoints as binary harvest records, buffering the
// current segment in memory and sealing it to the underlying writer when it
// reaches SegmentBytes (or on Flush). Encoders are not safe for concurrent
// use.
type Encoder struct {
	w   io.Writer
	seg []byte // current segment payload
	rec []byte // per-record scratch, reused
	n   int    // records in the current segment
	tmp [binary.MaxVarintLen64]byte
	// SegmentBytes is the seal threshold (default DefaultSegmentBytes).
	// Adjust before the first Write.
	SegmentBytes int
}

// NewEncoder writes the stream header to w and returns an encoder appending
// segments to it.
func NewEncoder(w io.Writer) (*Encoder, error) {
	hdr := [headerLen]byte{}
	copy(hdr[:], magic)
	hdr[len(magic)] = Version
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("binrec: writing header: %w", err)
	}
	return NewAppendEncoder(w), nil
}

// NewAppendEncoder returns an encoder that writes segments without a stream
// header — for appending to a file that already carries one.
func NewAppendEncoder(w io.Writer) *Encoder {
	return &Encoder{w: w, SegmentBytes: DefaultSegmentBytes}
}

// Write appends one record to the current segment, sealing the segment to
// the underlying writer when it is full.
func (e *Encoder) Write(d *core.Datapoint) error {
	e.rec = e.appendRecordBody(e.rec[:0], d)
	e.seg = e.appendUvarint(e.seg, uint64(len(e.rec)))
	e.seg = append(e.seg, e.rec...)
	e.n++
	if len(e.seg) >= e.SegmentBytes {
		return e.Flush()
	}
	return nil
}

// appendRecordBody serializes d (without the length prefix) onto buf.
func (e *Encoder) appendRecordBody(buf []byte, d *core.Datapoint) []byte {
	buf = e.appendUvarint(buf, uint64(d.Context.NumActions))
	buf = e.appendUvarint(buf, uint64(d.Action))
	buf = e.appendFixed64(buf, d.Reward)
	buf = e.appendFixed64(buf, d.Propensity)
	n := binary.PutVarint(e.tmp[:], d.Seq)
	buf = append(buf, e.tmp[:n]...)
	buf = e.appendUvarint(buf, uint64(len(d.Tag)))
	buf = append(buf, d.Tag...)
	buf = e.appendUvarint(buf, uint64(len(d.Context.Features)))
	for _, v := range d.Context.Features {
		buf = e.appendFixed64(buf, v)
	}
	buf = e.appendUvarint(buf, uint64(len(d.Context.ActionFeatures)))
	for _, row := range d.Context.ActionFeatures {
		buf = e.appendUvarint(buf, uint64(len(row)))
		for _, v := range row {
			buf = e.appendFixed64(buf, v)
		}
	}
	return buf
}

func (e *Encoder) appendUvarint(buf []byte, v uint64) []byte {
	n := binary.PutUvarint(e.tmp[:], v)
	return append(buf, e.tmp[:n]...)
}

func (e *Encoder) appendFixed64(buf []byte, v float64) []byte {
	binary.LittleEndian.PutUint64(e.tmp[:8], math.Float64bits(v))
	return append(buf, e.tmp[:8]...)
}

// Flush seals the current segment (if it holds any records) and writes it
// to the underlying writer. Call once more after the last Write; an
// Encoder left unflushed loses its buffered tail.
func (e *Encoder) Flush() error {
	if e.n == 0 {
		return nil
	}
	if len(e.seg) > MaxSegmentBytes {
		return fmt.Errorf("binrec: segment payload %d bytes exceeds %d (one record larger than the record bound?)",
			len(e.seg), MaxSegmentBytes)
	}
	var hdr []byte
	hdr = append(hdr, segMarker)
	n := binary.PutUvarint(e.tmp[:], uint64(e.n))
	hdr = append(hdr, e.tmp[:n]...)
	n = binary.PutUvarint(e.tmp[:], uint64(len(e.seg)))
	hdr = append(hdr, e.tmp[:n]...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(e.seg))
	hdr = append(hdr, crc[:]...)
	if _, err := e.w.Write(hdr); err != nil {
		return fmt.Errorf("binrec: writing segment header: %w", err)
	}
	if _, err := e.w.Write(e.seg); err != nil {
		return fmt.Errorf("binrec: writing segment payload: %w", err)
	}
	e.seg = e.seg[:0]
	e.n = 0
	return nil
}

// A Batch is the caller-owned buffer set one decoded segment lands in.
// Points (and every Vector hanging off them) alias the batch's internal
// arenas: they are valid until the next Next or Reset call with this batch,
// so fold them (or copy them out) before reusing it. The zero value is
// ready to use; reusing one batch across calls is what makes the decode
// path allocation-free.
type Batch struct {
	// Points holds the decoded records of one segment.
	Points []core.Datapoint

	arena    []float64     // backing store for feature vectors
	arenaOff int           // bump-allocation cursor into arena
	rows     []core.Vector // backing store for ActionFeatures row headers
	rowsOff  int
}

// grabFloats bump-allocates n float64s from the batch arena. When the arena
// is exhausted it is replaced with a larger one: slices carved earlier keep
// referencing the old array, so previously decoded points stay valid.
func (b *Batch) grabFloats(n int) []float64 {
	if n == 0 {
		return nil
	}
	if b.arenaOff+n > cap(b.arena) {
		size := 2 * cap(b.arena)
		if size < n {
			size = n
		}
		if size < 1024 {
			size = 1024
		}
		b.arena = make([]float64, size)
		b.arenaOff = 0
	}
	s := b.arena[b.arenaOff : b.arenaOff+n : b.arenaOff+n]
	b.arenaOff += n
	return s
}

// grabRows bump-allocates n ActionFeatures row headers.
func (b *Batch) grabRows(n int) []core.Vector {
	if n == 0 {
		return nil
	}
	if b.rowsOff+n > cap(b.rows) {
		size := 2 * cap(b.rows)
		if size < n {
			size = n
		}
		if size < 64 {
			size = 64
		}
		b.rows = make([]core.Vector, size)
		b.rowsOff = 0
	}
	s := b.rows[b.rowsOff : b.rowsOff+n : b.rowsOff+n]
	b.rowsOff += n
	return s
}

// Reset empties the batch, keeping its arenas for reuse.
func (b *Batch) Reset() {
	b.Points = b.Points[:0]
	b.arenaOff = 0
	b.rowsOff = 0
}

// A Decoder reads a binary harvest-record stream segment by segment.
// Decoders are not safe for concurrent use.
type Decoder struct {
	br   *bufio.Reader
	seg  []byte            // reused segment payload buffer
	tags map[string]string // tag interning: one allocation per unique tag
	hdr  bool              // stream header consumed
	pos  int64             // bytes consumed, for error context
	segN int               // segments decoded, for error context
	// scratch backs the fixed-width header/crc reads; a local array would
	// escape into the io.ReadFull interface call and allocate per segment.
	scratch [8]byte
}

// NewDecoder returns a decoder reading from r. The stream header is checked
// lazily on the first Next, so a follow-mode tail of a file that does not
// exist yet blocks in the reader rather than failing here.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{br: bufio.NewReaderSize(r, 64*1024)}
}

// Reset redirects the decoder to a new stream, keeping its buffers (and tag
// intern table) for reuse.
func (d *Decoder) Reset(r io.Reader) {
	d.br.Reset(r)
	d.hdr = false
	d.pos = 0
	d.segN = 0
}

// Next decodes the next segment into b (after resetting it). It returns
// io.EOF at a clean end of stream — after the last whole segment, or on an
// entirely empty input. A stream that stops mid-header or mid-segment
// returns an error wrapping io.ErrUnexpectedEOF with the byte offset, so
// callers can distinguish a torn tail from corruption with context.
func (d *Decoder) Next(b *Batch) error {
	b.Reset()
	if !d.hdr {
		if err := d.readHeader(); err != nil {
			return err
		}
	}
	marker, err := d.br.ReadByte()
	if err == io.EOF {
		return io.EOF // clean end: no partial segment
	}
	if err != nil {
		return fmt.Errorf("binrec: offset %d: %w", d.pos, err)
	}
	d.pos++
	if marker != segMarker {
		return fmt.Errorf("binrec: offset %d: bad segment marker 0x%02x", d.pos-1, marker)
	}
	count, err := d.readUvarint()
	if err != nil {
		return fmt.Errorf("binrec: segment %d (offset %d): reading record count: %w", d.segN, d.pos, err)
	}
	if count > MaxSegmentRecords {
		return fmt.Errorf("binrec: segment %d (offset %d): record count %d exceeds %d", d.segN, d.pos, count, MaxSegmentRecords)
	}
	payloadLen, err := d.readUvarint()
	if err != nil {
		return fmt.Errorf("binrec: segment %d (offset %d): reading payload length: %w", d.segN, d.pos, err)
	}
	if payloadLen > MaxSegmentBytes {
		return fmt.Errorf("binrec: segment %d (offset %d): payload %d bytes exceeds %d", d.segN, d.pos, payloadLen, MaxSegmentBytes)
	}
	if _, err := io.ReadFull(d.br, d.scratch[:4]); err != nil {
		return fmt.Errorf("binrec: segment %d (offset %d): reading crc: %w", d.segN, d.pos, noEOF(err))
	}
	d.pos += 4
	wantCRC := binary.LittleEndian.Uint32(d.scratch[:4])
	if cap(d.seg) < int(payloadLen) {
		d.seg = make([]byte, payloadLen)
	}
	d.seg = d.seg[:payloadLen]
	if _, err := io.ReadFull(d.br, d.seg); err != nil {
		return fmt.Errorf("binrec: segment %d (offset %d): reading %d-byte payload: %w", d.segN, d.pos, payloadLen, noEOF(err))
	}
	d.pos += int64(payloadLen)
	if got := crc32.ChecksumIEEE(d.seg); got != wantCRC {
		return fmt.Errorf("binrec: segment %d (offset %d): crc mismatch (got %08x want %08x)", d.segN, d.pos, got, wantCRC)
	}

	rest := d.seg
	for i := uint64(0); i < count; i++ {
		var err error
		rest, err = d.decodeRecord(rest, b)
		if err != nil {
			return fmt.Errorf("binrec: segment %d record %d (offset %d): %w", d.segN, i, d.pos, err)
		}
	}
	if len(rest) != 0 {
		return fmt.Errorf("binrec: segment %d (offset %d): %d trailing payload bytes after %d records", d.segN, d.pos, len(rest), count)
	}
	d.segN++
	return nil
}

// readHeader consumes and checks the stream header. An immediate EOF is a
// clean empty stream.
func (d *Decoder) readHeader() error {
	hdr := d.scratch[:headerLen]
	n, err := io.ReadFull(d.br, hdr)
	if err == io.EOF && n == 0 {
		return io.EOF
	}
	if err != nil {
		return fmt.Errorf("binrec: reading stream header: %w", noEOF(err))
	}
	if string(hdr[:len(magic)]) != magic {
		return fmt.Errorf("binrec: bad magic %q (not a binary harvest-record stream)", hdr[:len(magic)])
	}
	if hdr[len(magic)] != Version {
		return fmt.Errorf("binrec: stream version %d, this decoder speaks %d", hdr[len(magic)], Version)
	}
	d.hdr = true
	d.pos += int64(headerLen)
	return nil
}

// decodeRecord parses one length-prefixed record off the front of rest into
// a new entry of b.Points, returning the remainder.
func (d *Decoder) decodeRecord(rest []byte, b *Batch) ([]byte, error) {
	recLen, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("truncated record length prefix")
	}
	rest = rest[n:]
	if recLen > uint64(len(rest)) {
		return nil, fmt.Errorf("record length %d exceeds %d remaining payload bytes", recLen, len(rest))
	}
	rec, rest := rest[:recLen], rest[recLen:]

	k, rec, err := takeUvarint(rec, "num_actions")
	if err != nil {
		return nil, err
	}
	a, rec, err := takeUvarint(rec, "action")
	if err != nil {
		return nil, err
	}
	reward, rec, err := takeFixed64(rec, "reward")
	if err != nil {
		return nil, err
	}
	prop, rec, err := takeFixed64(rec, "propensity")
	if err != nil {
		return nil, err
	}
	seq, n := binary.Varint(rec)
	if n <= 0 {
		return nil, fmt.Errorf("truncated seq")
	}
	rec = rec[n:]
	tagLen, rec, err := takeUvarint(rec, "tag length")
	if err != nil {
		return nil, err
	}
	if tagLen > uint64(len(rec)) {
		return nil, fmt.Errorf("tag length %d exceeds %d remaining record bytes", tagLen, len(rec))
	}
	tag := ""
	if tagLen > 0 {
		tag = d.internTag(rec[:tagLen])
		rec = rec[tagLen:]
	}
	features, rec, err := d.takeVector(rec, b, "features")
	if err != nil {
		return nil, err
	}
	afRows, rec, err := takeUvarint(rec, "action-feature row count")
	if err != nil {
		return nil, err
	}
	// Each row costs >= 1 byte; an impossible count dies here, not in make.
	if afRows > uint64(len(rec)) {
		return nil, fmt.Errorf("action-feature row count %d exceeds %d remaining record bytes", afRows, len(rec))
	}
	var af []core.Vector
	if afRows > 0 {
		af = b.grabRows(int(afRows))
		for j := range af {
			af[j], rec, err = d.takeVector(rec, b, "action-feature row")
			if err != nil {
				return nil, err
			}
		}
	}
	if len(rec) != 0 {
		return nil, fmt.Errorf("%d trailing bytes in record", len(rec))
	}
	b.Points = append(b.Points, core.Datapoint{
		Context: core.Context{
			Features:       features,
			ActionFeatures: af,
			NumActions:     int(k),
		},
		Action:     core.Action(a),
		Reward:     reward,
		Propensity: prop,
		Seq:        seq,
		Tag:        tag,
	})
	return rest, nil
}

// takeVector decodes a length-prefixed fixed64 vector into the batch arena.
// The length prefix is parsed inline: building a "<what> length" label for
// takeUvarint would concatenate strings on the per-vector hot path.
func (d *Decoder) takeVector(rec []byte, b *Batch, what string) (core.Vector, []byte, error) {
	n, w := binary.Uvarint(rec)
	if w <= 0 {
		return nil, nil, fmt.Errorf("truncated %s length", what)
	}
	rec = rec[w:]
	if n > uint64(len(rec))/8 { // not n*8: a huge n must not overflow the check
		return nil, nil, fmt.Errorf("%s length %d exceeds %d remaining record bytes", what, n, len(rec))
	}
	if n == 0 {
		return nil, rec, nil
	}
	v := b.grabFloats(int(n))
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(rec[i*8:]))
	}
	return v, rec[n*8:], nil
}

// internTag returns the string for a tag's bytes, allocating only the first
// time each distinct tag is seen — the map lookup on a []byte key does not
// allocate, so repeated tags are free on the hot path.
func (d *Decoder) internTag(raw []byte) string {
	if s, ok := d.tags[string(raw)]; ok {
		return s
	}
	if d.tags == nil {
		d.tags = make(map[string]string)
	}
	s := string(raw)
	d.tags[s] = s
	return s
}

// readUvarint reads a varint from the buffered reader, tracking the offset.
func (d *Decoder) readUvarint() (uint64, error) {
	v, err := binary.ReadUvarint(d.br)
	if err != nil {
		return 0, noEOF(err)
	}
	// Track consumed bytes for error context (recompute the varint width).
	n := 1
	for x := v; x >= 0x80; x >>= 7 {
		n++
	}
	d.pos += int64(n)
	return v, nil
}

func takeUvarint(rec []byte, what string) (uint64, []byte, error) {
	v, n := binary.Uvarint(rec)
	if n <= 0 {
		return 0, nil, fmt.Errorf("truncated %s", what)
	}
	return v, rec[n:], nil
}

func takeFixed64(rec []byte, what string) (float64, []byte, error) {
	if len(rec) < 8 {
		return 0, nil, fmt.Errorf("truncated %s", what)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(rec)), rec[8:], nil
}

// noEOF upgrades a bare io.EOF to io.ErrUnexpectedEOF: inside a header or
// segment, running out of bytes is a torn write or truncation, never a
// clean end of stream.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
