package binrec

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

// goldenDataset is a small dataset exercising every field of the record
// schema: typed tags, negative seq, shared and per-action features.
func goldenDataset() core.Dataset {
	return core.Dataset{
		{
			Context:    core.Context{Features: core.Vector{1, 2}, NumActions: 2},
			Action:     1,
			Reward:     0.5,
			Propensity: 0.25,
			Seq:        7,
			Tag:        "t",
		},
		{
			Context: core.Context{
				ActionFeatures: []core.Vector{{1}, {2}, {0.5}},
				NumActions:     3,
			},
			Action:     0,
			Reward:     -1.5,
			Propensity: 1,
			Seq:        -3,
		},
	}
}

func encodeAll(t testing.TB, ds core.Dataset, segmentBytes int) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if segmentBytes > 0 {
		enc.SegmentBytes = segmentBytes
	}
	for i := range ds {
		if err := enc.Write(&ds[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func decodeAll(t testing.TB, wire []byte) core.Dataset {
	t.Helper()
	dec := NewDecoder(bytes.NewReader(wire))
	var out core.Dataset
	var b Batch
	for {
		err := dec.Next(&b)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := range b.Points {
			d := b.Points[i]
			// Deep-copy out of the batch arenas: the batch is reused.
			d.Context.Features = d.Context.Features.Clone()
			if d.Context.ActionFeatures != nil {
				rows := make([]core.Vector, len(d.Context.ActionFeatures))
				for j, row := range d.Context.ActionFeatures {
					rows[j] = row.Clone()
				}
				d.Context.ActionFeatures = rows
			}
			out = append(out, d)
		}
	}
}

// TestGoldenWireBytes pins the v1 wire format byte for byte. If this test
// fails, the format changed: bump Version and teach the decoder both
// schemas instead of silently re-pinning.
func TestGoldenWireBytes(t *testing.T) {
	got := encodeAll(t, goldenDataset(), 0)
	const want = "" +
		// stream header: magic "HRVB", version 1
		"4852564201" +
		// segment: marker 'S', count=2, payloadLen=0x5a, crc32(payload) LE
		"53025a" + "1fb5f141" +
		// record 1: len=0x27, K=2 A=1 R=0.5 P=0.25 zigzag(7)=0x0e tag "t"
		// x=[1,2] afRows=0
		"270201" + "000000000000e03f" + "000000000000d03f" + "0e" + "0174" +
		"02" + "000000000000f03f" + "0000000000000040" + "00" +
		// record 2: len=0x31, K=3 A=0 R=-1.5 P=1 zigzag(-3)=0x05 tag ""
		// x=[] afRows=3: [1],[2],[0.5]
		"310300" + "000000000000f8bf" + "000000000000f03f" + "05" + "00" + "00" +
		"03" + "01000000000000f03f" + "010000000000000040" + "01000000000000e03f"
	if hex.EncodeToString(got) != want {
		t.Fatalf("golden wire bytes drifted:\n got  %s\n want %s", hex.EncodeToString(got), want)
	}
}

// randomDataset fabricates a dataset with the full field variety: shared
// and per-action features, tags from a small set, negative rewards and seqs.
func randomDataset(seed int64, n int) core.Dataset {
	r := stats.NewRand(seed)
	tags := []string{"", "nginx", "cachelog", "sim"}
	ds := make(core.Dataset, n)
	for i := range ds {
		k := 2 + r.Intn(4)
		ctx := core.Context{NumActions: k}
		if r.Float64() < 0.7 {
			x := make(core.Vector, 1+r.Intn(6))
			for j := range x {
				x[j] = r.NormFloat64()
			}
			ctx.Features = x
		}
		if r.Float64() < 0.5 {
			rows := make([]core.Vector, k)
			for a := range rows {
				row := make(core.Vector, 1+r.Intn(4))
				for j := range row {
					row[j] = r.NormFloat64()
				}
				rows[a] = row
			}
			ctx.ActionFeatures = rows
		}
		ds[i] = core.Datapoint{
			Context:    ctx,
			Action:     core.Action(r.Intn(k)),
			Reward:     r.NormFloat64(),
			Propensity: 0.01 + 0.99*r.Float64(),
			Seq:        int64(i) - int64(n/2),
			Tag:        tags[r.Intn(len(tags))],
		}
	}
	return ds
}

// TestRoundTrip50Seeds: encode → decode reproduces the dataset exactly and
// re-encoding the decoded data reproduces the wire bytes exactly, across 50
// seeded datasets and several segment sizes.
func TestRoundTrip50Seeds(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		segBytes := []int{0, 256, 4096}[seed%3]
		ds := randomDataset(seed, 40+int(seed))
		wire := encodeAll(t, ds, segBytes)
		got := decodeAll(t, wire)
		if !reflect.DeepEqual(ds, got) {
			t.Fatalf("seed %d: decoded dataset diverged", seed)
		}
		rewire := encodeAll(t, got, segBytes)
		if !bytes.Equal(wire, rewire) {
			t.Fatalf("seed %d: re-encode not byte-exact (%d vs %d bytes)", seed, len(wire), len(rewire))
		}
	}
}

func TestEmptyStream(t *testing.T) {
	// Entirely empty input: clean EOF (an empty dataset, not corruption).
	dec := NewDecoder(strings.NewReader(""))
	var b Batch
	if err := dec.Next(&b); err != io.EOF {
		t.Fatalf("empty input: got %v, want io.EOF", err)
	}
	// Header-only stream (encoder flushed with no records): also clean.
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	dec = NewDecoder(bytes.NewReader(buf.Bytes()))
	if err := dec.Next(&b); err != io.EOF {
		t.Fatalf("header-only stream: got %v, want io.EOF", err)
	}
}

// TestAppendFraming: segments written by NewAppendEncoder concatenate onto
// an existing stream and decode as one — the append-friendly property a
// log-rotating producer relies on.
func TestAppendFraming(t *testing.T) {
	ds := randomDataset(3, 30)
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := enc.Write(&ds[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	app := NewAppendEncoder(&buf)
	for i := 10; i < len(ds); i++ {
		if err := app.Write(&ds[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := app.Flush(); err != nil {
		t.Fatal(err)
	}
	got := decodeAll(t, buf.Bytes())
	if len(got) != len(ds) {
		t.Fatalf("decoded %d records, want %d", len(got), len(ds))
	}
	if !reflect.DeepEqual(got, ds) {
		t.Fatal("appended stream diverged from source dataset")
	}
}

// TestTruncatedStream: cutting the stream anywhere after the header yields
// either a clean EOF (cut exactly between segments) or an error that names
// the offset — never a silent partial decode of the damaged segment.
func TestTruncatedStream(t *testing.T) {
	ds := randomDataset(7, 25)
	wire := encodeAll(t, ds, 512)
	full := decodeAll(t, wire)
	for cut := headerLen + 1; cut < len(wire); cut += 97 {
		dec := NewDecoder(bytes.NewReader(wire[:cut]))
		var b Batch
		var n int
		var err error
		for {
			if err = dec.Next(&b); err != nil {
				break
			}
			n += len(b.Points)
		}
		if err == io.EOF {
			if n >= len(full) {
				t.Fatalf("cut %d: clean EOF with all %d records from a truncated stream", cut, n)
			}
			continue
		}
		if !strings.Contains(err.Error(), "offset") {
			t.Fatalf("cut %d: error %q carries no offset context", cut, err)
		}
	}
	// A header torn mid-magic is unexpected EOF, not clean.
	dec := NewDecoder(bytes.NewReader(wire[:2]))
	var b Batch
	if err := dec.Next(&b); err == nil || err == io.EOF {
		t.Fatalf("torn header: got %v, want unexpected-EOF error", err)
	}
}

// TestCorruptStream: flipped payload bytes trip the segment CRC; a bad
// magic, version, or marker is refused with a descriptive error.
func TestCorruptStream(t *testing.T) {
	ds := randomDataset(9, 10)
	wire := encodeAll(t, ds, 0)

	flip := append([]byte(nil), wire...)
	flip[len(flip)-3] ^= 0xff // inside the single segment's payload
	dec := NewDecoder(bytes.NewReader(flip))
	var b Batch
	if err := dec.Next(&b); err == nil || !strings.Contains(err.Error(), "crc mismatch") {
		t.Fatalf("payload corruption: got %v, want crc mismatch", err)
	}

	for _, tc := range []struct {
		name string
		mut  func([]byte)
		want string
	}{
		{"magic", func(w []byte) { w[0] = 'X' }, "bad magic"},
		{"version", func(w []byte) { w[4] = 99 }, "version 99"},
		{"marker", func(w []byte) { w[5] = 'Z' }, "bad segment marker"},
	} {
		mut := append([]byte(nil), wire...)
		tc.mut(mut)
		dec := NewDecoder(bytes.NewReader(mut))
		if err := dec.Next(&b); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s corruption: got %v, want %q", tc.name, err, tc.want)
		}
	}
}

// TestOversizeRejected: a record pushing a segment past MaxSegmentBytes is
// refused at encode time, and a forged header claiming an oversized payload
// or impossible record count is refused at decode time before any
// allocation that size.
func TestOversizeRejected(t *testing.T) {
	enc := NewAppendEncoder(io.Discard)
	enc.SegmentBytes = 1 << 62 // never auto-seal: force one giant segment
	huge := core.Datapoint{
		Context:    core.Context{Features: make(core.Vector, MaxSegmentBytes/8+2), NumActions: 2},
		Propensity: 0.5,
	}
	if err := enc.Write(&huge); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized segment: got %v, want exceeds error", err)
	}

	forged := []byte(magic)
	forged = append(forged, Version, segMarker,
		0x01,                         // count = 1
		0xff, 0xff, 0xff, 0xff, 0x7f, // payloadLen far past MaxSegmentBytes
	)
	dec := NewDecoder(bytes.NewReader(forged))
	var b Batch
	if err := dec.Next(&b); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("forged payload length: got %v, want exceeds error", err)
	}
}

// TestDecodeZeroAllocs pins the tentpole property: steady-state decoding
// performs zero per-record heap allocations (arena-carved vectors, interned
// tags, reused segment buffer).
func TestDecodeZeroAllocs(t *testing.T) {
	ds := randomDataset(11, 512)
	for i := range ds {
		ds[i].Tag = "steady" // tag interning: hot path never allocates
	}
	wire := encodeAll(t, ds, 0)
	dec := NewDecoder(bytes.NewReader(wire))
	var b Batch
	r := bytes.NewReader(wire)
	allocs := testing.AllocsPerRun(50, func() {
		r.Reset(wire)
		dec.Reset(r)
		for {
			err := dec.Next(&b)
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs > 0 {
		t.Errorf("decode allocated %.1f times per pass, want 0", allocs)
	}
}

// TestBatchReuseAcrossSizes: a batch shrinks and grows across segments of
// very different shapes without mixing stale state into later decodes.
func TestBatchReuseAcrossSizes(t *testing.T) {
	big := randomDataset(13, 200)
	small := core.Dataset{{
		Context:    core.Context{NumActions: 1},
		Propensity: 1,
	}}
	dec := NewDecoder(bytes.NewReader(encodeAll(t, big, 0)))
	var b Batch
	if err := dec.Next(&b); err != nil {
		t.Fatal(err)
	}
	dec.Reset(bytes.NewReader(encodeAll(t, small, 0)))
	if err := dec.Next(&b); err != nil {
		t.Fatal(err)
	}
	if len(b.Points) != 1 {
		t.Fatalf("got %d points, want 1", len(b.Points))
	}
	got := b.Points[0]
	if got.Context.Features != nil || got.Context.ActionFeatures != nil || got.Tag != "" {
		t.Errorf("stale batch state leaked into fresh decode: %+v", got)
	}
}

// TestErrorContextNamesRecord: a record-level structural error names the
// segment, record index, and offset.
func TestErrorContextNamesRecord(t *testing.T) {
	// Build a valid one-record segment, then lie about the record count.
	ds := goldenDataset()[:1]
	wire := encodeAll(t, ds, 0)
	mut := append([]byte(nil), wire...)
	mut[headerLen+1] = 2 // segment record count 1 → 2 (count is 1 byte here)
	dec := NewDecoder(bytes.NewReader(mut))
	var b Batch
	err := dec.Next(&b)
	if err == nil {
		t.Fatal("want error for forged record count")
	}
	for _, want := range []string{"segment 0", "record 1", "offset"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q should contain %q", err, want)
		}
	}
}

// TestVersionedHeaderConstants guards accidental drift of the constants the
// golden test depends on.
func TestVersionedHeaderConstants(t *testing.T) {
	if magic != "HRVB" || Version != 1 || headerLen != 5 {
		t.Fatalf("header constants drifted: magic=%q version=%d headerLen=%d", magic, Version, headerLen)
	}
	if MaxSegmentBytes != core.MaxRecordBytes {
		t.Fatalf("MaxSegmentBytes %d diverged from core.MaxRecordBytes %d", MaxSegmentBytes, core.MaxRecordBytes)
	}
}

func Example() {
	ds := core.Dataset{{
		Context:    core.Context{Features: core.Vector{3, 1}, NumActions: 2},
		Action:     1,
		Reward:     0.004,
		Propensity: 0.5,
	}}
	var buf bytes.Buffer
	enc, _ := NewEncoder(&buf)
	for i := range ds {
		_ = enc.Write(&ds[i])
	}
	_ = enc.Flush()

	dec := NewDecoder(&buf)
	var b Batch
	for {
		if err := dec.Next(&b); err == io.EOF {
			break
		}
		for i := range b.Points {
			fmt.Printf("a=%d r=%g p=%g\n", b.Points[i].Action, b.Points[i].Reward, b.Points[i].Propensity)
		}
	}
	// Output:
	// a=1 r=0.004 p=0.5
}
