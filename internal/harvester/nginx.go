// Package harvester implements the paper's three-step methodology (§3):
//
//  1. Scavenge logs from an existing (live) system and extract ⟨x, a, r⟩
//     for each request — parsers for Nginx-style access logs (the netlb
//     proxy's format) and cache eviction logs live here.
//  2. Infer the probability p of each decision — either known from code
//     inspection (the log carries it), estimated empirically from action
//     frequencies, or learned by a regression on ⟨x, a⟩ (multinomial
//     logistic regression).
//  3. Evaluate/optimize a policy offline on the resulting ⟨x, a, r, p⟩
//     dataset — glue to the ope and learn packages.
//
// It also implements the paper's look-ahead reward reconstruction for
// caching: "Determining the next time an evicted item is accessed (the
// reward) ... we reconstruct this information during step 1 by looking
// ahead in the logs to when the item next appears."
package harvester

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/lbsim"
)

// AccessEntry is one parsed Nginx-style access-log line from the netlb
// proxy (combined format plus rt=/upstream=/conns=/prop= extensions).
type AccessEntry struct {
	Remote      string
	Time        time.Time
	Method      string
	Path        string
	Proto       string
	Status      int
	Bytes       int64
	UserAgent   string
	RequestTime float64 // seconds
	Upstream    int
	Conns       []int
	Propensity  float64
	// Type is the request class (netlb typed routing), or -1 when the log
	// carries none.
	Type int
}

// nginxRe matches: remote - - [time] "METHOD path PROTO" status bytes "ref" "ua" <extras>
var nginxRe = regexp.MustCompile(
	`^(\S+) - - \[([^\]]+)\] "(\S+) (\S+) (\S+)" (\d{3}) (\d+) "([^"]*)" "([^"]*)"(.*)$`)

// ParseNginxLine parses one access-log line.
func ParseNginxLine(line string) (*AccessEntry, error) {
	m := nginxRe.FindStringSubmatch(line)
	if m == nil {
		return nil, fmt.Errorf("harvester: unrecognized access-log line %q", truncate(line, 120))
	}
	e := &AccessEntry{
		Remote:    m[1],
		Method:    m[3],
		Path:      m[4],
		Proto:     m[5],
		UserAgent: m[9],
		Upstream:  -1,
		Type:      -1,
	}
	ts, err := time.Parse("02/Jan/2006:15:04:05 -0700", m[2])
	if err != nil {
		return nil, fmt.Errorf("harvester: bad timestamp %q: %w", m[2], err)
	}
	e.Time = ts
	e.Status, err = strconv.Atoi(m[6])
	if err != nil {
		return nil, fmt.Errorf("harvester: bad status %q", m[6])
	}
	e.Bytes, err = strconv.ParseInt(m[7], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("harvester: bad bytes %q", m[7])
	}
	// Trailing key=value extras.
	for _, field := range strings.Fields(m[10]) {
		kv := strings.SplitN(field, "=", 2)
		if len(kv) != 2 {
			continue
		}
		switch kv[0] {
		case "rt":
			e.RequestTime, err = strconv.ParseFloat(kv[1], 64)
			if err != nil {
				return nil, fmt.Errorf("harvester: bad rt %q", kv[1])
			}
		case "upstream":
			e.Upstream, err = strconv.Atoi(kv[1])
			if err != nil {
				return nil, fmt.Errorf("harvester: bad upstream %q", kv[1])
			}
		case "conns":
			parts := strings.Split(kv[1], "|")
			e.Conns = make([]int, len(parts))
			for i, p := range parts {
				e.Conns[i], err = strconv.Atoi(p)
				if err != nil {
					return nil, fmt.Errorf("harvester: bad conns %q", kv[1])
				}
			}
		case "prop":
			e.Propensity, err = strconv.ParseFloat(kv[1], 64)
			if err != nil {
				return nil, fmt.Errorf("harvester: bad prop %q", kv[1])
			}
		case "type":
			e.Type, err = strconv.Atoi(kv[1])
			if err != nil {
				return nil, fmt.Errorf("harvester: bad type %q", kv[1])
			}
		}
	}
	return e, nil
}

// ScavengeNginx parses an access log into entries, skipping blank lines.
// A malformed line aborts with its line number — silent data loss would
// bias every downstream estimate.
func ScavengeNginx(r io.Reader) ([]AccessEntry, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, core.ScanBufferSize), core.MaxRecordBytes)
	var out []AccessEntry
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		e, err := ParseNginxLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, *e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("harvester: reading access log: %w", err)
	}
	return out, nil
}

// NginxToDataset converts parsed access entries into exploration data:
// context from the logged per-upstream connection counts, action = the
// upstream choice, reward = request time (a cost), propensity from the log
// (step 2 "known from code inspection": the proxy logs its own
// randomization). Entries with failed requests (non-2xx) or missing fields
// are skipped and counted.
func NginxToDataset(entries []AccessEntry) (core.Dataset, int, error) {
	return NginxToTypedDataset(entries, 1)
}

// NginxToTypedDataset is NginxToDataset for logs with request types
// (netlb's type= field): contexts carry the type one-hot, so contextual
// policies can be trained and evaluated per request class. numTypes <= 1
// ignores types; entries typed out of range are skipped.
func NginxToTypedDataset(entries []AccessEntry, numTypes int) (core.Dataset, int, error) {
	ds := make(core.Dataset, 0, len(entries))
	skipped := 0
	for i := range entries {
		d, ok, err := EntryToTypedDatapoint(&entries[i], numTypes)
		if err != nil {
			return nil, 0, fmt.Errorf("harvester: entry %d %w", i, err)
		}
		if !ok {
			skipped++
			continue
		}
		d.Seq = int64(i)
		ds = append(ds, d)
	}
	return ds, skipped, nil
}

// EntryToTypedDatapoint converts one parsed access entry into an
// exploration datapoint — the per-entry unit both the batch converters above
// and harvestd's streaming NginxSource share, so the two paths cannot drift.
// Failed requests (non-2xx), propensity-free, or type-out-of-range entries
// are skipped (ok=false); an upstream index inconsistent with the logged
// connection vector is an error. The caller assigns Seq.
func EntryToTypedDatapoint(e *AccessEntry, numTypes int) (core.Datapoint, bool, error) {
	if e.Status < 200 || e.Status > 299 || e.Upstream < 0 || len(e.Conns) == 0 || e.Propensity <= 0 {
		return core.Datapoint{}, false, nil
	}
	if e.Upstream >= len(e.Conns) {
		return core.Datapoint{}, false, fmt.Errorf("upstream %d with %d conns", e.Upstream, len(e.Conns))
	}
	reqType := 0
	if numTypes > 1 {
		if e.Type < 0 || e.Type >= numTypes {
			return core.Datapoint{}, false, nil
		}
		reqType = e.Type
	} else {
		numTypes = 1
	}
	return core.Datapoint{
		Context:    lbsim.BuildContext(e.Conns, reqType, numTypes),
		Action:     core.Action(e.Upstream),
		Reward:     e.RequestTime,
		Propensity: e.Propensity,
	}, true, nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
