package harvester

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/cachesim"
	"repro/internal/core"
)

// The cache substrate's on-disk log format, in the spirit of the paper's
// "we added custom logging for this purpose" Redis change. One record per
// line:
//
//	A <time> <key> <size> <hit>                      — an access
//	E <time> <chosen> <propensity> <cand>...         — an eviction
//
// where each <cand> is key:size:lastAccess:frequency:insertedAt. Keys are
// %-quoted by strconv so whitespace and separators cannot corrupt a line.

// WriteCacheLogs serializes access and eviction logs, interleaved by
// timestamp order as the live system would emit them (both inputs are
// already time-ordered; accesses first on ties).
func WriteCacheLogs(w io.Writer, accesses []cachesim.AccessRecord, evictions []cachesim.EvictionRecord) error {
	bw := bufio.NewWriter(w)
	ai, ei := 0, 0
	for ai < len(accesses) || ei < len(evictions) {
		if ei >= len(evictions) || (ai < len(accesses) && accesses[ai].Time <= evictions[ei].Time) {
			a := &accesses[ai]
			hit := 0
			if a.Hit {
				hit = 1
			}
			if _, err := fmt.Fprintf(bw, "A %g %s %d %d\n", a.Time, strconv.Quote(a.Key), a.Size, hit); err != nil {
				return err
			}
			ai++
			continue
		}
		e := &evictions[ei]
		if _, err := fmt.Fprintf(bw, "E %g %d %g", e.Time, e.Chosen, e.Propensity); err != nil {
			return err
		}
		for _, c := range e.Candidates {
			if _, err := fmt.Fprintf(bw, " %s:%d:%g:%d:%g",
				strconv.Quote(c.Key), c.Size, c.LastAccess, c.Frequency, c.InsertedAt); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
		ei++
	}
	return bw.Flush()
}

// ScavengeCacheLogs parses a log written by WriteCacheLogs (or an
// equivalent live system) back into typed records.
func ScavengeCacheLogs(r io.Reader) ([]cachesim.AccessRecord, []cachesim.EvictionRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, core.ScanBufferSize), core.MaxRecordBytes)
	var (
		accesses  []cachesim.AccessRecord
		evictions []cachesim.EvictionRecord
		lineNo    int
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields, err := splitQuoted(line)
		if err != nil {
			return nil, nil, fmt.Errorf("harvester: line %d: %w", lineNo, err)
		}
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "A":
			if len(fields) != 5 {
				return nil, nil, fmt.Errorf("harvester: line %d: access record has %d fields", lineNo, len(fields))
			}
			t, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("harvester: line %d: bad time %q", lineNo, fields[1])
			}
			key, err := strconv.Unquote(fields[2])
			if err != nil {
				return nil, nil, fmt.Errorf("harvester: line %d: bad key %q", lineNo, fields[2])
			}
			size, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("harvester: line %d: bad size %q", lineNo, fields[3])
			}
			accesses = append(accesses, cachesim.AccessRecord{
				Time: t, Key: key, Size: size, Hit: fields[4] == "1",
			})
		case "E":
			if len(fields) < 5 {
				return nil, nil, fmt.Errorf("harvester: line %d: eviction record has %d fields", lineNo, len(fields))
			}
			t, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("harvester: line %d: bad time %q", lineNo, fields[1])
			}
			chosen, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, nil, fmt.Errorf("harvester: line %d: bad chosen %q", lineNo, fields[2])
			}
			p, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("harvester: line %d: bad propensity %q", lineNo, fields[3])
			}
			rec := cachesim.EvictionRecord{Time: t, Chosen: chosen, Propensity: p}
			for _, f := range fields[4:] {
				cand, err := parseCandidate(f)
				if err != nil {
					return nil, nil, fmt.Errorf("harvester: line %d: %w", lineNo, err)
				}
				rec.Candidates = append(rec.Candidates, cand)
			}
			if rec.Chosen < 0 || rec.Chosen >= len(rec.Candidates) {
				return nil, nil, fmt.Errorf("harvester: line %d: chosen %d of %d candidates", lineNo, rec.Chosen, len(rec.Candidates))
			}
			evictions = append(evictions, rec)
		default:
			return nil, nil, fmt.Errorf("harvester: line %d: unknown record type %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("harvester: reading cache log: %w", err)
	}
	return accesses, evictions, nil
}

// splitQuoted splits a line on whitespace, but treats a double-quoted
// segment (strconv.Quote output, possibly followed by :suffix fields) as
// part of a single token — keys may contain spaces.
func splitQuoted(line string) ([]string, error) {
	var fields []string
	i := 0
	n := len(line)
	for i < n {
		for i < n && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= n {
			break
		}
		start := i
		inQuote := false
		for i < n {
			c := line[i]
			if inQuote {
				if c == '\\' {
					i += 2
					continue
				}
				if c == '"' {
					inQuote = false
				}
				i++
				continue
			}
			if c == '"' {
				inQuote = true
				i++
				continue
			}
			if c == ' ' || c == '\t' {
				break
			}
			i++
		}
		if inQuote {
			return nil, fmt.Errorf("unterminated quote in %q", line)
		}
		fields = append(fields, line[start:i])
	}
	return fields, nil
}

// parseCandidate decodes key:size:lastAccess:frequency:insertedAt, where
// key is a Go-quoted string (which may itself contain colons).
func parseCandidate(f string) (cachesim.Candidate, error) {
	// The quoted key ends at the closing quote; find it by unquoting the
	// prefix. Keys are produced by strconv.Quote so they start with '"'.
	if !strings.HasPrefix(f, `"`) {
		return cachesim.Candidate{}, fmt.Errorf("candidate %q: key not quoted", f)
	}
	end := 1
	for end < len(f) {
		if f[end] == '\\' {
			end += 2
			continue
		}
		if f[end] == '"' {
			break
		}
		end++
	}
	if end >= len(f) {
		return cachesim.Candidate{}, fmt.Errorf("candidate %q: unterminated key", f)
	}
	key, err := strconv.Unquote(f[:end+1])
	if err != nil {
		return cachesim.Candidate{}, fmt.Errorf("candidate %q: %v", f, err)
	}
	rest := strings.TrimPrefix(f[end+1:], ":")
	parts := strings.Split(rest, ":")
	if len(parts) != 4 {
		return cachesim.Candidate{}, fmt.Errorf("candidate %q: %d numeric fields, want 4", f, len(parts))
	}
	size, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return cachesim.Candidate{}, fmt.Errorf("candidate %q: bad size", f)
	}
	last, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return cachesim.Candidate{}, fmt.Errorf("candidate %q: bad lastAccess", f)
	}
	freq, err := strconv.Atoi(parts[2])
	if err != nil {
		return cachesim.Candidate{}, fmt.Errorf("candidate %q: bad frequency", f)
	}
	ins, err := strconv.ParseFloat(parts[3], 64)
	if err != nil {
		return cachesim.Candidate{}, fmt.Errorf("candidate %q: bad insertedAt", f)
	}
	return cachesim.Candidate{Key: key, Size: size, LastAccess: last, Frequency: freq, InsertedAt: ins}, nil
}
