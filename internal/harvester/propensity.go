package harvester

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/learn"
)

// PropensityInferrer rewrites the Propensity field of a dataset — step 2 of
// the methodology for logs that did not record decision probabilities.
type PropensityInferrer interface {
	// Infer returns a copy of ds with propensities filled in.
	Infer(ds core.Dataset) (core.Dataset, error)
	// Name identifies the method in experiment output.
	Name() string
}

// KnownPropensity assigns a constant probability — "inferred from code
// inspection" (§3), e.g. 1/K for a uniform-random heuristic over K actions.
type KnownPropensity struct {
	// P is the constant; if zero, 1/NumActions is used per datapoint.
	P float64
}

// Name implements PropensityInferrer.
func (KnownPropensity) Name() string { return "known" }

// Infer implements PropensityInferrer.
func (k KnownPropensity) Infer(ds core.Dataset) (core.Dataset, error) {
	if len(ds) == 0 {
		return nil, core.ErrNoData
	}
	out := make(core.Dataset, len(ds))
	copy(out, ds)
	for i := range out {
		p := k.P
		if p == 0 {
			p = 1 / float64(out[i].Context.NumActions)
		}
		if !(p > 0) || p > 1 {
			return nil, fmt.Errorf("harvester: known propensity %v invalid at %d", p, i)
		}
		out[i].Propensity = p
	}
	return out, nil
}

// EmpiricalPropensity estimates context-free propensities from the action
// frequencies in the log itself — valid when the logging policy ignored
// context (e.g. hash-based routing viewed as random, §2).
type EmpiricalPropensity struct{}

// Name implements PropensityInferrer.
func (EmpiricalPropensity) Name() string { return "empirical" }

// Infer implements PropensityInferrer.
func (EmpiricalPropensity) Infer(ds core.Dataset) (core.Dataset, error) {
	if len(ds) == 0 {
		return nil, core.ErrNoData
	}
	k := 0
	for i := range ds {
		if ds[i].Context.NumActions > k {
			k = ds[i].Context.NumActions
		}
	}
	counts := make([]float64, k)
	for i := range ds {
		a := int(ds[i].Action)
		if a < 0 || a >= k {
			return nil, fmt.Errorf("harvester: action %d out of range at %d", a, i)
		}
		counts[a]++
	}
	// Laplace smoothing keeps unseen actions estimable.
	total := float64(len(ds)) + float64(k)
	freqs := make([]float64, k)
	for a := range counts {
		freqs[a] = (counts[a] + 1) / total
	}
	out := make(core.Dataset, len(ds))
	copy(out, ds)
	for i := range out {
		out[i].Propensity = freqs[out[i].Action]
	}
	return out, nil
}

// LogisticPropensity learns P(a|x) by multinomial logistic regression on
// the logged ⟨x, a⟩ pairs — the paper's "more robust approach is to do a
// regression on the ⟨x, a, r⟩ data to learn the probability distribution
// over actions."
type LogisticPropensity struct {
	// Opts tunes the underlying fit (zero value uses learn defaults).
	Opts learn.MultinomialOptions
	// Floor clips inferred propensities away from zero (default 1e-3) so
	// a confident-but-wrong model cannot produce unbounded weights.
	Floor float64
}

// Name implements PropensityInferrer.
func (LogisticPropensity) Name() string { return "logistic" }

// Infer implements PropensityInferrer.
func (l LogisticPropensity) Infer(ds core.Dataset) (core.Dataset, error) {
	if len(ds) == 0 {
		return nil, core.ErrNoData
	}
	floor := l.Floor
	if floor == 0 {
		floor = 1e-3
	}
	xs := make([]core.Vector, len(ds))
	as := make([]core.Action, len(ds))
	k := 0
	for i := range ds {
		xs[i] = ds[i].Context.Features
		as[i] = ds[i].Action
		if ds[i].Context.NumActions > k {
			k = ds[i].Context.NumActions
		}
	}
	opts := l.Opts
	if opts.NumActions == 0 {
		opts.NumActions = k
	}
	model, err := learn.FitMultinomial(xs, as, opts)
	if err != nil {
		return nil, fmt.Errorf("harvester: propensity regression: %w", err)
	}
	out := make(core.Dataset, len(ds))
	copy(out, ds)
	for i := range out {
		p := model.Probabilities(out[i].Context.Features)[out[i].Action]
		if p < floor {
			p = floor
		}
		if p > 1 {
			p = 1
		}
		out[i].Propensity = p
	}
	return out, nil
}
