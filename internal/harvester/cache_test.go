package harvester

import (
	"errors"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/stats"
)

func TestHarvestEvictionsRewardReconstruction(t *testing.T) {
	evictions := []cachesim.EvictionRecord{
		{
			Time: 10,
			Candidates: []cachesim.Candidate{
				{Key: "a", Size: 1},
				{Key: "b", Size: 2},
			},
			Chosen:     1, // evicted "b"
			Propensity: 0.5,
		},
		{
			Time: 20,
			Candidates: []cachesim.Candidate{
				{Key: "c", Size: 1},
				{Key: "d", Size: 1},
			},
			Chosen:     0, // evicted "c", never accessed again
			Propensity: 0.5,
		},
	}
	accesses := []cachesim.AccessRecord{
		{Time: 5, Key: "b"},
		{Time: 10, Key: "b"}, // same-time access must not count
		{Time: 17, Key: "b"}, // first access after eviction at t=10 → gap 7
		{Time: 25, Key: "d"},
	}
	ds, err := HarvestEvictions(evictions, accesses, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("len = %d", len(ds))
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds[0].Reward != 7 {
		t.Errorf("reward[0] = %v, want 7 (look-ahead gap)", ds[0].Reward)
	}
	if ds[1].Reward != 100 {
		t.Errorf("reward[1] = %v, want horizon 100 (never re-accessed)", ds[1].Reward)
	}
	if ds[0].Action != 1 || ds[1].Action != 0 {
		t.Errorf("actions = %d, %d", ds[0].Action, ds[1].Action)
	}
	if ds[0].Context.NumActions != 2 {
		t.Errorf("context actions = %d", ds[0].Context.NumActions)
	}
}

func TestHarvestEvictionsHorizonCap(t *testing.T) {
	evictions := []cachesim.EvictionRecord{{
		Time:       0,
		Candidates: []cachesim.Candidate{{Key: "x", Size: 1}},
		Chosen:     0,
		Propensity: 1,
	}}
	accesses := []cachesim.AccessRecord{{Time: 500, Key: "x"}}
	ds, err := HarvestEvictions(evictions, accesses, 50)
	if err != nil {
		t.Fatal(err)
	}
	if ds[0].Reward != 50 {
		t.Errorf("reward = %v, want capped at 50", ds[0].Reward)
	}
}

func TestHarvestEvictionsValidation(t *testing.T) {
	if _, err := HarvestEvictions(nil, nil, 10); !errors.Is(err, core.ErrNoData) {
		t.Error("empty should fail")
	}
	recs := []cachesim.EvictionRecord{{
		Candidates: []cachesim.Candidate{{Key: "x"}},
		Chosen:     5,
		Propensity: 1,
	}}
	if _, err := HarvestEvictions(recs, nil, 10); err == nil {
		t.Error("out-of-range chosen should fail")
	}
	recs[0].Chosen = 0
	recs[0].Propensity = 0
	if _, err := HarvestEvictions(recs, nil, 10); err == nil {
		t.Error("zero propensity should fail")
	}
	recs[0].Propensity = 1
	if _, err := HarvestEvictions(recs, nil, 0); err == nil {
		t.Error("zero horizon should fail")
	}
}

// TestEndToEndCacheHarvestAndCB runs the full Table 3 CB pipeline: replay
// the big/small workload under random eviction with logging, harvest
// ⟨x,a,r,p⟩ via look-ahead, train a next-access model, and deploy it as a
// CBEvictor. The learned policy should be in the same band as random (the
// paper's point: greedy CB does NOT beat random here) but must run
// correctly end to end.
func TestEndToEndCacheHarvestAndCB(t *testing.T) {
	w := cachesim.DefaultBigSmall()
	cfg := cachesim.Table3CacheConfig(w)
	c, err := cachesim.New(cfg, cachesim.RandomEvictor{R: stats.NewRand(1)}, stats.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cachesim.Replay(c, w, stats.NewRand(3), 40000); err != nil {
		t.Fatal(err)
	}
	ds, err := HarvestEvictions(c.EvictionLog(), c.AccessLog(), 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) < 1000 {
		t.Fatalf("only %d eviction datapoints harvested", len(ds))
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	model, err := learn.FitRewardModel(ds, learn.FitOptions{Lambda: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	// Deploy the CB evictor online.
	cb, err := cachesim.New(cachesim.Config{MaxBytes: cfg.MaxBytes, SampleSize: cfg.SampleSize},
		cachesim.CBEvictor{Model: model}, stats.NewRand(4))
	if err != nil {
		t.Fatal(err)
	}
	hrCB, err := cachesim.Replay(cb, w, stats.NewRand(5), 40000)
	if err != nil {
		t.Fatal(err)
	}
	hrRandom := c.HitRate()
	// Paper Table 3's qualitative claim: the CB policy does NOT beat
	// random — it greedily keeps the large items without considering the
	// opportunity cost of the space. Our learned model discriminates a
	// little more sharply than the paper's (it lands slightly below
	// random rather than at it; see EXPERIMENTS.md), so the band is
	// asymmetric: no better than random+3, no worse than random−12.
	if hrCB > hrRandom+0.03 {
		t.Errorf("CB hit rate %v should not beat random %v", hrCB, hrRandom)
	}
	if hrCB < hrRandom-0.12 {
		t.Errorf("CB hit rate %v implausibly far below random %v", hrCB, hrRandom)
	}
}
