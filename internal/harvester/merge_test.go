package harvester

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/stats"
)

// TestMergeOrderInsensitive is the property test backing the parallel
// scheduler's sharded-IPS reduction: folding K per-shard estimators into
// one must give the same snapshot regardless of the order the shards are
// merged in. N and match counts are integer sums, so they must be exact;
// the floating-point accumulators (mean, stderr) see a different summation
// order per permutation, so they get a tight relative tolerance.
func TestMergeOrderInsensitive(t *testing.T) {
	r := stats.NewRand(41)
	const shards = 7
	pol := policy.Constant{A: 2}

	// Build one dataset per shard, sizes deliberately ragged.
	data := make([]core.Dataset, shards)
	for s := range data {
		n := 50 + r.Intn(200)
		ds := make(core.Dataset, n)
		for i := range ds {
			ds[i] = core.Datapoint{
				Context:    core.Context{Features: core.Vector{r.Float64()}, NumActions: 5},
				Action:     core.Action(r.Intn(5)),
				Reward:     r.Float64(),
				Propensity: 0.2,
			}
		}
		data[s] = ds
	}
	fold := func(ds core.Dataset) *IncrementalEstimator {
		ie, err := NewIncrementalEstimator(pol)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range ds {
			if err := ie.Add(d); err != nil {
				t.Fatal(err)
			}
		}
		return ie
	}
	mergeInOrder := func(order []int) Snapshot {
		acc := fold(data[order[0]])
		for _, s := range order[1:] {
			if err := acc.Merge(fold(data[s])); err != nil {
				t.Fatal(err)
			}
		}
		return acc.Snapshot()
	}

	identity := make([]int, shards)
	for i := range identity {
		identity[i] = i
	}
	ref := mergeInOrder(identity)
	if ref.N == 0 {
		t.Fatal("reference snapshot folded nothing")
	}

	shuffler := stats.NewRand(42)
	for trial := 0; trial < 20; trial++ {
		order := append([]int(nil), identity...)
		shuffler.Shuffle(len(order), func(i, j int) {
			order[i], order[j] = order[j], order[i]
		})
		got := mergeInOrder(order)
		if got.N != ref.N || got.MatchRate != ref.MatchRate {
			t.Fatalf("order %v: counts differ: %+v vs %+v", order, got, ref)
		}
		if relDiff(got.Mean, ref.Mean) > 1e-9 {
			t.Errorf("order %v: mean %v vs %v", order, got.Mean, ref.Mean)
		}
		if relDiff(got.StdErr, ref.StdErr) > 1e-9 {
			t.Errorf("order %v: stderr %v vs %v", order, got.StdErr, ref.StdErr)
		}
	}
}

// relDiff is |a-b| scaled by the larger magnitude (absolute below 1).
func relDiff(a, b float64) float64 {
	scale := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return math.Abs(a-b) / scale
}
