package harvester

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/ope"
	"repro/internal/stats"
)

// genSkewedLog produces data where the logging policy depends on context:
// P(a=1|x) = sigmoid(3x), so a logistic model can represent it exactly.
// True propensities are recorded so tests can compare inference quality.
func genSkewedLog(seed int64, n int) core.Dataset {
	r := stats.NewRand(seed)
	ds := make(core.Dataset, n)
	for i := range ds {
		x := r.Float64()*2 - 1
		p1 := 1 / (1 + math.Exp(-3*x))
		a := core.Action(0)
		p := 1 - p1
		if r.Float64() < p1 {
			a, p = 1, p1
		}
		reward := 1.0
		if a == 1 {
			reward = 2 + x
		}
		ds[i] = core.Datapoint{
			Context:    core.Context{Features: core.Vector{x}, NumActions: 2},
			Action:     a,
			Reward:     reward,
			Propensity: p,
		}
	}
	return ds
}

func TestKnownPropensity(t *testing.T) {
	ds := genSkewedLog(1, 100)
	out, err := KnownPropensity{P: 0.25}.Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i].Propensity != 0.25 {
			t.Fatalf("propensity = %v", out[i].Propensity)
		}
	}
	// Original untouched.
	if ds[0].Propensity == 0.25 && ds[1].Propensity == 0.25 {
		t.Error("Infer should not mutate input")
	}
	// Zero P → 1/NumActions.
	out, err = KnownPropensity{}.Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Propensity != 0.5 {
		t.Errorf("default propensity = %v, want 0.5", out[0].Propensity)
	}
	if _, err := (KnownPropensity{P: 2}).Infer(ds); err == nil {
		t.Error("P>1 should fail")
	}
	if _, err := (KnownPropensity{}).Infer(nil); !errors.Is(err, core.ErrNoData) {
		t.Error("empty should fail")
	}
}

func TestEmpiricalPropensityMatchesFrequencies(t *testing.T) {
	// Context-free skew: action 1 logged 70% of the time.
	r := stats.NewRand(2)
	ds := make(core.Dataset, 10000)
	for i := range ds {
		a := core.Action(0)
		if r.Float64() < 0.7 {
			a = 1
		}
		ds[i] = core.Datapoint{
			Context: core.Context{Features: core.Vector{1}, NumActions: 2},
			Action:  a,
		}
	}
	out, err := (EmpiricalPropensity{}).Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		want := 0.3
		if out[i].Action == 1 {
			want = 0.7
		}
		if math.Abs(out[i].Propensity-want) > 0.02 {
			t.Fatalf("propensity = %v, want ≈%v", out[i].Propensity, want)
		}
	}
	if _, err := (EmpiricalPropensity{}).Infer(nil); !errors.Is(err, core.ErrNoData) {
		t.Error("empty should fail")
	}
}

func TestEmpiricalPropensityRejectsBadActions(t *testing.T) {
	ds := core.Dataset{{Context: core.Context{NumActions: 2}, Action: -1}}
	if _, err := (EmpiricalPropensity{}).Infer(ds); err == nil {
		t.Error("negative action should fail")
	}
}

func TestLogisticPropensityRecoversContextDependence(t *testing.T) {
	ds := genSkewedLog(3, 12000)
	out, err := (LogisticPropensity{
		Opts: learn.MultinomialOptions{Epochs: 300, LR: 1},
	}).Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	// Check the inferred propensities against the true ones.
	var errAccum stats.Welford
	for i := range out {
		errAccum.Add(math.Abs(out[i].Propensity - ds[i].Propensity))
	}
	if errAccum.Mean() > 0.08 {
		t.Errorf("mean |p̂−p| = %v, want < 0.08", errAccum.Mean())
	}
}

func TestLogisticPropensityFloor(t *testing.T) {
	ds := genSkewedLog(4, 2000)
	out, err := (LogisticPropensity{Floor: 0.05}.Infer(ds))
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i].Propensity < 0.05 || out[i].Propensity > 1 {
			t.Fatalf("propensity %v violates floor/cap", out[i].Propensity)
		}
	}
	if _, err := (LogisticPropensity{}).Infer(nil); !errors.Is(err, core.ErrNoData) {
		t.Error("empty should fail")
	}
}

func TestInferredPropensitiesYieldAccurateIPS(t *testing.T) {
	// The step-2 quality bar: IPS with logistic-inferred propensities
	// should agree with IPS using the true propensities.
	ds := genSkewedLog(5, 20000)
	pol := core.PolicyFunc(func(*core.Context) core.Action { return 1 })
	truth, err := (ope.IPS{}).Estimate(pol, ds)
	if err != nil {
		t.Fatal(err)
	}
	inferred, err := (LogisticPropensity{}).Infer(ds)
	if err != nil {
		t.Fatal(err)
	}
	est, err := (ope.IPS{}).Estimate(pol, inferred)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Value-truth.Value) > 0.1*math.Abs(truth.Value) {
		t.Errorf("inferred-propensity IPS %v vs true-propensity IPS %v", est.Value, truth.Value)
	}
}

func TestInferrerNames(t *testing.T) {
	for _, pair := range []struct{ got, want string }{
		{KnownPropensity{}.Name(), "known"},
		{EmpiricalPropensity{}.Name(), "empirical"},
		{LogisticPropensity{}.Name(), "logistic"},
	} {
		if pair.got != pair.want {
			t.Errorf("name = %q, want %q", pair.got, pair.want)
		}
	}
}
