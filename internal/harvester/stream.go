package harvester

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"reflect"
	"strings"

	"repro/internal/core"
	"repro/internal/lbsim"
)

// StreamNginx parses an access log incrementally, invoking handle for each
// entry as soon as its line is read. Unlike ScavengeNginx it never holds
// the whole log in memory, so it suits tailing a live proxy's log — the
// paper's footnote that "off-policy evaluation may incrementally update;
// it just does not intervene in a live (online) system."
//
// handle returning a non-nil error stops the stream and propagates the
// error. Malformed lines abort with their line number.
func StreamNginx(r io.Reader, handle func(AccessEntry) error) error {
	if handle == nil {
		return fmt.Errorf("harvester: nil stream handler")
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		e, err := ParseNginxLine(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		if err := handle(*e); err != nil {
			return fmt.Errorf("line %d: handler: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("harvester: streaming access log: %w", err)
	}
	return nil
}

// IncrementalEstimator maintains a running ips estimate over a stream of
// harvested datapoints — policy evaluation that updates per log line,
// without storing the data.
type IncrementalEstimator struct {
	policy core.Policy
	n      int
	sum    float64
	sumSq  float64
	match  int
}

// NewIncrementalEstimator evaluates the given candidate policy.
func NewIncrementalEstimator(policy core.Policy) (*IncrementalEstimator, error) {
	if policy == nil {
		return nil, fmt.Errorf("harvester: nil policy")
	}
	return &IncrementalEstimator{policy: policy}, nil
}

// Add folds one datapoint into the estimate.
func (ie *IncrementalEstimator) Add(d core.Datapoint) error {
	if !(d.Propensity > 0) {
		return fmt.Errorf("harvester: datapoint with propensity %v", d.Propensity)
	}
	pi := core.ActionProb(ie.policy, &d.Context, d.Action)
	w := pi / d.Propensity
	term := w * d.Reward
	ie.n++
	ie.sum += term
	ie.sumSq += term * term
	if pi > 0 {
		ie.match++
	}
	return nil
}

// AddEntry folds one parsed access-log entry (2xx only; others are
// skipped and reported via the bool).
func (ie *IncrementalEstimator) AddEntry(e AccessEntry) (bool, error) {
	if e.Status < 200 || e.Status > 299 || e.Upstream < 0 || len(e.Conns) == 0 || e.Propensity <= 0 {
		return false, nil
	}
	if e.Upstream >= len(e.Conns) {
		return false, fmt.Errorf("harvester: upstream %d with %d conns", e.Upstream, len(e.Conns))
	}
	return true, ie.Add(core.Datapoint{
		Context:    lbsim.BuildContext(e.Conns, 0, 1),
		Action:     core.Action(e.Upstream),
		Reward:     e.RequestTime,
		Propensity: e.Propensity,
	})
}

// Estimate returns the current running estimate.
func (ie *IncrementalEstimator) Estimate() (value, stderr float64, n int) {
	if ie.n == 0 {
		return 0, 0, 0
	}
	nf := float64(ie.n)
	mean := ie.sum / nf
	if ie.n < 2 {
		return mean, 0, ie.n
	}
	variance := (ie.sumSq - nf*mean*mean) / (nf - 1)
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance / nf), ie.n
}

// Matches reports how many folded datapoints the candidate matched.
func (ie *IncrementalEstimator) Matches() int { return ie.match }

// Snapshot is a point-in-time view of an IncrementalEstimator: everything a
// caller needs to report or compare estimates without reaching into the
// accumulator's internals.
type Snapshot struct {
	// N counts folded datapoints.
	N int
	// Mean is the running ips estimate; StdErr its standard error.
	Mean   float64
	StdErr float64
	// MatchRate is the fraction of folded datapoints on which the candidate
	// put positive probability — the estimator's effective support.
	MatchRate float64
}

// Snapshot returns the estimator's current state in one call.
func (ie *IncrementalEstimator) Snapshot() Snapshot {
	mean, se, n := ie.Estimate()
	s := Snapshot{N: n, Mean: mean, StdErr: se}
	if n > 0 {
		s.MatchRate = float64(ie.match) / float64(n)
	}
	return s
}

// Merge folds another estimator's accumulated state into ie, enabling the
// sharded design: run one estimator per ingestion worker contention-free,
// then merge shards on read. Both estimators must evaluate the same
// candidate — merging estimates of different policies is meaningless, so
// Merge refuses when the policies differ.
func (ie *IncrementalEstimator) Merge(other *IncrementalEstimator) error {
	if other == nil {
		return fmt.Errorf("harvester: merging nil estimator")
	}
	// Interface != panics on non-comparable dynamic types (e.g. a policy
	// struct holding a slice), so gate the value comparison on comparability.
	ta, tb := reflect.TypeOf(ie.policy), reflect.TypeOf(other.policy)
	if ta != tb || (ta.Comparable() && ie.policy != other.policy) {
		return fmt.Errorf("harvester: merging estimators of different policies")
	}
	ie.n += other.n
	ie.sum += other.sum
	ie.sumSq += other.sumSq
	ie.match += other.match
	return nil
}
