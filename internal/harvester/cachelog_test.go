package harvester

import (
	"bytes"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/stats"
)

func sampleLogs() ([]cachesim.AccessRecord, []cachesim.EvictionRecord) {
	accesses := []cachesim.AccessRecord{
		{Time: 1, Key: "alpha", Size: 10, Hit: false},
		{Time: 2, Key: "beta with space", Size: 20, Hit: true},
		{Time: 4, Key: `colon:and"quote`, Size: 5, Hit: true},
	}
	evictions := []cachesim.EvictionRecord{
		{
			Time: 3,
			Candidates: []cachesim.Candidate{
				{Key: "alpha", Size: 10, LastAccess: 1, Frequency: 2, InsertedAt: 0.5},
				{Key: "beta with space", Size: 20, LastAccess: 2, Frequency: 1, InsertedAt: 1.5},
			},
			Chosen:     1,
			Propensity: 0.5,
		},
	}
	return accesses, evictions
}

func TestCacheLogRoundTrip(t *testing.T) {
	accesses, evictions := sampleLogs()
	var buf bytes.Buffer
	if err := WriteCacheLogs(&buf, accesses, evictions); err != nil {
		t.Fatal(err)
	}
	gotA, gotE, err := ScavengeCacheLogs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(accesses, gotA) {
		t.Errorf("accesses:\n got %+v\nwant %+v", gotA, accesses)
	}
	if !reflect.DeepEqual(evictions, gotE) {
		t.Errorf("evictions:\n got %+v\nwant %+v", gotE, evictions)
	}
}

func TestCacheLogInterleavedByTime(t *testing.T) {
	accesses, evictions := sampleLogs()
	var buf bytes.Buffer
	if err := WriteCacheLogs(&buf, accesses, evictions); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Expected order by time: A(1), A(2), E(3), A(4).
	wantTypes := []byte{'A', 'A', 'E', 'A'}
	if len(lines) != len(wantTypes) {
		t.Fatalf("lines = %d", len(lines))
	}
	for i, l := range lines {
		if l[0] != wantTypes[i] {
			t.Errorf("line %d is %q, want type %c", i, l, wantTypes[i])
		}
	}
}

func TestScavengeCacheLogsMalformed(t *testing.T) {
	cases := []string{
		"X 1 foo",                      // unknown type
		"A 1 \"k\" 10",                 // short access
		"A abc \"k\" 10 1",             // bad time
		"A 1 \"k\" abc 1",              // bad size
		"A 1 nokey 10 1",               // unquoted key still parses? strconv.Unquote fails
		"E 1 0 0.5",                    // eviction without candidates
		"E 1 5 0.5 \"k\":1:0:1:0",      // chosen out of range
		"E 1 0 0.5 \"k\":1:0:1",        // candidate missing field
		"E 1 0 0.5 k:1:0:1:0",          // unquoted candidate key
		"E 1 0 xx \"k\":1:0:1:0",       // bad propensity
		"E 1 0 0.5 \"k\":aa:0:1:0",     // bad candidate size
		`E 1 0 0.5 "unterminated:1:0:`, // unterminated quote
	}
	for _, line := range cases {
		if _, _, err := ScavengeCacheLogs(strings.NewReader(line)); err == nil {
			t.Errorf("line %q should fail", line)
		}
	}
}

func TestScavengeCacheLogsSkipsBlank(t *testing.T) {
	input := "A 1 \"k\" 10 1\n\nA 2 \"k\" 10 0\n"
	a, e, err := ScavengeCacheLogs(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 2 || len(e) != 0 {
		t.Errorf("got %d accesses, %d evictions", len(a), len(e))
	}
}

// TestCacheLogFileBasedPipeline is the full file-based flow: run the cache,
// write its logs to a buffer (the "log file"), scavenge them back, and
// check the harvested dataset matches the in-memory path exactly.
func TestCacheLogFileBasedPipeline(t *testing.T) {
	w := cachesim.DefaultBigSmall()
	cfg := cachesim.Table3CacheConfig(w)
	c, err := cachesim.New(cfg, cachesim.RandomEvictor{R: stats.NewRand(1)}, stats.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cachesim.Replay(c, w, stats.NewRand(3), 8000); err != nil {
		t.Fatal(err)
	}
	var logFile bytes.Buffer
	if err := WriteCacheLogs(&logFile, c.AccessLog(), c.EvictionLog()); err != nil {
		t.Fatal(err)
	}
	accesses, evictions, err := ScavengeCacheLogs(&logFile)
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := HarvestEvictions(evictions, accesses, 2000)
	if err != nil {
		t.Fatal(err)
	}
	inMemory, err := HarvestEvictions(c.EvictionLog(), c.AccessLog(), 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromFile) != len(inMemory) {
		t.Fatalf("file path %d datapoints, memory path %d", len(fromFile), len(inMemory))
	}
	for i := range fromFile {
		if fromFile[i].Reward != inMemory[i].Reward ||
			fromFile[i].Action != inMemory[i].Action ||
			fromFile[i].Propensity != inMemory[i].Propensity {
			t.Fatalf("datapoint %d differs: %+v vs %+v", i, fromFile[i], inMemory[i])
		}
	}
}

// Property: arbitrary keys (including separators and unicode) survive the
// round trip.
func TestCacheLogKeyRoundTripProperty(t *testing.T) {
	f := func(key string, size uint16) bool {
		if key == "" {
			return true
		}
		accesses := []cachesim.AccessRecord{{Time: 1, Key: key, Size: int64(size) + 1, Hit: true}}
		evictions := []cachesim.EvictionRecord{{
			Time:       2,
			Candidates: []cachesim.Candidate{{Key: key, Size: int64(size) + 1, Frequency: 1}},
			Chosen:     0,
			Propensity: 1,
		}}
		var buf bytes.Buffer
		if err := WriteCacheLogs(&buf, accesses, evictions); err != nil {
			return false
		}
		a, e, err := ScavengeCacheLogs(&buf)
		if err != nil {
			return false
		}
		return len(a) == 1 && len(e) == 1 && a[0].Key == key && e[0].Candidates[0].Key == key
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestScavengeCacheLogsOverLimitLine: the cache-log scanner shares the
// repo-wide core.MaxRecordBytes bound and reports an over-limit line as an
// error instead of silently dropping it.
func TestScavengeCacheLogsOverLimitLine(t *testing.T) {
	line := "A 1 " + strconv.Quote(strings.Repeat("k", core.MaxRecordBytes)) + " 10 0\n"
	if _, _, err := ScavengeCacheLogs(strings.NewReader(line)); err == nil {
		t.Fatal("want error for over-limit cache-log line, got nil")
	} else if !strings.Contains(err.Error(), "token too long") {
		t.Errorf("error %q should name the scanner limit", err)
	}
}
