package harvester

import (
	"encoding/json"
	"fmt"
	"math"
)

// EstimatorState is the mergeable wire form of an IncrementalEstimator: the
// raw sufficient statistics rather than the derived Snapshot view. A
// Snapshot (mean, stderr) cannot be merged — two means cannot be combined
// without their underlying sums — so federation ships EstimatorState and
// derives Snapshots after merging. Field names are short for the same
// reason as the core JSONL wire: fleets ship these on every pull.
type EstimatorState struct {
	N     int     `json:"n"`
	Sum   float64 `json:"sum"`
	SumSq float64 `json:"sum_sq"`
	Match int     `json:"match"`
}

// State exports the estimator's sufficient statistics.
func (ie *IncrementalEstimator) State() EstimatorState {
	return EstimatorState{N: ie.n, Sum: ie.sum, SumSq: ie.sumSq, Match: ie.match}
}

// AddState folds a wire-decoded shard state into ie — the over-the-wire
// counterpart of Merge. The caller vouches that the state was accumulated
// for the same candidate policy; the wire form cannot carry the policy
// itself, only its statistics.
func (ie *IncrementalEstimator) AddState(s EstimatorState) error {
	if err := s.Validate(); err != nil {
		return err
	}
	ie.n += s.N
	ie.sum += s.Sum
	ie.sumSq += s.SumSq
	ie.match += s.Match
	return nil
}

// Validate rejects states no estimator could have produced: negative
// counts, match exceeding n, or non-finite sums.
func (s EstimatorState) Validate() error {
	if s.N < 0 || s.Match < 0 || s.Match > s.N {
		return fmt.Errorf("harvester: estimator state with n=%d match=%d", s.N, s.Match)
	}
	if math.IsNaN(s.Sum) || math.IsInf(s.Sum, 0) ||
		math.IsNaN(s.SumSq) || math.IsInf(s.SumSq, 0) || s.SumSq < 0 {
		return fmt.Errorf("harvester: estimator state with non-finite or negative sums")
	}
	return nil
}

// Snapshot derives the reporting view from the wire state, identically to
// IncrementalEstimator.Snapshot over the same statistics.
func (s EstimatorState) Snapshot() Snapshot {
	if s.N == 0 {
		return Snapshot{}
	}
	nf := float64(s.N)
	snap := Snapshot{
		N:         s.N,
		Mean:      s.Sum / nf,
		MatchRate: float64(s.Match) / nf,
	}
	if s.N >= 2 {
		variance := (s.SumSq - nf*snap.Mean*snap.Mean) / (nf - 1)
		if variance < 0 {
			variance = 0
		}
		snap.StdErr = math.Sqrt(variance / nf)
	}
	return snap
}

// MarshalWire encodes the state as compact JSON. Go formats each float as
// the shortest decimal that parses back to the identical float64, so
// MarshalWire→UnmarshalWire is bit-exact (pinned by the round-trip tests).
func (s EstimatorState) MarshalWire() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("encoding: %w", err)
	}
	b, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("harvester: encoding estimator state: %w", err)
	}
	return b, nil
}

// UnmarshalWire decodes and validates one wire state.
func UnmarshalWire(b []byte) (EstimatorState, error) {
	var s EstimatorState
	if err := json.Unmarshal(b, &s); err != nil {
		return EstimatorState{}, fmt.Errorf("harvester: decoding estimator state: %w", err)
	}
	if err := s.Validate(); err != nil {
		return EstimatorState{}, fmt.Errorf("decoding: %w", err)
	}
	return s, nil
}
