package harvester

import (
	"fmt"
	"sort"

	"repro/internal/cachesim"
	"repro/internal/core"
)

// HarvestEvictions joins a cache's eviction log with its access log to
// build exploration data for the caching scenario (Table 1's CB row):
//
//   - context: the sampled candidate set, featurized per candidate
//   - action:  which candidate was evicted
//   - reward:  time until the evicted item was next requested — found by
//     looking ahead in the access log (the paper's reconstruction), capped
//     at horizon when the item never reappears
//   - propensity: recorded at decision time (1/#candidates under random
//     eviction)
//
// A longer time-to-next-access means the eviction was cheap, so reward is
// maximized ([+] in Table 1).
func HarvestEvictions(evictions []cachesim.EvictionRecord, accesses []cachesim.AccessRecord, horizon float64) (core.Dataset, error) {
	if len(evictions) == 0 {
		return nil, core.ErrNoData
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("harvester: horizon %v", horizon)
	}
	// Index access times per key, sorted (the access log is normally
	// already time-ordered, but don't rely on it).
	accessTimes := make(map[string][]float64, len(accesses))
	for i := range accesses {
		a := &accesses[i]
		accessTimes[a.Key] = append(accessTimes[a.Key], a.Time)
	}
	for _, ts := range accessTimes {
		sort.Float64s(ts)
	}

	ds := make(core.Dataset, 0, len(evictions))
	for i := range evictions {
		rec := &evictions[i]
		if rec.Chosen < 0 || rec.Chosen >= len(rec.Candidates) {
			return nil, fmt.Errorf("harvester: eviction %d chose %d of %d", i, rec.Chosen, len(rec.Candidates))
		}
		if !(rec.Propensity > 0) {
			return nil, fmt.Errorf("harvester: eviction %d propensity %v", i, rec.Propensity)
		}
		victim := rec.Candidates[rec.Chosen]
		reward := nextAccessGap(accessTimes[victim.Key], rec.Time, horizon)
		ds = append(ds, core.Datapoint{
			Context:    cachesim.ContextFromCandidates(rec.Candidates, rec.Time),
			Action:     core.Action(rec.Chosen),
			Reward:     reward,
			Propensity: rec.Propensity,
			Seq:        int64(i),
		})
	}
	return ds, nil
}

// nextAccessGap returns min(t_next - evictTime, horizon) where t_next is
// the first access strictly after evictTime, or horizon if none exists.
func nextAccessGap(times []float64, evictTime, horizon float64) float64 {
	idx := sort.SearchFloat64s(times, evictTime)
	// Skip accesses at exactly evictTime (the miss that triggered the
	// eviction shares its timestamp).
	for idx < len(times) && times[idx] <= evictTime {
		idx++
	}
	if idx >= len(times) {
		return horizon
	}
	gap := times[idx] - evictTime
	if gap > horizon {
		return horizon
	}
	return gap
}
