package harvester

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netlb"
	"repro/internal/policy"
	"repro/internal/stats"
)

const sampleLine = `127.0.0.1:54321 - - [06/Jul/2026:10:30:00 +0000] "GET /api/x?q=1 HTTP/1.1" 200 42 "-" "Go-http-client/1.1" rt=0.012345 upstream=1 conns=3|7 prop=0.500000`

func TestParseNginxLine(t *testing.T) {
	e, err := ParseNginxLine(sampleLine)
	if err != nil {
		t.Fatal(err)
	}
	if e.Remote != "127.0.0.1:54321" {
		t.Errorf("remote = %q", e.Remote)
	}
	if e.Method != "GET" || e.Path != "/api/x?q=1" || e.Proto != "HTTP/1.1" {
		t.Errorf("request = %q %q %q", e.Method, e.Path, e.Proto)
	}
	if e.Status != 200 || e.Bytes != 42 {
		t.Errorf("status/bytes = %d/%d", e.Status, e.Bytes)
	}
	if e.RequestTime != 0.012345 {
		t.Errorf("rt = %v", e.RequestTime)
	}
	if e.Upstream != 1 {
		t.Errorf("upstream = %d", e.Upstream)
	}
	if len(e.Conns) != 2 || e.Conns[0] != 3 || e.Conns[1] != 7 {
		t.Errorf("conns = %v", e.Conns)
	}
	if e.Propensity != 0.5 {
		t.Errorf("prop = %v", e.Propensity)
	}
	if e.Time.Year() != 2026 || e.Time.Month() != time.July {
		t.Errorf("time = %v", e.Time)
	}
}

func TestParseNginxLineMalformed(t *testing.T) {
	cases := []string{
		"not a log line",
		`x - - [bad time] "GET / HTTP/1.1" 200 0 "-" "-"`,
		`x - - [06/Jul/2026:10:30:00 +0000] "GET / HTTP/1.1" 200 0 "-" "-" rt=abc`,
		`x - - [06/Jul/2026:10:30:00 +0000] "GET / HTTP/1.1" 200 0 "-" "-" upstream=one`,
		`x - - [06/Jul/2026:10:30:00 +0000] "GET / HTTP/1.1" 200 0 "-" "-" conns=1|x`,
		`x - - [06/Jul/2026:10:30:00 +0000] "GET / HTTP/1.1" 200 0 "-" "-" prop=zero`,
	}
	for _, line := range cases {
		if _, err := ParseNginxLine(line); err == nil {
			t.Errorf("line %q should fail", line)
		}
	}
}

func TestScavengeNginxReportsLineNumbers(t *testing.T) {
	input := sampleLine + "\n\nbroken line\n"
	_, err := ScavengeNginx(strings.NewReader(input))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("err = %v, want line 3", err)
	}
	ok, err := ScavengeNginx(strings.NewReader(sampleLine + "\n" + sampleLine + "\n"))
	if err != nil || len(ok) != 2 {
		t.Errorf("clean log: %d entries, %v", len(ok), err)
	}
}

func TestNginxToDatasetSkipsFailures(t *testing.T) {
	entries, err := ScavengeNginx(strings.NewReader(strings.Join([]string{
		sampleLine,
		strings.Replace(sampleLine, " 200 ", " 502 ", 1),
		strings.Replace(sampleLine, "prop=0.500000", "prop=0.000000", 1),
	}, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	ds, skipped, err := NginxToDataset(entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || skipped != 2 {
		t.Errorf("kept %d skipped %d, want 1/2", len(ds), skipped)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	d := ds[0]
	if d.Action != 1 || d.Reward != 0.012345 || d.Propensity != 0.5 {
		t.Errorf("datapoint = %+v", d)
	}
	if d.Context.NumActions != 2 || d.Context.Features[0] != 3 || d.Context.Features[1] != 7 {
		t.Errorf("context = %+v", d.Context)
	}
}

func TestNginxToDatasetInconsistentUpstream(t *testing.T) {
	line := strings.Replace(sampleLine, "upstream=1", "upstream=9", 1)
	entries, err := ScavengeNginx(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := NginxToDataset(entries); err == nil {
		t.Error("upstream beyond conns length should fail")
	}
}

// TestEndToEndHarvestFromLiveProxy is the §3 pipeline against a real HTTP
// system: run traffic through the netlb proxy with a randomized policy,
// scavenge its access log, and verify the harvested dataset's propensities
// and rewards line up with reality.
func TestEndToEndHarvestFromLiveProxy(t *testing.T) {
	b0, err := netlb.StartBackend(0, 2*time.Millisecond, 300*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	defer b0.Close()
	b1, err := netlb.StartBackend(1, 4*time.Millisecond, 300*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	defer b1.Close()

	var logBuf strings.Builder
	proxy, err := netlb.NewProxy(
		[]string{b0.Addr(), b1.Addr()},
		policy.UniformRandom{R: stats.NewRand(1)},
		stats.NewRand(2),
		&logBuf,
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proxy.Start(); err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	const n = 60
	for i := 0; i < n; i++ {
		resp, err := http.Get(proxy.URL() + "/harvest-me")
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	entries, err := ScavengeNginx(strings.NewReader(logBuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	ds, skipped, err := NginxToDataset(entries)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(ds) != n {
		t.Fatalf("harvested %d (skipped %d), want %d", len(ds), skipped, n)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	slow, fast := 0.0, 0.0
	nSlow, nFast := 0, 0
	for i := range ds {
		if ds[i].Propensity != 0.5 {
			t.Fatalf("propensity = %v", ds[i].Propensity)
		}
		if ds[i].Reward <= 0 {
			t.Fatalf("request time = %v", ds[i].Reward)
		}
		if ds[i].Action == 0 {
			fast += ds[i].Reward
			nFast++
		} else {
			slow += ds[i].Reward
			nSlow++
		}
	}
	if nFast == 0 || nSlow == 0 {
		t.Fatal("random routing should hit both upstreams")
	}
	// Backend 1 is configured 2ms slower; harvested rewards must show it.
	if slow/float64(nSlow) <= fast/float64(nFast) {
		t.Errorf("harvested mean latencies: upstream1 %v should exceed upstream0 %v",
			slow/float64(nSlow), fast/float64(nFast))
	}
}

// TestScavengeNginxOverLimitLine: a line longer than the repo-wide
// core.MaxRecordBytes record bound is an explicit error (bufio.ErrTooLong
// surfaced), never a silent skip.
func TestScavengeNginxOverLimitLine(t *testing.T) {
	line := strings.Repeat("a", core.MaxRecordBytes+1) + "\n"
	if _, err := ScavengeNginx(strings.NewReader(line)); err == nil {
		t.Fatal("want error for over-limit access-log line, got nil")
	} else if !strings.Contains(err.Error(), "token too long") {
		t.Errorf("error %q should name the scanner limit", err)
	}
}
