package harvester

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cachesim"
)

// FuzzParseNginxLine checks the access-log parser never panics and that
// entries it accepts carry sane fields.
func FuzzParseNginxLine(f *testing.F) {
	f.Add(sampleLine)
	f.Add(`x - - [06/Jul/2026:10:30:00 +0000] "GET / HTTP/1.1" 200 0 "-" "-"`)
	f.Add(`x - - [06/Jul/2026:10:30:00 +0000] "GET / HTTP/1.1" 200 0 "-" "-" rt=1 upstream=0 conns=1 prop=1`)
	f.Add("")
	f.Add(`" - - [bad`)
	f.Fuzz(func(t *testing.T, line string) {
		e, err := ParseNginxLine(line)
		if err != nil {
			return
		}
		if e.Status < 0 || e.Bytes < 0 {
			t.Fatalf("accepted entry with negative fields: %+v", e)
		}
	})
}

// FuzzCacheLogRoundTrip checks arbitrary keys and numeric fields survive
// the cache-log wire format.
func FuzzCacheLogRoundTrip(f *testing.F) {
	f.Add("key", int64(10), 2.5, 3, 0.5)
	f.Add("key with space", int64(1), 0.0, 1, 1.0)
	f.Add(`colon:quote"back\slash`, int64(7), 1.25, 2, 0.25)
	f.Add("", int64(5), 1.0, 1, 0.5)
	f.Fuzz(func(t *testing.T, key string, size int64, last float64, freq int, prop float64) {
		if key == "" || size <= 0 || freq < 0 || !(prop > 0) || prop > 1 ||
			last != last || last < 0 || last > 1e12 {
			return // outside the producer's contract
		}
		evictions := []cachesim.EvictionRecord{{
			Time: last,
			Candidates: []cachesim.Candidate{{
				Key: key, Size: size, LastAccess: last, Frequency: freq, InsertedAt: last,
			}},
			Chosen:     0,
			Propensity: prop,
		}}
		accesses := []cachesim.AccessRecord{{Time: last, Key: key, Size: size, Hit: true}}
		var buf bytes.Buffer
		if err := WriteCacheLogs(&buf, accesses, evictions); err != nil {
			t.Fatalf("write failed: %v", err)
		}
		gotA, gotE, err := ScavengeCacheLogs(&buf)
		if err != nil {
			t.Fatalf("round trip rejected its own output %q: %v", buf.String(), err)
		}
		if len(gotA) != 1 || len(gotE) != 1 {
			t.Fatalf("lost records: %d/%d", len(gotA), len(gotE))
		}
		if gotA[0].Key != key || gotE[0].Candidates[0].Key != key {
			t.Fatalf("key corrupted: %q vs %q", gotA[0].Key, key)
		}
		if gotE[0].Candidates[0].Size != size || gotE[0].Candidates[0].Frequency != freq {
			t.Fatalf("numeric fields corrupted: %+v", gotE[0].Candidates[0])
		}
	})
}

// FuzzScavengeCacheLogs checks the parser never panics on arbitrary text.
func FuzzScavengeCacheLogs(f *testing.F) {
	f.Add("A 1 \"k\" 10 1\nE 2 0 0.5 \"k\":10:1:2:0\n")
	f.Add("E 1 0")
	f.Add("A")
	f.Add(strings.Repeat("A 1 \"k\" 10 1\n", 50))
	f.Fuzz(func(t *testing.T, input string) {
		_, _, _ = ScavengeCacheLogs(strings.NewReader(input))
	})
}
