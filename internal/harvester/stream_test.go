package harvester

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lbsim"
	"repro/internal/ope"
	"repro/internal/policy"
	"repro/internal/stats"
)

func TestStreamNginxDeliversEntries(t *testing.T) {
	input := sampleLine + "\n" + sampleLine + "\n"
	var got []AccessEntry
	err := StreamNginx(strings.NewReader(input), func(e AccessEntry) error {
		got = append(got, e)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Upstream != 1 {
		t.Errorf("streamed %d entries: %+v", len(got), got)
	}
}

func TestStreamNginxStopsOnHandlerError(t *testing.T) {
	boom := errors.New("boom")
	input := sampleLine + "\n" + sampleLine + "\n"
	calls := 0
	err := StreamNginx(strings.NewReader(input), func(AccessEntry) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
	if calls != 1 {
		t.Errorf("handler called %d times after error", calls)
	}
}

func TestStreamNginxValidation(t *testing.T) {
	if err := StreamNginx(strings.NewReader(""), nil); err == nil {
		t.Error("nil handler should fail")
	}
	if err := StreamNginx(strings.NewReader("garbage"), func(AccessEntry) error { return nil }); err == nil {
		t.Error("malformed line should fail")
	}
}

func TestIncrementalEstimatorMatchesBatchIPS(t *testing.T) {
	// The streaming estimate must agree with ope.IPS on the same data.
	r := stats.NewRand(1)
	ds := make(core.Dataset, 5000)
	for i := range ds {
		conns := []int{r.Intn(10), r.Intn(10)}
		a := core.Action(r.Intn(2))
		ds[i] = core.Datapoint{
			Context:    lbsim.BuildContext(conns, 0, 1),
			Action:     a,
			Reward:     0.1 + 0.01*float64(conns[a]),
			Propensity: 0.5,
		}
	}
	pol := lbsim.LeastLoaded{}
	batch, err := (ope.IPS{}).Estimate(pol, ds)
	if err != nil {
		t.Fatal(err)
	}
	ie, err := NewIncrementalEstimator(pol)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds {
		if err := ie.Add(ds[i]); err != nil {
			t.Fatal(err)
		}
	}
	v, se, n := ie.Estimate()
	if n != len(ds) {
		t.Fatalf("n = %d", n)
	}
	if math.Abs(v-batch.Value) > 1e-9 {
		t.Errorf("incremental %v != batch %v", v, batch.Value)
	}
	if math.Abs(se-batch.StdErr) > 1e-9 {
		t.Errorf("incremental se %v != batch %v", se, batch.StdErr)
	}
	if ie.Matches() != batch.Matches {
		t.Errorf("matches %d != %d", ie.Matches(), batch.Matches)
	}
}

func TestIncrementalEstimatorFromStream(t *testing.T) {
	// Full streaming path: log lines → entries → running estimate.
	input := strings.Join([]string{
		sampleLine, // upstream=1, rt=0.012345, conns 3|7, prop 0.5
		strings.Replace(sampleLine, "upstream=1", "upstream=0", 1),
		strings.Replace(sampleLine, " 200 ", " 502 ", 1), // skipped
	}, "\n")
	ie, err := NewIncrementalEstimator(policy.Constant{A: 0})
	if err != nil {
		t.Fatal(err)
	}
	kept := 0
	err = StreamNginx(strings.NewReader(input), func(e AccessEntry) error {
		ok, err := ie.AddEntry(e)
		if ok {
			kept++
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if kept != 2 {
		t.Fatalf("kept %d entries, want 2", kept)
	}
	v, _, n := ie.Estimate()
	if n != 2 {
		t.Fatalf("n = %d", n)
	}
	// Only the upstream=0 line matches Constant{0}: value = (0 + 2*0.012345)/2.
	want := 0.012345
	if math.Abs(v-want) > 1e-9 {
		t.Errorf("estimate = %v, want %v", v, want)
	}
}

func TestStreamNginxLongLine(t *testing.T) {
	// A line longer than the scanner's initial 64 KiB buffer must still
	// parse (the buffer grows up to the 8 MiB cap). Bulk up the user-agent
	// field — paths and UAs in real logs can be pathological.
	longUA := strings.Repeat("x", 200*1024)
	line := strings.Replace(sampleLine, `"Go-http-client/1.1"`, `"`+longUA+`"`, 1)
	if len(line) <= 64*1024 {
		t.Fatalf("test line only %d bytes, want > 64 KiB", len(line))
	}
	var got []AccessEntry
	err := StreamNginx(strings.NewReader(line+"\n"+sampleLine+"\n"), func(e AccessEntry) error {
		got = append(got, e)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("streamed %d entries, want 2", len(got))
	}
	if got[0].UserAgent != longUA {
		t.Errorf("long user-agent truncated to %d bytes", len(got[0].UserAgent))
	}
}

func TestStreamNginxLineOverCap(t *testing.T) {
	// Beyond the 8 MiB cap the scanner must fail loudly, not truncate.
	huge := strings.Replace(sampleLine, `"Go-http-client/1.1"`, `"`+strings.Repeat("y", 9*1024*1024)+`"`, 1)
	err := StreamNginx(strings.NewReader(huge+"\n"), func(AccessEntry) error { return nil })
	if err == nil {
		t.Fatal("9 MiB line should exceed the buffer cap")
	}
}

func TestStreamNginxCRLF(t *testing.T) {
	// Windows-style \r\n endings must not corrupt the trailing field.
	input := sampleLine + "\r\n" + sampleLine + "\r\n"
	var got []AccessEntry
	err := StreamNginx(strings.NewReader(input), func(e AccessEntry) error {
		got = append(got, e)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("streamed %d entries, want 2", len(got))
	}
	if got[1].Propensity != 0.5 {
		t.Errorf("trailing prop field corrupted by CR: %+v", got[1])
	}
}

func TestStreamNginxHandlerErrorMidStreamLineNumber(t *testing.T) {
	boom := errors.New("boom")
	input := sampleLine + "\n\n" + sampleLine + "\n" + sampleLine + "\n"
	calls := 0
	err := StreamNginx(strings.NewReader(input), func(AccessEntry) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The second entry sits on line 3 (a blank line intervenes); the error
	// must carry the physical line number, not the entry index.
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error should name physical line 3: %v", err)
	}
}

func TestIncrementalEstimatorSnapshot(t *testing.T) {
	ie, err := NewIncrementalEstimator(policy.Constant{A: 0})
	if err != nil {
		t.Fatal(err)
	}
	if s := ie.Snapshot(); s.N != 0 || s.Mean != 0 || s.StdErr != 0 || s.MatchRate != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
	ctx := lbsim.BuildContext([]int{1, 2}, 0, 1)
	for i, a := range []core.Action{0, 1, 0, 0} {
		d := core.Datapoint{Context: ctx, Action: a, Reward: float64(i), Propensity: 0.5}
		if err := ie.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	s := ie.Snapshot()
	v, se, n := ie.Estimate()
	if s.N != n || s.Mean != v || s.StdErr != se {
		t.Errorf("snapshot %+v disagrees with Estimate (%v, %v, %d)", s, v, se, n)
	}
	if s.MatchRate != 0.75 {
		t.Errorf("match rate = %v, want 0.75", s.MatchRate)
	}
}

func TestIncrementalEstimatorMerge(t *testing.T) {
	// Sharded-then-merged must equal single-stream: split one dataset over
	// two estimators and merge.
	r := stats.NewRand(7)
	pol := lbsim.LeastLoaded{}
	whole, err := NewIncrementalEstimator(pol)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]*IncrementalEstimator, 2)
	for i := range shards {
		if shards[i], err = NewIncrementalEstimator(pol); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i++ {
		conns := []int{r.Intn(10), r.Intn(10)}
		a := core.Action(r.Intn(2))
		d := core.Datapoint{
			Context:    lbsim.BuildContext(conns, 0, 1),
			Action:     a,
			Reward:     0.1 + 0.01*float64(conns[a]),
			Propensity: 0.5,
		}
		if err := whole.Add(d); err != nil {
			t.Fatal(err)
		}
		if err := shards[i%2].Add(d); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := NewIncrementalEstimator(pol)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range shards {
		if err := merged.Merge(sh); err != nil {
			t.Fatal(err)
		}
	}
	ws, ms := whole.Snapshot(), merged.Snapshot()
	if ws.N != ms.N || math.Abs(ws.Mean-ms.Mean) > 1e-12 ||
		math.Abs(ws.StdErr-ms.StdErr) > 1e-12 || ws.MatchRate != ms.MatchRate {
		t.Errorf("merged %+v != whole %+v", ms, ws)
	}
}

func TestIncrementalEstimatorMergeValidation(t *testing.T) {
	a, _ := NewIncrementalEstimator(policy.Constant{A: 0})
	if err := a.Merge(nil); err == nil {
		t.Error("nil merge should fail")
	}
	b, _ := NewIncrementalEstimator(policy.Constant{A: 1})
	if err := a.Merge(b); err == nil {
		t.Error("different policies should refuse to merge")
	}
	// Non-comparable policy types must not panic — same policy merges.
	lin := &policy.Linear{Weights: []core.Vector{{1}}}
	c, _ := NewIncrementalEstimator(lin)
	d, _ := NewIncrementalEstimator(lin)
	if err := c.Merge(d); err != nil {
		t.Errorf("same pointer policy should merge: %v", err)
	}
}

func TestIncrementalEstimatorValidation(t *testing.T) {
	if _, err := NewIncrementalEstimator(nil); err == nil {
		t.Error("nil policy should fail")
	}
	ie, _ := NewIncrementalEstimator(policy.Constant{A: 0})
	if err := ie.Add(core.Datapoint{Context: core.Context{NumActions: 2}, Propensity: 0}); err == nil {
		t.Error("zero propensity should fail")
	}
	if v, se, n := ie.Estimate(); v != 0 || se != 0 || n != 0 {
		t.Error("empty estimator should report zeros")
	}
	bad := AccessEntry{Status: 200, Upstream: 5, Conns: []int{1, 2}, Propensity: 0.5, RequestTime: 0.1}
	if _, err := ie.AddEntry(bad); err == nil {
		t.Error("inconsistent upstream should fail")
	}
}
