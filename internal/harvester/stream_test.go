package harvester

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lbsim"
	"repro/internal/ope"
	"repro/internal/policy"
	"repro/internal/stats"
)

func TestStreamNginxDeliversEntries(t *testing.T) {
	input := sampleLine + "\n" + sampleLine + "\n"
	var got []AccessEntry
	err := StreamNginx(strings.NewReader(input), func(e AccessEntry) error {
		got = append(got, e)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Upstream != 1 {
		t.Errorf("streamed %d entries: %+v", len(got), got)
	}
}

func TestStreamNginxStopsOnHandlerError(t *testing.T) {
	boom := errors.New("boom")
	input := sampleLine + "\n" + sampleLine + "\n"
	calls := 0
	err := StreamNginx(strings.NewReader(input), func(AccessEntry) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
	if calls != 1 {
		t.Errorf("handler called %d times after error", calls)
	}
}

func TestStreamNginxValidation(t *testing.T) {
	if err := StreamNginx(strings.NewReader(""), nil); err == nil {
		t.Error("nil handler should fail")
	}
	if err := StreamNginx(strings.NewReader("garbage"), func(AccessEntry) error { return nil }); err == nil {
		t.Error("malformed line should fail")
	}
}

func TestIncrementalEstimatorMatchesBatchIPS(t *testing.T) {
	// The streaming estimate must agree with ope.IPS on the same data.
	r := stats.NewRand(1)
	ds := make(core.Dataset, 5000)
	for i := range ds {
		conns := []int{r.Intn(10), r.Intn(10)}
		a := core.Action(r.Intn(2))
		ds[i] = core.Datapoint{
			Context:    lbsim.BuildContext(conns, 0, 1),
			Action:     a,
			Reward:     0.1 + 0.01*float64(conns[a]),
			Propensity: 0.5,
		}
	}
	pol := lbsim.LeastLoaded{}
	batch, err := (ope.IPS{}).Estimate(pol, ds)
	if err != nil {
		t.Fatal(err)
	}
	ie, err := NewIncrementalEstimator(pol)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds {
		if err := ie.Add(ds[i]); err != nil {
			t.Fatal(err)
		}
	}
	v, se, n := ie.Estimate()
	if n != len(ds) {
		t.Fatalf("n = %d", n)
	}
	if math.Abs(v-batch.Value) > 1e-9 {
		t.Errorf("incremental %v != batch %v", v, batch.Value)
	}
	if math.Abs(se-batch.StdErr) > 1e-9 {
		t.Errorf("incremental se %v != batch %v", se, batch.StdErr)
	}
	if ie.Matches() != batch.Matches {
		t.Errorf("matches %d != %d", ie.Matches(), batch.Matches)
	}
}

func TestIncrementalEstimatorFromStream(t *testing.T) {
	// Full streaming path: log lines → entries → running estimate.
	input := strings.Join([]string{
		sampleLine, // upstream=1, rt=0.012345, conns 3|7, prop 0.5
		strings.Replace(sampleLine, "upstream=1", "upstream=0", 1),
		strings.Replace(sampleLine, " 200 ", " 502 ", 1), // skipped
	}, "\n")
	ie, err := NewIncrementalEstimator(policy.Constant{A: 0})
	if err != nil {
		t.Fatal(err)
	}
	kept := 0
	err = StreamNginx(strings.NewReader(input), func(e AccessEntry) error {
		ok, err := ie.AddEntry(e)
		if ok {
			kept++
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if kept != 2 {
		t.Fatalf("kept %d entries, want 2", kept)
	}
	v, _, n := ie.Estimate()
	if n != 2 {
		t.Fatalf("n = %d", n)
	}
	// Only the upstream=0 line matches Constant{0}: value = (0 + 2*0.012345)/2.
	want := 0.012345
	if math.Abs(v-want) > 1e-9 {
		t.Errorf("estimate = %v, want %v", v, want)
	}
}

func TestIncrementalEstimatorValidation(t *testing.T) {
	if _, err := NewIncrementalEstimator(nil); err == nil {
		t.Error("nil policy should fail")
	}
	ie, _ := NewIncrementalEstimator(policy.Constant{A: 0})
	if err := ie.Add(core.Datapoint{Context: core.Context{NumActions: 2}, Propensity: 0}); err == nil {
		t.Error("zero propensity should fail")
	}
	if v, se, n := ie.Estimate(); v != 0 || se != 0 || n != 0 {
		t.Error("empty estimator should report zeros")
	}
	bad := AccessEntry{Status: 200, Upstream: 5, Conns: []int{1, 2}, Propensity: 0.5, RequestTime: 0.1}
	if _, err := ie.AddEntry(bad); err == nil {
		t.Error("inconsistent upstream should fail")
	}
}
