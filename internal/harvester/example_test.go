package harvester_test

import (
	"fmt"
	"strings"

	"repro/internal/harvester"
	"repro/internal/ope"
	"repro/internal/policy"
)

// ExampleScavengeNginx walks the three steps of §3 on two access-log
// lines: scavenge ⟨x, a, r⟩, take p from the log (known from code
// inspection), and evaluate a candidate policy offline.
func ExampleScavengeNginx() {
	log := `10.0.0.1:1 - - [06/Jul/2026:10:00:00 +0000] "GET /a HTTP/1.1" 200 10 "-" "-" rt=0.100000 upstream=0 conns=2|5 prop=0.500000
10.0.0.1:2 - - [06/Jul/2026:10:00:01 +0000] "GET /b HTTP/1.1" 200 10 "-" "-" rt=0.300000 upstream=1 conns=2|5 prop=0.500000
`
	entries, err := harvester.ScavengeNginx(strings.NewReader(log))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ds, skipped, err := harvester.NginxToDataset(entries)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("harvested %d datapoints (%d skipped)\n", len(ds), skipped)

	// Candidate: always route to upstream 0. Only the first logged line
	// matches, weighted by 1/p = 2.
	est, err := (ope.IPS{}).Estimate(policy.Constant{A: 0}, ds)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("ips estimate of send-to-0: %.2fs\n", est.Value)
	// Output:
	// harvested 2 datapoints (0 skipped)
	// ips estimate of send-to-0: 0.10s
}
