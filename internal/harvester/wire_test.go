package harvester

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/lbsim"
	"repro/internal/policy"
	"repro/internal/stats"
)

// wireDatapoints fabricates n valid exploration datapoints.
func wireDatapoints(n int, seed int64) []core.Datapoint {
	r := stats.NewRand(seed)
	ds := make([]core.Datapoint, n)
	for i := range ds {
		conns := []int{r.Intn(8), r.Intn(8)}
		ds[i] = core.Datapoint{
			Context:    lbsim.BuildContext(conns, 0, 1),
			Action:     core.Action(r.Intn(2)),
			Reward:     0.002 + 0.003*r.Float64(),
			Propensity: 0.5,
		}
	}
	return ds
}

// TestEstimatorStateRoundTripExact: State → wire bytes → AddState into a
// fresh estimator must reproduce the original's statistics bit-for-bit, so
// Snapshot() over the wire path equals Snapshot() in-process.
func TestEstimatorStateRoundTripExact(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		ie, err := NewIncrementalEstimator(policy.UniformRandom{})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range wireDatapoints(300, seed) {
			if err := ie.Add(d); err != nil {
				t.Fatal(err)
			}
		}
		b, err := ie.State().MarshalWire()
		if err != nil {
			t.Fatalf("seed %d: marshal: %v", seed, err)
		}
		dec, err := UnmarshalWire(b)
		if err != nil {
			t.Fatalf("seed %d: unmarshal: %v", seed, err)
		}
		orig := ie.State()
		if dec.N != orig.N || dec.Match != orig.Match ||
			math.Float64bits(dec.Sum) != math.Float64bits(orig.Sum) ||
			math.Float64bits(dec.SumSq) != math.Float64bits(orig.SumSq) {
			t.Fatalf("seed %d: state not bit-identical: %+v vs %+v", seed, dec, orig)
		}
		fresh, err := NewIncrementalEstimator(policy.UniformRandom{})
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.AddState(dec); err != nil {
			t.Fatal(err)
		}
		if fresh.Snapshot() != ie.Snapshot() {
			t.Fatalf("seed %d: snapshot diverged: %+v vs %+v", seed, fresh.Snapshot(), ie.Snapshot())
		}
		// The wire view derives the same snapshot without an estimator at all.
		if dec.Snapshot() != ie.Snapshot() {
			t.Fatalf("seed %d: EstimatorState.Snapshot diverged: %+v vs %+v",
				seed, dec.Snapshot(), ie.Snapshot())
		}
	}
}

// TestAddStateMatchesMerge: folding a wire state equals merging the live
// estimator it came from.
func TestAddStateMatchesMerge(t *testing.T) {
	mk := func(seed int64) *IncrementalEstimator {
		ie, err := NewIncrementalEstimator(policy.UniformRandom{})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range wireDatapoints(200, seed) {
			if err := ie.Add(d); err != nil {
				t.Fatal(err)
			}
		}
		return ie
	}
	a, b := mk(1), mk(2)

	viaMerge := mk(1)
	if err := viaMerge.Merge(b); err != nil {
		t.Fatal(err)
	}
	viaWire := a
	if err := viaWire.AddState(b.State()); err != nil {
		t.Fatal(err)
	}
	ms, ws := viaMerge.State(), viaWire.State()
	if ms.N != ws.N || ms.Match != ws.Match ||
		math.Float64bits(ms.Sum) != math.Float64bits(ws.Sum) ||
		math.Float64bits(ms.SumSq) != math.Float64bits(ws.SumSq) {
		t.Fatalf("AddState diverged from Merge: %+v vs %+v", ws, ms)
	}
}

// TestEstimatorStateValidate rejects impossible and non-finite states on
// both wire directions.
func TestEstimatorStateValidate(t *testing.T) {
	bad := []EstimatorState{
		{N: -1},
		{N: 1, Match: 2},
		{N: 1, Match: -1},
		{N: 1, Sum: math.NaN()},
		{N: 1, Sum: math.Inf(1)},
		{N: 1, SumSq: math.Inf(-1)},
		{N: 1, SumSq: -0.5},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v): expected error", s)
		}
		if _, err := s.MarshalWire(); err == nil {
			t.Errorf("MarshalWire(%+v): expected error", s)
		}
		ie, err := NewIncrementalEstimator(policy.UniformRandom{})
		if err != nil {
			t.Fatal(err)
		}
		if err := ie.AddState(s); err == nil {
			t.Errorf("AddState(%+v): expected error", s)
		}
		if ie.State() != (EstimatorState{}) {
			t.Errorf("rejected AddState(%+v) still mutated the estimator", s)
		}
	}
	if _, err := UnmarshalWire([]byte(`{"n":1,"match":2}`)); err == nil {
		t.Error("UnmarshalWire accepted match > n")
	}
	if _, err := UnmarshalWire([]byte(`not json`)); err == nil {
		t.Error("UnmarshalWire accepted garbage")
	}
}

// TestEstimatorStateGoldenBytes pins the wire schema.
func TestEstimatorStateGoldenBytes(t *testing.T) {
	b, err := EstimatorState{N: 3, Sum: 1.5, SumSq: 0.75, Match: 2}.MarshalWire()
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"n":3,"sum":1.5,"sum_sq":0.75,"match":2}`
	if string(b) != want {
		t.Fatalf("wire bytes drifted:\n got  %s\n want %s", b, want)
	}
}
