package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/harvestd"
)

// ShardFreshness is one shard's row in the fleet freshness view: the
// shard's own watermark report aged by how long ago the aggregator pulled
// it. Sequence watermarks are -1 when unknown.
type ShardFreshness struct {
	Name string `json:"name"`
	// Live mirrors the merged-estimates membership: the shard's snapshot is
	// inside the staleness window.
	Live         bool  `json:"live"`
	WatermarkSeq int64 `json:"watermark_seq"`
	// WatermarkAgeSeconds is the shard-reported estimator age plus the age
	// of the report itself — the aggregator's honest view of how old the
	// shard's last fold is right now (-1 unknown).
	WatermarkAgeSeconds float64 `json:"watermark_age_seconds"`
	Behind              int64   `json:"behind"`
	QueueDepth          int     `json:"queue_depth"`
	// ReportAgeSeconds is the time since the freshness report was pulled
	// (-1: the shard never delivered one).
	ReportAgeSeconds float64 `json:"report_age_seconds"`
}

// FleetFreshness is the aggregator's /freshness payload: the per-shard
// watermark rows merged into the fleet's pipeline freshness. WatermarkSeq
// is the min across live shards (the fleet-wide estimate provably reflects
// every shard's records up to it), WatermarkAgeSeconds the max (the
// worst-case estimator age rolloutd gates on), Behind the total backlog.
// The version tracks harvestd.FreshnessVersion: the fleet view is a merge
// of shard reports, so its schema moves with theirs. The top-level
// watermark_age_seconds/behind pair deliberately matches harvestd's
// FreshnessReport, so a consumer can gate on either tier's payload.
type FleetFreshness struct {
	Version             int              `json:"version"`
	TimeUnixMilli       int64            `json:"time_unix_milli"`
	WatermarkSeq        int64            `json:"watermark_seq"`
	WatermarkAgeSeconds float64          `json:"watermark_age_seconds"`
	Behind              int64            `json:"behind"`
	LiveShards          int              `json:"live_shards"`
	TotalShards         int              `json:"total_shards"`
	Shards              []ShardFreshness `json:"shards"`
}

// fetchFreshness performs one GET {base}/freshness. A 404 reports (nil,
// nil): the shard predates the endpoint, and freshness merging is strictly
// additive over the snapshot pull.
func fetchFreshness(ctx context.Context, client *http.Client, base string) (*harvestd.FreshnessReport, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/freshness", nil)
	if err != nil {
		return nil, fmt.Errorf("fleet: building freshness request: %w", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }() // read-only response body
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: %s/freshness: HTTP %d", base, resp.StatusCode)
	}
	var rep harvestd.FreshnessReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, fmt.Errorf("fleet: decoding freshness: %w", err)
	}
	if rep.Version != harvestd.FreshnessVersion {
		return nil, fmt.Errorf("fleet: freshness version %d, want %d", rep.Version, harvestd.FreshnessVersion)
	}
	return &rep, nil
}

// Freshness merges the current per-shard watermark reports into the fleet
// view. Shards render in the canonical sorted-name order, so the payload
// is a pure function of the report set.
func (a *Aggregator) Freshness() FleetFreshness {
	now := a.cfg.Clock.Now()
	out := FleetFreshness{
		Version:             harvestd.FreshnessVersion,
		TimeUnixMilli:       now.UnixMilli(),
		WatermarkSeq:        -1,
		WatermarkAgeSeconds: -1,
		TotalShards:         len(a.shards),
		Shards:              make([]ShardFreshness, 0, len(a.shards)),
	}
	for _, st := range a.shards {
		st.mu.Lock()
		rep := st.fresh
		freshAt := st.freshAt
		lastSuccess := st.lastSuccess
		snap := st.snap
		st.mu.Unlock()
		row := ShardFreshness{
			Name:                st.shard.Name,
			WatermarkSeq:        -1,
			WatermarkAgeSeconds: -1,
			ReportAgeSeconds:    -1,
		}
		row.Live = snap != nil &&
			(a.cfg.StaleAfter <= 0 || now.Sub(lastSuccess) <= a.cfg.StaleAfter)
		if rep != nil {
			row.WatermarkSeq = rep.WatermarkSeq
			row.Behind = rep.Behind
			row.QueueDepth = rep.QueueDepth
			row.ReportAgeSeconds = now.Sub(freshAt).Seconds()
			if rep.WatermarkAgeSeconds >= 0 {
				row.WatermarkAgeSeconds = rep.WatermarkAgeSeconds + row.ReportAgeSeconds
			}
		}
		if row.Live {
			out.LiveShards++
			if rep != nil {
				if row.WatermarkSeq >= 0 &&
					(out.WatermarkSeq < 0 || row.WatermarkSeq < out.WatermarkSeq) {
					out.WatermarkSeq = row.WatermarkSeq
				}
				if row.WatermarkAgeSeconds > out.WatermarkAgeSeconds {
					out.WatermarkAgeSeconds = row.WatermarkAgeSeconds
				}
				out.Behind += row.Behind
			}
		}
		out.Shards = append(out.Shards, row)
	}
	return out
}
