package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/harvestd"
)

// handler builds the aggregator's stdlib-only HTTP API:
//
//	GET  /healthz     liveness + uptime + live/total shard counts
//	GET  /estimates   fleet-wide per-policy IPS/clipped/SNIPS estimates from
//	                  the merged shard state — the same shape (and, for the
//	                  same merged state, the same bytes) as one harvestd's
//	                  /estimates (?policy=name filters, ?delta=0.01
//	                  overrides confidence)
//	GET  /diagnostics fleet estimator health: per-shard liveness/staleness
//	                  plus merged per-policy ESS, weight tails, clip and
//	                  floor fractions
//	GET  /freshness   fleet pipeline watermarks: per-shard watermark rows
//	                  merged into min-watermark / max-age / total-backlog
//	                  (see FleetFreshness), for rolloutd and fleetwatch
//	GET  /shards      per-shard pull status rows
//	GET  /route?key=K the shard owning an ingest-source key (consistent-
//	                  hash routing as a service: producers ask the
//	                  aggregator where to send)
//	GET  /metrics     Prometheus text: per-shard liveness/staleness/pull
//	                  counters and merged per-policy estimator gauges
//	POST /pull        force an immediate synchronous pull of every shard
//	POST /checkpoint  force a checkpoint now
func (a *Aggregator) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", a.handleHealthz)
	mux.HandleFunc("/estimates", a.handleEstimates)
	mux.HandleFunc("/diagnostics", a.handleDiagnostics)
	mux.HandleFunc("/freshness", a.handleFreshness)
	mux.HandleFunc("/shards", a.handleShards)
	mux.HandleFunc("/route", a.handleRoute)
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/pull", a.handlePull)
	mux.HandleFunc("/checkpoint", a.handleCheckpoint)
	return mux
}

func (a *Aggregator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	v := a.View()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	uptime := a.cfg.Clock.Now().Sub(a.start)
	fmt.Fprintf(w, "ok uptime=%s shards=%d/%d\n",
		uptime.Round(time.Millisecond), v.LiveShards, v.TotalShards)
}

func (a *Aggregator) handleEstimates(w http.ResponseWriter, r *http.Request) {
	delta := a.cfg.Delta
	if s := r.URL.Query().Get("delta"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 || v >= 1 {
			http.Error(w, fmt.Sprintf("bad delta %q", s), http.StatusBadRequest)
			return
		}
		delta = v
	}
	view := a.View()
	if name := r.URL.Query().Get("policy"); name != "" {
		acc, ok := view.Merged[name]
		if !ok {
			http.Error(w, fmt.Sprintf("unknown policy %q", name), http.StatusNotFound)
			return
		}
		writeJSON(w, acc.Estimate(name, delta))
		return
	}
	writeJSON(w, view.Estimates(delta))
}

// fleetDiagnostics is the /diagnostics payload: shard health, the merged
// pipeline counters, and the merged per-policy estimator-health rows.
type fleetDiagnostics struct {
	UptimeSeconds    float64                      `json:"uptime_seconds"`
	Delta            float64                      `json:"delta"`
	PullIntervalSecs float64                      `json:"pull_interval_seconds"`
	PullTimeoutSecs  float64                      `json:"pull_timeout_seconds"`
	StaleAfterSecs   float64                      `json:"stale_after_seconds"`
	TotalShards      int                          `json:"total_shards"`
	LiveShards       int                          `json:"live_shards"`
	Clip             float64                      `json:"clip"`
	PropensityFloor  float64                      `json:"propensity_floor"`
	EvalPanics       int64                        `json:"eval_panics"`
	Counters         harvestd.SnapshotCounters    `json:"counters"`
	Shards           []ShardStatus                `json:"shards"`
	Policies         []harvestd.PolicyDiagnostics `json:"policies"`
}

func (a *Aggregator) handleDiagnostics(w http.ResponseWriter, r *http.Request) {
	v := a.View()
	writeJSON(w, fleetDiagnostics{
		UptimeSeconds:    a.cfg.Clock.Now().Sub(a.start).Seconds(),
		Delta:            a.cfg.Delta,
		PullIntervalSecs: a.cfg.PullInterval.Seconds(),
		PullTimeoutSecs:  a.cfg.PullTimeout.Seconds(),
		StaleAfterSecs:   a.cfg.StaleAfter.Seconds(),
		TotalShards:      v.TotalShards,
		LiveShards:       v.LiveShards,
		Clip:             v.Clip,
		PropensityFloor:  v.Floor,
		EvalPanics:       v.EvalPanics,
		Counters:         v.Counters,
		Shards:           v.Shards,
		Policies:         v.Diagnostics(),
	})
}

func (a *Aggregator) handleFreshness(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, a.Freshness())
}

func (a *Aggregator) handleShards(w http.ResponseWriter, r *http.Request) {
	v := a.View()
	writeJSON(w, v.Shards)
}

// routeReply is the /route payload.
type routeReply struct {
	Key   string `json:"key"`
	Shard string `json:"shard"`
	URL   string `json:"url"`
}

func (a *Aggregator) handleRoute(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		http.Error(w, "missing ?key=", http.StatusBadRequest)
		return
	}
	name := a.router.Assign(key)
	url := ""
	for _, st := range a.shards {
		if st.shard.Name == name {
			url = st.shard.URL
			break
		}
	}
	writeJSON(w, routeReply{Key: key, Shard: name, URL: url})
}

func (a *Aggregator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	a.updatePolicyMetrics()
	a.obsReg.Handler().ServeHTTP(w, r)
}

func (a *Aggregator) handlePull(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	err := a.PullAll(r.Context())
	v := a.View()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err != nil {
		fmt.Fprintf(w, "pulled with errors (%v): shards=%d/%d\n", err, v.LiveShards, v.TotalShards)
		return
	}
	fmt.Fprintf(w, "pulled: shards=%d/%d\n", v.LiveShards, v.TotalShards)
}

func (a *Aggregator) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if a.cfg.CheckpointPath == "" {
		http.Error(w, "checkpointing disabled", http.StatusConflict)
		return
	}
	if err := a.Checkpoint(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "checkpointed to %s\n", a.cfg.CheckpointPath)
}

// writeJSON matches harvestd's encoder settings exactly, so the merged
// /estimates of a fleet and the /estimates of an equivalent single daemon
// are comparable byte-for-byte.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}
