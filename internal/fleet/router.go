// Package fleet federates N harvestd shards behind an aggregation tier:
// a deterministic consistent-hash router assigns ingest sources to shards,
// and an Aggregator periodically pulls each shard's /snapshot, merges the
// order-insensitive estimator state, and serves fleet-wide estimates,
// diagnostics, and metrics from the merged view — the fan-in aggregation
// shape of cosi-style protocol trees, flattened to one tier because the
// estimator state is a few KB per shard.
//
//	sources ──router──▶ shard harvestd₁..N (own logs, checkpoints, /snapshot)
//	                         │pull (HTTP, timeout+backoff, stale window)
//	          aggregator ◀───┘
//	          /estimates /diagnostics /metrics /shards /route ◀── merged state
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Router deterministically assigns ingest-source keys to shards by
// rendezvous (highest-random-weight) hashing: every key scores every shard
// and goes to the highest score. Two properties matter for a fleet:
//
//   - Determinism: the assignment is a pure function of (key, shard set),
//     independent of configuration order — every router with the same shard
//     list routes identically, so producers and operators agree without
//     coordination.
//   - Minimal movement: adding a shard moves only the keys the new shard
//     wins; removing one moves only its own keys. No ring to rebalance.
type Router struct {
	shards []string // sorted, unique
}

// NewRouter builds a router over the given shard names. Names must be
// non-empty and unique; order does not matter (the router sorts).
func NewRouter(shards []string) (*Router, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("fleet: router needs at least one shard")
	}
	sorted := append([]string(nil), shards...)
	sort.Strings(sorted)
	for i, s := range sorted {
		if s == "" {
			return nil, fmt.Errorf("fleet: empty shard name")
		}
		if i > 0 && sorted[i-1] == s {
			return nil, fmt.Errorf("fleet: duplicate shard %q", s)
		}
	}
	return &Router{shards: sorted}, nil
}

// Shards returns the shard names in canonical (sorted) order.
func (r *Router) Shards() []string {
	return append([]string(nil), r.shards...)
}

// Assign returns the shard owning the key.
func (r *Router) Assign(key string) string {
	return r.shards[r.AssignIndex(key)]
}

// AssignIndex returns the owning shard's index into Shards(). Ties on the
// 64-bit score break toward the lexicographically smaller shard name, so
// the choice stays deterministic even in the astronomically unlikely
// collision case.
func (r *Router) AssignIndex(key string) int {
	best := 0
	bestScore := rendezvousScore(r.shards[0], key)
	for i := 1; i < len(r.shards); i++ {
		if s := rendezvousScore(r.shards[i], key); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// Partition groups keys by owning shard; every configured shard appears in
// the result (possibly with no keys), so callers can iterate the full fleet.
func (r *Router) Partition(keys []string) map[string][]string {
	out := make(map[string][]string, len(r.shards))
	for _, s := range r.shards {
		out[s] = nil
	}
	for _, k := range keys {
		s := r.Assign(k)
		out[s] = append(out[s], k)
	}
	return out
}

// rendezvousScore hashes the (shard, key) pair with FNV-1a/64. A NUL
// separator keeps ("ab","c") and ("a","bc") from colliding.
func rendezvousScore(shard, key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(shard))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(key))
	return h.Sum64()
}
