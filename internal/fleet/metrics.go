package fleet

import (
	"repro/internal/harvestd"
	"repro/internal/obs"
)

// Metric help strings shared between registration and scrape-time updates
// (the obs registry enforces that help text never changes for a name).
const (
	helpShardUp        = "1 when the shard's last snapshot is inside the staleness window"
	helpShardStaleness = "seconds since the shard's last successful snapshot pull (-1 never)"
	helpShardSeq       = "last snapshot sequence number delivered by the shard"
	helpShardN         = "datapoints folded per the shard's last snapshot"
	helpPolicyN        = "datapoints folded into the policy's merged fleet estimators"
	helpPolicyMean     = "fleet-wide off-policy point estimate"
	helpPolicyStderr   = "standard error of the fleet-wide estimate"
	helpPolicyESS      = "fleet-wide Kish effective sample size (sum w)^2 / sum w^2"
	helpPolicyESSFrac  = "fleet-wide effective sample size as a fraction of n"
	helpPolicyClipFrac = "fleet-wide fraction of datapoints whose weight hit the clip cap"
)

// initMetrics builds the aggregator's obs registry. Per-shard series are
// registered up front (the fleet membership is fixed for the aggregator's
// lifetime) as scrape-time readers over the shard states; merged per-policy
// series are refreshed per scrape in updatePolicyMetrics.
func (a *Aggregator) initMetrics() {
	r := obs.NewRegistry()
	r.GaugeFunc("harvestagg_uptime_seconds", "seconds since the aggregator started", func() float64 {
		return a.cfg.Clock.Now().Sub(a.start).Seconds()
	})
	r.GaugeFunc("harvestagg_shards", "configured fleet shards", func() float64 {
		return float64(len(a.shards))
	})
	r.GaugeFunc("harvestagg_shards_live", "shards inside the staleness window", func() float64 {
		v := a.View()
		return float64(v.LiveShards)
	})
	r.GaugeFunc("harvestagg_merged_n", "datapoints folded across live shards", func() float64 {
		v := a.View()
		return float64(v.Counters.Folded)
	})
	r.CounterFunc("harvestagg_checkpoints_total", "successful checkpoint writes", a.checkpoints.Load)
	r.GaugeFunc("harvestagg_watermark_seq", "min across live shards of the folded-record sequence watermark (-1 unknown)", func() float64 {
		return float64(a.Freshness().WatermarkSeq)
	})
	r.GaugeFunc("harvestagg_watermark_age_seconds", "max across live shards of the effective estimator age (-1 unknown)", func() float64 {
		return a.Freshness().WatermarkAgeSeconds
	})
	r.GaugeFunc("harvestagg_freshness_behind", "records enqueued but not yet folded, across live shards", func() float64 {
		return float64(a.Freshness().Behind)
	})
	for _, st := range a.shards {
		st := st
		labels := []string{"shard", st.shard.Name}
		r.GaugeFunc("harvestagg_shard_up", helpShardUp, func() float64 {
			now := a.cfg.Clock.Now()
			st.mu.Lock()
			defer st.mu.Unlock()
			if st.snap == nil {
				return 0
			}
			if a.cfg.StaleAfter > 0 && now.Sub(st.lastSuccess) > a.cfg.StaleAfter {
				return 0
			}
			return 1
		}, labels...)
		r.GaugeFunc("harvestagg_shard_staleness_seconds", helpShardStaleness, func() float64 {
			now := a.cfg.Clock.Now()
			st.mu.Lock()
			defer st.mu.Unlock()
			if st.lastSuccess.IsZero() {
				return -1
			}
			return now.Sub(st.lastSuccess).Seconds()
		}, labels...)
		r.GaugeFunc("harvestagg_shard_snapshot_seq", helpShardSeq, func() float64 {
			st.mu.Lock()
			defer st.mu.Unlock()
			if st.snap == nil {
				return 0
			}
			return float64(st.snap.Seq)
		}, labels...)
		r.GaugeFunc("harvestagg_shard_snapshot_n", helpShardN, func() float64 {
			st.mu.Lock()
			defer st.mu.Unlock()
			if st.snap == nil {
				return 0
			}
			return float64(st.snap.Counters.Folded)
		}, labels...)
		r.CounterFunc("harvestagg_shard_pulls_total", "snapshot pulls attempted", st.pulls.Load, labels...)
		r.CounterFunc("harvestagg_shard_pull_errors_total", "snapshot pulls failed", st.pullErrors.Load, labels...)
		r.CounterFunc("harvestagg_shard_restarts_total", "snapshot sequence regressions (shard restarts)", st.restarts.Load, labels...)
	}
	obs.RegisterGoRuntime(r)
	a.obsReg = r
}

// updatePolicyMetrics refreshes the merged per-policy gauges from the
// current fleet view. Called at scrape time, so the pull loops pay nothing.
func (a *Aggregator) updatePolicyMetrics() {
	v := a.View()
	r := a.obsReg
	for _, pe := range v.Estimates(a.cfg.Delta) {
		r.Gauge("harvestagg_policy_n", helpPolicyN, "policy", pe.Policy).Set(float64(pe.N))
		for _, est := range []struct {
			name string
			ev   harvestd.EstimatorValue
		}{
			{"ips", pe.IPS},
			{"clipped_ips", pe.ClippedIPS},
			{"snips", pe.SNIPS},
		} {
			labels := []string{"policy", pe.Policy, "estimator", est.name}
			r.Gauge("harvestagg_policy_mean", helpPolicyMean, labels...).Set(est.ev.Value)
			r.Gauge("harvestagg_policy_stderr", helpPolicyStderr, labels...).Set(est.ev.StdErr)
		}
	}
	for _, dg := range v.Diagnostics() {
		r.Gauge("harvestagg_policy_ess", helpPolicyESS, "policy", dg.Policy).Set(dg.ESS)
		r.Gauge("harvestagg_policy_ess_fraction", helpPolicyESSFrac, "policy", dg.Policy).Set(dg.ESSFraction)
		r.Gauge("harvestagg_policy_clip_fraction", helpPolicyClipFrac, "policy", dg.Policy).Set(dg.ClipFraction)
	}
}
