package fleet

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/harvestd"
	"repro/internal/obs"
	"repro/internal/stats"
)

// testAccum folds n pseudo-random datapoints into one accumulator.
func testAccum(seed int64, n int) harvestd.Accum {
	r := stats.NewRand(seed)
	var a harvestd.Accum
	for i := 0; i < n; i++ {
		pi := r.Float64()
		p := 0.1 + 0.9*r.Float64()
		a.Fold(pi, p, -1+2*r.Float64(), 3.0, harvestd.DefaultPropensityFloor)
	}
	return a
}

// testSnap builds a shard snapshot over the standard two-policy set.
func testSnap(shardID string, seq, seed int64, n int) *harvestd.StateSnapshot {
	return &harvestd.StateSnapshot{
		Version: harvestd.SnapshotVersion,
		ShardID: shardID,
		Seq:     seq,
		Clip:    3.0,
		Floor:   harvestd.DefaultPropensityFloor,
		Counters: harvestd.SnapshotCounters{
			Lines: int64(n), Ingested: int64(n), Folded: int64(n),
		},
		Policies: map[string]harvestd.Accum{
			"uniform":     testAccum(seed, n),
			"leastloaded": testAccum(seed+100, n),
		},
	}
}

// snapServer serves /snapshot from a swappable snapshot; set failWith to a
// non-zero HTTP status to simulate a broken shard.
type snapServer struct {
	mu       sync.Mutex
	snap     *harvestd.StateSnapshot
	failWith int
	srv      *httptest.Server
}

func newSnapServer(t *testing.T, snap *harvestd.StateSnapshot) *snapServer {
	t.Helper()
	ss := &snapServer{snap: snap}
	ss.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/snapshot" {
			http.NotFound(w, r)
			return
		}
		ss.mu.Lock()
		snap, fail := ss.snap, ss.failWith
		ss.mu.Unlock()
		if fail != 0 {
			http.Error(w, "shard unhappy", fail)
			return
		}
		if err := harvestd.EncodeSnapshot(w, snap); err != nil {
			t.Errorf("snapServer encode: %v", err)
		}
	}))
	t.Cleanup(ss.srv.Close)
	return ss
}

func (ss *snapServer) set(snap *harvestd.StateSnapshot) {
	ss.mu.Lock()
	ss.snap = snap
	ss.mu.Unlock()
}

func (ss *snapServer) fail(status int) {
	ss.mu.Lock()
	ss.failWith = status
	ss.mu.Unlock()
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New with no shards: expected error")
	}
	if _, err := New(Config{Shards: []Shard{{Name: "a"}}}); err == nil {
		t.Error("New with URL-less shard: expected error")
	}
	if _, err := New(Config{Shards: []Shard{
		{Name: "a", URL: "http://x"}, {Name: "a", URL: "http://y"},
	}}); err == nil {
		t.Error("New with duplicate shard names: expected error")
	}
}

func TestAggregatorPullAndMergedView(t *testing.T) {
	s1 := newSnapServer(t, testSnap("shard-a", 1, 10, 200))
	s2 := newSnapServer(t, testSnap("shard-b", 1, 20, 300))
	clk := &obs.FixedClock{T: time.Unix(1700000000, 0)}
	a, err := New(Config{
		Shards: []Shard{
			{Name: "shard-a", URL: s1.srv.URL},
			{Name: "shard-b", URL: s2.srv.URL},
		},
		Clock: clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.PullAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	v := a.View()
	if v.LiveShards != 2 || v.TotalShards != 2 {
		t.Fatalf("live=%d total=%d", v.LiveShards, v.TotalShards)
	}
	if v.Counters.Folded != 500 {
		t.Fatalf("merged folded = %d, want 500", v.Counters.Folded)
	}
	// The merged accumulator must equal merging the snapshots directly in
	// sorted-shard order, bit for bit.
	for _, pol := range []string{"uniform", "leastloaded"} {
		var want harvestd.Accum
		a1 := testSnap("shard-a", 1, 10, 200).Policies[pol]
		a2 := testSnap("shard-b", 1, 20, 300).Policies[pol]
		want.Merge(&a1)
		want.Merge(&a2)
		got := v.Merged[pol]
		if got != want {
			t.Fatalf("policy %s merged view diverged:\n got  %+v\n want %+v", pol, got, want)
		}
	}
	// Estimates carry the fleet-wide N.
	for _, pe := range v.Estimates(0.05) {
		if pe.N != 500 {
			t.Errorf("policy %s n = %d, want 500", pe.Policy, pe.N)
		}
	}
}

func TestAggregatorStalenessDropAndRecover(t *testing.T) {
	s1 := newSnapServer(t, testSnap("shard-a", 1, 10, 200))
	s2 := newSnapServer(t, testSnap("shard-b", 1, 20, 300))
	clk := &obs.FixedClock{T: time.Unix(1700000000, 0)}
	a, err := New(Config{
		Shards: []Shard{
			{Name: "shard-a", URL: s1.srv.URL},
			{Name: "shard-b", URL: s2.srv.URL},
		},
		StaleAfter: 10 * time.Second,
		Clock:      clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.PullAll(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Inside the tolerance window the last snapshot still merges.
	clk.Advance(9 * time.Second)
	if v := a.View(); v.LiveShards != 2 {
		t.Fatalf("inside window: live=%d, want 2", v.LiveShards)
	}

	// Refresh only shard-a; shard-b ages past the window and drops out:
	// coverage shrinks and the interval widens, nothing fails.
	clk.Advance(2 * time.Second)
	if err := a.pullShard(context.Background(), a.shards[0]); err != nil {
		t.Fatal(err)
	}
	v := a.View()
	if v.LiveShards != 1 {
		t.Fatalf("after staleness: live=%d, want 1", v.LiveShards)
	}
	var status ShardStatus
	for _, st := range v.Shards {
		if st.Name == "shard-b" {
			status = st
		}
	}
	if status.Live || !status.Stale {
		t.Fatalf("shard-b status = %+v, want stale", status)
	}
	est := v.Estimates(0.05)
	if est[0].N != 200 {
		t.Fatalf("degraded n = %d, want 200 (shard-a only)", est[0].N)
	}

	// A full view (both live) has more data and a tighter interval than the
	// degraded one.
	if err := a.PullAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	fullView := a.View()
	full := fullView.Estimates(0.05)
	if full[0].N != 500 {
		t.Fatalf("recovered n = %d, want 500", full[0].N)
	}
	degradedWidth := est[0].SNIPS.Hi - est[0].SNIPS.Lo
	fullWidth := full[0].SNIPS.Hi - full[0].SNIPS.Lo
	if fullWidth >= degradedWidth {
		t.Errorf("losing a shard should widen the interval: degraded %v, full %v",
			degradedWidth, fullWidth)
	}
}

func TestAggregatorNeverDropWhenStaleAfterNegative(t *testing.T) {
	s1 := newSnapServer(t, testSnap("shard-a", 1, 10, 50))
	clk := &obs.FixedClock{T: time.Unix(1700000000, 0)}
	a, err := New(Config{
		Shards:     []Shard{{Name: "shard-a", URL: s1.srv.URL}},
		StaleAfter: -1,
		Clock:      clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.PullAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	clk.Advance(365 * 24 * time.Hour)
	if v := a.View(); v.LiveShards != 1 {
		t.Fatalf("StaleAfter<0 must never drop: live=%d", v.LiveShards)
	}
}

func TestAggregatorPullFailureAndRestartDetection(t *testing.T) {
	ss := newSnapServer(t, testSnap("shard-a", 5, 10, 50))
	clk := &obs.FixedClock{T: time.Unix(1700000000, 0)}
	a, err := New(Config{
		Shards: []Shard{{Name: "shard-a", URL: ss.srv.URL}},
		Clock:  clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.PullAll(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Failures count consecutively and surface in the status row, but the
	// last good snapshot keeps serving inside the tolerance window.
	ss.fail(http.StatusInternalServerError)
	for i := 0; i < 3; i++ {
		if err := a.PullAll(context.Background()); err == nil {
			t.Fatal("pull from a 500ing shard should fail")
		}
	}
	v := a.View()
	if v.Shards[0].ConsecutiveFailures != 3 || v.Shards[0].LastError == "" {
		t.Fatalf("status after failures: %+v", v.Shards[0])
	}
	if v.LiveShards != 1 {
		t.Fatalf("within tolerance the last snapshot still serves: live=%d", v.LiveShards)
	}

	// Recovery with a lower Seq means the shard restarted.
	ss.set(testSnap("shard-a", 1, 10, 10))
	ss.fail(0)
	if err := a.PullAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	v = a.View()
	if v.Shards[0].ConsecutiveFailures != 0 || v.Shards[0].Restarts != 1 {
		t.Fatalf("status after restart: %+v", v.Shards[0])
	}
}

func TestAggregatorCheckpointResume(t *testing.T) {
	s1 := newSnapServer(t, testSnap("shard-a", 3, 10, 200))
	clk := &obs.FixedClock{T: time.Unix(1700000000, 0)}
	path := filepath.Join(t.TempDir(), "agg.ckpt")
	cfg := Config{
		Shards:         []Shard{{Name: "shard-a", URL: s1.srv.URL}},
		StaleAfter:     time.Minute,
		CheckpointPath: path,
		Clock:          clk,
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.PullAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := a.View()
	if err := a.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// A new aggregator resumes the snapshot and its pull time.
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := b.loadCheckpoint(); err != nil || n != 1 {
		t.Fatalf("loadCheckpoint = %d, %v", n, err)
	}
	got := b.View()
	if got.LiveShards != 1 || got.Merged["uniform"] != want.Merged["uniform"] {
		t.Fatalf("resumed view diverged: %+v vs %+v", got.Merged, want.Merged)
	}

	// Staleness survives the restart: advance past the window and the
	// resumed snapshot is stale, not reborn fresh.
	clk.Advance(2 * time.Minute)
	if v := b.View(); v.LiveShards != 0 || !v.Shards[0].Stale {
		t.Fatalf("resumed snapshot must age from its original pull: %+v", v.Shards[0])
	}

	// A checkpoint naming shards no longer in the fleet is ignored quietly.
	c, err := New(Config{
		Shards:         []Shard{{Name: "other", URL: s1.srv.URL}},
		CheckpointPath: path,
		Clock:          clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := c.loadCheckpoint(); err != nil || n != 0 {
		t.Fatalf("unknown-shard checkpoint: restored %d, err %v", n, err)
	}
}

// TestAggregatorServedEstimatesPermutationInvariant is the satellite's
// order-independence proof at the API level: however the shard list is
// permuted and whatever order the pulls land in, the served /estimates
// bytes are identical.
func TestAggregatorServedEstimatesPermutationInvariant(t *testing.T) {
	servers := []*snapServer{
		newSnapServer(t, testSnap("shard-a", 1, 10, 100)),
		newSnapServer(t, testSnap("shard-b", 1, 20, 150)),
		newSnapServer(t, testSnap("shard-c", 1, 30, 250)),
	}
	shards := []Shard{
		{Name: "shard-a", URL: servers[0].srv.URL},
		{Name: "shard-b", URL: servers[1].srv.URL},
		{Name: "shard-c", URL: servers[2].srv.URL},
	}
	perms := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}, {0, 2, 1}, {2, 0, 1}, {1, 0, 2}}
	var first string
	for _, perm := range perms {
		ordered := make([]Shard, len(perm))
		for i, p := range perm {
			ordered[i] = shards[p]
		}
		a, err := New(Config{Shards: ordered, Clock: &obs.FixedClock{T: time.Unix(1700000000, 0)}})
		if err != nil {
			t.Fatal(err)
		}
		// Pull in the permuted order, one shard at a time.
		for _, st := range a.shards {
			if err := a.pullShard(context.Background(), st); err != nil {
				t.Fatal(err)
			}
		}
		srv := httptest.NewServer(a.handler())
		resp, err := http.Get(srv.URL + "/estimates")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		srv.Close()
		if err != nil {
			t.Fatal(err)
		}
		if first == "" {
			first = string(body)
			continue
		}
		if string(body) != first {
			t.Fatalf("permutation %v served different bytes:\n%s\nvs\n%s", perm, body, first)
		}
	}
	if !strings.Contains(first, `"policy": "leastloaded"`) {
		t.Fatalf("served estimates look wrong: %s", first)
	}
}

func TestAggregatorHTTPEndpoints(t *testing.T) {
	ss := newSnapServer(t, testSnap("shard-a", 1, 10, 100))
	a, err := New(Config{
		Shards:         []Shard{{Name: "shard-a", URL: ss.srv.URL}},
		CheckpointPath: filepath.Join(t.TempDir(), "agg.ckpt"),
		Clock:          &obs.FixedClock{T: time.Unix(1700000000, 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(a.handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}
	post := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	// POST /pull warms the state up; everything else reads it.
	if code, body := post("/pull"); code != 200 || !strings.Contains(body, "shards=1/1") {
		t.Fatalf("POST /pull = %d %q", code, body)
	}
	if code, _ := get("/pull"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /pull = %d, want 405", code)
	}
	if code, body := get("/healthz"); code != 200 || !strings.HasPrefix(body, "ok") {
		t.Errorf("healthz = %d %q", code, body)
	}

	code, body := get("/estimates?policy=uniform")
	if code != 200 {
		t.Fatalf("estimates = %d", code)
	}
	var pe harvestd.PolicyEstimate
	if err := json.Unmarshal([]byte(body), &pe); err != nil {
		t.Fatalf("bad estimates JSON: %v\n%s", err, body)
	}
	if pe.Policy != "uniform" || pe.N != 100 {
		t.Errorf("estimate = %+v", pe)
	}
	if code, _ := get("/estimates?policy=nope"); code != 404 {
		t.Errorf("unknown policy = %d, want 404", code)
	}
	if code, _ := get("/estimates?delta=2"); code != 400 {
		t.Errorf("bad delta = %d, want 400", code)
	}

	code, body = get("/diagnostics")
	if code != 200 {
		t.Fatalf("diagnostics = %d", code)
	}
	var diag fleetDiagnostics
	if err := json.Unmarshal([]byte(body), &diag); err != nil {
		t.Fatalf("bad diagnostics JSON: %v\n%s", err, body)
	}
	if diag.LiveShards != 1 || diag.TotalShards != 1 || len(diag.Policies) != 2 {
		t.Errorf("diagnostics = %+v", diag)
	}

	code, body = get("/shards")
	if code != 200 || !strings.Contains(body, `"shard-a"`) {
		t.Errorf("shards = %d %q", code, body)
	}

	code, body = get("/route?key=access.log")
	if code != 200 || !strings.Contains(body, `"shard": "shard-a"`) {
		t.Errorf("route = %d %q", code, body)
	}
	if code, _ := get("/route"); code != 400 {
		t.Errorf("route without key = %d, want 400", code)
	}

	code, body = get("/metrics")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	for _, metric := range []string{
		"harvestagg_shard_up{shard=\"shard-a\"} 1",
		"harvestagg_shards_live 1",
		"harvestagg_policy_n{policy=\"uniform\"} 100",
	} {
		if !strings.Contains(body, metric) {
			t.Errorf("metrics missing %q", metric)
		}
	}

	if code, body := post("/checkpoint"); code != 200 || !strings.Contains(body, "checkpointed") {
		t.Errorf("POST /checkpoint = %d %q", code, body)
	}
}

// TestAggregatorStartShutdown exercises the managed lifecycle: Start spins
// the pull loops and API, estimates become available, Shutdown writes the
// final checkpoint.
func TestAggregatorStartShutdown(t *testing.T) {
	ss := newSnapServer(t, testSnap("shard-a", 1, 10, 100))
	path := filepath.Join(t.TempDir(), "agg.ckpt")
	a, err := New(Config{
		Shards:         []Shard{{Name: "shard-a", URL: ss.srv.URL}},
		PullInterval:   10 * time.Millisecond,
		Addr:           "127.0.0.1:0",
		CheckpointPath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err == nil {
		t.Error("double Start should fail")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v := a.View(); v.LiveShards == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shard never became live")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Get(a.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := a.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if a.checkpoints.Load() == 0 {
		t.Error("shutdown should write a final checkpoint")
	}
	// Idempotent.
	if err := a.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
