package fleet

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/stats"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("source-%04d.log", i)
	}
	return keys
}

func TestRouterRejectsBadShardSets(t *testing.T) {
	for _, shards := range [][]string{nil, {}, {""}, {"a", "a"}, {"a", "b", "a"}} {
		if _, err := NewRouter(shards); err == nil {
			t.Errorf("NewRouter(%q): expected error", shards)
		}
	}
}

// TestRouterDeterministic: the assignment is a pure function of the
// (key, shard set) pair — independent of configuration order and of the
// router instance.
func TestRouterDeterministic(t *testing.T) {
	keys := testKeys(500)
	r1, err := NewRouter([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRouter([]string{"c", "a", "b"}) // same set, different order
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if g1, g2 := r1.Assign(k), r2.Assign(k); g1 != g2 {
			t.Fatalf("key %q: order-dependent assignment %q vs %q", k, g1, g2)
		}
		if again := r1.Assign(k); again != r1.Assign(k) {
			t.Fatalf("key %q: unstable assignment", k)
		}
	}
}

// TestRouterBalance: rendezvous hashing should spread keys roughly evenly —
// no shard ±50% off the fair share on 3000 keys over 5 shards.
func TestRouterBalance(t *testing.T) {
	shards := []string{"s0", "s1", "s2", "s3", "s4"}
	r, err := NewRouter(shards)
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(3000)
	byShard := r.Partition(keys)
	fair := float64(len(keys)) / float64(len(shards))
	for _, s := range shards {
		got := float64(len(byShard[s]))
		if got < fair/2 || got > fair*1.5 {
			t.Errorf("shard %s owns %.0f keys (fair share %.0f)", s, got, fair)
		}
	}
}

// TestRouterMinimalMovementOnAdd: growing the fleet moves only the keys the
// new shard wins — every key either stays put or moves to the new shard,
// and the moved fraction is near 1/(n+1).
func TestRouterMinimalMovementOnAdd(t *testing.T) {
	keys := testKeys(2000)
	before, err := NewRouter([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRouter([]string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, k := range keys {
		was, is := before.Assign(k), after.Assign(k)
		if was != is {
			if is != "d" {
				t.Fatalf("key %q moved %q→%q, not to the new shard", k, was, is)
			}
			moved++
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.15 || frac > 0.35 { // fair share is 1/4
		t.Errorf("adding a shard moved %.1f%% of keys (want ≈25%%)", 100*frac)
	}
}

// TestRouterMinimalMovementOnRemove: removing a shard moves only the keys
// it owned; every other assignment is untouched.
func TestRouterMinimalMovementOnRemove(t *testing.T) {
	keys := testKeys(2000)
	before, err := NewRouter([]string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRouter([]string{"a", "b", "d"})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		was, is := before.Assign(k), after.Assign(k)
		if was != "c" && was != is {
			t.Fatalf("key %q moved %q→%q though its shard survived", k, was, is)
		}
	}
}

// TestRouterPartitionCoversEveryShard: Partition lists every configured
// shard and places every key exactly once.
func TestRouterPartitionCoversEveryShard(t *testing.T) {
	shards := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	r, err := NewRouter(shards)
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(64)
	parts := r.Partition(keys)
	if len(parts) != len(shards) {
		t.Fatalf("partition has %d shards, want %d", len(parts), len(shards))
	}
	total := 0
	seen := map[string]bool{}
	for _, ks := range parts {
		for _, k := range ks {
			if seen[k] {
				t.Fatalf("key %q assigned twice", k)
			}
			seen[k] = true
			total++
		}
	}
	if total != len(keys) {
		t.Fatalf("partition placed %d keys, want %d", total, len(keys))
	}
}

// TestRouterShardsCanonical: Shards() reports the sorted set regardless of
// construction order, and mutating the returned slice cannot corrupt the
// router.
func TestRouterShardsCanonical(t *testing.T) {
	r, err := NewRouter([]string{"z", "m", "a"})
	if err != nil {
		t.Fatal(err)
	}
	got := r.Shards()
	if !reflect.DeepEqual(got, []string{"a", "m", "z"}) {
		t.Fatalf("Shards() = %v", got)
	}
	got[0] = "corrupted"
	if r.Shards()[0] != "a" {
		t.Fatal("Shards() exposed internal state")
	}
}

// TestRouterGoldenAssignments pins concrete assignments so an accidental
// hash or tie-break change (which would silently re-route a live fleet's
// sources) fails loudly.
func TestRouterGoldenAssignments(t *testing.T) {
	r, err := NewRouter([]string{"shard-a", "shard-b", "shard-c"})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"access.log": "shard-b",
		"cache.log":  "shard-b",
		"lb-0.log":   "shard-a",
		"lb-1.log":   "shard-a",
		"lb-2.log":   "shard-a",
	}
	got := map[string]string{}
	for k := range want {
		got[k] = r.Assign(k)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("golden assignments drifted: got %v want %v", got, want)
	}
}

func BenchmarkRouterAssign(b *testing.B) {
	shards := make([]string, 16)
	for i := range shards {
		shards[i] = fmt.Sprintf("shard-%02d", i)
	}
	r, err := NewRouter(shards)
	if err != nil {
		b.Fatal(err)
	}
	keys := testKeys(1024)
	order := stats.NewRand(1).Perm(len(keys))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Assign(keys[order[i%len(order)]])
	}
}
