package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/harvestd"
)

// checkpointVersion guards the aggregator's on-disk schema.
const checkpointVersion = 1

// shardCheckpoint is one shard's persisted pull state: the last snapshot it
// delivered and when. Persisting LastSuccess (not just the snapshot) makes
// staleness survive a restart: an aggregator that resumes from an old
// checkpoint correctly treats long-dead shards as stale instead of serving
// their fossilized state as fresh.
type shardCheckpoint struct {
	Snapshot        *harvestd.StateSnapshot `json:"snapshot"`
	LastSuccessUnix int64                   `json:"last_success_unix_nano"`
}

// checkpointFile is the aggregator's durable state.
type checkpointFile struct {
	Version int                        `json:"version"`
	SavedAt time.Time                  `json:"saved_at"`
	Shards  map[string]shardCheckpoint `json:"shards"`
}

// Checkpoint atomically persists the last-known snapshot of every shard:
// marshal to a temp file in the checkpoint's directory, fsync, then rename
// over the destination — a crash mid-write leaves the previous checkpoint
// intact (the same protocol as harvestd's own checkpoints).
func (a *Aggregator) Checkpoint() error {
	path := a.cfg.CheckpointPath
	if path == "" {
		return fmt.Errorf("fleet: checkpointing disabled")
	}
	ck := checkpointFile{
		Version: checkpointVersion,
		SavedAt: time.Now().UTC(),
		Shards:  make(map[string]shardCheckpoint, len(a.shards)),
	}
	for _, st := range a.shards {
		st.mu.Lock()
		snap := st.snap
		last := st.lastSuccess
		st.mu.Unlock()
		if snap == nil {
			continue
		}
		ck.Shards[st.shard.Name] = shardCheckpoint{
			Snapshot:        snap,
			LastSuccessUnix: last.UnixNano(),
		}
	}
	blob, err := json.MarshalIndent(&ck, "", " ")
	if err != nil {
		return fmt.Errorf("fleet: encoding checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("fleet: checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(blob); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return fmt.Errorf("fleet: writing checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return fmt.Errorf("fleet: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("fleet: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("fleet: publishing checkpoint: %w", err)
	}
	a.checkpoints.Add(1)
	return nil
}

// loadCheckpoint restores per-shard snapshots for shards still in the
// configured fleet (membership may shrink across restarts; unknown shards
// are ignored), returning how many were restored. A missing file returns
// os.ErrNotExist (the caller treats it as a cold start).
func (a *Aggregator) loadCheckpoint() (int, error) {
	blob, err := os.ReadFile(a.cfg.CheckpointPath)
	if err != nil {
		return 0, err
	}
	var ck checkpointFile
	if err := json.Unmarshal(blob, &ck); err != nil {
		return 0, fmt.Errorf("fleet: corrupt checkpoint %s: %w", a.cfg.CheckpointPath, err)
	}
	if ck.Version != checkpointVersion {
		return 0, fmt.Errorf("fleet: checkpoint %s has version %d, want %d",
			a.cfg.CheckpointPath, ck.Version, checkpointVersion)
	}
	restored := 0
	for _, st := range a.shards {
		sc, ok := ck.Shards[st.shard.Name]
		if !ok || sc.Snapshot == nil {
			continue
		}
		if err := sc.Snapshot.Validate(); err != nil {
			return 0, fmt.Errorf("fleet: checkpoint shard %q: %w", st.shard.Name, err)
		}
		st.mu.Lock()
		st.snap = sc.Snapshot
		st.lastSuccess = time.Unix(0, sc.LastSuccessUnix)
		st.mu.Unlock()
		restored++
	}
	return restored, nil
}

// isNotExist reports a missing-checkpoint error (cold start).
func isNotExist(err error) bool { return os.IsNotExist(err) }
