package fleet

// Kill-a-shard end-to-end test: three in-process harvestd shards ingest a
// router-partitioned workload, an aggregator federates them, and the merged
// fleet estimates are byte-identical to one monolithic daemon over the
// unsplit workload. Then one shard dies: the fleet degrades gracefully
// (coverage shrinks, intervals widen, nothing panics), and a restart from
// the shard's checkpoint restores the exact merged estimates.
//
// The workload is dyadic-exact on purpose — propensity 1/2 and rewards on a
// 1/1024 grid keep every importance weight and term a binary fraction, so
// float summation is associative over this data and "fleet == monolith"
// can be asserted byte-for-byte rather than within a tolerance.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harvestd"
	"repro/internal/lbsim"
	"repro/internal/policy"
	"repro/internal/stats"
)

// dyadicDataset fabricates n exploration datapoints whose importance terms
// are exact binary fractions (see the file comment).
func dyadicDataset(n int, seed int64) core.Dataset {
	r := stats.NewRand(seed)
	ds := make(core.Dataset, n)
	for i := range ds {
		conns := []int{r.Intn(6), r.Intn(6)}
		ds[i] = core.Datapoint{
			Context:    lbsim.BuildContext(conns, 0, 1),
			Action:     core.Action(r.Intn(2)),
			Reward:     float64(r.Intn(1024)) / 1024,
			Propensity: 0.5,
		}
	}
	return ds
}

// writeJSONLFile persists one source's datapoints.
func writeJSONLFile(t *testing.T, path string, ds core.Dataset) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// e2eRegistry builds the candidate set every daemon in the test evaluates.
func e2eRegistry(t *testing.T) *harvestd.Registry {
	t.Helper()
	reg, err := harvestd.NewRegistry(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 2; a++ {
		if err := reg.Register(fmt.Sprintf("always-%d", a), policy.Constant{A: core.Action(a)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.Register("leastloaded", lbsim.LeastLoaded{}); err != nil {
		t.Fatal(err)
	}
	return reg
}

// startHarvestd boots one daemon over the given JSONL sources and waits for
// it to fold them all.
func startHarvestd(t *testing.T, shardID, ckpt string, files []string, wantN int64) *harvestd.Daemon {
	t.Helper()
	reg := e2eRegistry(t)
	d, err := harvestd.New(harvestd.Config{
		Workers: 2, Clip: 10, Delta: 0.05, Addr: "127.0.0.1:0",
		ShardID: shardID, CheckpointPath: ckpt, CheckpointInterval: time.Hour,
	}, reg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		d.AddSource(&harvestd.JSONLSource{Path: f})
	}
	if err := d.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 30*time.Second, fmt.Sprintf("%s to fold %d datapoints", shardID, wantN),
		func() bool { return reg.TotalN() == wantN })
	return d
}

func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// stableAddr is a fixed HTTP frontage for a shard whose backend daemon can
// die and come back on a different port — the aggregator's configured shard
// URL stays valid across the restart, the way a service address outlives
// one process.
type stableAddr struct {
	mu     sync.Mutex
	target string // live daemon base URL; empty = shard down
	srv    *httptest.Server
}

func newStableAddr(t *testing.T, target string) *stableAddr {
	t.Helper()
	sa := &stableAddr{target: target}
	sa.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sa.mu.Lock()
		target := sa.target
		sa.mu.Unlock()
		if target == "" {
			http.Error(w, "shard down", http.StatusBadGateway)
			return
		}
		resp, err := http.Get(target + r.URL.Path)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
	}))
	t.Cleanup(sa.srv.Close)
	return sa
}

func (sa *stableAddr) retarget(url string) {
	sa.mu.Lock()
	sa.target = url
	sa.mu.Unlock()
}

// getBody fetches one URL and returns status and body.
func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestE2EFleetKillShardDegradeAndRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-daemon fleet in -short mode")
	}
	dir := t.TempDir()
	shardNames := []string{"shard-0", "shard-1", "shard-2"}

	// Twelve sources, router-partitioned across the three shards.
	const perSource = 50
	router, err := NewRouter(shardNames)
	if err != nil {
		t.Fatal(err)
	}
	var sources []string
	fileOf := map[string]string{}
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("source-%02d.jsonl", i)
		path := filepath.Join(dir, name)
		writeJSONLFile(t, path, dyadicDataset(perSource, int64(100+i)))
		sources = append(sources, name)
		fileOf[name] = path
	}
	parts := router.Partition(sources)
	for _, s := range shardNames {
		if len(parts[s]) == 0 {
			t.Fatalf("router left %s empty over %d sources; grow the source set", s, len(sources))
		}
	}
	totalN := int64(len(sources) * perSource)

	// The monolithic reference ingests every source unsplit.
	var allFiles []string
	for _, name := range sources {
		allFiles = append(allFiles, fileOf[name])
	}
	mono := startHarvestd(t, "mono", "", allFiles, totalN)
	defer mono.Shutdown(context.Background())

	// The fleet: one daemon per shard over its assigned sources.
	daemons := map[string]*harvestd.Daemon{}
	shardN := map[string]int64{}
	for _, s := range shardNames {
		var files []string
		for _, name := range parts[s] {
			files = append(files, fileOf[name])
		}
		shardN[s] = int64(len(parts[s]) * perSource)
		daemons[s] = startHarvestd(t, s, filepath.Join(dir, s+".ckpt"), files, shardN[s])
	}
	defer func() {
		for _, d := range daemons {
			_ = d.Shutdown(context.Background())
		}
	}()

	// shard-2 sits behind a stable address so it can restart on a new port.
	victim := "shard-2"
	front := newStableAddr(t, daemons[victim].URL())
	agg, err := New(Config{
		Shards: []Shard{
			{Name: "shard-0", URL: daemons["shard-0"].URL()},
			{Name: "shard-1", URL: daemons["shard-1"].URL()},
			{Name: victim, URL: front.srv.URL},
		},
		PullInterval:       20 * time.Millisecond,
		PullTimeout:        2 * time.Second,
		MaxBackoff:         100 * time.Millisecond,
		StaleAfter:         400 * time.Millisecond,
		Delta:              0.05,
		Addr:               "127.0.0.1:0",
		CheckpointPath:     filepath.Join(dir, "agg.ckpt"),
		CheckpointInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer agg.Shutdown(context.Background())

	// Wait for the full merged view, and for the victim's snapshot sequence
	// to advance past its first pull — the restart check below relies on the
	// revived shard's fresh sequence (which restarts at 1) regressing below
	// the last one observed.
	waitUntil(t, 30*time.Second, "all shards live in the merged view", func() bool {
		v := agg.View()
		if v.LiveShards != 3 || v.Counters.Folded != totalN {
			return false
		}
		for _, st := range v.Shards {
			if st.Name == victim && st.Seq >= 2 {
				return true
			}
		}
		return false
	})

	// Fleet == monolith, byte for byte.
	code, monoBody := getBody(t, mono.URL()+"/estimates")
	if code != 200 {
		t.Fatalf("monolithic estimates = %d", code)
	}
	code, fleetBody := getBody(t, agg.URL()+"/estimates")
	if code != 200 {
		t.Fatalf("fleet estimates = %d", code)
	}
	if fleetBody != monoBody {
		t.Fatalf("fleet estimates diverge from the monolithic daemon:\nfleet:\n%s\nmono:\n%s",
			fleetBody, monoBody)
	}

	// Kill the victim. Its final checkpoint is written on shutdown; the
	// stable address starts 502ing.
	if err := daemons[victim].Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	front.retarget("")

	// The fleet degrades instead of failing: once the victim ages out of
	// the staleness window, coverage shrinks and intervals widen, and the
	// API keeps serving.
	waitUntil(t, 30*time.Second, "victim to age out of the merged view", func() bool {
		return agg.View().LiveShards == 2
	})
	code, degradedBody := getBody(t, agg.URL()+"/estimates")
	if code != 200 {
		t.Fatalf("degraded estimates = %d", code)
	}
	var fullEsts, degradedEsts []harvestd.PolicyEstimate
	if err := json.Unmarshal([]byte(fleetBody), &fullEsts); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(degradedBody), &degradedEsts); err != nil {
		t.Fatal(err)
	}
	wantDegradedN := totalN - shardN[victim]
	for i, pe := range degradedEsts {
		if pe.N != wantDegradedN {
			t.Errorf("degraded %s n = %d, want %d", pe.Policy, pe.N, wantDegradedN)
		}
		fullWidth := fullEsts[i].SNIPS.Hi - fullEsts[i].SNIPS.Lo
		degradedWidth := pe.SNIPS.Hi - pe.SNIPS.Lo
		if degradedWidth <= fullWidth {
			t.Errorf("degraded %s interval %v should be wider than full-fleet %v",
				pe.Policy, degradedWidth, fullWidth)
		}
	}
	var status []ShardStatus
	if code, body := getBody(t, agg.URL()+"/shards"); code != 200 {
		t.Fatalf("shards = %d", code)
	} else if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatal(err)
	}
	for _, st := range status {
		if st.Name == victim && (st.Live || !st.Stale) {
			t.Errorf("victim status = %+v, want stale", st)
		}
	}

	// Restart the victim from its checkpoint — no sources this time: the
	// checkpoint alone restores its estimator state. Point the stable
	// address at the new incarnation.
	reg := e2eRegistry(t)
	revived, err := harvestd.New(harvestd.Config{
		Workers: 2, Clip: 10, Delta: 0.05, Addr: "127.0.0.1:0",
		ShardID: victim, CheckpointPath: filepath.Join(dir, victim+".ckpt"),
		CheckpointInterval: time.Hour,
	}, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := revived.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer revived.Shutdown(context.Background())
	daemons[victim] = revived
	front.retarget(revived.URL())

	// Full recovery: the merged estimates return to the exact monolithic
	// bytes, and the aggregator noticed the restart (sequence regression).
	waitUntil(t, 30*time.Second, "fleet to recover the full merged view", func() bool {
		v := agg.View()
		return v.LiveShards == 3 && v.Counters.Folded == totalN
	})
	_, recoveredBody := getBody(t, agg.URL()+"/estimates")
	if recoveredBody != monoBody {
		t.Fatalf("recovered estimates diverge from the monolithic daemon:\nfleet:\n%s\nmono:\n%s",
			recoveredBody, monoBody)
	}
	restarts := int64(0)
	for _, st := range agg.View().Shards {
		if st.Name == victim {
			restarts = st.Restarts
		}
	}
	if restarts == 0 {
		t.Error("aggregator should detect the victim's restart via its sequence regression")
	}
}
