package fleet

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/harvestd"
	"repro/internal/obs"
)

// Shard names one harvestd shard and where to pull its snapshot from.
type Shard struct {
	Name string `json:"name"`
	URL  string `json:"url"` // base URL, e.g. http://10.0.0.3:8347
}

// Config tunes the aggregator. The zero value is usable: defaults fill in.
type Config struct {
	// Shards is the fixed fleet membership. At least one is required.
	Shards []Shard
	// PullInterval is the per-shard snapshot poll period. Default 2s.
	PullInterval time.Duration
	// PullTimeout bounds one snapshot request. Default 5s.
	PullTimeout time.Duration
	// MaxBackoff caps the exponential retry backoff after consecutive pull
	// failures. Default 30s.
	MaxBackoff time.Duration
	// StaleAfter is the tolerance window: a shard whose last successful
	// pull is older than this is dropped from the merged view (coverage
	// shrinks, intervals widen) until it recovers. <= 0 means never drop —
	// the last snapshot is merged forever. Default 30s.
	StaleAfter time.Duration
	// Delta is the default interval failure probability. Default 0.05.
	Delta float64
	// Addr is the HTTP listen address; empty disables the API (tests can
	// drive the aggregator in-process); "127.0.0.1:0" picks a free port.
	Addr string
	// CheckpointPath enables aggregator checkpointing; empty disables.
	CheckpointPath string
	// CheckpointInterval is the timer between checkpoints. Default 30s.
	CheckpointInterval time.Duration
	// Clock supplies timestamps for staleness and uptime. Default wall
	// clock; tests inject obs.FixedClock for deterministic staleness.
	Clock obs.Clock
	// Client issues the snapshot pulls; nil uses a dedicated client (the
	// per-pull timeout still applies via request contexts).
	Client *http.Client
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() {
	if c.PullInterval <= 0 {
		c.PullInterval = 2 * time.Second
	}
	if c.PullTimeout <= 0 {
		c.PullTimeout = 5 * time.Second
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 30 * time.Second
	}
	if c.StaleAfter == 0 {
		c.StaleAfter = 30 * time.Second
	}
	if c.Delta <= 0 || c.Delta >= 1 {
		c.Delta = 0.05
	}
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = 30 * time.Second
	}
	if c.Clock == nil {
		c.Clock = obs.WallClock()
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// shardState is the aggregator's view of one shard: the last snapshot it
// delivered and the pull bookkeeping that decides liveness and backoff.
type shardState struct {
	shard Shard

	mu          sync.Mutex
	snap        *harvestd.StateSnapshot
	lastSuccess time.Time // zero: never pulled successfully
	lastErr     string
	failures    int // consecutive pull failures
	fresh       *harvestd.FreshnessReport
	freshAt     time.Time // when fresh was pulled; zero: never

	pulls      atomic.Int64
	pullErrors atomic.Int64
	restarts   atomic.Int64 // snapshot Seq regressions observed
}

// Aggregator federates the shards: it pulls snapshots, merges estimator
// state, and serves the fleet-wide read API. One Aggregator instance runs
// per fleet (or per region, with another tier above — the merge is
// associative, so tiers compose).
type Aggregator struct {
	cfg    Config
	router *Router
	shards []*shardState // sorted by name: the canonical merge order
	obsReg *obs.Registry
	start  time.Time

	checkpoints atomic.Int64

	stateMu sync.Mutex
	running bool

	loopCtx  context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup
	ckptDone chan struct{}

	ln  net.Listener
	srv *http.Server
}

// New builds an aggregator over the configured shard fleet.
func New(cfg Config) (*Aggregator, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("fleet: aggregator needs at least one shard")
	}
	cfg.fillDefaults()
	names := make([]string, len(cfg.Shards))
	for i, s := range cfg.Shards {
		if s.URL == "" {
			return nil, fmt.Errorf("fleet: shard %q has no URL", s.Name)
		}
		names[i] = s.Name
	}
	router, err := NewRouter(names) // also rejects empty/duplicate names
	if err != nil {
		return nil, err
	}
	a := &Aggregator{cfg: cfg, router: router}
	shards := append([]Shard(nil), cfg.Shards...)
	sort.Slice(shards, func(i, j int) bool { return shards[i].Name < shards[j].Name })
	for _, s := range shards {
		a.shards = append(a.shards, &shardState{shard: s})
	}
	a.initMetrics()
	return a, nil
}

// Router returns the fleet's source-to-shard router.
func (a *Aggregator) Router() *Router { return a.router }

// Metrics returns the aggregator's obs registry.
func (a *Aggregator) Metrics() *obs.Registry { return a.obsReg }

// Start resumes from the checkpoint (when one exists), launches one pull
// loop per shard, the checkpoint timer, and the HTTP API, then returns. The
// aggregator runs until Shutdown.
func (a *Aggregator) Start(ctx context.Context) error {
	a.stateMu.Lock()
	defer a.stateMu.Unlock()
	if a.running {
		return fmt.Errorf("fleet: aggregator already started")
	}

	if a.cfg.CheckpointPath != "" {
		n, err := a.loadCheckpoint()
		switch {
		case err == nil:
			a.cfg.Logf("harvestagg: resumed %d shard snapshots from %s", n, a.cfg.CheckpointPath)
		case isNotExist(err):
			// First run: nothing to resume.
		default:
			return fmt.Errorf("fleet: loading checkpoint: %w", err)
		}
	}

	if a.cfg.Addr != "" {
		ln, err := net.Listen("tcp", a.cfg.Addr)
		if err != nil {
			return fmt.Errorf("fleet: listen %s: %w", a.cfg.Addr, err)
		}
		a.ln = ln
	}

	a.start = a.cfg.Clock.Now()
	a.loopCtx, a.cancel = context.WithCancel(ctx)
	for _, st := range a.shards {
		a.wg.Add(1)
		go a.pullLoop(st)
	}

	a.ckptDone = make(chan struct{})
	if a.cfg.CheckpointPath != "" {
		go a.checkpointLoop()
	} else {
		close(a.ckptDone)
	}

	if a.ln != nil {
		a.srv = &http.Server{Handler: a.handler()}
		go func(srv *http.Server, ln net.Listener) { _ = srv.Serve(ln) }(a.srv, a.ln)
		a.cfg.Logf("harvestagg: serving on http://%s (%d shards)", a.ln.Addr(), len(a.shards))
	}

	a.running = true
	return nil
}

// Addr returns the API's host:port (empty when the API is disabled or the
// aggregator has not started).
func (a *Aggregator) Addr() string {
	a.stateMu.Lock()
	defer a.stateMu.Unlock()
	if a.ln == nil {
		return ""
	}
	return a.ln.Addr().String()
}

// URL returns the API's base URL (after Start).
func (a *Aggregator) URL() string { return "http://" + a.Addr() }

// pullLoop polls one shard forever: an immediate first pull, then the
// configured interval, stretched exponentially (capped at MaxBackoff) while
// the shard keeps failing so a dead shard costs one cheap request per
// backoff period instead of hammering a struggling one.
func (a *Aggregator) pullLoop(st *shardState) {
	defer a.wg.Done()
	for {
		err := a.pullShard(a.loopCtx, st)
		if err != nil && a.loopCtx.Err() == nil {
			a.cfg.Logf("harvestagg: pull %s: %v", st.shard.Name, err)
		}
		st.mu.Lock()
		failures := st.failures
		st.mu.Unlock()
		delay := a.cfg.PullInterval
		for i := 0; i < failures && delay < a.cfg.MaxBackoff; i++ {
			delay *= 2
		}
		if delay > a.cfg.MaxBackoff {
			delay = a.cfg.MaxBackoff
		}
		select {
		case <-a.loopCtx.Done():
			return
		case <-time.After(delay):
		}
	}
}

// pullShard fetches and installs one snapshot from the shard's /snapshot
// endpoint, recording success or failure for liveness and backoff.
func (a *Aggregator) pullShard(ctx context.Context, st *shardState) error {
	st.pulls.Add(1)
	pctx, cancel := context.WithTimeout(ctx, a.cfg.PullTimeout)
	defer cancel()
	snap, err := fetchSnapshot(pctx, a.cfg.Client, st.shard.URL)
	if err != nil {
		st.pullErrors.Add(1)
		st.mu.Lock()
		st.failures++
		st.lastErr = err.Error()
		st.mu.Unlock()
		return err
	}
	// Best-effort freshness ride-along: watermark merging is additive over
	// the snapshot pull, so a failed (or absent) /freshness never fails the
	// pull — the shard just keeps its previous report.
	fresh, freshErr := fetchFreshness(pctx, a.cfg.Client, st.shard.URL)
	if freshErr != nil {
		a.cfg.Logf("harvestagg: freshness %s: %v", st.shard.Name, freshErr)
	}
	st.mu.Lock()
	if st.snap != nil && snap.Seq < st.snap.Seq {
		st.restarts.Add(1)
	}
	st.snap = snap
	st.lastSuccess = a.cfg.Clock.Now()
	st.failures = 0
	st.lastErr = ""
	if fresh != nil {
		st.fresh = fresh
		st.freshAt = st.lastSuccess
	}
	st.mu.Unlock()
	return nil
}

// fetchSnapshot performs one GET {base}/snapshot and decodes the result.
func fetchSnapshot(ctx context.Context, client *http.Client, base string) (*harvestd.StateSnapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/snapshot", nil)
	if err != nil {
		return nil, fmt.Errorf("fleet: building snapshot request: %w", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }() // read-only response body
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: %s/snapshot: HTTP %d", base, resp.StatusCode)
	}
	return harvestd.DecodeSnapshot(resp.Body)
}

// PullAll pulls every shard once, synchronously — the startup warm-up and
// the POST /pull handler. It returns the first error but attempts every
// shard regardless.
func (a *Aggregator) PullAll(ctx context.Context) error {
	var first error
	for _, st := range a.shards {
		if err := a.pullShard(ctx, st); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ShardStatus is one shard's health row in the fleet view.
type ShardStatus struct {
	Name string `json:"name"`
	URL  string `json:"url"`
	// Live reports whether the shard's state is included in the merged
	// estimates: it has delivered a snapshot whose age is inside the
	// staleness window.
	Live bool `json:"live"`
	// Stale reports a shard that has data but aged out of the window.
	Stale bool `json:"stale"`
	// AgeSeconds is the time since the last successful pull (-1: never).
	AgeSeconds float64 `json:"age_seconds"`
	// Seq is the last snapshot's sequence number (0: none).
	Seq int64 `json:"seq"`
	// N is the last snapshot's folded-datapoint count.
	N int64 `json:"n"`
	// ConsecutiveFailures counts pull failures since the last success.
	ConsecutiveFailures int    `json:"consecutive_failures"`
	LastError           string `json:"last_error,omitempty"`
	// Restarts counts observed snapshot-sequence regressions.
	Restarts int64 `json:"restarts"`
}

// View is a point-in-time merged view of the fleet: per-shard health plus
// the merged per-policy accumulators over the live shards. Merging walks
// shards in sorted-name order — a pure function of the snapshot set, so the
// served estimates never depend on pull arrival order.
type View struct {
	Shards      []ShardStatus
	Merged      map[string]harvestd.Accum
	Counters    harvestd.SnapshotCounters
	LiveShards  int
	TotalShards int
	EvalPanics  int64
	Clip        float64 // from the first live shard (shards share settings)
	Floor       float64
}

// View merges the current snapshot set.
func (a *Aggregator) View() View {
	now := a.cfg.Clock.Now()
	v := View{
		Merged:      make(map[string]harvestd.Accum),
		TotalShards: len(a.shards),
	}
	for _, st := range a.shards {
		st.mu.Lock()
		snap := st.snap
		lastSuccess := st.lastSuccess
		status := ShardStatus{
			Name:                st.shard.Name,
			URL:                 st.shard.URL,
			AgeSeconds:          -1,
			ConsecutiveFailures: st.failures,
			LastError:           st.lastErr,
			Restarts:            st.restarts.Load(),
		}
		st.mu.Unlock()
		if snap != nil {
			status.Seq = snap.Seq
			status.N = snap.Counters.Folded
		}
		if !lastSuccess.IsZero() {
			status.AgeSeconds = now.Sub(lastSuccess).Seconds()
		}
		fresh := snap != nil &&
			(a.cfg.StaleAfter <= 0 || now.Sub(lastSuccess) <= a.cfg.StaleAfter)
		status.Live = fresh
		status.Stale = snap != nil && !fresh
		v.Shards = append(v.Shards, status)
		if !fresh {
			continue
		}
		if v.LiveShards == 0 {
			v.Clip, v.Floor = snap.Clip, snap.Floor
		}
		v.LiveShards++
		v.Counters.Add(snap.Counters)
		v.EvalPanics += snap.EvalPanics
		for name, acc := range snap.Policies {
			merged := v.Merged[name]
			merged.Merge(&acc)
			v.Merged[name] = merged
		}
	}
	return v
}

// policyNames returns the merged view's policy names, sorted.
func (v *View) policyNames() []string {
	names := make([]string, 0, len(v.Merged))
	for name := range v.Merged {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Estimates reports the fleet-wide per-policy estimates at confidence
// 1−delta, in the same shape (and, for identical merged state, the same
// bytes) as a single harvestd's /estimates.
func (v *View) Estimates(delta float64) []harvestd.PolicyEstimate {
	names := v.policyNames()
	out := make([]harvestd.PolicyEstimate, len(names))
	for i, name := range names {
		acc := v.Merged[name]
		out[i] = acc.Estimate(name, delta)
	}
	return out
}

// Diagnostics reports the fleet-wide estimator-health view per policy.
func (v *View) Diagnostics() []harvestd.PolicyDiagnostics {
	names := v.policyNames()
	out := make([]harvestd.PolicyDiagnostics, len(names))
	for i, name := range names {
		acc := v.Merged[name]
		out[i] = acc.Diagnostics(name)
	}
	return out
}

// Estimates is the aggregator-level convenience over the current view.
func (a *Aggregator) Estimates(delta float64) []harvestd.PolicyEstimate {
	v := a.View()
	return v.Estimates(delta)
}

// Shutdown stops the aggregator: pull loops stop, a final checkpoint is
// written, and the HTTP listener closes.
func (a *Aggregator) Shutdown(ctx context.Context) error {
	a.stateMu.Lock()
	if !a.running {
		a.stateMu.Unlock()
		return nil
	}
	a.running = false
	a.stateMu.Unlock()

	a.cancel()
	a.wg.Wait()
	<-a.ckptDone

	var ckptErr error
	if a.cfg.CheckpointPath != "" {
		ckptErr = a.Checkpoint()
	}

	var srvErr error
	if a.srv != nil {
		srvErr = a.srv.Shutdown(ctx)
	}
	if ckptErr != nil {
		return fmt.Errorf("fleet: final checkpoint: %w", ckptErr)
	}
	return srvErr
}

// checkpointLoop writes checkpoints on a timer until shutdown.
func (a *Aggregator) checkpointLoop() {
	defer close(a.ckptDone)
	t := time.NewTicker(a.cfg.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := a.Checkpoint(); err != nil {
				a.cfg.Logf("harvestagg: checkpoint failed: %v", err)
			}
		case <-a.loopCtx.Done():
			return
		}
	}
}
