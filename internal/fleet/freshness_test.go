package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/harvestd"
	"repro/internal/obs"
)

// freshSnapServer serves /snapshot plus a scripted /freshness report
// (nil: 404, simulating a shard predating the endpoint).
func freshSnapServer(t *testing.T, snap *harvestd.StateSnapshot, rep *harvestd.FreshnessReport) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/snapshot":
			if err := harvestd.EncodeSnapshot(w, snap); err != nil {
				t.Errorf("encode snapshot: %v", err)
			}
		case "/freshness":
			if rep == nil {
				http.NotFound(w, r)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(rep)
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestFleetFreshnessMerge(t *testing.T) {
	mkRep := func(id string, wm int64, age float64, behind int64) *harvestd.FreshnessReport {
		return &harvestd.FreshnessReport{
			Version:             harvestd.FreshnessVersion,
			ShardID:             id,
			WatermarkSeq:        wm,
			WatermarkAgeSeconds: age,
			Behind:              behind,
			QueueDepth:          int(behind),
		}
	}
	sa := freshSnapServer(t, testSnap("shard-a", 1, 10, 200), mkRep("shard-a", 100, 1.5, 2))
	sb := freshSnapServer(t, testSnap("shard-b", 1, 20, 300), mkRep("shard-b", 40, 0.5, 3))
	sc := freshSnapServer(t, testSnap("shard-c", 1, 30, 100), nil) // no /freshness
	clk := &obs.FixedClock{T: time.Unix(1700000000, 0)}
	a, err := New(Config{
		Shards: []Shard{
			{Name: "shard-a", URL: sa.URL},
			{Name: "shard-b", URL: sb.URL},
			{Name: "shard-c", URL: sc.URL},
		},
		Clock: clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.PullAll(context.Background()); err != nil {
		t.Fatal(err)
	}

	ff := a.Freshness()
	if ff.Version != harvestd.FreshnessVersion || ff.LiveShards != 3 || ff.TotalShards != 3 {
		t.Fatalf("version/live/total = %d/%d/%d", ff.Version, ff.LiveShards, ff.TotalShards)
	}
	// Min watermark across shards that reported one; max effective age;
	// total backlog. shard-c contributes nothing (it has no report).
	if ff.WatermarkSeq != 40 {
		t.Errorf("fleet watermark = %d, want 40", ff.WatermarkSeq)
	}
	if ff.WatermarkAgeSeconds != 1.5 {
		t.Errorf("fleet age = %v, want 1.5", ff.WatermarkAgeSeconds)
	}
	if ff.Behind != 5 {
		t.Errorf("fleet behind = %d, want 5", ff.Behind)
	}
	if len(ff.Shards) != 3 ||
		ff.Shards[0].Name != "shard-a" || ff.Shards[1].Name != "shard-b" || ff.Shards[2].Name != "shard-c" {
		t.Fatalf("shard rows out of order: %+v", ff.Shards)
	}
	if row := ff.Shards[2]; row.WatermarkSeq != -1 || row.WatermarkAgeSeconds != -1 || row.ReportAgeSeconds != -1 || !row.Live {
		t.Errorf("reportless shard row = %+v, want unknown watermarks but live", row)
	}

	// The report ages as the clock moves: effective shard age = shard-
	// reported age + time since the aggregator pulled the report.
	clk.Advance(2 * time.Second)
	ff = a.Freshness()
	if got := ff.Shards[0].WatermarkAgeSeconds; got != 3.5 {
		t.Errorf("aged shard-a watermark age = %v, want 3.5", got)
	}
	if got := ff.Shards[0].ReportAgeSeconds; got != 2 {
		t.Errorf("report age = %v, want 2", got)
	}
	if ff.WatermarkAgeSeconds != 3.5 {
		t.Errorf("aged fleet age = %v, want 3.5", ff.WatermarkAgeSeconds)
	}

	// HTTP surface: /freshness round-trips and is byte-stable under a
	// fixed clock.
	srv := httptest.NewServer(a.handler())
	t.Cleanup(srv.Close)
	resp, err := http.Get(srv.URL + "/freshness")
	if err != nil {
		t.Fatal(err)
	}
	var got FleetFreshness
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if got.WatermarkSeq != 40 || got.LiveShards != 3 {
		t.Errorf("HTTP freshness = %+v", got)
	}
}
