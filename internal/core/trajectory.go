package core

import "sort"

// Trajectory is an ordered sequence of datapoints whose decisions interact —
// the setting of §5 where assumption A1 (i.i.d. contexts) breaks because a
// decision changes the context seen by later decisions. The long-horizon
// estimators in package ope weight whole trajectories instead of single
// datapoints.
type Trajectory []Datapoint

// Return computes the trajectory's discounted return with discount gamma in
// (0, 1]; gamma=1 gives the undiscounted sum of rewards.
func (tr Trajectory) Return(gamma float64) float64 {
	g := 1.0
	total := 0.0
	for i := range tr {
		total += g * tr[i].Reward
		g *= gamma
	}
	return total
}

// SplitTrajectories groups a flat dataset into trajectories by Tag, ordering
// each trajectory by Seq. Datapoints with an empty tag become length-one
// trajectories (the CB case). Group order follows first appearance so output
// is deterministic.
func SplitTrajectories(ds Dataset) []Trajectory {
	var order []string
	groups := make(map[string]Trajectory)
	var singletons []Trajectory
	for i := range ds {
		d := ds[i]
		if d.Tag == "" {
			singletons = append(singletons, Trajectory{d})
			continue
		}
		if _, ok := groups[d.Tag]; !ok {
			order = append(order, d.Tag)
		}
		groups[d.Tag] = append(groups[d.Tag], d)
	}
	out := make([]Trajectory, 0, len(order)+len(singletons))
	for _, tag := range order {
		tr := groups[tag]
		sort.SliceStable(tr, func(i, j int) bool { return tr[i].Seq < tr[j].Seq })
		out = append(out, tr)
	}
	out = append(out, singletons...)
	return out
}

// Flatten concatenates trajectories back into a single dataset.
func Flatten(trs []Trajectory) Dataset {
	n := 0
	for _, tr := range trs {
		n += len(tr)
	}
	ds := make(Dataset, 0, n)
	for _, tr := range trs {
		ds = append(ds, tr...)
	}
	return ds
}
