package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVectorDot(t *testing.T) {
	cases := []struct {
		v, w Vector
		want float64
	}{
		{nil, nil, 0},
		{Vector{1, 2}, Vector{3, 4}, 11},
		{Vector{1, 2, 5}, Vector{3, 4}, 11}, // length mismatch: extra dims ignored
		{Vector{1}, Vector{2, 100}, 2},
	}
	for _, c := range cases {
		if got := c.v.Dot(c.w); got != c.want {
			t.Errorf("%v·%v = %v, want %v", c.v, c.w, got, c.want)
		}
	}
}

func TestVectorCloneIndependent(t *testing.T) {
	v := Vector{1, 2, 3}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Error("Clone should not alias")
	}
	if Vector(nil).Clone() != nil {
		t.Error("Clone(nil) should be nil")
	}
}

func TestVectorNormScaleAdd(t *testing.T) {
	v := Vector{3, 4}
	if v.Norm() != 5 {
		t.Errorf("Norm = %v", v.Norm())
	}
	v.Scale(2)
	if v[0] != 6 || v[1] != 8 {
		t.Errorf("Scale: %v", v)
	}
	v.Add(Vector{1, 1, 100}) // trailing entry ignored
	if v[0] != 7 || v[1] != 9 {
		t.Errorf("Add: %v", v)
	}
}

func TestContextValidate(t *testing.T) {
	good := Context{Features: Vector{1}, NumActions: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("valid context rejected: %v", err)
	}
	bad := Context{NumActions: 0}
	if err := bad.Validate(); err == nil {
		t.Error("0 actions should fail")
	}
	mismatch := Context{NumActions: 2, ActionFeatures: []Vector{{1}}}
	if err := mismatch.Validate(); err == nil {
		t.Error("action-feature length mismatch should fail")
	}
}

func TestFeaturesFor(t *testing.T) {
	shared := Context{Features: Vector{7}, NumActions: 2}
	if got := shared.FeaturesFor(1); got[0] != 7 {
		t.Errorf("shared features: %v", got)
	}
	perAction := Context{
		Features:       Vector{7},
		ActionFeatures: []Vector{{1}, {2}},
		NumActions:     2,
	}
	if got := perAction.FeaturesFor(1); got[0] != 2 {
		t.Errorf("per-action features: %v", got)
	}
}

func TestDatapointValidate(t *testing.T) {
	ok := Datapoint{
		Context:    Context{NumActions: 3},
		Action:     1,
		Reward:     0.5,
		Propensity: 0.3,
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid datapoint rejected: %v", err)
	}
	for name, d := range map[string]Datapoint{
		"action too big":  {Context: Context{NumActions: 3}, Action: 3, Propensity: 0.5},
		"action negative": {Context: Context{NumActions: 3}, Action: -1, Propensity: 0.5},
		"zero propensity": {Context: Context{NumActions: 3}, Action: 0, Propensity: 0},
		"p > 1":           {Context: Context{NumActions: 3}, Action: 0, Propensity: 1.5},
		"NaN reward":      {Context: Context{NumActions: 3}, Action: 0, Propensity: 0.5, Reward: math.NaN()},
		"Inf reward":      {Context: Context{NumActions: 3}, Action: 0, Propensity: 0.5, Reward: math.Inf(1)},
	} {
		if err := d.Validate(); err == nil {
			t.Errorf("%s should fail validation", name)
		}
	}
}

func TestDatasetValidateReportsIndex(t *testing.T) {
	ds := Dataset{
		{Context: Context{NumActions: 2}, Action: 0, Propensity: 0.5},
		{Context: Context{NumActions: 2}, Action: 0, Propensity: 0}, // bad
	}
	err := ds.Validate()
	if err == nil {
		t.Fatal("should fail")
	}
	if want := "datapoint 1"; err.Error()[:len(want)] != want {
		t.Errorf("error should name the index: %v", err)
	}
}

func TestMinPropensityAndRewardRange(t *testing.T) {
	if (Dataset{}).MinPropensity() != 0 {
		t.Error("empty dataset min propensity should be 0")
	}
	ds := Dataset{
		{Propensity: 0.5, Reward: 3},
		{Propensity: 0.1, Reward: -1},
		{Propensity: 0.9, Reward: 7},
	}
	if got := ds.MinPropensity(); got != 0.1 {
		t.Errorf("MinPropensity = %v", got)
	}
	lo, hi := ds.RewardRange()
	if lo != -1 || hi != 7 {
		t.Errorf("RewardRange = %v, %v", lo, hi)
	}
	lo, hi = (Dataset{}).RewardRange()
	if lo != 0 || hi != 0 {
		t.Error("empty RewardRange should be 0,0")
	}
}

type fixedStochastic struct {
	dist []float64
}

func (f fixedStochastic) Act(ctx *Context) Action {
	best := 0
	for i, p := range f.dist {
		if p > f.dist[best] {
			best = i
		}
	}
	return Action(best)
}

func (f fixedStochastic) Distribution(ctx *Context) []float64 { return f.dist }

func TestActionProb(t *testing.T) {
	ctx := &Context{NumActions: 3}
	det := PolicyFunc(func(*Context) Action { return 2 })
	if p := ActionProb(det, ctx, 2); p != 1 {
		t.Errorf("matching deterministic: %v", p)
	}
	if p := ActionProb(det, ctx, 0); p != 0 {
		t.Errorf("non-matching deterministic: %v", p)
	}
	st := fixedStochastic{dist: []float64{0.2, 0.3, 0.5}}
	if p := ActionProb(st, ctx, 1); p != 0.3 {
		t.Errorf("stochastic: %v", p)
	}
	if p := ActionProb(st, ctx, 5); p != 0 {
		t.Errorf("out-of-range action: %v", p)
	}
}

func TestTrajectoryReturn(t *testing.T) {
	tr := Trajectory{{Reward: 1}, {Reward: 2}, {Reward: 4}}
	if got := tr.Return(1); got != 7 {
		t.Errorf("undisc return = %v", got)
	}
	if got := tr.Return(0.5); got != 1+1+1 {
		t.Errorf("disc return = %v, want 3", got)
	}
	if got := (Trajectory{}).Return(1); got != 0 {
		t.Errorf("empty return = %v", got)
	}
}

func TestSplitTrajectories(t *testing.T) {
	ds := Dataset{
		{Tag: "b", Seq: 2, Reward: 20},
		{Tag: "a", Seq: 1, Reward: 1},
		{Tag: "b", Seq: 1, Reward: 10},
		{Tag: "", Seq: 0, Reward: 99},
		{Tag: "a", Seq: 2, Reward: 2},
	}
	trs := SplitTrajectories(ds)
	if len(trs) != 3 {
		t.Fatalf("got %d trajectories, want 3", len(trs))
	}
	// First-appearance order: b, a, then singleton.
	if trs[0][0].Reward != 10 || trs[0][1].Reward != 20 {
		t.Errorf("trajectory b mis-sorted: %+v", trs[0])
	}
	if trs[1][0].Reward != 1 || trs[1][1].Reward != 2 {
		t.Errorf("trajectory a mis-sorted: %+v", trs[1])
	}
	if len(trs[2]) != 1 || trs[2][0].Reward != 99 {
		t.Errorf("singleton: %+v", trs[2])
	}
	flat := Flatten(trs)
	if len(flat) != len(ds) {
		t.Errorf("Flatten lost data: %d != %d", len(flat), len(ds))
	}
}

// Property: Dot is symmetric and linear in its first argument's scale.
func TestDotProperties(t *testing.T) {
	f := func(a, b []float64, c float64) bool {
		va, vb := sanitize(a), sanitize(b)
		c = math.Mod(c, 100)
		if math.IsNaN(c) {
			c = 1
		}
		if math.Abs(va.Dot(vb)-vb.Dot(va)) > 1e-6 {
			return false
		}
		scaled := va.Clone().Scale(c)
		return math.Abs(scaled.Dot(vb)-c*va.Dot(vb)) < 1e-6*(1+math.Abs(c*va.Dot(vb)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sanitize(xs []float64) Vector {
	v := make(Vector, 0, len(xs))
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		v = append(v, math.Mod(x, 1000))
	}
	return v
}

func TestImportanceWeight(t *testing.T) {
	cases := []struct {
		pi, p  float64
		want   float64
		wantOK bool
	}{
		{0.5, 0.25, 2, true},
		{0, 0.5, 0, true},
		{1, 1, 1, true},
		{0.5, 0, 0, false},
		{0.5, -0.1, 0, false},
		{0.5, math.NaN(), 0, false},
	}
	for _, c := range cases {
		w, ok := ImportanceWeight(c.pi, c.p)
		if w != c.want || ok != c.wantOK {
			t.Errorf("ImportanceWeight(%v, %v) = (%v, %v), want (%v, %v)",
				c.pi, c.p, w, ok, c.want, c.wantOK)
		}
	}
}

// Property: ok exactly when p > 0, the weight is pi/p in that case, and a
// rejected datapoint contributes a hard zero (never NaN/Inf) to any sum it
// accidentally reaches.
func TestImportanceWeightGate(t *testing.T) {
	f := func(pi, p float64) bool {
		w, ok := ImportanceWeight(pi, p)
		if ok != (p > 0) {
			return false
		}
		if !ok {
			return w == 0
		}
		return w == pi/p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
