// Package core defines the contextual-bandit vocabulary shared by the whole
// repository: feature vectors, contexts, actions, the ⟨x, a, r, p⟩
// exploration datapoint of the harvesting methodology, and the Policy
// interfaces that every estimator, learner, and substrate speaks.
//
// The paper ("Harvesting Randomness to Optimize Distributed Systems",
// HotNets 2017, §2–§3) casts a system decision as: observe a context x,
// choose an action a with probability p under the deployed policy, observe a
// reward r. A logged interaction is therefore the tuple ⟨x, a, r, p⟩, and a
// candidate policy π can be evaluated offline from a set of such tuples.
package core

import (
	"errors"
	"fmt"
	"math"
)

// Action identifies one of the eligible choices for a decision. Actions are
// small dense integers in [0, NumActions) — the paper's settings (reboot
// wait minutes, backend servers, eviction candidates) all reduce to this.
type Action int

// Vector is a dense feature vector. The zero value is an empty vector.
type Vector []float64

// Dot returns the inner product of v and w. Missing trailing entries on
// either side are treated as zero, so vectors of different lengths compose
// safely (useful when features are appended over time).
func (v Vector) Dot(w Vector) float64 {
	n := len(v)
	if len(w) < n {
		n = len(w)
	}
	s := 0.0
	for i := 0; i < n; i++ {
		s += v[i] * w[i]
	}
	return s
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	if v == nil {
		return nil
	}
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 {
	return math.Sqrt(v.Dot(v))
}

// Scale multiplies every component in place and returns v for chaining.
func (v Vector) Scale(c float64) Vector {
	for i := range v {
		v[i] *= c
	}
	return v
}

// Add accumulates w into v in place (entries of w beyond len(v) are ignored).
func (v Vector) Add(w Vector) {
	for i := range w {
		if i >= len(v) {
			break
		}
		v[i] += w[i]
	}
}

// Context is the state observed before a decision: a shared feature vector,
// optionally per-action feature vectors, and the number of eligible actions.
type Context struct {
	// Features describes the decision globally (machine hardware, request
	// type, time of day, ...).
	Features Vector
	// ActionFeatures optionally describes each eligible action (per-server
	// load, per-item size and recency, ...). Either nil or of length
	// NumActions.
	ActionFeatures []Vector
	// NumActions is the size of the action set for this decision. The
	// action set may vary per decision (e.g. eviction candidates).
	NumActions int
}

// Validate checks structural invariants.
func (c *Context) Validate() error {
	if c.NumActions <= 0 {
		return fmt.Errorf("core: context has %d actions", c.NumActions)
	}
	if c.ActionFeatures != nil && len(c.ActionFeatures) != c.NumActions {
		return fmt.Errorf("core: %d action-feature rows for %d actions",
			len(c.ActionFeatures), c.NumActions)
	}
	return nil
}

// FeaturesFor returns the feature vector describing action a in context c:
// the per-action vector when present, else the shared features. This is the
// input to per-action reward models.
func (c *Context) FeaturesFor(a Action) Vector {
	if c.ActionFeatures != nil && int(a) < len(c.ActionFeatures) {
		return c.ActionFeatures[a]
	}
	return c.Features
}

// Datapoint is one logged interaction: the exploration tuple ⟨x, a, r, p⟩.
type Datapoint struct {
	Context    Context
	Action     Action
	Reward     float64
	Propensity float64
	// Seq orders datapoints within a trajectory (used by the long-horizon
	// estimators of §5); Tag carries an opaque source annotation.
	Seq int64
	Tag string
}

// Validate checks that the datapoint is usable for off-policy evaluation.
// In particular the logged action's propensity must be positive — the ips
// estimator is undefined otherwise (§4).
func (d *Datapoint) Validate() error {
	if err := d.Context.Validate(); err != nil {
		return err
	}
	if d.Action < 0 || int(d.Action) >= d.Context.NumActions {
		return fmt.Errorf("core: action %d out of range [0,%d)", d.Action, d.Context.NumActions)
	}
	if !(d.Propensity > 0) || d.Propensity > 1 {
		return fmt.Errorf("core: propensity %v out of (0,1]", d.Propensity)
	}
	if math.IsNaN(d.Reward) || math.IsInf(d.Reward, 0) {
		return fmt.Errorf("core: non-finite reward %v", d.Reward)
	}
	return nil
}

// Dataset is an ordered collection of exploration datapoints.
type Dataset []Datapoint

// Validate checks every datapoint, reporting the first failure with its index.
func (ds Dataset) Validate() error {
	for i := range ds {
		if err := ds[i].Validate(); err != nil {
			return fmt.Errorf("datapoint %d: %w", i, err)
		}
	}
	return nil
}

// MinPropensity returns the smallest logged propensity in the dataset — the
// ε of the paper's Eq. 1. It returns 0 for an empty dataset.
func (ds Dataset) MinPropensity() float64 {
	if len(ds) == 0 {
		return 0
	}
	min := ds[0].Propensity
	for i := 1; i < len(ds); i++ {
		if ds[i].Propensity < min {
			min = ds[i].Propensity
		}
	}
	return min
}

// RewardRange returns the smallest and largest rewards in the dataset.
func (ds Dataset) RewardRange() (lo, hi float64) {
	if len(ds) == 0 {
		return 0, 0
	}
	lo, hi = ds[0].Reward, ds[0].Reward
	for i := 1; i < len(ds); i++ {
		if r := ds[i].Reward; r < lo {
			lo = r
		} else if r > hi {
			hi = r
		}
	}
	return lo, hi
}

// Policy maps a context to an action deterministically. Candidate policies
// being evaluated offline implement this.
type Policy interface {
	// Act returns the chosen action for the context. Implementations must
	// return an action in [0, ctx.NumActions).
	Act(ctx *Context) Action
}

// StochasticPolicy additionally exposes a full distribution over actions.
// Deployed (logging) policies implement this so the harvester can record
// propensities; the long-horizon estimators need it for candidate policies
// too.
type StochasticPolicy interface {
	Policy
	// Distribution returns the probability of each action in the context.
	// The returned slice has length ctx.NumActions and sums to 1.
	Distribution(ctx *Context) []float64
}

// PolicyFunc adapts a plain function to the Policy interface.
type PolicyFunc func(ctx *Context) Action

// Act implements Policy.
func (f PolicyFunc) Act(ctx *Context) Action { return f(ctx) }

// ErrNoData is returned by estimators and learners given an empty dataset.
var ErrNoData = errors.New("core: empty dataset")

// ImportanceWeight is the single positivity-checked gate for every
// IPS-family hot path: it returns the importance weight w = pi/p and true
// when the logged propensity p is strictly positive, and (0, false)
// otherwise. Estimators must never divide by a propensity directly —
// an unguarded p = 0 (or a NaN) poisons a running estimate with ±Inf
// without crashing. The harvestlint propdiv analyzer enforces this.
func ImportanceWeight(pi, p float64) (float64, bool) {
	if !(p > 0) {
		return 0, false
	}
	return pi / p, true
}

// ActionProber is an optional fast path for estimators: a policy that can
// report the probability of a single action without materializing its whole
// distribution. Implementing it removes the per-datapoint allocation in the
// IPS hot loop (Distribution must allocate a slice; ActionProb need not).
type ActionProber interface {
	// ActionProb returns the probability of choosing a in ctx. Must agree
	// with Distribution(ctx)[a] when both are implemented.
	ActionProb(ctx *Context, a Action) float64
}

// ActionProb returns the probability that policy assigns to action a in ctx:
// the exact probability for stochastic policies, else 1 if the deterministic
// choice matches and 0 otherwise. Estimators use this to weight matches.
// Policies implementing ActionProber take the allocation-free path.
func ActionProb(policy Policy, ctx *Context, a Action) float64 {
	if ap, ok := policy.(ActionProber); ok {
		return ap.ActionProb(ctx, a)
	}
	if sp, ok := policy.(StochasticPolicy); ok {
		dist := sp.Distribution(ctx)
		if int(a) < len(dist) {
			return dist[a]
		}
		return 0
	}
	if policy.Act(ctx) == a {
		return 1
	}
	return 0
}
