package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// MaxRecordBytes bounds one input record across every ingest parser in the
// repository: a JSONL line, an access-log line, a cache-log line, or a
// binary record segment. Before this constant the limits disagreed silently
// (8 MiB for text logs, 16 MiB for JSONL), so the same oversized record
// could be a hard error on one path and fine on another; every scanner now
// shares this bound and an over-limit record is an explicit error everywhere.
const MaxRecordBytes = 16 * 1024 * 1024

// ScanBufferSize is the initial buffer handed to the record scanners; they
// grow on demand up to MaxRecordBytes.
const ScanBufferSize = 64 * 1024

// wireDatapoint is the JSONL wire form of a Datapoint. Field names are short
// because exploration datasets can run to millions of lines.
type wireDatapoint struct {
	X  []float64   `json:"x,omitempty"`
	AF [][]float64 `json:"af,omitempty"`
	K  int         `json:"k"`
	A  int         `json:"a"`
	R  float64     `json:"r"`
	P  float64     `json:"p"`
	S  int64       `json:"s,omitempty"`
	T  string      `json:"t,omitempty"`
}

// WriteJSONL serializes the dataset as one JSON object per line.
func (ds Dataset) WriteJSONL(w io.Writer) error {
	jw := NewJSONLWriter(w)
	for i := range ds {
		if err := jw.Write(&ds[i]); err != nil {
			return fmt.Errorf("core: encoding datapoint %d: %w", i, err)
		}
	}
	return jw.Flush()
}

// JSONLWriter streams datapoints as JSONL without materializing a Dataset —
// the converse of ReadJSONLFunc, used by converters that rewrite
// million-line logs record by record.
type JSONLWriter struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewJSONLWriter wraps w in a buffered JSONL datapoint writer. Call Flush
// when done.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	bw := bufio.NewWriter(w)
	return &JSONLWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// Write appends one datapoint as a JSON line.
func (jw *JSONLWriter) Write(d *Datapoint) error {
	wd := wireDatapoint{
		X: d.Context.Features,
		K: d.Context.NumActions,
		A: int(d.Action),
		R: d.Reward,
		P: d.Propensity,
		S: d.Seq,
		T: d.Tag,
	}
	if d.Context.ActionFeatures != nil {
		wd.AF = make([][]float64, len(d.Context.ActionFeatures))
		for j, v := range d.Context.ActionFeatures {
			wd.AF[j] = v
		}
	}
	return jw.enc.Encode(&wd)
}

// Flush drains the write buffer to the underlying writer.
func (jw *JSONLWriter) Flush() error { return jw.bw.Flush() }

// ReadJSONL parses a dataset written by WriteJSONL. Blank lines are skipped.
func ReadJSONL(r io.Reader) (Dataset, error) {
	var ds Dataset
	err := ReadJSONLFunc(r, func(d Datapoint) error {
		ds = append(ds, d)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ds, nil
}

// ReadJSONLFunc parses a JSONL dataset incrementally, invoking handle for
// each datapoint as soon as its line is decoded — million-line exploration
// datasets stream through in constant memory instead of materializing a
// slice. Blank lines are skipped. handle returning a non-nil error stops
// the stream and propagates the error with the line number; so does a
// malformed line.
func ReadJSONLFunc(r io.Reader, handle func(Datapoint) error) error {
	if handle == nil {
		return fmt.Errorf("core: nil datapoint handler")
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, ScanBufferSize), MaxRecordBytes)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var wd wireDatapoint
		if err := json.Unmarshal(raw, &wd); err != nil {
			return fmt.Errorf("core: line %d: %w", line, err)
		}
		d := Datapoint{
			Context: Context{
				Features:   wd.X,
				NumActions: wd.K,
			},
			Action:     Action(wd.A),
			Reward:     wd.R,
			Propensity: wd.P,
			Seq:        wd.S,
			Tag:        wd.T,
		}
		if wd.AF != nil {
			d.Context.ActionFeatures = make([]Vector, len(wd.AF))
			for j, v := range wd.AF {
				d.Context.ActionFeatures[j] = v
			}
		}
		if err := handle(d); err != nil {
			return fmt.Errorf("core: line %d: handler: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("core: reading dataset: %w", err)
	}
	return nil
}
