package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleDataset() Dataset {
	return Dataset{
		{
			Context: Context{
				Features:   Vector{1, 2.5},
				NumActions: 3,
			},
			Action:     1,
			Reward:     0.75,
			Propensity: 1.0 / 3,
			Seq:        42,
			Tag:        "traj-1",
		},
		{
			Context: Context{
				Features:       Vector{0},
				ActionFeatures: []Vector{{1, 0}, {0, 1}},
				NumActions:     2,
			},
			Action:     0,
			Reward:     -2,
			Propensity: 0.5,
		},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	ds := sampleDataset()
	var buf bytes.Buffer
	if err := ds.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, ds)
	}
}

func TestReadJSONLSkipsBlankLines(t *testing.T) {
	input := `{"k":2,"a":0,"r":1,"p":0.5}

{"k":2,"a":1,"r":2,"p":0.5}
`
	ds, err := ReadJSONL(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Errorf("got %d datapoints, want 2", len(ds))
	}
}

func TestReadJSONLBadLineReportsNumber(t *testing.T) {
	input := `{"k":2,"a":0,"r":1,"p":0.5}
not-json`
	_, err := ReadJSONL(strings.NewReader(input))
	if err == nil {
		t.Fatal("should fail")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error should name the line: %v", err)
	}
}

func TestReadJSONLFuncRoundTrip(t *testing.T) {
	// Streaming reads must see every field the batch reader sees, including
	// the optional ActionFeatures/Tag/Seq — datapoint for datapoint.
	ds := sampleDataset()
	var buf bytes.Buffer
	if err := ds.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var got Dataset
	err := ReadJSONLFunc(&buf, func(d Datapoint) error {
		got = append(got, d)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds, got) {
		t.Errorf("streaming round trip mismatch:\n got %+v\nwant %+v", got, ds)
	}
	if got[0].Tag != "traj-1" || got[0].Seq != 42 {
		t.Errorf("optional fields lost: %+v", got[0])
	}
	if len(got[1].Context.ActionFeatures) != 2 {
		t.Errorf("action features lost: %+v", got[1].Context)
	}
}

func TestReadJSONLFuncHandlerError(t *testing.T) {
	ds := sampleDataset()
	var buf bytes.Buffer
	if err := ds.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	calls := 0
	err := ReadJSONLFunc(&buf, func(Datapoint) error {
		calls++
		if calls == 2 {
			return ErrNoData // any sentinel
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("handler error should carry line 2: %v", err)
	}
	if calls != 2 {
		t.Errorf("handler called %d times after error", calls)
	}
}

func TestReadJSONLFuncValidation(t *testing.T) {
	if err := ReadJSONLFunc(strings.NewReader(""), nil); err == nil {
		t.Error("nil handler should fail")
	}
	err := ReadJSONLFunc(strings.NewReader("{bad"), func(Datapoint) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Errorf("malformed line should fail with its number: %v", err)
	}
}

func TestWriteEmptyDataset(t *testing.T) {
	var buf bytes.Buffer
	if err := (Dataset{}).WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty dataset should write nothing, got %q", buf.String())
	}
	ds, err := ReadJSONL(&buf)
	if err != nil || len(ds) != 0 {
		t.Errorf("reading empty: %v, %v", ds, err)
	}
}

func TestRoundTripLarge(t *testing.T) {
	var ds Dataset
	for i := 0; i < 5000; i++ {
		ds = append(ds, Datapoint{
			Context:    Context{Features: Vector{float64(i)}, NumActions: 4},
			Action:     Action(i % 4),
			Reward:     float64(i) / 100,
			Propensity: 0.25,
			Seq:        int64(i),
		})
	}
	var buf bytes.Buffer
	if err := ds.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ds) {
		t.Fatalf("len %d != %d", len(got), len(ds))
	}
	if !reflect.DeepEqual(ds[4999], got[4999]) {
		t.Errorf("last datapoint mismatch")
	}
}

// TestReadJSONLOverLimitLine: a record longer than MaxRecordBytes is an
// explicit error, not a silent skip — the shared limit every ingest scanner
// in the repo uses (see MaxRecordBytes).
func TestReadJSONLOverLimitLine(t *testing.T) {
	line := `{"k":2,"a":0,"r":1,"p":0.5,"t":"` + strings.Repeat("x", MaxRecordBytes) + `"}`
	err := ReadJSONLFunc(strings.NewReader(line), func(Datapoint) error { return nil })
	if err == nil {
		t.Fatal("want error for over-limit line, got nil")
	}
	if !strings.Contains(err.Error(), "token too long") {
		t.Errorf("error %q should name the scanner limit", err)
	}
}

// TestJSONLWriterStreams: the streaming writer produces byte-identical
// output to the batch Dataset.WriteJSONL path.
func TestJSONLWriterStreams(t *testing.T) {
	ds := Dataset{
		{Context: Context{Features: Vector{1, 2}, NumActions: 3}, Action: 1, Reward: 0.5, Propensity: 0.25, Seq: 7, Tag: "s"},
		{Context: Context{ActionFeatures: []Vector{{1}, {2}}, NumActions: 2}, Action: 0, Reward: -1, Propensity: 1},
	}
	var batch bytes.Buffer
	if err := ds.WriteJSONL(&batch); err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	jw := NewJSONLWriter(&stream)
	for i := range ds {
		if err := jw.Write(&ds[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	if batch.String() != stream.String() {
		t.Errorf("streaming writer diverged:\n batch  %q\n stream %q", batch.String(), stream.String())
	}
}
