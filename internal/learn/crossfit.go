package learn

import (
	"fmt"

	"repro/internal/core"
)

// CrossFitRewardPredictions produces out-of-fold reward predictions for
// every (datapoint, action) pair: the data is split into folds, one model
// is trained per fold on the *other* folds, and each datapoint is predicted
// by the model that never saw it.
//
// This is the standard fix for the subtle failure of model-based
// estimators: a reward model fitted on the same data it corrects can
// memorize its noise (the DR correction term then vanishes exactly where
// it is needed), quietly re-biasing a "doubly robust" estimate. Cross-
// fitting restores independence at the cost of folds× training time.
// Feed the result to ope.AlignedDR.
func CrossFitRewardPredictions(data core.Dataset, folds int, opts FitOptions) ([][]float64, error) {
	if len(data) == 0 {
		return nil, core.ErrNoData
	}
	if folds < 2 {
		return nil, fmt.Errorf("learn: cross-fitting needs ≥2 folds, got %d", folds)
	}
	if folds > len(data) {
		return nil, fmt.Errorf("learn: %d folds for %d datapoints", folds, len(data))
	}
	k := opts.NumActions
	if k == 0 {
		for i := range data {
			if data[i].Context.NumActions > k {
				k = data[i].Context.NumActions
			}
		}
	}
	preds := make([][]float64, len(data))
	train := make(core.Dataset, 0, len(data))
	for f := 0; f < folds; f++ {
		train = train[:0]
		for i := range data {
			if i%folds != f {
				train = append(train, data[i])
			}
		}
		foldOpts := opts
		foldOpts.NumActions = k
		model, err := FitRewardModel(train, foldOpts)
		if err != nil {
			return nil, fmt.Errorf("learn: cross-fit fold %d: %w", f, err)
		}
		for i := range data {
			if i%folds != f {
				continue
			}
			row := make([]float64, k)
			for a := 0; a < k; a++ {
				row[a] = model.Predict(&data[i].Context, core.Action(a))
			}
			preds[i] = row
		}
	}
	return preds, nil
}
