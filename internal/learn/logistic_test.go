package learn

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

func TestMultinomialRecoversContextFreeRates(t *testing.T) {
	// Labels drawn from fixed rates regardless of x: the learned
	// probabilities should match the rates — exactly the empirical
	// propensity-inference use case.
	r := stats.NewRand(1)
	rates := []float64{0.2, 0.5, 0.3}
	n := 20000
	xs := make([]core.Vector, n)
	as := make([]core.Action, n)
	for i := range xs {
		xs[i] = core.Vector{r.Float64()}
		as[i] = core.Action(stats.Categorical(r, rates))
	}
	m, err := FitMultinomial(xs, as, MultinomialOptions{Epochs: 100})
	if err != nil {
		t.Fatal(err)
	}
	p := m.Probabilities(core.Vector{0.5})
	for a, want := range rates {
		if math.Abs(p[a]-want) > 0.03 {
			t.Errorf("p(%d) = %v, want %v", a, p[a], want)
		}
	}
}

func TestMultinomialSeparatesContexts(t *testing.T) {
	// Action 1 chosen when x > 0, else action 0 (with slight noise):
	// the model should assign high probability correctly by context.
	r := stats.NewRand(2)
	n := 8000
	xs := make([]core.Vector, n)
	as := make([]core.Action, n)
	for i := range xs {
		x := r.Float64()*4 - 2
		xs[i] = core.Vector{x}
		if (x > 0) != (r.Float64() < 0.05) { // 5% label noise
			as[i] = 1
		} else {
			as[i] = 0
		}
	}
	m, err := FitMultinomial(xs, as, MultinomialOptions{Epochs: 120})
	if err != nil {
		t.Fatal(err)
	}
	if p := m.Probabilities(core.Vector{1.5}); p[1] < 0.8 {
		t.Errorf("p(1 | x=1.5) = %v, want > 0.8", p[1])
	}
	if p := m.Probabilities(core.Vector{-1.5}); p[0] < 0.8 {
		t.Errorf("p(0 | x=-1.5) = %v, want > 0.8", p[0])
	}
}

func TestMultinomialProbabilitiesSumToOne(t *testing.T) {
	r := stats.NewRand(3)
	xs := make([]core.Vector, 100)
	as := make([]core.Action, 100)
	for i := range xs {
		xs[i] = core.Vector{r.Float64(), r.Float64()}
		as[i] = core.Action(r.Intn(4))
	}
	m, err := FitMultinomial(xs, as, MultinomialOptions{NumActions: 4, Epochs: 5})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumActions() != 4 {
		t.Errorf("NumActions = %d", m.NumActions())
	}
	for _, x := range []core.Vector{{0, 0}, {1, 1}, {-5, 3}} {
		p := m.Probabilities(x)
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 {
				t.Errorf("probability %v out of range", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("probabilities sum to %v", sum)
		}
	}
}

func TestMultinomialValidation(t *testing.T) {
	if _, err := FitMultinomial(nil, nil, MultinomialOptions{}); !errors.Is(err, core.ErrNoData) {
		t.Error("empty should fail")
	}
	if _, err := FitMultinomial([]core.Vector{{1}}, []core.Action{0, 1}, MultinomialOptions{}); err == nil {
		t.Error("label/row mismatch should fail")
	}
	if _, err := FitMultinomial([]core.Vector{{1}}, []core.Action{-1}, MultinomialOptions{}); err == nil {
		t.Error("negative label should fail")
	}
	if _, err := FitMultinomial([]core.Vector{{1}, {2}}, []core.Action{0, 3}, MultinomialOptions{NumActions: 2}); err == nil {
		t.Error("label exceeding NumActions should fail")
	}
	if _, err := FitMultinomial([]core.Vector{{1}}, []core.Action{0}, MultinomialOptions{}); err == nil {
		t.Error("single class should fail")
	}
}

func TestFullFeedbackValidate(t *testing.T) {
	good := FullFeedbackDataset{{
		Context: core.Context{Features: core.Vector{1}, NumActions: 2},
		Rewards: []float64{1, 2},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid dataset rejected: %v", err)
	}
	bad := FullFeedbackDataset{{
		Context: core.Context{Features: core.Vector{1}, NumActions: 2},
		Rewards: []float64{1},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("reward-count mismatch should fail")
	}
}

func TestBestActionAndOptimalReward(t *testing.T) {
	row := FullFeedbackRow{
		Context: core.Context{NumActions: 3},
		Rewards: []float64{5, 2, 8},
	}
	if row.BestAction(false) != 2 {
		t.Errorf("max best = %d", row.BestAction(false))
	}
	if row.BestAction(true) != 1 {
		t.Errorf("min best = %d", row.BestAction(true))
	}
	ds := FullFeedbackDataset{row}
	if got := ds.OptimalMeanReward(false); got != 8 {
		t.Errorf("optimal = %v", got)
	}
	if got := ds.OptimalMeanReward(true); got != 2 {
		t.Errorf("optimal-min = %v", got)
	}
}

func TestMeanReward(t *testing.T) {
	ds := FullFeedbackDataset{
		{Context: core.Context{NumActions: 2}, Rewards: []float64{1, 10}},
		{Context: core.Context{NumActions: 2}, Rewards: []float64{3, 20}},
	}
	p := core.PolicyFunc(func(*core.Context) core.Action { return 1 })
	if got := ds.MeanReward(p); got != 15 {
		t.Errorf("MeanReward = %v, want 15", got)
	}
	if got := (FullFeedbackDataset{}).MeanReward(p); got != 0 {
		t.Errorf("empty MeanReward = %v", got)
	}
}

func TestFitFullFeedbackRecoversBestPolicy(t *testing.T) {
	r := stats.NewRand(5)
	ds := make(FullFeedbackDataset, 2000)
	for i := range ds {
		x := core.Vector{r.Float64() * 2}
		ds[i] = FullFeedbackRow{
			Context: core.Context{Features: x, NumActions: 3},
			Rewards: []float64{
				perActionTruth(x, 0),
				perActionTruth(x, 1),
				perActionTruth(x, 2),
			},
		}
	}
	m, err := FitFullFeedback(ds, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	g := m.GreedyPolicy(false)
	got := ds.MeanReward(g)
	opt := ds.OptimalMeanReward(false)
	if got < opt*0.99 {
		t.Errorf("full-feedback policy reward %v < 99%% of optimal %v", got, opt)
	}
}

func TestFitFullFeedbackValidation(t *testing.T) {
	if _, err := FitFullFeedback(nil, 0); !errors.Is(err, core.ErrNoData) {
		t.Error("empty should fail")
	}
	bad := FullFeedbackDataset{{Context: core.Context{NumActions: 2}, Rewards: []float64{1}}}
	if _, err := FitFullFeedback(bad, 0); err == nil {
		t.Error("invalid rows should fail")
	}
}

func TestSimulateExploration(t *testing.T) {
	r := stats.NewRand(6)
	ds := make(FullFeedbackDataset, 3000)
	for i := range ds {
		ds[i] = FullFeedbackRow{
			Context: core.Context{Features: core.Vector{float64(i)}, NumActions: 4},
			Rewards: []float64{0, 1, 2, 3},
		}
	}
	expl := SimulateExploration(r, ds)
	if len(expl) != len(ds) {
		t.Fatalf("len = %d", len(expl))
	}
	counts := make([]int, 4)
	for i, d := range expl {
		if d.Propensity != 0.25 {
			t.Fatalf("propensity = %v", d.Propensity)
		}
		if d.Reward != float64(d.Action) {
			t.Fatalf("reward %v inconsistent with action %d", d.Reward, d.Action)
		}
		if d.Seq != int64(i) {
			t.Fatalf("seq = %d", d.Seq)
		}
		counts[d.Action]++
	}
	for a, c := range counts {
		frac := float64(c) / float64(len(expl))
		if math.Abs(frac-0.25) > 0.05 {
			t.Errorf("action %d drawn %v, want ≈0.25", a, frac)
		}
	}
}
