package learn

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

func TestEpochGreedyEpsilonDecays(t *testing.T) {
	eg, err := NewEpochGreedy(stats.NewRand(1), EpochGreedyOptions{NumActions: 3, Dim: 1})
	if err != nil {
		t.Fatal(err)
	}
	e0 := eg.Epsilon()
	if e0 != 1 {
		t.Errorf("initial epsilon = %v, want 1", e0)
	}
	ctx := core.Context{Features: core.Vector{1}, NumActions: 3}
	for i := 0; i < 1000; i++ {
		if err := eg.Update(core.Datapoint{Context: ctx, Action: 0, Reward: 1, Propensity: 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	if eg.Epsilon() >= 0.2 {
		t.Errorf("epsilon after 1000 steps = %v, want < 0.2", eg.Epsilon())
	}
	if eg.Steps() != 1000 {
		t.Errorf("Steps = %d", eg.Steps())
	}
}

func TestEpochGreedyLearnsBanditProblem(t *testing.T) {
	r := stats.NewRand(2)
	eg, err := NewEpochGreedy(r, EpochGreedyOptions{NumActions: 3, Dim: 1, C: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Interact with the synthetic environment for 5000 rounds.
	env := stats.Split(r)
	for i := 0; i < 5000; i++ {
		x := core.Vector{env.Float64() * 2}
		ctx := core.Context{Features: x, NumActions: 3}
		dist := eg.Distribution(&ctx)
		a := eg.Act(&ctx)
		rew := perActionTruth(x, a) + env.NormFloat64()*0.05
		if err := eg.Update(core.Datapoint{
			Context: ctx, Action: a, Reward: rew, Propensity: dist[a],
		}); err != nil {
			t.Fatal(err)
		}
	}
	// The frozen greedy policy should be near-optimal on fresh contexts.
	g := eg.GreedyPolicy()
	eval := stats.NewRand(99)
	var got, opt stats.Welford
	for i := 0; i < 5000; i++ {
		x := core.Vector{eval.Float64() * 2}
		ctx := core.Context{Features: x, NumActions: 3}
		got.Add(perActionTruth(x, g.Act(&ctx)))
		best := math.Inf(-1)
		for a := core.Action(0); a < 3; a++ {
			if v := perActionTruth(x, a); v > best {
				best = v
			}
		}
		opt.Add(best)
	}
	if got.Mean() < opt.Mean()*0.95 {
		t.Errorf("learned policy reward %v < 95%% of optimal %v", got.Mean(), opt.Mean())
	}
}

func TestEpochGreedyDistributionSumsToOne(t *testing.T) {
	eg, err := NewEpochGreedy(stats.NewRand(3), EpochGreedyOptions{NumActions: 4, Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &core.Context{Features: core.Vector{1, 2}, NumActions: 4}
	d := eg.Distribution(ctx)
	sum := 0.0
	for _, p := range d {
		if p < 0 {
			t.Errorf("negative propensity %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("distribution sums to %v", sum)
	}
}

func TestEpochGreedySharedMode(t *testing.T) {
	r := stats.NewRand(4)
	eg, err := NewEpochGreedy(r, EpochGreedyOptions{Dim: 2, Shared: true, Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	env := stats.Split(r)
	// Latency = 3*load + bias(server): learner should discover the
	// coefficient and route to the lower-cost action.
	for i := 0; i < 8000; i++ {
		af := []core.Vector{
			{env.Float64() * 5, 0},
			{env.Float64() * 5, 1},
		}
		ctx := core.Context{ActionFeatures: af, NumActions: 2}
		dist := eg.Distribution(&ctx)
		a := eg.Act(&ctx)
		lat := 3*af[a][0] + 2*af[a][1]
		if err := eg.Update(core.Datapoint{
			Context: ctx, Action: a, Reward: lat, Propensity: dist[a],
		}); err != nil {
			t.Fatal(err)
		}
	}
	g := eg.GreedyPolicy()
	ctx := &core.Context{
		ActionFeatures: []core.Vector{{4, 0}, {1, 1}},
		NumActions:     2,
	}
	// costs 12 vs 5 → pick server 1.
	if got := g.Act(ctx); got != 1 {
		t.Errorf("greedy = %d, want 1", got)
	}
}

func TestEpochGreedyValidation(t *testing.T) {
	if _, err := NewEpochGreedy(nil, EpochGreedyOptions{NumActions: 2, Dim: 1}); err == nil {
		t.Error("nil rand should fail")
	}
	if _, err := NewEpochGreedy(stats.NewRand(1), EpochGreedyOptions{NumActions: 2, Dim: 0}); err == nil {
		t.Error("dim=0 should fail")
	}
	if _, err := NewEpochGreedy(stats.NewRand(1), EpochGreedyOptions{Dim: 1}); err == nil {
		t.Error("per-action mode without NumActions should fail")
	}
	eg, _ := NewEpochGreedy(stats.NewRand(1), EpochGreedyOptions{NumActions: 2, Dim: 1})
	ctx := core.Context{Features: core.Vector{1}, NumActions: 2}
	if err := eg.Update(core.Datapoint{Context: ctx, Action: 0, Reward: 1, Propensity: 0}); err == nil {
		t.Error("zero propensity update should fail")
	}
	if err := eg.Update(core.Datapoint{Context: ctx, Action: 9, Reward: 1, Propensity: 0.5}); err == nil {
		t.Error("out-of-range action update should fail")
	}
}
