package learn

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/stats"
)

func TestTreeActAndValidate(t *testing.T) {
	tree := &policy.Tree{
		Idx: 0, Cut: 0.5,
		Below: &policy.Tree{Leaf: true, Action: 1},
		Above: &policy.Tree{
			Idx: 1, Cut: 2,
			Below: &policy.Tree{Leaf: true, Action: 0},
			Above: &policy.Tree{Leaf: true, Action: 2},
		},
	}
	if err := tree.Validate(3); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		feats core.Vector
		want  core.Action
	}{
		{core.Vector{0.2, 9}, 1},
		{core.Vector{0.9, 1}, 0},
		{core.Vector{0.9, 3}, 2},
		{nil, 1}, // missing features read as 0 → below branch
	}
	for _, c := range cases {
		ctx := &core.Context{Features: c.feats, NumActions: 3}
		if got := tree.Act(ctx); got != c.want {
			t.Errorf("Act(%v) = %d, want %d", c.feats, got, c.want)
		}
	}
	if tree.Depth() != 2 || tree.Leaves() != 3 {
		t.Errorf("depth %d leaves %d", tree.Depth(), tree.Leaves())
	}
	if tree.String() == "" {
		t.Error("String empty")
	}
	// Action clamping for small action sets.
	small := &core.Context{Features: core.Vector{0.9, 3}, NumActions: 2}
	if got := tree.Act(small); got != 1 {
		t.Errorf("clamped Act = %d, want 1", got)
	}
}

func TestTreeValidateRejectsBadShapes(t *testing.T) {
	if err := (&policy.Tree{Leaf: true, Action: 5}).Validate(3); err == nil {
		t.Error("leaf action out of range should fail")
	}
	if err := (&policy.Tree{Idx: 0, Cut: 1}).Validate(3); err == nil {
		t.Error("internal node without children should fail")
	}
	if err := (&policy.Tree{Idx: -1, Cut: 1,
		Below: &policy.Tree{Leaf: true}, Above: &policy.Tree{Leaf: true}}).Validate(3); err == nil {
		t.Error("negative feature index should fail")
	}
	var nilTree *policy.Tree
	if err := nilTree.Validate(2); err == nil {
		t.Error("nil tree should fail")
	}
}

func TestDistillRecoversStumpExactly(t *testing.T) {
	teacher := policy.Stump{Idx: 0, Cut: 0.5, Below: 2, Above: 0}
	r := stats.NewRand(1)
	contexts := make([]core.Context, 2000)
	for i := range contexts {
		contexts[i] = core.Context{Features: core.Vector{r.Float64()}, NumActions: 3}
	}
	tree, err := DistillTree(teacher, contexts, TreeOptions{MaxDepth: 2, CutsPerFeature: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Near-perfect agreement on fresh contexts (the learned threshold can
	// be off by at most one inter-sample gap around 0.5).
	eval := stats.NewRand(2)
	disagreements := 0
	for i := 0; i < 2000; i++ {
		ctx := core.Context{Features: core.Vector{eval.Float64()}, NumActions: 3}
		if tree.Act(&ctx) != teacher.Act(&ctx) {
			disagreements++
		}
	}
	if disagreements > 20 { // ≤1%
		t.Fatalf("%d/2000 disagreements with the teacher stump", disagreements)
	}
	if tree.Depth() > 2 {
		t.Errorf("depth = %d", tree.Depth())
	}
}

func TestDistillTracksRewardModelPolicy(t *testing.T) {
	// Distill the greedy policy of a model trained on the synthetic
	// bandit world and check the student is nearly as good.
	ds := genBandit(3, 8000, 3)
	model, err := FitRewardModel(ds, FitOptions{Lambda: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	teacher := model.GreedyPolicy(false)
	r := stats.NewRand(4)
	contexts := make([]core.Context, 4000)
	for i := range contexts {
		contexts[i] = core.Context{Features: core.Vector{r.Float64() * 2}, NumActions: 3}
	}
	tree, err := DistillTree(teacher, contexts, TreeOptions{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	evalR := stats.NewRand(5)
	var teacherVal, studentVal stats.Welford
	for i := 0; i < 5000; i++ {
		x := core.Vector{evalR.Float64() * 2}
		ctx := core.Context{Features: x, NumActions: 3}
		teacherVal.Add(perActionTruth(x, teacher.Act(&ctx)))
		studentVal.Add(perActionTruth(x, tree.Act(&ctx)))
	}
	if studentVal.Mean() < teacherVal.Mean()-0.02 {
		t.Errorf("student %v lags teacher %v", studentVal.Mean(), teacherVal.Mean())
	}
}

func TestDistillRespectsMinLeaf(t *testing.T) {
	teacher := policy.Stump{Idx: 0, Cut: 0.5, Below: 0, Above: 1}
	r := stats.NewRand(6)
	contexts := make([]core.Context, 30)
	for i := range contexts {
		contexts[i] = core.Context{Features: core.Vector{r.Float64()}, NumActions: 2}
	}
	// MinLeaf of 20 with 30 samples: no split possible → single leaf.
	tree, err := DistillTree(teacher, contexts, TreeOptions{MaxDepth: 3, MinLeaf: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Leaf {
		t.Errorf("expected a single leaf, got depth %d", tree.Depth())
	}
}

func TestDistillValidation(t *testing.T) {
	if _, err := DistillTree(nil, []core.Context{{NumActions: 2}}, TreeOptions{}); err == nil {
		t.Error("nil teacher should fail")
	}
	if _, err := DistillTree(policy.Constant{A: 0}, nil, TreeOptions{}); !errors.Is(err, core.ErrNoData) {
		t.Error("no contexts should fail")
	}
	bad := []core.Context{{NumActions: 0}}
	if _, err := DistillTree(policy.Constant{A: 0}, bad, TreeOptions{}); err == nil {
		t.Error("invalid context should fail")
	}
}

func TestDistillConstantTeacher(t *testing.T) {
	// A constant teacher distills to a single pure leaf immediately.
	r := stats.NewRand(7)
	contexts := make([]core.Context, 500)
	for i := range contexts {
		contexts[i] = core.Context{Features: core.Vector{r.Float64()}, NumActions: 4}
	}
	tree, err := DistillTree(policy.Constant{A: 3}, contexts, TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Leaf || tree.Action != 3 {
		t.Errorf("tree = %s", tree)
	}
}
