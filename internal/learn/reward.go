package learn

import (
	"fmt"

	"repro/internal/core"
)

// RewardModel is a learned predictor of reward given (context, action). It
// satisfies ope.RewardModel and powers the greedy CB policy.
//
// Two parameterizations are supported, chosen automatically from the data:
//
//   - per-action: contexts carry only shared features; the model keeps one
//     ridge weight vector per action (machine health: k wait times).
//   - shared: contexts carry per-action feature vectors; the model keeps a
//     single weight vector applied to FeaturesFor(a) (load balancing: each
//     server described by its own load features).
type RewardModel struct {
	perAction []core.Vector // one row per action, or nil in shared mode
	shared    core.Vector   // single weight vector, or nil in per-action mode
	// fallback predicts the global mean reward for actions with no data.
	fallback float64
}

// FitOptions controls reward-model fitting.
type FitOptions struct {
	// Lambda is the ridge regularization (default 1e-3 if zero).
	Lambda float64
	// ImportanceWeighted weights each datapoint by 1/propensity so the
	// regression targets the uniform-over-actions distribution rather than
	// the logging distribution. Harmless with uniform logging; important
	// with skewed logging.
	ImportanceWeighted bool
	// NumActions fixes the action count in per-action mode; 0 infers the
	// maximum NumActions in the data.
	NumActions int
}

// FitRewardModel trains a RewardModel on bandit data (each datapoint only
// labels the action actually taken).
func FitRewardModel(data core.Dataset, opts FitOptions) (*RewardModel, error) {
	if len(data) == 0 {
		return nil, core.ErrNoData
	}
	lambda := opts.Lambda
	if lambda == 0 {
		lambda = 1e-3
	}
	rg := Ridge{Lambda: lambda}

	mean := 0.0
	for i := range data {
		mean += data[i].Reward
	}
	mean /= float64(len(data))

	sharedMode := data[0].Context.ActionFeatures != nil
	m := &RewardModel{fallback: mean}

	if sharedMode {
		xs := make([]core.Vector, 0, len(data))
		ys := make([]float64, 0, len(data))
		var ws []float64
		if opts.ImportanceWeighted {
			ws = make([]float64, 0, len(data))
		}
		for i := range data {
			d := &data[i]
			xs = append(xs, d.Context.FeaturesFor(d.Action))
			ys = append(ys, d.Reward)
			if ws != nil {
				if !(d.Propensity > 0) {
					return nil, fmt.Errorf("learn: datapoint %d propensity %v", i, d.Propensity)
				}
				ws = append(ws, 1/d.Propensity)
			}
		}
		w, err := rg.Fit(xs, ys, ws)
		if err != nil {
			return nil, fmt.Errorf("learn: shared reward fit: %w", err)
		}
		m.shared = w
		return m, nil
	}

	k := opts.NumActions
	if k == 0 {
		for i := range data {
			if data[i].Context.NumActions > k {
				k = data[i].Context.NumActions
			}
		}
	}
	m.perAction = make([]core.Vector, k)
	// Bucket rows by action.
	type bucket struct {
		xs []core.Vector
		ys []float64
		ws []float64
	}
	buckets := make([]bucket, k)
	for i := range data {
		d := &data[i]
		a := int(d.Action)
		if a < 0 || a >= k {
			return nil, fmt.Errorf("learn: datapoint %d action %d out of [0,%d)", i, a, k)
		}
		b := &buckets[a]
		b.xs = append(b.xs, d.Context.Features)
		b.ys = append(b.ys, d.Reward)
		if opts.ImportanceWeighted {
			if !(d.Propensity > 0) {
				return nil, fmt.Errorf("learn: datapoint %d propensity %v", i, d.Propensity)
			}
			b.ws = append(b.ws, 1/d.Propensity)
		}
	}
	for a := 0; a < k; a++ {
		b := &buckets[a]
		if len(b.xs) == 0 {
			continue // Predict falls back to the global mean.
		}
		w, err := rg.Fit(b.xs, b.ys, b.ws)
		if err != nil {
			return nil, fmt.Errorf("learn: action %d fit: %w", a, err)
		}
		m.perAction[a] = w
	}
	return m, nil
}

// Predict implements ope.RewardModel.
func (m *RewardModel) Predict(ctx *core.Context, a core.Action) float64 {
	if m.shared != nil {
		return PredictLinear(m.shared, ctx.FeaturesFor(a))
	}
	if int(a) < len(m.perAction) && m.perAction[a] != nil {
		return PredictLinear(m.perAction[a], ctx.Features)
	}
	return m.fallback
}

// GreedyPolicy returns the policy that plays the best predicted action —
// argmax of Predict, or argmin when minimize is true (latency-like rewards
// logged as costs).
func (m *RewardModel) GreedyPolicy(minimize bool) core.Policy {
	return &greedy{model: m, minimize: minimize}
}

type greedy struct {
	model    *RewardModel
	minimize bool
}

func (g *greedy) Act(ctx *core.Context) core.Action {
	best := core.Action(0)
	bestV := g.model.Predict(ctx, 0)
	for a := 1; a < ctx.NumActions; a++ {
		v := g.model.Predict(ctx, core.Action(a))
		if (g.minimize && v < bestV) || (!g.minimize && v > bestV) {
			best, bestV = core.Action(a), v
		}
	}
	return best
}
