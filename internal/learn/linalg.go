// Package learn provides the optimization side of the paper's methodology:
// reward-model regression (ridge, SGD), importance-weighted learning from
// bandit data, a greedy contextual-bandit learner (the route the paper's §5
// credits for beating least-loaded: "the CB algorithm learns a good
// estimator of each server's latency based on context, and greedily picking
// the lowest latency yields a good policy"), an epoch-greedy online learner,
// multinomial logistic regression for propensity inference (§3 step 2), and
// the full-feedback supervised baseline of Fig. 4.
package learn

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a normal-equations solve meets a singular
// (or numerically hopeless) system.
var ErrSingular = errors.New("learn: singular system")

// solve solves the square linear system A x = b in place using Gaussian
// elimination with partial pivoting. A and b are overwritten.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("learn: solve dimensions %dx? vs %d", n, len(b))
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		maxAbs := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > maxAbs {
				maxAbs, pivot = v, r
			}
		}
		if maxAbs < 1e-12 {
			return nil, fmt.Errorf("%w: pivot %d is %g", ErrSingular, col, maxAbs)
		}
		if pivot != col {
			a[col], a[pivot] = a[pivot], a[col]
			b[col], b[pivot] = b[pivot], b[col]
		}
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}
