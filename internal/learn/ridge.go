package learn

import (
	"fmt"

	"repro/internal/core"
)

// Ridge fits weighted ridge regression by the normal equations:
// w = (XᵀWX + λI)⁻¹ XᵀWy. Inputs are augmented with a bias feature
// internally (the bias is the last weight and is not regularized away —
// λ applies to all coordinates for simplicity; with the small λ used here
// the distinction is immaterial).
type Ridge struct {
	// Lambda is the L2 regularization strength; 0 gives ordinary least
	// squares (and risks ErrSingular on collinear features).
	Lambda float64
}

// Fit returns the weight vector (length dim+1; last entry is the bias).
// weights may be nil for uniform weighting; otherwise it must match len(xs).
func (rg Ridge) Fit(xs []core.Vector, ys, weights []float64) (core.Vector, error) {
	if len(xs) == 0 {
		return nil, core.ErrNoData
	}
	if len(ys) != len(xs) {
		return nil, fmt.Errorf("learn: %d targets for %d rows", len(ys), len(xs))
	}
	if weights != nil && len(weights) != len(xs) {
		return nil, fmt.Errorf("learn: %d weights for %d rows", len(weights), len(xs))
	}
	dim := 0
	for _, x := range xs {
		if len(x) > dim {
			dim = len(x)
		}
	}
	d := dim + 1 // bias column
	// Accumulate XᵀWX and XᵀWy.
	xtx := make([][]float64, d)
	for i := range xtx {
		xtx[i] = make([]float64, d)
	}
	xty := make([]float64, d)
	row := make([]float64, d)
	for i, x := range xs {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		if w == 0 {
			continue
		}
		for j := 0; j < dim; j++ {
			if j < len(x) {
				row[j] = x[j]
			} else {
				row[j] = 0
			}
		}
		row[dim] = 1
		for a := 0; a < d; a++ {
			if row[a] == 0 {
				continue
			}
			wa := w * row[a]
			for b := a; b < d; b++ {
				xtx[a][b] += wa * row[b]
			}
			xty[a] += wa * ys[i]
		}
	}
	// Mirror the upper triangle and add the ridge.
	for a := 0; a < d; a++ {
		for b := 0; b < a; b++ {
			xtx[a][b] = xtx[b][a]
		}
		xtx[a][a] += rg.Lambda
	}
	w, err := solve(xtx, xty)
	if err != nil {
		return nil, err
	}
	return core.Vector(w), nil
}

// PredictLinear evaluates a Ridge-fitted weight vector (with trailing bias)
// on a feature vector.
func PredictLinear(w core.Vector, x core.Vector) float64 {
	if len(w) == 0 {
		return 0
	}
	dim := len(w) - 1
	s := w[dim] // bias
	for j := 0; j < dim && j < len(x); j++ {
		s += w[j] * x[j]
	}
	return s
}
