package learn

import (
	"repro/internal/core"
)

// SGDRegressor is an online linear least-squares learner with a bias term.
// It backs the incremental learners (epoch-greedy) where refitting a ridge
// solve per step would be wasteful.
type SGDRegressor struct {
	w    core.Vector // weights; last entry is the bias
	lr   float64
	dec  float64
	step int
}

// NewSGDRegressor creates a regressor for dim input features with base
// learning rate lr (default 0.05 if <= 0) and decay dec (lr_t =
// lr/(1+dec·t); default 1e-3 if < 0 is not allowed, 0 disables decay).
func NewSGDRegressor(dim int, lr, dec float64) *SGDRegressor {
	if lr <= 0 {
		lr = 0.05
	}
	if dec < 0 {
		dec = 0
	}
	return &SGDRegressor{w: make(core.Vector, dim+1), lr: lr, dec: dec}
}

// Predict returns the current linear prediction for x.
func (s *SGDRegressor) Predict(x core.Vector) float64 {
	return PredictLinear(s.w, x)
}

// Update performs one gradient step toward target y with importance weight
// iw (use 1 for unweighted; 1/propensity for IPS-weighted bandit updates).
func (s *SGDRegressor) Update(x core.Vector, y, iw float64) {
	pred := s.Predict(x)
	g := (pred - y) * iw
	lr := s.lr / (1 + s.dec*float64(s.step))
	s.step++
	dim := len(s.w) - 1
	for j := 0; j < dim && j < len(x); j++ {
		s.w[j] -= lr * g * x[j]
	}
	s.w[dim] -= lr * g // bias
}

// Steps returns the number of updates applied.
func (s *SGDRegressor) Steps() int { return s.step }

// Weights returns the current weight vector (aliased, not copied).
func (s *SGDRegressor) Weights() core.Vector { return s.w }
