package learn

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

func TestFitCSCLearnsContextualPolicy(t *testing.T) {
	ds := genBandit(1, 8000, 3)
	pol, err := FitCSC(ds, CSCOptions{NumActions: 3, Lambda: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	// perActionTruth: action 1 best below x≈2/3, action 0 above.
	if got := pol.Act(&core.Context{Features: core.Vector{0.1}, NumActions: 3}); got != 1 {
		t.Errorf("csc(0.1) = %d, want 1", got)
	}
	if got := pol.Act(&core.Context{Features: core.Vector{1.9}, NumActions: 3}); got != 0 {
		t.Errorf("csc(1.9) = %d, want 0", got)
	}
}

func TestFitCSCWithSkewedLogging(t *testing.T) {
	// The reduction's whole point: propensity weighting keeps it
	// consistent when the logging policy is biased toward one action.
	r := stats.NewRand(2)
	ds := make(core.Dataset, 20000)
	for i := range ds {
		x := core.Vector{r.Float64() * 2}
		var a core.Action
		var p float64
		if r.Float64() < 0.85 {
			a, p = 0, 0.85+0.15/3
		} else {
			a, p = core.Action(1+r.Intn(2)), 0.15/3
		}
		ds[i] = core.Datapoint{
			Context:    core.Context{Features: x, NumActions: 3},
			Action:     a,
			Reward:     perActionTruth(x, a),
			Propensity: p,
		}
	}
	pol, err := FitCSC(ds, CSCOptions{NumActions: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Action 1 is rarely logged but is the right answer for small x.
	if got := pol.Act(&core.Context{Features: core.Vector{0.1}, NumActions: 3}); got != 1 {
		t.Errorf("csc under skew (0.1) = %d, want 1", got)
	}
}

func TestFitCSCDoublyRobustVariant(t *testing.T) {
	ds := genBandit(3, 6000, 3)
	model, err := FitRewardModel(ds, FitOptions{Lambda: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := FitCSC(ds, CSCOptions{NumActions: 3, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate both variants on fresh contexts against the truth.
	evalPolicy := func(p core.Policy) float64 {
		r := stats.NewRand(99)
		var w stats.Welford
		for i := 0; i < 5000; i++ {
			x := core.Vector{r.Float64() * 2}
			ctx := core.Context{Features: x, NumActions: 3}
			w.Add(perActionTruth(x, p.Act(&ctx)))
		}
		return w.Mean()
	}
	pure, err := FitCSC(ds, CSCOptions{NumActions: 3})
	if err != nil {
		t.Fatal(err)
	}
	vDR, vIPS := evalPolicy(pol), evalPolicy(pure)
	// Both should be close to optimal; DR at least as good - small slack.
	if vDR < vIPS-0.02 {
		t.Errorf("dr-csc %v should not lag ips-csc %v", vDR, vIPS)
	}
}

func TestFitCSCMinimize(t *testing.T) {
	// Costs instead of rewards: argmin flips the choice.
	r := stats.NewRand(4)
	ds := make(core.Dataset, 4000)
	for i := range ds {
		a := core.Action(r.Intn(2))
		cost := 1.0
		if a == 1 {
			cost = 5.0
		}
		ds[i] = core.Datapoint{
			Context:    core.Context{Features: core.Vector{1}, NumActions: 2},
			Action:     a,
			Reward:     cost,
			Propensity: 0.5,
		}
	}
	pol, err := FitCSC(ds, CSCOptions{NumActions: 2, Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := pol.Act(&core.Context{Features: core.Vector{1}, NumActions: 2}); got != 0 {
		t.Errorf("min-csc = %d, want 0 (cheaper action)", got)
	}
}

func TestFitCSCValidation(t *testing.T) {
	if _, err := FitCSC(nil, CSCOptions{}); !errors.Is(err, core.ErrNoData) {
		t.Error("empty should fail")
	}
	noP := core.Dataset{{Context: core.Context{Features: core.Vector{1}, NumActions: 2}, Action: 0, Propensity: 0}}
	if _, err := FitCSC(noP, CSCOptions{}); err == nil {
		t.Error("zero propensity should fail")
	}
	badA := core.Dataset{{Context: core.Context{Features: core.Vector{1}, NumActions: 2}, Action: 5, Propensity: 0.5}}
	if _, err := FitCSC(badA, CSCOptions{NumActions: 2}); err == nil {
		t.Error("out-of-range action should fail")
	}
}

func TestCSCScoreUnknownAction(t *testing.T) {
	p := &CSCPolicy{weights: []core.Vector{{1, 0}}}
	ctx := &core.Context{Features: core.Vector{2}, NumActions: 3}
	if got := p.Score(ctx, 2); got != 0 {
		t.Errorf("missing action score = %v, want 0", got)
	}
	// Act never indexes out of range even when NumActions exceeds the
	// trained action count.
	_ = p.Act(ctx)
}
