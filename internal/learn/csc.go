package learn

import (
	"fmt"

	"repro/internal/core"
)

// CSCOptions configures the cost-sensitive classification reduction.
type CSCOptions struct {
	// NumActions fixes the action count (0 infers from data).
	NumActions int
	// Lambda is the ridge strength for the per-action score regressions
	// (default 1e-3).
	Lambda float64
	// Model optionally supplies a reward model for doubly-robust cost
	// imputation; nil uses pure IPS imputation.
	Model interface {
		Predict(ctx *core.Context, a core.Action) float64
	}
	// Minimize treats rewards as costs.
	Minimize bool
}

// CSCPolicy is the trained reduction: per-action linear scores over shared
// context features, played greedily.
type CSCPolicy struct {
	weights  []core.Vector
	minimize bool
}

// Act implements core.Policy.
func (p *CSCPolicy) Act(ctx *core.Context) core.Action {
	best := core.Action(0)
	bestV := p.Score(ctx, 0)
	for a := 1; a < ctx.NumActions; a++ {
		v := p.Score(ctx, core.Action(a))
		if (p.minimize && v < bestV) || (!p.minimize && v > bestV) {
			best, bestV = core.Action(a), v
		}
	}
	return best
}

// Score returns the learned value estimate for (ctx, a).
func (p *CSCPolicy) Score(ctx *core.Context, a core.Action) float64 {
	if int(a) >= len(p.weights) || p.weights[a] == nil {
		return 0
	}
	return PredictLinear(p.weights[a], ctx.Features)
}

// FitCSC trains a policy by the classic contextual-bandit reduction to
// cost-sensitive classification (Langford & Zhang; Dudík et al.): for every
// datapoint, impute a full vector of per-action values
//
//	v̂_a(x_t) = model(x_t, a) + 1{a_t=a}·(r_t − model(x_t, a_t))/p_t
//
// (pure IPS when model is nil: v̂_a = 1{a_t=a}·r_t/p_t), then fit one
// regressor per action on the imputed values — every action's regressor
// sees every row, unlike reward regression which only sees the rows where
// its action was taken — and play the argmax (argmin for costs).
//
// With a good model this is the doubly robust policy optimizer; with none
// it is still consistent thanks to the propensity weighting.
func FitCSC(data core.Dataset, opts CSCOptions) (*CSCPolicy, error) {
	if len(data) == 0 {
		return nil, core.ErrNoData
	}
	k := opts.NumActions
	if k == 0 {
		for i := range data {
			if data[i].Context.NumActions > k {
				k = data[i].Context.NumActions
			}
		}
	}
	lambda := opts.Lambda
	if lambda == 0 {
		lambda = 1e-3
	}
	xs := make([]core.Vector, len(data))
	for i := range data {
		xs[i] = data[i].Context.Features
	}
	rg := Ridge{Lambda: lambda}
	weights := make([]core.Vector, k)
	ys := make([]float64, len(data))
	for a := 0; a < k; a++ {
		for i := range data {
			d := &data[i]
			if !(d.Propensity > 0) {
				return nil, fmt.Errorf("learn: csc datapoint %d propensity %v", i, d.Propensity)
			}
			if int(d.Action) < 0 || int(d.Action) >= k {
				return nil, fmt.Errorf("learn: csc datapoint %d action %d out of [0,%d)", i, d.Action, k)
			}
			base := 0.0
			if opts.Model != nil {
				base = opts.Model.Predict(&d.Context, core.Action(a))
			}
			v := base
			if int(d.Action) == a {
				correction := d.Reward
				if opts.Model != nil {
					correction -= opts.Model.Predict(&d.Context, d.Action)
				}
				v += correction / d.Propensity
			}
			ys[i] = v
		}
		w, err := rg.Fit(xs, ys, nil)
		if err != nil {
			return nil, fmt.Errorf("learn: csc action %d: %w", a, err)
		}
		weights[a] = w
	}
	return &CSCPolicy{weights: weights, minimize: opts.Minimize}, nil
}
