package learn

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
)

// wireRewardModel is the JSON form of a RewardModel — the deployable
// artifact of the optimization step: train offline from harvested logs,
// ship the weights, load them in the serving system (cachesim.CBEvictor,
// the netlb proxy, ...).
type wireRewardModel struct {
	// Mode is "per-action" or "shared".
	Mode      string      `json:"mode"`
	PerAction [][]float64 `json:"per_action,omitempty"`
	Shared    []float64   `json:"shared,omitempty"`
	Fallback  float64     `json:"fallback"`
}

// MarshalJSON implements json.Marshaler.
func (m *RewardModel) MarshalJSON() ([]byte, error) {
	w := wireRewardModel{Fallback: m.fallback}
	if m.shared != nil {
		w.Mode = "shared"
		w.Shared = m.shared
		return json.Marshal(&w)
	}
	w.Mode = "per-action"
	w.PerAction = make([][]float64, len(m.perAction))
	for i, v := range m.perAction {
		w.PerAction[i] = v // nil rows stay nil (fallback actions)
	}
	return json.Marshal(&w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *RewardModel) UnmarshalJSON(data []byte) error {
	var w wireRewardModel
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("learn: decoding reward model: %w", err)
	}
	m.fallback = w.Fallback
	m.shared = nil
	m.perAction = nil
	switch w.Mode {
	case "shared":
		if len(w.Shared) == 0 {
			return fmt.Errorf("learn: shared model without weights")
		}
		m.shared = w.Shared
	case "per-action":
		if len(w.PerAction) == 0 {
			return fmt.Errorf("learn: per-action model without rows")
		}
		m.perAction = make([]core.Vector, len(w.PerAction))
		for i, v := range w.PerAction {
			m.perAction[i] = v
		}
	default:
		return fmt.Errorf("learn: unknown model mode %q", w.Mode)
	}
	return nil
}

// NumActions returns the trained action count for per-action models (0 for
// shared-mode models, which apply to any action set).
func (m *RewardModel) NumActions() int { return len(m.perAction) }
