package learn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
)

// EpochGreedy is an online contextual-bandit learner in the spirit of
// Langford & Zhang's epoch-greedy: it explores uniformly with a decaying
// probability ε_t = min(1, c·t^(-1/3)) and otherwise exploits the greedy
// action of its incrementally-trained per-action reward models. Every
// decision is randomized with known propensities, so the data it logs is
// itself harvestable — the continuous loop of §3.
type EpochGreedy struct {
	models    []*SGDRegressor
	shared    *SGDRegressor
	useShared bool
	k         int
	dim       int
	c         float64
	minimize  bool
	t         int
	r         *rand.Rand
}

// EpochGreedyOptions configures the learner.
type EpochGreedyOptions struct {
	// NumActions is the (fixed) action count. Required in per-action mode;
	// ignored when Shared is set.
	NumActions int
	// Dim is the feature dimension.
	Dim int
	// C scales the exploration schedule ε_t = min(1, C·t^(-1/3)).
	// Defaults to 1.
	C float64
	// Minimize treats rewards as costs (pick lowest prediction).
	Minimize bool
	// Shared uses a single regressor on per-action features instead of one
	// regressor per action.
	Shared bool
	// LR/Decay configure the underlying SGD (see NewSGDRegressor).
	LR, Decay float64
}

// NewEpochGreedy builds the learner.
func NewEpochGreedy(r *rand.Rand, opts EpochGreedyOptions) (*EpochGreedy, error) {
	if r == nil {
		return nil, fmt.Errorf("learn: epoch-greedy needs a rand source")
	}
	if opts.Dim <= 0 {
		return nil, fmt.Errorf("learn: epoch-greedy dim %d", opts.Dim)
	}
	c := opts.C
	if c == 0 {
		c = 1
	}
	eg := &EpochGreedy{
		k: opts.NumActions, dim: opts.Dim, c: c,
		minimize: opts.Minimize, r: r, useShared: opts.Shared,
	}
	if opts.Shared {
		eg.shared = NewSGDRegressor(opts.Dim, opts.LR, opts.Decay)
		return eg, nil
	}
	if opts.NumActions <= 0 {
		return nil, fmt.Errorf("learn: epoch-greedy needs NumActions in per-action mode")
	}
	eg.models = make([]*SGDRegressor, opts.NumActions)
	for a := range eg.models {
		eg.models[a] = NewSGDRegressor(opts.Dim, opts.LR, opts.Decay)
	}
	return eg, nil
}

// Epsilon returns the current exploration probability.
func (eg *EpochGreedy) Epsilon() float64 {
	t := float64(eg.t + 1)
	return math.Min(1, eg.c*math.Pow(t, -1.0/3.0))
}

// predict returns the model's reward prediction for (ctx, a).
func (eg *EpochGreedy) predict(ctx *core.Context, a core.Action) float64 {
	if eg.useShared {
		return eg.shared.Predict(ctx.FeaturesFor(a))
	}
	if int(a) < len(eg.models) {
		return eg.models[a].Predict(ctx.Features)
	}
	return 0
}

// greedyAction returns the current exploit choice.
func (eg *EpochGreedy) greedyAction(ctx *core.Context) core.Action {
	best := core.Action(0)
	bestV := eg.predict(ctx, 0)
	for a := 1; a < ctx.NumActions; a++ {
		v := eg.predict(ctx, core.Action(a))
		if (eg.minimize && v < bestV) || (!eg.minimize && v > bestV) {
			best, bestV = core.Action(a), v
		}
	}
	return best
}

// Act implements core.Policy: ε-greedy over the learned models.
func (eg *EpochGreedy) Act(ctx *core.Context) core.Action {
	if eg.r.Float64() < eg.Epsilon() {
		return core.Action(eg.r.Intn(ctx.NumActions))
	}
	return eg.greedyAction(ctx)
}

// Distribution implements core.StochasticPolicy, exposing exact propensities
// for harvesting.
func (eg *EpochGreedy) Distribution(ctx *core.Context) []float64 {
	eps := eg.Epsilon()
	d := make([]float64, ctx.NumActions)
	for i := range d {
		d[i] = eps / float64(ctx.NumActions)
	}
	d[eg.greedyAction(ctx)] += 1 - eps
	return d
}

// Update folds one observed interaction into the models. Propensity-weighted
// updates keep the regression unbiased under the learner's own skew.
func (eg *EpochGreedy) Update(d core.Datapoint) error {
	if !(d.Propensity > 0) {
		return fmt.Errorf("learn: update with propensity %v", d.Propensity)
	}
	eg.t++
	iw := 1.0 // plain squared-loss update; propensity kept for diagnostics
	if eg.useShared {
		eg.shared.Update(d.Context.FeaturesFor(d.Action), d.Reward, iw)
		return nil
	}
	a := int(d.Action)
	if a < 0 || a >= len(eg.models) {
		return fmt.Errorf("learn: update action %d out of range", a)
	}
	eg.models[a].Update(d.Context.Features, d.Reward, iw)
	return nil
}

// Steps returns the number of updates folded in.
func (eg *EpochGreedy) Steps() int { return eg.t }

// GreedyPolicy returns the frozen exploit-only policy (no exploration) —
// what you would deploy after training.
func (eg *EpochGreedy) GreedyPolicy() core.Policy {
	return core.PolicyFunc(eg.greedyAction)
}
