package learn

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

func TestSolveKnownSystem(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// 2x+y=5, x+3y=10 → x=1, y=3.
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{2, 3}
	x, err := solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 2 {
		t.Errorf("x = %v, want [3 2]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := solve(a, b); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveDimensionMismatch(t *testing.T) {
	if _, err := solve([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("mismatched dims should fail")
	}
	if _, err := solve(nil, nil); err == nil {
		t.Error("empty system should fail")
	}
}

func TestRidgeRecoversLinearFunction(t *testing.T) {
	r := stats.NewRand(1)
	// y = 3x0 - 2x1 + 5 with tiny noise.
	xs := make([]core.Vector, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = core.Vector{r.Float64() * 10, r.Float64() * 10}
		ys[i] = 3*xs[i][0] - 2*xs[i][1] + 5 + r.NormFloat64()*0.01
	}
	w, err := Ridge{Lambda: 1e-6}.Fit(xs, ys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-3) > 0.01 || math.Abs(w[1]+2) > 0.01 || math.Abs(w[2]-5) > 0.05 {
		t.Errorf("w = %v, want [3 -2 5]", w)
	}
	pred := PredictLinear(w, core.Vector{1, 1})
	if math.Abs(pred-6) > 0.05 {
		t.Errorf("predict(1,1) = %v, want 6", pred)
	}
}

func TestRidgeWeightedFit(t *testing.T) {
	// Two clusters with conflicting labels; weights select the first.
	xs := []core.Vector{{1}, {1}, {1}, {1}}
	ys := []float64{10, 10, 0, 0}
	ws := []float64{1, 1, 0, 0}
	w, err := Ridge{Lambda: 1e-6}.Fit(xs, ys, ws)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(PredictLinear(w, core.Vector{1})-10) > 0.01 {
		t.Errorf("weighted fit should predict 10, got %v", PredictLinear(w, core.Vector{1}))
	}
}

func TestRidgeValidation(t *testing.T) {
	if _, err := (Ridge{}).Fit(nil, nil, nil); !errors.Is(err, core.ErrNoData) {
		t.Error("empty should fail with ErrNoData")
	}
	if _, err := (Ridge{}).Fit([]core.Vector{{1}}, []float64{1, 2}, nil); err == nil {
		t.Error("target length mismatch should fail")
	}
	if _, err := (Ridge{}).Fit([]core.Vector{{1}}, []float64{1}, []float64{1, 2}); err == nil {
		t.Error("weight length mismatch should fail")
	}
}

func TestRidgeRaggedRows(t *testing.T) {
	// Rows of different lengths are padded with zeros.
	xs := []core.Vector{{1, 2}, {3}}
	ys := []float64{1, 2}
	if _, err := (Ridge{Lambda: 0.1}).Fit(xs, ys, nil); err != nil {
		t.Fatalf("ragged rows should fit: %v", err)
	}
}

func TestPredictLinearEdges(t *testing.T) {
	if PredictLinear(nil, core.Vector{1}) != 0 {
		t.Error("empty weights predict 0")
	}
	// Bias-only weights.
	if PredictLinear(core.Vector{7}, nil) != 7 {
		t.Error("bias-only should predict the bias")
	}
	// Short input vector.
	if got := PredictLinear(core.Vector{2, 3, 1}, core.Vector{5}); got != 11 {
		t.Errorf("short input: %v, want 2*5+1=11", got)
	}
}

// perActionTruth defines a context-dependent reward per action.
func perActionTruth(x core.Vector, a core.Action) float64 {
	switch a {
	case 0:
		return 1 + 2*x[0]
	case 1:
		return 3 - x[0]
	default:
		return 0.5 * x[0]
	}
}

func genBandit(seed int64, n, k int) core.Dataset {
	r := stats.NewRand(seed)
	ds := make(core.Dataset, n)
	for i := range ds {
		x := core.Vector{r.Float64() * 2}
		a := core.Action(r.Intn(k))
		ds[i] = core.Datapoint{
			Context:    core.Context{Features: x, NumActions: k},
			Action:     a,
			Reward:     perActionTruth(x, a) + r.NormFloat64()*0.01,
			Propensity: 1 / float64(k),
		}
	}
	return ds
}

func TestRewardModelPerAction(t *testing.T) {
	ds := genBandit(2, 6000, 3)
	m, err := FitRewardModel(ds, FitOptions{Lambda: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	for _, x0 := range []float64{0.1, 1.0, 1.9} {
		ctx := &core.Context{Features: core.Vector{x0}, NumActions: 3}
		for a := core.Action(0); a < 3; a++ {
			want := perActionTruth(ctx.Features, a)
			if got := m.Predict(ctx, a); math.Abs(got-want) > 0.05 {
				t.Errorf("predict(x=%v, a=%d) = %v, want %v", x0, a, got, want)
			}
		}
	}
	// Greedy policy: action 1 wins for x<2/3, action 0 for x>2/3.
	g := m.GreedyPolicy(false)
	if got := g.Act(&core.Context{Features: core.Vector{0.1}, NumActions: 3}); got != 1 {
		t.Errorf("greedy(0.1) = %d, want 1", got)
	}
	if got := g.Act(&core.Context{Features: core.Vector{1.9}, NumActions: 3}); got != 0 {
		t.Errorf("greedy(1.9) = %d, want 0", got)
	}
}

func TestRewardModelSharedMode(t *testing.T) {
	r := stats.NewRand(3)
	// Reward = -latency where latency = 2*load + serverBias (in features).
	n := 4000
	ds := make(core.Dataset, n)
	for i := range ds {
		af := []core.Vector{
			{r.Float64() * 10, 1, 0},
			{r.Float64() * 10, 0, 1},
		}
		a := core.Action(r.Intn(2))
		lat := 2*af[a][0] + 3*af[a][2] // server 1 slower by +3
		ds[i] = core.Datapoint{
			Context:    core.Context{ActionFeatures: af, NumActions: 2},
			Action:     a,
			Reward:     lat, // stored as a cost
			Propensity: 0.5,
		}
	}
	m, err := FitRewardModel(ds, FitOptions{Lambda: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &core.Context{
		ActionFeatures: []core.Vector{{4, 1, 0}, {2, 0, 1}},
		NumActions:     2,
	}
	// costs: action0 = 8, action1 = 7 → minimize picks 1.
	if math.Abs(m.Predict(ctx, 0)-8) > 0.1 || math.Abs(m.Predict(ctx, 1)-7) > 0.1 {
		t.Errorf("predict = %v, %v; want 8, 7", m.Predict(ctx, 0), m.Predict(ctx, 1))
	}
	if got := m.GreedyPolicy(true).Act(ctx); got != 1 {
		t.Errorf("greedy-min = %d, want 1", got)
	}
}

func TestRewardModelFallbackForUnseenAction(t *testing.T) {
	// All data on action 0; action 1 should fall back to the global mean.
	ds := core.Dataset{
		{Context: core.Context{Features: core.Vector{1}, NumActions: 2}, Action: 0, Reward: 4, Propensity: 0.5},
		{Context: core.Context{Features: core.Vector{2}, NumActions: 2}, Action: 0, Reward: 6, Propensity: 0.5},
		{Context: core.Context{Features: core.Vector{3}, NumActions: 2}, Action: 0, Reward: 8, Propensity: 0.5},
	}
	m, err := FitRewardModel(ds, FitOptions{Lambda: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &core.Context{Features: core.Vector{2}, NumActions: 2}
	if got := m.Predict(ctx, 1); got != 6 {
		t.Errorf("fallback = %v, want mean 6", got)
	}
}

func TestRewardModelImportanceWeighted(t *testing.T) {
	// Skewed logging must not break the fit when importance weighting is on.
	r := stats.NewRand(4)
	ds := make(core.Dataset, 8000)
	for i := range ds {
		x := core.Vector{r.Float64() * 2}
		var a core.Action
		var p float64
		if r.Float64() < 0.9 {
			a, p = 0, 0.9
		} else {
			a, p = 1, 0.1
		}
		ds[i] = core.Datapoint{
			Context:    core.Context{Features: x, NumActions: 2},
			Action:     a,
			Reward:     perActionTruth(x, a),
			Propensity: p,
		}
	}
	m, err := FitRewardModel(ds, FitOptions{Lambda: 1e-6, ImportanceWeighted: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &core.Context{Features: core.Vector{1}, NumActions: 2}
	if math.Abs(m.Predict(ctx, 1)-2) > 0.1 {
		t.Errorf("minority action prediction = %v, want 2", m.Predict(ctx, 1))
	}
}

func TestFitRewardModelValidation(t *testing.T) {
	if _, err := FitRewardModel(nil, FitOptions{}); !errors.Is(err, core.ErrNoData) {
		t.Error("empty should fail")
	}
	bad := core.Dataset{{Context: core.Context{Features: core.Vector{1}, NumActions: 2}, Action: 5, Propensity: 0.5}}
	if _, err := FitRewardModel(bad, FitOptions{NumActions: 2}); err == nil {
		t.Error("out-of-range action should fail")
	}
	noP := core.Dataset{{Context: core.Context{Features: core.Vector{1}, NumActions: 2}, Action: 0, Propensity: 0}}
	if _, err := FitRewardModel(noP, FitOptions{ImportanceWeighted: true}); err == nil {
		t.Error("zero propensity with IW should fail")
	}
}

func TestSGDConvergesToLinear(t *testing.T) {
	r := stats.NewRand(5)
	s := NewSGDRegressor(2, 0.05, 1e-4)
	for i := 0; i < 20000; i++ {
		x := core.Vector{r.Float64(), r.Float64()}
		y := 2*x[0] - x[1] + 0.5
		s.Update(x, y, 1)
	}
	pred := s.Predict(core.Vector{0.5, 0.5})
	if math.Abs(pred-1.0) > 0.05 {
		t.Errorf("sgd predict = %v, want 1.0", pred)
	}
	if s.Steps() != 20000 {
		t.Errorf("Steps = %d", s.Steps())
	}
	if len(s.Weights()) != 3 {
		t.Errorf("weights len = %d, want 3 (incl bias)", len(s.Weights()))
	}
}

func TestSGDDefaults(t *testing.T) {
	s := NewSGDRegressor(1, 0, -1)
	s.Update(core.Vector{1}, 1, 1)
	if s.Predict(core.Vector{1}) == 0 {
		t.Error("default LR should move the prediction")
	}
}
