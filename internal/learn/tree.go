package learn

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/policy"
)

// TreeOptions configures policy-tree distillation.
type TreeOptions struct {
	// MaxDepth bounds the tree height (default 3).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 20).
	MinLeaf int
	// CutsPerFeature caps the candidate thresholds tried per feature
	// (quantiles of the observed values; default 8).
	CutsPerFeature int
}

// DistillTree compresses a teacher policy into a small decision tree by
// CART-style recursive partitioning on a sample of contexts: each context
// is labeled with the teacher's action and splits greedily maximize label
// agreement. The result is an interpretable, O(depth)-per-decision policy
// — deployable on hot paths where even a linear model per action might be
// too slow, and exactly the kind of compact template §4 envisions
// searching over.
func DistillTree(teacher core.Policy, contexts []core.Context, opts TreeOptions) (*policy.Tree, error) {
	if teacher == nil {
		return nil, fmt.Errorf("learn: nil teacher policy")
	}
	if len(contexts) == 0 {
		return nil, core.ErrNoData
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 3
	}
	if opts.MinLeaf <= 0 {
		opts.MinLeaf = 20
	}
	if opts.CutsPerFeature <= 0 {
		opts.CutsPerFeature = 8
	}
	k := 0
	labels := make([]core.Action, len(contexts))
	for i := range contexts {
		if err := contexts[i].Validate(); err != nil {
			return nil, fmt.Errorf("learn: context %d: %w", i, err)
		}
		labels[i] = teacher.Act(&contexts[i])
		if contexts[i].NumActions > k {
			k = contexts[i].NumActions
		}
	}
	idx := make([]int, len(contexts))
	for i := range idx {
		idx[i] = i
	}
	tree := buildTree(contexts, labels, idx, k, opts.MaxDepth, opts)
	if err := tree.Validate(k); err != nil {
		return nil, fmt.Errorf("learn: distilled tree invalid: %w", err)
	}
	return tree, nil
}

// buildTree recursively partitions rows (indexes into contexts/labels).
func buildTree(contexts []core.Context, labels []core.Action, rows []int, k, depth int, opts TreeOptions) *policy.Tree {
	maj, pure := majority(labels, rows, k)
	if depth == 0 || pure || len(rows) < 2*opts.MinLeaf {
		return &policy.Tree{Leaf: true, Action: maj}
	}
	dim := 0
	for _, r := range rows {
		if len(contexts[r].Features) > dim {
			dim = len(contexts[r].Features)
		}
	}
	bestGain := 0
	var bestIdx int
	var bestCut float64
	var bestBelow, bestAbove []int
	baseAgree := agreement(labels, rows, maj)
	for f := 0; f < dim; f++ {
		for _, cut := range candidateCuts(contexts, rows, f, opts.CutsPerFeature) {
			below, above := partition(contexts, rows, f, cut)
			if len(below) < opts.MinLeaf || len(above) < opts.MinLeaf {
				continue
			}
			mb, _ := majority(labels, below, k)
			ma, _ := majority(labels, above, k)
			gain := agreement(labels, below, mb) + agreement(labels, above, ma) - baseAgree
			if gain > bestGain {
				bestGain, bestIdx, bestCut = gain, f, cut
				bestBelow, bestAbove = below, above
			}
		}
	}
	if bestGain <= 0 {
		return &policy.Tree{Leaf: true, Action: maj}
	}
	return &policy.Tree{
		Idx: bestIdx, Cut: bestCut,
		Below: buildTree(contexts, labels, bestBelow, k, depth-1, opts),
		Above: buildTree(contexts, labels, bestAbove, k, depth-1, opts),
	}
}

// majority returns the most common label among rows and whether they are
// unanimous.
func majority(labels []core.Action, rows []int, k int) (core.Action, bool) {
	counts := make([]int, k)
	for _, r := range rows {
		counts[labels[r]]++
	}
	best, bestC, distinct := core.Action(0), -1, 0
	for a, c := range counts {
		if c > 0 {
			distinct++
		}
		if c > bestC {
			best, bestC = core.Action(a), c
		}
	}
	return best, distinct <= 1
}

// agreement counts rows whose label equals a.
func agreement(labels []core.Action, rows []int, a core.Action) int {
	n := 0
	for _, r := range rows {
		if labels[r] == a {
			n++
		}
	}
	return n
}

// candidateCuts returns up to limit quantile thresholds of feature f.
func candidateCuts(contexts []core.Context, rows []int, f, limit int) []float64 {
	vals := make([]float64, 0, len(rows))
	for _, r := range rows {
		v := 0.0
		if f < len(contexts[r].Features) {
			v = contexts[r].Features[f]
		}
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	uniq := vals[:0]
	for i, v := range vals {
		if i == 0 || v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	if len(uniq) < 2 {
		return nil
	}
	cuts := make([]float64, 0, limit)
	for i := 1; i <= limit; i++ {
		pos := i * len(uniq) / (limit + 1)
		if pos == 0 || pos >= len(uniq) {
			continue
		}
		cut := (uniq[pos-1] + uniq[pos]) / 2
		if len(cuts) == 0 || cut != cuts[len(cuts)-1] {
			cuts = append(cuts, cut)
		}
	}
	return cuts
}

// partition splits rows by Features[f] < cut.
func partition(contexts []core.Context, rows []int, f int, cut float64) (below, above []int) {
	for _, r := range rows {
		v := 0.0
		if f < len(contexts[r].Features) {
			v = contexts[r].Features[f]
		}
		if v < cut {
			below = append(below, r)
		} else {
			above = append(above, r)
		}
	}
	return below, above
}
