package learn

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
)

// FullFeedbackRow is one observation where the reward of *every* action is
// known — the machine-health setting of §4, where waiting the maximum time
// reveals what would have happened for every shorter wait ("similar to a
// supervised learning dataset").
type FullFeedbackRow struct {
	Context core.Context
	// Rewards has one entry per action.
	Rewards []float64
}

// FullFeedbackDataset is a supervised dataset with complete counterfactuals.
type FullFeedbackDataset []FullFeedbackRow

// Validate checks structural invariants.
func (ds FullFeedbackDataset) Validate() error {
	for i := range ds {
		r := &ds[i]
		if err := r.Context.Validate(); err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
		if len(r.Rewards) != r.Context.NumActions {
			return fmt.Errorf("row %d: %d rewards for %d actions", i, len(r.Rewards), r.Context.NumActions)
		}
	}
	return nil
}

// BestAction returns the ground-truth optimal action of row i (argmax, or
// argmin when minimize).
func (r *FullFeedbackRow) BestAction(minimize bool) core.Action {
	best := 0
	for a := 1; a < len(r.Rewards); a++ {
		if (minimize && r.Rewards[a] < r.Rewards[best]) ||
			(!minimize && r.Rewards[a] > r.Rewards[best]) {
			best = a
		}
	}
	return core.Action(best)
}

// MeanReward returns the dataset-average reward the policy would obtain —
// the exact ground truth the paper uses to score offline estimates (Fig. 3)
// and learned policies (Fig. 4).
func (ds FullFeedbackDataset) MeanReward(p core.Policy) float64 {
	if len(ds) == 0 {
		return 0
	}
	sum := 0.0
	for i := range ds {
		r := &ds[i]
		a := p.Act(&r.Context)
		if int(a) < len(r.Rewards) {
			sum += r.Rewards[a]
		}
	}
	return sum / float64(len(ds))
}

// OptimalMeanReward returns the reward of the omniscient per-row-best policy.
func (ds FullFeedbackDataset) OptimalMeanReward(minimize bool) float64 {
	if len(ds) == 0 {
		return 0
	}
	sum := 0.0
	for i := range ds {
		r := &ds[i]
		sum += r.Rewards[r.BestAction(minimize)]
	}
	return sum / float64(len(ds))
}

// FitFullFeedback trains the idealized supervised baseline of Fig. 4: every
// action's regressor sees every row. It returns a RewardModel whose greedy
// policy is the full-feedback model the CB learner is compared against.
func FitFullFeedback(ds FullFeedbackDataset, lambda float64) (*RewardModel, error) {
	if len(ds) == 0 {
		return nil, core.ErrNoData
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if lambda == 0 {
		lambda = 1e-3
	}
	rg := Ridge{Lambda: lambda}
	k := ds[0].Context.NumActions
	m := &RewardModel{perAction: make([]core.Vector, k)}
	xs := make([]core.Vector, len(ds))
	ys := make([]float64, len(ds))
	for a := 0; a < k; a++ {
		for i := range ds {
			xs[i] = ds[i].Context.Features
			ys[i] = ds[i].Rewards[a]
		}
		w, err := rg.Fit(xs, ys, nil)
		if err != nil {
			return nil, fmt.Errorf("learn: full-feedback action %d: %w", a, err)
		}
		m.perAction[a] = w
	}
	return m, nil
}

// SimulateExploration converts full-feedback rows into partial-feedback
// exploration data by revealing only the reward of a randomly chosen action
// — exactly the paper's protocol for Figs. 3–4 ("simulating randomized
// data"): each row yields one ⟨x, a, r, p⟩ tuple with uniform propensity.
func SimulateExploration(r *rand.Rand, ds FullFeedbackDataset) core.Dataset {
	out := make(core.Dataset, len(ds))
	for i := range ds {
		row := &ds[i]
		k := row.Context.NumActions
		a := core.Action(r.Intn(k))
		out[i] = core.Datapoint{
			Context:    row.Context,
			Action:     a,
			Reward:     row.Rewards[a],
			Propensity: 1 / float64(k),
			Seq:        int64(i),
		}
	}
	return out
}
