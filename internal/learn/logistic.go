package learn

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Multinomial is a multinomial (softmax) logistic regression over actions,
// used for step 2 of the harvesting methodology when propensities cannot be
// read off the code: "a more robust approach is to do a regression on the
// ⟨x, a, r⟩ data to learn the probability distribution over actions" (§3).
type Multinomial struct {
	// W holds one weight row per action (bias last).
	W []core.Vector
	k int
}

// MultinomialOptions configures training.
type MultinomialOptions struct {
	// NumActions fixes the class count (0 infers from data).
	NumActions int
	// Epochs over the data (default 50).
	Epochs int
	// LR is the gradient step size (default 0.5, decayed per epoch).
	LR float64
	// L2 regularization strength (default 1e-4).
	L2 float64
}

// FitMultinomial trains softmax regression with full-batch gradient descent.
// Deterministic: no sampling, fixed epoch count.
func FitMultinomial(xs []core.Vector, as []core.Action, opts MultinomialOptions) (*Multinomial, error) {
	if len(xs) == 0 {
		return nil, core.ErrNoData
	}
	if len(as) != len(xs) {
		return nil, fmt.Errorf("learn: %d labels for %d rows", len(as), len(xs))
	}
	k := opts.NumActions
	dim := 0
	for i, x := range xs {
		if len(x) > dim {
			dim = len(x)
		}
		if int(as[i]) >= k {
			if opts.NumActions > 0 {
				return nil, fmt.Errorf("learn: label %d exceeds NumActions %d", as[i], opts.NumActions)
			}
			k = int(as[i]) + 1
		}
		if as[i] < 0 {
			return nil, fmt.Errorf("learn: negative label at row %d", i)
		}
	}
	if k < 2 {
		return nil, fmt.Errorf("learn: need at least 2 classes, got %d", k)
	}
	epochs := opts.Epochs
	if epochs <= 0 {
		epochs = 50
	}
	lr := opts.LR
	if lr <= 0 {
		lr = 0.5
	}
	l2 := opts.L2
	if l2 < 0 {
		l2 = 0
	} else if l2 == 0 {
		l2 = 1e-4
	}

	d := dim + 1
	m := &Multinomial{W: make([]core.Vector, k), k: k}
	for a := range m.W {
		m.W[a] = make(core.Vector, d)
	}
	n := float64(len(xs))
	grad := make([]core.Vector, k)
	for a := range grad {
		grad[a] = make(core.Vector, d)
	}
	probs := make([]float64, k)
	row := make([]float64, d)
	for e := 0; e < epochs; e++ {
		for a := range grad {
			for j := range grad[a] {
				grad[a][j] = 0
			}
		}
		for i, x := range xs {
			for j := 0; j < dim; j++ {
				if j < len(x) {
					row[j] = x[j]
				} else {
					row[j] = 0
				}
			}
			row[dim] = 1
			m.softmax(row, probs)
			for a := 0; a < k; a++ {
				coef := probs[a]
				if int(as[i]) == a {
					coef -= 1
				}
				if coef == 0 {
					continue
				}
				g := grad[a]
				for j := 0; j < d; j++ {
					g[j] += coef * row[j]
				}
			}
		}
		step := lr / (1 + 0.05*float64(e))
		for a := 0; a < k; a++ {
			for j := 0; j < d; j++ {
				m.W[a][j] -= step * (grad[a][j]/n + l2*m.W[a][j])
			}
		}
	}
	return m, nil
}

// softmax writes class probabilities for an augmented row into out.
func (m *Multinomial) softmax(row []float64, out []float64) {
	maxS := math.Inf(-1)
	for a := 0; a < m.k; a++ {
		s := 0.0
		w := m.W[a]
		for j := 0; j < len(row) && j < len(w); j++ {
			s += w[j] * row[j]
		}
		out[a] = s
		if s > maxS {
			maxS = s
		}
	}
	total := 0.0
	for a := 0; a < m.k; a++ {
		out[a] = math.Exp(out[a] - maxS)
		total += out[a]
	}
	for a := 0; a < m.k; a++ {
		out[a] /= total
	}
}

// Probabilities returns P(a|x) for each action.
func (m *Multinomial) Probabilities(x core.Vector) []float64 {
	d := len(m.W[0])
	row := make([]float64, d)
	for j := 0; j < d-1 && j < len(x); j++ {
		row[j] = x[j]
	}
	row[d-1] = 1
	out := make([]float64, m.k)
	m.softmax(row, out)
	return out
}

// NumActions returns the number of classes.
func (m *Multinomial) NumActions() int { return m.k }
