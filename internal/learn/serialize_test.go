package learn

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

func TestRewardModelJSONRoundTripPerAction(t *testing.T) {
	ds := genBandit(1, 4000, 3)
	m, err := FitRewardModel(ds, FitOptions{Lambda: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var loaded RewardModel
	if err := json.Unmarshal(raw, &loaded); err != nil {
		t.Fatal(err)
	}
	if loaded.NumActions() != 3 {
		t.Errorf("NumActions = %d", loaded.NumActions())
	}
	// Predictions must be identical across the round trip.
	r := stats.NewRand(2)
	for i := 0; i < 200; i++ {
		ctx := &core.Context{Features: core.Vector{r.Float64() * 2}, NumActions: 3}
		for a := core.Action(0); a < 3; a++ {
			if m.Predict(ctx, a) != loaded.Predict(ctx, a) {
				t.Fatalf("prediction drift at %v action %d", ctx.Features, a)
			}
		}
		if m.GreedyPolicy(false).Act(ctx) != loaded.GreedyPolicy(false).Act(ctx) {
			t.Fatalf("greedy policy drift at %v", ctx.Features)
		}
	}
}

func TestRewardModelJSONRoundTripShared(t *testing.T) {
	r := stats.NewRand(3)
	ds := make(core.Dataset, 2000)
	for i := range ds {
		af := []core.Vector{{r.Float64(), 1, 0}, {r.Float64(), 0, 1}}
		a := core.Action(r.Intn(2))
		ds[i] = core.Datapoint{
			Context:    core.Context{ActionFeatures: af, NumActions: 2},
			Action:     a,
			Reward:     2*af[a][0] + float64(a),
			Propensity: 0.5,
		}
	}
	m, err := FitRewardModel(ds, FitOptions{Lambda: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var loaded RewardModel
	if err := json.Unmarshal(raw, &loaded); err != nil {
		t.Fatal(err)
	}
	if loaded.NumActions() != 0 {
		t.Errorf("shared model NumActions = %d, want 0", loaded.NumActions())
	}
	ctx := &core.Context{ActionFeatures: []core.Vector{{0.5, 1, 0}, {0.2, 0, 1}}, NumActions: 2}
	for a := core.Action(0); a < 2; a++ {
		if math.Abs(m.Predict(ctx, a)-loaded.Predict(ctx, a)) > 0 {
			t.Fatalf("shared prediction drift")
		}
	}
}

func TestRewardModelFallbackSurvivesRoundTrip(t *testing.T) {
	// All data on action 0: action 1 predicts the fallback mean.
	ds := core.Dataset{
		{Context: core.Context{Features: core.Vector{1}, NumActions: 2}, Action: 0, Reward: 4, Propensity: 0.5},
		{Context: core.Context{Features: core.Vector{2}, NumActions: 2}, Action: 0, Reward: 6, Propensity: 0.5},
	}
	m, err := FitRewardModel(ds, FitOptions{Lambda: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var loaded RewardModel
	if err := json.Unmarshal(raw, &loaded); err != nil {
		t.Fatal(err)
	}
	ctx := &core.Context{Features: core.Vector{1.5}, NumActions: 2}
	if got := loaded.Predict(ctx, 1); got != 5 {
		t.Errorf("fallback after round trip = %v, want 5", got)
	}
}

func TestRewardModelUnmarshalRejectsGarbage(t *testing.T) {
	var m RewardModel
	for _, raw := range []string{
		`{"mode":"nope"}`,
		`{"mode":"shared"}`,
		`{"mode":"per-action"}`,
		`not json`,
	} {
		if err := json.Unmarshal([]byte(raw), &m); err == nil {
			t.Errorf("input %q should fail", raw)
		}
	}
}
