// Package stats provides the statistical plumbing shared by the harvesting
// pipeline and its experiments: running moments, quantiles, bootstrap
// resampling, histograms, and the concentration bounds (Hoeffding,
// empirical Bernstein) used for high-confidence off-policy evaluation.
//
// All randomized routines take an explicit *rand.Rand so that every
// experiment in this repository is reproducible from a seed.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by routines that need at least one observation.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs.
// It returns 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean of xs.
func StdErr(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (the same scheme as numpy's
// default). The input is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

// QuantilesSorted computes several quantiles in one pass over a single sort.
// It returns one value per entry of qs, in order.
func QuantilesSorted(xs []float64, qs ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		if q < 0 || q > 1 || math.IsNaN(q) {
			return nil, fmt.Errorf("stats: quantile %v out of [0,1]", q)
		}
		out[i] = quantileSorted(sorted, q)
	}
	return out, nil
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Welford accumulates mean and variance in a single pass without storing
// samples. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations folded in so far.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 before any observation).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased running sample variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the running sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation (0 before any observation).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 before any observation).
func (w *Welford) Max() float64 { return w.max }

// Merge folds another accumulator into w (parallel Welford merge).
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.mean += delta * float64(o.n) / float64(n)
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}

// Interval is a symmetric or asymmetric confidence interval around a point
// estimate.
type Interval struct {
	Point float64
	Lo    float64
	Hi    float64
}

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether v lies inside the interval (inclusive).
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// String renders the interval as "point [lo, hi]".
func (iv Interval) String() string {
	return fmt.Sprintf("%.4g [%.4g, %.4g]", iv.Point, iv.Lo, iv.Hi)
}

// HoeffdingRadius returns the two-sided 1-delta Hoeffding confidence radius
// for the mean of n i.i.d. observations bounded in [lo, hi]:
//
//	r = (hi-lo) * sqrt(log(2/delta) / (2n))
func HoeffdingRadius(n int, lo, hi, delta float64) float64 {
	if n <= 0 || delta <= 0 || delta >= 1 || hi <= lo {
		return math.Inf(1)
	}
	return (hi - lo) * math.Sqrt(math.Log(2/delta)/(2*float64(n)))
}

// EmpiricalBernsteinRadius returns the two-sided 1-delta
// Maurer–Pontil empirical Bernstein radius for the mean of n observations
// with sample variance v, bounded in an interval of width rangeWidth:
//
//	r = sqrt(2 v log(3/delta) / n) + 3 rangeWidth log(3/delta) / n
//
// Unlike Hoeffding it adapts to low variance, which matters for importance-
// weighted estimators whose range can be large but whose variance is small.
func EmpiricalBernsteinRadius(n int, v, rangeWidth, delta float64) float64 {
	if n <= 1 || delta <= 0 || delta >= 1 || rangeWidth <= 0 {
		return math.Inf(1)
	}
	l := math.Log(3 / delta)
	return math.Sqrt(2*v*l/float64(n)) + 3*rangeWidth*l/float64(n)
}

// NormalApproxRadius returns the 1-delta two-sided normal-approximation
// radius z_{1-delta/2} * se. It inverts the standard normal CDF via
// erfinv-free bisection on math.Erfc, which is plenty accurate for the
// delta values used here.
func NormalApproxRadius(se, delta float64) float64 {
	if se <= 0 || delta <= 0 || delta >= 1 {
		return math.Inf(1)
	}
	return zQuantile(1-delta/2) * se
}

// zQuantile returns the p-quantile of the standard normal distribution via
// bisection on the CDF. p must lie in (0, 1).
func zQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	lo, hi := -10.0, 10.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if normCDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// normCDF is the standard normal cumulative distribution function.
func normCDF(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }

// NormCDF exposes the standard normal CDF for two-sample tests.
func NormCDF(x float64) float64 { return normCDF(x) }

// ZQuantile exposes the standard normal quantile function.
func ZQuantile(p float64) float64 { return zQuantile(p) }

// TwoSampleZ computes the z statistic and two-sided p-value for the
// difference in means of two samples using a normal approximation
// (Welch-style unequal variances). It is the workhorse of the A/B framework.
func TwoSampleZ(a, b []float64) (z, p float64, err error) {
	if len(a) < 2 || len(b) < 2 {
		return 0, 0, ErrEmpty
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	se := math.Sqrt(va/float64(len(a)) + vb/float64(len(b)))
	if se == 0 {
		if ma == mb {
			return 0, 1, nil
		}
		return math.Inf(1), 0, nil
	}
	z = (ma - mb) / se
	p = 2 * (1 - normCDF(math.Abs(z)))
	return z, p, nil
}

// Histogram is a fixed-bin histogram over [Lo, Hi). Values outside the range
// are clamped into the first/last bin so no observation is lost.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	total  int64
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 || hi <= lo {
		return nil, fmt.Errorf("stats: invalid histogram [%v,%v) bins=%d", lo, hi, bins)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int64 { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// QuantileApprox returns an approximate q-quantile from the binned counts.
func (h *Histogram) QuantileApprox(q float64) (float64, error) {
	if h.total == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	target := int64(q * float64(h.total))
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			return h.BinCenter(i), nil
		}
	}
	return h.BinCenter(len(h.Counts) - 1), nil
}
