package stats

import (
	"math"
	"math/rand"
)

// NewRand returns a seeded *rand.Rand. Every experiment in this repository
// threads one of these explicitly so that results are reproducible.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Split derives a child RNG from a parent, consuming one value from the
// parent stream. Use it to give independent streams to concurrent actors
// (servers, workload generators, resimulation replicas) without sharing a
// single *rand.Rand across goroutines.
func Split(parent *rand.Rand) *rand.Rand {
	return rand.New(rand.NewSource(parent.Int63()))
}

// SubstreamSeed derives the seed of replicate index's RNG substream from a
// root seed. Unlike Split, which consumes from a parent stream (so replicate
// k's stream depends on how much replicates 0..k-1 drew), the derivation is
// a pure function of (root, index): the same pair always yields the same
// seed, no matter which goroutine computes it or in what order — the
// property the deterministic parallel replicate scheduler rests on.
//
// The mix is SplitMix64-style. Distinct indices are guaranteed distinct
// seeds for a fixed root: index is scaled by an odd constant (injective mod
// 2^64) and mix64 is a bijection, so the composition cannot collide.
func SubstreamSeed(root, index int64) int64 {
	h := mix64(uint64(root) ^ 0x9E3779B97F4A7C15)
	return int64(mix64(h ^ (uint64(index)*0xD1B54A32D192ED03 + 0x8CB92BA72F3D8DD7)))
}

// mix64 is the SplitMix64 finalizer: a bijection on uint64 with strong
// avalanche, so consecutive indices land on statistically unrelated seeds.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Substream returns the seeded RNG of replicate index under the given root
// seed: NewRand(SubstreamSeed(root, index)).
func Substream(root, index int64) *rand.Rand {
	return NewRand(SubstreamSeed(root, index))
}

// Bernoulli returns true with probability p.
func Bernoulli(r *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Categorical draws an index from the (not necessarily normalized)
// non-negative weight vector w. It returns -1 if the total weight is zero
// or w is empty.
func Categorical(r *rand.Rand, w []float64) int {
	total := 0.0
	for _, v := range w {
		if v > 0 {
			total += v
		}
	}
	if total <= 0 {
		return -1
	}
	u := r.Float64() * total
	cum := 0.0
	for i, v := range w {
		if v <= 0 {
			continue
		}
		cum += v
		if u < cum {
			return i
		}
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(w) - 1; i >= 0; i-- {
		if w[i] > 0 {
			return i
		}
	}
	return -1
}

// Exponential draws from an exponential distribution with the given mean.
func Exponential(r *rand.Rand, mean float64) float64 {
	return r.ExpFloat64() * mean
}

// Zipf draws ranks in [0, n) with probability proportional to 1/(rank+1)^s.
// It is used by workload generators for skewed key popularity.
type Zipf struct {
	cdf []float64
	r   *rand.Rand
}

// NewZipf precomputes the CDF for n ranks with exponent s > 0.
func NewZipf(r *rand.Rand, n int, s float64) *Zipf {
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf, r: r}
}

// Draw returns a rank in [0, n).
func (z *Zipf) Draw() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func pow(x, y float64) float64 {
	if y == 1 {
		return x
	}
	return math.Pow(x, y)
}
