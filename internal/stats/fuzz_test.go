package stats

import "testing"

// FuzzSubstream checks the two invariants the deterministic parallel
// scheduler needs from the substream derivation, for arbitrary root seeds
// and window offsets:
//
//  1. no collisions — distinct (root, index) pairs within a 1e4-index
//     window never land on the same derived seed, so no two replicates of
//     one experiment can share an RNG stream;
//  2. purity — the same inputs always yield the same seed and the same
//     stream prefix, so results depend only on (seed, index), never on
//     goroutine scheduling or derivation order.
func FuzzSubstream(f *testing.F) {
	f.Add(int64(1), int64(0))
	f.Add(int64(0), int64(0))
	f.Add(int64(-1), int64(1<<40))
	f.Add(int64(0x7E3779B97F4A7C15), int64(-5000))
	f.Fuzz(func(t *testing.T, root, start int64) {
		const window = 10000
		seen := make(map[int64]int64, window)
		for off := int64(0); off < window; off++ {
			idx := start + off
			s := SubstreamSeed(root, idx)
			if prev, ok := seen[s]; ok {
				t.Fatalf("root %d: indices %d and %d collide on derived seed %d", root, prev, idx, s)
			}
			seen[s] = idx
			if again := SubstreamSeed(root, idx); again != s {
				t.Fatalf("root %d index %d: derivation impure (%d vs %d)", root, idx, s, again)
			}
		}
		// Purity of the stream itself, not just the seed: two RNGs from the
		// same pair must agree on a prefix of draws.
		a, b := Substream(root, start), Substream(root, start)
		for i := 0; i < 8; i++ {
			if a.Int63() != b.Int63() {
				t.Fatalf("root %d index %d: stream prefix differs between derivations", root, start)
			}
		}
	})
}
