package stats

import (
	"math/rand"
	"sort"
)

// Bootstrap resamples xs with replacement reps times, applies stat to each
// resample, and returns the resulting sampling distribution (sorted).
// The statistic receives a scratch buffer it must not retain.
func Bootstrap(r *rand.Rand, xs []float64, reps int, stat func([]float64) float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	out := make([]float64, reps)
	scratch := make([]float64, len(xs))
	for rep := 0; rep < reps; rep++ {
		for i := range scratch {
			scratch[i] = xs[r.Intn(len(xs))]
		}
		out[rep] = stat(scratch)
	}
	sort.Float64s(out)
	return out, nil
}

// BootstrapCI returns a percentile bootstrap confidence interval for the
// statistic at confidence level 1-delta, e.g. delta=0.05 gives the 2.5th and
// 97.5th percentiles of the bootstrap distribution.
func BootstrapCI(r *rand.Rand, xs []float64, reps int, delta float64, stat func([]float64) float64) (Interval, error) {
	dist, err := Bootstrap(r, xs, reps, stat)
	if err != nil {
		return Interval{}, err
	}
	lo := quantileSorted(dist, delta/2)
	hi := quantileSorted(dist, 1-delta/2)
	return Interval{Point: stat(xs), Lo: lo, Hi: hi}, nil
}

// MeanCI is BootstrapCI specialized to the mean, the common case in the
// experiment harness.
func MeanCI(r *rand.Rand, xs []float64, reps int, delta float64) (Interval, error) {
	return BootstrapCI(r, xs, reps, delta, Mean)
}
