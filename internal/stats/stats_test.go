package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMeanBasic(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{}, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// population variance is 4; sample (n-1) variance is 32/7.
	want := 32.0 / 7.0
	if got := Variance(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
}

func TestVarianceDegenerate(t *testing.T) {
	if v := Variance(nil); v != 0 {
		t.Errorf("Variance(nil) = %v, want 0", v)
	}
	if v := Variance([]float64{3}); v != 0 {
		t.Errorf("Variance(single) = %v, want 0", v)
	}
}

func TestQuantileEndpoints(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7}
	lo, err := Quantile(xs, 0)
	if err != nil || lo != 1 {
		t.Fatalf("Quantile(0) = %v, %v; want 1", lo, err)
	}
	hi, err := Quantile(xs, 1)
	if err != nil || hi != 9 {
		t.Fatalf("Quantile(1) = %v, %v; want 9", hi, err)
	}
	med, err := Quantile(xs, 0.5)
	if err != nil || med != 5 {
		t.Fatalf("Quantile(0.5) = %v, %v; want 5", med, err)
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	got, err := Quantile(xs, 0.25)
	if err != nil || !almostEqual(got, 2.5, 1e-12) {
		t.Fatalf("Quantile(0.25) = %v, %v; want 2.5", got, err)
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Errorf("empty sample: err = %v, want ErrEmpty", err)
	}
	if _, err := Quantile([]float64{1}, 1.5); err == nil {
		t.Error("q=1.5 should error")
	}
	if _, err := Quantile([]float64{1}, math.NaN()); err == nil {
		t.Error("q=NaN should error")
	}
}

func TestQuantilesSortedMatchesQuantile(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	got, err := QuantilesSorted(xs, 0.05, 0.5, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range []float64{0.05, 0.5, 0.95} {
		want, _ := Quantile(xs, q)
		if !almostEqual(got[i], want, 1e-12) {
			t.Errorf("QuantilesSorted[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	r := NewRand(1)
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 7
		w.Add(xs[i])
	}
	if !almostEqual(w.Mean(), Mean(xs), 1e-9) {
		t.Errorf("Welford mean %v != batch %v", w.Mean(), Mean(xs))
	}
	if !almostEqual(w.Variance(), Variance(xs), 1e-9) {
		t.Errorf("Welford var %v != batch %v", w.Variance(), Variance(xs))
	}
	if w.N() != 1000 {
		t.Errorf("N = %d", w.N())
	}
}

func TestWelfordMinMax(t *testing.T) {
	var w Welford
	for _, x := range []float64{3, -2, 8, 0} {
		w.Add(x)
	}
	if w.Min() != -2 || w.Max() != 8 {
		t.Errorf("min/max = %v/%v, want -2/8", w.Min(), w.Max())
	}
}

func TestWelfordMerge(t *testing.T) {
	r := NewRand(2)
	var all, a, b Welford
	for i := 0; i < 500; i++ {
		x := r.Float64() * 10
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if !almostEqual(a.Mean(), all.Mean(), 1e-9) {
		t.Errorf("merged mean %v != %v", a.Mean(), all.Mean())
	}
	if !almostEqual(a.Variance(), all.Variance(), 1e-9) {
		t.Errorf("merged var %v != %v", a.Variance(), all.Variance())
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 1 {
		t.Errorf("N = %d, want 1", a.N())
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 1 {
		t.Errorf("b = %+v", b)
	}
}

func TestHoeffdingRadiusShrinks(t *testing.T) {
	r1 := HoeffdingRadius(100, 0, 1, 0.05)
	r2 := HoeffdingRadius(400, 0, 1, 0.05)
	if !(r2 < r1) {
		t.Errorf("radius should shrink with n: %v !< %v", r2, r1)
	}
	// Quadrupling n halves the radius.
	if !almostEqual(r2, r1/2, 1e-12) {
		t.Errorf("4x n should halve radius: %v vs %v", r2, r1/2)
	}
}

func TestHoeffdingRadiusDegenerate(t *testing.T) {
	if !math.IsInf(HoeffdingRadius(0, 0, 1, 0.05), 1) {
		t.Error("n=0 should be +Inf")
	}
	if !math.IsInf(HoeffdingRadius(10, 1, 1, 0.05), 1) {
		t.Error("hi<=lo should be +Inf")
	}
	if !math.IsInf(HoeffdingRadius(10, 0, 1, 0), 1) {
		t.Error("delta=0 should be +Inf")
	}
}

func TestEmpiricalBernsteinBeatsHoeffdingAtLowVariance(t *testing.T) {
	// With tiny variance the Bernstein radius should be far below
	// Hoeffding's range-driven radius for large-range variables.
	n, v, rng, delta := 10000, 0.0001, 25.0, 0.05
	eb := EmpiricalBernsteinRadius(n, v, rng, delta)
	h := HoeffdingRadius(n, 0, rng, delta)
	if !(eb < h/10) {
		t.Errorf("expected Bernstein %v << Hoeffding %v", eb, h)
	}
}

func TestZQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.95, 1.644854},
		{0.025, -1.959964},
	}
	for _, c := range cases {
		if got := ZQuantile(c.p); !almostEqual(got, c.want, 1e-4) {
			t.Errorf("ZQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(ZQuantile(0)) || !math.IsNaN(ZQuantile(1)) {
		t.Error("ZQuantile should be NaN at 0 and 1")
	}
}

func TestNormCDFSymmetry(t *testing.T) {
	f := func(x float64) bool {
		x = math.Mod(x, 10)
		return almostEqual(NormCDF(x)+NormCDF(-x), 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTwoSampleZDetectsDifference(t *testing.T) {
	r := NewRand(3)
	a := make([]float64, 2000)
	b := make([]float64, 2000)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64() + 0.5
	}
	z, p, err := TwoSampleZ(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.001 {
		t.Errorf("p = %v, expected strong significance", p)
	}
	if z >= 0 {
		t.Errorf("z = %v, expected negative (a < b)", z)
	}
}

func TestTwoSampleZNull(t *testing.T) {
	a := []float64{1, 1, 1}
	b := []float64{1, 1, 1}
	z, p, err := TwoSampleZ(a, b)
	if err != nil || z != 0 || p != 1 {
		t.Errorf("identical constant samples: z=%v p=%v err=%v", z, p, err)
	}
}

func TestTwoSampleZErrEmpty(t *testing.T) {
	if _, _, err := TwoSampleZ([]float64{1}, []float64{1, 2}); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Errorf("bin %d count = %d, want 1", i, c)
		}
	}
	h.Add(-5) // clamps to first bin
	h.Add(99) // clamps to last bin
	if h.Counts[0] != 2 || h.Counts[9] != 2 {
		t.Errorf("clamping failed: %v", h.Counts)
	}
	if h.Total() != 12 {
		t.Errorf("Total = %d", h.Total())
	}
	med, err := h.QuantileApprox(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if med < 3 || med > 7 {
		t.Errorf("median approx = %v, out of plausible range", med)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(1, 0, 5); err == nil {
		t.Error("hi<lo should error")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("bins=0 should error")
	}
	h, _ := NewHistogram(0, 1, 4)
	if _, err := h.QuantileApprox(0.5); err != ErrEmpty {
		t.Errorf("empty histogram quantile err = %v", err)
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{Point: 5, Lo: 4, Hi: 7}
	if iv.Width() != 3 {
		t.Errorf("Width = %v", iv.Width())
	}
	if !iv.Contains(4) || !iv.Contains(7) || iv.Contains(3.9) {
		t.Error("Contains misbehaves at boundaries")
	}
	if iv.String() == "" {
		t.Error("String should be non-empty")
	}
}

// Property: quantiles are monotone in q for any sample.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q1, err1 := Quantile(xs, 0.25)
		q2, err2 := Quantile(xs, 0.75)
		if err1 != nil || err2 != nil {
			return false
		}
		return q1 <= q2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Welford mean always lies within [min, max].
func TestWelfordMeanBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var w Welford
		any := false
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Clamp into a range where the running-mean arithmetic
			// cannot overflow; huge magnitudes are not interesting here.
			w.Add(math.Mod(v, 1e9))
			any = true
		}
		if !any {
			return true
		}
		return w.Mean() >= w.Min()-1e-9 && w.Mean() <= w.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
