package stats

import (
	"math"
	"testing"
)

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed should give same stream")
		}
	}
}

func TestSplitIndependentStreams(t *testing.T) {
	parent := NewRand(7)
	c1 := Split(parent)
	c2 := Split(parent)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Int63() == c2.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("child streams look identical (%d/100 collisions)", same)
	}
}

func TestSubstreamPure(t *testing.T) {
	// Same (root, index) → same seed and same stream prefix, regardless of
	// any other derivations in between.
	s1 := SubstreamSeed(42, 17)
	_ = SubstreamSeed(42, 18)
	_ = SubstreamSeed(99, 17)
	if s2 := SubstreamSeed(42, 17); s1 != s2 {
		t.Fatalf("SubstreamSeed not pure: %d vs %d", s1, s2)
	}
	a, b := Substream(42, 17), Substream(42, 17)
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (root, index) should give same stream")
		}
	}
}

func TestSubstreamSeedsDistinct(t *testing.T) {
	// Within one root, every replicate index gets its own seed; and the
	// same index under nearby roots must not coincide either.
	seen := map[int64]int64{}
	for idx := int64(0); idx < 10000; idx++ {
		s := SubstreamSeed(1, idx)
		if prev, ok := seen[s]; ok {
			t.Fatalf("indices %d and %d collide on seed %d", prev, idx, s)
		}
		seen[s] = idx
	}
	for root := int64(0); root < 100; root++ {
		if root == 1 {
			continue
		}
		s := SubstreamSeed(root, 5)
		if prev, ok := seen[s]; ok {
			t.Fatalf("root %d index 5 collides with root 1 index %d", root, prev)
		}
	}
}

func TestSubstreamIndependentStreams(t *testing.T) {
	// Adjacent indices must look unrelated (the mix64 avalanche): their
	// streams should rarely agree value-for-value.
	c1, c2 := Substream(7, 0), Substream(7, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Int63() == c2.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("substreams look identical (%d/100 collisions)", same)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 50; i++ {
		if Bernoulli(r, 0) {
			t.Fatal("p=0 fired")
		}
		if !Bernoulli(r, 1) {
			t.Fatal("p=1 missed")
		}
		if Bernoulli(r, -0.5) {
			t.Fatal("p<0 fired")
		}
		if !Bernoulli(r, 1.5) {
			t.Fatal("p>1 missed")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := NewRand(2)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if Bernoulli(r, 0.3) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("empirical p = %v, want 0.3±0.01", frac)
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	r := NewRand(3)
	w := []float64{1, 2, 1}
	counts := make([]int, 3)
	n := 100000
	for i := 0; i < n; i++ {
		idx := Categorical(r, w)
		if idx < 0 || idx > 2 {
			t.Fatalf("index out of range: %d", idx)
		}
		counts[idx]++
	}
	want := []float64{0.25, 0.5, 0.25}
	for i, c := range counts {
		frac := float64(c) / float64(n)
		if math.Abs(frac-want[i]) > 0.01 {
			t.Errorf("action %d frequency %v, want %v±0.01", i, frac, want[i])
		}
	}
}

func TestCategoricalDegenerate(t *testing.T) {
	r := NewRand(4)
	if Categorical(r, nil) != -1 {
		t.Error("nil weights should return -1")
	}
	if Categorical(r, []float64{0, 0}) != -1 {
		t.Error("zero weights should return -1")
	}
	if Categorical(r, []float64{-1, -2}) != -1 {
		t.Error("negative weights should return -1")
	}
	// Single positive weight always selected, negatives skipped.
	for i := 0; i < 20; i++ {
		if got := Categorical(r, []float64{0, 5, 0}); got != 1 {
			t.Fatalf("got %d, want 1", got)
		}
		if got := Categorical(r, []float64{-3, 0, 2}); got != 2 {
			t.Fatalf("got %d, want 2", got)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRand(5)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(Exponential(r, 2.5))
	}
	if math.Abs(w.Mean()-2.5) > 0.05 {
		t.Errorf("mean = %v, want 2.5±0.05", w.Mean())
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRand(6)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		k := z.Draw()
		if k < 0 || k >= 100 {
			t.Fatalf("rank out of range: %d", k)
		}
		counts[k]++
	}
	// Rank 0 should be drawn roughly twice as often as rank 1 (1/1 vs 1/2).
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("rank0/rank1 ratio = %v, want ≈2", ratio)
	}
	if counts[0] <= counts[50] {
		t.Error("zipf should be head-heavy")
	}
}

func TestBootstrapCICoversTruth(t *testing.T) {
	r := NewRand(7)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.NormFloat64() + 10
	}
	iv, err := MeanCI(NewRand(8), xs, 500, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(Mean(xs)) {
		t.Errorf("CI %v should contain the sample mean %v", iv, Mean(xs))
	}
	if !iv.Contains(10) {
		// Not guaranteed, but with n=500 failure probability is ~5%;
		// seeds chosen so it passes.
		t.Errorf("CI %v should contain the true mean 10 for this seed", iv)
	}
	if iv.Width() <= 0 || iv.Width() > 1 {
		t.Errorf("implausible CI width %v", iv.Width())
	}
}

func TestBootstrapEmpty(t *testing.T) {
	if _, err := Bootstrap(NewRand(1), nil, 10, Mean); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
	if _, err := MeanCI(NewRand(1), nil, 10, 0.05); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}
