// Package lbsim is the load-balancing substrate: a discrete-event simulator
// of the Nginx scenario in §5 of "Harvesting Randomness to Optimize
// Distributed Systems" (HotNets 2017), built around the paper's Fig. 5
// model — each server's latency is a linear function of its open
// connections, and server 2 is slower than server 1 by an additive constant:
//
//	latency_s(conns) = Base_s + Slope·conns
//
// Requests arrive as a Poisson process; a routing policy observes each
// server's open-connection count (the context) and picks a backend (the
// action); the request's latency (the reward, as a cost) is determined by
// the chosen server's load at admission, and the request holds a connection
// for exactly that long — creating the action→context feedback loop that
// breaks CB assumption A1 and with it naive off-policy evaluation (Table 2).
package lbsim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/stats"
)

// ServerParams is one backend's latency model.
type ServerParams struct {
	// Base is the unloaded latency in seconds.
	Base float64
	// Slope is the added latency per open connection, in seconds.
	Slope float64
}

// Config describes a simulated deployment.
type Config struct {
	Servers []ServerParams
	// ArrivalRate is the Poisson request rate (requests per second).
	ArrivalRate float64
	// NumRequests ends the run after this many arrivals.
	NumRequests int
	// Warmup discards the first Warmup requests from metrics and logs so
	// measurements reflect steady state.
	Warmup int
	// NumTypes enables request types (observable context beyond load):
	// each request draws a uniform type in [0, NumTypes). 0 or 1 disables.
	NumTypes int
	// Affinity[s][t] adds a latency penalty when server s handles a
	// type-t request — the "different types of requests are processed
	// differently by different servers" effect that gives CB its edge
	// over least-loaded (§5). nil means no affinities.
	Affinity [][]float64
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if len(c.Servers) < 2 {
		return fmt.Errorf("lbsim: need at least 2 servers, got %d", len(c.Servers))
	}
	for i, s := range c.Servers {
		if s.Base <= 0 || s.Slope < 0 {
			return fmt.Errorf("lbsim: server %d params %+v invalid", i, s)
		}
	}
	if c.ArrivalRate <= 0 {
		return fmt.Errorf("lbsim: arrival rate %v", c.ArrivalRate)
	}
	if c.NumRequests <= 0 {
		return fmt.Errorf("lbsim: num requests %v", c.NumRequests)
	}
	if c.Warmup < 0 || c.Warmup >= c.NumRequests {
		return fmt.Errorf("lbsim: warmup %d out of range", c.Warmup)
	}
	if c.Affinity != nil {
		if len(c.Affinity) != len(c.Servers) {
			return fmt.Errorf("lbsim: affinity rows %d != servers %d", len(c.Affinity), len(c.Servers))
		}
		for s, row := range c.Affinity {
			if len(row) != c.numTypes() {
				return fmt.Errorf("lbsim: affinity row %d has %d types, want %d", s, len(row), c.numTypes())
			}
			for t, v := range row {
				if v < 0 {
					return fmt.Errorf("lbsim: negative affinity [%d][%d]", s, t)
				}
			}
		}
	}
	return nil
}

// numTypes normalizes NumTypes (0 means a single implicit type).
func (c *Config) numTypes() int {
	if c.NumTypes <= 1 {
		return 1
	}
	return c.NumTypes
}

// affinity returns the latency penalty for server s on request type t.
func (c *Config) affinity(s, t int) float64 {
	if c.Affinity == nil {
		return 0
	}
	return c.Affinity[s][t]
}

// TwoServerFig5 returns the paper's Fig. 5 setup verbatim — each server's
// latency linear in its open connections, server 2 slower by an additive
// constant — tuned so that "send to 1" evaluates around 0.3s offline but
// roughly doubles when actually deployed (the Table 2 breakage).
func TwoServerFig5() Config {
	return Config{
		Servers: []ServerParams{
			{Base: 0.20, Slope: 0.036}, // server 1
			{Base: 0.37, Slope: 0.036}, // server 2: slower by an additive constant
		},
		ArrivalRate: 20,
		NumRequests: 30000,
		Warmup:      2000,
	}
}

// Table2Config extends the Fig. 5 setup with two request types and
// per-server type affinities. This realizes the paper's explanation of why
// the CB policy beats least-loaded in Table 2: "the algorithm would learn
// how different types of requests are processed by different servers,
// something least loaded cannot do." Server 1 remains faster on average
// (preserving the send-to-1 breakage), but each server is specialized for
// one type.
func Table2Config() Config {
	return Config{
		Servers: []ServerParams{
			{Base: 0.15, Slope: 0.030}, // server 1
			{Base: 0.25, Slope: 0.030}, // server 2: slower by an additive constant
		},
		ArrivalRate: 20,
		NumRequests: 30000,
		Warmup:      2000,
		NumTypes:    2,
		Affinity: [][]float64{
			{0, 0.20}, // server 1 handles type 0 natively, pays on type 1
			{0.20, 0}, // server 2 is the opposite
		},
	}
}

// FeatureDim returns the per-action feature dimension for k servers and
// numTypes request types: [conns_s, onehot(s), onehot(s)×onehot(type)].
// The type interaction block is omitted when numTypes <= 1.
func FeatureDim(k, numTypes int) int {
	if numTypes <= 1 {
		return 1 + k
	}
	return 1 + k + k*numTypes
}

// BuildContext constructs the routing context from open-connection counts
// and the request's type. Shared features are [conns..., typeOneHot...];
// per-action features are [conns_s, onehot(s), onehot(s)×onehot(type)] so a
// single linear model can represent base latency, load slope, and per-
// server type affinity exactly. Pass numTypes <= 1 for the untyped Fig. 5
// model.
func BuildContext(conns []int, reqType, numTypes int) core.Context {
	k := len(conns)
	typed := numTypes > 1
	sharedLen := k
	if typed {
		sharedLen += numTypes
	}
	shared := make(core.Vector, sharedLen)
	af := make([]core.Vector, k)
	for s := 0; s < k; s++ {
		shared[s] = float64(conns[s])
		v := make(core.Vector, FeatureDim(k, numTypes))
		v[0] = float64(conns[s])
		v[1+s] = 1
		if typed {
			v[1+k+s*numTypes+reqType] = 1
		}
		af[s] = v
	}
	if typed {
		shared[k+reqType] = 1
	}
	return core.Context{Features: shared, ActionFeatures: af, NumActions: k}
}

// Result summarizes one simulated deployment.
type Result struct {
	// MeanLatency / P99Latency are in seconds, post-warmup.
	MeanLatency float64
	P99Latency  float64
	// PerServer counts post-warmup requests routed to each backend.
	PerServer []int
	// Completed counts post-warmup requests measured.
	Completed int
	// Exploration holds the harvested ⟨x,a,r,p⟩ log when logging was
	// enabled (propensities from the deployed policy's Distribution, or 1
	// for deterministic policies).
	Exploration core.Dataset
}

// Run deploys a policy in the simulator and measures it online — the
// "online evaluation" column of Table 2. If logExploration is true the run
// also harvests exploration data (the paper's step 1: scavenge).
func Run(cfg Config, pol core.Policy, seed int64, logExploration bool) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if pol == nil {
		return nil, fmt.Errorf("lbsim: nil policy")
	}
	var sim des.Simulator
	r := stats.NewRand(seed)
	k := len(cfg.Servers)
	conns := make([]int, k)
	perServer := make([]int, k)
	latencies := make([]float64, 0, cfg.NumRequests-cfg.Warmup)
	var expl core.Dataset

	numTypes := cfg.numTypes()
	typeRand := stats.Split(r)
	handle := func(i int) {
		reqType := 0
		if numTypes > 1 {
			reqType = typeRand.Intn(numTypes)
		}
		ctx := BuildContext(conns, reqType, numTypes)
		var p float64
		var a core.Action
		if sp, ok := pol.(core.StochasticPolicy); ok {
			dist := sp.Distribution(&ctx)
			a = core.Action(stats.Categorical(r, dist))
			if a < 0 {
				a = 0
			}
			p = dist[a]
		} else {
			a = pol.Act(&ctx)
			p = 1
		}
		if int(a) >= k {
			a = core.Action(k - 1)
		}
		lat := cfg.Servers[a].Base + cfg.Servers[a].Slope*float64(conns[a]) + cfg.affinity(int(a), reqType)
		conns[a]++
		s := int(a)
		// Departure restores the connection slot.
		if _, err := sim.After(lat, func() { conns[s]-- }); err != nil {
			panic(err) // unreachable: lat > 0
		}
		if i >= cfg.Warmup {
			latencies = append(latencies, lat)
			perServer[a]++
			if logExploration {
				expl = append(expl, core.Datapoint{
					Context:    ctx,
					Action:     a,
					Reward:     lat, // cost; minimize
					Propensity: p,
					Seq:        int64(i),
				})
			}
		}
	}
	if _, err := des.NewPoissonArrivals(&sim, stats.Split(r), cfg.ArrivalRate, cfg.NumRequests, handle); err != nil {
		return nil, err
	}
	if err := sim.RunAll(cfg.NumRequests*4 + 16); err != nil {
		return nil, fmt.Errorf("lbsim: %w", err)
	}
	if len(latencies) == 0 {
		return nil, fmt.Errorf("lbsim: no post-warmup requests measured")
	}
	p99, err := stats.Quantile(latencies, 0.99)
	if err != nil {
		return nil, err
	}
	return &Result{
		MeanLatency: stats.Mean(latencies),
		P99Latency:  p99,
		PerServer:   perServer,
		Completed:   len(latencies),
		Exploration: expl,
	}, nil
}

// LeastLoaded routes to the server with the fewest open connections,
// breaking ties toward the lower index — the classic Nginx least_conn
// policy and Table 2's heuristic baseline.
type LeastLoaded struct{}

// Act implements core.Policy.
func (LeastLoaded) Act(ctx *core.Context) core.Action {
	best := 0
	for s := 1; s < ctx.NumActions; s++ {
		if ctx.Features[s] < ctx.Features[best] {
			best = s
		}
	}
	return core.Action(best)
}

// String names the policy.
func (LeastLoaded) String() string { return "least-loaded" }

// WeightedRandom routes randomly with fixed per-server weights — the §5
// "randomize the share of traffic" exploration-coverage mitigation (in
// Nginx: randomizing the weights assigned to each server).
type WeightedRandom struct {
	Weights []float64
	R       *rand.Rand
}

// Act implements core.Policy.
func (w *WeightedRandom) Act(ctx *core.Context) core.Action {
	i := stats.Categorical(w.R, w.Weights)
	if i < 0 || i >= ctx.NumActions {
		return 0
	}
	return core.Action(i)
}

// Distribution implements core.StochasticPolicy.
func (w *WeightedRandom) Distribution(ctx *core.Context) []float64 {
	d := make([]float64, ctx.NumActions)
	total := 0.0
	for i := 0; i < ctx.NumActions && i < len(w.Weights); i++ {
		if w.Weights[i] > 0 {
			total += w.Weights[i]
		}
	}
	if total == 0 {
		for i := range d {
			d[i] = 1 / float64(ctx.NumActions)
		}
		return d
	}
	for i := 0; i < ctx.NumActions && i < len(w.Weights); i++ {
		if w.Weights[i] > 0 {
			d[i] = w.Weights[i] / total
		}
	}
	return d
}

// String names the policy.
func (w *WeightedRandom) String() string { return fmt.Sprintf("weighted-random%v", w.Weights) }

// EquilibriumLatency returns the theoretical steady-state latency of a
// single server receiving Poisson traffic at rate lambda under this latency
// model (from Little's law: T = Base/(1−Slope·λ)), or +Inf when unstable.
// Used by tests and EXPERIMENTS.md to sanity-check the simulator.
func EquilibriumLatency(s ServerParams, lambda float64) float64 {
	u := s.Slope * lambda
	if u >= 1 {
		return math.Inf(1)
	}
	return s.Base / (1 - u)
}
