package lbsim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/learn"
)

// FitCBPolicy trains the Table 2 "CB policy" from harvested exploration
// data: a shared linear latency model over per-action features
// [conns_s, onehot(s)] whose greedy argmin is the routing policy. Because
// the one-hot terms absorb each server's base latency, the learned policy
// generalizes least-loaded to account for server speed differences.
func FitCBPolicy(expl core.Dataset) (core.Policy, error) {
	if len(expl) == 0 {
		return nil, core.ErrNoData
	}
	model, err := learn.FitRewardModel(expl, learn.FitOptions{Lambda: 1e-4})
	if err != nil {
		return nil, fmt.Errorf("lbsim: fitting CB latency model: %w", err)
	}
	return model.GreedyPolicy(true), nil // latency is a cost: minimize
}

// FitCBModel exposes the fitted latency model itself (for doubly robust
// estimation and the ablation benches).
func FitCBModel(expl core.Dataset) (*learn.RewardModel, error) {
	if len(expl) == 0 {
		return nil, core.ErrNoData
	}
	model, err := learn.FitRewardModel(expl, learn.FitOptions{Lambda: 1e-4})
	if err != nil {
		return nil, fmt.Errorf("lbsim: fitting CB latency model: %w", err)
	}
	return model, nil
}
