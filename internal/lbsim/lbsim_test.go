package lbsim

import (
	"math"
	"testing"

	"repro/internal/ope"
	"repro/internal/policy"
	"repro/internal/stats"
)

func TestConfigValidate(t *testing.T) {
	good := TwoServerFig5()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := map[string]func(*Config){
		"one server":    func(c *Config) { c.Servers = c.Servers[:1] },
		"zero base":     func(c *Config) { c.Servers[0].Base = 0 },
		"neg slope":     func(c *Config) { c.Servers[1].Slope = -1 },
		"zero rate":     func(c *Config) { c.ArrivalRate = 0 },
		"zero requests": func(c *Config) { c.NumRequests = 0 },
		"warmup >= n":   func(c *Config) { c.Warmup = c.NumRequests },
	}
	for name, mutate := range cases {
		c := TwoServerFig5()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s should fail validation", name)
		}
	}
}

func TestRunValidatesInput(t *testing.T) {
	cfg := TwoServerFig5()
	if _, err := Run(cfg, nil, 1, false); err == nil {
		t.Error("nil policy should fail")
	}
	bad := cfg
	bad.ArrivalRate = -1
	if _, err := Run(bad, LeastLoaded{}, 1, false); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestRandomRoutingSplitsEvenly(t *testing.T) {
	cfg := TwoServerFig5()
	cfg.NumRequests = 20000
	res, err := Run(cfg, policy.UniformRandom{R: stats.NewRand(1)}, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	total := res.PerServer[0] + res.PerServer[1]
	frac := float64(res.PerServer[0]) / float64(total)
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("server 1 fraction = %v, want ≈0.5", frac)
	}
	if res.Completed != total {
		t.Errorf("Completed %d != per-server total %d", res.Completed, total)
	}
}

func TestRandomRoutingNearTheory(t *testing.T) {
	cfg := TwoServerFig5()
	cfg.NumRequests = 40000
	res, err := Run(cfg, policy.UniformRandom{R: stats.NewRand(3)}, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	half := cfg.ArrivalRate / 2
	want := (EquilibriumLatency(cfg.Servers[0], half) + EquilibriumLatency(cfg.Servers[1], half)) / 2
	if math.Abs(res.MeanLatency-want)/want > 0.15 {
		t.Errorf("random mean latency = %v, theory ≈ %v", res.MeanLatency, want)
	}
}

func TestSendToOneOverloads(t *testing.T) {
	cfg := TwoServerFig5()
	cfg.NumRequests = 40000
	random, err := Run(cfg, policy.UniformRandom{R: stats.NewRand(5)}, 6, false)
	if err != nil {
		t.Fatal(err)
	}
	sendTo1, err := Run(cfg, policy.Constant{A: 0}, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	// Deployed send-to-1 should be much worse than random (paper: 0.70 vs 0.44).
	if sendTo1.MeanLatency < random.MeanLatency*1.3 {
		t.Errorf("send-to-1 online %v should be ≫ random %v", sendTo1.MeanLatency, random.MeanLatency)
	}
	want := EquilibriumLatency(cfg.Servers[0], cfg.ArrivalRate)
	if math.Abs(sendTo1.MeanLatency-want)/want > 0.2 {
		t.Errorf("send-to-1 latency = %v, theory ≈ %v", sendTo1.MeanLatency, want)
	}
}

func TestLeastLoadedBeatsRandom(t *testing.T) {
	cfg := TwoServerFig5()
	cfg.NumRequests = 30000
	random, err := Run(cfg, policy.UniformRandom{R: stats.NewRand(8)}, 9, false)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := Run(cfg, LeastLoaded{}, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if ll.MeanLatency >= random.MeanLatency {
		t.Errorf("least-loaded %v should beat random %v", ll.MeanLatency, random.MeanLatency)
	}
}

func TestExplorationLogging(t *testing.T) {
	cfg := TwoServerFig5()
	cfg.NumRequests = 5000
	cfg.Warmup = 500
	res, err := Run(cfg, policy.UniformRandom{R: stats.NewRand(11)}, 12, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Exploration) != cfg.NumRequests-cfg.Warmup {
		t.Fatalf("logged %d datapoints, want %d", len(res.Exploration), cfg.NumRequests-cfg.Warmup)
	}
	if err := res.Exploration.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range res.Exploration {
		d := &res.Exploration[i]
		if d.Propensity != 0.5 {
			t.Fatalf("propensity = %v, want 0.5", d.Propensity)
		}
		if d.Reward <= 0 {
			t.Fatalf("latency reward %v should be positive", d.Reward)
		}
		if len(d.Context.ActionFeatures) != 2 {
			t.Fatalf("action features missing")
		}
	}
}

func TestDeterministicPolicyLogsPropensityOne(t *testing.T) {
	cfg := TwoServerFig5()
	cfg.NumRequests = 2000
	cfg.Warmup = 100
	res, err := Run(cfg, LeastLoaded{}, 13, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Exploration {
		if res.Exploration[i].Propensity != 1 {
			t.Fatalf("deterministic policy propensity = %v", res.Exploration[i].Propensity)
		}
	}
}

func TestTable2BreakageOfflineVsOnline(t *testing.T) {
	// The paper's Table 2 in miniature: IPS on random-routing exploration
	// data estimates "send to 1" as *better* than random, but deploying it
	// is far worse. This is the A1 violation demonstration.
	cfg := TwoServerFig5()
	cfg.NumRequests = 30000
	logRun, err := Run(cfg, policy.UniformRandom{R: stats.NewRand(14)}, 15, true)
	if err != nil {
		t.Fatal(err)
	}
	est, err := (ope.IPS{}).Estimate(policy.Constant{A: 0}, logRun.Exploration)
	if err != nil {
		t.Fatal(err)
	}
	online, err := Run(cfg, policy.Constant{A: 0}, 16, false)
	if err != nil {
		t.Fatal(err)
	}
	if est.Value >= logRun.MeanLatency {
		t.Errorf("offline estimate %v should look better (lower) than random %v", est.Value, logRun.MeanLatency)
	}
	if online.MeanLatency < 1.8*est.Value {
		t.Errorf("online %v should be ≫ offline estimate %v (breakage factor ≥1.8)", online.MeanLatency, est.Value)
	}
}

func TestWeightedRandom(t *testing.T) {
	w := &WeightedRandom{Weights: []float64{3, 1}, R: stats.NewRand(17)}
	ctx := BuildContext([]int{0, 0}, 0, 1)
	d := w.Distribution(&ctx)
	if math.Abs(d[0]-0.75) > 1e-12 || math.Abs(d[1]-0.25) > 1e-12 {
		t.Errorf("distribution = %v", d)
	}
	counts := [2]int{}
	for i := 0; i < 20000; i++ {
		counts[w.Act(&ctx)]++
	}
	if math.Abs(float64(counts[0])/20000-0.75) > 0.02 {
		t.Errorf("empirical split %v", counts)
	}
	// Degenerate weights fall back to uniform distribution.
	z := &WeightedRandom{Weights: []float64{0, 0}, R: stats.NewRand(18)}
	d = z.Distribution(&ctx)
	if d[0] != 0.5 || d[1] != 0.5 {
		t.Errorf("zero-weight fallback = %v", d)
	}
}

func TestBuildContext(t *testing.T) {
	ctx := BuildContext([]int{3, 7}, 0, 1)
	if ctx.NumActions != 2 {
		t.Fatalf("NumActions = %d", ctx.NumActions)
	}
	if ctx.Features[0] != 3 || ctx.Features[1] != 7 {
		t.Errorf("shared features = %v", ctx.Features)
	}
	if ctx.ActionFeatures[0][0] != 3 || ctx.ActionFeatures[0][1] != 1 || ctx.ActionFeatures[0][2] != 0 {
		t.Errorf("af[0] = %v", ctx.ActionFeatures[0])
	}
	if ctx.ActionFeatures[1][0] != 7 || ctx.ActionFeatures[1][2] != 1 {
		t.Errorf("af[1] = %v", ctx.ActionFeatures[1])
	}
	if err := ctx.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEquilibriumLatency(t *testing.T) {
	s := ServerParams{Base: 0.2, Slope: 0.04}
	if got := EquilibriumLatency(s, 0); got != 0.2 {
		t.Errorf("no load: %v", got)
	}
	if got := EquilibriumLatency(s, 12.5); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("half load: %v, want 0.4", got)
	}
	if !math.IsInf(EquilibriumLatency(s, 25), 1) {
		t.Error("at capacity should be +Inf")
	}
}

func TestLeastLoadedTieBreak(t *testing.T) {
	ctx := BuildContext([]int{2, 2}, 0, 1)
	if got := (LeastLoaded{}).Act(&ctx); got != 0 {
		t.Errorf("tie should go to server 0, got %d", got)
	}
	ctx = BuildContext([]int{5, 2}, 0, 1)
	if got := (LeastLoaded{}).Act(&ctx); got != 1 {
		t.Errorf("want 1, got %d", got)
	}
}

func TestRunDeterministicGivenSeeds(t *testing.T) {
	cfg := TwoServerFig5()
	cfg.NumRequests = 3000
	a, err := Run(cfg, policy.UniformRandom{R: stats.NewRand(20)}, 21, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, policy.UniformRandom{R: stats.NewRand(20)}, 21, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanLatency != b.MeanLatency || a.P99Latency != b.P99Latency {
		t.Error("same seeds should reproduce identical runs")
	}
}

func TestCBPolicyBeatsLeastLoaded(t *testing.T) {
	// §5: "CB is still able to optimize a good policy from the exploration
	// data and outperform least loaded" — the CB policy learns each
	// server's latency model and greedily picks the lowest predicted
	// latency, which accounts for server 2's additive constant that
	// least-loaded ignores.
	cfg := Table2Config()
	cfg.NumRequests = 30000
	logRun, err := Run(cfg, policy.UniformRandom{R: stats.NewRand(22)}, 23, true)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := FitCBPolicy(logRun.Exploration)
	if err != nil {
		t.Fatal(err)
	}
	cbRes, err := Run(cfg, cb, 24, false)
	if err != nil {
		t.Fatal(err)
	}
	ll, err := Run(cfg, LeastLoaded{}, 25, false)
	if err != nil {
		t.Fatal(err)
	}
	if cbRes.MeanLatency >= ll.MeanLatency {
		t.Errorf("CB %v should beat least-loaded %v", cbRes.MeanLatency, ll.MeanLatency)
	}
}

func TestTypedContextShape(t *testing.T) {
	ctx := BuildContext([]int{3, 7}, 1, 2)
	// Shared: [conns0, conns1, typeOneHot0, typeOneHot1].
	if len(ctx.Features) != 4 || ctx.Features[3] != 1 || ctx.Features[2] != 0 {
		t.Errorf("shared features = %v", ctx.Features)
	}
	// Per-action: [conns_s, onehot(2), onehot(s)×onehot(type)(4)].
	if len(ctx.ActionFeatures[0]) != FeatureDim(2, 2) {
		t.Fatalf("af dim = %d, want %d", len(ctx.ActionFeatures[0]), FeatureDim(2, 2))
	}
	// Server 0, type 1 → index 1+2+0*2+1 = 4.
	if ctx.ActionFeatures[0][4] != 1 {
		t.Errorf("af[0] = %v", ctx.ActionFeatures[0])
	}
	// Server 1, type 1 → index 1+2+1*2+1 = 6.
	if ctx.ActionFeatures[1][6] != 1 {
		t.Errorf("af[1] = %v", ctx.ActionFeatures[1])
	}
}

func TestTable2ConfigValid(t *testing.T) {
	cfg := Table2Config()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Affinity shape mismatches must be rejected.
	bad := Table2Config()
	bad.Affinity = bad.Affinity[:1]
	if err := bad.Validate(); err == nil {
		t.Error("affinity row count mismatch should fail")
	}
	bad2 := Table2Config()
	bad2.Affinity[0] = []float64{0}
	if err := bad2.Validate(); err == nil {
		t.Error("affinity type count mismatch should fail")
	}
	bad3 := Table2Config()
	bad3.Affinity[0][0] = -1
	if err := bad3.Validate(); err == nil {
		t.Error("negative affinity should fail")
	}
}

func TestAffinityRaisesLatencyForMismatchedType(t *testing.T) {
	cfg := Table2Config()
	cfg.NumRequests = 10000
	cfg.Warmup = 1000
	res, err := Run(cfg, policy.UniformRandom{R: stats.NewRand(30)}, 31, true)
	if err != nil {
		t.Fatal(err)
	}
	// Average latency of (server 0, type 1) datapoints should exceed
	// (server 0, type 0) by roughly the affinity penalty.
	var match, mismatch stats.Welford
	for i := range res.Exploration {
		d := &res.Exploration[i]
		if d.Action != 0 {
			continue
		}
		// Type one-hot lives at shared indices [2,3].
		if d.Context.Features[2] == 1 {
			match.Add(d.Reward)
		} else {
			mismatch.Add(d.Reward)
		}
	}
	diff := mismatch.Mean() - match.Mean()
	if math.Abs(diff-0.20) > 0.03 {
		t.Errorf("type penalty = %v, want ≈0.20", diff)
	}
}
