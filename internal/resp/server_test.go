package resp

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cachesim"
	"repro/internal/stats"
)

// startServer brings up a server on an ephemeral port and returns a
// connected client plus a cleanup-registered shutdown.
func startServer(t *testing.T, maxBytes int64) (*Client, *Server) {
	t.Helper()
	var srv *Server
	cfg := cachesim.Config{
		MaxBytes:   maxBytes,
		SampleSize: 5,
		OnEvict:    func(key string) { srv.OnEvict(key) },
	}
	cache, err := cachesim.New(cfg, cachesim.RandomEvictor{R: stats.NewRand(1)}, stats.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	srv, err = NewServer(cache)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := Dial(addr.String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli, srv
}

func TestPingSetGetDel(t *testing.T) {
	cli, _ := startServer(t, 10000)
	if err := cli.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := cli.Set("greeting", "hello world"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := cli.Get("greeting")
	if err != nil || !ok || v != "hello world" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if _, ok, _ := cli.Get("missing"); ok {
		t.Error("missing key should miss")
	}
	n, err := cli.Del("greeting", "missing")
	if err != nil || n != 1 {
		t.Fatalf("Del = %d, %v", n, err)
	}
	if _, ok, _ := cli.Get("greeting"); ok {
		t.Error("deleted key should miss")
	}
}

func TestPingWithArgument(t *testing.T) {
	cli, _ := startServer(t, 1000)
	v, err := cli.Do("PING", "echo-me")
	if err != nil || v.Str != "echo-me" {
		t.Fatalf("PING arg = %+v, %v", v, err)
	}
}

func TestExistsDbsizeFlush(t *testing.T) {
	cli, _ := startServer(t, 10000)
	for i := 0; i < 5; i++ {
		if err := cli.Set(fmt.Sprintf("k%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	v, err := cli.Do("EXISTS", "k0", "k1", "nope")
	if err != nil || v.Int != 2 {
		t.Fatalf("EXISTS = %+v, %v", v, err)
	}
	v, err = cli.Do("DBSIZE")
	if err != nil || v.Int != 5 {
		t.Fatalf("DBSIZE = %+v, %v", v, err)
	}
	if _, err := cli.Do("FLUSHALL"); err != nil {
		t.Fatal(err)
	}
	v, err = cli.Do("DBSIZE")
	if err != nil || v.Int != 0 {
		t.Fatalf("DBSIZE after flush = %+v, %v", v, err)
	}
}

func TestEvictionKeepsValuesInSync(t *testing.T) {
	// Budget for ~10 small items; writing 50 forces evictions. Every
	// resident key must still serve its value; evicted keys must miss
	// cleanly (no stale values).
	cli, srv := startServer(t, 200)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key%02d", i)
		if err := cli.Set(key, "0123456789"); err != nil {
			t.Fatal(err)
		}
	}
	resident := 0
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key%02d", i)
		v, ok, err := cli.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			resident++
			if v != "0123456789" {
				t.Fatalf("stale value %q for %q", v, key)
			}
		}
	}
	if resident == 0 || resident >= 50 {
		t.Errorf("resident = %d, expected some but not all", resident)
	}
	// The value map must not leak evicted keys.
	srv.mu.Lock()
	leaked := len(srv.values) != srv.cache.Stats().Items
	srv.mu.Unlock()
	if leaked {
		t.Error("value store out of sync with cache residency")
	}
}

func TestInfoReportsStats(t *testing.T) {
	cli, _ := startServer(t, 1000)
	if err := cli.Set("a", "1"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cli.Get("a"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cli.Get("b"); err != nil {
		t.Fatal(err)
	}
	v, err := cli.Do("INFO")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"keyspace_hits:1", "keyspace_misses:1", "maxmemory:1000", "hit_rate:"} {
		if !strings.Contains(v.Str, want) {
			t.Errorf("INFO missing %q:\n%s", want, v.Str)
		}
	}
}

func TestProtocolErrors(t *testing.T) {
	cli, _ := startServer(t, 1000)
	var srvErr *ServerError
	if _, err := cli.Do("NOSUCH"); !errors.As(err, &srvErr) {
		t.Errorf("unknown command err = %v", err)
	}
	if _, err := cli.Do("SET", "only-key"); !errors.As(err, &srvErr) {
		t.Errorf("arity err = %v", err)
	}
	if _, err := cli.Do("GET"); !errors.As(err, &srvErr) {
		t.Errorf("arity err = %v", err)
	}
	// Oversized item rejected but connection stays usable.
	if _, err := cli.Do("SET", "big", strings.Repeat("x", 2000)); !errors.As(err, &srvErr) {
		t.Errorf("oversize err = %v", err)
	}
	if err := cli.Ping(); err != nil {
		t.Fatalf("connection should survive errors: %v", err)
	}
}

func TestQuitClosesConnection(t *testing.T) {
	cli, _ := startServer(t, 1000)
	v, err := cli.Do("QUIT")
	if err != nil || v.Str != "OK" {
		t.Fatalf("QUIT = %+v, %v", v, err)
	}
	// Subsequent command should fail (server closed its end).
	if err := cli.Ping(); err == nil {
		t.Error("connection should be closed after QUIT")
	}
}

func TestConcurrentClients(t *testing.T) {
	cli0, srv := startServer(t, 100000)
	_ = cli0
	addr := srv.ln.Addr().String()
	const workers = 8
	const opsEach = 200
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cli, err := Dial(addr, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			for i := 0; i < opsEach; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i%20)
				if err := cli.Set(key, "value"); err != nil {
					errs <- err
					return
				}
				if _, _, err := cli.Get(key); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	v, err := cli0.Do("DBSIZE")
	if err != nil || v.Int != workers*20 {
		t.Fatalf("DBSIZE = %+v, %v (want %d)", v, err, workers*20)
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil); err == nil {
		t.Error("nil cache should fail")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 100*time.Millisecond); err == nil {
		t.Error("dial to closed port should fail")
	}
}

func TestClientEmptyCommand(t *testing.T) {
	cli, _ := startServer(t, 1000)
	if _, err := cli.Do(); err == nil {
		t.Error("empty command should fail client-side")
	}
}

func TestPipelineBatchesCommands(t *testing.T) {
	cli, _ := startServer(t, 10000)
	pipe := cli.Pipeline()
	pipe.Queue("SET", "p1", "v1")
	pipe.Queue("SET", "p2", "v2")
	pipe.Queue("GET", "p1")
	pipe.Queue("GET", "missing")
	pipe.Queue("DBSIZE")
	replies, err := pipe.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 5 {
		t.Fatalf("replies = %d", len(replies))
	}
	if replies[0].Str != "OK" || replies[1].Str != "OK" {
		t.Errorf("SET replies: %+v", replies[:2])
	}
	if replies[2].Str != "v1" {
		t.Errorf("GET reply: %+v", replies[2])
	}
	if !replies[3].Null {
		t.Errorf("missing key should be null: %+v", replies[3])
	}
	if replies[4].Int != 2 {
		t.Errorf("DBSIZE = %+v", replies[4])
	}
	// The connection remains usable for plain commands.
	if err := cli.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineErrorsInline(t *testing.T) {
	cli, _ := startServer(t, 10000)
	pipe := cli.Pipeline()
	pipe.Queue("SET", "k", "v")
	pipe.Queue("NOSUCH")
	pipe.Queue("GET", "k")
	replies, err := pipe.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if replies[1].Type != Error {
		t.Errorf("bad command should yield an Error reply: %+v", replies[1])
	}
	if replies[2].Str != "v" {
		t.Errorf("command after the error should still work: %+v", replies[2])
	}
}

func TestPipelineEmptyAndQueueValidation(t *testing.T) {
	cli, _ := startServer(t, 1000)
	pipe := cli.Pipeline()
	replies, err := pipe.Exec()
	if err != nil || replies != nil {
		t.Errorf("empty pipeline: %v, %v", replies, err)
	}
	pipe.Queue() // empty command poisons the batch
	pipe.Queue("PING")
	if _, err := pipe.Exec(); err == nil {
		t.Error("poisoned pipeline should fail")
	}
}

func TestPipelineReusableAfterExec(t *testing.T) {
	cli, _ := startServer(t, 1000)
	pipe := cli.Pipeline()
	pipe.Queue("PING")
	if _, err := pipe.Exec(); err != nil {
		t.Fatal(err)
	}
	pipe.Queue("PING")
	replies, err := pipe.Exec()
	if err != nil || len(replies) != 1 {
		t.Fatalf("second batch: %v, %v", replies, err)
	}
}
