package resp

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"
)

// Client is a blocking RESP client for one connection. Safe for sequential
// use only; open one client per goroutine.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a RESP server.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("resp: dial %s: %w", addr, err)
	}
	return &Client{
		conn: conn,
		r:    bufio.NewReader(conn),
		w:    bufio.NewWriter(conn),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends one command and reads the reply. A server -ERR reply is returned
// as a *ServerError.
func (c *Client) Do(args ...string) (Value, error) {
	if len(args) == 0 {
		return Value{}, errors.New("resp: empty command")
	}
	if err := WriteValue(c.w, Command(args...)); err != nil {
		return Value{}, err
	}
	if err := c.w.Flush(); err != nil {
		return Value{}, err
	}
	v, err := ReadValue(c.r)
	if err != nil {
		return Value{}, err
	}
	if v.Type == Error {
		return v, &ServerError{Msg: v.Str}
	}
	return v, nil
}

// ServerError is an -ERR reply from the server.
type ServerError struct {
	Msg string
}

// Error implements error.
func (e *ServerError) Error() string { return "resp: server error: " + e.Msg }

// Set stores a key/value pair.
func (c *Client) Set(key, value string) error {
	v, err := c.Do("SET", key, value)
	if err != nil {
		return err
	}
	if v.Type != SimpleString || v.Str != "OK" {
		return fmt.Errorf("resp: unexpected SET reply %+v", v)
	}
	return nil
}

// Get fetches a key; ok is false on a miss.
func (c *Client) Get(key string) (value string, ok bool, err error) {
	v, err := c.Do("GET", key)
	if err != nil {
		return "", false, err
	}
	if v.Null {
		return "", false, nil
	}
	return v.Str, true, nil
}

// Del removes keys, returning how many were resident.
func (c *Client) Del(keys ...string) (int64, error) {
	v, err := c.Do(append([]string{"DEL"}, keys...)...)
	if err != nil {
		return 0, err
	}
	return v.Int, nil
}

// Ping round-trips the connection.
func (c *Client) Ping() error {
	v, err := c.Do("PING")
	if err != nil {
		return err
	}
	if v.Str != "PONG" {
		return fmt.Errorf("resp: unexpected PING reply %+v", v)
	}
	return nil
}
