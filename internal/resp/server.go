package resp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/cachesim"
	"repro/internal/obs"
)

// Server is a minimal Redis-like TCP server fronting a cachesim.Cache.
// Supported commands: PING, SET, GET, DEL, EXISTS, DBSIZE, FLUSHALL, INFO,
// QUIT. Values are stored verbatim; the byte budget is charged with
// len(key)+len(value), like Redis's memory accounting in spirit.
type Server struct {
	mu       sync.Mutex
	cache    *cachesim.Cache
	values   map[string]string
	start    time.Time
	commands int64 // dispatched commands (all kinds), guarded by mu

	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}
}

// NewServer wires a server to a cache. The cache's OnEvict hook is
// installed to keep the value store in sync; the caller must not install a
// competing hook. The cache must have been built with cachesim.New.
func NewServer(c *cachesim.Cache) (*Server, error) {
	if c == nil {
		return nil, errors.New("resp: nil cache")
	}
	s := &Server{
		cache:  c,
		values: make(map[string]string),
		start:  time.Now(),
		closed: make(chan struct{}),
	}
	return s, nil
}

// OnEvict is the hook the owning cache's Config.OnEvict must point at so
// evictions drop value bytes. (Wired by callers because the hook has to be
// set before cachesim.New.)
func (s *Server) OnEvict(key string) {
	// Called from inside cache operations, which already hold s.mu via
	// the command handlers — no extra locking here.
	delete(s.values, key)
}

// Listen binds the server to addr (e.g. "127.0.0.1:0") and starts serving
// until Close. It returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("resp: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			// Transient accept error: keep serving.
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// Close stops the listener and waits for in-flight connections.
func (s *Server) Close() error {
	close(s.closed)
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err
}

// CacheStats returns the underlying cache's statistics plus the server's
// hit rate and total dispatched commands, taking the command lock — the
// cachesim.Cache is not safe for concurrent use, so metrics readers must
// come through here rather than touching the cache directly.
func (s *Server) CacheStats() (st cachesim.Stats, hitRate float64, commands int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.Stats(), s.cache.HitRate(), s.commands
}

// RegisterMetrics adds the server's cache gauges and counters to an obs
// registry, all read at scrape time through CacheStats.
func (s *Server) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("cached_commands_total", "RESP commands dispatched", func() int64 {
		_, _, n := s.CacheStats()
		return n
	})
	r.CounterFunc("cached_keyspace_hits_total", "cache hits", func() int64 {
		st, _, _ := s.CacheStats()
		return st.Hits
	})
	r.CounterFunc("cached_keyspace_misses_total", "cache misses", func() int64 {
		st, _, _ := s.CacheStats()
		return st.Misses
	})
	r.CounterFunc("cached_evictions_total", "keys evicted", func() int64 {
		st, _, _ := s.CacheStats()
		return st.Evictions
	})
	r.GaugeFunc("cached_used_bytes", "bytes charged against the budget", func() float64 {
		st, _, _ := s.CacheStats()
		return float64(st.UsedBytes)
	})
	r.GaugeFunc("cached_max_bytes", "cache byte budget", func() float64 {
		st, _, _ := s.CacheStats()
		return float64(st.MaxBytes)
	})
	r.GaugeFunc("cached_items", "resident keys", func() float64 {
		st, _, _ := s.CacheStats()
		return float64(st.Items)
	})
	r.GaugeFunc("cached_hit_rate", "lifetime hit rate", func() float64 {
		_, hr, _ := s.CacheStats()
		return hr
	})
}

func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		req, err := ReadValue(r)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				_ = WriteValue(w, Errorf("ERR %v", err))
				_ = w.Flush()
			}
			return
		}
		reply, quit := s.dispatch(req)
		if err := WriteValue(w, reply); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
		if quit {
			return
		}
	}
}

// dispatch executes one command and returns the reply and whether the
// connection should close.
func (s *Server) dispatch(req Value) (Value, bool) {
	if req.Type != Array || req.Null || len(req.Array) == 0 {
		return Errorf("ERR expected command array"), false
	}
	args := make([]string, len(req.Array))
	for i, v := range req.Array {
		if v.Type != BulkString || v.Null {
			return Errorf("ERR command arguments must be bulk strings"), false
		}
		args[i] = v.Str
	}
	cmd := strings.ToUpper(args[0])
	s.mu.Lock()
	defer s.mu.Unlock()
	s.commands++
	// Advance the cache clock in wall seconds since server start so
	// recency features are meaningful.
	s.cache.Advance(time.Since(s.start).Seconds())
	switch cmd {
	case "PING":
		if len(args) == 2 {
			return Bulk(args[1]), false
		}
		return Value{Type: SimpleString, Str: "PONG"}, false
	case "SET":
		if len(args) != 3 {
			return Errorf("ERR wrong number of arguments for 'set'"), false
		}
		key, val := args[1], args[2]
		size := int64(len(key) + len(val))
		if err := s.cache.Set(key, size); err != nil {
			return Errorf("ERR %v", err), false
		}
		s.values[key] = val
		return OK, false
	case "GET":
		if len(args) != 2 {
			return Errorf("ERR wrong number of arguments for 'get'"), false
		}
		if !s.cache.Get(args[1]) {
			return NullBulk, false
		}
		return Bulk(s.values[args[1]]), false
	case "DEL":
		n := int64(0)
		for _, key := range args[1:] {
			if s.cache.Delete(key) {
				delete(s.values, key)
				n++
			}
		}
		return Int(n), false
	case "EXISTS":
		n := int64(0)
		for _, key := range args[1:] {
			if s.cache.Contains(key) {
				n++
			}
		}
		return Int(n), false
	case "DBSIZE":
		return Int(int64(s.cache.Stats().Items)), false
	case "FLUSHALL":
		s.cache.Flush()
		s.values = make(map[string]string)
		return OK, false
	case "INFO":
		st := s.cache.Stats()
		info := fmt.Sprintf(
			"# Stats\r\nkeyspace_hits:%d\r\nkeyspace_misses:%d\r\nevicted_keys:%d\r\nused_memory:%d\r\nmaxmemory:%d\r\ndb0:keys=%d\r\nhit_rate:%.4f\r\n",
			st.Hits, st.Misses, st.Evictions, st.UsedBytes, st.MaxBytes, st.Items, s.cache.HitRate())
		return Bulk(info), false
	case "QUIT":
		return OK, true
	default:
		return Errorf("ERR unknown command '%s'", args[0]), false
	}
}
