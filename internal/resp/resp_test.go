package resp

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, v Value) Value {
	t.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteValue(w, v); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadValue(bufio.NewReader(&buf))
	if err != nil {
		t.Fatalf("decoding %q: %v", buf.String(), err)
	}
	return got
}

func TestRoundTripScalars(t *testing.T) {
	cases := []Value{
		{Type: SimpleString, Str: "OK"},
		{Type: Error, Str: "ERR boom"},
		{Type: Integer, Int: -42},
		{Type: Integer, Int: 0},
		{Type: BulkString, Str: "hello"},
		{Type: BulkString, Str: ""},
		{Type: BulkString, Str: "with\r\nnewlines\r\ninside"},
		{Type: BulkString, Null: true},
		{Type: Array, Null: true},
	}
	for _, v := range cases {
		got := roundTrip(t, v)
		if got.Type != v.Type || got.Str != v.Str || got.Int != v.Int || got.Null != v.Null {
			t.Errorf("round trip %+v → %+v", v, got)
		}
	}
}

func TestRoundTripNestedArray(t *testing.T) {
	v := Value{Type: Array, Array: []Value{
		Bulk("SET"),
		Bulk("key"),
		Int(7),
		{Type: Array, Array: []Value{Bulk("nested")}},
	}}
	got := roundTrip(t, v)
	if len(got.Array) != 4 || got.Array[0].Str != "SET" || got.Array[2].Int != 7 {
		t.Errorf("got %+v", got)
	}
	if got.Array[3].Array[0].Str != "nested" {
		t.Errorf("nested array lost: %+v", got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(s string, n int64) bool {
		got := roundTrip(t, Bulk(s))
		if got.Str != s {
			return false
		}
		gi := roundTrip(t, Int(n))
		return gi.Int == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadValueMalformed(t *testing.T) {
	cases := []string{
		"x123\r\n",       // unknown type
		":\r\n",          // empty integer
		":abc\r\n",       // bad integer
		"$5\r\nab\r\n",   // short bulk
		"$abc\r\n",       // bad bulk length
		"$-2\r\n",        // negative bulk length
		"*abc\r\n",       // bad array length
		"+OK\n",          // missing CR
		"$3\r\nabcXY",    // missing CRLF after bulk
		"*1\r\n:bad\r\n", // bad nested value
	}
	for _, raw := range cases {
		_, err := ReadValue(bufio.NewReader(strings.NewReader(raw)))
		if err == nil {
			t.Errorf("input %q should fail", raw)
		}
	}
}

func TestCommandEncoding(t *testing.T) {
	v := Command("GET", "key")
	if v.Type != Array || len(v.Array) != 2 {
		t.Fatalf("command = %+v", v)
	}
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteValue(w, v); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	want := "*2\r\n$3\r\nGET\r\n$3\r\nkey\r\n"
	if buf.String() != want {
		t.Errorf("wire = %q, want %q", buf.String(), want)
	}
}

func TestWriteUnknownType(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteValue(w, Value{Type: 'z'}); !errors.Is(err, ErrProtocol) {
		t.Errorf("err = %v, want ErrProtocol", err)
	}
}
