package resp

import (
	"errors"
	"fmt"
)

// Pipeline batches commands on a client connection: all commands are
// written before any reply is read, cutting per-command round trips the way
// Redis pipelining does. Replies come back in command order.
//
//	pipe := cli.Pipeline()
//	pipe.Queue("SET", "a", "1")
//	pipe.Queue("GET", "a")
//	replies, err := pipe.Exec()
type Pipeline struct {
	c      *Client
	queued int
	err    error
}

// Pipeline starts a new batch on the connection. Do not interleave Do
// calls with an open pipeline.
func (c *Client) Pipeline() *Pipeline {
	return &Pipeline{c: c}
}

// Queue appends one command to the batch (buffered client-side until Exec
// flushes).
func (p *Pipeline) Queue(args ...string) {
	if p.err != nil {
		return
	}
	if len(args) == 0 {
		p.err = errors.New("resp: empty pipelined command")
		return
	}
	if err := WriteValue(p.c.w, Command(args...)); err != nil {
		p.err = err
		return
	}
	p.queued++
}

// Exec flushes the batch and reads one reply per queued command. Server
// -ERR replies are returned in place (Type == Error), not as a call error,
// so one failing command does not mask the rest of the batch.
func (p *Pipeline) Exec() ([]Value, error) {
	if p.err != nil {
		return nil, p.err
	}
	if p.queued == 0 {
		return nil, nil
	}
	if err := p.c.w.Flush(); err != nil {
		return nil, err
	}
	replies := make([]Value, p.queued)
	for i := range replies {
		v, err := ReadValue(p.c.r)
		if err != nil {
			return nil, fmt.Errorf("resp: pipeline reply %d: %w", i, err)
		}
		replies[i] = v
	}
	p.queued = 0
	return replies, nil
}
