package resp

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

// FuzzReadValue checks the decoder never panics or over-allocates on
// arbitrary wire bytes, and that everything it accepts re-encodes to a form
// it decodes back to the same value (decode∘encode∘decode = decode).
func FuzzReadValue(f *testing.F) {
	seeds := []string{
		"+OK\r\n",
		"-ERR boom\r\n",
		":42\r\n",
		"$5\r\nhello\r\n",
		"$-1\r\n",
		"*2\r\n$3\r\nGET\r\n$3\r\nkey\r\n",
		"*-1\r\n",
		"*1\r\n*1\r\n:7\r\n",
		"$0\r\n\r\n",
		":9223372036854775807\r\n",
		"x",
		"$99999999999\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := ReadValue(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := WriteValue(w, v); err != nil {
			t.Fatalf("accepted value failed to encode: %+v: %v", v, err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		v2, err := ReadValue(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("re-decode failed for %q: %v", buf.String(), err)
		}
		if !valuesEqual(v, v2) {
			t.Fatalf("round trip changed value: %+v vs %+v", v, v2)
		}
	})
}

func valuesEqual(a, b Value) bool {
	if a.Type != b.Type || a.Str != b.Str || a.Int != b.Int || a.Null != b.Null {
		return false
	}
	if len(a.Array) != len(b.Array) {
		return false
	}
	for i := range a.Array {
		if !valuesEqual(a.Array[i], b.Array[i]) {
			return false
		}
	}
	return true
}

// FuzzCommandRoundTrip checks arbitrary argument vectors survive the
// command encoding.
func FuzzCommandRoundTrip(f *testing.F) {
	f.Add("GET", "key")
	f.Add("SET", "key with spaces")
	f.Add("", "\r\n\x00")
	f.Fuzz(func(t *testing.T, a, b string) {
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := WriteValue(w, Command(a, b)); err != nil {
			t.Fatal(err)
		}
		w.Flush()
		v, err := ReadValue(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("command %q/%q failed round trip: %v", a, b, err)
		}
		if len(v.Array) != 2 || v.Array[0].Str != a || v.Array[1].Str != b {
			t.Fatalf("args corrupted: %+v", v)
		}
	})
}

// FuzzServerDispatch throws arbitrary command arrays at the dispatcher and
// requires it to reply (never hang, never panic) and keep cache and value
// store consistent.
func FuzzServerDispatch(f *testing.F) {
	f.Add("SET", "k", "v")
	f.Add("GET", "k", "")
	f.Add("DEL", "k", "")
	f.Add("INFO", "", "")
	f.Add("set", "K", strings.Repeat("x", 100))
	f.Fuzz(func(t *testing.T, c1, c2, c3 string) {
		cli, srv := startServer(t, 500)
		_ = cli
		args := []Value{Bulk(c1), Bulk(c2), Bulk(c3)}
		reply, _ := srv.dispatch(Value{Type: Array, Array: args})
		if reply.Type == 0 {
			t.Fatal("no reply")
		}
		srv.mu.Lock()
		defer srv.mu.Unlock()
		if int64(srv.cache.Stats().UsedBytes) > 500 {
			t.Fatal("budget exceeded")
		}
	})
}
