// Package resp implements a minimal RESP2 (REdis Serialization Protocol)
// codec, server, and client, so the cache substrate can be driven over TCP
// the way the paper's Redis prototype was. The server fronts a
// cachesim.Cache; every GET/SET flows through the same sampled-eviction
// path whose randomness the harvester collects.
//
// Only the protocol subset the experiments need is implemented: simple
// strings, errors, integers, bulk strings (including null), and arrays.
package resp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Type tags a RESP value.
type Type byte

// RESP2 type markers.
const (
	SimpleString Type = '+'
	Error        Type = '-'
	Integer      Type = ':'
	BulkString   Type = '$'
	Array        Type = '*'
)

// Value is one decoded RESP value.
type Value struct {
	Type  Type
	Str   string  // SimpleString, Error, BulkString payload
	Int   int64   // Integer payload
	Array []Value // Array payload
	Null  bool    // null bulk string / null array
}

// ErrProtocol reports malformed wire data.
var ErrProtocol = errors.New("resp: protocol error")

// MaxBulkLen guards against absurd allocations from hostile length headers.
const MaxBulkLen = 64 << 20

// WriteValue encodes v onto w.
func WriteValue(w *bufio.Writer, v Value) error {
	switch v.Type {
	case SimpleString:
		_, err := fmt.Fprintf(w, "+%s\r\n", v.Str)
		return err
	case Error:
		_, err := fmt.Fprintf(w, "-%s\r\n", v.Str)
		return err
	case Integer:
		_, err := fmt.Fprintf(w, ":%d\r\n", v.Int)
		return err
	case BulkString:
		if v.Null {
			_, err := w.WriteString("$-1\r\n")
			return err
		}
		if _, err := fmt.Fprintf(w, "$%d\r\n", len(v.Str)); err != nil {
			return err
		}
		if _, err := w.WriteString(v.Str); err != nil {
			return err
		}
		_, err := w.WriteString("\r\n")
		return err
	case Array:
		if v.Null {
			_, err := w.WriteString("*-1\r\n")
			return err
		}
		if _, err := fmt.Fprintf(w, "*%d\r\n", len(v.Array)); err != nil {
			return err
		}
		for _, e := range v.Array {
			if err := WriteValue(w, e); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown type %q", ErrProtocol, byte(v.Type))
	}
}

// ReadValue decodes one RESP value from r.
func ReadValue(r *bufio.Reader) (Value, error) {
	line, err := readLine(r)
	if err != nil {
		return Value{}, err
	}
	if len(line) == 0 {
		return Value{}, fmt.Errorf("%w: empty line", ErrProtocol)
	}
	t, rest := Type(line[0]), line[1:]
	switch t {
	case SimpleString, Error:
		return Value{Type: t, Str: rest}, nil
	case Integer:
		n, err := strconv.ParseInt(rest, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad integer %q", ErrProtocol, rest)
		}
		return Value{Type: t, Int: n}, nil
	case BulkString:
		n, err := strconv.ParseInt(rest, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad bulk length %q", ErrProtocol, rest)
		}
		if n == -1 {
			return Value{Type: t, Null: true}, nil
		}
		if n < 0 || n > MaxBulkLen {
			return Value{}, fmt.Errorf("%w: bulk length %d out of range", ErrProtocol, n)
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(r, buf); err != nil {
			return Value{}, fmt.Errorf("%w: short bulk read: %v", ErrProtocol, err)
		}
		if buf[n] != '\r' || buf[n+1] != '\n' {
			return Value{}, fmt.Errorf("%w: bulk string missing CRLF", ErrProtocol)
		}
		return Value{Type: t, Str: string(buf[:n])}, nil
	case Array:
		n, err := strconv.ParseInt(rest, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad array length %q", ErrProtocol, rest)
		}
		if n == -1 {
			return Value{Type: t, Null: true}, nil
		}
		if n < 0 || n > 1<<20 {
			return Value{}, fmt.Errorf("%w: array length %d out of range", ErrProtocol, n)
		}
		arr := make([]Value, n)
		for i := range arr {
			arr[i], err = ReadValue(r)
			if err != nil {
				return Value{}, err
			}
		}
		return Value{Type: t, Array: arr}, nil
	default:
		return Value{}, fmt.Errorf("%w: unknown type marker %q", ErrProtocol, byte(t))
	}
}

// readLine reads a CRLF-terminated line, returning it without the CRLF.
func readLine(r *bufio.Reader) (string, error) {
	s, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(s) < 2 || s[len(s)-2] != '\r' {
		return "", fmt.Errorf("%w: line not CRLF-terminated", ErrProtocol)
	}
	return s[:len(s)-2], nil
}

// Command encodes a client command as an array of bulk strings.
func Command(args ...string) Value {
	arr := make([]Value, len(args))
	for i, a := range args {
		arr[i] = Value{Type: BulkString, Str: a}
	}
	return Value{Type: Array, Array: arr}
}

// OK is the canonical +OK reply.
var OK = Value{Type: SimpleString, Str: "OK"}

// Errorf builds an error reply.
func Errorf(format string, args ...any) Value {
	return Value{Type: Error, Str: fmt.Sprintf(format, args...)}
}

// Bulk builds a bulk-string reply.
func Bulk(s string) Value { return Value{Type: BulkString, Str: s} }

// NullBulk is the null bulk string ($-1), Redis's "no such key".
var NullBulk = Value{Type: BulkString, Null: true}

// Int builds an integer reply.
func Int(n int64) Value { return Value{Type: Integer, Int: n} }
