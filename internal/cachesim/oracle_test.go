package cachesim

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestGenerateTraceAndReplay(t *testing.T) {
	w := DefaultBigSmall()
	tr, err := GenerateTrace(w, stats.NewRand(1), 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 5000 {
		t.Fatalf("trace len = %d", len(tr))
	}
	cfg := Config{MaxBytes: w.TotalBytes() / 2, SampleSize: 10}
	c, err := New(cfg, RandomEvictor{R: stats.NewRand(2)}, stats.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	hr, err := ReplayTrace(c, tr)
	if err != nil {
		t.Fatal(err)
	}
	if hr <= 0 || hr >= 1 {
		t.Errorf("hit rate = %v", hr)
	}
	if _, err := GenerateTrace(w, stats.NewRand(1), 0); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := ReplayTrace(c, nil); err == nil {
		t.Error("empty trace should fail")
	}
}

func TestReplayTraceDeterministicAcrossPolicies(t *testing.T) {
	// The same trace replayed twice under the same policy gives the same
	// hit rate (the point of materializing traces).
	w := DefaultBigSmall()
	tr, err := GenerateTrace(w, stats.NewRand(4), 8000)
	if err != nil {
		t.Fatal(err)
	}
	run := func() float64 {
		cfg := Config{MaxBytes: w.TotalBytes() / 2, SampleSize: 10}
		c, err := New(cfg, LRUEvictor{}, stats.NewRand(5))
		if err != nil {
			t.Fatal(err)
		}
		hr, err := ReplayTrace(c, tr)
		if err != nil {
			t.Fatal(err)
		}
		return hr
	}
	if a, b := run(), run(); a != b {
		t.Errorf("replay not deterministic: %v vs %v", a, b)
	}
}

func TestOracleNextAfter(t *testing.T) {
	tr := Trace{
		{Key: "a", Size: 1}, // t=0
		{Key: "b", Size: 1}, // t=1
		{Key: "a", Size: 1}, // t=2
	}
	o := BuildOracle(tr)
	if got := o.NextAfter("a", 0); got != 2 {
		t.Errorf("next a after 0 = %v, want 2", got)
	}
	if got := o.NextAfter("a", 2); !math.IsInf(got, 1) {
		t.Errorf("next a after 2 = %v, want +Inf", got)
	}
	if got := o.NextAfter("missing", 0); !math.IsInf(got, 1) {
		t.Errorf("unknown key = %v, want +Inf", got)
	}
	if got := o.NextAfter("b", 0.5); got != 1 {
		t.Errorf("next b after 0.5 = %v, want 1", got)
	}
}

func TestBeladyChoosesFarthest(t *testing.T) {
	tr := Trace{
		{Key: "soon", Size: 1},
		{Key: "later", Size: 1},
	}
	// soon next at t=10, later never again.
	tr = append(tr, Trace{{Key: "x", Size: 1}}...)
	tr = append(tr, make(Trace, 6)...)
	for i := 3; i < 9; i++ {
		tr[i] = Request{Key: "x", Size: 1}
	}
	tr = append(tr, Request{Key: "soon", Size: 1}) // t=9
	o := BuildOracle(tr)
	ev := BeladyEvictor{Oracle: o}
	cands := []Candidate{{Key: "soon"}, {Key: "later"}}
	if got := ev.Choose(cands, 2); got != 1 {
		t.Errorf("belady chose %d, want 1 (never requested again)", got)
	}
}

func TestBeladyBeatsEveryOnlinePolicy(t *testing.T) {
	// The clairvoyant skyline: on the same trace, Belady (size-aware)
	// must beat random, LRU, LFU, and freq/size.
	w := DefaultBigSmall()
	tr, err := GenerateTrace(w, stats.NewRand(6), 40000)
	if err != nil {
		t.Fatal(err)
	}
	oracle := BuildOracle(tr)
	run := func(ev Evictor, seed int64) float64 {
		cfg := Config{MaxBytes: w.TotalBytes() / 2, SampleSize: 10}
		c, err := New(cfg, ev, stats.NewRand(seed))
		if err != nil {
			t.Fatal(err)
		}
		hr, err := ReplayTrace(c, tr)
		if err != nil {
			t.Fatal(err)
		}
		return hr
	}
	belady := run(SizeAwareBeladyEvictor{Oracle: oracle}, 7)
	for name, hr := range map[string]float64{
		"random":    run(RandomEvictor{R: stats.NewRand(8)}, 9),
		"lru":       run(LRUEvictor{}, 10),
		"lfu":       run(LFUEvictor{}, 11),
		"freq/size": run(FreqSizeEvictor{}, 12),
	} {
		if belady <= hr {
			t.Errorf("belady %v should beat %s %v", belady, name, hr)
		}
	}
	// Plain Belady (size-blind) should also beat random but may trail the
	// size-aware variants on this byte-skewed workload.
	plain := run(BeladyEvictor{Oracle: oracle}, 13)
	random := run(RandomEvictor{R: stats.NewRand(14)}, 15)
	if plain <= random {
		t.Errorf("plain belady %v should beat random %v", plain, random)
	}
}
