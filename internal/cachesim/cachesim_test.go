package cachesim

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func newCache(t *testing.T, cfg Config, ev Evictor, seed int64) *Cache {
	t.Helper()
	c, err := New(cfg, ev, stats.NewRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	r := stats.NewRand(1)
	if _, err := New(Config{MaxBytes: 0}, LRUEvictor{}, r); err == nil {
		t.Error("zero budget should fail")
	}
	if _, err := New(Config{MaxBytes: 10}, nil, r); err == nil {
		t.Error("nil evictor should fail")
	}
	if _, err := New(Config{MaxBytes: 10}, LRUEvictor{}, nil); err == nil {
		t.Error("nil rand should fail")
	}
}

func TestGetSetBasics(t *testing.T) {
	c := newCache(t, Config{MaxBytes: 100}, LRUEvictor{}, 1)
	if c.Get("a") {
		t.Error("empty cache should miss")
	}
	if err := c.Set("a", 10); err != nil {
		t.Fatal(err)
	}
	if !c.Get("a") {
		t.Error("should hit after set")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.UsedBytes != 10 || st.Items != 1 {
		t.Errorf("stats = %+v", st)
	}
	if c.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", c.HitRate())
	}
}

func TestSetRejectsOversizeAndBadInput(t *testing.T) {
	c := newCache(t, Config{MaxBytes: 100}, LRUEvictor{}, 2)
	if err := c.Set("big", 101); err == nil {
		t.Error("oversize item should fail")
	}
	if err := c.Set("zero", 0); err == nil {
		t.Error("zero size should fail")
	}
	if err := c.Set("neg", -1); err == nil {
		t.Error("negative size should fail")
	}
}

func TestEvictionKeepsBudget(t *testing.T) {
	c := newCache(t, Config{MaxBytes: 100, SampleSize: 3}, RandomEvictor{R: stats.NewRand(3)}, 4)
	for i := 0; i < 50; i++ {
		c.Advance(float64(i))
		if err := c.Set(fmt.Sprintf("k%d", i), 10); err != nil {
			t.Fatal(err)
		}
		if c.Stats().UsedBytes > 100 {
			t.Fatalf("over budget: %d", c.Stats().UsedBytes)
		}
	}
	st := c.Stats()
	if st.Items != 10 {
		t.Errorf("items = %d, want 10", st.Items)
	}
	if st.Evictions != 40 {
		t.Errorf("evictions = %d, want 40", st.Evictions)
	}
}

func TestUpdateInPlaceAdjustsBytes(t *testing.T) {
	c := newCache(t, Config{MaxBytes: 100}, LRUEvictor{}, 5)
	if err := c.Set("a", 10); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("a", 30); err != nil {
		t.Fatal(err)
	}
	if c.Stats().UsedBytes != 30 || c.Stats().Items != 1 {
		t.Errorf("stats = %+v", c.Stats())
	}
	// Growing an item can force eviction of others but never of itself.
	if err := c.Set("b", 60); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("a", 90); err != nil {
		t.Fatal(err)
	}
	if !c.Contains("a") {
		t.Error("resized item evicted itself")
	}
	if c.Stats().UsedBytes > 100 {
		t.Errorf("over budget after resize: %+v", c.Stats())
	}
}

func TestDeleteAndFlush(t *testing.T) {
	c := newCache(t, Config{MaxBytes: 100}, LRUEvictor{}, 6)
	if err := c.Set("a", 10); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("b", 10); err != nil {
		t.Fatal(err)
	}
	if !c.Delete("a") {
		t.Error("delete should report true for resident key")
	}
	if c.Delete("a") {
		t.Error("double delete should report false")
	}
	if c.Stats().UsedBytes != 10 {
		t.Errorf("used = %d", c.Stats().UsedBytes)
	}
	c.Flush()
	if c.Stats().Items != 0 || c.Stats().UsedBytes != 0 {
		t.Errorf("flush left %+v", c.Stats())
	}
	if c.Contains("b") {
		t.Error("flush should remove all")
	}
}

func TestLRUEvictorPicksOldest(t *testing.T) {
	cands := []Candidate{
		{Key: "a", LastAccess: 5},
		{Key: "b", LastAccess: 1},
		{Key: "c", LastAccess: 9},
	}
	if got := (LRUEvictor{}).Choose(cands, 10); got != 1 {
		t.Errorf("lru chose %d, want 1", got)
	}
}

func TestLFUEvictorPicksRarest(t *testing.T) {
	cands := []Candidate{
		{Key: "a", Frequency: 5},
		{Key: "b", Frequency: 2},
		{Key: "c", Frequency: 9},
	}
	if got := (LFUEvictor{}).Choose(cands, 10); got != 1 {
		t.Errorf("lfu chose %d, want 1", got)
	}
}

func TestFreqSizeEvictorPicksLowestDensity(t *testing.T) {
	cands := []Candidate{
		{Key: "small-hot", Size: 1, Frequency: 4},  // 4.0
		{Key: "big-hot", Size: 8, Frequency: 8},    // 1.0
		{Key: "small-cold", Size: 2, Frequency: 1}, // 0.5
	}
	if got := (FreqSizeEvictor{}).Choose(cands, 10); got != 2 {
		t.Errorf("freq/size chose %d, want 2", got)
	}
}

func TestRandomEvictorUniform(t *testing.T) {
	ev := RandomEvictor{R: stats.NewRand(7)}
	cands := make([]Candidate, 4)
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[ev.Choose(cands, 0)]++
	}
	for i, c := range counts {
		frac := float64(c) / 40000
		if frac < 0.22 || frac > 0.28 {
			t.Errorf("candidate %d chosen %v, want ≈0.25", i, frac)
		}
	}
	d := ev.Distribution(cands, 0)
	for _, p := range d {
		if p != 0.25 {
			t.Errorf("distribution = %v", d)
		}
	}
}

func TestEpsilonEvictor(t *testing.T) {
	base := LRUEvictor{}
	ev := EpsilonEvictor{Base: base, Epsilon: 0.4, R: stats.NewRand(8)}
	cands := []Candidate{{LastAccess: 1}, {LastAccess: 9}}
	d := ev.Distribution(cands, 10)
	if d[0] != 0.6+0.2 || d[1] != 0.2 {
		t.Errorf("distribution = %v", d)
	}
	if ev.Name() != "eps-lru" {
		t.Errorf("name = %q", ev.Name())
	}
	counts := [2]int{}
	for i := 0; i < 50000; i++ {
		counts[ev.Choose(cands, 10)]++
	}
	frac := float64(counts[0]) / 50000
	if frac < 0.77 || frac > 0.83 {
		t.Errorf("base choice rate %v, want ≈0.8", frac)
	}
}

func TestEvictionLogPropensities(t *testing.T) {
	cfg := Config{MaxBytes: 100, SampleSize: 5, LogEvictions: true}
	c := newCache(t, cfg, RandomEvictor{R: stats.NewRand(9)}, 10)
	for i := 0; i < 40; i++ {
		c.Advance(float64(i))
		if err := c.Set(fmt.Sprintf("k%d", i), 10); err != nil {
			t.Fatal(err)
		}
	}
	log := c.EvictionLog()
	if len(log) != 30 {
		t.Fatalf("eviction log has %d records, want 30", len(log))
	}
	for _, rec := range log {
		want := 1 / float64(len(rec.Candidates))
		if rec.Propensity != want {
			t.Errorf("propensity %v, want %v", rec.Propensity, want)
		}
		if rec.Chosen < 0 || rec.Chosen >= len(rec.Candidates) {
			t.Errorf("chosen %d out of range", rec.Chosen)
		}
		if len(rec.Candidates) == 0 || len(rec.Candidates) > 5 {
			t.Errorf("candidate count %d", len(rec.Candidates))
		}
	}
}

func TestAccessLog(t *testing.T) {
	cfg := Config{MaxBytes: 100, LogAccesses: true}
	c := newCache(t, cfg, LRUEvictor{}, 11)
	c.Advance(1)
	c.Get("a") // miss
	if err := c.Set("a", 10); err != nil {
		t.Fatal(err)
	}
	c.Advance(2)
	c.Get("a") // hit
	log := c.AccessLog()
	if len(log) != 2 {
		t.Fatalf("access log %d records", len(log))
	}
	if log[0].Hit || !log[1].Hit {
		t.Errorf("hit flags wrong: %+v", log)
	}
	if log[1].Size != 10 {
		t.Errorf("hit record size = %d", log[1].Size)
	}
	if log[0].Time != 1 || log[1].Time != 2 {
		t.Errorf("timestamps: %+v", log)
	}
}

func TestSampleCandidatesDistinct(t *testing.T) {
	cfg := Config{MaxBytes: 1000, SampleSize: 8}
	c := newCache(t, cfg, LRUEvictor{}, 12)
	for i := 0; i < 20; i++ {
		if err := c.Set(fmt.Sprintf("k%d", i), 10); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 200; trial++ {
		cands := c.sampleCandidates("")
		if len(cands) != 8 {
			t.Fatalf("sample size %d", len(cands))
		}
		seen := map[string]bool{}
		for _, cd := range cands {
			if seen[cd.Key] {
				t.Fatalf("duplicate candidate %q", cd.Key)
			}
			seen[cd.Key] = true
			if !c.Contains(cd.Key) {
				t.Fatalf("sampled non-resident key %q", cd.Key)
			}
		}
	}
}

func TestAdvanceMonotone(t *testing.T) {
	c := newCache(t, Config{MaxBytes: 10}, LRUEvictor{}, 13)
	c.Advance(5)
	c.Advance(3) // ignored
	if c.Now() != 5 {
		t.Errorf("Now = %v", c.Now())
	}
}

// Property: under arbitrary set/get/delete sequences the cache never
// exceeds its byte budget and Items always matches the key slice length.
func TestBudgetInvariantProperty(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		c, err := New(Config{MaxBytes: 64, SampleSize: 3}, RandomEvictor{R: stats.NewRand(seed)}, stats.NewRand(seed+1))
		if err != nil {
			return false
		}
		for i, op := range ops {
			c.Advance(float64(i))
			key := fmt.Sprintf("k%d", op%40)
			switch op % 3 {
			case 0:
				size := int64(op%20) + 1
				if err := c.Set(key, size); err != nil {
					return false
				}
			case 1:
				c.Get(key)
			case 2:
				c.Delete(key)
			}
			st := c.Stats()
			if st.UsedBytes > st.MaxBytes || st.UsedBytes < 0 {
				return false
			}
			if st.Items != len(c.keys) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFeaturize(t *testing.T) {
	c := Candidate{Size: 200, Frequency: 3, LastAccess: 90, InsertedAt: 50}
	v := Featurize(c, 100)
	if len(v) != NumCandidateFeatures {
		t.Fatalf("dim = %d", len(v))
	}
	if v[0] != 2 || v[1] != 3 || v[2] != 0.1 || v[3] != 0.5 {
		t.Errorf("features = %v", v)
	}
}

func TestContextFromCandidates(t *testing.T) {
	cands := []Candidate{{Size: 100}, {Size: 200}, {Size: 300}}
	ctx := ContextFromCandidates(cands, 10)
	if ctx.NumActions != 3 || len(ctx.ActionFeatures) != 3 {
		t.Fatalf("context shape: %+v", ctx)
	}
	if err := ctx.Validate(); err != nil {
		t.Fatal(err)
	}
}
