package cachesim

import (
	"fmt"
	"math"
	"math/rand"
)

// Request is one workload access.
type Request struct {
	Key  string
	Size int64
}

// Workload produces a stream of cache requests.
type Workload interface {
	// Draw returns the next request.
	Draw(r *rand.Rand) Request
}

// BigSmallWorkload is the paper's Table 3 workload: "a few
// frequently-queried large items and many less-frequently-queried small
// items. The large items are queried twice as frequently but are four
// times as big: it is thus more efficient to cache the small items."
type BigSmallWorkload struct {
	// NumLarge large items of LargeSize bytes; each is queried
	// LargeWeight times as often as a single small item.
	NumLarge  int
	LargeSize int64
	// NumSmall small items of SmallSize bytes.
	NumSmall  int
	SmallSize int64
	// LargeWeight is the per-item frequency multiplier (paper: 2).
	LargeWeight float64
}

// DefaultBigSmall returns the workload used by the Table 3 experiment:
// large items 4× the size of small ones, each queried 2× as often —
// the paper's parameters. Population and cache share (see
// Table3CacheConfig) are tuned so the hitrates land near the paper's
// 48.5 / 48.2 / 44.0 / 58.9.
func DefaultBigSmall() BigSmallWorkload {
	return BigSmallWorkload{
		NumLarge:    100,
		LargeSize:   200,
		NumSmall:    200,
		SmallSize:   50,
		LargeWeight: 2,
	}
}

// Table3CacheConfig returns the cache configuration for the Table 3
// experiment: budget for half the working set, Redis-style sampling of 10
// candidates per eviction, with both harvestable logs enabled.
func Table3CacheConfig(w BigSmallWorkload) Config {
	return Config{
		MaxBytes:     w.TotalBytes() / 2,
		SampleSize:   10,
		LogAccesses:  true,
		LogEvictions: true,
	}
}

// Validate checks the workload parameters.
func (w BigSmallWorkload) Validate() error {
	if w.NumLarge <= 0 || w.NumSmall <= 0 {
		return fmt.Errorf("cachesim: workload needs both item classes (%d large, %d small)", w.NumLarge, w.NumSmall)
	}
	if w.LargeSize <= 0 || w.SmallSize <= 0 {
		return fmt.Errorf("cachesim: non-positive item sizes")
	}
	if w.LargeWeight <= 0 {
		return fmt.Errorf("cachesim: LargeWeight %v", w.LargeWeight)
	}
	return nil
}

// Draw implements Workload: a large item with probability proportional to
// NumLarge·LargeWeight, else a small item, uniform within each class.
func (w BigSmallWorkload) Draw(r *rand.Rand) Request {
	largeMass := float64(w.NumLarge) * w.LargeWeight
	total := largeMass + float64(w.NumSmall)
	if r.Float64()*total < largeMass {
		i := r.Intn(w.NumLarge)
		return Request{Key: fmt.Sprintf("L%04d", i), Size: w.LargeSize}
	}
	i := r.Intn(w.NumSmall)
	return Request{Key: fmt.Sprintf("S%04d", i), Size: w.SmallSize}
}

// TotalBytes returns the byte footprint of the full key population.
func (w BigSmallWorkload) TotalBytes() int64 {
	return int64(w.NumLarge)*w.LargeSize + int64(w.NumSmall)*w.SmallSize
}

// ZipfWorkload draws keys with Zipfian popularity over a fixed population —
// a second, more realistic workload for the ablation benches.
type ZipfWorkload struct {
	NumKeys  int
	Size     int64
	Exponent float64
	zipf     *zipfState
}

type zipfState struct {
	cdf []float64
}

// Validate checks the workload parameters. It also precomputes the
// popularity CDF, so that after a successful Validate every Draw is
// read-only on the workload — replicates replaying one shared *ZipfWorkload
// concurrently (the parallel experiment scheduler does) would otherwise
// race on Draw's lazy initialization.
func (w *ZipfWorkload) Validate() error {
	if w.NumKeys <= 0 || w.Size <= 0 || w.Exponent <= 0 {
		return fmt.Errorf("cachesim: zipf workload %+v invalid", *w)
	}
	w.prepare()
	return nil
}

// prepare materializes the CDF once.
func (w *ZipfWorkload) prepare() {
	if w.zipf != nil {
		return
	}
	cdf := make([]float64, w.NumKeys)
	total := 0.0
	for i := 0; i < w.NumKeys; i++ {
		total += 1 / math.Pow(float64(i+1), w.Exponent)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	w.zipf = &zipfState{cdf: cdf}
}

// Draw implements Workload.
func (w *ZipfWorkload) Draw(r *rand.Rand) Request {
	if w.zipf == nil {
		w.prepare()
	}
	u := r.Float64()
	lo, hi := 0, w.NumKeys-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.zipf.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return Request{Key: fmt.Sprintf("Z%06d", lo), Size: w.Size}
}

// Replay drives n requests from the workload through the cache
// (read-through: a miss inserts the item), advancing the cache clock by one
// unit per request. It returns the hit rate.
func Replay(c *Cache, w Workload, r *rand.Rand, n int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("cachesim: replay of %d requests", n)
	}
	for i := 0; i < n; i++ {
		c.Advance(float64(i))
		req := w.Draw(r)
		if !c.Get(req.Key) {
			if err := c.Set(req.Key, req.Size); err != nil {
				return 0, fmt.Errorf("cachesim: replay request %d: %w", i, err)
			}
		}
	}
	return c.HitRate(), nil
}
