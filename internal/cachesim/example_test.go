package cachesim_test

import (
	"fmt"

	"repro/internal/cachesim"
	"repro/internal/stats"
)

// Example runs the cache with Redis-style sampled random eviction — the
// harvestable randomness of the caching scenario — and reads back the
// exploration logs.
func Example() {
	cfg := cachesim.Config{
		MaxBytes:     300,
		SampleSize:   5,
		LogAccesses:  true,
		LogEvictions: true,
	}
	c, err := cachesim.New(cfg, cachesim.RandomEvictor{R: stats.NewRand(1)}, stats.NewRand(2))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// Ten 100-byte items through a 300-byte cache: evictions guaranteed.
	for i := 0; i < 10; i++ {
		c.Advance(float64(i))
		key := fmt.Sprintf("item-%d", i)
		if !c.Get(key) {
			if err := c.Set(key, 100); err != nil {
				fmt.Println("error:", err)
				return
			}
		}
	}
	st := c.Stats()
	fmt.Printf("resident: %d items, evictions: %d\n", st.Items, st.Evictions)
	rec := c.EvictionLog()[0]
	fmt.Printf("first eviction chose %d of %d sampled candidates (propensity %.2f)\n",
		rec.Chosen, len(rec.Candidates), rec.Propensity)
	// Output:
	// resident: 3 items, evictions: 7
	// first eviction chose 2 of 3 sampled candidates (propensity 0.33)
}
